package repro

import (
	"testing"

	"repro/internal/isb"
)

// TestMatchReport pins the three resubmission-matching branches the kvstore
// example and the serve layer both depend on: the single-op remainder, the
// batch completed-prefix + in-flight cut, and the stale-report rejection.
func TestMatchReport(t *testing.T) {
	opA := Op{Kind: OpInsert, Arg: 41}
	opB := Op{Kind: OpDelete, Arg: 42}
	opC := Op{Kind: OpInsert, Arg: 43}
	rTrue, rFalse := respOf(isb.RespTrue), respOf(isb.RespFalse)

	type got struct {
		i  int
		op Op
	}
	collect := func() (*[]got, func(i int, op Op, resp Resp)) {
		var g []got
		return &g, func(i int, op Op, resp Resp) { g = append(g, got{i, op}) }
	}

	t.Run("single-op-remainder", func(t *testing.T) {
		rep := ProcReport{Proc: 0, Op: opA, Resp: rTrue}
		g, deliver := collect()
		if n := MatchReport(rep, []Op{opA, opB}, deliver); n != 1 {
			t.Fatalf("resolved %d, want 1", n)
		}
		if len(*g) != 1 || (*g)[0] != (got{0, opA}) {
			t.Fatalf("delivered %v, want [{0 %v}]", *g, opA)
		}
		// A mismatching single-op entry is a previous operation's idempotent
		// re-confirmation: it resolves nothing.
		g, deliver = collect()
		if n := MatchReport(rep, []Op{opB, opA}, deliver); n != 0 || len(*g) != 0 {
			t.Fatalf("stale single-op entry resolved %d ops (%v), want 0", n, *g)
		}
		if n := MatchReport(rep, nil, deliver); n != 0 {
			t.Fatalf("empty pending resolved %d, want 0", n)
		}
	})

	t.Run("batch-prefix", func(t *testing.T) {
		rep := ProcReport{Proc: 1, Batch: []BatchOpReport{
			{Op: opA, Resp: rTrue, Status: OpCompleted},
			{Op: opB, Resp: rFalse, Status: OpInFlight},
			{Op: opC, Status: OpNoEffect},
		}}
		g, deliver := collect()
		if n := MatchReport(rep, []Op{opA, opB, opC}, deliver); n != 2 {
			t.Fatalf("resolved %d, want 2 (completed prefix + in-flight)", n)
		}
		want := []got{{0, opA}, {1, opB}}
		if len(*g) != 2 || (*g)[0] != want[0] || (*g)[1] != want[1] {
			t.Fatalf("delivered %v, want %v", *g, want)
		}
		// Pending shorter than the durable prefix: matching stops at the
		// pending boundary rather than indexing past it.
		g, deliver = collect()
		if n := MatchReport(rep, []Op{opA}, deliver); n != 1 || len(*g) != 1 {
			t.Fatalf("short pending resolved %d (%v), want 1", n, *g)
		}
	})

	t.Run("txn-report", func(t *testing.T) {
		rSkip := respOf(isb.RespSkipped)
		mkRep := func(class TxnClass, st1, st2 OpStatus, r1, r2 Resp) ProcReport {
			rep := ProcReport{Proc: 3, Op: opB, Resp: r2, Txn: &TxnReport{Class: class}}
			rep.Txn.Legs[0] = TxnLegReport{StructID: 1, Op: opA, Resp: r1, Status: st1}
			rep.Txn.Legs[1] = TxnLegReport{StructID: 2, Op: opB, Resp: r2, Status: st2}
			return rep
		}

		// A completed transaction resolves both pending legs at once.
		rep := mkRep(TxnCompleted, OpCompleted, OpCompleted, rTrue, rFalse)
		g, deliver := collect()
		if n := MatchReport(rep, []Op{opA, opB, opC}, deliver); n != 2 {
			t.Fatalf("completed txn resolved %d, want 2", n)
		}
		if len(*g) != 2 || (*g)[0] != (got{0, opA}) || (*g)[1] != (got{1, opB}) {
			t.Fatalf("delivered %v, want [{0 %v} {1 %v}]", *g, opA, opB)
		}

		// Leg 2 recovered in-flight: leg 2's effect was rolled forward
		// before reporting, so both legs still resolve — including an
		// elided leg 2 (skipped response).
		rep = mkRep(TxnLeg2Recovered, OpCompleted, OpInFlight, rTrue, rSkip)
		g, deliver = collect()
		if n := MatchReport(rep, []Op{opA, opB}, deliver); n != 2 || len(*g) != 2 {
			t.Fatalf("leg2-recovered txn resolved %d (%v), want 2", n, *g)
		}

		// No effect: neither leg resolves; the caller re-submits the
		// whole transaction.
		rep = mkRep(TxnNoEffect, OpNoEffect, OpNoEffect, Resp{}, Resp{})
		g, deliver = collect()
		if n := MatchReport(rep, []Op{opA, opB}, deliver); n != 0 || len(*g) != 0 {
			t.Fatalf("no-effect txn resolved %d ops (%v), want 0", n, *g)
		}

		// Stale transaction report: the legs belong to an earlier, fully
		// answered transaction — mismatch on either pending position
		// resolves nothing, and the leg mirrored into rep.Op/rep.Resp must
		// not leak through the single-op branch.
		rep = mkRep(TxnCompleted, OpCompleted, OpCompleted, rTrue, rFalse)
		g, deliver = collect()
		if n := MatchReport(rep, []Op{opB, opA}, deliver); n != 0 || len(*g) != 0 {
			t.Fatalf("stale txn report resolved %d ops (%v), want 0", n, *g)
		}
		g, deliver = collect()
		if n := MatchReport(rep, []Op{opA, opC}, deliver); n != 0 || len(*g) != 0 {
			t.Fatalf("leg-2-mismatched txn report resolved %d ops (%v), want 0", n, *g)
		}

		// Pending shorter than a transaction: a two-leg report can never
		// half-resolve a single pending operation.
		g, deliver = collect()
		if n := MatchReport(rep, []Op{opA}, deliver); n != 0 || len(*g) != 0 {
			t.Fatalf("one-op pending resolved %d against a txn report (%v), want 0", n, *g)
		}
	})

	t.Run("stale-report", func(t *testing.T) {
		// An earlier, fully completed window's entries: position 0 does not
		// match the new window's first pending op, so nothing resolves and
		// nothing is delivered twice.
		rep := ProcReport{Proc: 2, Batch: []BatchOpReport{
			{Op: opB, Resp: rTrue, Status: OpCompleted},
			{Op: opA, Resp: rTrue, Status: OpCompleted},
		}}
		g, deliver := collect()
		if n := MatchReport(rep, []Op{opA, opB}, deliver); n != 0 || len(*g) != 0 {
			t.Fatalf("stale report resolved %d ops (%v), want 0", n, *g)
		}
	})
}

// TestApplyWindowRejectsOversizedWindow pins that an ApplyWindow larger
// than MaxBatch panics instead of silently splitting into several batch
// announcements: a crash in a later chunk would leave a report that
// MatchReport cannot align against the window's head, and a
// resubmit-the-rest caller would re-execute the earlier chunks.
func TestApplyWindowRejectsOversizedWindow(t *testing.T) {
	rt := New(Config{Procs: 1, HeapWords: 1 << 18})
	m := rt.NewHashMap(4)
	p := rt.Proc(0)

	ops := make([]Op, MaxBatch+1)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Arg: uint64(i + 1)}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("ApplyWindow admitted %d ops (> MaxBatch=%d) without panicking", len(ops), MaxBatch)
		}
	}()
	rt.ApplyWindow(p, m, ops)
}

// TestApplyWindowMaxBatch pins that a window of exactly MaxBatch still
// admits as one announcement (the boundary the serve layer clamps to).
func TestApplyWindowMaxBatch(t *testing.T) {
	rt := New(Config{Procs: 1, HeapWords: 1 << 18})
	m := rt.NewHashMap(4)
	p := rt.Proc(0)

	ops := make([]Op, MaxBatch)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Arg: uint64(i + 1)}
	}
	out := rt.ApplyWindow(p, m, ops)
	for i, r := range out {
		if !r.Bool() {
			t.Fatalf("op %d: insert of fresh key reported false", i)
		}
	}
}
