// kvserver runs the crash-riddled network KV store: the detectably
// recoverable sharded hash map behind the serve layer's framed TCP
// protocol, with batched admission, RETRY backpressure and exactly-once
// resubmit across simulated crashes.
//
// Normal mode listens on -addr and serves until interrupted:
//
//	go run ./cmd/kvserver -addr :7070 -crash-every 50000
//
// Selftest mode (-selftest) runs an in-process crash storm over the
// in-memory transport — several session clients hammering the server
// through injected crashes — audits the recovered store against every
// response the clients observed, prints the stats snapshot, and exits
// non-zero on any inconsistency. CI runs this as the server smoke test.
// With -chaos the storm additionally runs through a fault-injecting
// listener that kills connections mid-frame on a seeded schedule: the
// session clients must redial and resubmit without a single answer or
// store cell diverging.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/serve/chaos"
	"repro/internal/serve/client"
)

func main() {
	addr := flag.String("addr", ":7070", "TCP listen address (normal mode)")
	procs := flag.Int("procs", 2, "admission Procs (fixed worker pool)")
	shards := flag.Int("shards", 16, "store shards")
	batch := flag.Int("batch", 16, "max requests per admission window")
	queueDepth := flag.Int("queue-depth", 32, "per-connection queue bound")
	crashEvery := flag.Uint64("crash-every", 0, "memory accesses between injected crashes (0 = no crash sim)")
	shedWatermark := flag.Float64("shed-watermark", 0, "aggregate queue fraction past which requests are answered OVERLOAD (0 = off)")
	idleTimeout := flag.Duration("idle-timeout", 0, "disconnect connections idle for this long (0 = off)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-reply write deadline (0 = off)")
	selftest := flag.Bool("selftest", false, "run the in-process crash-storm audit and exit")
	conns := flag.Int("conns", 4, "selftest: client connections")
	ops := flag.Int("ops", 300, "selftest: requests per connection")
	chaosOn := flag.Bool("chaos", false, "selftest: run the storm through a fault-injecting listener (connection kills, torn frames)")
	chaosRate := flag.Float64("chaos-rate", 0.4, "selftest: expected connection kills per KiB of traffic")
	chaosSeed := flag.Int64("chaos-seed", 1, "selftest: chaos schedule seed")
	flag.Parse()

	cfg := serve.Config{
		Procs: *procs, Shards: *shards, Batch: *batch, QueueDepth: *queueDepth,
		CrashSim: *crashEvery > 0, CrashEvery: *crashEvery,
		Engine: repro.EngineIsbOpt, HeapWords: 1 << 22,
		ShedWatermark: *shedWatermark, IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout,
	}

	if *selftest {
		if cfg.CrashEvery == 0 {
			cfg.CrashSim = true
			cfg.CrashEvery = 1500
		}
		var sched *chaos.Schedule
		if *chaosOn {
			sched = chaos.NewSchedule(chaos.ScheduleConfig{Seed: *chaosSeed, KillRate: *chaosRate})
		}
		if err := runSelftest(cfg, *conns, *ops, sched); err != nil {
			fmt.Fprintln(os.Stderr, "selftest FAILED:", err)
			os.Exit(1)
		}
		return
	}

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("kvserver: serving on %s (procs=%d batch=%d queue=%d crash-every=%d)\n",
		ln.Addr(), cfg.Procs, cfg.Batch, cfg.QueueDepth, cfg.CrashEvery)
	if err := s.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}

// runSelftest storms a fresh server over the in-memory transport —
// optionally through a fault-injecting listener — and audits the
// recovered store against the responses the session clients observed.
func runSelftest(cfg serve.Config, conns, ops int, sched *chaos.Schedule) error {
	const keySpace = 48
	s := serve.New(cfg)
	defer s.Close()
	ln := serve.NewMemListener()
	if sched != nil {
		go s.Serve(chaos.NewListener(ln, sched))
	} else {
		go s.Serve(ln)
	}

	deltas := make([]map[uint64]int, conns)
	errs := make([]error, conns)
	sessions := make([]*client.Session, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		deltas[w] = map[uint64]int{}
		c, err := client.DialSession(client.SessionConfig{
			ClientID:       uint64(w + 1),
			Dial:           func() (net.Conn, error) { return ln.Dial() },
			RequestTimeout: 10 * time.Second,
			Seed:           int64(w) + 1,
		})
		if err != nil {
			return err
		}
		sessions[w] = c
		wg.Add(1)
		go func(w int, c *client.Session) {
			defer wg.Done()
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keySpace)) + 1
				switch rng.Intn(4) {
				case 0:
					ok, err := c.Put(k)
					if err != nil {
						errs[w] = err
						return
					}
					if ok {
						deltas[w][k]++
					}
				case 1:
					ok, err := c.Del(k)
					if err != nil {
						errs[w] = err
						return
					}
					if ok {
						deltas[w][k]--
					}
				default:
					if _, err := c.Get(k); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	total := map[uint64]int{}
	for _, m := range deltas {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range s.Store().Keys() {
		present[k] = true
	}
	bad := 0
	for k := uint64(1); k <= keySpace; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			bad++
			fmt.Printf("MISMATCH key %d: net=%d present=%v\n", k, total[k], present[k])
		}
	}
	st := s.Snapshot()
	body, _ := json.MarshalIndent(st, "", "  ")
	fmt.Printf("%d conns × %d ops in %v: %d crashes survived, %d replies from recovery reports, %d retried, batch fill %.2f\n",
		conns, ops, time.Since(start).Round(time.Millisecond), st.Crashes, st.FromReport, st.Retried, st.BatchFillMean())
	if sched != nil {
		var agg client.SessionStats
		for _, c := range sessions {
			cs := c.SessionStats()
			agg.Dials += cs.Dials
			agg.Reconnects += cs.Reconnects
			agg.Resubmits += cs.Resubmits
			agg.Timeouts += cs.Timeouts
		}
		wrapped, kills := sched.Stats()
		fmt.Printf("chaos: %d conns wrapped, %d kills planned; clients: %d dials, %d reconnects, %d resubmits, %d timeouts; server: %d disconnects\n",
			wrapped, kills, agg.Dials, agg.Reconnects, agg.Resubmits, agg.Timeouts, st.Disconnects)
		if kills > 0 && agg.Reconnects == 0 {
			return fmt.Errorf("chaos schedule planned %d kills but no client ever reconnected; storm too small", kills)
		}
	}
	fmt.Println(string(body))
	if bad > 0 {
		return fmt.Errorf("%d keys inconsistent with observed responses", bad)
	}
	if cfg.CrashSim && st.Crashes == 0 {
		return fmt.Errorf("crash sim enabled but no crash fired; storm too small")
	}
	fmt.Println("selftest passed: every response is consistent with the recovered store")
	return nil
}
