// Command crashtest soaks the detectably recoverable structures under
// randomized system-wide crash storms and verifies detectability plus
// linearizability of the recorded histories.
//
// Usage:
//
//	crashtest -structure list -procs 4 -ops 60 -crashes 8 -rounds 50 -seed 1
//	crashtest -structure all
//
// Every round builds a fresh tracked heap, runs the storm, and checks:
// every operation resolved to a definite response (detectability), the
// structure's invariants hold, and the history is linearizable (per-key WGL
// for sets; whole-history WGL for queue/stack).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"

	"repro/internal/bst"
	"repro/internal/crash"
	"repro/internal/linearize"
	"repro/internal/list"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/stack"
)

func main() {
	structure := flag.String("structure", "all", "list | bst | queue | stack | all")
	procs := flag.Int("procs", 4, "concurrent processes")
	ops := flag.Int("ops", 40, "operations per process per round")
	crashes := flag.Int("crashes", 6, "crashes per round")
	rounds := flag.Int("rounds", 25, "independent rounds per structure")
	seed := flag.Int64("seed", 1, "base seed")
	keys := flag.Uint64("keys", 16, "key range for set structures")
	flag.Parse()

	structs := []string{"list", "bst", "queue", "stack"}
	if *structure != "all" {
		structs = []string{*structure}
	}
	fail := false
	for _, s := range structs {
		okRounds, recovered, fired := 0, 0, 0
		for r := 0; r < *rounds; r++ {
			rs := *seed + int64(r)*7919
			err, rec, crs := runRound(s, rs, *procs, *ops, *crashes, *keys)
			recovered += rec
			fired += crs
			if err != "" {
				fmt.Printf("FAIL %-6s round %d (seed %d): %s\n", s, r, rs, err)
				fail = true
				continue
			}
			okRounds++
		}
		fmt.Printf("%-6s: %d/%d rounds ok, %d crashes fired, %d operations recovered\n",
			s, okRounds, *rounds, fired, recovered)
	}
	if fail {
		os.Exit(1)
	}
}

func runRound(structure string, seed int64, procs, ops, crashes int, keys uint64) (string, int, int) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 22, Procs: procs, Tracked: true, Seed: uint64(seed) + 1})
	var target crash.Target
	var check func(res crash.Result) string
	var gen func(id, i int, rng *rand.Rand) crash.Op

	setGen := func(insK, delK, findK uint64) func(id, i int, rng *rand.Rand) crash.Op {
		return func(id, i int, rng *rand.Rand) crash.Op {
			k := uint64(rng.Intn(int(keys))) + 1
			switch rng.Intn(3) {
			case 0:
				return crash.Op{Kind: insK, Arg: k}
			case 1:
				return crash.Op{Kind: delK, Arg: k}
			default:
				return crash.Op{Kind: findK, Arg: k}
			}
		}
	}
	setCheck := func(inv func() string) func(res crash.Result) string {
		return func(res crash.Result) string {
			if msg := inv(); msg != "" {
				return msg
			}
			if k, ok := linearize.CheckSetHistory(res.History); !ok {
				return fmt.Sprintf("history not linearizable at key %d", k)
			}
			return ""
		}
	}

	switch structure {
	case "list":
		l := list.New(h)
		target = crash.Adapt(l)
		gen = setGen(list.OpInsert, list.OpDelete, list.OpFind)
		check = setCheck(l.CheckInvariants)
	case "bst":
		b := bst.New(h)
		target = crash.Adapt(b)
		gen = setGen(bst.OpInsert, bst.OpDelete, bst.OpFind)
		check = setCheck(b.CheckInvariants)
	case "queue":
		q := queue.New(h)
		target = crash.Adapt(q)
		var next atomic.Uint64
		gen = func(id, i int, rng *rand.Rand) crash.Op {
			if rng.Intn(2) == 0 {
				return crash.Op{Kind: queue.OpEnq, Arg: next.Add(1)}
			}
			return crash.Op{Kind: queue.OpDeq}
		}
		check = func(res crash.Result) string {
			if msg := q.CheckInvariants(); msg != "" {
				return msg
			}
			hist := mapKinds(res, queue.OpEnq, linearize.KindEnq, linearize.KindDeq)
			if !linearize.Check(linearize.QueueModel(), hist) {
				return "queue history not linearizable"
			}
			return ""
		}
	case "stack":
		s := stack.New(h, stack.DefaultElimSpins)
		target = crash.Adapt(s)
		var next atomic.Uint64
		gen = func(id, i int, rng *rand.Rand) crash.Op {
			if rng.Intn(2) == 0 {
				return crash.Op{Kind: stack.OpPush, Arg: next.Add(1)}
			}
			return crash.Op{Kind: stack.OpPop}
		}
		check = func(res crash.Result) string {
			if msg := s.CheckInvariants(); msg != "" {
				return msg
			}
			hist := mapKinds(res, stack.OpPush, linearize.KindPush, linearize.KindPop)
			if !linearize.Check(linearize.StackModel(), hist) {
				return "stack history not linearizable"
			}
			return ""
		}
	default:
		return "unknown structure " + structure, 0, 0
	}

	// Whole-history WGL structures must stay within the checker capacity.
	if (structure == "queue" || structure == "stack") && procs*ops > linearize.MaxOps {
		ops = linearize.MaxOps / procs
	}
	res := crash.Run(crash.Config{
		Heap: h, Target: target, Procs: procs, OpsPerProc: ops,
		Gen: gen, Crashes: crashes,
		MeanAccessGap: procs * ops * 40 / (crashes + 1),
		Seed:          seed,
	})
	if len(res.History) != procs*ops {
		return fmt.Sprintf("only %d/%d operations resolved", len(res.History), procs*ops),
			res.RecoveredOps, res.CrashesFired
	}
	return check(res), res.RecoveredOps, res.CrashesFired
}

func mapKinds(res crash.Result, addKind, addTo, otherTo uint64) []linearize.Operation {
	hist := make([]linearize.Operation, len(res.History))
	copy(hist, res.History)
	for i := range hist {
		if hist[i].Kind == addKind {
			hist[i].Kind = addTo
		} else {
			hist[i].Kind = otherTo
		}
	}
	return hist
}
