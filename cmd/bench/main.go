// Command bench runs the canonical performance-scenario matrix and writes
// a machine-comparable BENCH_<label>.json report: throughput and
// persistence-instruction metrics for every (engine, procs, shards, mix)
// hash-map cell, plus the timed every-crash-point conformance sweep. CI
// archives one report per commit; diff two reports to see what a change
// did to the simulator's hot paths.
//
// Usage:
//
//	go run ./cmd/bench                         # BENCH_local.json, full matrix
//	go run ./cmd/bench -label abc123 -out BENCH_abc123.json
//	go run ./cmd/bench -quick                  # small matrix (CI smoke)
//	go run ./cmd/bench -check BENCH_x.json     # validate an existing report
//	go run ./cmd/bench -compare BENCH_baseline.json
//	                                           # run, then gate against a baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	label := flag.String("label", "local", "report label (e.g. short commit sha)")
	out := flag.String("out", "", "output path (default BENCH_<label>.json)")
	procs := flag.String("procs", "", "comma-separated proc counts (default 1,2,4,8)")
	shards := flag.String("shards", "", "comma-separated shard counts (default 1,16)")
	ops := flag.Int("ops", 0, "operations per proc per cell (default 2000)")
	faultRates := flag.String("serve-fault-rates", "", "comma-separated serve-cell fault rates in connection kills per KiB (default 0,0.5; rate 0 is every fault-free cell)")
	quick := flag.Bool("quick", false, "small matrix for smoke runs")
	check := flag.String("check", "", "validate an existing report file and exit")
	compare := flag.String("compare", "", "baseline report to gate the fresh run against (fails when a cell falls >15% behind the pair's median throughput ratio or grows persists/op)")
	verbose := flag.Bool("v", false, "print each scenario cell's metric line")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if *check != "" && *compare != "" {
		fail(fmt.Errorf("-check and -compare are mutually exclusive: -check validates an existing report without running, -compare runs the matrix and gates it"))
	}

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fail(err)
		}
		if err := bench.Validate(data); err != nil {
			fail(err)
		}
		fmt.Printf("%s: valid bench report\n", *check)
		return
	}

	// Vet the baseline BEFORE the multi-minute run: a missing, corrupt or
	// stale-schema baseline must fail in milliseconds, not after the whole
	// matrix has been measured.
	var baseline []byte
	if *compare != "" {
		var err error
		baseline, err = os.ReadFile(*compare)
		if err != nil {
			fail(err)
		}
		if err := bench.CheckBaseline(baseline); err != nil {
			fail(err)
		}
	}

	// -quick supplies smaller defaults; explicit flags always win.
	p := bench.Params{Label: *label}
	if *quick {
		p = bench.QuickParams()
		p.Label = *label
	}
	if *ops != 0 {
		p.OpsPerProc = *ops
	}
	if flagProcs, err := parseInts(*procs); err != nil {
		fail(err)
	} else if flagProcs != nil {
		p.Procs = flagProcs
	}
	if flagShards, err := parseInts(*shards); err != nil {
		fail(err)
	} else if flagShards != nil {
		p.Shards = flagShards
	}
	if flagRates, err := parseFloats(*faultRates); err != nil {
		fail(err)
	} else if flagRates != nil {
		p.ServeFaultRates = flagRates
	}

	rep, err := bench.Run(p)
	if err != nil {
		fail(err)
	}
	data, err := bench.Marshal(rep)
	if err != nil {
		fail(err)
	}
	// The gate CI relies on: a report that fails validation is never
	// written with exit status 0.
	if err := bench.Validate(data); err != nil {
		fail(err)
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fail(err)
	}
	if *verbose {
		for _, pt := range rep.Scenarios {
			// Point.Stats routes through isb.Stats — the same renderer the
			// root benchmarks report with.
			fmt.Printf("%s: %.0f ops/s %s\n", pt.Name, pt.OpsPerSec, pt.Stats())
		}
	}
	fmt.Printf("wrote %s: %d scenario cells, %d sweep scenarios, sweep %.2fs\n",
		path, len(rep.Scenarios), len(rep.Sweeps), rep.SweepSeconds)
	if *compare != "" {
		if err := bench.Compare(baseline, data); err != nil {
			fail(err)
		}
		fmt.Printf("no regression vs %s\n", *compare)
	}
}
