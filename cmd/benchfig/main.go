// Command benchfig regenerates the paper's evaluation figures on the
// simulated persistent heap.
//
// Usage:
//
//	benchfig -fig 1a                 # one figure
//	benchfig -fig all                # every figure
//	benchfig -fig 7 -threads 1,2,4,8,16 -ops 50000
//
// Each run prints one row per (algorithm, thread count): throughput plus
// per-operation pbarrier and stand-alone-flush counts — the quantities the
// paper's Figures 1, 3–7 plot. Absolute values depend on the host; the
// shapes are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/figures"
)

func main() {
	figID := flag.String("fig", "all", "figure id (1a,1b,1c,1d,1e,1f,3,4,5,6,7) or 'all'")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	ops := flag.Int("ops", 20000, "operations per thread per data point")
	seed := flag.Uint64("seed", 42, "workload seed")
	list := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	if *list {
		for _, f := range figures.All() {
			fmt.Printf("%-3s %s\n", f.ID, f.Title)
		}
		return
	}

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "benchfig: bad thread count %q\n", part)
			os.Exit(2)
		}
		ths = append(ths, n)
	}
	params := figures.Params{Threads: ths, Ops: *ops, Seed: *seed}

	run := func(f figures.Figure) {
		fmt.Printf("== Figure %s: %s ==\n", f.ID, f.Title)
		f.Run(os.Stdout, params)
		fmt.Println()
	}
	if *figID == "all" {
		for _, f := range figures.All() {
			run(f)
		}
		return
	}
	f, ok := figures.ByID(*figID)
	if !ok {
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q (use -list)\n", *figID)
		os.Exit(2)
	}
	run(f)
}
