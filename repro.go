// Package repro is the public API of this reproduction of "Tracking in
// Order to Recover: Detectable Recovery of Lock-Free Data Structures"
// (Attiya, Ben-Baruch, Fatourou, Hendler, Kosmas — SPAA 2020).
//
// It exposes detectably recoverable lock-free data structures built with
// ISB-tracking (a linked list, a FIFO queue, a binary search tree, an
// exchanger, an elimination stack, and a sharded hash map) on top of a
// simulated persistent heap with explicit epoch persistency and
// whole-system crash injection.
//
// # Quick start
//
//	rt := repro.New(repro.Config{Procs: 4, CrashSim: true})
//	l := rt.NewList()
//	p := rt.Proc(0)
//	l.Insert(p, 42)
//
//	// Simulate a crash in the middle of an operation:
//	rt.ScheduleCrash(10) // after ~10 more memory accesses
//	if !rt.Run(func() { l.Insert(p, 7) }) {
//	    rt.Restart()                     // discard volatile state
//	    ok := l.Recover(p, repro.OpInsert, 7) // detectably recover
//	    _ = ok
//	}
//
// Every operation persists enough tracking state (the paper's Info
// structures plus per-process RD_q/CP_q registers) that Recover can always
// tell whether the interrupted operation took effect and what it returned.
package repro

import (
	"time"

	"repro/internal/bst"
	"repro/internal/exchanger"
	"repro/internal/hashmap"
	"repro/internal/isb"
	"repro/internal/list"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/stack"
)

// Proc is a process descriptor: the unit of crash and recovery. Each Proc
// must be used by at most one goroutine at a time.
type Proc = pmem.Proc

// Model selects the persistency model.
type Model = pmem.Model

// Persistency models (paper Section 2).
const (
	SharedCache  = pmem.SharedCache
	PrivateCache = pmem.PrivateCache
)

// EngineKind selects the persistence-instruction placement used by every
// structure a Runtime builds (the paper's Isb vs Isb-Opt curves).
type EngineKind int

const (
	// EngineIsb is the paper's Algorithm 1/2 placement: a pwb after every
	// persistent store or CAS, a psync at the end of every phase. Each
	// tracked write is durable as soon as its pwb retires.
	EngineIsb EngineKind = iota
	// EngineIsbOpt is the hand-tuned batched placement: each operation
	// phase (tag → update → cleanup) accumulates its dirty words and
	// issues one barrier, deduplicating cache lines, before the phase's
	// psync. After a crash a phase is either fully persisted or absent;
	// recovery tolerates both.
	EngineIsbOpt
)

// Operation kinds accepted by the Recover methods.
const (
	OpInsert = list.OpInsert
	OpDelete = list.OpDelete
	OpFind   = list.OpFind
	OpEnq    = queue.OpEnq
	OpDeq    = queue.OpDeq
	OpPush   = stack.OpPush
	OpPop    = stack.OpPop
)

// Config parameterises a Runtime.
type Config struct {
	// Procs is the number of process descriptors (default 1).
	Procs int
	// Model selects SharedCache (default) or PrivateCache persistency.
	Model Model
	// HeapWords sizes the simulated NVRAM arena in 64-bit words
	// (default 1<<22 ≈ 32 MiB volatile image).
	HeapWords int
	// CrashSim enables the persisted image and crash injection.
	CrashSim bool
	// PWBLatency/PSyncLatency simulate persistence-instruction costs.
	PWBLatency, PSyncLatency time.Duration
	// Seed drives simulated cache-eviction randomness.
	Seed uint64
	// EvictEvery, with CrashSim, randomly persists ~1/EvictEvery stores.
	EvictEvery uint64
	// Engine selects the persistence placement (default EngineIsb) for
	// every structure this runtime builds.
	Engine EngineKind
}

// Runtime owns a simulated persistent heap and its process descriptors.
type Runtime struct {
	h      *pmem.Heap
	engine EngineKind
}

// New builds a runtime.
func New(cfg Config) *Runtime {
	words := cfg.HeapWords
	if words == 0 {
		words = 1 << 22
	}
	return &Runtime{h: pmem.NewHeap(pmem.Config{
		Words: words, Procs: cfg.Procs, Model: cfg.Model,
		Tracked: cfg.CrashSim, Seed: cfg.Seed, EvictEvery: cfg.EvictEvery,
		PWBLatency: cfg.PWBLatency, PSyncLatency: cfg.PSyncLatency,
	}), engine: cfg.Engine}
}

// Engine reports the runtime's configured persistence placement.
func (r *Runtime) Engine() EngineKind { return r.engine }

// newEngine builds one ISB engine of the configured kind.
func (r *Runtime) newEngine() *isb.Engine {
	if r.engine == EngineIsbOpt {
		return isb.NewEngineOpt(r.h)
	}
	return isb.NewEngine(r.h)
}

// Proc returns process descriptor id (0-based).
func (r *Runtime) Proc(id int) *Proc { return r.h.Proc(id) }

// NumProcs reports the configured process count.
func (r *Runtime) NumProcs() int { return r.h.NumProcs() }

// ScheduleCrash arms a system-wide crash that fires after roughly n more
// shared-memory accesses (CrashSim only). The process whose access crosses
// the threshold panics with a crash value that Run converts to false.
func (r *Runtime) ScheduleCrash(n uint64) {
	r.h.ScheduleCrashAt(r.h.AccessCount() + n)
}

// CancelCrash disarms a scheduled crash that has not fired.
func (r *Runtime) CancelCrash() { r.h.DisarmCrash() }

// Crash initiates a system-wide crash immediately.
func (r *Runtime) Crash() { r.h.Crash() }

// Crashing reports whether a crash is in progress.
func (r *Runtime) Crashing() bool { return r.h.Crashing() }

// Run executes f, returning false if a simulated crash interrupted it.
// After a crash, call Restart (once all Procs have unwound) and then the
// appropriate Recover method for each interrupted operation.
func (r *Runtime) Run(f func()) bool { return pmem.RunOp(f) }

// Restart discards all volatile state, as a machine restart after a power
// failure would: unflushed writes are lost, persisted state remains. All
// Procs must have unwound (their Run calls returned) before Restart.
func (r *Runtime) Restart() { r.h.ResetAfterCrash() }

// List is a detectably recoverable sorted set of uint64 keys (paper
// Section 4; ISB-tracking over a Harris-style list).
type List struct{ l *list.List }

// NewList builds a recoverable list with the runtime's configured engine
// (Config.Engine; EngineIsb by default).
func (r *Runtime) NewList() *List { return &List{list.NewWithEngine(r.h, r.newEngine())} }

// NewListOpt builds a recoverable list with hand-tuned (batched)
// persistence — the paper's Isb-Opt variant — regardless of Config.Engine.
func (r *Runtime) NewListOpt() *List { return &List{list.NewOpt(r.h)} }

// Insert adds key (1 ≤ key ≤ MaxUint64-1); false if present.
func (l *List) Insert(p *Proc, key uint64) bool { return l.l.Insert(p, key) }

// Delete removes key; false if absent.
func (l *List) Delete(p *Proc, key uint64) bool { return l.l.Delete(p, key) }

// Find reports membership.
func (l *List) Find(p *Proc, key uint64) bool { return l.l.Find(p, key) }

// Recover completes p's interrupted operation (same kind and key) after a
// crash and returns its response.
func (l *List) Recover(p *Proc, op, key uint64) bool { return l.l.Recover(p, op, key) }

// Begin is the system-side invocation step used by crash harnesses.
func (l *List) Begin(p *Proc) { l.l.Begin(p) }

// Keys snapshots the current key set (requires quiescence).
func (l *List) Keys() []uint64 { return l.l.Keys() }

// Queue is a detectably recoverable FIFO queue (ISB over MS-queue).
type Queue struct{ q *queue.Queue }

// NewQueue builds a recoverable queue with the runtime's configured engine.
func (r *Runtime) NewQueue() *Queue { return &Queue{queue.NewWithEngine(r.h, r.newEngine())} }

// Enqueue appends v.
func (q *Queue) Enqueue(p *Proc, v uint64) { q.q.Enqueue(p, v) }

// Dequeue removes the oldest value; ok=false on empty.
func (q *Queue) Dequeue(p *Proc) (uint64, bool) { return q.q.Dequeue(p) }

// RecoverEnqueue resolves an interrupted Enqueue(v).
func (q *Queue) RecoverEnqueue(p *Proc, v uint64) {
	q.q.Recover(p, queue.OpEnq, v)
}

// RecoverDequeue resolves an interrupted Dequeue, returning its response.
func (q *Queue) RecoverDequeue(p *Proc) (uint64, bool) {
	r := q.q.Recover(p, queue.OpDeq, 0)
	if !isb.IsValue(r) {
		return 0, false // r == isb.RespEmpty: the queue was empty
	}
	return isb.DecodeValue(r), true
}

// Begin is the system-side invocation step used by crash harnesses.
func (q *Queue) Begin(p *Proc) { q.q.Begin(p) }

// Values snapshots the queue front-to-back (requires quiescence).
func (q *Queue) Values() []uint64 { return q.q.Values() }

// BST is a detectably recoverable leaf-oriented binary search tree
// (Section 6; ISB over the Ellen et al. non-blocking BST).
type BST struct{ b *bst.BST }

// NewBST builds a recoverable BST with the runtime's configured engine.
func (r *Runtime) NewBST() *BST { return &BST{bst.NewWithEngine(r.h, r.newEngine())} }

// Insert adds key (1 ≤ key ≤ bst.MaxUserKey); false if present.
func (b *BST) Insert(p *Proc, key uint64) bool { return b.b.Insert(p, key) }

// Delete removes key; false if absent.
func (b *BST) Delete(p *Proc, key uint64) bool { return b.b.Delete(p, key) }

// Find reports membership.
func (b *BST) Find(p *Proc, key uint64) bool { return b.b.Find(p, key) }

// Recover completes p's interrupted operation after a crash.
func (b *BST) Recover(p *Proc, op, key uint64) bool { return b.b.Recover(p, op, key) }

// Begin is the system-side invocation step used by crash harnesses.
func (b *BST) Begin(p *Proc) { b.b.Begin(p) }

// Keys returns the keys in order (requires quiescence).
func (b *BST) Keys() []uint64 { return b.b.Keys() }

// Exchanger is a detectably recoverable two-party exchange channel.
type Exchanger struct{ e *exchanger.Exchanger }

// NewExchanger builds a recoverable exchanger.
func (r *Runtime) NewExchanger() *Exchanger { return &Exchanger{exchanger.New(r.h)} }

// Exchange offers v and waits up to spins iterations for a partner; on
// success it returns the partner's value.
func (e *Exchanger) Exchange(p *Proc, v uint64, spins int) (uint64, bool) {
	return e.e.Exchange(p, v, exchanger.Symmetric, spins)
}

// Recover resolves an interrupted Exchange(v). retry re-invokes an
// exchange that provably had no effect.
func (e *Exchanger) Recover(p *Proc, v uint64, spins int, retry bool) (uint64, bool) {
	return e.e.Recover(p, v, exchanger.Symmetric, spins, retry)
}

// Stack is a detectably recoverable elimination stack (ISB central stack
// plus exchanger-based elimination).
type Stack struct{ s *stack.Stack }

// NewStack builds a recoverable stack with the runtime's configured engine
// (covering the central stack; the exchanger keeps its own recovery data).
// elimSpins sets the elimination window (0 disables elimination).
func (r *Runtime) NewStack(elimSpins int) *Stack {
	return &Stack{stack.NewWithEngine(r.h, r.newEngine(), elimSpins)}
}

// Push adds v (v ≤ stack.MaxValue).
func (s *Stack) Push(p *Proc, v uint64) { s.s.Push(p, v) }

// Pop removes and returns the top value; ok=false on empty.
func (s *Stack) Pop(p *Proc) (uint64, bool) { return s.s.Pop(p) }

// RecoverPush resolves an interrupted Push(v).
func (s *Stack) RecoverPush(p *Proc, v uint64) { s.s.Recover(p, stack.OpPush, v) }

// RecoverPop resolves an interrupted Pop, returning its response.
func (s *Stack) RecoverPop(p *Proc) (uint64, bool) {
	r := s.s.Recover(p, stack.OpPop, 0)
	if !isb.IsValue(r) {
		return 0, false // r == isb.RespEmpty: the stack was empty
	}
	return isb.DecodeValue(r), true
}

// Begin is the system-side invocation step used by crash harnesses.
func (s *Stack) Begin(p *Proc) { s.s.Begin(p) }

// Values snapshots the stack top-to-bottom (requires quiescence).
func (s *Stack) Values() []uint64 { return s.s.Values() }

// HashMap is a detectably recoverable sharded lock-free hash set of uint64
// keys: ISB-tracked Harris lists, one per bucket, sharing a single set of
// per-process recovery registers, plus a persistent per-process shard
// register recording which shard an in-flight operation targets (a
// cross-check on the deterministic hash route today, and the hook online
// resharding will need). Unlike the single-point structures above, its
// throughput scales with cores.
type HashMap struct{ m *hashmap.Map }

// NewHashMap builds a recoverable hash map with the given shard count
// (rounded up to a power of two, minimum 1) on the runtime's configured
// engine. With EngineIsbOpt each operation phase on a shard's bucket list
// issues one batched barrier and the shard register's write-back is folded
// into the engine's begin barrier.
func (r *Runtime) NewHashMap(shards int) *HashMap {
	return &HashMap{hashmap.NewWithEngine(r.h, r.newEngine(), shards)}
}

// Insert adds key (1 ≤ key ≤ MaxUint64-1); false if present.
func (m *HashMap) Insert(p *Proc, key uint64) bool { return m.m.Insert(p, key) }

// Delete removes key; false if absent.
func (m *HashMap) Delete(p *Proc, key uint64) bool { return m.m.Delete(p, key) }

// Find reports membership.
func (m *HashMap) Find(p *Proc, key uint64) bool { return m.m.Find(p, key) }

// Recover completes p's interrupted operation (same kind and key) after a
// crash, routing to the operation's shard, and returns its response.
func (m *HashMap) Recover(p *Proc, op, key uint64) bool { return m.m.Recover(p, op, key) }

// Begin is the system-side invocation step used by crash harnesses.
func (m *HashMap) Begin(p *Proc) { m.m.Begin(p) }

// NumShards reports the map's (power-of-two) shard count.
func (m *HashMap) NumShards() int { return m.m.NumShards() }

// Keys snapshots the current key set in ascending order (requires
// quiescence).
func (m *HashMap) Keys() []uint64 { return m.m.Keys() }
