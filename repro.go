// Package repro is the public API of this reproduction of "Tracking in
// Order to Recover: Detectable Recovery of Lock-Free Data Structures"
// (Attiya, Ben-Baruch, Fatourou, Hendler, Kosmas — SPAA 2020).
//
// It exposes detectably recoverable lock-free data structures built with
// ISB-tracking (a linked list, a FIFO queue, a binary search tree, an
// exchanger, an elimination stack, and a sharded hash map) on top of a
// simulated persistent heap with explicit epoch persistency and
// whole-system crash injection.
//
// # Quick start
//
// Every structure a Runtime builds is registered under a durable structure
// ID and speaks one operation protocol: Apply(p, Op) runs an operation and
// returns a typed Resp; after a crash, a single Runtime.RecoverAll call
// finds every process's in-flight operation (from its persistent
// announcement record), routes it to the right structure through the
// registry, and resolves it — no caller bookkeeping:
//
//	rt := repro.New(repro.Config{Procs: 4, CrashSim: true})
//	l := rt.NewList()
//	p := rt.Proc(0)
//	l.Apply(p, repro.Op{Kind: repro.OpInsert, Arg: 42})
//
//	// Simulate a crash in the middle of an operation. Begin is the
//	// system-side invocation step: it retires the previous operation's
//	// announcement, keeping the report unambiguous (see RecoverAll).
//	l.Begin(p)
//	rt.ScheduleCrash(10) // after ~10 more memory accesses
//	if !rt.Run(func() { l.Apply(p, repro.Op{Kind: repro.OpInsert, Arg: 7}) }) {
//	    rt.Restart() // discard volatile state
//	    for _, rep := range rt.RecoverAll() {
//	        // rep says which structure proc rep.Proc was operating on,
//	        // which operation it was, and what it returned.
//	        _ = rep.Resp.Bool()
//	    }
//	}
//
// A process whose operation crashed before its announcement persisted is
// absent from the report; that operation provably performed no tracked
// writes and can simply be re-submitted. Typed convenience methods
// (Insert/Delete/Find, Enqueue/Dequeue, Push/Pop, …) and per-structure
// targeted recovery (List.Recover, Queue.RecoverEnqueue, …) remain as thin
// wrappers over the same protocol.
//
// Every operation persists enough tracking state (the paper's Info
// structures, per-process RD_q/CP_q registers, and the per-process
// announcement record) that recovery can always tell whether the
// interrupted operation took effect and what it returned.
//
// # Node reclamation
//
// By default nodes come from a leak-forever arena: correct, and the
// conformance oracle, but the heap must be sized for the run's cumulative
// allocation. Config{Reclaim: true} swaps in a crash-consistent epoch
// reclaimer whose retired lists, epoch counters and free lists live in the
// persistent heap, so churn-heavy workloads run in a heap sized for their
// working set. RecoverAll then prefixes recovery with a conservative
// reachability scan that re-homes any block whose retirement was lost in
// the crash — a lost retirement degrades to a (bounded) leak, never to a
// dangling pointer. See the package README for the full discipline.
package repro

import (
	"fmt"
	"time"

	"repro/internal/bst"
	"repro/internal/exchanger"
	"repro/internal/hashmap"
	"repro/internal/isb"
	"repro/internal/list"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/stack"
)

// Proc is a process descriptor: the unit of crash and recovery. Each Proc
// must be used by at most one goroutine at a time.
type Proc = pmem.Proc

// Model selects the persistency model.
type Model = pmem.Model

// Persistency models (paper Section 2).
const (
	SharedCache  = pmem.SharedCache
	PrivateCache = pmem.PrivateCache
)

// EngineKind selects the persistence-instruction placement used by every
// structure a Runtime builds (the paper's Isb vs Isb-Opt curves).
type EngineKind int

const (
	// EngineIsb is the paper's Algorithm 1/2 placement: a pwb after every
	// persistent store or CAS, a psync at the end of every phase. Each
	// tracked write is durable as soon as its pwb retires.
	EngineIsb EngineKind = iota
	// EngineIsbOpt is the hand-tuned batched placement: each operation
	// phase (tag → update → cleanup) accumulates its dirty words and
	// issues one barrier, deduplicating cache lines, before the phase's
	// psync. After a crash a phase is either fully persisted or absent;
	// recovery tolerates both.
	EngineIsbOpt
)

// Op is one operation invocation: a structure-specific kind plus its
// argument. It is the single invocation currency of Apply/RecoverOp and
// the payload of the per-process announcement record.
type Op struct {
	Kind uint64
	Arg  uint64
}

// Operation kinds accepted by Apply and the typed Recover wrappers.
const (
	OpInsert = list.OpInsert
	OpDelete = list.OpDelete
	OpFind   = list.OpFind
	OpEnq    = queue.OpEnq
	OpDeq    = queue.OpDeq
	OpPush   = stack.OpPush
	OpPop    = stack.OpPop
	// OpExchange offers Arg on an Exchanger.
	OpExchange uint64 = 30
)

// Resp is the typed response of Apply and RecoverOp, wrapping the engine's
// encoded response word. Exactly one accessor is meaningful per operation
// kind: Bool for set operations, pushes and enqueues; Value/Empty for
// dequeues, pops and exchanges. The encoding keeps payloads disjoint from
// the control responses, so a carried value of 0 can never be confused
// with "empty" (see TestRecoverDequeueZeroValue).
type Resp struct{ raw uint64 }

// Raw exposes the encoded response word (harness/test plumbing).
func (r Resp) Raw() uint64 { return r.raw }

// Bool decodes a true/false response (set membership updates, finds).
func (r Resp) Bool() bool { return r.raw == isb.RespTrue }

// Empty reports the distinguished empty-structure response (dequeue or pop
// on an empty container).
func (r Resp) Empty() bool { return r.raw == isb.RespEmpty }

// Skipped reports the elided-transaction-leg response: leg 2's argument
// derived from leg 1, and leg 1 carried no value (see TxnLeg.ArgFromLeg1).
func (r Resp) Skipped() bool { return r.raw == isb.RespSkipped }

// Value decodes a carried payload (dequeued/popped/exchanged value);
// ok is false when the response carries no payload (e.g. Empty).
func (r Resp) Value() (uint64, bool) {
	if !isb.IsValue(r.raw) {
		return 0, false
	}
	return isb.DecodeValue(r.raw), true
}

// String renders the response for logs and reports.
func (r Resp) String() string {
	switch {
	case r.raw == isb.RespTrue:
		return "true"
	case r.raw == isb.RespFalse:
		return "false"
	case r.raw == isb.RespEmpty:
		return "empty"
	case isb.IsValue(r.raw):
		return fmt.Sprintf("value(%d)", isb.DecodeValue(r.raw))
	default:
		return fmt.Sprintf("resp(%d)", r.raw)
	}
}

// respOf wraps an encoded response word.
func respOf(raw uint64) Resp { return Resp{raw: raw} }

// StructKind identifies a structure's type in the persisted registry.
type StructKind uint64

const (
	KindList StructKind = iota + 1
	KindQueue
	KindBST
	KindStack
	KindHashMap
	KindExchanger
)

func (k StructKind) String() string {
	switch k {
	case KindList:
		return "list"
	case KindQueue:
		return "queue"
	case KindBST:
		return "bst"
	case KindStack:
		return "stack"
	case KindHashMap:
		return "hashmap"
	case KindExchanger:
		return "exchanger"
	default:
		return fmt.Sprintf("StructKind(%d)", uint64(k))
	}
}

// Structure is the uniform operation/recovery surface every Runtime
// structure implements. Begin is the system-side invocation step of the
// paper's model (durably clear the announcement record, then CP_q := 0); a
// crash inside Begin leaves no recovery obligation — the system simply
// retries it. Apply runs one operation to completion, durably announcing
// (ID, Op) before the operation can take effect; RecoverOp is the
// operation's recovery function, idempotent and re-invocable across
// further crashes. Runtime.RecoverAll drives RecoverOp through the
// registry, so applications never call it directly unless they keep their
// own per-operation bookkeeping.
type Structure interface {
	// ID is the structure's durable registry ID (1-based, per Runtime).
	ID() uint64
	// Kind reports the structure's registered type.
	Kind() StructKind
	// Begin is the system-side invocation step used by crash harnesses.
	Begin(p *Proc)
	// Apply runs op to completion and returns its response.
	Apply(p *Proc, op Op) Resp
	// RecoverOp resolves an interrupted op after a crash.
	RecoverOp(p *Proc, op Op) Resp
}

// Config parameterises a Runtime.
type Config struct {
	// Procs is the number of process descriptors (default 1).
	Procs int
	// Model selects SharedCache (default) or PrivateCache persistency.
	Model Model
	// HeapWords sizes the simulated NVRAM arena in 64-bit words
	// (default 1<<22 ≈ 32 MiB volatile image).
	HeapWords int
	// CrashSim enables the persisted image and crash injection.
	CrashSim bool
	// PWBLatency/PSyncLatency simulate persistence-instruction costs.
	PWBLatency, PSyncLatency time.Duration
	// Seed drives simulated cache-eviction randomness.
	Seed uint64
	// EvictEvery, with CrashSim, randomly persists ~1/EvictEvery stores.
	EvictEvery uint64
	// Engine selects the persistence placement (default EngineIsb) for
	// every structure this runtime builds.
	Engine EngineKind
	// Reclaim enables crash-consistent node reclamation: every structure
	// this runtime builds draws nodes from a shared epoch-based reclaimer
	// (whose epoch counter, per-process retired rings and free lists live
	// in the persistent heap) instead of the leak-forever arena, and
	// RecoverAll prefixes recovery with a conservative reachability scan
	// that re-homes nodes whose retirement did not persist. See
	// ReclaimStats/LastScan for observability.
	Reclaim bool
}

// regCapacity bounds the number of structures one Runtime can register.
const regCapacity = 256

// Runtime owns a simulated persistent heap, its process descriptors, and
// the persistent structure registry that RecoverAll routes through.
type Runtime struct {
	h         *pmem.Heap
	engine    EngineKind
	structs   []Structure // index id-1
	regBase   pmem.Addr   // persisted registry: word0 = count, word id = kind
	reclaimer *pmem.Reclaimer
	engines   []*isb.Engine // every engine newEngine built (scan/recovery plumbing)
	lastScan  pmem.ScanReport
	scanned   bool
}

// New builds a runtime.
func New(cfg Config) *Runtime {
	words := cfg.HeapWords
	if words == 0 {
		words = 1 << 22
	}
	r := &Runtime{h: pmem.NewHeap(pmem.Config{
		Words: words, Procs: cfg.Procs, Model: cfg.Model,
		Tracked: cfg.CrashSim, Seed: cfg.Seed, EvictEvery: cfg.EvictEvery,
		PWBLatency: cfg.PWBLatency, PSyncLatency: cfg.PSyncLatency,
	}), engine: cfg.Engine}
	r.regBase = r.h.Proc(0).Alloc(1 + regCapacity)
	if cfg.Reclaim {
		r.reclaimer = pmem.NewReclaimer(r.h)
	}
	return r
}

// register assigns the next durable structure ID, persists the registry
// entry, and remembers the structure for RecoverAll routing.
func (r *Runtime) register(s Structure, kind StructKind) uint64 {
	if len(r.structs) >= regCapacity {
		panic("repro: structure registry full")
	}
	r.structs = append(r.structs, s)
	id := uint64(len(r.structs))
	p := r.h.Proc(0)
	p.Store(r.regBase+pmem.Addr(id), uint64(kind))
	p.Store(r.regBase, uint64(len(r.structs)))
	p.PBarrier(r.regBase, r.regBase+pmem.Addr(id))
	p.PSync()
	return id
}

// Structure returns the registered structure with the given durable ID, or
// nil if no such ID was assigned.
func (r *Runtime) Structure(id uint64) Structure {
	if id == 0 || id > uint64(len(r.structs)) {
		return nil
	}
	return r.structs[id-1]
}

// Structures lists the registered structures in creation (ID) order.
func (r *Runtime) Structures() []Structure {
	out := make([]Structure, len(r.structs))
	copy(out, r.structs)
	return out
}

// Engine reports the runtime's configured persistence placement.
func (r *Runtime) Engine() EngineKind { return r.engine }

// Heap exposes the underlying simulated heap (internal test plumbing).
func (r *Runtime) Heap() *pmem.Heap { return r.h }

// newEngine builds one ISB engine of the configured kind. With Config.
// Reclaim the engine's allocator is swapped for the shared reclaimer
// before any structure constructor runs (constructors allocate their
// sentinels through the engine, and those blocks must be reclaimer-owned
// so BlockOf can classify them during the post-crash scan).
func (r *Runtime) newEngine() *isb.Engine {
	var e *isb.Engine
	if r.engine == EngineIsbOpt {
		e = isb.NewEngineOpt(r.h)
	} else {
		e = isb.NewEngine(r.h)
	}
	if r.reclaimer != nil {
		e.SetAllocator(r.reclaimer)
	}
	r.engines = append(r.engines, e)
	return e
}

// Reclaimer exposes the shared epoch reclaimer, or nil when Config.Reclaim
// is off (test and bench plumbing).
func (r *Runtime) Reclaimer() *pmem.Reclaimer { return r.reclaimer }

// ReclaimStats reports the reclaimer's cumulative counters; ok is false
// when reclamation is disabled.
func (r *Runtime) ReclaimStats() (pmem.ReclaimStats, bool) {
	if r.reclaimer == nil {
		return pmem.ReclaimStats{}, false
	}
	return r.reclaimer.Stats(), true
}

// LastScan reports the most recent RecoverAll conservative scan; ok is
// false if no scan has run (reclamation disabled, or no recovery yet).
func (r *Runtime) LastScan() (pmem.ScanReport, bool) { return r.lastScan, r.scanned }

// LiveNodes counts reclaimer blocks currently live or awaiting grace
// (0 when reclamation is disabled): the steady-state heap metric the
// bench pins track.
func (r *Runtime) LiveNodes() uint64 {
	if r.reclaimer == nil {
		return 0
	}
	return r.reclaimer.LiveBlocks()
}

// Proc returns process descriptor id (0-based).
func (r *Runtime) Proc(id int) *Proc { return r.h.Proc(id) }

// NumProcs reports the configured process count.
func (r *Runtime) NumProcs() int { return r.h.NumProcs() }

// ScheduleCrash arms a system-wide crash that fires after roughly n more
// shared-memory accesses (CrashSim only). The process whose access crosses
// the threshold panics with a crash value that Run converts to false.
func (r *Runtime) ScheduleCrash(n uint64) {
	r.h.ScheduleCrashAt(r.h.AccessCount() + n)
}

// CancelCrash disarms a scheduled crash that has not fired.
func (r *Runtime) CancelCrash() { r.h.DisarmCrash() }

// Crash initiates a system-wide crash immediately.
func (r *Runtime) Crash() { r.h.Crash() }

// Crashing reports whether a crash is in progress.
func (r *Runtime) Crashing() bool { return r.h.Crashing() }

// Run executes f, returning false if a simulated crash interrupted it.
// After a crash, call Restart (once all Procs have unwound) and then
// RecoverAll (or a targeted per-structure Recover method).
func (r *Runtime) Run(f func()) bool { return pmem.RunOp(f) }

// Restart discards all volatile state, as a machine restart after a power
// failure would: unflushed writes are lost, persisted state remains. All
// Procs must have unwound (their Run calls returned) before Restart.
func (r *Runtime) Restart() { r.h.ResetAfterCrash() }

// ProcReport is one entry of RecoverAll's report: the structure and
// operation process Proc had announced, and the response recovery
// resolved it to.
type ProcReport struct {
	Proc     int
	StructID uint64
	Op       Op
	Resp     Resp
	// Batch is non-nil when the process crashed inside an ApplyBatch
	// window: one entry per announced operation, partitioned into the
	// completed prefix, the single in-flight operation, and the unstarted
	// suffix (see OpStatus). Op/Resp then mirror the in-flight entry.
	Batch []BatchOpReport
	// Txn is non-nil when the process crashed inside an ApplyTxn: the
	// recovery class and both legs' outcomes (see TxnReport). Op/Resp then
	// mirror leg 1 for a no-effect transaction and leg 2 otherwise.
	Txn *TxnReport
}

// RecoverAll is the registry-routed recovery sweep. Call it after Restart:
// for every process it reads the persistent announcement record; if one is
// set, the announced operation is routed to its structure's RecoverOp and
// resolved, and the outcome is reported. Zero caller bookkeeping is needed
// — the announcement carries the structure ID, operation kind and argument.
//
// Semantics worth knowing:
//   - A process absent from the report either was idle or crashed before
//     its announcement persisted; in the latter case the operation provably
//     performed no tracked writes and can simply be re-submitted.
//   - An announcement may describe an operation that had already completed
//     (the crash landed between its completion and the next Begin).
//     Recovery of a completed operation is idempotent: it changes nothing
//     and re-reports the operation's original response.
//   - For exactly-once consumption of the report, call the structure's
//     Begin(p) before each Apply, as the crash harnesses and examples do:
//     Begin durably retires the previous operation's announcement, so any
//     report entry for p is the current operation's. Without Begin, a
//     report entry can be the previous operation's idempotent
//     re-confirmation, which is indistinguishable from the in-flight one
//     when two consecutive operations are identical — an application that
//     acts on the reported response twice would double-apply it.
//   - RecoverAll may itself be interrupted by a further crash and re-run;
//     announcements are only cleared by each process's next Begin (or the
//     next operation's entry step).
//
// With Config.Reclaim, RecoverAll first runs the reclaimer's conservative
// scan: every block reachable from a structure root or referenced by an
// announced operation's tracking record survives (transitively), every
// retired-ring entry whose checksum persisted intact is honoured, and all
// other blocks — including those whose retirement was lost in the crash —
// return to the free lists. The scan is conservative in one direction
// only: a node may survive that would eventually have been freed (it is
// simply retired again later), but a reachable node is never freed. The
// reclaimer is frozen during the per-process recovery sweep so that an
// early process's re-invoked operation cannot free a block a later
// process's tracking record still names.
func (r *Runtime) RecoverAll() []ProcReport {
	if r.reclaimer != nil {
		p0 := r.h.Proc(0)
		r.lastScan = r.reclaimer.Scan(p0, func(mark func(pmem.Addr)) { r.markAll(p0, mark) })
		r.scanned = true
		for _, e := range r.engines {
			// Pending last-op retirements name pre-crash blocks the scan
			// just re-homed; retiring them now would free live memory.
			e.ForgetRetired()
		}
		r.reclaimer.Freeze()
		defer r.reclaimer.Thaw()
	}
	// A crash can land inside a batch window; the engines' volatile batch
	// state (sync deferral mode, sequence stamps) must not leak into the
	// recovery sweep or the operations after it.
	for _, e := range r.engines {
		e.ResetBatchState()
	}
	var out []ProcReport
	for id := 0; id < r.h.NumProcs(); id++ {
		p := r.h.Proc(id)
		if rep, ok := r.recoverTxn(id); ok {
			out = append(out, rep)
			continue
		}
		if rep, ok := r.recoverBatch(id); ok {
			out = append(out, rep)
			continue
		}
		sid, kind, arg, ok := p.Announcement()
		if !ok {
			continue
		}
		s := r.Structure(sid)
		if s == nil {
			panic(fmt.Sprintf("repro: announcement for unregistered structure %d (proc %d)", sid, id))
		}
		op := Op{Kind: kind, Arg: arg}
		out = append(out, ProcReport{Proc: id, StructID: sid, Op: op, Resp: s.RecoverOp(p, op)})
	}
	return out
}

// recoverBatch resolves process id's crashed batch, if its persistent
// batch announcement validates (checksum intact). The completed-prefix
// cursor partitions the announced operations: responses below it are read
// back from the durable result slots (the cursor only advances after the
// covered result persisted), the operation AT it is resolved through
// per-operation recovery — read-only kinds by re-execution (no later
// operation of the batch ran, and the read left no durable trace),
// mutating kinds through the engine's sequence-guarded recovery, which
// tells this position's tracking record apart from an earlier same-kind
// operation's — and everything above it provably performed no tracked
// writes (OpNoEffect) and is re-submitted by the application.
func (r *Runtime) recoverBatch(id int) (ProcReport, bool) {
	p := r.h.Proc(id)
	sid, n, cursor, ok := p.BatchAnnouncement()
	if !ok {
		return ProcReport{}, false
	}
	s := r.Structure(sid)
	if s == nil {
		panic(fmt.Sprintf("repro: batch announcement for unregistered structure %d (proc %d)", sid, id))
	}
	ba, okBA := s.(batchApplier)
	if !okBA {
		panic(fmt.Sprintf("repro: batch announcement for non-batchable structure %d (proc %d)", sid, id))
	}
	rep := ProcReport{Proc: id, StructID: sid, Batch: make([]BatchOpReport, n)}
	for i := 0; i < n; i++ {
		kind, arg := p.BatchOp(i)
		ent := BatchOpReport{Op: Op{Kind: kind, Arg: arg}}
		switch {
		case i < cursor:
			ent.Status = OpCompleted
			ent.Resp = respOf(p.BatchResult(i))
		case i == cursor:
			ent.Status = OpInFlight
			ent.Resp = respOf(ba.recoverBatchOp(p, i, kind, arg))
		default:
			ent.Status = OpNoEffect
		}
		rep.Batch[i] = ent
	}
	rep.Op = rep.Batch[cursor].Op
	rep.Resp = rep.Batch[cursor].Resp
	return rep, true
}

// reachMarker is the per-structure hook the conservative scan seeds from.
type reachMarker interface {
	MarkReachable(p *Proc, mark func(pmem.Addr))
}

// markAll feeds the reclaimer's scan the transitive closure of every block
// that must survive the crash. Seeds: each structure's root walk (sentinels
// and linked nodes) and each engine's announced tracking records. Closure:
// every word of a surviving block is treated as a possible pointer (with
// the ISB tag bit stripped) — if it lands in a reclaimer block, that block
// survives too. This keeps record-referenced fresh copies (an enqueue's
// new node, a push's top copy) live even though no root reaches them yet,
// at the cost of over-retaining blocks whose payload words merely look
// like addresses — safe, merely conservative.
func (r *Runtime) markAll(p *Proc, mark func(pmem.Addr)) {
	rec := r.reclaimer
	visited := make(map[pmem.Addr]uint64) // block start -> words
	var work []pmem.Addr
	seed := func(a pmem.Addr) {
		if a == pmem.Null {
			return
		}
		start, words, ok := rec.BlockOf(a)
		if !ok {
			return // arena/registry memory: not reclaimer-owned
		}
		if _, seen := visited[start]; seen {
			return
		}
		visited[start] = words
		mark(start)
		work = append(work, start)
	}
	for _, s := range r.structs {
		if m, ok := s.(reachMarker); ok {
			m.MarkReachable(p, seed)
		}
	}
	for _, e := range r.engines {
		e.MarkReachable(p, seed)
	}
	for len(work) > 0 {
		start := work[len(work)-1]
		work = work[:len(work)-1]
		words := visited[start]
		for i := uint64(0); i < words; i++ {
			seed(pmem.Addr(p.Load(start+pmem.Addr(i)) &^ 1))
		}
	}
}

// List is a detectably recoverable sorted set of uint64 keys (paper
// Section 4; ISB-tracking over a Harris-style list).
type List struct {
	l  *list.List
	id uint64
}

// NewList builds a recoverable list with the runtime's configured engine
// (Config.Engine; EngineIsb by default) and registers it for RecoverAll.
func (r *Runtime) NewList() *List {
	e := r.newEngine()
	l := &List{l: list.NewWithEngine(r.h, e)}
	l.id = r.register(l, KindList)
	e.SetAnnounceID(l.id)
	return l
}

// ID is the list's durable registry ID.
func (l *List) ID() uint64 { return l.id }

// Kind reports KindList.
func (l *List) Kind() StructKind { return KindList }

// Apply runs op (OpInsert/OpDelete/OpFind) and returns its response.
// OpFind takes the zero-persist read path (see OpKind.ReadOnly).
func (l *List) Apply(p *Proc, op Op) Resp {
	if op.Kind == OpFind {
		return respOf(l.l.ReadOp(p, op.Kind, op.Arg))
	}
	return respOf(l.l.ApplyOp(p, op.Kind, op.Arg))
}

// RecoverOp resolves an interrupted op after a crash.
func (l *List) RecoverOp(p *Proc, op Op) Resp { return respOf(l.l.RecoverOp(p, op.Kind, op.Arg)) }

// Insert adds key (1 ≤ key ≤ MaxUint64-1); false if present.
func (l *List) Insert(p *Proc, key uint64) bool { return l.l.Insert(p, key) }

// Delete removes key; false if absent.
func (l *List) Delete(p *Proc, key uint64) bool { return l.l.Delete(p, key) }

// Find reports membership (zero-persist read path: no Info record, no
// pwb, no psync; a crashed Find is simply re-submitted).
func (l *List) Find(p *Proc, key uint64) bool { return l.l.FindFast(p, key) }

// Recover completes p's interrupted operation (same kind and key) after a
// crash and returns its response: the targeted wrapper over RecoverOp.
func (l *List) Recover(p *Proc, op, key uint64) bool { return l.l.Recover(p, op, key) }

// Begin is the system-side invocation step used by crash harnesses.
func (l *List) Begin(p *Proc) { l.l.Begin(p) }

// MarkReachable reports the list's reachable nodes to the post-crash
// reclamation scan (see Runtime.RecoverAll).
func (l *List) MarkReachable(p *Proc, mark func(pmem.Addr)) { l.l.MarkReachable(p, mark) }

// Keys snapshots the current key set (requires quiescence).
func (l *List) Keys() []uint64 { return l.l.Keys() }

// CheckInvariants verifies the list's structural invariants at quiescence,
// returning a description of the first violation, or "".
func (l *List) CheckInvariants() string { return l.l.CheckInvariants() }

// Queue is a detectably recoverable FIFO queue (ISB over MS-queue).
type Queue struct {
	q  *queue.Queue
	id uint64
}

// NewQueue builds a recoverable queue with the runtime's configured engine.
func (r *Runtime) NewQueue() *Queue {
	e := r.newEngine()
	q := &Queue{q: queue.NewWithEngine(r.h, e)}
	q.id = r.register(q, KindQueue)
	e.SetAnnounceID(q.id)
	return q
}

// ID is the queue's durable registry ID.
func (q *Queue) ID() uint64 { return q.id }

// Kind reports KindQueue.
func (q *Queue) Kind() StructKind { return KindQueue }

// Apply runs op (OpEnq/OpDeq/OpPeek) and returns its response. OpPeek
// takes the zero-persist read path (see OpKind.ReadOnly).
func (q *Queue) Apply(p *Proc, op Op) Resp { return respOf(q.q.ApplyOp(p, op.Kind, op.Arg)) }

// RecoverOp resolves an interrupted op after a crash.
func (q *Queue) RecoverOp(p *Proc, op Op) Resp { return respOf(q.q.RecoverOp(p, op.Kind, op.Arg)) }

// Enqueue appends v.
func (q *Queue) Enqueue(p *Proc, v uint64) { q.q.Enqueue(p, v) }

// Dequeue removes the oldest value; ok=false on empty.
func (q *Queue) Dequeue(p *Proc) (uint64, bool) { return q.q.Dequeue(p) }

// RecoverEnqueue resolves an interrupted Enqueue(v).
func (q *Queue) RecoverEnqueue(p *Proc, v uint64) {
	q.RecoverOp(p, Op{Kind: OpEnq, Arg: v})
}

// RecoverDequeue resolves an interrupted Dequeue, returning its response
// exactly as Dequeue would (ok=false only on empty; a dequeued value of 0
// is (0, true)).
func (q *Queue) RecoverDequeue(p *Proc) (uint64, bool) {
	return q.RecoverOp(p, Op{Kind: OpDeq}).Value()
}

// Begin is the system-side invocation step used by crash harnesses.
func (q *Queue) Begin(p *Proc) { q.q.Begin(p) }

// MarkReachable reports the queue's reachable nodes to the post-crash
// reclamation scan and repairs the volatile Tail hint.
func (q *Queue) MarkReachable(p *Proc, mark func(pmem.Addr)) { q.q.MarkReachable(p, mark) }

// Values snapshots the queue front-to-back (requires quiescence).
func (q *Queue) Values() []uint64 { return q.q.Values() }

// CheckInvariants verifies the queue's structural invariants at quiescence.
func (q *Queue) CheckInvariants() string { return q.q.CheckInvariants() }

// BST is a detectably recoverable leaf-oriented binary search tree
// (Section 6; ISB over the Ellen et al. non-blocking BST).
type BST struct {
	b  *bst.BST
	id uint64
}

// NewBST builds a recoverable BST with the runtime's configured engine.
func (r *Runtime) NewBST() *BST {
	e := r.newEngine()
	b := &BST{b: bst.NewWithEngine(r.h, e)}
	b.id = r.register(b, KindBST)
	e.SetAnnounceID(b.id)
	return b
}

// ID is the tree's durable registry ID.
func (b *BST) ID() uint64 { return b.id }

// Kind reports KindBST.
func (b *BST) Kind() StructKind { return KindBST }

// Apply runs op (OpInsert/OpDelete/OpFind) and returns its response.
// OpFind takes the zero-persist read path (see OpKind.ReadOnly).
func (b *BST) Apply(p *Proc, op Op) Resp {
	if op.Kind == OpFind {
		return respOf(b.b.ReadOp(p, op.Kind, op.Arg))
	}
	return respOf(b.b.ApplyOp(p, op.Kind, op.Arg))
}

// RecoverOp resolves an interrupted op after a crash.
func (b *BST) RecoverOp(p *Proc, op Op) Resp { return respOf(b.b.RecoverOp(p, op.Kind, op.Arg)) }

// Insert adds key (1 ≤ key ≤ bst.MaxUserKey); false if present.
func (b *BST) Insert(p *Proc, key uint64) bool { return b.b.Insert(p, key) }

// Delete removes key; false if absent.
func (b *BST) Delete(p *Proc, key uint64) bool { return b.b.Delete(p, key) }

// Find reports membership (zero-persist read path; the engine-backed
// detectable finds remain available through internal/bst's OpFind and
// OpFindFast kinds).
func (b *BST) Find(p *Proc, key uint64) bool { return b.b.FindRO(p, key) }

// Recover completes p's interrupted operation after a crash: the targeted
// wrapper over RecoverOp.
func (b *BST) Recover(p *Proc, op, key uint64) bool { return b.b.Recover(p, op, key) }

// Begin is the system-side invocation step used by crash harnesses.
func (b *BST) Begin(p *Proc) { b.b.Begin(p) }

// MarkReachable reports the tree's reachable nodes to the post-crash
// reclamation scan.
func (b *BST) MarkReachable(p *Proc, mark func(pmem.Addr)) { b.b.MarkReachable(p, mark) }

// Keys returns the keys in order (requires quiescence).
func (b *BST) Keys() []uint64 { return b.b.Keys() }

// CheckInvariants verifies the tree's structural invariants at quiescence.
func (b *BST) CheckInvariants() string { return b.b.CheckInvariants() }

// DefaultExchangeSpins is the partner-wait window Apply uses for
// OpExchange. The typed Exchange method takes an explicit window.
const DefaultExchangeSpins = 64

// Exchanger is a detectably recoverable two-party exchange channel.
type Exchanger struct {
	e  *exchanger.Exchanger
	h  *pmem.Heap
	id uint64
}

// NewExchanger builds a recoverable exchanger and registers it for
// RecoverAll.
func (r *Runtime) NewExchanger() *Exchanger {
	e := &Exchanger{e: exchanger.New(r.h), h: r.h}
	e.id = r.register(e, KindExchanger)
	return e
}

// ID is the exchanger's durable registry ID.
func (e *Exchanger) ID() uint64 { return e.id }

// Kind reports KindExchanger.
func (e *Exchanger) Kind() StructKind { return KindExchanger }

// exchResp encodes an exchange outcome: the partner's value on success,
// false if the exchange aborted (timeout / provably no effect).
func exchResp(v uint64, ok bool) Resp {
	if !ok {
		return respOf(isb.RespFalse)
	}
	return respOf(isb.EncodeValue(v))
}

// Apply offers op.Arg for exchange (kind OpExchange), waiting up to
// DefaultExchangeSpins iterations for a partner. The exchanger keeps its
// own recovery registers rather than an ISB engine, so Apply sequences the
// announcement protocol itself: retire the old announcement, reset CP_ex
// (so a previous exchange's recovery data cannot be read as this
// operation's), then announce. Exchange's internal Begin re-runs harmlessly
// after the announcement exists.
func (e *Exchanger) Apply(p *Proc, op Op) Resp {
	p.ClearAnnounce()
	e.e.Begin(p)
	p.Announce(e.id, op.Kind, op.Arg)
	return exchResp(e.e.Exchange(p, op.Arg, exchanger.Symmetric, DefaultExchangeSpins))
}

// RecoverOp resolves an interrupted exchange of op.Arg: the partner's value
// if the collision took effect, false if the operation provably had no
// effect (it is not re-offered; re-submit to retry).
func (e *Exchanger) RecoverOp(p *Proc, op Op) Resp {
	return exchResp(e.e.Recover(p, op.Arg, exchanger.Symmetric, 1, false))
}

// Begin is the system-side invocation step: it durably clears the
// announcement record, then the exchanger's CP register.
func (e *Exchanger) Begin(p *Proc) {
	p.ClearAnnounce()
	e.e.Begin(p)
}

// Exchange offers v and waits up to spins iterations for a partner; on
// success it returns the partner's value. Announcement ordering as in
// Apply.
func (e *Exchanger) Exchange(p *Proc, v uint64, spins int) (uint64, bool) {
	p.ClearAnnounce()
	e.e.Begin(p)
	p.Announce(e.id, OpExchange, v)
	return e.e.Exchange(p, v, exchanger.Symmetric, spins)
}

// Recover resolves an interrupted Exchange(v). retry re-invokes an
// exchange that provably had no effect.
func (e *Exchanger) Recover(p *Proc, v uint64, spins int, retry bool) (uint64, bool) {
	return e.e.Recover(p, v, exchanger.Symmetric, spins, retry)
}

// Stack is a detectably recoverable elimination stack (ISB central stack
// plus exchanger-based elimination).
type Stack struct {
	s  *stack.Stack
	id uint64
}

// NewStack builds a recoverable stack with the runtime's configured engine
// (covering the central stack; the exchanger keeps its own recovery data).
// elimSpins sets the elimination window (0 disables elimination).
func (r *Runtime) NewStack(elimSpins int) *Stack {
	e := r.newEngine()
	s := &Stack{s: stack.NewWithEngine(r.h, e, elimSpins)}
	s.id = r.register(s, KindStack)
	e.SetAnnounceID(s.id)
	return s
}

// ID is the stack's durable registry ID.
func (s *Stack) ID() uint64 { return s.id }

// Kind reports KindStack.
func (s *Stack) Kind() StructKind { return KindStack }

// Apply runs op (OpPush/OpPop/OpTop) and returns its response. The
// announcement is durable before the elimination attempt, so even an
// eliminated operation's effect is routable by RecoverAll. OpTop takes the
// zero-persist read path (see OpKind.ReadOnly).
func (s *Stack) Apply(p *Proc, op Op) Resp { return respOf(s.s.ApplyOp(p, op.Kind, op.Arg)) }

// RecoverOp resolves an interrupted op after a crash.
func (s *Stack) RecoverOp(p *Proc, op Op) Resp { return respOf(s.s.RecoverOp(p, op.Kind, op.Arg)) }

// Push adds v (v ≤ stack.MaxValue).
func (s *Stack) Push(p *Proc, v uint64) { s.s.Push(p, v) }

// Pop removes and returns the top value; ok=false on empty.
func (s *Stack) Pop(p *Proc) (uint64, bool) { return s.s.Pop(p) }

// RecoverPush resolves an interrupted Push(v).
func (s *Stack) RecoverPush(p *Proc, v uint64) { s.RecoverOp(p, Op{Kind: OpPush, Arg: v}) }

// RecoverPop resolves an interrupted Pop, returning its response exactly
// as Pop would (ok=false only on empty; a popped value of 0 is (0, true)).
func (s *Stack) RecoverPop(p *Proc) (uint64, bool) {
	return s.RecoverOp(p, Op{Kind: OpPop}).Value()
}

// Begin is the system-side invocation step used by crash harnesses.
func (s *Stack) Begin(p *Proc) { s.s.Begin(p) }

// MarkReachable reports the stack's reachable nodes to the post-crash
// reclamation scan.
func (s *Stack) MarkReachable(p *Proc, mark func(pmem.Addr)) { s.s.MarkReachable(p, mark) }

// Values snapshots the stack top-to-bottom (requires quiescence).
func (s *Stack) Values() []uint64 { return s.s.Values() }

// CheckInvariants verifies the stack's structural invariants at quiescence.
func (s *Stack) CheckInvariants() string { return s.s.CheckInvariants() }

// HashMap is a detectably recoverable sharded lock-free hash set of uint64
// keys: ISB-tracked Harris lists, one per bucket, sharing a single set of
// per-process recovery registers, plus a persistent per-process shard
// register recording which shard an in-flight operation targets (a
// cross-check on the deterministic hash route today, and the hook online
// resharding will need). Unlike the single-point structures above, its
// throughput scales with cores.
type HashMap struct {
	m  *hashmap.Map
	id uint64
	// argMask, when nonzero, is ANDed onto Op.Arg before it reaches the
	// map: the announcement (and so every RecoverAll report entry) carries
	// the full Arg while the stored key is its masked low bits. See
	// SetArgMask.
	argMask uint64
}

// NewHashMap builds a recoverable hash map with the given shard count
// (rounded up to a power of two, minimum 1) on the runtime's configured
// engine. With EngineIsbOpt each operation phase on a shard's bucket list
// issues one batched barrier and the shard register's write-back is folded
// into the engine's begin barrier.
func (r *Runtime) NewHashMap(shards int) *HashMap {
	e := r.newEngine()
	m := &HashMap{m: hashmap.NewWithEngine(r.h, e, shards)}
	m.id = r.register(m, KindHashMap)
	e.SetAnnounceID(m.id)
	return m
}

// ID is the map's durable registry ID.
func (m *HashMap) ID() uint64 { return m.id }

// Kind reports KindHashMap.
func (m *HashMap) Kind() StructKind { return KindHashMap }

// SetArgMask makes the map treat only arg & mask as the key on the
// Op-based surfaces (Apply, RecoverOp and the batch paths); mask = 0
// restores the default (the full Arg is the key). The masking is applied
// identically on the apply and recover paths, so a recovered operation
// resolves against the same key its original invocation used while the
// announcement — and hence the RecoverAll report — still carries the full
// Arg. Serving layers use the surplus high bits as a client request ID
// that rides the durable announcement across crashes (see internal/serve).
// Set it before operations run; the typed key methods (Insert/Delete/Find)
// always take bare keys and are unaffected.
func (m *HashMap) SetArgMask(mask uint64) { m.argMask = mask }

// key applies the configured arg mask.
func (m *HashMap) key(arg uint64) uint64 {
	if m.argMask != 0 {
		return arg & m.argMask
	}
	return arg
}

// Apply runs op (OpInsert/OpDelete/OpFind) and returns its response.
// OpFind takes the zero-persist read path (see OpKind.ReadOnly): it leaves
// even the shard register untouched.
func (m *HashMap) Apply(p *Proc, op Op) Resp {
	if op.Kind == OpFind {
		return respOf(m.m.ReadOp(p, op.Kind, m.key(op.Arg)))
	}
	return respOf(m.m.ApplyOp(p, op.Kind, m.key(op.Arg)))
}

// RecoverOp resolves an interrupted op after a crash, routing to the
// operation's shard.
func (m *HashMap) RecoverOp(p *Proc, op Op) Resp {
	return respOf(m.m.RecoverOp(p, op.Kind, m.key(op.Arg)))
}

// Insert adds key (1 ≤ key ≤ MaxUint64-1); false if present.
func (m *HashMap) Insert(p *Proc, key uint64) bool { return m.m.Insert(p, key) }

// Delete removes key; false if absent.
func (m *HashMap) Delete(p *Proc, key uint64) bool { return m.m.Delete(p, key) }

// Find reports membership (zero-persist read path: neither the shard
// register nor any tracking state is written).
func (m *HashMap) Find(p *Proc, key uint64) bool { return m.m.FindFast(p, key) }

// Recover completes p's interrupted operation (same kind and key) after a
// crash, routing to the operation's shard, and returns its response.
func (m *HashMap) Recover(p *Proc, op, key uint64) bool { return m.m.Recover(p, op, key) }

// Begin is the system-side invocation step used by crash harnesses.
func (m *HashMap) Begin(p *Proc) { m.m.Begin(p) }

// NumShards reports the map's (power-of-two) shard count.
func (m *HashMap) NumShards() int { return m.m.NumShards() }

// MarkReachable reports every shard's reachable nodes to the post-crash
// reclamation scan.
func (m *HashMap) MarkReachable(p *Proc, mark func(pmem.Addr)) { m.m.MarkReachable(p, mark) }

// Keys snapshots the current key set in ascending order (requires
// quiescence).
func (m *HashMap) Keys() []uint64 { return m.m.Keys() }

// CheckInvariants verifies every shard's structural invariants plus the
// sharding invariant.
func (m *HashMap) CheckInvariants() string { return m.m.CheckInvariants() }
