package repro

import (
	"fmt"

	"repro/internal/isb"
	"repro/internal/pmem"
	"repro/internal/txn"
)

// TxnClass re-exports the transaction recovery classification (see
// internal/txn.Class): exactly one of TxnNoEffect, TxnLeg2Recovered or
// TxnCompleted per recovered transaction.
type TxnClass = txn.Class

const (
	// TxnNoEffect: the commit point was unset and leg 1 provably did not
	// apply — neither structure changed; re-submit the whole transaction.
	TxnNoEffect = txn.ClassNoEffect
	// TxnLeg2Recovered: leg 1's effect is durable and leg 2 was re-driven
	// idempotently; both responses are reported.
	TxnLeg2Recovered = txn.ClassLeg2Recovered
	// TxnCompleted: the transaction finished before the crash; both
	// responses were read back from the durable result slots.
	TxnCompleted = txn.ClassCompleted
)

// TxnLeg names one leg of a two-structure transaction: the structure it
// runs on and the operation to apply there. With ArgFromLeg1 (only valid
// on leg 2) the leg's effective argument is leg 1's response value instead
// of Op.Arg — the dequeue-then-insert handoff shape; when leg 1 carries no
// value (dequeue on empty), the leg is elided and answers Resp.Skipped().
type TxnLeg struct {
	S           Structure
	Op          Op
	ArgFromLeg1 bool
}

// TxnLegReport is one leg's entry in a recovered transaction: where it
// ran, the announced operation, its status, and — unless the whole
// transaction was no-effect — its response.
type TxnLegReport struct {
	StructID uint64
	Op       Op
	Resp     Resp
	Status   OpStatus
}

// TxnReport is the transaction part of a ProcReport: the recovery class
// and both legs. For TxnNoEffect neither leg has a meaningful response
// (the caller re-submits the transaction); otherwise leg responses are
// exactly what the crash-free execution would have returned.
type TxnReport struct {
	Class TxnClass
	Legs  [2]TxnLegReport
}

// BeginTxn is the system-side invocation step for transactions, the
// ApplyTxn counterpart of Structure.Begin: it durably retires the previous
// operation's announcement (single, batch or transaction), so any
// RecoverAll report entry for p is the CURRENT transaction's — without it,
// a crash between a completed ApplyTxn and the next one re-reports the
// previous transaction's idempotent re-confirmation, indistinguishable
// from the in-flight one when two consecutive transactions are identical.
// Callers that thread unique identity through their leg arguments (the
// serve layer's request IDs, the task queue's attempt counters) can skip
// it and reject stale reports by identity instead.
func (r *Runtime) BeginTxn(p *Proc) {
	p.ClearAnnounce()
	p.PSync()
}

// ApplyTxn runs a two-structure transaction: leg 1 to its ISB completion,
// a durable commit point, then leg 2; both responses are returned in leg
// order. The whole admission — CP resets on every involved engine plus ONE
// durable transaction announcement naming both legs — rides a single
// psync, exactly like a batch window's begin.
//
// The crash contract (see RecoverAll and TxnReport): a crashed transaction
// resolves into exactly one of three classes — no-effect (leg 1 provably
// not applied, commit unset: neither structure changed, re-submit),
// leg-2-recovered (leg 1 durable; leg 2 re-driven idempotently through the
// engine's sequence-guarded recovery), or completed (both responses read
// back from durable result slots). Cross-structure atomicity is one-sided
// by construction, like the paper's per-op detectability: after recovery
// completes, leg 1's effect is present iff the commit point is set, and
// leg 2's effect then exists exactly once — never leg 1 without leg 2.
//
// Both legs must be batchable structures (every structure but the
// exchanger). Legs may target the same structure (same-map moves): the
// engine is reset once and the legs' tracking records are fenced apart by
// sequence stamps. Read-only leg kinds run on the zero-persist path and
// re-execute on recovery, exactly as in batches.
func (r *Runtime) ApplyTxn(p *Proc, leg1, leg2 TxnLeg) (Resp, Resp) {
	ba1, ok1 := leg1.S.(batchApplier)
	ba2, ok2 := leg2.S.(batchApplier)
	if !ok1 || !ok2 {
		panic("repro: ApplyTxn requires batchable structures")
	}
	if leg1.ArgFromLeg1 {
		panic("repro: ArgFromLeg1 is only meaningful on leg 2")
	}
	var flags uint64
	if leg2.ArgFromLeg1 {
		flags |= txn.FlagArgFromLeg1
	}
	e1, e2 := ba1.engine(), ba2.engine()
	// Begin sequence, ordering as in BeginOpFor: durably clear the old
	// announcement FIRST (once a CP resets, a stale announcement would
	// re-invoke a completed operation), reset every involved engine's CP,
	// then publish the transaction record — durable before any effect —
	// all under one psync.
	p.ClearAnnounce()
	e1.BeginTxnLeg(p)
	if e2 != e1 {
		e2.BeginTxnLeg(p)
	}
	p.AnnounceTxn(
		pmem.TxnLeg{StructID: leg1.S.ID(), Kind: leg1.Op.Kind, Arg: leg1.Op.Arg},
		pmem.TxnLeg{StructID: leg2.S.ID(), Kind: leg2.Op.Kind, Arg: leg2.Op.Arg},
		flags,
	)
	p.PSync()

	raw1 := ba1.applyBatchOp(p, txn.Leg1Seq, leg1.Op.Kind, leg1.Op.Arg)
	p.SetTxnResult(0, raw1)
	p.CommitTxn()

	arg2, skip := txn.DeriveLeg2Arg(leg2.Op.Arg, flags, raw1)
	raw2 := isb.RespSkipped
	if !skip {
		raw2 = ba2.applyBatchOp(p, txn.Leg2Seq, leg2.Op.Kind, arg2)
	}
	p.SetTxnResult(1, raw2)
	return respOf(raw1), respOf(raw2)
}

// txnLegStruct resolves one announced leg to its registered structure's
// batch surface, panicking on a corrupt registry exactly as the batch path
// does.
func (r *Runtime) txnLegStruct(id int, sid uint64) batchApplier {
	s := r.Structure(sid)
	if s == nil {
		panic(fmt.Sprintf("repro: txn announcement for unregistered structure %d (proc %d)", sid, id))
	}
	ba, ok := s.(batchApplier)
	if !ok {
		panic(fmt.Sprintf("repro: txn announcement for non-batchable structure %d (proc %d)", sid, id))
	}
	return ba
}

// recoverTxn resolves process id's crashed transaction, if its persistent
// transaction announcement validates. The durable commit point partitions
// the cases:
//
//   - Uncommitted: leg 2 provably never started (execution commits
//     strictly before leg 2's first access). Leg 1's durable result slot,
//     or failing that its sequence-stamped tracking record, decides
//     whether leg 1 applied. Not applied → TxnNoEffect (nothing changed;
//     the caller re-submits). Applied → roll FORWARD: persist the result,
//     set the commit point, and fall through to the committed case — the
//     transaction may never half-exist once recovery completes.
//   - Committed, leg 2's result slot empty: re-derive leg 2's argument
//     from the durable leg-1 response and re-drive it through the engine's
//     sequence-guarded recovery (idempotent; further crashes re-enter
//     here) → TxnLeg2Recovered.
//   - Committed, both slots durable: TxnCompleted — answer from the slots.
//
// The report's Op/Resp mirror leg 1 for TxnNoEffect (the operation whose
// re-submission the caller owes) and leg 2 otherwise.
func (r *Runtime) recoverTxn(id int) (ProcReport, bool) {
	p := r.h.Proc(id)
	l1, l2, flags, committed, ok := p.TxnAnnouncement()
	if !ok {
		return ProcReport{}, false
	}
	ba1 := r.txnLegStruct(id, l1.StructID)
	ba2 := r.txnLegStruct(id, l2.StructID)
	op1 := Op{Kind: l1.Kind, Arg: l1.Arg}
	op2 := Op{Kind: l2.Kind, Arg: l2.Arg}
	rep := ProcReport{Proc: id, Txn: &TxnReport{}}
	rep.Txn.Legs[0] = TxnLegReport{StructID: l1.StructID, Op: op1}
	rep.Txn.Legs[1] = TxnLegReport{StructID: l2.StructID, Op: op2}

	if !committed {
		// A nonzero result slot was written by THIS transaction (the slots
		// were durably zeroed before the record became valid), so it alone
		// proves leg 1 applied — covering read-only legs, whose zero-persist
		// execution leaves no tracking record to probe.
		raw1 := p.TxnResult(0)
		if raw1 == 0 && !readOnlyKind(ba1.Kind(), op1.Kind) {
			raw1, _ = ba1.engine().ResolveSeq(p, op1.Kind, ba1.legKey(op1.Arg), txn.Leg1Seq)
		}
		if raw1 == 0 {
			rep.Txn.Class = TxnNoEffect
			rep.Txn.Legs[0].Status = OpNoEffect
			rep.Txn.Legs[1].Status = OpNoEffect
			rep.StructID = l1.StructID
			rep.Op = op1
			return rep, true
		}
		p.SetTxnResult(0, raw1)
		p.CommitTxn()
	}

	raw1 := p.TxnResult(0)
	rep.Txn.Legs[0].Resp = respOf(raw1)
	rep.Txn.Legs[0].Status = OpCompleted

	raw2 := p.TxnResult(1)
	if raw2 != 0 {
		rep.Txn.Class = TxnCompleted
		rep.Txn.Legs[1].Status = OpCompleted
	} else {
		rep.Txn.Class = TxnLeg2Recovered
		rep.Txn.Legs[1].Status = OpInFlight
		arg2, skip := txn.DeriveLeg2Arg(op2.Arg, flags, raw1)
		if skip {
			raw2 = isb.RespSkipped
		} else {
			raw2 = ba2.recoverBatchOp(p, txn.Leg2Seq, op2.Kind, arg2)
		}
		p.SetTxnResult(1, raw2)
	}
	rep.Txn.Legs[1].Resp = respOf(raw2)
	rep.StructID = l2.StructID
	rep.Op = op2
	rep.Resp = respOf(raw2)
	return rep, true
}
