package repro

import "sync"

// CrashGroup coordinates a fixed set of worker goroutines sharing one
// crash-simulated Runtime: it plays "the system" in the paper's model.
// When a scheduled crash fires, every worker's Run unwinds with false and
// calls Park; the last worker to park performs the system's whole
// crash-handling duty — Restart, then exactly ONE RecoverAll — stores the
// per-process reports for the workers to consume (Report), re-arms the
// next crash while any worker remains active, and releases the group.
//
// Leave retires a finished worker. If a pending crash was waiting only on
// the leaver, the leaver runs the recovery on the survivors' behalf — and
// the next crash is re-armed exactly as Park would have, so the survivors'
// remaining work stays under crash coverage instead of running its whole
// tail crash-free (the regression TestCrashGroupReArmsAfterLeave pins).
// When the last worker leaves, any armed-but-unfired crash is cancelled so
// post-run audits (Keys walks) cannot trip it.
type CrashGroup struct {
	rt    *Runtime
	every uint64 // accesses between re-armed crashes; 0 = externally armed

	mu         sync.Mutex
	cond       *sync.Cond
	active     int
	parked     int
	generation int
	crashes    int
	reports    map[int]ProcReport

	// OnRecover, when non-nil, runs after every RecoverAll with the group
	// quiescent (all workers parked, group lock held) and receives the raw
	// report — the hook a serving layer uses to rebuild volatile admission
	// state (e.g. a request-ID → response table) from the durable record.
	OnRecover func([]ProcReport)
}

// NewCrashGroup builds a group of workers sharing rt and, when crashEvery
// is nonzero, arms the first crash (Config.CrashSim must be on in that
// case). crashEvery = 0 leaves arming to the caller; the group still
// handles whatever crashes fire.
func NewCrashGroup(rt *Runtime, workers int, crashEvery uint64) *CrashGroup {
	g := &CrashGroup{rt: rt, every: crashEvery, active: workers, reports: map[int]ProcReport{}}
	g.cond = sync.NewCond(&g.mu)
	if crashEvery > 0 {
		rt.ScheduleCrash(crashEvery)
	}
	return g
}

// recoverLocked runs the system's crash-handling duty. Callers hold g.mu
// and have established that every active worker is parked.
func (g *CrashGroup) recoverLocked() {
	g.rt.Restart()
	reps := g.rt.RecoverAll()
	g.reports = make(map[int]ProcReport, len(reps))
	for _, rep := range reps {
		g.reports[rep.Proc] = rep
	}
	if g.OnRecover != nil {
		g.OnRecover(reps)
	}
	g.crashes++
	g.generation++
	g.parked = 0
	if g.every > 0 && g.active > 0 {
		g.rt.ScheduleCrash(g.every)
	}
	g.cond.Broadcast()
}

// Park blocks a worker whose Run unwound (or that was notified of a crash
// in progress) until the whole group has parked and the system recovered.
// A worker that arrives after the crash was already handled — an idle
// worker woken late — returns immediately.
func (g *CrashGroup) Park() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.rt.Crashing() {
		return
	}
	g.parked++
	if g.parked == g.active {
		g.recoverLocked()
		return
	}
	for gen := g.generation; g.generation == gen; {
		g.cond.Wait()
	}
}

// Leave retires a finished worker from the group (see the type comment for
// the re-arm obligation it carries).
func (g *CrashGroup) Leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.active--
	if g.active == 0 {
		if g.rt.Crashing() {
			g.recoverLocked() // leave the heap recovered for post-run audits
		} else {
			g.rt.CancelCrash()
		}
		return
	}
	if g.parked == g.active && g.rt.Crashing() {
		g.recoverLocked()
	}
}

// Report fetches — and consumes — worker w's entry of the latest
// RecoverAll report, if the sweep resolved an operation for it.
func (g *CrashGroup) Report(w int) (ProcReport, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep, ok := g.reports[w]
	delete(g.reports, w)
	return rep, ok
}

// Crashes reports how many crashes the group has recovered from.
func (g *CrashGroup) Crashes() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.crashes
}
