package repro

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/figures"
	"repro/internal/harness"
	"repro/internal/hashmap"
	"repro/internal/isb"
	"repro/internal/pmem"
)

// ---------------------------------------------------------------------------
// Figure benchmarks: each regenerates one evaluation figure (compact sweep).
// Run `go run ./cmd/benchfig -fig <id>` for full sweeps with printed rows.
// ---------------------------------------------------------------------------

func benchFigure(b *testing.B, id string) {
	f, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	p := figures.QuickParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Run(io.Discard, p)
	}
}

func BenchmarkFig1a(b *testing.B) { benchFigure(b, "1a") }
func BenchmarkFig1b(b *testing.B) { benchFigure(b, "1b") }
func BenchmarkFig1c(b *testing.B) { benchFigure(b, "1c") }
func BenchmarkFig1d(b *testing.B) { benchFigure(b, "1d") }
func BenchmarkFig1e(b *testing.B) { benchFigure(b, "1e") }
func BenchmarkFig1f(b *testing.B) { benchFigure(b, "1f") }
func BenchmarkFig3(b *testing.B)  { benchFigure(b, "3") }
func BenchmarkFig4(b *testing.B)  { benchFigure(b, "4") }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, "5") }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, "6") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "7") }

// ---------------------------------------------------------------------------
// Per-algorithm throughput micro-benchmarks (one data point each), reporting
// the paper's per-operation persistence metrics.
// ---------------------------------------------------------------------------

func benchListAlgo(b *testing.B, algo string, model pmem.Model) {
	cfg := harness.Config{
		Algo: algo, Threads: 2, KeyRange: 500, FindPct: 70,
		OpsPerThread: 2000, Model: model, Seed: 11,
	}
	if model == pmem.SharedCache {
		cfg.PWBLatency = pmem.DefaultPWBLatency
		cfg.PSyncLatency = pmem.DefaultPSyncLatency
	}
	var last harness.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = harness.RunList(cfg)
	}
	b.ReportMetric(last.OpsPerSec, "listops/s")
	b.ReportMetric(last.BarriersPerOp, "barriers/op")
	b.ReportMetric(last.FlushesPerOp, "flushes/op")
}

func BenchmarkListIsb(b *testing.B)      { benchListAlgo(b, harness.AlgoIsb, pmem.SharedCache) }
func BenchmarkListIsbOpt(b *testing.B)   { benchListAlgo(b, harness.AlgoIsbOpt, pmem.SharedCache) }
func BenchmarkListCapsules(b *testing.B) { benchListAlgo(b, harness.AlgoCapsules, pmem.SharedCache) }
func BenchmarkListCapsulesOpt(b *testing.B) {
	benchListAlgo(b, harness.AlgoCapsulesOpt, pmem.SharedCache)
}
func BenchmarkListDTOpt(b *testing.B) { benchListAlgo(b, harness.AlgoDTOpt, pmem.SharedCache) }
func BenchmarkListHarrisPrivate(b *testing.B) {
	benchListAlgo(b, harness.AlgoHarris, pmem.PrivateCache)
}

func benchQueueAlgo(b *testing.B, algo string) {
	cfg := harness.Config{
		Algo: algo, Threads: 2, OpsPerThread: 2000,
		Model: pmem.SharedCache, Seed: 3, QueuePrefill: 2000,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	}
	var last harness.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = harness.RunQueue(cfg)
	}
	b.ReportMetric(last.OpsPerSec, "queueops/s")
	b.ReportMetric(last.BarriersPerOp, "barriers/op")
}

func BenchmarkQueueIsb(b *testing.B)      { benchQueueAlgo(b, harness.QueueIsb) }
func BenchmarkQueueLog(b *testing.B)      { benchQueueAlgo(b, harness.QueueLog) }
func BenchmarkQueueCapsGen(b *testing.B)  { benchQueueAlgo(b, harness.QueueCapsulesGeneral) }
func BenchmarkQueueCapsNorm(b *testing.B) { benchQueueAlgo(b, harness.QueueCapsulesNormal) }
func BenchmarkQueueMS(b *testing.B)       { benchQueueAlgo(b, harness.QueueMS) }

// ---------------------------------------------------------------------------
// Core-structure operation benchmarks through the public API (per-op cost).
// ---------------------------------------------------------------------------

func BenchmarkListInsertDelete(b *testing.B) {
	b.ReportAllocs()
	rt := New(Config{Procs: 1, HeapWords: 1 << 24})
	l := rt.NewList()
	p := rt.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50000 == 49999 { // recycle the arena (no reclamation by design)
			rt = New(Config{Procs: 1, HeapWords: 1 << 24})
			l = rt.NewList()
			p = rt.Proc(0)
		}
		k := uint64(i%512) + 1
		l.Insert(p, k)
		l.Delete(p, k)
	}
}

func BenchmarkListFind(b *testing.B) {
	b.ReportAllocs()
	rt := New(Config{Procs: 1, HeapWords: 1 << 24})
	l := rt.NewList()
	p := rt.Proc(0)
	for k := uint64(1); k <= 256; k++ {
		l.Insert(p, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%200000 == 199999 { // Finds allocate an Info record per call
			rt = New(Config{Procs: 1, HeapWords: 1 << 24})
			l = rt.NewList()
			p = rt.Proc(0)
			for k := uint64(1); k <= 256; k++ {
				l.Insert(p, k)
			}
		}
		l.Find(p, uint64(i%512)+1)
	}
}

func BenchmarkBSTInsertDelete(b *testing.B) {
	b.ReportAllocs()
	rt := New(Config{Procs: 1, HeapWords: 1 << 24})
	t := rt.NewBST()
	p := rt.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50000 == 49999 {
			rt = New(Config{Procs: 1, HeapWords: 1 << 24})
			t = rt.NewBST()
			p = rt.Proc(0)
		}
		k := uint64(i%512) + 1
		t.Insert(p, k)
		t.Delete(p, k)
	}
}

func BenchmarkQueueEnqDeq(b *testing.B) {
	b.ReportAllocs()
	rt := New(Config{Procs: 1, HeapWords: 1 << 24})
	q := rt.NewQueue()
	p := rt.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50000 == 49999 {
			rt = New(Config{Procs: 1, HeapWords: 1 << 24})
			q = rt.NewQueue()
			p = rt.Proc(0)
		}
		q.Enqueue(p, uint64(i)+1)
		q.Dequeue(p)
	}
}

func BenchmarkStackPushPop(b *testing.B) {
	b.ReportAllocs()
	rt := New(Config{Procs: 1, HeapWords: 1 << 24})
	s := rt.NewStack(0)
	p := rt.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50000 == 49999 {
			rt = New(Config{Procs: 1, HeapWords: 1 << 24})
			s = rt.NewStack(0)
			p = rt.Proc(0)
		}
		s.Push(p, uint64(i)+1)
		s.Pop(p)
	}
}

// ---------------------------------------------------------------------------
// Hash-map shard scaling: the same contended mixed workload against a
// 1-shard map (a single bucket list, the structure every other benchmark
// contends on) and a multi-shard map, across 1–8 procs. The multi-shard
// map should pull ahead as procs grow.
// ---------------------------------------------------------------------------

func benchHashMapContended(b *testing.B, shards, procs int) {
	const opsPerProc = 2000
	const keyRange = 256
	for i := 0; i < b.N; i++ {
		rt := New(Config{Procs: procs, HeapWords: 1 << 21})
		m := rt.NewHashMap(shards)
		var wg sync.WaitGroup
		for w := 0; w < procs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := rt.Proc(w)
				rng := rand.New(rand.NewSource(int64(w) + 1))
				for j := 0; j < opsPerProc; j++ {
					k := uint64(rng.Intn(keyRange)) + 1
					switch rng.Intn(4) {
					case 0:
						m.Insert(p, k)
					case 1:
						m.Delete(p, k)
					default:
						m.Find(p, k)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(b.N*procs*opsPerProc)/b.Elapsed().Seconds(), "mapops/s")
}

func BenchmarkHashMapShardScaling(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		for _, shards := range []int{1, 16} {
			b.Run(fmt.Sprintf("procs=%d/shards=%d", procs, shards), func(b *testing.B) {
				benchHashMapContended(b, shards, procs)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Engine batching: the identical contended hash-map workload on the plain
// (Isb) and batched (Isb-Opt) engines across procs × shards, reporting the
// paper's per-operation persistence metrics. Isb-Opt trades the plain
// engine's per-store stand-alone flushes for one deduplicating barrier per
// operation phase (and folds the shard register's psync into the engine's
// begin barrier), so flushes/op, syncs/op, and the combined persists/op
// (pbarrier + stand-alone pwb events) all drop.
// ---------------------------------------------------------------------------

// buildEngineBatchingMap constructs a fresh heap and map for one workload
// run. latency turns on the simulated pwb/psync costs so throughput
// reflects what the batching saves; the counter assertions don't need it.
func buildEngineBatchingMap(mkMap func(h *pmem.Heap) *hashmap.Map, procs int, latency bool) (*pmem.Heap, *hashmap.Map) {
	cfg := pmem.Config{Words: 1 << 21, Procs: procs}
	if latency {
		cfg.PWBLatency = pmem.DefaultPWBLatency
		cfg.PSyncLatency = pmem.DefaultPSyncLatency
	}
	h := pmem.NewHeap(cfg)
	m := mkMap(h)
	h.ResetAllStats()
	return h, m
}

// mapOps is the workload surface shared by the internal hashmap and the
// public (announcing) HashMap wrapper.
type mapOps interface {
	Insert(p *pmem.Proc, key uint64) bool
	Delete(p *pmem.Proc, key uint64) bool
	Find(p *pmem.Proc, key uint64) bool
}

// runEngineBatchingWorkload runs the mixed workload once and returns the
// persistence counters it accumulated (construction excluded).
func runEngineBatchingWorkload(h *pmem.Heap, m mapOps, procs, opsPerProc, keyRange int) pmem.Stats {
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := h.Proc(w)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for j := 0; j < opsPerProc; j++ {
				k := uint64(rng.Intn(keyRange)) + 1
				switch rng.Intn(4) {
				case 0:
					m.Insert(p, k)
				case 1:
					m.Delete(p, k)
				default:
					m.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	return h.TotalStats()
}

func BenchmarkEngineBatching(b *testing.B) {
	const opsPerProc = 2000
	for _, procs := range []int{1, 4, 8} {
		for _, shards := range []int{1, 16} {
			for _, e := range engines() {
				e := e
				name := fmt.Sprintf("engine=%s/procs=%d/shards=%d", e.name, procs, shards)
				b.Run(name, func(b *testing.B) {
					var agg pmem.Stats
					for i := 0; i < b.N; i++ {
						b.StopTimer() // heap + shard construction off the clock
						h, m := buildEngineBatchingMap(func(h *pmem.Heap) *hashmap.Map {
							return hashmap.NewWithEngine(h, e.engine(h), shards)
						}, procs, true)
						b.StartTimer()
						agg.Add(runEngineBatchingWorkload(h, m, procs, opsPerProc, 256))
					}
					ops := float64(b.N * procs * opsPerProc)
					b.ReportMetric(ops/b.Elapsed().Seconds(), "mapops/s")
					b.ReportMetric(float64(agg.Barriers)/ops, "pbarriers/op")
					b.ReportMetric(float64(agg.Flushes)/ops, "flushes/op")
					b.ReportMetric(float64(agg.Syncs)/ops, "syncs/op")
					b.ReportMetric(float64(agg.Barriers+agg.Flushes)/ops, "persists/op")
				})
			}
		}
	}
}

// TestEngineBatchingReducesPersistence pins the acceptance bar behind
// BenchmarkEngineBatching: on the identical workload the batched engine
// must issue fewer persistence-barrier events (pbarriers + stand-alone
// flushes) per op than the plain engine, and fewer stand-alone flushes and
// psyncs outright. The maps are built through the Runtime, so the
// per-process announcement record is active: its write must ride the begin
// barrier (one pwb, zero extra psyncs per op) in both placements, or the
// opt < plain pins below would break.
func TestEngineBatchingReducesPersistence(t *testing.T) {
	build := func(kind EngineKind, shards int) (*pmem.Heap, *HashMap) {
		rt := New(Config{Procs: 1, HeapWords: 1 << 21, Engine: kind})
		m := rt.NewHashMap(shards)
		rt.h.ResetAllStats()
		return rt.h, m
	}
	for _, shards := range []int{1, 16} {
		// Single proc: no helping noise, so the counters are deterministic.
		hp, mp := build(EngineIsb, shards)
		plain := runEngineBatchingWorkload(hp, mp, 1, 800, 64)
		ho, mo := build(EngineIsbOpt, shards)
		opt := runEngineBatchingWorkload(ho, mo, 1, 800, 64)
		if got, want := opt.Barriers+opt.Flushes, plain.Barriers+plain.Flushes; got >= want {
			t.Fatalf("shards=%d: Isb-Opt issued %d persistence barriers, plain %d — batching must reduce them", shards, got, want)
		}
		if opt.Flushes >= plain.Flushes {
			t.Fatalf("shards=%d: Isb-Opt stand-alone flushes %d >= plain %d", shards, opt.Flushes, plain.Flushes)
		}
		if opt.Syncs >= plain.Syncs {
			t.Fatalf("shards=%d: Isb-Opt syncs %d >= plain %d (shard-register folding missing?)", shards, opt.Syncs, plain.Syncs)
		}
	}
}

// BenchmarkCrashRecoveryLatency measures a full crash + restart + detectable
// recovery round-trip for one interrupted list insert.
func BenchmarkCrashRecoveryLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := New(Config{Procs: 1, CrashSim: true, HeapWords: 1 << 20})
		l := rt.NewList()
		p := rt.Proc(0)
		l.Insert(p, 1)
		rt.ScheduleCrash(15)
		if rt.Run(func() { l.Insert(p, 2) }) {
			rt.CancelCrash()
			continue
		}
		rt.Restart()
		if !l.Recover(p, OpInsert, 2) {
			b.Fatal("recovery failed")
		}
	}
}

// ---------------------------------------------------------------------------
// Batched admission: the same seeded hash-map workload driven one op at a
// time (the typed Apply surface) vs through ApplyBatch windows. Batching
// merges each operation's sync points into the window's boundaries — one
// psync per op under Isb, one per window under Isb-Opt — and overlaps the
// write-back latency inside the window, so with the simulated pwb/psync
// costs on, throughput rises with the batch size while the per-op
// persistence counters fall.
// ---------------------------------------------------------------------------

// runBatchAdmission runs opsTotal single-proc operations (findPct% finds,
// remainder split insert/delete) on a fresh prefilled 16-shard map and
// returns the elapsed seconds plus the window's canonical metrics.
func runBatchAdmission(kind EngineKind, batch, opsTotal, findPct int, seed int64) (float64, isb.Stats) {
	rt := New(Config{
		Procs: 1, HeapWords: 1 << 24, Engine: kind,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	})
	m := rt.NewHashMap(16)
	p := rt.Proc(0)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 128; i++ {
		m.Insert(p, uint64(rng.Intn(256))+1)
	}
	rt.Heap().ResetAllStats()
	bs0, rf0, _ := rt.EngineCounters(m)

	ud := 0
	next := func() Op {
		k := uint64(rng.Intn(256)) + 1
		if rng.Intn(100) < findPct {
			return Op{Kind: OpFind, Arg: k}
		}
		if ud++; ud%2 == 0 {
			return Op{Kind: OpInsert, Arg: k}
		}
		return Op{Kind: OpDelete, Arg: k}
	}
	start := time.Now()
	if batch <= 1 {
		for i := 0; i < opsTotal; i++ {
			op := next()
			switch op.Kind {
			case OpFind:
				m.Find(p, op.Arg)
			case OpInsert:
				m.Insert(p, op.Arg)
			default:
				m.Delete(p, op.Arg)
			}
		}
	} else {
		win := make([]Op, 0, batch)
		for i := 0; i < opsTotal; i++ {
			win = append(win, next())
			if len(win) == batch {
				rt.ApplyBatch(p, m, win)
				win = win[:0]
			}
		}
		if len(win) > 0 {
			rt.ApplyBatch(p, m, win)
		}
	}
	elapsed := time.Since(start).Seconds()

	st := isb.Stats{Ops: uint64(opsTotal), Mem: rt.Heap().TotalStats()}
	bs, rf, _ := rt.EngineCounters(m)
	st.BatchSyncs, st.ReadFastPath = bs-bs0, rf-rf0
	return elapsed, st
}

func BenchmarkBatchAdmission(b *testing.B) {
	const opsTotal = 2000
	mixes := []struct {
		name    string
		findPct int
	}{{"read-heavy", 90}, {"mixed", 50}, {"write-heavy", 10}}
	for _, e := range engines() {
		for _, mix := range mixes {
			for _, batch := range []int{1, 8, 64} {
				name := fmt.Sprintf("engine=%s/mix=%s/batch=%d", e.name, mix.name, batch)
				kind := EngineIsb
				if e.name == "isb-opt" {
					kind = EngineIsbOpt
				}
				b.Run(name, func(b *testing.B) {
					var agg isb.Stats
					secs := 0.0
					for i := 0; i < b.N; i++ {
						s, st := runBatchAdmission(kind, batch, opsTotal, mix.findPct, int64(i)+1)
						secs += s
						agg.Ops += st.Ops
						agg.Mem.Add(st.Mem)
						agg.BatchSyncs += st.BatchSyncs
						agg.ReadFastPath += st.ReadFastPath
					}
					if secs > 0 {
						b.ReportMetric(float64(agg.Ops)/secs, "mapops/s")
					}
					b.ReportMetric(agg.PBarriersPerOp(), "pbarriers/op")
					b.ReportMetric(agg.SyncsPerOp(), "syncs/op")
					b.ReportMetric(agg.PersistsPerOp(), "persists/op")
					b.ReportMetric(float64(agg.ReadFastPath)/float64(agg.Ops), "read-fast/op")
				})
			}
		}
	}
}

// TestBatchAdmissionSpeedup is the acceptance bar behind
// BenchmarkBatchAdmission, stated in the persistence counters the speedup
// is made of rather than in wall clock: the counters are workload-
// determined (identical on every run of the same seed), so the test
// cannot flake on a loaded machine. Under Isb-Opt the write-heavy
// workload admitted in batch=64 windows must at least halve syncs/op
// versus one-at-a-time admission — with the simulated latencies on, the
// 2x throughput claim follows mechanically, and the wall-clock ratio
// itself is reported by BenchmarkBatchAdmissionSpeedup, where timing
// belongs.
func TestBatchAdmissionSpeedup(t *testing.T) {
	const opsTotal = 20000
	_, st1 := runBatchAdmission(EngineIsbOpt, 1, opsTotal, 10, 7)
	_, st64 := runBatchAdmission(EngineIsbOpt, 64, opsTotal, 10, 7)
	if 2*st64.SyncsPerOp() > st1.SyncsPerOp() {
		t.Fatalf("batch=64 syncs/op %.3f is not half of batch=1's %.3f (batch1: %v) (batch64: %v)",
			st64.SyncsPerOp(), st1.SyncsPerOp(), st1, st64)
	}
	if st64.PersistsPerOp() >= st1.PersistsPerOp() {
		t.Fatalf("batch=64 persists/op %.2f did not drop below batch=1 %.2f",
			st64.PersistsPerOp(), st1.PersistsPerOp())
	}
	if st64.BatchSyncs == 0 {
		t.Fatal("batch=64 run deferred no syncs; the batch protocol is not engaged")
	}
	t.Logf("write-heavy batch=1: %v", st1)
	t.Logf("write-heavy batch=64: %v (syncs/op %.2fx lower)",
		st64, st1.SyncsPerOp()/st64.SyncsPerOp())
}

// BenchmarkBatchAdmissionSpeedup reports the wall-clock side of the claim
// TestBatchAdmissionSpeedup pins via counters: the batch=64 / batch=1
// throughput ratio under simulated persistence latencies.
func BenchmarkBatchAdmissionSpeedup(b *testing.B) {
	const opsTotal = 20000
	secs1, secs64 := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		s1, _ := runBatchAdmission(EngineIsbOpt, 1, opsTotal, 10, int64(i)+7)
		s64, _ := runBatchAdmission(EngineIsbOpt, 64, opsTotal, 10, int64(i)+7)
		secs1 += s1
		secs64 += s64
	}
	if secs64 > 0 {
		b.ReportMetric(secs1/secs64, "speedup")
		b.ReportMetric(float64(b.N)*opsTotal/secs64, "mapops/s")
	}
}

// ---------------------------------------------------------------------------
// Transaction admission: moving a key between two maps as one two-leg
// ApplyTxn vs as two independent single operations. The transaction pays
// one begin psync for both legs plus the durable commit-point flip between
// them, so the interesting quantity is psyncs per *pair* — the same unit
// in both modes.
// ---------------------------------------------------------------------------

// runTxnAdmission moves `pairs` keys from a prefilled source map into a
// destination map, either as two-leg transactions or as independent
// delete/insert single operations, and returns the canonical metrics with
// Ops = pairs (so per-op figures read as per-pair).
func runTxnAdmission(kind EngineKind, asTxn bool, pairs int, seed int64) isb.Stats {
	rt := New(Config{
		Procs: 1, HeapWords: 1 << 24, Engine: kind,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	})
	src := rt.NewHashMap(4)
	dst := rt.NewHashMap(4)
	p := rt.Proc(0)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 256; i++ {
		src.Insert(p, uint64(rng.Intn(1024))+1)
	}
	rt.Heap().ResetAllStats()

	for i := 0; i < pairs; i++ {
		k := uint64(rng.Intn(1024)) + 1
		if asTxn {
			rt.ApplyTxn(p,
				TxnLeg{S: src, Op: Op{Kind: OpDelete, Arg: k}},
				TxnLeg{S: dst, Op: Op{Kind: OpInsert, Arg: k}})
		} else {
			src.Delete(p, k)
			dst.Insert(p, k)
		}
	}
	return isb.Stats{Ops: uint64(pairs), Mem: rt.Heap().TotalStats()}
}

func BenchmarkTxnAdmission(b *testing.B) {
	const pairs = 2000
	for _, e := range engines() {
		kind := EngineIsb
		if e.name == "isb-opt" {
			kind = EngineIsbOpt
		}
		for _, mode := range []struct {
			name  string
			asTxn bool
		}{{"two-singles", false}, {"txn", true}} {
			b.Run(fmt.Sprintf("engine=%s/mode=%s", e.name, mode.name), func(b *testing.B) {
				var agg isb.Stats
				for i := 0; i < b.N; i++ {
					st := runTxnAdmission(kind, mode.asTxn, pairs, int64(i)+1)
					agg.Ops += st.Ops
					agg.Mem.Add(st.Mem)
				}
				b.ReportMetric(agg.SyncsPerOp(), "syncs/pair")
				b.ReportMetric(agg.PBarriersPerOp(), "pbarriers/pair")
				b.ReportMetric(agg.PersistsPerOp(), "persists/pair")
			})
		}
	}
}

// TestTxnAdmissionSyncCost pins the transaction's admission price: the
// atomicity of a two-leg transaction must not cost more psyncs than
// running its legs as two unrelated single operations — the single begin
// psync covering both legs pays for the commit-point flip. Counter-based
// like TestBatchAdmissionSpeedup, so it cannot flake on wall clock.
func TestTxnAdmissionSyncCost(t *testing.T) {
	const pairs = 4000
	for _, e := range engines() {
		kind := EngineIsb
		if e.name == "isb-opt" {
			kind = EngineIsbOpt
		}
		single := runTxnAdmission(kind, false, pairs, 7)
		txn := runTxnAdmission(kind, true, pairs, 7)
		if txn.SyncsPerOp() > single.SyncsPerOp() {
			t.Fatalf("%s: txn pair costs %.3f syncs, two singles cost %.3f — atomicity must not cost extra psyncs",
				e.name, txn.SyncsPerOp(), single.SyncsPerOp())
		}
		t.Logf("%s: two-singles %.3f syncs/pair, txn %.3f syncs/pair", e.name, single.SyncsPerOp(), txn.SyncsPerOp())
	}
}
