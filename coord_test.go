package repro

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// crashGroupWorker drives ops single-op style under g, consuming reports
// through MatchReport, until its operation count is exhausted.
func crashGroupWorker(rt *Runtime, g *CrashGroup, m *HashMap, w, ops int) {
	p := rt.Proc(w)
	rng := rand.New(rand.NewSource(int64(w) + 1))
	for i := 0; i < ops; i++ {
		kind := OpInsert
		if rng.Intn(2) == 0 {
			kind = OpDelete
		}
		pending := []Op{{Kind: kind, Arg: uint64(rng.Intn(32)) + 1}}
		for len(pending) > 0 {
			op := pending[0]
			if rt.Run(func() { m.Begin(p); m.Apply(p, op) }) {
				pending = nil
				break
			}
			g.Park()
			if rep, ok := g.Report(w); ok {
				pending = pending[MatchReport(rep, pending, func(int, Op, Resp) {}):]
			}
		}
	}
}

// TestCrashGroupReArmsAfterLeave is the regression test for the kvstore
// example's leave() bug: a worker that retires while the system is down
// performs the recovery on the survivors' behalf but — before this PR —
// never re-armed the next crash, so the survivors ran their entire tail
// crash-free. The test retires worker 0 exactly while a crash is pending
// and requires that worker 1's remaining work still crashes afterwards.
func TestCrashGroupReArmsAfterLeave(t *testing.T) {
	rt := New(Config{Procs: 2, CrashSim: true, HeapWords: 1 << 20})
	m := rt.NewHashMap(4)
	const crashEvery = 800
	g := NewCrashGroup(rt, 2, crashEvery)

	atLeave := -1
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // worker 1: the survivor with a long tail
		defer wg.Done()
		defer g.Leave()
		crashGroupWorker(rt, g, m, 1, 1500)
	}()
	go func() { // worker 0: one op, then retire while the system is down
		defer wg.Done()
		crashGroupWorker(rt, g, m, 0, 1)
		parked := func() int {
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.parked
		}
		// Wait until worker 1 is stranded mid-crash, so Leave (not Park) is
		// the call that performs the recovery — the exact buggy path.
		for !rt.Crashing() || parked() != 1 {
			runtime.Gosched()
		}
		atLeave = g.Crashes()
		g.Leave() // last straggler: recovers AND must re-arm for the tail
	}()
	wg.Wait()

	if atLeave < 0 {
		t.Fatal("worker 0 never left while a crash was pending")
	}
	total := g.Crashes()
	// total == atLeave+1 is exactly the old bug: the leave-time recovery
	// happened but the survivor's tail never crashed again.
	if total <= atLeave+1 {
		t.Fatalf("no crash fired after leave(): %d crashes at leave, %d total — leave() did not re-arm",
			atLeave, total)
	}
	if msg := m.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after run: %s", msg)
	}
}
