package repro

import (
	"fmt"
	"testing"
)

// TestOpHotPathZeroAllocs pins zero steady-state Go allocations on the
// operation hot path, through the public Runtime so the announcement path
// is included: every Insert/Delete/Find (and Enqueue/Dequeue, Push/Pop)
// durably announces, runs its phases and persists, and none of it may
// allocate Go memory once scratch buffers (the batched engine's dirty
// slice, the barrier dedup line set) have grown to steady state. The
// simulated pmem arena does not count — its words come from pre-allocated
// slices — which is exactly the point: simulator overhead must not scale
// with operations.
//
// The reclaim=true variants extend the pin over the whole reclamation hot
// path: free-list pops in Alloc, retired-ring writes in Retire, epoch
// pin enter/exit, and the periodic epoch advance + free sweep (the churn
// below crosses the ring's free threshold many times per AllocsPerRun
// window) — none of it may allocate Go memory either. Only the cold paths
// (carving a new slab, the post-crash scan) are allowed to.
func TestOpHotPathZeroAllocs(t *testing.T) {
	for _, e := range engines() {
		for _, reclaim := range []bool{false, true} {
			e, reclaim := e, reclaim
			t.Run(fmt.Sprintf("%s/reclaim=%v", e.name, reclaim), func(t *testing.T) {
				rt := New(Config{Procs: 1, HeapWords: 1 << 22, Engine: e.kind, Reclaim: reclaim})
				p := rt.Proc(0)

				l := rt.NewList()
				q := rt.NewQueue()
				s := rt.NewStack(0)
				// Warm-up: grow scratch buffers and touch every code path once.
				for k := uint64(1); k <= 64; k++ {
					l.Insert(p, k)
				}
				l.Delete(p, 32)
				q.Enqueue(p, 1)
				q.Dequeue(p)
				s.Push(p, 1)
				s.Pop(p)
				// Warm the reclaimer past slab carving: churn one lap so the
				// pinned window reuses freed blocks instead of growing slabs.
				for k := uint64(100); k < 164; k++ {
					l.Insert(p, k)
					l.Delete(p, k)
					q.Enqueue(p, k)
					q.Dequeue(p)
					s.Push(p, k)
					s.Pop(p)
				}

				check := func(name string, f func()) {
					t.Helper()
					if n := testing.AllocsPerRun(100, f); n != 0 {
						t.Errorf("%s: %.1f Go allocations per run, want 0", name, n)
					}
				}
				k := uint64(0)
				check("list insert/find/delete", func() {
					k++
					key := 100 + k%64
					l.Insert(p, key)
					l.Find(p, key)
					l.Delete(p, key)
				})
				check("queue enq/deq", func() {
					q.Enqueue(p, k)
					q.Dequeue(p)
				})
				check("stack push/pop", func() {
					s.Push(p, k)
					s.Pop(p)
				})
			})
		}
	}
}

// TestHashMapOpZeroAllocs extends the pin to the sharded hash map (shard
// routing, register write-back and all), with and without reclamation.
func TestHashMapOpZeroAllocs(t *testing.T) {
	for _, e := range engines() {
		for _, reclaim := range []bool{false, true} {
			e, reclaim := e, reclaim
			t.Run(fmt.Sprintf("%s/reclaim=%v", e.name, reclaim), func(t *testing.T) {
				rt := New(Config{Procs: 1, HeapWords: 1 << 22, Engine: e.kind, Reclaim: reclaim})
				p := rt.Proc(0)
				m := rt.NewHashMap(8)
				for k := uint64(1); k <= 64; k++ {
					m.Insert(p, k)
				}
				// Warm the reclaimer past slab carving: one full churn lap
				// so steady state serves from free lists.
				for k := uint64(100); k < 164; k++ {
					m.Insert(p, k)
					m.Delete(p, k)
				}
				k := uint64(0)
				if n := testing.AllocsPerRun(100, func() {
					k++
					key := 100 + k%64
					m.Insert(p, key)
					m.Find(p, key)
					m.Delete(p, key)
				}); n != 0 {
					t.Errorf("hashmap insert/find/delete: %.1f Go allocations per run, want 0", n)
				}
			})
		}
	}
}

// TestReadFastPathZeroPersist pins the read fast path's twin guarantees
// through the public Runtime, on both engines with and without
// reclamation: a stand-alone read-only operation (list/map/BST Find, queue
// Peek, stack Top) performs zero Go allocations AND zero persistence
// instructions — no pbarrier, no stand-alone pwb, no psync. The mutating
// path pays an Info record, an announcement write-back and sync points per
// operation; the read path must pay literally nothing, which is what makes
// read-heavy workloads on the batched admission path approach volatile
// speed.
func TestReadFastPathZeroPersist(t *testing.T) {
	for _, e := range engines() {
		for _, reclaim := range []bool{false, true} {
			e, reclaim := e, reclaim
			t.Run(fmt.Sprintf("%s/reclaim=%v", e.name, reclaim), func(t *testing.T) {
				rt := New(Config{Procs: 1, HeapWords: 1 << 22, Engine: e.kind, Reclaim: reclaim})
				p := rt.Proc(0)
				l := rt.NewList()
				b := rt.NewBST()
				m := rt.NewHashMap(8)
				q := rt.NewQueue()
				s := rt.NewStack(0)
				for k := uint64(1); k <= 32; k++ {
					l.Insert(p, k)
					b.Insert(p, k)
					m.Insert(p, k)
				}
				q.Enqueue(p, 7)
				s.Push(p, 7)

				check := func(name string, f func()) {
					t.Helper()
					if n := testing.AllocsPerRun(100, f); n != 0 {
						t.Errorf("%s: %.1f Go allocations per run, want 0", name, n)
					}
					before := rt.Heap().TotalStats()
					for i := 0; i < 100; i++ {
						f()
					}
					after := rt.Heap().TotalStats()
					if after.Barriers != before.Barriers || after.Flushes != before.Flushes ||
						after.Syncs != before.Syncs {
						t.Errorf("%s: persistence instructions on the read path: +%d pbarriers +%d pwbs +%d psyncs over 100 runs",
							name, after.Barriers-before.Barriers, after.Flushes-before.Flushes,
							after.Syncs-before.Syncs)
					}
				}
				k := uint64(0)
				check("list find", func() { k++; l.Find(p, 1+k%64) })
				check("bst find", func() { k++; b.Find(p, 1+k%64) })
				check("hashmap find", func() { k++; m.Find(p, 1+k%64) })
				check("queue peek", func() {
					if v, ok := q.Peek(p); !ok || v != 7 {
						t.Fatalf("peek = (%d, %v), want (7, true)", v, ok)
					}
				})
				check("stack top", func() {
					if v, ok := s.Top(p); !ok || v != 7 {
						t.Fatalf("top = (%d, %v), want (7, true)", v, ok)
					}
				})

				// The counter the fast path increments instead: every read
				// above must have been served by it.
				if _, rf, ok := rt.EngineCounters(l); !ok || rf == 0 {
					t.Errorf("list engine read-fast counter = %d (ok=%v), want > 0", rf, ok)
				}
			})
		}
	}
}
