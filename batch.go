package repro

import (
	"repro/internal/isb"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/stack"
)

// Read-only operation kinds added by the batching/fast-read layer.
const (
	// OpPeek returns the queue's front value without dequeuing it.
	OpPeek = queue.OpPeek
	// OpTop returns the stack's top value without popping it.
	OpTop = stack.OpTop
)

// MaxBatch is the largest number of operations one batch announcement can
// carry; ApplyBatch transparently splits longer slices into successive
// windows of at most this size.
const MaxBatch = pmem.MaxBatch

// OpKind describes one operation kind a structure accepts: its durable
// kind code, a human-readable name, and whether the kind is read-only.
// Read-only kinds run on the zero-persist fast path — no Info record, no
// announcement, no pwb and no psync — and consequently leave no durable
// trace: a crash during one simply loses it, and the caller re-submits.
type OpKind struct {
	Kind     uint64
	Name     string
	ReadOnly bool
}

// OpKinds reports the operation kinds the list accepts.
func (l *List) OpKinds() []OpKind {
	return []OpKind{
		{Kind: OpInsert, Name: "insert"},
		{Kind: OpDelete, Name: "delete"},
		{Kind: OpFind, Name: "find", ReadOnly: true},
	}
}

// OpKinds reports the operation kinds the queue accepts.
func (q *Queue) OpKinds() []OpKind {
	return []OpKind{
		{Kind: OpEnq, Name: "enqueue"},
		{Kind: OpDeq, Name: "dequeue"},
		{Kind: OpPeek, Name: "peek", ReadOnly: true},
	}
}

// OpKinds reports the operation kinds the tree accepts.
func (b *BST) OpKinds() []OpKind {
	return []OpKind{
		{Kind: OpInsert, Name: "insert"},
		{Kind: OpDelete, Name: "delete"},
		{Kind: OpFind, Name: "find", ReadOnly: true},
	}
}

// OpKinds reports the operation kinds the stack accepts.
func (s *Stack) OpKinds() []OpKind {
	return []OpKind{
		{Kind: OpPush, Name: "push"},
		{Kind: OpPop, Name: "pop"},
		{Kind: OpTop, Name: "top", ReadOnly: true},
	}
}

// OpKinds reports the operation kinds the map accepts.
func (m *HashMap) OpKinds() []OpKind {
	return []OpKind{
		{Kind: OpInsert, Name: "insert"},
		{Kind: OpDelete, Name: "delete"},
		{Kind: OpFind, Name: "find", ReadOnly: true},
	}
}

// OpKinds reports the operation kinds the exchanger accepts.
func (e *Exchanger) OpKinds() []OpKind {
	return []OpKind{{Kind: OpExchange, Name: "exchange"}}
}

// readOnlyKind reports whether kind is read-only on a structure of
// registry kind k (allocation-free; OpKind carries the same fact for
// callers that can afford a slice).
func readOnlyKind(k StructKind, kind uint64) bool {
	switch k {
	case KindList, KindBST, KindHashMap:
		return kind == OpFind
	case KindQueue:
		return kind == OpPeek
	case KindStack:
		return kind == OpTop
	default:
		return false
	}
}

// EngineCounters reports the cumulative batching/fast-path counters of the
// engine backing s, summed across processes (see isb.Stats): psyncs elided
// by batch deferral and operations served by the zero-persist read path.
// ok is false for structures without a batch surface (the exchanger).
func (r *Runtime) EngineCounters(s Structure) (batchSyncs, readFast uint64, ok bool) {
	ba, isBatch := s.(batchApplier)
	if !isBatch {
		return 0, 0, false
	}
	bs, rf := ba.engine().Counters()
	return bs, rf, true
}

// batchApplier is the internal surface a structure exposes to ApplyBatch
// and the batch branch of RecoverAll.
type batchApplier interface {
	Structure
	engine() *isb.Engine
	applyBatchOp(p *Proc, seq int, kind, arg uint64) uint64
	recoverBatchOp(p *Proc, seq int, kind, arg uint64) uint64
	// legKey maps an operation argument to the key its engine records
	// track (identity everywhere except the hash map's arg mask):
	// transaction recovery probes tracking records by this key.
	legKey(arg uint64) uint64
}

func (l *List) engine() *isb.Engine      { return l.l.Engine() }
func (l *List) legKey(arg uint64) uint64 { return arg }
func (l *List) applyBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return l.l.ApplyBatchOp(p, seq, kind, arg)
}
func (l *List) recoverBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return l.l.RecoverBatchOp(p, seq, kind, arg)
}

func (q *Queue) engine() *isb.Engine      { return q.q.Engine() }
func (q *Queue) legKey(arg uint64) uint64 { return arg }
func (q *Queue) applyBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return q.q.ApplyBatchOp(p, seq, kind, arg)
}
func (q *Queue) recoverBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return q.q.RecoverBatchOp(p, seq, kind, arg)
}

func (b *BST) engine() *isb.Engine      { return b.b.Engine() }
func (b *BST) legKey(arg uint64) uint64 { return arg }
func (b *BST) applyBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind {
		return b.b.ReadOp(p, kind, arg)
	}
	return b.b.ApplyBatchOp(p, seq, kind, arg)
}
func (b *BST) recoverBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind {
		return b.b.ReadOp(p, kind, arg)
	}
	return b.b.RecoverBatchOp(p, seq, kind, arg)
}

func (s *Stack) engine() *isb.Engine      { return s.s.Engine() }
func (s *Stack) legKey(arg uint64) uint64 { return arg }
func (s *Stack) applyBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return s.s.ApplyBatchOp(p, seq, kind, arg)
}
func (s *Stack) recoverBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return s.s.RecoverBatchOp(p, seq, kind, arg)
}

func (m *HashMap) engine() *isb.Engine      { return m.m.Engine() }
func (m *HashMap) legKey(arg uint64) uint64 { return m.key(arg) }
func (m *HashMap) applyBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return m.m.ApplyBatchOp(p, seq, kind, m.key(arg))
}
func (m *HashMap) recoverBatchOp(p *Proc, seq int, kind, arg uint64) uint64 {
	return m.m.RecoverBatchOp(p, seq, kind, m.key(arg))
}

// Peek returns the queue's front value without dequeuing it (zero-persist
// read path); ok=false on empty.
func (q *Queue) Peek(p *Proc) (uint64, bool) { return q.q.Peek(p) }

// Top returns the stack's top value without popping it (zero-persist read
// path); ok=false on empty.
func (s *Stack) Top(p *Proc) (uint64, bool) { return s.s.Top(p) }

// ApplyBatch runs ops on s as one admission batch per window of up to
// MaxBatch operations and returns their responses in order.
//
// One durable batch announcement — the op array, a count, a checksum and a
// completed-prefix cursor — replaces the per-operation announcements, so
// the whole window is admitted under a single psync; each operation's
// remaining sync points defer to the next operation's boundary (EngineIsb:
// still one psync per op, merged at the boundary) or to the window-closing
// psync (EngineIsbOpt: one psync per batch), and write-backs overlap
// inside the window. Read-only kinds run on the zero-persist fast path but
// still occupy their batch position: their response is persisted into the
// batch's result slot at the next boundary, which is what makes a
// recovered in-flight read safe to re-execute — no later operation of the
// same batch can have taken effect before the read's own response was
// durable.
//
// Crash semantics (see RecoverAll): the batch's report entry partitions
// its operations into a completed prefix (responses read back from the
// durable result slots), the single in-flight operation at the cursor
// (resolved through per-operation recovery, exactly as an unbatched op
// would be), and an unstarted suffix that provably performed no tracked
// writes and is simply re-submitted. The guarantee per operation is
// unchanged from single-op Apply; batching only merges WHEN the machinery
// persists, never WHAT.
//
// A single-element batch is admitted as a plain operation, and structures
// without a batch surface (the exchanger) fall back to sequential Apply.
func (r *Runtime) ApplyBatch(p *Proc, s Structure, ops []Op) []Resp {
	if len(ops) == 0 {
		return nil
	}
	ba, batchable := s.(batchApplier)
	out := make([]Resp, len(ops))
	if !batchable || len(ops) == 1 {
		for i, op := range ops {
			s.Begin(p)
			out[i] = s.Apply(p, op)
		}
		return out
	}
	e := ba.engine()
	for base := 0; base < len(ops); base += MaxBatch {
		win := ops[base:min(base+MaxBatch, len(ops))]
		if len(win) == 1 {
			s.Begin(p)
			out[base] = s.Apply(p, win[0])
			break
		}
		e.BeginBatch(p, len(win), func(i int) (uint64, uint64) {
			return win[i].Kind, win[i].Arg
		})
		for i, op := range win {
			if i > 0 {
				e.BatchBoundary(p, i, out[base+i-1].raw)
			}
			out[base+i] = respOf(ba.applyBatchOp(p, i, op.Kind, op.Arg))
		}
		e.EndBatch(p)
	}
	return out
}

// ApplyWindow admits ops exactly like ApplyBatch but ALWAYS through the
// batch announcement protocol, even for a single-operation window (where
// ApplyBatch would fall back to the plain per-op announcement). Serving
// layers that thread request identity through the announcement's Arg (see
// HashMap.SetArgMask) need every admitted operation to appear in a batch
// report entry carrying its full Arg; the per-op fast path would lose
// nothing durable, but its report entry cannot be told apart from an
// earlier identical operation's without the identity bits. s must be
// batchable (every structure but the exchanger).
//
// A window must fit one batch announcement: len(ops) > MaxBatch panics.
// Unlike ApplyBatch, ApplyWindow must NOT silently split an oversized
// window into several announcements — a crash in a later chunk would
// produce a report whose entries align against the window's tail, a
// MatchReport-driven caller would resolve nothing, and re-submitting the
// whole window would re-execute the already-applied earlier chunks.
// Crash-recovery callers clamp their admission size instead (serve does,
// via Config.Batch).
func (r *Runtime) ApplyWindow(p *Proc, s Structure, ops []Op) []Resp {
	ba, batchable := s.(batchApplier)
	if !batchable {
		panic("repro: ApplyWindow requires a batchable structure")
	}
	if len(ops) > MaxBatch {
		panic("repro: ApplyWindow window exceeds MaxBatch")
	}
	if len(ops) == 0 {
		return nil
	}
	out := make([]Resp, len(ops))
	e := ba.engine()
	e.BeginBatch(p, len(ops), func(i int) (uint64, uint64) {
		return ops[i].Kind, ops[i].Arg
	})
	for i, op := range ops {
		if i > 0 {
			e.BatchBoundary(p, i, out[i-1].raw)
		}
		out[i] = respOf(ba.applyBatchOp(p, i, op.Kind, op.Arg))
	}
	e.EndBatch(p)
	return out
}

// OpStatus classifies one batch operation's fate in a RecoverAll report.
type OpStatus int

const (
	// OpCompleted: the operation finished before the crash; its response
	// was read back from the batch's durable result slot.
	OpCompleted OpStatus = iota
	// OpInFlight: the operation was the one in flight at the crash; its
	// response was resolved through per-operation recovery (idempotent —
	// the effect happened at most once).
	OpInFlight
	// OpNoEffect: the operation had provably not started; it performed no
	// tracked writes and can simply be re-submitted.
	OpNoEffect
)

func (s OpStatus) String() string {
	switch s {
	case OpCompleted:
		return "completed"
	case OpInFlight:
		return "in-flight"
	case OpNoEffect:
		return "no-effect"
	default:
		return "OpStatus(?)"
	}
}

// BatchOpReport is one operation's entry in a recovered batch: the
// operation, its status, and — for completed and in-flight operations —
// its response. A no-effect operation's Resp is meaningless.
type BatchOpReport struct {
	Op     Op
	Resp   Resp
	Status OpStatus
}

// ensure the wrapper types satisfy the batch surface (compile-time pins).
var (
	_ batchApplier = (*List)(nil)
	_ batchApplier = (*Queue)(nil)
	_ batchApplier = (*BST)(nil)
	_ batchApplier = (*Stack)(nil)
	_ batchApplier = (*HashMap)(nil)
)
