// Package exchanger implements the paper's detectably recoverable
// exchanger (Section 6). An exchanger lets two processes pair up and swap
// values: the first process captures the slot by installing its ExInfo
// structure and waits; a second process collides with it by CASing its own
// ExInfo into the waiter's partner field.
//
// Detectability hinges on a single decision point: the CAS on the waiter's
// partner field. Both sides can reconstruct the outcome after a crash —
// the waiter's partner field tells it whether (and with whom) it collided;
// the collider records its candidate in its own ExInfo (with a role bit)
// before attempting the CAS, so its recovery re-reads the candidate's
// partner field to learn whether it won.
//
// The partner word encodes role and state in one atomically-written word
// (ExInfo addresses are even):
//
//	0          — no collision yet (waiter, or collider before candidacy)
//	1          — withdrawn: the operation aborted (timeout)
//	even ≠ 0   — a collider's ExInfo: the waiter's exchange succeeded
//	odd  > 1   — candidate|1: this process is a collider courting candidate
package exchanger

import (
	"runtime"

	"repro/internal/isb"
	"repro/internal/pmem"
)

// ExInfo field offsets (words); 4-word allocations.
const (
	xVal     = 0
	xPartner = 1
	xResult  = 2

	exWords = 4
)

const withdrawn uint64 = 1

// Role restricts which side of the exchange an operation may take. The
// elimination stack uses the asymmetric roles so that only pushes install
// and only pops collide (preventing push/push pairing).
type Role int

const (
	// Symmetric: install if the slot is free, otherwise collide.
	Symmetric Role = iota
	// WaiterOnly installs and waits; it never collides.
	WaiterOnly
	// ColliderOnly collides with an installed waiter; it never installs.
	ColliderOnly
)

// Exchanger is a detectably recoverable single-slot exchange channel.
type Exchanger struct {
	h    *pmem.Heap
	slot pmem.Addr
	base pmem.Addr // per-proc RD/CP lines (word0 = RD, word1 = CP)
}

// New allocates an exchanger and its per-process recovery registers.
func New(h *pmem.Heap) *Exchanger {
	p := h.Proc(0)
	e := &Exchanger{h: h}
	raw := p.Alloc(uint64(h.NumProcs()+2) * pmem.WordsPerLine)
	base := (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	e.slot = base
	e.base = base + pmem.WordsPerLine
	p.PBarrier(e.slot)
	p.PSync()
	return e
}

func (e *Exchanger) rd(p *pmem.Proc) pmem.Addr {
	return e.base + pmem.Addr(p.ID()*pmem.WordsPerLine)
}
func (e *Exchanger) cp(p *pmem.Proc) pmem.Addr { return e.rd(p) + 1 }

// Begin is the system-side invocation step (persist CP_q := 0).
func (e *Exchanger) Begin(p *pmem.Proc) {
	cp := e.cp(p)
	p.Store(cp, 0)
	p.PWB(cp)
	p.PSync()
}

// Exchange offers v and waits up to spins iterations for a partner. On
// success it returns the partner's value; ok=false means the operation
// aborted (timeout, or no waiter for a ColliderOnly call).
func (e *Exchanger) Exchange(p *pmem.Proc, v uint64, role Role, spins int) (uint64, bool) {
	e.Begin(p)
	return e.run(p, v, role, spins)
}

func (e *Exchanger) run(p *pmem.Proc, v uint64, role Role, spins int) (uint64, bool) {
	rd, cp := e.rd(p), e.cp(p)
	p.Store(rd, uint64(pmem.Null))
	p.PBarrier(rd)
	p.Store(cp, 1)
	p.PWB(cp)
	p.PSync()

	my := p.Alloc(exWords)
	p.Store(my+xVal, v)
	p.Store(my+xPartner, 0)
	p.Store(my+xResult, isb.RespNone)
	p.PBarrierRange(my, exWords)
	p.Store(rd, uint64(my))
	p.PWB(rd)
	p.PSync()

	for attempt := 0; attempt < spins || attempt == 0; attempt++ {
		other := pmem.Addr(p.Load(e.slot))
		if other == pmem.Null {
			if role == ColliderOnly {
				runtime.Gosched()
				continue
			}
			if p.CASBool(e.slot, uint64(pmem.Null), uint64(my)) {
				p.PWB(e.slot)
				return e.wait(p, my, spins)
			}
			continue
		}
		if role == WaiterOnly {
			// Help clear a stale (withdrawn) occupant so the slot frees up.
			if p.Load(other+xPartner) == withdrawn {
				p.CAS(e.slot, uint64(other), uint64(pmem.Null))
				p.PWB(e.slot)
			}
			runtime.Gosched()
			continue
		}
		if other == my {
			// Stale slot from a previous attempt of ours cannot occur
			// (withdrawal clears it before returning), but be defensive.
			runtime.Gosched()
			continue
		}
		// Collide: record the candidacy (role bit set) before the CAS so
		// recovery can re-derive the outcome, then try to win the partner.
		p.Store(my+xPartner, uint64(other)|1)
		p.PWB(my + xPartner)
		p.PSync()
		if p.CASBool(other+xPartner, 0, uint64(my)) {
			p.PWB(other + xPartner)
			p.PSync()
			p.CAS(e.slot, uint64(other), uint64(pmem.Null))
			p.PWB(e.slot)
			return e.finishSuccess(p, my, other)
		}
		// Lost the race: help clear the slot and retry with a clean state.
		p.CAS(e.slot, uint64(other), uint64(pmem.Null))
		p.PWB(e.slot)
		p.Store(my+xPartner, 0)
		p.PWB(my + xPartner)
		p.PSync()
		runtime.Gosched()
	}
	return e.finishAbort(p, my)
}

// wait spins for a collider after installing my into the slot.
func (e *Exchanger) wait(p *pmem.Proc, my pmem.Addr, spins int) (uint64, bool) {
	for i := 0; i < spins || i == 0; i++ {
		if partner := pmem.Addr(p.Load(my + xPartner)); partner != pmem.Null {
			return e.finishSuccess(p, my, partner)
		}
		runtime.Gosched()
	}
	// Timeout: withdraw. If the withdrawal CAS loses, a collider arrived.
	if p.CASBool(my+xPartner, 0, withdrawn) {
		p.PWB(my + xPartner)
		p.PSync()
		p.CAS(e.slot, uint64(my), uint64(pmem.Null))
		p.PWB(e.slot)
		return e.finishAbort(p, my)
	}
	return e.finishSuccess(p, my, pmem.Addr(p.Load(my+xPartner)))
}

// finishSuccess persists and returns the exchanged value. partner may carry
// the collider role bit.
func (e *Exchanger) finishSuccess(p *pmem.Proc, my, partner pmem.Addr) (uint64, bool) {
	cand := partner &^ 1
	val := p.Load(cand + xVal)
	p.Store(my+xResult, isb.EncodeValue(val))
	p.PWB(my + xResult)
	p.PSync()
	return val, true
}

// finishAbort persists the abort response.
func (e *Exchanger) finishAbort(p *pmem.Proc, my pmem.Addr) (uint64, bool) {
	p.Store(my+xResult, isb.RespFalse)
	p.PWB(my + xResult)
	p.PSync()
	return 0, false
}

// Recover resumes an interrupted Exchange with the same arguments. It
// returns the exchanged value on success, or ok=false if the operation
// aborted. retry controls whether an operation that provably had no effect
// is re-invoked (true) or reported as aborted (false); the elimination
// stack passes false so it can fall back to the central stack.
func (e *Exchanger) Recover(p *pmem.Proc, v uint64, role Role, spins int, retry bool) (uint64, bool) {
	rd, cp := e.rd(p), e.cp(p)
	my := pmem.Addr(p.Load(rd))
	if p.Load(cp) == 0 || my == pmem.Null {
		return e.reinvoke(p, v, role, spins, retry)
	}
	if p.Load(my+xVal) != v {
		// RD describes a different operation: this one never started.
		return e.reinvoke(p, v, role, spins, retry)
	}
	partner := p.Load(my + xPartner)
	switch {
	case partner == 0:
		// Waiter with no collision yet — or never installed. Withdraw if
		// still in the slot, then re-invoke.
		if pmem.Addr(p.Load(e.slot)) == my {
			if !p.CASBool(my+xPartner, 0, withdrawn) {
				return e.finishSuccess(p, my, pmem.Addr(p.Load(my+xPartner)))
			}
			p.PWB(my + xPartner)
			p.PSync()
			p.CAS(e.slot, uint64(my), uint64(pmem.Null))
			p.PWB(e.slot)
		}
		return e.reinvoke(p, v, role, spins, retry)
	case partner == withdrawn:
		return e.reinvoke(p, v, role, spins, retry)
	case partner&1 == 1:
		// Collider: did our CAS on the candidate win?
		cand := pmem.Addr(partner &^ 1)
		if pmem.Addr(p.Load(cand+xPartner)) == my {
			p.CAS(e.slot, uint64(cand), uint64(pmem.Null))
			p.PWB(e.slot)
			return e.finishSuccess(p, my, cand)
		}
		return e.reinvoke(p, v, role, spins, retry)
	default:
		// Waiter that was collided with: the exchange happened.
		return e.finishSuccess(p, my, pmem.Addr(partner))
	}
}

func (e *Exchanger) reinvoke(p *pmem.Proc, v uint64, role Role, spins int, retry bool) (uint64, bool) {
	if !retry {
		return 0, false
	}
	return e.run(p, v, role, spins)
}

// SlotFree reports whether the slot is empty (test helper).
func (e *Exchanger) SlotFree() bool {
	return pmem.Addr(e.h.ReadVolatile(e.slot)) == pmem.Null
}
