package exchanger

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newEx(t *testing.T, procs int) (*Exchanger, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: procs, Tracked: true})
	return New(h), h
}

func TestTimeoutAborts(t *testing.T) {
	e, h := newEx(t, 1)
	p := h.Proc(0)
	if v, ok := e.Exchange(p, 7, Symmetric, 3); ok {
		t.Fatalf("lonely exchange succeeded with %d", v)
	}
	if !e.SlotFree() {
		t.Fatal("slot not cleaned after withdrawal")
	}
}

func TestColliderOnlyAbortsOnEmptySlot(t *testing.T) {
	e, h := newEx(t, 1)
	p := h.Proc(0)
	if _, ok := e.Exchange(p, 7, ColliderOnly, 3); ok {
		t.Fatal("collider succeeded with no waiter")
	}
	if !e.SlotFree() {
		t.Fatal("collider dirtied the slot")
	}
}

func TestPairedExchange(t *testing.T) {
	e, h := newEx(t, 2)
	var v0, v1 uint64
	var ok0, ok1 bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); v0, ok0 = e.Exchange(h.Proc(0), 100, Symmetric, 1<<20) }()
	go func() { defer wg.Done(); v1, ok1 = e.Exchange(h.Proc(1), 200, Symmetric, 1<<20) }()
	wg.Wait()
	if !ok0 || !ok1 {
		t.Fatalf("exchange failed: (%v,%v)", ok0, ok1)
	}
	if v0 != 200 || v1 != 100 {
		t.Fatalf("values crossed wrong: got %d,%d", v0, v1)
	}
	if !e.SlotFree() {
		t.Fatal("slot not cleared")
	}
}

func TestAsymmetricRoles(t *testing.T) {
	e, h := newEx(t, 2)
	var wv, cv uint64
	var wok, cok bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); wv, wok = e.Exchange(h.Proc(0), 1, WaiterOnly, 1<<20) }()
	go func() { defer wg.Done(); cv, cok = e.Exchange(h.Proc(1), 2, ColliderOnly, 1<<20) }()
	wg.Wait()
	if !wok || !cok || wv != 2 || cv != 1 {
		t.Fatalf("asymmetric exchange: waiter (%d,%v), collider (%d,%v)", wv, wok, cv, cok)
	}
}

func TestManyPairs(t *testing.T) {
	const pairs = 4
	e, h := newEx(t, 2*pairs)
	var wg sync.WaitGroup
	got := make([]uint64, 2*pairs)
	oks := make([]bool, 2*pairs)
	for i := 0; i < 2*pairs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], oks[i] = e.Exchange(h.Proc(i), uint64(1000+i), Symmetric, 1<<22)
		}(i)
	}
	wg.Wait()
	// Successful exchanges must form disjoint value pairs.
	matched := map[uint64]int{}
	nOK := 0
	for i, ok := range oks {
		if !ok {
			continue
		}
		nOK++
		matched[got[i]]++
		if got[i] == uint64(1000+i) {
			t.Fatalf("proc %d exchanged with itself", i)
		}
	}
	if nOK%2 != 0 {
		t.Fatalf("odd number of successful exchanges: %d", nOK)
	}
	for v, n := range matched {
		if n != 1 {
			t.Fatalf("value %d received by %d procs", v, n)
		}
	}
}

func TestRecoverAfterCompletedExchange(t *testing.T) {
	e, h := newEx(t, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); e.Exchange(h.Proc(0), 10, Symmetric, 1<<20) }()
	go func() { defer wg.Done(); e.Exchange(h.Proc(1), 20, Symmetric, 1<<20) }()
	wg.Wait()
	// Recovery after completion must report the same outcome, not redo it.
	v, ok := e.Recover(h.Proc(0), 10, Symmetric, 4, false)
	if !ok || v != 20 {
		t.Fatalf("Recover = (%d,%v), want (20,true)", v, ok)
	}
	v, ok = e.Recover(h.Proc(1), 20, Symmetric, 4, false)
	if !ok || v != 10 {
		t.Fatalf("Recover = (%d,%v), want (10,true)", v, ok)
	}
}

func TestRecoverAfterAbort(t *testing.T) {
	e, h := newEx(t, 1)
	p := h.Proc(0)
	e.Exchange(p, 5, Symmetric, 2) // aborts
	if _, ok := e.Recover(p, 5, Symmetric, 2, false); ok {
		t.Fatal("recover of aborted exchange reported success")
	}
}

func TestCrashSweepWaiterInstall(t *testing.T) {
	// Crash at every access offset while a lone waiter installs and then
	// times out; recovery (retry=false) must abort cleanly and leave the
	// slot reusable.
	for offset := uint64(1); offset <= 30; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
		e := New(h)
		p := h.Proc(0)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		var ok bool
		crashed := !pmem.RunOp(func() { _, ok = e.Exchange(p, 9, Symmetric, 2) })
		if crashed {
			h.ResetAfterCrash()
			_, ok = e.Recover(p, 9, Symmetric, 2, false)
		}
		if ok {
			t.Fatalf("offset %d: lonely exchange succeeded", offset)
		}
		// The slot must be usable afterwards: another lonely exchange must
		// install, time out and withdraw cleanly.
		h.DisarmCrash()
		if v, ok := e.Exchange(p, 11, Symmetric, 2); ok {
			t.Fatalf("offset %d: second lonely exchange succeeded with %d", offset, v)
		}
		if !e.SlotFree() {
			t.Fatalf("offset %d: slot left dirty", offset)
		}
	}
}

func TestCrashSweepCollision(t *testing.T) {
	// Proc 0 installs; proc 1 collides with a crash injected at every
	// offset. After recovery both sides must agree on the outcome.
	for offset := uint64(1); offset <= 30; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 2, Tracked: true})
		e := New(h)
		p0, p1 := h.Proc(0), h.Proc(1)

		var w0 uint64
		var ok0, crashed0 bool
		done0 := make(chan struct{})
		go func() {
			defer close(done0)
			crashed0 = !pmem.RunOp(func() { w0, ok0 = e.Exchange(p0, 100, WaiterOnly, 1<<24) })
		}()
		// Wait until p0's ExInfo occupies the slot.
		for e.SlotFree() {
			runtime.Gosched()
		}

		h.ScheduleCrashAt(h.AccessCount() + offset)
		var w1 uint64
		var ok1 bool
		crashed1 := !pmem.RunOp(func() { w1, ok1 = e.Exchange(p1, 200, ColliderOnly, 4) })
		<-done0 // p0 either finished or crashed (the crash flag stops its spin)
		if crashed0 || crashed1 {
			h.ResetAfterCrash()
			if crashed1 {
				w1, ok1 = e.Recover(p1, 200, ColliderOnly, 4, false)
			}
			if crashed0 {
				w0, ok0 = e.Recover(p0, 100, WaiterOnly, 4, false)
			}
		}
		if ok1 != ok0 {
			t.Fatalf("offset %d: outcome disagreement waiter=%v collider=%v (crashed0=%v crashed1=%v)",
				offset, ok0, ok1, crashed0, crashed1)
		}
		if ok1 && (w1 != 100 || w0 != 200) {
			t.Fatalf("offset %d: wrong values waiter=%d collider=%d", offset, w0, w1)
		}
	}
}
