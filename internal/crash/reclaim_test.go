package crash

import (
	"math/rand"
	"testing"

	"repro"
	"repro/internal/linearize"
	"repro/internal/pmem"
)

// Crash-point conformance for crash-consistent node reclamation: the
// reclaim-churn matrix (scenarios.go) drives every structure through a
// crash at every shared-memory access of an operation that runs against
// recycled memory — so the crash offsets also land inside Retire calls,
// ring writes, epoch advances and free-list pushes — and recovery is
// routed through Runtime.RecoverAll, whose conservative scan must re-home
// every block whose retirement did not persist before the announced
// operation resolves. The reclaimer-off cells hold the leak-forever arena
// to the identical bar on identical schedules.
func TestReclaimCrashConformance(t *testing.T) {
	for _, sc := range ReclaimScenarios() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			SweepAllPoints(t, sc.Build, sc.Cases)
		})
	}
}

// TestReclaimScanCrashSweep crashes inside RecoverAll itself — during the
// conservative scan (mark walks, ring audits, free-list rebuilds, the
// epoch reset) and during the frozen recovery sweep that follows — at
// every access offset, then restarts and re-runs RecoverAll. The scan is
// restartable: a second pass must still resolve the announced operation
// and leave the structure in the sequential model's state.
func TestReclaimScanCrashSweep(t *testing.T) {
	for _, eng := range reproEngines() {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			// Deterministic instance: churned list, one insert crashed
			// mid-flight at a fixed offset deep enough to have tagged nodes
			// and allocated records.
			const crashOff = 60
			build := func() (*repro.Runtime, *repro.List) {
				rt := reclaimRT(eng.kind, true)
				l := rt.NewList()
				p := rt.Proc(0)
				for _, k := range reclaimChurnKeys {
					l.Insert(p, k)
					l.Delete(p, k)
				}
				for _, k := range setPrefill {
					l.Insert(p, k)
				}
				l.Begin(p)
				rt.Heap().ScheduleCrashAt(rt.Heap().AccessCount() + crashOff)
				if pmem.RunOp(func() { l.Insert(p, 8) }) {
					t.Fatal("expected the armed crash to interrupt the insert")
				}
				rt.Restart()
				return rt, l
			}
			verify := func(rt *repro.Runtime, l *repro.List, resolved uint64) {
				t.Helper()
				if resolved != linearize.RespTrue {
					t.Fatalf("recovered insert resolved to %d, want true", resolved)
				}
				if msg := setVerify(repro.OpInsert, repro.OpDelete, l.Keys, l.CheckInvariants)(
					SweepCase{Op: Op{Kind: repro.OpInsert, Arg: 8}}); msg != "" {
					t.Fatal(msg)
				}
			}
			resolve := func(rt *repro.Runtime, l *repro.List, p *pmem.Proc) uint64 {
				reps := rt.RecoverAll()
				if len(reps) == 0 {
					return l.Apply(p, repro.Op{Kind: repro.OpInsert, Arg: 8}).Raw()
				}
				return reps[len(reps)-1].Resp.Raw()
			}

			// Measure RecoverAll's access span on an uninterrupted run.
			rt, l := build()
			before := rt.Heap().AccessCount()
			resolved := resolve(rt, l, rt.Proc(0))
			total := rt.Heap().AccessCount() - before
			verify(rt, l, resolved)
			if total == 0 {
				t.Fatal("RecoverAll made no tracked accesses")
			}

			// Sweep every crash offset within RecoverAll's span.
			swept, crashed := 0, 0
			for off := uint64(1); off <= total; off++ {
				swept++
				rt, l := build()
				p := rt.Proc(0)
				rt.Heap().ScheduleCrashAt(rt.Heap().AccessCount() + off)
				var resolved uint64
				if pmem.RunOp(func() { resolved = resolve(rt, l, p) }) {
					rt.Heap().DisarmCrash()
				} else {
					crashed++
					rt.Restart()
					if !pmem.RunOp(func() { resolved = resolve(rt, l, p) }) {
						t.Fatalf("off=%d: second RecoverAll crashed with no crash armed", off)
					}
				}
				verify(rt, l, resolved)
			}
			if crashed == 0 {
				t.Fatalf("no offset of %d swept (%d) interrupted RecoverAll", total, swept)
			}
			t.Logf("RecoverAll span %d accesses; %d offsets swept, %d interrupted", total, swept, crashed)
		})
	}
}

// TestReclaimDifferential pins the reclaimer to the leak-forever arena's
// semantics: the same single-process randomized operation-and-crash
// schedule runs once on each allocator, and every per-operation response,
// the final key set, and set-linearizability must coincide. Crash offsets
// are drawn identically, but the two runs' access streams differ (the
// reclaimer touches rings and epoch lines the arena does not), so crashes
// land at different micro-points — which is the point: the sequential
// model fixes every response regardless of where a crash lands, so any
// divergence is an allocator-semantics bug, not schedule noise.
func TestReclaimDifferential(t *testing.T) {
	for _, eng := range reproEngines() {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			const ops = 600
			run := func(reclaim bool) ([]uint64, []uint64, []linearize.Operation) {
				recovered := 0
				rt := reclaimRT(eng.kind, reclaim)
				m := rt.NewHashMap(4)
				p := rt.Proc(0)
				rng := rand.New(rand.NewSource(99))
				kinds := []uint64{repro.OpInsert, repro.OpDelete, repro.OpFind}
				var resps []uint64
				var hist []linearize.Operation
				clock := uint64(0)
				for i := 0; i < ops; i++ {
					op := repro.Op{Kind: kinds[rng.Intn(3)], Arg: uint64(rng.Intn(24)) + 1}
					armOff := uint64(0)
					if i%5 == 0 {
						armOff = uint64(rng.Intn(500)) + 1
					}
					for !rt.Run(func() { m.Begin(p) }) {
						rt.Restart()
						rt.RecoverAll() // resync the reclaimer; nothing announced
					}
					if armOff != 0 {
						rt.ScheduleCrash(armOff)
					}
					var resp repro.Resp
					ok := rt.Run(func() { resp = m.Apply(p, op) })
					for !ok {
						recovered++
						rt.Restart()
						reps := rt.RecoverAll()
						if len(reps) == 1 {
							resp = reps[0].Resp
							ok = true
						} else {
							// Crash preceded the announcement: re-submit.
							ok = rt.Run(func() { resp = m.Apply(p, op) })
						}
					}
					rt.CancelCrash()
					resps = append(resps, resp.Raw())
					hist = append(hist, linearize.Operation{
						Proc: 0, Kind: op.Kind, Arg: op.Arg, Resp: resp.Raw(),
						Start: clock, End: clock + 1,
					})
					clock += 2
				}
				if recovered == 0 {
					t.Fatal("no operation was ever interrupted: the schedule exercises nothing")
				}
				return resps, m.Keys(), hist
			}
			aResps, aKeys, aHist := run(false)
			rResps, rKeys, rHist := run(true)
			for i := range aResps {
				if aResps[i] != rResps[i] {
					t.Fatalf("op %d: arena resp %d, reclaimer resp %d", i, aResps[i], rResps[i])
				}
			}
			if len(aKeys) != len(rKeys) {
				t.Fatalf("final keys diverge: arena %v, reclaimer %v", aKeys, rKeys)
			}
			for i := range aKeys {
				if aKeys[i] != rKeys[i] {
					t.Fatalf("final keys diverge: arena %v, reclaimer %v", aKeys, rKeys)
				}
			}
			if k, ok := linearize.CheckSetHistory(aHist); !ok {
				t.Fatalf("arena history not linearizable at key %d", k)
			}
			if k, ok := linearize.CheckSetHistory(rHist); !ok {
				t.Fatalf("reclaimer history not linearizable at key %d", k)
			}
		})
	}
}
