package crash

import (
	"math/rand"
	"testing"

	"repro/internal/hashmap"
	"repro/internal/linearize"
	"repro/internal/pmem"
)

// mapGen mirrors listGen (the op codes coincide with linearize kinds).
func mapGen(keys uint64) func(id, i int, rng *rand.Rand) Op {
	return func(id, i int, rng *rand.Rand) Op {
		k := uint64(rng.Intn(int(keys))) + 1
		switch rng.Intn(3) {
		case 0:
			return Op{Kind: hashmap.OpInsert, Arg: k}
		case 1:
			return Op{Kind: hashmap.OpDelete, Arg: k}
		default:
			return Op{Kind: hashmap.OpFind, Arg: k}
		}
	}
}

func runHashMapStorm(t *testing.T, eng engineVariant, seed int64, shards, procs, opsPerProc, crashes int, keys uint64, evictEvery uint64) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 22, Procs: procs, Tracked: true,
		EvictEvery: evictEvery, Seed: uint64(seed) + 1,
	})
	m := hashmap.NewWithEngine(h, eng.mk(h), shards)
	res := Run(Config{
		Heap: h, Target: Adapt(m), Procs: procs, OpsPerProc: opsPerProc,
		Gen: mapGen(keys), Crashes: crashes,
		MeanAccessGap: procs * opsPerProc * 40 / (crashes + 1),
		Seed:          seed,
	})
	if want := procs * opsPerProc; len(res.History) != want {
		t.Fatalf("history has %d ops, want %d (detectability: every op must resolve)", len(res.History), want)
	}
	if msg := m.CheckInvariants(); msg != "" {
		t.Fatalf("structural invariant violated after storm: %s", msg)
	}
	if s, k, ok := linearize.CheckShardedSetHistory(res.History, m.ShardOf); !ok {
		t.Fatalf("history not linearizable at shard %d key %d (seed %d, %d crashes fired, %d recovered ops)",
			s, k, seed, res.CrashesFired, res.RecoveredOps)
	}
	// Final membership must match the history's net successful updates.
	net := map[uint64]int{}
	for _, e := range res.Events {
		if e.Resp != linearize.RespTrue {
			continue
		}
		switch e.Op.Kind {
		case hashmap.OpInsert:
			net[e.Op.Arg]++
		case hashmap.OpDelete:
			net[e.Op.Arg]--
		}
	}
	present := map[uint64]bool{}
	for _, k := range m.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if net[k] != want {
			t.Fatalf("key %d: net successful updates %d but presence %v (seed %d)", k, net[k], present[k], seed)
		}
	}
}

func TestHashMapSingleProcCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 8; seed++ {
			runHashMapStorm(t, eng, seed, 4, 1, 60, 6, 8, 0)
		}
	})
}

func TestHashMapConcurrentCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 6; seed++ {
			runHashMapStorm(t, eng, seed, 8, 4, 40, 5, 16, 0)
		}
	})
}

func TestHashMapOneShardDegeneratesToList(t *testing.T) {
	// shards=1 exercises the same code with every key contending on one
	// bucket, the closest comparison with the plain recoverable list.
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 4; seed++ {
			runHashMapStorm(t, eng, seed, 1, 4, 40, 5, 12, 0)
		}
	})
}

func TestHashMapCrashStormWithEviction(t *testing.T) {
	// Random cache-line eviction persists extra state at arbitrary points,
	// widening the crash-state space (persisted state newer than the last
	// explicit flush).
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 6; seed++ {
			runHashMapStorm(t, eng, seed, 8, 4, 40, 5, 12, 3)
		}
	})
}

func TestHashMapHighCrashRate(t *testing.T) {
	// Crashes every few operations: most operations recover, many recover
	// through multiple crashes.
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 4; seed++ {
			runHashMapStorm(t, eng, seed, 8, 3, 30, 20, 8, 0)
		}
	})
}

func TestHashMapManyProcsManyShardsStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 3; seed++ {
			runHashMapStorm(t, eng, seed, 16, 8, 30, 6, 25, 4)
		}
	})
}
