package crash

import (
	"math/rand"
	"testing"

	"repro/internal/hashmap"
	"repro/internal/linearize"
	"repro/internal/pmem"
)

// mapTarget adapts the recoverable sharded hash map to the storm harness.
type mapTarget struct{ m *hashmap.Map }

func (t mapTarget) Begin(p *pmem.Proc) { t.m.Begin(p) }

func (t mapTarget) Invoke(p *pmem.Proc, op Op) uint64 {
	switch op.Kind {
	case hashmap.OpInsert:
		return respBool(t.m.Insert(p, op.Arg))
	case hashmap.OpDelete:
		return respBool(t.m.Delete(p, op.Arg))
	default:
		return respBool(t.m.Find(p, op.Arg))
	}
}

func (t mapTarget) Recover(p *pmem.Proc, op Op) uint64 {
	return respBool(t.m.Recover(p, op.Kind, op.Arg))
}

// mapGen mirrors listGen (the op codes coincide with linearize kinds).
func mapGen(keys uint64) func(id, i int, rng *rand.Rand) Op {
	return func(id, i int, rng *rand.Rand) Op {
		k := uint64(rng.Intn(int(keys))) + 1
		switch rng.Intn(3) {
		case 0:
			return Op{Kind: hashmap.OpInsert, Arg: k}
		case 1:
			return Op{Kind: hashmap.OpDelete, Arg: k}
		default:
			return Op{Kind: hashmap.OpFind, Arg: k}
		}
	}
}

func runHashMapStorm(t *testing.T, seed int64, shards, procs, opsPerProc, crashes int, keys uint64, evictEvery uint64) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 22, Procs: procs, Tracked: true,
		EvictEvery: evictEvery, Seed: uint64(seed) + 1,
	})
	m := hashmap.New(h, shards)
	res := Run(Config{
		Heap: h, Target: mapTarget{m}, Procs: procs, OpsPerProc: opsPerProc,
		Gen: mapGen(keys), Crashes: crashes,
		MeanAccessGap: procs * opsPerProc * 40 / (crashes + 1),
		Seed:          seed,
	})
	if want := procs * opsPerProc; len(res.History) != want {
		t.Fatalf("history has %d ops, want %d (detectability: every op must resolve)", len(res.History), want)
	}
	if msg := m.CheckInvariants(); msg != "" {
		t.Fatalf("structural invariant violated after storm: %s", msg)
	}
	if s, k, ok := linearize.CheckShardedSetHistory(res.History, m.ShardOf); !ok {
		t.Fatalf("history not linearizable at shard %d key %d (seed %d, %d crashes fired, %d recovered ops)",
			s, k, seed, res.CrashesFired, res.RecoveredOps)
	}
	// Final membership must match the history's net successful updates.
	net := map[uint64]int{}
	for _, e := range res.Events {
		if e.Resp != linearize.RespTrue {
			continue
		}
		switch e.Op.Kind {
		case hashmap.OpInsert:
			net[e.Op.Arg]++
		case hashmap.OpDelete:
			net[e.Op.Arg]--
		}
	}
	present := map[uint64]bool{}
	for _, k := range m.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if net[k] != want {
			t.Fatalf("key %d: net successful updates %d but presence %v (seed %d)", k, net[k], present[k], seed)
		}
	}
}

func TestHashMapSingleProcCrashStorm(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runHashMapStorm(t, seed, 4, 1, 60, 6, 8, 0)
	}
}

func TestHashMapConcurrentCrashStorm(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runHashMapStorm(t, seed, 8, 4, 40, 5, 16, 0)
	}
}

func TestHashMapOneShardDegeneratesToList(t *testing.T) {
	// shards=1 exercises the same code with every key contending on one
	// bucket, the closest comparison with the plain recoverable list.
	for seed := int64(1); seed <= 4; seed++ {
		runHashMapStorm(t, seed, 1, 4, 40, 5, 12, 0)
	}
}

func TestHashMapCrashStormWithEviction(t *testing.T) {
	// Random cache-line eviction persists extra state at arbitrary points,
	// widening the crash-state space (persisted state newer than the last
	// explicit flush).
	for seed := int64(1); seed <= 6; seed++ {
		runHashMapStorm(t, seed, 8, 4, 40, 5, 12, 3)
	}
}

func TestHashMapHighCrashRate(t *testing.T) {
	// Crashes every few operations: most operations recover, many recover
	// through multiple crashes.
	for seed := int64(1); seed <= 4; seed++ {
		runHashMapStorm(t, seed, 8, 3, 30, 20, 8, 0)
	}
}

func TestHashMapManyProcsManyShardsStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	for seed := int64(1); seed <= 3; seed++ {
		runHashMapStorm(t, seed, 16, 8, 30, 6, 25, 4)
	}
}

// TestHashMapEveryCrashPoint sweeps a crash over every shared-memory access
// of representative operations: for each crash point the run restarts,
// recovers, and both the recovered response and the resulting key set must
// match the sequential model.
func TestHashMapEveryCrashPoint(t *testing.T) {
	type crashCase struct {
		name     string
		kind     uint64
		key      uint64
		wantResp bool
		wantIn   bool // key present after the operation completes
	}
	prefill := []uint64{3, 9, 14, 27, 31}
	cases := []crashCase{
		{"insert-fresh", hashmap.OpInsert, 8, true, true},
		{"insert-dup", hashmap.OpInsert, 9, false, true},
		{"delete-present", hashmap.OpDelete, 14, true, false},
		{"delete-absent", hashmap.OpDelete, 15, false, false},
		{"find-present", hashmap.OpFind, 27, true, true},
		{"find-absent", hashmap.OpFind, 28, false, false},
	}

	build := func() (*pmem.Heap, *hashmap.Map, *pmem.Proc) {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
		m := hashmap.New(h, 4)
		p := h.Proc(0)
		for _, k := range prefill {
			m.Insert(p, k)
		}
		return h, m, p
	}

	invoke := func(m *hashmap.Map, p *pmem.Proc, kind, key uint64) bool {
		switch kind {
		case hashmap.OpInsert:
			return m.Insert(p, key)
		case hashmap.OpDelete:
			return m.Delete(p, key)
		default:
			return m.Find(p, key)
		}
	}

	wantKeys := func(c crashCase) map[uint64]bool {
		w := map[uint64]bool{}
		for _, k := range prefill {
			w[k] = true
		}
		if c.wantIn {
			w[c.key] = true
		} else {
			delete(w, c.key)
		}
		return w
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Measure the operation's access count on an identical run. The
			// access counter only advances while a crash is armed, so arm
			// one far beyond the run.
			h, m, p := build()
			h.ScheduleCrashAt(1 << 62)
			before := h.AccessCount()
			m.Begin(p)
			if got := invoke(m, p, c.kind, c.key); got != c.wantResp {
				t.Fatalf("uninterrupted %s = %v, want %v", c.name, got, c.wantResp)
			}
			total := h.AccessCount() - before
			h.DisarmCrash()
			if total == 0 {
				t.Fatal("operation made no tracked accesses")
			}

			covered := 0
			for off := uint64(1); off <= total; off++ {
				h, m, p := build()
				for !pmem.RunOp(func() { m.Begin(p) }) {
					h.ResetAfterCrash()
				}
				h.ScheduleCrashAt(h.AccessCount() + off)
				var resp bool
				if pmem.RunOp(func() { resp = invoke(m, p, c.kind, c.key) }) {
					h.DisarmCrash() // the crash would land after completion
				} else {
					covered++
					h.ResetAfterCrash()
					if !pmem.RunOp(func() { resp = m.Recover(p, c.kind, c.key) }) {
						t.Fatalf("off=%d: recovery crashed with no crash armed", off)
					}
				}
				if resp != c.wantResp {
					t.Fatalf("off=%d: response %v, want %v", off, resp, c.wantResp)
				}
				want := wantKeys(c)
				got := map[uint64]bool{}
				for _, k := range m.Keys() {
					got[k] = true
				}
				if len(got) != len(want) {
					t.Fatalf("off=%d: key set %v, want %v", off, m.Keys(), want)
				}
				for k := range want {
					if !got[k] {
						t.Fatalf("off=%d: key %d missing (set %v)", off, k, m.Keys())
					}
				}
				if msg := m.CheckInvariants(); msg != "" {
					t.Fatalf("off=%d: %s", off, msg)
				}
			}
			if covered == 0 {
				t.Fatal("no crash point actually interrupted the operation")
			}
		})
	}
}
