package crash

import (
	"fmt"

	"repro"
	"repro/internal/isb"
)

// This file is the transaction twin of batchsweep.go: an exhaustive
// crash-point sweep over Runtime.ApplyTxn. Every access offset of a
// two-leg transaction is swept — mid-announcement, mid-leg-1,
// mid-commit-point, mid-leg-2, mid-result-slot — and each crash is
// resolved the way a real application would: through RecoverAll's
// transaction report, re-submitting the whole transaction exactly when the
// report proves it had no effect. Each offset additionally checks
// cross-structure atomicity (a no-effect report means NEITHER structure
// changed; any other class means leg 1's effect never exists without
// leg 2's once recovery returns) and exactly-once under a duplicate
// recovery pass (a second RecoverAll re-reports the completed transaction
// instead of re-applying anything).

// TxnSweepInstance is one freshly built runtime + prefilled structures +
// the transaction under sweep. VerifyPre must report "" exactly when both
// structures still hold their pre-transaction state (the atomicity check
// behind a no-effect report); VerifyPost when they hold the
// crash-free-execution state.
type TxnSweepInstance struct {
	RT         *repro.Runtime
	Leg1, Leg2 repro.TxnLeg
	VerifyPre  func() string
	VerifyPost func() string
}

// TxnSweepCase is the expected crash-free outcome: both legs' encoded
// responses.
type TxnSweepCase struct {
	Name         string
	Want1, Want2 uint64
}

// checkTxnReport validates one transaction report's shape against the
// announced legs.
func checkTxnReport(in TxnSweepInstance, rep repro.ProcReport) error {
	t := rep.Txn
	if t.Legs[0].Op != in.Leg1.Op || t.Legs[0].StructID != in.Leg1.S.ID() {
		return fmt.Errorf("leg 1 reported as %+v on struct %d, announced %+v on %d",
			t.Legs[0].Op, t.Legs[0].StructID, in.Leg1.Op, in.Leg1.S.ID())
	}
	if t.Legs[1].Op != in.Leg2.Op || t.Legs[1].StructID != in.Leg2.S.ID() {
		return fmt.Errorf("leg 2 reported as %+v on struct %d, announced %+v on %d",
			t.Legs[1].Op, t.Legs[1].StructID, in.Leg2.Op, in.Leg2.S.ID())
	}
	switch t.Class {
	case repro.TxnNoEffect:
		if t.Legs[0].Status != repro.OpNoEffect || t.Legs[1].Status != repro.OpNoEffect {
			return fmt.Errorf("no-effect txn with leg statuses %v/%v", t.Legs[0].Status, t.Legs[1].Status)
		}
	case repro.TxnLeg2Recovered:
		if t.Legs[0].Status != repro.OpCompleted || t.Legs[1].Status != repro.OpInFlight {
			return fmt.Errorf("leg2-recovered txn with leg statuses %v/%v", t.Legs[0].Status, t.Legs[1].Status)
		}
	case repro.TxnCompleted:
		if t.Legs[0].Status != repro.OpCompleted || t.Legs[1].Status != repro.OpCompleted {
			return fmt.Errorf("completed txn with leg statuses %v/%v", t.Legs[0].Status, t.Legs[1].Status)
		}
	default:
		return fmt.Errorf("unknown txn class %v", t.Class)
	}
	return nil
}

// resolveTxn turns a crashed ApplyTxn replay into both responses, the way
// an application consumes the transaction report: a no-effect report (or
// no transaction report at all — the announcement never became durable)
// first proves NEITHER structure changed, then re-submits the whole
// transaction; any other class answers from the report.
func resolveTxn(in TxnSweepInstance, p *repro.Proc) (r1, r2 uint64, err error) {
	reps := in.RT.RecoverAll()
	if len(reps) > 1 {
		return 0, 0, fmt.Errorf("single-proc sweep produced %d report entries", len(reps))
	}
	if len(reps) == 1 && reps[0].Txn != nil {
		if err := checkTxnReport(in, reps[0]); err != nil {
			return 0, 0, err
		}
		t := reps[0].Txn
		if t.Class != repro.TxnNoEffect {
			return t.Legs[0].Resp.Raw(), t.Legs[1].Resp.Raw(), nil
		}
	}
	// No effect (or a pre-announcement crash, where any report entry is the
	// prefill's last single operation re-confirming itself): atomicity
	// demands both structures are exactly as before the transaction.
	if msg := in.VerifyPre(); msg != "" {
		return 0, 0, fmt.Errorf("no-effect txn but pre-state check failed: %s", msg)
	}
	resp1, resp2 := in.RT.ApplyTxn(p, in.Leg1, in.Leg2)
	return resp1.Raw(), resp2.Raw(), nil
}

// RunTxnCase is the transaction sweep core: measure the uninterrupted
// transaction's tracked access span, then replay it once per access offset
// with a crash armed exactly there, resolving each crash through the
// transaction report (plus whole-transaction re-submission for no-effect),
// and checking both responses, the post-state, and duplicate-recovery
// idempotence every time. Returns how many offsets actually interrupted
// the transaction.
func RunTxnCase(build func() TxnSweepInstance, c TxnSweepCase) (crashPoints int, err error) {
	check := func(r1, r2 uint64, off uint64) error {
		if r1 != c.Want1 || r2 != c.Want2 {
			return fmt.Errorf("%s off=%d: responses (%d, %d), want (%d, %d)", c.Name, off, r1, r2, c.Want1, c.Want2)
		}
		return nil
	}

	in := build()
	p := in.RT.Proc(0)
	if msg := in.VerifyPre(); msg != "" {
		return 0, fmt.Errorf("%s: pre-state check failed before the txn ran: %s", c.Name, msg)
	}
	before := in.RT.Heap().AccessCount()
	resp1, resp2 := in.RT.ApplyTxn(p, in.Leg1, in.Leg2)
	total := in.RT.Heap().AccessCount() - before
	if err := check(resp1.Raw(), resp2.Raw(), 0); err != nil {
		return 0, fmt.Errorf("uninterrupted %v", err)
	}
	if msg := in.VerifyPost(); msg != "" {
		return 0, fmt.Errorf("uninterrupted %s: %s", c.Name, msg)
	}
	if total == 0 {
		return 0, fmt.Errorf("%s: transaction made no tracked accesses", c.Name)
	}

	for off := uint64(1); off <= total; off++ {
		in := build()
		p := in.RT.Proc(0)
		in.RT.ScheduleCrash(off)
		var r1, r2 uint64
		if in.RT.Run(func() {
			a, b := in.RT.ApplyTxn(p, in.Leg1, in.Leg2)
			r1, r2 = a.Raw(), b.Raw()
		}) {
			in.RT.CancelCrash()
		} else {
			crashPoints++
			in.RT.Restart()
			var rerr error
			r1, r2, rerr = resolveTxn(in, p)
			if rerr != nil {
				return crashPoints, fmt.Errorf("%s off=%d: %v", c.Name, off, rerr)
			}
		}
		if err := check(r1, r2, off); err != nil {
			return crashPoints, err
		}
		if msg := in.VerifyPost(); msg != "" {
			return crashPoints, fmt.Errorf("%s off=%d: %s", c.Name, off, msg)
		}
		// Exactly-once under duplicate recovery: a second RecoverAll — the
		// duplicate-resubmit path a rebooted application drives — must
		// re-report the transaction as completed with the same responses
		// and change nothing.
		reps := in.RT.RecoverAll()
		if len(reps) != 1 || reps[0].Txn == nil {
			return crashPoints, fmt.Errorf("%s off=%d: duplicate recovery produced %d entries (txn: %v)",
				c.Name, off, len(reps), len(reps) == 1 && reps[0].Txn != nil)
		}
		dup := reps[0].Txn
		if dup.Class != repro.TxnCompleted {
			return crashPoints, fmt.Errorf("%s off=%d: duplicate recovery class %v, want completed", c.Name, off, dup.Class)
		}
		if err := check(dup.Legs[0].Resp.Raw(), dup.Legs[1].Resp.Raw(), off); err != nil {
			return crashPoints, fmt.Errorf("duplicate recovery %v", err)
		}
		if msg := in.VerifyPost(); msg != "" {
			return crashPoints, fmt.Errorf("%s off=%d: after duplicate recovery: %s", c.Name, off, msg)
		}
	}
	if crashPoints == 0 {
		return 0, fmt.Errorf("%s: no crash point actually interrupted the transaction", c.Name)
	}
	return crashPoints, nil
}

// TxnScenario is one (shape, engine kind, reclaim mode) cell of the
// transaction conformance matrix.
type TxnScenario struct {
	Shape   string
	Engine  string
	Reclaim bool
	Build   func() TxnSweepInstance
	Case    TxnSweepCase
}

// Name identifies the cell in test output.
func (s TxnScenario) Name() string {
	mode := "arena"
	if s.Reclaim {
		mode = "reclaim"
	}
	return s.Shape + "/" + s.Engine + "/" + mode
}

// txnKeysCheck compares a key snapshot against want.
func txnKeysCheck(label string, keys func() []uint64, want []uint64) string {
	got := keys()
	if len(got) != len(want) {
		return fmt.Sprintf("%s keys %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("%s keys %v, want %v", label, got, want)
		}
	}
	return ""
}

// TxnScenarios returns the transaction conformance matrix: four
// transaction shapes — queue→map handoff with a derived argument, a move
// between two maps (two engines), a move within one map (one engine, two
// sequence-stamped legs), and an elided leg 2 (handoff from an empty
// queue) — × both public engine kinds × reclamation on/off.
func TxnScenarios() []TxnScenario {
	var out []TxnScenario
	for _, eng := range []struct {
		name string
		kind repro.EngineKind
	}{{"isb", repro.EngineIsb}, {"isb-opt", repro.EngineIsbOpt}} {
		for _, rec := range []bool{false, true} {
			eng, rec := eng, rec
			out = append(out,
				TxnScenario{
					Shape: "handoff", Engine: eng.name, Reclaim: rec,
					Build: func() TxnSweepInstance {
						rt := batchRT(eng.kind, rec)
						q := rt.NewQueue()
						m := rt.NewHashMap(4)
						p := rt.Proc(0)
						q.Enqueue(p, 7)
						m.Insert(p, 3)
						check := func(qWant, mWant []uint64) func() string {
							return func() string {
								if msg := txnKeysCheck("queue", q.Values, qWant); msg != "" {
									return msg
								}
								if msg := txnKeysCheck("map", m.Keys, mWant); msg != "" {
									return msg
								}
								if msg := q.CheckInvariants(); msg != "" {
									return msg
								}
								return m.CheckInvariants()
							}
						}
						return TxnSweepInstance{
							RT:         rt,
							Leg1:       repro.TxnLeg{S: q, Op: repro.Op{Kind: repro.OpDeq}},
							Leg2:       repro.TxnLeg{S: m, Op: repro.Op{Kind: repro.OpInsert}, ArgFromLeg1: true},
							VerifyPre:  check([]uint64{7}, []uint64{3}),
							VerifyPost: check(nil, []uint64{3, 7}),
						}
					},
					Case: TxnSweepCase{Name: "deq-insert", Want1: isb.EncodeValue(7), Want2: isb.RespTrue},
				},
				TxnScenario{
					Shape: "two-map-move", Engine: eng.name, Reclaim: rec,
					Build: func() TxnSweepInstance {
						rt := batchRT(eng.kind, rec)
						src := rt.NewHashMap(2)
						dst := rt.NewHashMap(2)
						p := rt.Proc(0)
						src.Insert(p, 5)
						dst.Insert(p, 9)
						check := func(sWant, dWant []uint64) func() string {
							return func() string {
								if msg := txnKeysCheck("src", src.Keys, sWant); msg != "" {
									return msg
								}
								if msg := txnKeysCheck("dst", dst.Keys, dWant); msg != "" {
									return msg
								}
								if msg := src.CheckInvariants(); msg != "" {
									return msg
								}
								return dst.CheckInvariants()
							}
						}
						return TxnSweepInstance{
							RT:         rt,
							Leg1:       repro.TxnLeg{S: src, Op: repro.Op{Kind: repro.OpDelete, Arg: 5}},
							Leg2:       repro.TxnLeg{S: dst, Op: repro.Op{Kind: repro.OpInsert, Arg: 5}},
							VerifyPre:  check([]uint64{5}, []uint64{9}),
							VerifyPost: check(nil, []uint64{5, 9}),
						}
					},
					Case: TxnSweepCase{Name: "move", Want1: isb.RespTrue, Want2: isb.RespTrue},
				},
				TxnScenario{
					Shape: "same-map-move", Engine: eng.name, Reclaim: rec,
					Build: func() TxnSweepInstance {
						rt := batchRT(eng.kind, rec)
						m := rt.NewHashMap(4)
						p := rt.Proc(0)
						m.Insert(p, 5)
						check := func(want []uint64) func() string {
							return func() string {
								if msg := txnKeysCheck("map", m.Keys, want); msg != "" {
									return msg
								}
								return m.CheckInvariants()
							}
						}
						return TxnSweepInstance{
							RT:         rt,
							Leg1:       repro.TxnLeg{S: m, Op: repro.Op{Kind: repro.OpDelete, Arg: 5}},
							Leg2:       repro.TxnLeg{S: m, Op: repro.Op{Kind: repro.OpInsert, Arg: 9}},
							VerifyPre:  check([]uint64{5}),
							VerifyPost: check([]uint64{9}),
						}
					},
					Case: TxnSweepCase{Name: "rename", Want1: isb.RespTrue, Want2: isb.RespTrue},
				},
				TxnScenario{
					Shape: "empty-handoff", Engine: eng.name, Reclaim: rec,
					Build: func() TxnSweepInstance {
						rt := batchRT(eng.kind, rec)
						q := rt.NewQueue()
						m := rt.NewHashMap(2)
						p := rt.Proc(0)
						m.Insert(p, 3)
						check := func() string {
							if msg := txnKeysCheck("queue", q.Values, nil); msg != "" {
								return msg
							}
							if msg := txnKeysCheck("map", m.Keys, []uint64{3}); msg != "" {
								return msg
							}
							return m.CheckInvariants()
						}
						return TxnSweepInstance{
							RT:         rt,
							Leg1:       repro.TxnLeg{S: q, Op: repro.Op{Kind: repro.OpDeq}},
							Leg2:       repro.TxnLeg{S: m, Op: repro.Op{Kind: repro.OpInsert}, ArgFromLeg1: true},
							VerifyPre:  check,
							VerifyPost: check,
						}
					},
					Case: TxnSweepCase{Name: "deq-empty", Want1: isb.RespEmpty, Want2: isb.RespSkipped},
				},
			)
		}
	}
	return out
}
