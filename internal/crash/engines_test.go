package crash

import (
	"testing"

	"repro/internal/isb"
	"repro/internal/pmem"
)

// engineVariant is the storm tests' view of an EngineVariant (scenarios.go):
// one persistence placement and its engine factory. The whole crash suite —
// storms and the crash-point conformance sweep — runs once per variant,
// holding Isb and Isb-Opt to the same detectability bar.
type engineVariant struct {
	name string
	mk   func(h *pmem.Heap) *isb.Engine
}

func engineVariants() []engineVariant {
	var out []engineVariant
	for _, v := range EngineVariants() {
		out = append(out, engineVariant{name: v.Name, mk: v.New})
	}
	return out
}

// forEachEngine runs f as a subtest per engine variant.
func forEachEngine(t *testing.T, f func(t *testing.T, eng engineVariant)) {
	t.Helper()
	for _, eng := range engineVariants() {
		t.Run(eng.name, func(t *testing.T) { f(t, eng) })
	}
}
