package crash

import (
	"testing"

	"repro/internal/isb"
	"repro/internal/pmem"
)

// engineVariant names one persistence placement and builds its engine. The
// whole crash suite — storms and the crash-point conformance sweep — runs
// once per variant, holding Isb and Isb-Opt to the same detectability bar.
type engineVariant struct {
	name string
	mk   func(h *pmem.Heap) *isb.Engine
}

func engineVariants() []engineVariant {
	return []engineVariant{
		{"isb", isb.NewEngine},
		{"isb-opt", isb.NewEngineOpt},
	}
}

// forEachEngine runs f as a subtest per engine variant.
func forEachEngine(t *testing.T, f func(t *testing.T, eng engineVariant)) {
	t.Helper()
	for _, eng := range engineVariants() {
		t.Run(eng.name, func(t *testing.T) { f(t, eng) })
	}
}
