package crash

import "testing"

// TestBatchPrefixDurable is the batched-admission conformance sweep: for
// every cell of the batch matrix (five structures × both engine placements
// × reclamation on/off) and every tracked access offset of an ApplyBatch
// window — including mid-batch-announcement and mid-cursor-advance — a
// system-wide crash is injected, recovery is driven through RecoverAll's
// batch report (completed prefix from the durable result slots, the single
// in-flight operation through per-op recovery, the no-effect suffix
// re-submitted), and every response plus the final structure state must
// match the sequential model.
func TestBatchPrefixDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive batch crash-point sweep")
	}
	for _, sc := range BatchScenarios() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			SweepAllBatchPoints(t, sc.Build, sc.Cases)
		})
	}
}
