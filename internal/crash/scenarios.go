package crash

import (
	"fmt"

	"repro"
	"repro/internal/bst"
	"repro/internal/hashmap"
	"repro/internal/isb"
	"repro/internal/list"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/stack"
)

// This file is the non-test home of the crash-point conformance matrix:
// which structures are swept, under which engine placements and heap
// configurations, with which operation cases and post-state oracles. The
// conformance tests iterate it under `go test`; cmd/bench iterates the same
// matrix to measure (and pin, via BENCH_*.json) the sweep's wall clock.

// sweepHeapWords sizes a sweep heap. Sweeps rebuild the heap once per crash
// offset, so the tracked images must stay small: at 1<<16 words a rebuild
// zeroes ~1 MiB instead of the 32 MiB a benchmark-sized arena would cost
// (which used to dominate the conformance job's wall clock).
const sweepHeapWords = 1 << 16

// EngineVariant names one persistence placement (and optionally a heap
// eviction rate) the conformance matrix runs under.
type EngineVariant struct {
	Name string
	// Evict is the sweep heap's Config.EvictEvery: >0 adds simulated
	// arbitrary cache evictions, widening the crash-state space (persisted
	// state may be newer than the last explicit sync).
	Evict uint64
	New   func(h *pmem.Heap) *isb.Engine
}

// EngineVariants returns the two persistence placements every crash test
// holds to the same detectability bar.
func EngineVariants() []EngineVariant {
	return []EngineVariant{
		{Name: "isb", New: isb.NewEngine},
		{Name: "isb-opt", New: isb.NewEngineOpt},
	}
}

// SweepEngineVariants is EngineVariants plus the eviction-enabled heap
// variants the crash-point sweep additionally covers.
func SweepEngineVariants() []EngineVariant {
	return append(EngineVariants(),
		EngineVariant{Name: "isb-evict", Evict: 32, New: isb.NewEngine},
		EngineVariant{Name: "isb-opt-evict", Evict: 32, New: isb.NewEngineOpt},
	)
}

// Scenario is one (structure instance, engine variant) cell of the
// conformance matrix: a fresh-instance factory plus the operation cases to
// sweep on it.
type Scenario struct {
	Structure string // structure instance name (e.g. "list", "queue-empty")
	Engine    EngineVariant
	Build     func() SweepInstance
	Cases     []SweepCase
}

// Name identifies the scenario in test and benchmark output.
func (s Scenario) Name() string { return s.Structure + "/" + s.Engine.Name }

// sweepHeap builds the heap every sweep scenario runs on.
func sweepHeap(v EngineVariant) *pmem.Heap {
	return pmem.NewHeap(pmem.Config{
		Words: sweepHeapWords, Procs: 1, Tracked: true, Seed: 42,
		EvictEvery: v.Evict,
	})
}

// Scenarios returns the full conformance matrix over the given engine
// variants: every structure (the queue and stack with prefilled, empty and
// zero-value instances) crossed with every variant.
func Scenarios(variants []EngineVariant) []Scenario {
	var out []Scenario
	for _, v := range variants {
		v := v
		out = append(out,
			Scenario{
				Structure: "list", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					l := list.NewWithEngine(h, v.New(h))
					p := h.Proc(0)
					for _, k := range setPrefill {
						l.Insert(p, k)
					}
					return SweepInstance{
						Heap:   h,
						Target: Adapt(l),
						Verify: setVerify(list.OpInsert, list.OpDelete, l.Keys, l.CheckInvariants),
					}
				},
				Cases: setSweepCases(list.OpInsert, list.OpDelete, list.OpFind),
			},
			Scenario{
				Structure: "bst", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					b := bst.NewWithEngine(h, v.New(h))
					p := h.Proc(0)
					for _, k := range setPrefill {
						b.Insert(p, k)
					}
					return SweepInstance{
						Heap:   h,
						Target: Adapt(b),
						Verify: setVerify(bst.OpInsert, bst.OpDelete, b.Keys, b.CheckInvariants),
					}
				},
				Cases: setSweepCases(bst.OpInsert, bst.OpDelete, bst.OpFind),
			},
			Scenario{
				Structure: "hashmap", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					m := hashmap.NewWithEngine(h, v.New(h), 4)
					p := h.Proc(0)
					for _, k := range setPrefill {
						m.Insert(p, k)
					}
					return SweepInstance{
						Heap:   h,
						Target: Adapt(m),
						Verify: setVerify(hashmap.OpInsert, hashmap.OpDelete, m.Keys, m.CheckInvariants),
					}
				},
				Cases: setSweepCases(hashmap.OpInsert, hashmap.OpDelete, hashmap.OpFind),
			},
			Scenario{
				Structure: "queue", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					q := queue.NewWithEngine(h, v.New(h))
					p := h.Proc(0)
					q.Enqueue(p, 5)
					q.Enqueue(p, 6)
					return SweepInstance{
						Heap:   h,
						Target: Adapt(q),
						Verify: queueVerify(q, func(c SweepCase) []uint64 {
							if c.Op.Kind == queue.OpEnq {
								return []uint64{5, 6, c.Op.Arg}
							}
							return []uint64{6}
						}),
					}
				},
				Cases: []SweepCase{
					{"enqueue", Op{Kind: queue.OpEnq, Arg: 7}, isb.RespTrue},
					{"dequeue", Op{Kind: queue.OpDeq}, isb.EncodeValue(5)},
				},
			},
			Scenario{
				Structure: "queue-empty", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					q := queue.NewWithEngine(h, v.New(h))
					return SweepInstance{
						Heap:   h,
						Target: Adapt(q),
						Verify: queueVerify(q, func(SweepCase) []uint64 { return nil }),
					}
				},
				Cases: []SweepCase{
					{"dequeue-empty", Op{Kind: queue.OpDeq}, isb.RespEmpty},
				},
			},
			// Regression instance: a dequeued value of 0 must stay
			// distinguishable from "empty" at every crash point (the response
			// encoding keeps payloads disjoint from RespEmpty; decoding must
			// not conflate them).
			Scenario{
				Structure: "queue-zero", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					q := queue.NewWithEngine(h, v.New(h))
					q.Enqueue(h.Proc(0), 0)
					return SweepInstance{
						Heap:   h,
						Target: Adapt(q),
						Verify: queueVerify(q, func(SweepCase) []uint64 { return nil }),
					}
				},
				Cases: []SweepCase{
					{"dequeue-zero", Op{Kind: queue.OpDeq}, isb.EncodeValue(0)},
				},
			},
			Scenario{
				Structure: "stack", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					s := stack.NewWithEngine(h, v.New(h), 0)
					p := h.Proc(0)
					s.Push(p, 5)
					s.Push(p, 6)
					return SweepInstance{
						Heap:   h,
						Target: Adapt(s),
						Verify: stackVerify(s, func(c SweepCase) []uint64 {
							if c.Op.Kind == stack.OpPush {
								return []uint64{c.Op.Arg, 6, 5}
							}
							return []uint64{5}
						}),
					}
				},
				Cases: []SweepCase{
					{"push", Op{Kind: stack.OpPush, Arg: 7}, isb.RespTrue},
					{"pop", Op{Kind: stack.OpPop}, isb.EncodeValue(6)},
				},
			},
			Scenario{
				Structure: "stack-empty", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					s := stack.NewWithEngine(h, v.New(h), 0)
					return SweepInstance{
						Heap:   h,
						Target: Adapt(s),
						Verify: stackVerify(s, func(SweepCase) []uint64 { return nil }),
					}
				},
				Cases: []SweepCase{
					{"pop-empty", Op{Kind: stack.OpPop}, isb.RespEmpty},
				},
			},
			// Regression instance: a popped value of 0 must stay
			// distinguishable from "empty" at every crash point.
			Scenario{
				Structure: "stack-zero", Engine: v,
				Build: func() SweepInstance {
					h := sweepHeap(v)
					s := stack.NewWithEngine(h, v.New(h), 0)
					s.Push(h.Proc(0), 0)
					return SweepInstance{
						Heap:   h,
						Target: Adapt(s),
						Verify: stackVerify(s, func(SweepCase) []uint64 { return nil }),
					}
				},
				Cases: []SweepCase{
					{"pop-zero", Op{Kind: stack.OpPop}, isb.EncodeValue(0)},
				},
			},
		)
	}
	return out
}

// runtimeTarget drives a registered repro.Structure through its uniform
// Apply surface (the runtime-level twin of applierTarget).
type runtimeTarget struct{ s repro.Structure }

func (t runtimeTarget) Begin(p *pmem.Proc) { t.s.Begin(p) }
func (t runtimeTarget) Invoke(p *pmem.Proc, op Op) uint64 {
	return t.s.Apply(p, repro.Op{Kind: op.Kind, Arg: op.Arg}).Raw()
}
func (t runtimeTarget) Recover(p *pmem.Proc, op Op) uint64 {
	return t.s.RecoverOp(p, repro.Op{Kind: op.Kind, Arg: op.Arg}).Raw()
}

// resolveViaRecoverAll returns the SweepInstance.RecoverAll callback for a
// single-process runtime sweep: route the crashed operation through
// Runtime.RecoverAll (which, with reclamation on, first runs the
// conservative scan); an empty report means the crash preceded the durable
// announcement — the operation provably had no effect — so it is simply
// re-submitted.
func resolveViaRecoverAll(rt *repro.Runtime, tgt Target) func(p *pmem.Proc, op Op) uint64 {
	return func(p *pmem.Proc, op Op) uint64 {
		reps := rt.RecoverAll()
		if len(reps) == 0 {
			return tgt.Invoke(p, op)
		}
		return reps[len(reps)-1].Resp.Raw()
	}
}

// ReclaimScenario is one cell of the reclaim-churn conformance matrix: a
// runtime-level structure whose prefill churns enough allocate/retire
// cycles that the swept operation runs against recycled memory — retired
// rings populated, the epoch advanced, free-list reuse active — so every
// crash offset of the operation also lands inside Retire calls, epoch
// advances and frees. The same cells run with reclamation off as the
// leak-forever control.
type ReclaimScenario struct {
	Structure string
	Engine    string
	Reclaim   bool
	Build     func() SweepInstance
	Cases     []SweepCase
}

// Name identifies the cell in test and benchmark output.
func (s ReclaimScenario) Name() string {
	mode := "arena"
	if s.Reclaim {
		mode = "reclaim"
	}
	return s.Structure + "/" + s.Engine + "/" + mode
}

// reclaimChurnKeys are churned (inserted then deleted) before a reclaim
// sweep: disjoint from setPrefill and from every case argument, so the
// sequential model is unchanged — only the allocator's state is hot.
var reclaimChurnKeys = []uint64{40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54, 55}

// reclaimRT builds the sweep runtime for one reclaim cell.
func reclaimRT(kind repro.EngineKind, reclaim bool) *repro.Runtime {
	return repro.New(repro.Config{
		Procs: 1, CrashSim: true, HeapWords: sweepHeapWords,
		Seed: 42, Engine: kind, Reclaim: reclaim,
	})
}

// ReclaimScenarios returns the reclaim-churn conformance matrix: list,
// hashmap (insert/delete churn) and queue (enqueue/dequeue ring) × both
// public engine kinds × reclaimer on/off, recovery routed through
// Runtime.RecoverAll so a crashed replay exercises the post-crash
// conservative scan before the announced operation resolves.
func ReclaimScenarios() []ReclaimScenario {
	var out []ReclaimScenario
	for _, eng := range []struct {
		name string
		kind repro.EngineKind
	}{{"isb", repro.EngineIsb}, {"isb-opt", repro.EngineIsbOpt}} {
		for _, rec := range []bool{false, true} {
			eng, rec := eng, rec
			out = append(out,
				ReclaimScenario{
					Structure: "list-churn", Engine: eng.name, Reclaim: rec,
					Build: func() SweepInstance {
						rt := reclaimRT(eng.kind, rec)
						l := rt.NewList()
						p := rt.Proc(0)
						for _, k := range reclaimChurnKeys {
							l.Insert(p, k)
							l.Delete(p, k)
						}
						for _, k := range setPrefill {
							l.Insert(p, k)
						}
						tgt := runtimeTarget{l}
						return SweepInstance{
							Heap:       rt.Heap(),
							Target:     tgt,
							Verify:     setVerify(list.OpInsert, list.OpDelete, l.Keys, l.CheckInvariants),
							RecoverAll: resolveViaRecoverAll(rt, tgt),
						}
					},
					Cases: setSweepCases(list.OpInsert, list.OpDelete, list.OpFind),
				},
				ReclaimScenario{
					Structure: "hashmap-churn", Engine: eng.name, Reclaim: rec,
					Build: func() SweepInstance {
						rt := reclaimRT(eng.kind, rec)
						m := rt.NewHashMap(4)
						p := rt.Proc(0)
						for _, k := range reclaimChurnKeys {
							m.Insert(p, k)
							m.Delete(p, k)
						}
						for _, k := range setPrefill {
							m.Insert(p, k)
						}
						tgt := runtimeTarget{m}
						return SweepInstance{
							Heap:       rt.Heap(),
							Target:     tgt,
							Verify:     setVerify(hashmap.OpInsert, hashmap.OpDelete, m.Keys, m.CheckInvariants),
							RecoverAll: resolveViaRecoverAll(rt, tgt),
						}
					},
					Cases: setSweepCases(hashmap.OpInsert, hashmap.OpDelete, hashmap.OpFind),
				},
				ReclaimScenario{
					Structure: "queue-ring", Engine: eng.name, Reclaim: rec,
					Build: func() SweepInstance {
						rt := reclaimRT(eng.kind, rec)
						q := rt.NewQueue()
						p := rt.Proc(0)
						// Enqueue/dequeue ring: every dequeue retires the old
						// dummy, so the ring cycles the same small working set
						// through the retired rings and free lists.
						for i := uint64(1); i <= 32; i++ {
							q.Enqueue(p, i)
							q.Dequeue(p)
						}
						q.Enqueue(p, 5)
						q.Enqueue(p, 6)
						tgt := runtimeTarget{q}
						return SweepInstance{
							Heap:   rt.Heap(),
							Target: tgt,
							Verify: queueVerify2(q.Values, q.CheckInvariants, func(c SweepCase) []uint64 {
								if c.Op.Kind == queue.OpEnq {
									return []uint64{5, 6, c.Op.Arg}
								}
								return []uint64{6}
							}),
							RecoverAll: resolveViaRecoverAll(rt, tgt),
						}
					},
					Cases: []SweepCase{
						{"enqueue", Op{Kind: queue.OpEnq, Arg: 7}, isb.RespTrue},
						{"dequeue", Op{Kind: queue.OpDeq}, isb.EncodeValue(5)},
					},
				},
			)
		}
	}
	return out
}

// queueVerify2 checks a sequence snapshot against the sequential model (the
// runtime-level twin of queueVerify, taking accessors instead of a *Queue).
func queueVerify2(values func() []uint64, invariants func() string, want func(c SweepCase) []uint64) func(SweepCase) string {
	return func(c SweepCase) string {
		w := want(c)
		got := values()
		if len(got) != len(w) {
			return fmt.Sprintf("queue %v, want %v", got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				return fmt.Sprintf("queue %v, want %v", got, w)
			}
		}
		return invariants()
	}
}

// respBool encodes a boolean operation response.
func respBool(b bool) uint64 {
	if b {
		return isb.RespTrue
	}
	return isb.RespFalse
}

// setPrefill seeds every set-like structure before a sweep.
var setPrefill = []uint64{3, 9, 14, 27, 31}

// setSweepCases builds the shared set case table from a structure's op
// codes (list and hashmap share the list's; the BST has its own constants
// with identical values).
func setSweepCases(opIns, opDel, opFind uint64) []SweepCase {
	return []SweepCase{
		{"insert-fresh", Op{Kind: opIns, Arg: 8}, respBool(true)},
		{"insert-dup", Op{Kind: opIns, Arg: 9}, respBool(false)},
		{"delete-present", Op{Kind: opDel, Arg: 14}, respBool(true)},
		{"delete-absent", Op{Kind: opDel, Arg: 15}, respBool(false)},
		{"find-present", Op{Kind: opFind, Arg: 27}, respBool(true)},
		{"find-absent", Op{Kind: opFind, Arg: 28}, respBool(false)},
	}
}

// setExpect is the sequential model: prefill, then the case's op applied.
func setExpect(opIns, opDel uint64, op Op) map[uint64]bool {
	w := map[uint64]bool{}
	for _, k := range setPrefill {
		w[k] = true
	}
	switch op.Kind {
	case opIns:
		w[op.Arg] = true
	case opDel:
		delete(w, op.Arg)
	}
	return w
}

// setVerify compares a snapshot against the sequential model and then runs
// the structure's own invariant check.
func setVerify(opIns, opDel uint64, keys func() []uint64, invariants func() string) func(SweepCase) string {
	return func(c SweepCase) string {
		want := setExpect(opIns, opDel, c.Op)
		got := keys()
		if len(got) != len(want) {
			return fmt.Sprintf("key set %v, want %v", got, keysOf(want))
		}
		for _, k := range got {
			if !want[k] {
				return fmt.Sprintf("unexpected key %d (set %v)", k, got)
			}
		}
		return invariants()
	}
}

func keysOf(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// queueVerify checks the queue's remaining values front-to-back.
func queueVerify(q *queue.Queue, want func(c SweepCase) []uint64) func(SweepCase) string {
	return func(c SweepCase) string {
		w := want(c)
		got := q.Values()
		if len(got) != len(w) {
			return fmt.Sprintf("queue %v, want %v", got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				return fmt.Sprintf("queue %v, want %v", got, w)
			}
		}
		return q.CheckInvariants()
	}
}

// stackVerify checks the stack's remaining values top-to-bottom.
func stackVerify(s *stack.Stack, want func(c SweepCase) []uint64) func(SweepCase) string {
	return func(c SweepCase) string {
		w := want(c)
		got := s.Values()
		if len(got) != len(w) {
			return fmt.Sprintf("stack %v, want %v", got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				return fmt.Sprintf("stack %v, want %v", got, w)
			}
		}
		return s.CheckInvariants()
	}
}
