package crash

import (
	"math/rand"
	"testing"

	"repro/internal/bst"
	"repro/internal/linearize"
	"repro/internal/pmem"
)

func bstGen(keys uint64) func(id, i int, rng *rand.Rand) Op {
	return func(id, i int, rng *rand.Rand) Op {
		k := uint64(rng.Intn(int(keys))) + 1
		switch rng.Intn(3) {
		case 0:
			return Op{Kind: bst.OpInsert, Arg: k}
		case 1:
			return Op{Kind: bst.OpDelete, Arg: k}
		default:
			return Op{Kind: bst.OpFind, Arg: k}
		}
	}
}

func runBSTStorm(t *testing.T, eng engineVariant, seed int64, procs, opsPerProc, crashes int, keys uint64, evictEvery uint64) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 22, Procs: procs, Tracked: true,
		EvictEvery: evictEvery, Seed: uint64(seed) + 1,
	})
	b := bst.NewWithEngine(h, eng.mk(h))
	res := Run(Config{
		Heap: h, Target: Adapt(b), Procs: procs, OpsPerProc: opsPerProc,
		Gen: bstGen(keys), Crashes: crashes,
		MeanAccessGap: procs * opsPerProc * 50 / (crashes + 1),
		Seed:          seed,
	})
	if want := procs * opsPerProc; len(res.History) != want {
		t.Fatalf("history %d ops, want %d", len(res.History), want)
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatalf("invariant after storm: %s (seed %d)", msg, seed)
	}
	if k, ok := linearize.CheckSetHistory(res.History); !ok {
		t.Fatalf("history not linearizable at key %d (seed %d, crashes %d, recovered %d)",
			k, seed, res.CrashesFired, res.RecoveredOps)
	}
	net := map[uint64]int{}
	for _, e := range res.Events {
		if e.Resp != linearize.RespTrue {
			continue
		}
		switch e.Op.Kind {
		case bst.OpInsert:
			net[e.Op.Arg]++
		case bst.OpDelete:
			net[e.Op.Arg]--
		}
	}
	present := map[uint64]bool{}
	for _, k := range b.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if net[k] != want {
			t.Fatalf("key %d: net %d vs presence %v (seed %d)", k, net[k], present[k], seed)
		}
	}
}

func TestBSTSingleProcCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 8; seed++ {
			runBSTStorm(t, eng, seed, 1, 60, 6, 8, 0)
		}
	})
}

func TestBSTConcurrentCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 6; seed++ {
			runBSTStorm(t, eng, seed, 4, 40, 5, 16, 0)
		}
	})
}

func TestBSTCrashStormWithEviction(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 5; seed++ {
			runBSTStorm(t, eng, seed, 4, 40, 5, 12, 3)
		}
	})
}

func TestBSTHighCrashRate(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 4; seed++ {
			runBSTStorm(t, eng, seed, 3, 30, 18, 8, 0)
		}
	})
}
