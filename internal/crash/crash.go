// Package crash drives detectably recoverable data structures through
// randomized system-wide crash storms, playing the role of "the system" in
// the paper's model: it decides when a crash happens, discards all volatile
// state, and re-invokes each failed process's recovery function with the
// same arguments its interrupted operation had. Multiple crashes may hit a
// single operation or its recovery, and processes recover asynchronously.
//
// Every completed operation (directly or through recovery) is recorded with
// logical start/end timestamps, producing a history the linearize package
// can check. Detectability itself is asserted structurally: recovery always
// yields a definite response.
package crash

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/linearize"
	"repro/internal/pmem"
)

// Op is one operation invocation: a structure-specific kind and argument.
type Op struct {
	Kind uint64
	Arg  uint64
}

// Target is a detectably recoverable structure under test. Begin is the
// system-side invocation step of the paper's model (persistently set
// CP_q := 0 just before the operation starts); if it crashes, the system
// simply retries it — the operation is not yet considered invoked, so no
// recovery obligation exists. Invoke runs an operation to completion;
// Recover is the operation's recovery function, called with the same Op
// after a crash (possibly several times). Both return the encoded response.
type Target interface {
	Begin(p *pmem.Proc)
	Invoke(p *pmem.Proc, op Op) uint64
	Recover(p *pmem.Proc, op Op) uint64
}

// Applier is the uniform operation surface the structure packages share:
// Begin (system-side invocation step), ApplyOp (run one operation, encoded
// response) and RecoverOp (resolve an interrupted operation). Adapt turns
// any of them into a Target, which is what lets the storms, the sweep and
// cmd/crashtest drive every structure without per-structure glue.
type Applier interface {
	Begin(p *pmem.Proc)
	ApplyOp(p *pmem.Proc, kind, arg uint64) uint64
	RecoverOp(p *pmem.Proc, kind, arg uint64) uint64
}

// applierTarget adapts an Applier to the Target interface.
type applierTarget struct{ a Applier }

func (t applierTarget) Begin(p *pmem.Proc) { t.a.Begin(p) }
func (t applierTarget) Invoke(p *pmem.Proc, op Op) uint64 {
	return t.a.ApplyOp(p, op.Kind, op.Arg)
}
func (t applierTarget) Recover(p *pmem.Proc, op Op) uint64 {
	return t.a.RecoverOp(p, op.Kind, op.Arg)
}

// Adapt wraps an Applier as a Target.
func Adapt(a Applier) Target { return applierTarget{a} }

// Event is one completed operation in the recorded history.
type Event struct {
	Proc      int
	Op        Op
	Resp      uint64
	Start     uint64
	End       uint64
	Recovered bool // response obtained via Recover after ≥1 crash
}

// Config parameterises a storm.
type Config struct {
	Heap       *pmem.Heap
	Target     Target
	Procs      int
	OpsPerProc int
	// Gen produces the i-th operation of proc id.
	Gen func(id, i int, rng *rand.Rand) Op
	// Crashes is how many system-wide crashes to inject.
	Crashes int
	// MeanAccessGap spaces the crash triggers: the mean number of pmem
	// accesses between two crashes (jittered ±50%). Crashes fire at access
	// granularity, inside whichever operation crosses the threshold.
	MeanAccessGap int
	Seed          int64
}

// Result of a storm.
type Result struct {
	History      []linearize.Operation
	Events       []Event
	CrashesFired int
	RecoveredOps int
}

// coordinator rendezvous-es crashed workers, resets the heap, and arms the
// next scheduled crash.
type coordinator struct {
	h       *pmem.Heap
	mu      sync.Mutex
	cond    *sync.Cond
	gen     int
	waiting int
	active  int
	fired   int
	want    int
	meanGap int
	rng     *rand.Rand
}

func newCoordinator(h *pmem.Heap, active, want, meanGap int, rng *rand.Rand) *coordinator {
	c := &coordinator{h: h, active: active, want: want, meanGap: meanGap, rng: rng}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// armLocked schedules the next crash if any remain (mu held, quiesced).
func (c *coordinator) armLocked() {
	if c.fired < c.want {
		gap := c.meanGap/2 + c.rng.Intn(c.meanGap+1)
		c.h.ScheduleCrashAt(c.h.AccessCount() + uint64(gap))
	}
}

// maybeReset must run with mu held: once every live worker is parked, the
// volatile image is discarded, the next crash is armed, and everyone is
// released.
func (c *coordinator) maybeReset() {
	if c.h.Crashing() && c.waiting == c.active {
		c.fired++
		c.h.ResetAfterCrash()
		c.gen++
		c.waiting = 0
		c.armLocked()
		c.cond.Broadcast()
	}
}

// park blocks the calling worker until the crash is fully handled.
func (c *coordinator) park() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waiting++
	g := c.gen
	c.maybeReset()
	for c.gen == g {
		c.cond.Wait()
	}
}

// leave deregisters a worker that finished its workload.
func (c *coordinator) leave() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.active--
	c.maybeReset()
}

// Run executes the storm and returns the recorded history.
func Run(cfg Config) Result {
	if cfg.Procs <= 0 || cfg.OpsPerProc <= 0 {
		return Result{}
	}
	if cfg.MeanAccessGap <= 0 {
		cfg.MeanAccessGap = 600
	}
	trigRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5bf03635))
	c := newCoordinator(cfg.Heap, cfg.Procs, cfg.Crashes, cfg.MeanAccessGap, trigRng)
	var clock atomic.Uint64
	events := make([][]Event, cfg.Procs)
	var wg sync.WaitGroup

	// Arm the first crash before the workers start.
	c.mu.Lock()
	c.armLocked()
	c.mu.Unlock()

	for id := 0; id < cfg.Procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer c.leave()
			p := cfg.Heap.Proc(id)
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(id*7919+1)))
			for i := 0; i < cfg.OpsPerProc; i++ {
				op := cfg.Gen(id, i, rng)
				// System-side invocation step: retried (not recovered)
				// if a crash interrupts it.
				for !pmem.RunOp(func() { cfg.Target.Begin(p) }) {
					c.park()
				}
				start := clock.Add(1)
				var resp uint64
				recovered := false
				ok := pmem.RunOp(func() { resp = cfg.Target.Invoke(p, op) })
				for !ok {
					recovered = true
					c.park()
					ok = pmem.RunOp(func() { resp = cfg.Target.Recover(p, op) })
				}
				end := clock.Add(1)
				events[id] = append(events[id], Event{
					Proc: id, Op: op, Resp: resp,
					Start: start, End: end, Recovered: recovered,
				})
			}
		}(id)
	}

	wg.Wait()

	var res Result
	res.CrashesFired = c.fired
	for _, evs := range events {
		for _, e := range evs {
			res.Events = append(res.Events, e)
			if e.Recovered {
				res.RecoveredOps++
			}
			res.History = append(res.History, linearize.Operation{
				Proc: e.Proc, Kind: e.Op.Kind, Arg: e.Op.Arg,
				Resp: e.Resp, Start: e.Start, End: e.End,
			})
		}
	}
	return res
}
