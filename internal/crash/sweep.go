package crash

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
)

// SweepCase is one deterministic single-process operation the crash-point
// sweep drives through every shared-memory access: the operation, the
// response the sequential model requires, and a name for the subtest.
type SweepCase struct {
	Name     string
	Op       Op
	WantResp uint64
}

// SweepInstance is one freshly built structure under sweep. Build functions
// return the heap the structure lives on, the adapted Target, and a Verify
// callback that checks the structure's post-state (final contents plus
// structural invariants) once a case's operation has resolved; Verify
// returns a description of the first violation, or "".
type SweepInstance struct {
	Heap   *pmem.Heap
	Target Target
	Verify func(c SweepCase) string
	// RecoverAll, when non-nil, replaces Target.Recover in the crashed
	// replays: the sweep's registry-routed mode, where recovery is driven
	// by the runtime (announcement record + structure registry) instead of
	// the harness re-supplying the operation. The callback must resolve the
	// crashed operation — typically by invoking Runtime.RecoverAll and, if
	// the crash preceded the durable announcement (so the operation
	// provably had no effect and is absent from the report), re-invoking it
	// — and return the encoded response.
	RecoverAll func(p *pmem.Proc, op Op) uint64
}

// RunCase is the sweep core, usable outside `go test` (cmd/bench times it):
// it measures the case's tracked access count on an uninterrupted run, then
// replays the operation once per access offset with a system-wide crash
// armed exactly there, checking response and post-state each time. It
// returns how many offsets actually interrupted the operation, or the first
// conformance violation.
func RunCase(build func() SweepInstance, c SweepCase) (crashPoints int, err error) {
	// Measure the operation's access count on an identical run (tracked
	// heaps count accesses unconditionally). Count Invoke's accesses only:
	// the replays below run Begin before arming, so offsets past Invoke's
	// span could never interrupt the operation and would be wasted rebuilds.
	in := build()
	p := in.Heap.Proc(0)
	in.Target.Begin(p)
	before := in.Heap.AccessCount()
	if got := in.Target.Invoke(p, c.Op); got != c.WantResp {
		return 0, fmt.Errorf("uninterrupted %s: response %d, want %d", c.Name, got, c.WantResp)
	}
	total := in.Heap.AccessCount() - before
	if total == 0 {
		return 0, fmt.Errorf("%s: operation made no tracked accesses", c.Name)
	}
	if msg := in.Verify(c); msg != "" {
		return 0, fmt.Errorf("uninterrupted %s: %s", c.Name, msg)
	}

	for off := uint64(1); off <= total; off++ {
		in := build()
		p := in.Heap.Proc(0)
		// System-side invocation step: a crash inside Begin leaves no
		// recovery obligation; the system simply retries it.
		for !pmem.RunOp(func() { in.Target.Begin(p) }) {
			in.Heap.ResetAfterCrash()
		}
		in.Heap.ScheduleCrashAt(in.Heap.AccessCount() + off)
		var resp uint64
		if pmem.RunOp(func() { resp = in.Target.Invoke(p, c.Op) }) {
			in.Heap.DisarmCrash() // the crash would land after completion
		} else {
			crashPoints++
			in.Heap.ResetAfterCrash()
			rec := in.Target.Recover
			if in.RecoverAll != nil {
				rec = in.RecoverAll
			}
			if !pmem.RunOp(func() { resp = rec(p, c.Op) }) {
				return crashPoints, fmt.Errorf("%s off=%d: recovery crashed with no crash armed", c.Name, off)
			}
		}
		if resp != c.WantResp {
			return crashPoints, fmt.Errorf("%s off=%d: response %d, want %d", c.Name, off, resp, c.WantResp)
		}
		if msg := in.Verify(c); msg != "" {
			return crashPoints, fmt.Errorf("%s off=%d: %s", c.Name, off, msg)
		}
	}
	if crashPoints == 0 {
		return 0, fmt.Errorf("%s: no crash point actually interrupted the operation", c.Name)
	}
	return crashPoints, nil
}

// SweepAllPoints is the structure-agnostic crash-point conformance sweep:
// RunCase per case, as subtests. Each crashed replay must recover to the
// sequential model's response and post-state — this is the paper's
// detectability bar, checked exhaustively rather than sampled, and it holds
// every engine variant to the same standard (a batched phase must be
// recoverable whether the crash left it fully persisted or fully absent).
//
// build must return a fresh, identically prefilled instance on every call
// (the sweep rebuilds once per crash offset). Cases run on Proc 0.
func SweepAllPoints(t *testing.T, build func() SweepInstance, cases []SweepCase) {
	t.Helper()
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			if _, err := RunCase(build, c); err != nil {
				t.Fatal(err)
			}
		})
	}
}
