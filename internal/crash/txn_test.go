package crash

import "testing"

// TestTxnCrashSweep is the transaction conformance sweep: for every cell
// of the transaction matrix (four two-leg shapes × both engine placements
// × reclamation on/off) and every tracked access offset of an ApplyTxn —
// including mid-transaction-announcement and mid-commit-point — a
// system-wide crash is injected, recovery is driven through RecoverAll's
// transaction report, and every offset must yield the crash-free responses
// and final state, with cross-structure atomicity (a no-effect report
// means neither structure changed; anything else means leg 1's effect
// never outlives recovery without leg 2's) and exactly-once under a
// duplicate recovery pass checked each time.
func TestTxnCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive transaction crash-point sweep")
	}
	for _, sc := range TxnScenarios() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			t.Parallel()
			n, err := RunTxnCase(sc.Build, sc.Case)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d crash points swept", sc.Case.Name, n)
		})
	}
}
