package crash

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/isb"
	"repro/internal/linearize"
	"repro/internal/pmem"
	"repro/internal/stack"
)

func stackGen(next *atomic.Uint64) func(id, i int, rng *rand.Rand) Op {
	return func(id, i int, rng *rand.Rand) Op {
		if rng.Intn(2) == 0 {
			return Op{Kind: stack.OpPush, Arg: next.Add(1)}
		}
		return Op{Kind: stack.OpPop}
	}
}

func runStackStorm(t *testing.T, eng engineVariant, seed int64, procs, opsPerProc, crashes, spins int) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true, Seed: uint64(seed) + 1})
	s := stack.NewWithEngine(h, eng.mk(h), spins)
	var next atomic.Uint64
	res := Run(Config{
		Heap: h, Target: Adapt(s), Procs: procs, OpsPerProc: opsPerProc,
		Gen: stackGen(&next), Crashes: crashes,
		MeanAccessGap: procs * opsPerProc * 40 / (crashes + 1),
		Seed:          seed,
	})
	if want := procs * opsPerProc; len(res.History) != want {
		t.Fatalf("history %d ops, want %d", len(res.History), want)
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatalf("invariant: %s (seed %d)", msg, seed)
	}
	hist := make([]linearize.Operation, len(res.History))
	copy(hist, res.History)
	for i := range hist {
		if hist[i].Kind == stack.OpPush {
			hist[i].Kind = linearize.KindPush
		} else {
			hist[i].Kind = linearize.KindPop
		}
	}
	if !linearize.Check(linearize.StackModel(), hist) {
		t.Fatalf("stack history not linearizable (seed %d, crashes %d, recovered %d)",
			seed, res.CrashesFired, res.RecoveredOps)
	}
	// Conservation.
	pushed := map[uint64]bool{}
	poppedCount := map[uint64]int{}
	for _, e := range res.Events {
		if e.Op.Kind == stack.OpPush {
			pushed[e.Op.Arg] = true
		} else if e.Resp != isb.RespEmpty {
			poppedCount[isb.DecodeValue(e.Resp)]++
		}
	}
	for v, n := range poppedCount {
		if n != 1 || !pushed[v] {
			t.Fatalf("value %d popped %d times, pushed=%v (seed %d)", v, n, pushed[v], seed)
		}
	}
	remaining := s.Values()
	if len(remaining)+len(poppedCount) != len(pushed) {
		t.Fatalf("conservation mismatch (seed %d)", seed)
	}
}

func TestStackSingleProcCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 8; seed++ {
			runStackStorm(t, eng, seed, 1, 50, 6, 0)
		}
	})
}

func TestStackConcurrentCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 5; seed++ {
			runStackStorm(t, eng, seed, 3, 20, 5, 0)
		}
	})
}

func TestStackCrashStormWithElimination(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 5; seed++ {
			runStackStorm(t, eng, seed, 3, 20, 5, stack.DefaultElimSpins)
		}
	})
}

func TestStackHighCrashRate(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 4; seed++ {
			runStackStorm(t, eng, seed, 2, 25, 15, stack.DefaultElimSpins)
		}
	})
}
