package crash

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/isb"
	"repro/internal/pmem"
)

// Runtime-level crash-point conformance: the same every-crash-point sweep
// as conformance_test.go, but recovery is routed by Runtime.RecoverAll —
// the announcement record says which structure and operation were in
// flight; the harness supplies nothing. Every sweepable structure × both
// engines must recover to the same response and post-state as targeted
// per-structure recovery (which the plain conformance sweep pins to the
// sequential model on identical case tables).

// reproEngines enumerates the public engine kinds for runtime-level sweeps.
func reproEngines() []struct {
	name string
	kind repro.EngineKind
} {
	return []struct {
		name string
		kind repro.EngineKind
	}{
		{"isb", repro.EngineIsb},
		{"isb-opt", repro.EngineIsbOpt},
	}
}

// rtTarget drives a registered structure through its uniform Apply surface.
type rtTarget struct{ s repro.Structure }

func (t rtTarget) Begin(p *pmem.Proc) { t.s.Begin(p) }
func (t rtTarget) Invoke(p *pmem.Proc, op Op) uint64 {
	return t.s.Apply(p, repro.Op{Kind: op.Kind, Arg: op.Arg}).Raw()
}
func (t rtTarget) Recover(p *pmem.Proc, op Op) uint64 {
	return t.s.RecoverOp(p, repro.Op{Kind: op.Kind, Arg: op.Arg}).Raw()
}

// recoverAllVia resolves a crashed replay through Runtime.RecoverAll,
// asserting the registry routed exactly the announced operation to the
// right structure. An empty report means the crash preceded the durable
// announcement — the operation provably had no effect — so the system
// simply re-submits it.
func recoverAllVia(t *testing.T, rt *repro.Runtime, tgt Target, s repro.Structure) func(p *pmem.Proc, op Op) uint64 {
	return func(p *pmem.Proc, op Op) uint64 {
		reps := rt.RecoverAll()
		if len(reps) == 0 {
			return tgt.Invoke(p, op)
		}
		if len(reps) != 1 {
			t.Fatalf("RecoverAll returned %d reports, want 1", len(reps))
		}
		rep := reps[0]
		if rep.Proc != 0 || rep.StructID != s.ID() || rep.Op != (repro.Op{Kind: op.Kind, Arg: op.Arg}) {
			t.Fatalf("RecoverAll routed proc=%d struct=%d op=%+v; want proc=0 struct=%d op=%+v",
				rep.Proc, rep.StructID, rep.Op, s.ID(), op)
		}
		return rep.Resp.Raw()
	}
}

// seqVerify compares a sequence snapshot (queue front-to-back or stack
// top-to-bottom) against the sequential model, then runs the structure's
// invariant check.
func seqVerify(values func() []uint64, invariants func() string, want func(c SweepCase) []uint64) func(SweepCase) string {
	return func(c SweepCase) string {
		w := want(c)
		got := values()
		if len(got) != len(w) {
			return fmt.Sprintf("contents %v, want %v", got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				return fmt.Sprintf("contents %v, want %v", got, w)
			}
		}
		return invariants()
	}
}

func TestRecoverAllCrashConformance(t *testing.T) {
	for _, eng := range reproEngines() {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			// Sweep-sized heap: the sweep rebuilds the Runtime once per
			// crash offset, so a benchmark-sized arena would make heap
			// zeroing dominate the job's wall clock (see sweepHeapWords).
			newRT := func() *repro.Runtime {
				return repro.New(repro.Config{
					Procs: 1, CrashSim: true, HeapWords: sweepHeapWords,
					Seed: 42, Engine: eng.kind,
				})
			}

			t.Run("list", func(t *testing.T) {
				build := func() SweepInstance {
					rt := newRT()
					l := rt.NewList()
					p := rt.Proc(0)
					for _, k := range setPrefill {
						l.Insert(p, k)
					}
					tgt := rtTarget{l}
					return SweepInstance{
						Heap:       rt.Heap(),
						Target:     tgt,
						Verify:     setVerify(repro.OpInsert, repro.OpDelete, l.Keys, l.CheckInvariants),
						RecoverAll: recoverAllVia(t, rt, tgt, l),
					}
				}
				SweepAllPoints(t, build, setSweepCases(repro.OpInsert, repro.OpDelete, repro.OpFind))
			})

			t.Run("bst", func(t *testing.T) {
				build := func() SweepInstance {
					rt := newRT()
					b := rt.NewBST()
					p := rt.Proc(0)
					for _, k := range setPrefill {
						b.Insert(p, k)
					}
					tgt := rtTarget{b}
					return SweepInstance{
						Heap:       rt.Heap(),
						Target:     tgt,
						Verify:     setVerify(repro.OpInsert, repro.OpDelete, b.Keys, b.CheckInvariants),
						RecoverAll: recoverAllVia(t, rt, tgt, b),
					}
				}
				SweepAllPoints(t, build, setSweepCases(repro.OpInsert, repro.OpDelete, repro.OpFind))
			})

			t.Run("hashmap", func(t *testing.T) {
				build := func() SweepInstance {
					rt := newRT()
					m := rt.NewHashMap(4)
					p := rt.Proc(0)
					for _, k := range setPrefill {
						m.Insert(p, k)
					}
					tgt := rtTarget{m}
					return SweepInstance{
						Heap:       rt.Heap(),
						Target:     tgt,
						Verify:     setVerify(repro.OpInsert, repro.OpDelete, m.Keys, m.CheckInvariants),
						RecoverAll: recoverAllVia(t, rt, tgt, m),
					}
				}
				SweepAllPoints(t, build, setSweepCases(repro.OpInsert, repro.OpDelete, repro.OpFind))
			})

			t.Run("queue", func(t *testing.T) {
				build := func() SweepInstance {
					rt := newRT()
					q := rt.NewQueue()
					p := rt.Proc(0)
					q.Enqueue(p, 5)
					q.Enqueue(p, 6)
					tgt := rtTarget{q}
					return SweepInstance{
						Heap:   rt.Heap(),
						Target: tgt,
						Verify: seqVerify(q.Values, q.CheckInvariants, func(c SweepCase) []uint64 {
							if c.Op.Kind == repro.OpEnq {
								return []uint64{5, 6, c.Op.Arg}
							}
							return []uint64{6}
						}),
						RecoverAll: recoverAllVia(t, rt, tgt, q),
					}
				}
				SweepAllPoints(t, build, []SweepCase{
					{"enqueue", Op{Kind: repro.OpEnq, Arg: 7}, isb.RespTrue},
					{"dequeue", Op{Kind: repro.OpDeq}, isb.EncodeValue(5)},
				})
			})

			// stack-elim keeps the elimination window open (single proc, so
			// every exchange times out and falls back to the central stack):
			// it sweeps the announce-before-elimination entry sequence and
			// RecoverOp's exchanger-first recovery under registry routing,
			// which the elimSpins=0 variant never reaches. Actual collisions
			// need concurrency and are covered by the elimination crash
			// storms (crash_stack_test.go), which exercise the same
			// Stack.RecoverOp path RecoverAll routes to.
			for _, elim := range []struct {
				name  string
				spins int
			}{{"stack", 0}, {"stack-elim", 2}} {
				elim := elim
				t.Run(elim.name, func(t *testing.T) {
					build := func() SweepInstance {
						rt := newRT()
						s := rt.NewStack(elim.spins)
						p := rt.Proc(0)
						s.Push(p, 5)
						s.Push(p, 6)
						tgt := rtTarget{s}
						return SweepInstance{
							Heap:   rt.Heap(),
							Target: tgt,
							Verify: seqVerify(s.Values, s.CheckInvariants, func(c SweepCase) []uint64 {
								if c.Op.Kind == repro.OpPush {
									return []uint64{c.Op.Arg, 6, 5}
								}
								return []uint64{5}
							}),
							RecoverAll: recoverAllVia(t, rt, tgt, s),
						}
					}
					SweepAllPoints(t, build, []SweepCase{
						{"push", Op{Kind: repro.OpPush, Arg: 7}, isb.RespTrue},
						{"pop", Op{Kind: repro.OpPop}, isb.EncodeValue(6)},
					})
				})
			}
		})
	}
}
