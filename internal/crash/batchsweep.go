package crash

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/isb"
	"repro/internal/pmem"
)

// This file is the batched-admission twin of sweep.go/scenarios.go: an
// exhaustive crash-point sweep over Runtime.ApplyBatch windows. Where the
// single-op sweep re-supplies the crashed operation to Recover, the batch
// sweep resolves the crash the way a real application would — through
// Runtime.RecoverAll's batch report — and re-submits exactly the
// operations the report proves had no effect. Every access offset of the
// window is swept, so the mid-batch-announcement, mid-cursor-advance and
// mid-operation crash states are all covered, on both engine placements,
// with reclamation on and off.

// BatchSweepCase is one deterministic single-process batch: the operations
// submitted as one ApplyBatch window, and the encoded response the
// sequential model requires from each.
type BatchSweepCase struct {
	Name string
	Ops  []repro.Op
	Want []uint64
}

// BatchSweepInstance is one freshly built runtime + structure under batch
// sweep. Verify checks the structure's post-state once every operation of
// the case has resolved (directly, through recovery, or by re-submission);
// it returns a description of the first violation, or "".
type BatchSweepInstance struct {
	RT     *repro.Runtime
	S      repro.Structure
	Verify func(c BatchSweepCase) string
}

// resolveBatch turns a crashed ApplyBatch replay into the full response
// vector, the way an application consumes the batch report: completed and
// in-flight operations take their reported responses; the no-effect suffix
// is re-submitted as a fresh batch. An empty report (or a report without a
// batch entry — the previous single operation's idempotent
// re-confirmation) proves the batch never announced, so every operation is
// re-submitted. It also checks the report's shape: the statuses must form
// a completed prefix, at most one in-flight operation, and a no-effect
// suffix, in that order.
func resolveBatch(in BatchSweepInstance, p *pmem.Proc, c BatchSweepCase) ([]uint64, error) {
	reps := in.RT.RecoverAll()
	got := make([]uint64, len(c.Ops))
	resubmitFrom := 0
	if len(reps) > 0 {
		if len(reps) != 1 {
			return nil, fmt.Errorf("single-proc sweep produced %d report entries", len(reps))
		}
		rep := reps[0]
		if rep.Batch != nil {
			if len(rep.Batch) != len(c.Ops) {
				return nil, fmt.Errorf("batch report has %d entries, want %d", len(rep.Batch), len(c.Ops))
			}
			inFlight := -1
			for i, ent := range rep.Batch {
				if ent.Op != c.Ops[i] {
					return nil, fmt.Errorf("batch entry %d reports op %+v, want %+v", i, ent.Op, c.Ops[i])
				}
				switch ent.Status {
				case repro.OpCompleted:
					if inFlight >= 0 {
						return nil, fmt.Errorf("completed entry %d after in-flight entry %d", i, inFlight)
					}
					got[i] = ent.Resp.Raw()
				case repro.OpInFlight:
					if inFlight >= 0 {
						return nil, fmt.Errorf("two in-flight entries (%d and %d)", inFlight, i)
					}
					inFlight = i
					got[i] = ent.Resp.Raw()
				case repro.OpNoEffect:
					if inFlight < 0 {
						return nil, fmt.Errorf("no-effect entry %d with no in-flight entry before it", i)
					}
					if i != inFlight+1 && rep.Batch[i-1].Status != repro.OpNoEffect {
						return nil, fmt.Errorf("no-effect entry %d does not follow the in-flight entry", i)
					}
				}
			}
			if inFlight < 0 {
				return nil, fmt.Errorf("batch report has no in-flight entry")
			}
			resubmitFrom = inFlight + 1
		}
		// rep.Batch == nil: the announcement that survived is the prefill's
		// last single operation (the crash landed before the batch record
		// became durable); its recovery re-confirmed it idempotently, and
		// the whole batch provably had no effect — re-submit everything.
	}
	if resubmitFrom < len(c.Ops) {
		resps := in.RT.ApplyBatch(p, in.S, c.Ops[resubmitFrom:])
		for i, r := range resps {
			got[resubmitFrom+i] = r.Raw()
		}
	}
	return got, nil
}

// RunBatchCase is the batch sweep core: it measures the window's tracked
// access span on an uninterrupted run, then replays the batch once per
// access offset with a system-wide crash armed exactly there, resolving
// each crash through RecoverAll's batch report plus suffix re-submission,
// and checking every response and the post-state each time. It returns how
// many offsets actually interrupted the window.
func RunBatchCase(build func() BatchSweepInstance, c BatchSweepCase) (crashPoints int, err error) {
	if len(c.Ops) != len(c.Want) {
		return 0, fmt.Errorf("%s: %d ops but %d wanted responses", c.Name, len(c.Ops), len(c.Want))
	}
	check := func(got []uint64, off uint64) error {
		for i := range c.Want {
			if got[i] != c.Want[i] {
				return fmt.Errorf("%s off=%d: op %d response %d, want %d", c.Name, off, i, got[i], c.Want[i])
			}
		}
		return nil
	}

	in := build()
	p := in.RT.Proc(0)
	before := in.RT.Heap().AccessCount()
	resps := in.RT.ApplyBatch(p, in.S, c.Ops)
	total := in.RT.Heap().AccessCount() - before
	got := make([]uint64, len(resps))
	for i, r := range resps {
		got[i] = r.Raw()
	}
	if err := check(got, 0); err != nil {
		return 0, fmt.Errorf("uninterrupted %v", err)
	}
	if msg := in.Verify(c); msg != "" {
		return 0, fmt.Errorf("uninterrupted %s: %s", c.Name, msg)
	}
	if total == 0 {
		return 0, fmt.Errorf("%s: batch made no tracked accesses", c.Name)
	}

	for off := uint64(1); off <= total; off++ {
		in := build()
		p := in.RT.Proc(0)
		in.RT.ScheduleCrash(off)
		var resps []repro.Resp
		if in.RT.Run(func() { resps = in.RT.ApplyBatch(p, in.S, c.Ops) }) {
			in.RT.CancelCrash()
			got = got[:0]
			for _, r := range resps {
				got = append(got, r.Raw())
			}
		} else {
			crashPoints++
			in.RT.Restart()
			var rerr error
			got, rerr = resolveBatch(in, p, c)
			if rerr != nil {
				return crashPoints, fmt.Errorf("%s off=%d: %v", c.Name, off, rerr)
			}
		}
		if err := check(got, off); err != nil {
			return crashPoints, err
		}
		if msg := in.Verify(c); msg != "" {
			return crashPoints, fmt.Errorf("%s off=%d: %s", c.Name, off, msg)
		}
	}
	if crashPoints == 0 {
		return 0, fmt.Errorf("%s: no crash point actually interrupted the batch", c.Name)
	}
	return crashPoints, nil
}

// BatchScenario is one (structure, engine kind, reclaim mode) cell of the
// batch conformance matrix.
type BatchScenario struct {
	Structure string
	Engine    string
	Reclaim   bool
	Build     func() BatchSweepInstance
	Cases     []BatchSweepCase
}

// Name identifies the cell in test output.
func (s BatchScenario) Name() string {
	mode := "arena"
	if s.Reclaim {
		mode = "reclaim"
	}
	return s.Structure + "/" + s.Engine + "/" + mode
}

// batchRT builds the sweep runtime for one batch cell.
func batchRT(kind repro.EngineKind, reclaim bool) *repro.Runtime {
	return repro.New(repro.Config{
		Procs: 1, CrashSim: true, HeapWords: sweepHeapWords,
		Seed: 42, Engine: kind, Reclaim: reclaim,
	})
}

// batchSetVerify checks a set-structure's final key set against want.
func batchSetVerify(keys func() []uint64, invariants func() string, want []uint64) func(BatchSweepCase) string {
	return func(BatchSweepCase) string {
		got := keys()
		if len(got) != len(want) {
			return fmt.Sprintf("key set %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Sprintf("key set %v, want %v", got, want)
			}
		}
		return invariants()
	}
}

// batchSeqVerify checks a queue/stack value snapshot against want.
func batchSeqVerify(values func() []uint64, invariants func() string, want []uint64) func(BatchSweepCase) string {
	return func(BatchSweepCase) string {
		got := values()
		if len(got) != len(want) {
			return fmt.Sprintf("values %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Sprintf("values %v, want %v", got, want)
			}
		}
		return invariants()
	}
}

// batchSetCases is the shared set-structure batch table: mutations
// interleaved with reads (one mid-batch, one terminal), so the sweep hits
// reads whose results must be durable before the next op's effect, and a
// read as the batch's final — never result-slot-covered — operation.
// Prefill {3, 9}; final set {3, 5, 9}.
func batchSetCases() []BatchSweepCase {
	t, f := isb.RespTrue, isb.RespFalse
	return []BatchSweepCase{
		{
			Name: "mixed",
			Ops: []repro.Op{
				{Kind: repro.OpInsert, Arg: 5},
				{Kind: repro.OpFind, Arg: 5},
				{Kind: repro.OpDelete, Arg: 9},
				{Kind: repro.OpInsert, Arg: 9},
			},
			Want: []uint64{t, t, t, t},
		},
		{
			Name: "read-tail",
			Ops: []repro.Op{
				{Kind: repro.OpInsert, Arg: 5},
				{Kind: repro.OpDelete, Arg: 7},
				{Kind: repro.OpFind, Arg: 3},
				{Kind: repro.OpFind, Arg: 7},
			},
			Want: []uint64{t, f, t, f},
		},
	}
}

// batchSetPrefill seeds the set-structure batch cells.
var batchSetPrefill = []uint64{3, 9}

// batchSetFinal is the sequential model's final key set for every case in
// batchSetCases (both cases end with {3, 5, 9}).
var batchSetFinal = []uint64{3, 5, 9}

// BatchScenarios returns the batch conformance matrix: all five structures
// × both public engine kinds × reclamation on/off. The stack cells disable
// elimination (batched operations bypass it by design; see
// stack.ApplyBatchOp).
func BatchScenarios() []BatchScenario {
	var out []BatchScenario
	for _, eng := range []struct {
		name string
		kind repro.EngineKind
	}{{"isb", repro.EngineIsb}, {"isb-opt", repro.EngineIsbOpt}} {
		for _, rec := range []bool{false, true} {
			eng, rec := eng, rec
			out = append(out,
				BatchScenario{
					Structure: "list", Engine: eng.name, Reclaim: rec,
					Build: func() BatchSweepInstance {
						rt := batchRT(eng.kind, rec)
						l := rt.NewList()
						p := rt.Proc(0)
						for _, k := range batchSetPrefill {
							l.Insert(p, k)
						}
						return BatchSweepInstance{
							RT: rt, S: l,
							Verify: batchSetVerify(l.Keys, l.CheckInvariants, batchSetFinal),
						}
					},
					Cases: batchSetCases(),
				},
				BatchScenario{
					Structure: "bst", Engine: eng.name, Reclaim: rec,
					Build: func() BatchSweepInstance {
						rt := batchRT(eng.kind, rec)
						b := rt.NewBST()
						p := rt.Proc(0)
						for _, k := range batchSetPrefill {
							b.Insert(p, k)
						}
						return BatchSweepInstance{
							RT: rt, S: b,
							Verify: batchSetVerify(b.Keys, b.CheckInvariants, batchSetFinal),
						}
					},
					Cases: batchSetCases(),
				},
				BatchScenario{
					Structure: "hashmap", Engine: eng.name, Reclaim: rec,
					Build: func() BatchSweepInstance {
						rt := batchRT(eng.kind, rec)
						m := rt.NewHashMap(4)
						p := rt.Proc(0)
						for _, k := range batchSetPrefill {
							m.Insert(p, k)
						}
						return BatchSweepInstance{
							RT: rt, S: m,
							Verify: batchSetVerify(m.Keys, m.CheckInvariants, batchSetFinal),
						}
					},
					Cases: batchSetCases(),
				},
				BatchScenario{
					Structure: "queue", Engine: eng.name, Reclaim: rec,
					Build: func() BatchSweepInstance {
						rt := batchRT(eng.kind, rec)
						q := rt.NewQueue()
						q.Enqueue(rt.Proc(0), 7)
						return BatchSweepInstance{
							RT: rt, S: q,
							Verify: batchSeqVerify(q.Values, q.CheckInvariants, nil),
						}
					},
					Cases: []BatchSweepCase{{
						Name: "enq-peek-deq",
						Ops: []repro.Op{
							{Kind: repro.OpEnq, Arg: 41},
							{Kind: repro.OpPeek},
							{Kind: repro.OpDeq},
							{Kind: repro.OpDeq},
						},
						Want: []uint64{
							isb.RespTrue, isb.EncodeValue(7),
							isb.EncodeValue(7), isb.EncodeValue(41),
						},
					}},
				},
				BatchScenario{
					Structure: "stack", Engine: eng.name, Reclaim: rec,
					Build: func() BatchSweepInstance {
						rt := batchRT(eng.kind, rec)
						s := rt.NewStack(0)
						s.Push(rt.Proc(0), 7)
						return BatchSweepInstance{
							RT: rt, S: s,
							Verify: batchSeqVerify(s.Values, s.CheckInvariants, nil),
						}
					},
					Cases: []BatchSweepCase{{
						Name: "push-top-pop",
						Ops: []repro.Op{
							{Kind: repro.OpPush, Arg: 41},
							{Kind: repro.OpTop},
							{Kind: repro.OpPop},
							{Kind: repro.OpPop},
						},
						Want: []uint64{
							isb.RespTrue, isb.EncodeValue(41),
							isb.EncodeValue(41), isb.EncodeValue(7),
						},
					}},
				},
			)
		}
	}
	return out
}

// SweepAllBatchPoints is the batch twin of SweepAllPoints: RunBatchCase per
// case, as subtests.
func SweepAllBatchPoints(t *testing.T, build func() BatchSweepInstance, cases []BatchSweepCase) {
	t.Helper()
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if _, err := RunBatchCase(build, c); err != nil {
				t.Fatal(err)
			}
		})
	}
}
