package crash

import (
	"math/rand"
	"testing"

	"repro/internal/linearize"
	"repro/internal/list"
	"repro/internal/pmem"
)

// listKindMap translates list op codes to linearize kinds (they coincide).
func listGen(keys uint64) func(id, i int, rng *rand.Rand) Op {
	return func(id, i int, rng *rand.Rand) Op {
		k := uint64(rng.Intn(int(keys))) + 1
		switch rng.Intn(3) {
		case 0:
			return Op{Kind: list.OpInsert, Arg: k}
		case 1:
			return Op{Kind: list.OpDelete, Arg: k}
		default:
			return Op{Kind: list.OpFind, Arg: k}
		}
	}
}

func runListStorm(t *testing.T, eng engineVariant, seed int64, procs, opsPerProc, crashes int, keys uint64, evictEvery uint64) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 22, Procs: procs, Tracked: true,
		EvictEvery: evictEvery, Seed: uint64(seed) + 1,
	})
	l := list.NewWithEngine(h, eng.mk(h))
	res := Run(Config{
		Heap: h, Target: Adapt(l), Procs: procs, OpsPerProc: opsPerProc,
		Gen: listGen(keys), Crashes: crashes,
		MeanAccessGap: procs * opsPerProc * 40 / (crashes + 1),
		Seed:          seed,
	})
	if want := procs * opsPerProc; len(res.History) != want {
		t.Fatalf("history has %d ops, want %d (detectability: every op must resolve)", len(res.History), want)
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatalf("structural invariant violated after storm: %s", msg)
	}
	if k, ok := linearize.CheckSetHistory(res.History); !ok {
		t.Fatalf("history not linearizable at key %d (seed %d, %d crashes fired, %d recovered ops)",
			k, seed, res.CrashesFired, res.RecoveredOps)
	}
	// Final membership must match the history's net successful updates.
	net := map[uint64]int{}
	for _, e := range res.Events {
		if e.Resp != linearize.RespTrue {
			continue
		}
		switch e.Op.Kind {
		case list.OpInsert:
			net[e.Op.Arg]++
		case list.OpDelete:
			net[e.Op.Arg]--
		}
	}
	present := map[uint64]bool{}
	for _, k := range l.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if net[k] != want {
			t.Fatalf("key %d: net successful updates %d but presence %v (seed %d)", k, net[k], present[k], seed)
		}
	}
}

func TestListSingleProcCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 8; seed++ {
			runListStorm(t, eng, seed, 1, 60, 6, 8, 0)
		}
	})
}

func TestListConcurrentCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 6; seed++ {
			runListStorm(t, eng, seed, 4, 40, 5, 16, 0)
		}
	})
}

func TestListCrashStormWithEviction(t *testing.T) {
	// Random cache-line eviction persists extra state at arbitrary points,
	// widening the crash-state space (persisted state newer than the last
	// explicit flush).
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 6; seed++ {
			runListStorm(t, eng, seed, 4, 40, 5, 12, 3)
		}
	})
}

func TestListHighCrashRate(t *testing.T) {
	// Crashes every few operations: most operations recover, many recover
	// through multiple crashes.
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 4; seed++ {
			runListStorm(t, eng, seed, 3, 30, 20, 8, 0)
		}
	})
}

func TestListManyProcsFewKeysStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 3; seed++ {
			runListStorm(t, eng, seed, 8, 30, 6, 25, 4)
		}
	})
}

func TestStormReportsRecoveries(t *testing.T) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 22, Procs: 2, Tracked: true})
	l := list.New(h)
	res := Run(Config{
		Heap: h, Target: Adapt(l), Procs: 2, OpsPerProc: 100,
		Gen: listGen(4), Crashes: 8, MeanAccessGap: 700, Seed: 99,
	})
	if res.CrashesFired == 0 {
		t.Fatal("no crashes fired")
	}
	if res.RecoveredOps == 0 {
		t.Fatal("no operations went through recovery")
	}
	if h.Epoch() != uint64(res.CrashesFired) {
		t.Fatalf("heap epochs %d != crashes fired %d", h.Epoch(), res.CrashesFired)
	}
}

func TestStormZeroCrashesIsPlainConcurrency(t *testing.T) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 22, Procs: 4, Tracked: true})
	l := list.New(h)
	res := Run(Config{
		Heap: h, Target: Adapt(l), Procs: 4, OpsPerProc: 50,
		Gen: listGen(10), Crashes: 0, Seed: 7,
	})
	if res.CrashesFired != 0 || res.RecoveredOps != 0 {
		t.Fatalf("unexpected crashes/recoveries: %+v", res)
	}
	if k, ok := linearize.CheckSetHistory(res.History); !ok {
		t.Fatalf("crash-free history not linearizable at key %d", k)
	}
}

// TestHistoryCapPerKey guards the WGL size bound: workloads used above must
// not route more than linearize.MaxOps operations to a single key.
func TestHistoryCapPerKey(t *testing.T) {
	counts := map[uint64]int{}
	gen := listGen(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ { // one proc's workload from the single-proc storm
		counts[gen(0, i, rng).Arg]++
	}
	for k, c := range counts {
		if c > linearize.MaxOps {
			t.Fatalf("key %d gets %d ops, exceeding checker capacity", k, c)
		}
	}
}
