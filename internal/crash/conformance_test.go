package crash

import (
	"fmt"
	"testing"

	"repro/internal/bst"
	"repro/internal/hashmap"
	"repro/internal/isb"
	"repro/internal/list"
	"repro/internal/pmem"
	"repro/internal/queue"
	"repro/internal/stack"
)

// Crash-point conformance: SweepAllPoints drives representative operations
// of every structure through a crash at every shared-memory access, under
// both engine variants. The set-like structures (list, BST, hash map) share
// one case table; the queue and stack get FIFO/LIFO-shaped ones.

// setPrefill seeds every set-like structure before a sweep.
var setPrefill = []uint64{3, 9, 14, 27, 31}

// setSweepCases builds the shared set case table from a structure's op
// codes (list and hashmap share the list's; the BST has its own constants
// with identical values).
func setSweepCases(opIns, opDel, opFind uint64) []SweepCase {
	return []SweepCase{
		{"insert-fresh", Op{Kind: opIns, Arg: 8}, respBool(true)},
		{"insert-dup", Op{Kind: opIns, Arg: 9}, respBool(false)},
		{"delete-present", Op{Kind: opDel, Arg: 14}, respBool(true)},
		{"delete-absent", Op{Kind: opDel, Arg: 15}, respBool(false)},
		{"find-present", Op{Kind: opFind, Arg: 27}, respBool(true)},
		{"find-absent", Op{Kind: opFind, Arg: 28}, respBool(false)},
	}
}

// setExpect is the sequential model: prefill, then the case's op applied.
func setExpect(opIns, opDel uint64, op Op) map[uint64]bool {
	w := map[uint64]bool{}
	for _, k := range setPrefill {
		w[k] = true
	}
	switch op.Kind {
	case opIns:
		w[op.Arg] = true
	case opDel:
		delete(w, op.Arg)
	}
	return w
}

// setVerify compares a snapshot against the sequential model and then runs
// the structure's own invariant check.
func setVerify(opIns, opDel uint64, keys func() []uint64, invariants func() string) func(SweepCase) string {
	return func(c SweepCase) string {
		want := setExpect(opIns, opDel, c.Op)
		got := keys()
		if len(got) != len(want) {
			return fmt.Sprintf("key set %v, want %v", got, keysOf(want))
		}
		for _, k := range got {
			if !want[k] {
				return fmt.Sprintf("unexpected key %d (set %v)", k, got)
			}
		}
		return invariants()
	}
}

func keysOf(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestListCrashConformance(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		build := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			l := list.NewWithEngine(h, eng.mk(h))
			p := h.Proc(0)
			for _, k := range setPrefill {
				l.Insert(p, k)
			}
			return SweepInstance{
				Heap:   h,
				Target: Adapt(l),
				Verify: setVerify(list.OpInsert, list.OpDelete, l.Keys, l.CheckInvariants),
			}
		}
		SweepAllPoints(t, build, setSweepCases(list.OpInsert, list.OpDelete, list.OpFind))
	})
}

func TestBSTCrashConformance(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		build := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			b := bst.NewWithEngine(h, eng.mk(h))
			p := h.Proc(0)
			for _, k := range setPrefill {
				b.Insert(p, k)
			}
			return SweepInstance{
				Heap:   h,
				Target: Adapt(b),
				Verify: setVerify(bst.OpInsert, bst.OpDelete, b.Keys, b.CheckInvariants),
			}
		}
		SweepAllPoints(t, build, setSweepCases(bst.OpInsert, bst.OpDelete, bst.OpFind))
	})
}

func TestHashMapCrashConformance(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		build := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			m := hashmap.NewWithEngine(h, eng.mk(h), 4)
			p := h.Proc(0)
			for _, k := range setPrefill {
				m.Insert(p, k)
			}
			return SweepInstance{
				Heap:   h,
				Target: Adapt(m),
				Verify: setVerify(hashmap.OpInsert, hashmap.OpDelete, m.Keys, m.CheckInvariants),
			}
		}
		SweepAllPoints(t, build, setSweepCases(hashmap.OpInsert, hashmap.OpDelete, hashmap.OpFind))
	})
}

// queueVerify checks the queue's remaining values front-to-back.
func queueVerify(q *queue.Queue, want func(c SweepCase) []uint64) func(SweepCase) string {
	return func(c SweepCase) string {
		w := want(c)
		got := q.Values()
		if len(got) != len(w) {
			return fmt.Sprintf("queue %v, want %v", got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				return fmt.Sprintf("queue %v, want %v", got, w)
			}
		}
		return q.CheckInvariants()
	}
}

func TestQueueCrashConformance(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		prefilled := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			q := queue.NewWithEngine(h, eng.mk(h))
			p := h.Proc(0)
			q.Enqueue(p, 5)
			q.Enqueue(p, 6)
			return SweepInstance{
				Heap:   h,
				Target: Adapt(q),
				Verify: queueVerify(q, func(c SweepCase) []uint64 {
					if c.Op.Kind == queue.OpEnq {
						return []uint64{5, 6, c.Op.Arg}
					}
					return []uint64{6}
				}),
			}
		}
		SweepAllPoints(t, prefilled, []SweepCase{
			{"enqueue", Op{Kind: queue.OpEnq, Arg: 7}, isb.RespTrue},
			{"dequeue", Op{Kind: queue.OpDeq}, isb.EncodeValue(5)},
		})

		empty := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			q := queue.NewWithEngine(h, eng.mk(h))
			return SweepInstance{
				Heap:   h,
				Target: Adapt(q),
				Verify: queueVerify(q, func(SweepCase) []uint64 { return nil }),
			}
		}
		SweepAllPoints(t, empty, []SweepCase{
			{"dequeue-empty", Op{Kind: queue.OpDeq}, isb.RespEmpty},
		})

		// Regression: a dequeued value of 0 must stay distinguishable from
		// "empty" at every crash point (the response encoding keeps payloads
		// disjoint from RespEmpty; decoding must not conflate them).
		zero := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			q := queue.NewWithEngine(h, eng.mk(h))
			q.Enqueue(h.Proc(0), 0)
			return SweepInstance{
				Heap:   h,
				Target: Adapt(q),
				Verify: queueVerify(q, func(SweepCase) []uint64 { return nil }),
			}
		}
		SweepAllPoints(t, zero, []SweepCase{
			{"dequeue-zero", Op{Kind: queue.OpDeq}, isb.EncodeValue(0)},
		})
	})
}

// stackVerify checks the stack's remaining values top-to-bottom.
func stackVerify(s *stack.Stack, want func(c SweepCase) []uint64) func(SweepCase) string {
	return func(c SweepCase) string {
		w := want(c)
		got := s.Values()
		if len(got) != len(w) {
			return fmt.Sprintf("stack %v, want %v", got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				return fmt.Sprintf("stack %v, want %v", got, w)
			}
		}
		return s.CheckInvariants()
	}
}

func TestStackCrashConformance(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		prefilled := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			s := stack.NewWithEngine(h, eng.mk(h), 0)
			p := h.Proc(0)
			s.Push(p, 5)
			s.Push(p, 6)
			return SweepInstance{
				Heap:   h,
				Target: Adapt(s),
				Verify: stackVerify(s, func(c SweepCase) []uint64 {
					if c.Op.Kind == stack.OpPush {
						return []uint64{c.Op.Arg, 6, 5}
					}
					return []uint64{5}
				}),
			}
		}
		SweepAllPoints(t, prefilled, []SweepCase{
			{"push", Op{Kind: stack.OpPush, Arg: 7}, isb.RespTrue},
			{"pop", Op{Kind: stack.OpPop}, isb.EncodeValue(6)},
		})

		empty := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			s := stack.NewWithEngine(h, eng.mk(h), 0)
			return SweepInstance{
				Heap:   h,
				Target: Adapt(s),
				Verify: stackVerify(s, func(SweepCase) []uint64 { return nil }),
			}
		}
		SweepAllPoints(t, empty, []SweepCase{
			{"pop-empty", Op{Kind: stack.OpPop}, isb.RespEmpty},
		})

		// Regression: a popped value of 0 must stay distinguishable from
		// "empty" at every crash point.
		zero := func() SweepInstance {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true, Seed: 42})
			s := stack.NewWithEngine(h, eng.mk(h), 0)
			s.Push(h.Proc(0), 0)
			return SweepInstance{
				Heap:   h,
				Target: Adapt(s),
				Verify: stackVerify(s, func(SweepCase) []uint64 { return nil }),
			}
		}
		SweepAllPoints(t, zero, []SweepCase{
			{"pop-zero", Op{Kind: stack.OpPop}, isb.EncodeValue(0)},
		})
	})
}
