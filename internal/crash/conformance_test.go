package crash

import "testing"

// Crash-point conformance: SweepAllPoints drives representative operations
// of every structure through a crash at every shared-memory access. The
// matrix itself — structures, engine variants (including eviction-enabled
// heaps), cases and oracles — lives in scenarios.go so cmd/bench can time
// the identical sweep it is run under here.
func TestCrashConformanceScenarios(t *testing.T) {
	for _, sc := range Scenarios(SweepEngineVariants()) {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			SweepAllPoints(t, sc.Build, sc.Cases)
		})
	}
}
