package crash

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/isb"
	"repro/internal/linearize"
	"repro/internal/pmem"
	"repro/internal/queue"
)

// queueGen produces globally unique enqueue values (required by the FIFO
// checker) interleaved with dequeues.
func queueGen(next *atomic.Uint64) func(id, i int, rng *rand.Rand) Op {
	return func(id, i int, rng *rand.Rand) Op {
		if rng.Intn(2) == 0 {
			return Op{Kind: queue.OpEnq, Arg: next.Add(1)}
		}
		return Op{Kind: queue.OpDeq}
	}
}

func runQueueStorm(t *testing.T, eng engineVariant, seed int64, procs, opsPerProc, crashes int, evictEvery uint64) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 21, Procs: procs, Tracked: true,
		EvictEvery: evictEvery, Seed: uint64(seed) + 1,
	})
	q := queue.NewWithEngine(h, eng.mk(h))
	var next atomic.Uint64
	res := Run(Config{
		Heap: h, Target: Adapt(q), Procs: procs, OpsPerProc: opsPerProc,
		Gen: queueGen(&next), Crashes: crashes,
		MeanAccessGap: procs * opsPerProc * 30 / (crashes + 1),
		Seed:          seed,
	})
	if want := procs * opsPerProc; len(res.History) != want {
		t.Fatalf("history %d ops, want %d", len(res.History), want)
	}
	if msg := q.CheckInvariants(); msg != "" {
		t.Fatalf("invariant: %s (seed %d)", msg, seed)
	}
	// Map op kinds onto the linearize queue model's kinds.
	hist := make([]linearize.Operation, len(res.History))
	copy(hist, res.History)
	for i := range hist {
		if hist[i].Kind == queue.OpEnq {
			hist[i].Kind = linearize.KindEnq
		} else {
			hist[i].Kind = linearize.KindDeq
		}
	}
	if !linearize.Check(linearize.QueueModel(), hist) {
		t.Fatalf("queue history not linearizable (seed %d, crashes %d, recovered %d)",
			seed, res.CrashesFired, res.RecoveredOps)
	}
	// Conservation: every enqueued value is either dequeued exactly once or
	// still in the queue.
	enq := map[uint64]bool{}
	deq := map[uint64]int{}
	for _, e := range res.Events {
		if e.Op.Kind == queue.OpEnq {
			enq[e.Op.Arg] = true
		} else if e.Resp != isb.RespEmpty {
			deq[isb.DecodeValue(e.Resp)]++
		}
	}
	for v, n := range deq {
		if n != 1 {
			t.Fatalf("value %d dequeued %d times (seed %d)", v, n, seed)
		}
		if !enq[v] {
			t.Fatalf("value %d dequeued but never enqueued (seed %d)", v, seed)
		}
	}
	remaining := q.Values()
	if len(remaining)+len(deq) != len(enq) {
		t.Fatalf("conservation: %d enqueued, %d dequeued, %d remaining (seed %d)",
			len(enq), len(deq), len(remaining), seed)
	}
	for _, v := range remaining {
		if deq[v] != 0 {
			t.Fatalf("value %d both dequeued and still queued (seed %d)", v, seed)
		}
	}
}

func TestQueueSingleProcCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 8; seed++ {
			runQueueStorm(t, eng, seed, 1, 50, 6, 0)
		}
	})
}

func TestQueueConcurrentCrashStorm(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 6; seed++ {
			runQueueStorm(t, eng, seed, 3, 20, 5, 0)
		}
	})
}

func TestQueueCrashStormWithEviction(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 5; seed++ {
			runQueueStorm(t, eng, seed, 3, 20, 6, 3)
		}
	})
}

func TestQueueHighCrashRate(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng engineVariant) {
		for seed := int64(1); seed <= 4; seed++ {
			runQueueStorm(t, eng, seed, 2, 25, 15, 0)
		}
	})
}
