package bst

import (
	"repro/internal/isb"
	"repro/internal/pmem"
)

// FindRO reports membership via the zero-persist read path: a volatile
// descent to the routed leaf with no Info record, no announcement, and no
// persistence instruction — one step beyond OpFindFast, which still
// installs and persists its Info record to stay detectably recoverable.
// Linearizes at the load of the last child pointer (the external-BST
// argument: the leaf reached routes the key at that instant). Nothing
// durable records the read; a crashed FindRO is simply re-submitted.
func (t *BST) FindRO(p *pmem.Proc, key uint64) bool {
	node := t.root
	for {
		left := pmem.Addr(p.Load(node + nLeft))
		if left == pmem.Null {
			t.e.NoteReadFast(p)
			return p.Load(node+nKey) == key
		}
		if key < p.Load(node+nKey) {
			node = left
		} else {
			node = pmem.Addr(p.Load(node + nRight))
		}
	}
}

// ReadOp serves a read-only operation kind on the zero-persist path (both
// OpFind and OpFindFast answer membership, so both route here). Panics on
// a mutating kind.
func (t *BST) ReadOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind != OpFind && kind != OpFindFast {
		panic("bst: ReadOp on a mutating kind")
	}
	return isb.BoolResp(t.FindRO(p, arg))
}

// ApplyBatchOp runs one operation at position seq inside an open batch
// window. Read-only kinds take the zero-persist path.
func (t *BST) ApplyBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind || kind == OpFindFast {
		return t.ReadOp(p, kind, arg)
	}
	return t.e.RunBatchOp(p, seq, kind, arg, t.gather(kind))
}

// RecoverBatchOp completes the in-flight operation at batch position seq
// after a crash (re-executing read-only kinds, which had no durable
// effect).
func (t *BST) RecoverBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind || kind == OpFindFast {
		return t.ReadOp(p, kind, arg)
	}
	return t.e.RecoverSeq(p, kind, arg, uint64(seq), t.gather(kind))
}

// Engine exposes the tree's tracking engine (counter access, batching).
func (t *BST) Engine() *isb.Engine { return t.e }
