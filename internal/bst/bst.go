// Package bst implements the paper's detectably recoverable leaf-oriented
// binary search tree (Section 6): ISB-tracking applied to the non-blocking
// BST of Ellen, Fatourou, Ruppert and van Breugel, with the tree's
// flag/mark mechanism subsumed by the generic ISB tagging.
//
// The tree is external: keys live in leaves; internal nodes route searches
// (left subtree < node.key ≤ right subtree). Sentinels follow the original
// construction: the root is an internal node with key ∞₂ = MaxUint64 whose
// right child is a leaf ∞₂ and whose left child starts as a leaf
// ∞₁ = MaxUint64-1. The ∞₁ leaf remains the rightmost leaf of the left
// subtree forever, which guarantees every user leaf has both a parent and a
// grandparent — the nodes Delete must tag.
//
// Insert replaces the reached leaf with a three-node subtree (new internal,
// new leaf, and a copy of the old leaf); Delete replaces the parent with a
// copy of the leaf's sibling. All child-pointer writes install freshly
// allocated nodes, so child pointers never hold the same value twice (no
// ABA). Replaced nodes retire and stay tagged forever.
package bst

import (
	"fmt"

	"repro/internal/isb"
	"repro/internal/pmem"
)

// Node field offsets (words); internal and leaf nodes share the layout
// (leaves have Null children). 4-word allocations.
const (
	nKey   = 0
	nLeft  = 1
	nRight = 2
	nInfo  = 3

	nodeWords = 4
)

// Operation kinds for recovery and the crash harness.
const (
	OpInsert   uint64 = 1
	OpDelete   uint64 = 2
	OpFind     uint64 = 3
	OpFindFast uint64 = 4
)

// Sentinel keys; user keys must satisfy 1 <= k <= MaxUserKey.
const (
	inf2       uint64 = 1<<64 - 1
	inf1       uint64 = 1<<64 - 2
	MaxUserKey uint64 = 1<<64 - 3
)

// BST is a detectably recoverable set of uint64 keys.
type BST struct {
	h    *pmem.Heap
	e    *isb.Engine
	root pmem.Addr

	gIns, gDel, gFind, gFindFast isb.Gather
}

// New builds an empty tree (root + two sentinel leaves) on the heap with
// the paper's Algorithm 1/2 persistence placement.
func New(h *pmem.Heap) *BST {
	return NewWithEngine(h, isb.NewEngine(h))
}

// NewWithEngine builds the tree on a caller-supplied engine.
func NewWithEngine(h *pmem.Heap, e *isb.Engine) *BST {
	t := &BST{h: h, e: e}
	p := h.Proc(0)
	l1 := newNode(e, p, inf1, pmem.Null, pmem.Null, 0)
	l2 := newNode(e, p, inf2, pmem.Null, pmem.Null, 0)
	t.root = newNode(e, p, inf2, l1, l2, 0)
	p.PBarrierRange(l1, nodeWords)
	p.PBarrierRange(l2, nodeWords)
	p.PBarrierRange(t.root, nodeWords)
	p.PSync()
	t.gIns = t.gatherInsert
	t.gDel = t.gatherDelete
	t.gFind = t.gatherFind
	t.gFindFast = t.gatherFindFast
	return t
}

// newNode draws a node from the engine's allocator (arena by default, the
// epoch reclaimer when the runtime enables reclamation).
func newNode(e *isb.Engine, p *pmem.Proc, key uint64, left, right pmem.Addr, info uint64) pmem.Addr {
	nd := e.Alloc(p, nodeWords)
	p.Store(nd+nKey, key)
	p.Store(nd+nLeft, uint64(left))
	p.Store(nd+nRight, uint64(right))
	p.Store(nd+nInfo, info)
	return nd
}

// gather maps an operation kind to its gather function.
func (t *BST) gather(kind uint64) isb.Gather {
	switch kind {
	case OpInsert:
		return t.gIns
	case OpDelete:
		return t.gDel
	case OpFindFast:
		return t.gFindFast
	default:
		return t.gFind
	}
}

// ApplyOp runs the operation described by (kind, arg) and returns its
// encoded response: the uniform invocation surface every structure shares.
func (t *BST) ApplyOp(p *pmem.Proc, kind, arg uint64) uint64 {
	return t.e.RunOp(p, kind, arg, t.gather(kind))
}

// RecoverOp is the uniform recovery surface: it completes an interrupted
// (kind, arg) operation and returns its encoded response.
func (t *BST) RecoverOp(p *pmem.Proc, kind, arg uint64) uint64 {
	return t.e.Recover(p, kind, arg, t.gather(kind))
}

// Insert adds key; false if present. Keys must be in [1, MaxUserKey].
func (t *BST) Insert(p *pmem.Proc, key uint64) bool {
	return isb.Bool(t.ApplyOp(p, OpInsert, key))
}

// Delete removes key; false if absent.
func (t *BST) Delete(p *pmem.Proc, key uint64) bool {
	return isb.Bool(t.ApplyOp(p, OpDelete, key))
}

// Find reports membership (read-only ROpt fast path).
func (t *BST) Find(p *pmem.Proc, key uint64) bool {
	return isb.Bool(t.ApplyOp(p, OpFind, key))
}

// FindFast is the paper's further Find optimization (Section 6): the
// AffectSet is empty — the response is computed from the reached leaf's
// immutable key without even gathering the leaf's info field. The
// operation still persists its Info record and RD_q, so it remains
// detectably recoverable, but it can never trigger helping.
func (t *BST) FindFast(p *pmem.Proc, key uint64) bool {
	return isb.Bool(t.ApplyOp(p, OpFindFast, key))
}

// Recover is the boolean-typed wrapper over RecoverOp.
func (t *BST) Recover(p *pmem.Proc, op, key uint64) bool {
	return isb.Bool(t.RecoverOp(p, op, key))
}

// Begin is the system-side invocation step (persist CP_q := 0).
func (t *BST) Begin(p *pmem.Proc) { t.e.BeginOp(p) }

// searchResult carries the gp/p/l chain of one descent plus the info
// fields gathered on first access to each node.
type searchResult struct {
	gpar, par, leaf             pmem.Addr
	gparInfo, parInfo, leafInfo uint64
}

// search descends from the root to the leaf key routes to. The root is
// always internal, so par is never Null; gpar is Null only when the leaf
// hangs directly off the root (sentinels, or a lone user subtree's leaf is
// never in that position for user keys — see the package doc).
func (t *BST) search(p *pmem.Proc, key uint64) searchResult {
	var r searchResult
	r.leaf = t.root
	r.leafInfo = p.Load(r.leaf + nInfo)
	for {
		left := pmem.Addr(p.Load(r.leaf + nLeft))
		if left == pmem.Null {
			return r // reached a leaf
		}
		r.gpar, r.gparInfo = r.par, r.parInfo
		r.par, r.parInfo = r.leaf, r.leafInfo
		if key < p.Load(r.leaf+nKey) {
			r.leaf = left
		} else {
			r.leaf = pmem.Addr(p.Load(r.leaf + nRight))
		}
		r.leafInfo = p.Load(r.leaf + nInfo)
	}
}

// childField returns the address of par's child pointer that routes key.
func childField(p *pmem.Proc, par pmem.Addr, key uint64) pmem.Addr {
	if key < p.Load(par+nKey) {
		return par + nLeft
	}
	return par + nRight
}

// gatherInsert: AffectSet = (p, l); WriteSet = {p.child: l → newInternal};
// NewSet = {newInternal, newLeaf, copy of l}. The old leaf retires.
func (t *BST) gatherInsert(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	key := spec.ArgKey
	r := t.search(p, key)
	leafKey := p.Load(r.leaf + nKey)
	if leafKey == key {
		spec.AddAffect(r.leaf+nInfo, r.leafInfo)
		spec.AddCleanup(r.leaf + nInfo)
		spec.ReadOnly = true
		spec.Response = isb.RespFalse
		return isb.Proceed
	}
	tagged := isb.Tagged(info)
	newLeaf := newNode(t.e, p, key, pmem.Null, pmem.Null, tagged)
	leafCopy := newNode(t.e, p, leafKey, pmem.Null, pmem.Null, tagged)
	var internal pmem.Addr
	if key < leafKey {
		internal = newNode(t.e, p, leafKey, newLeaf, leafCopy, tagged)
	} else {
		internal = newNode(t.e, p, key, leafCopy, newLeaf, tagged)
	}
	spec.AddAffect(r.par+nInfo, r.parInfo)
	spec.AddAffect(r.leaf+nInfo, r.leafInfo) // retires on success
	spec.AddWrite(childField(p, r.par, key), uint64(r.leaf), uint64(internal))
	spec.AddCleanup(r.par + nInfo)
	spec.AddCleanup(internal + nInfo)
	spec.AddCleanup(newLeaf + nInfo)
	spec.AddCleanup(leafCopy + nInfo)
	spec.AddPersist(internal, nodeWords)
	spec.AddPersist(newLeaf, nodeWords)
	spec.AddPersist(leafCopy, nodeWords)
	spec.SuccessResponse = isb.RespTrue
	return isb.Proceed
}

// gatherDelete: AffectSet = (gp, p, left-child, right-child); WriteSet =
// {gp.child: p → copy of sibling}; NewSet = {sibling copy}. p, l and the
// sibling retire; only gp (and the copy) are cleaned up.
func (t *BST) gatherDelete(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	key := spec.ArgKey
	r := t.search(p, key)
	if p.Load(r.leaf+nKey) != key {
		spec.AddAffect(r.leaf+nInfo, r.leafInfo)
		spec.AddCleanup(r.leaf + nInfo)
		spec.ReadOnly = true
		spec.Response = isb.RespFalse
		return isb.Proceed
	}
	if r.gpar == pmem.Null {
		// Cannot happen for user keys (the ∞₁ sentinel guarantees depth
		// ≥ 2); treat defensively as a transient inconsistency.
		return isb.Restart
	}
	// Identify the sibling and fix the (left, right) tagging order.
	left := pmem.Addr(p.Load(r.par + nLeft))
	right := pmem.Addr(p.Load(r.par + nRight))
	var sib pmem.Addr
	if left == r.leaf {
		sib = right
	} else if right == r.leaf {
		sib = left
	} else {
		// par's children changed since the descent; its info changed too,
		// so this attempt would fail tagging — restart early.
		return isb.Restart
	}
	sibInfo := p.Load(sib + nInfo)
	sibCopy := newNode(t.e, p, p.Load(sib+nKey), pmem.Addr(p.Load(sib+nLeft)),
		pmem.Addr(p.Load(sib+nRight)), isb.Tagged(info))

	spec.AddAffect(r.gpar+nInfo, r.gparInfo)
	spec.AddAffect(r.par+nInfo, r.parInfo)
	// Children in fixed left-then-right order for a consistent total order
	// across operations.
	if left == r.leaf {
		spec.AddAffect(r.leaf+nInfo, r.leafInfo)
		spec.AddAffect(sib+nInfo, sibInfo)
	} else {
		spec.AddAffect(sib+nInfo, sibInfo)
		spec.AddAffect(r.leaf+nInfo, r.leafInfo)
	}
	spec.AddWrite(childField(p, r.gpar, key), uint64(r.par), uint64(sibCopy))
	spec.AddCleanup(r.gpar + nInfo)
	spec.AddCleanup(sibCopy + nInfo)
	spec.AddPersist(sibCopy, nodeWords)
	spec.SuccessResponse = isb.RespTrue
	return isb.Proceed
}

// gatherFind: read-only, AffectSet = {l}.
func (t *BST) gatherFind(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	key := spec.ArgKey
	r := t.search(p, key)
	spec.AddAffect(r.leaf+nInfo, r.leafInfo)
	spec.AddCleanup(r.leaf + nInfo)
	spec.ReadOnly = true
	spec.Response = isb.BoolResp(p.Load(r.leaf+nKey) == key)
	return isb.Proceed
}

// gatherFindFast: read-only with an empty AffectSet. The descent skips the
// info fields entirely (nothing will be tagged or validated), reading only
// routing keys and child pointers — the saving the optimization is for.
func (t *BST) gatherFindFast(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	key := spec.ArgKey
	nd := t.root
	for {
		left := pmem.Addr(p.Load(nd + nLeft))
		if left == pmem.Null {
			break
		}
		if key < p.Load(nd+nKey) {
			nd = left
		} else {
			nd = pmem.Addr(p.Load(nd + nRight))
		}
	}
	spec.ReadOnly = true
	spec.Response = isb.BoolResp(p.Load(nd+nKey) == key)
	return isb.Proceed
}

// MarkReachable reports every tree node reachable from the root to the
// post-crash reclamation scan.
func (t *BST) MarkReachable(p *pmem.Proc, mark func(pmem.Addr)) {
	var walk func(nd pmem.Addr)
	walk = func(nd pmem.Addr) {
		if nd == pmem.Null {
			return
		}
		mark(nd)
		left := pmem.Addr(p.Load(nd + nLeft))
		if left == pmem.Null {
			return
		}
		walk(left)
		walk(pmem.Addr(p.Load(nd + nRight)))
	}
	walk(t.root)
}

// Keys returns the user keys in order (test helper; quiescence required).
func (t *BST) Keys() []uint64 {
	var out []uint64
	var walk func(nd pmem.Addr)
	walk = func(nd pmem.Addr) {
		left := pmem.Addr(t.h.ReadVolatile(nd + nLeft))
		if left == pmem.Null {
			if k := t.h.ReadVolatile(nd + nKey); k <= MaxUserKey {
				out = append(out, k)
			}
			return
		}
		walk(left)
		walk(pmem.Addr(t.h.ReadVolatile(nd + nRight)))
	}
	walk(t.root)
	return out
}

// CheckInvariants validates the external-BST shape at quiescence: key
// routing bounds, two children per internal node, untagged live nodes, and
// the ∞₁ sentinel as the rightmost leaf of the left subtree.
func (t *BST) CheckInvariants() string {
	var err string
	var walk func(nd pmem.Addr, lo, hi uint64, depth int) (maxLeaf uint64)
	walk = func(nd pmem.Addr, lo, hi uint64, depth int) uint64 {
		if err != "" {
			return 0
		}
		if depth > 100000 {
			err = "tree implausibly deep: cycle suspected"
			return 0
		}
		if nd == pmem.Null {
			err = "Null child of an internal node"
			return 0
		}
		k := t.h.ReadVolatile(nd + nKey)
		if k < lo || k >= hi {
			err = fmt.Sprintf("key %d outside routing bounds [%d,%d)", k, lo, hi)
			return 0
		}
		if isb.IsTagged(t.h.ReadVolatile(nd + nInfo)) {
			err = "live node tagged at quiescence"
			return 0
		}
		left := pmem.Addr(t.h.ReadVolatile(nd + nLeft))
		right := pmem.Addr(t.h.ReadVolatile(nd + nRight))
		if left == pmem.Null && right == pmem.Null {
			return k
		}
		if left == pmem.Null || right == pmem.Null {
			err = "internal node with a single child"
			return 0
		}
		walk(left, lo, k, depth+1)
		return walk(right, k, hi, depth+1)
	}
	// Root: key ∞₂; right child is the ∞₂ leaf; left subtree ends at ∞₁.
	leftMax := walk(pmem.Addr(t.h.ReadVolatile(t.root+nLeft)), 0, inf2, 1)
	if err != "" {
		return err
	}
	if leftMax != inf1 {
		return fmt.Sprintf("left subtree's rightmost leaf is %d, want the ∞₁ sentinel", leftMax)
	}
	rk := t.h.ReadVolatile(pmem.Addr(t.h.ReadVolatile(t.root+nRight)) + nKey)
	if rk != inf2 {
		return "right sentinel leaf corrupted"
	}
	return ""
}
