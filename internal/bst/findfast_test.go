package bst

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// FindFast is the paper's Section 6 extension: Finds with an *empty*
// AffectSet. These tests pin its semantics, persistence profile, and
// recoverability.

func TestFindFastSemantics(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(32) + 1)
		switch rng.Intn(4) {
		case 0:
			if b.Insert(p, k) != !model[k] {
				t.Fatalf("op %d insert(%d)", i, k)
			}
			model[k] = true
		case 1:
			if b.Delete(p, k) != model[k] {
				t.Fatalf("op %d delete(%d)", i, k)
			}
			delete(model, k)
		case 2:
			if b.Find(p, k) != model[k] {
				t.Fatalf("op %d find(%d)", i, k)
			}
		default:
			if b.FindFast(p, k) != model[k] {
				t.Fatalf("op %d findfast(%d)", i, k)
			}
		}
	}
}

func TestFindFastNeverTags(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	for k := uint64(1); k <= 50; k++ {
		b.Insert(p, k)
	}
	s0 := p.Stats()
	for k := uint64(1); k <= 50; k++ {
		b.FindFast(p, k)
	}
	d := p.Stats().Sub(s0)
	if d.CASes != 0 {
		t.Fatalf("FindFast performed %d CASes; the empty AffectSet must never tag", d.CASes)
	}
}

func TestFindFastCheaperThanFind(t *testing.T) {
	// Two identically shaped trees; the same Find workload through the
	// regular ROpt path and the empty-AffectSet path.
	hA := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1})
	bA := New(hA)
	pA := hA.Proc(0)
	hB := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1})
	bB := New(hB)
	pB := hB.Proc(0)
	for k := uint64(1); k <= 50; k++ {
		bA.Insert(pA, k)
		bB.Insert(pB, k)
	}
	sA := pA.Stats()
	sB := pB.Stats()
	for k := uint64(1); k <= 50; k++ {
		bA.Find(pA, k)
		bB.FindFast(pB, k)
	}
	dA := pA.Stats().Sub(sA)
	dB := pB.Stats().Sub(sB)
	if dB.Loads >= dA.Loads {
		t.Fatalf("FindFast loads (%d) not below Find loads (%d)", dB.Loads, dA.Loads)
	}
}

func TestFindFastCrashSweep(t *testing.T) {
	for offset := uint64(1); offset <= 40; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
		b := New(h)
		p := h.Proc(0)
		b.Insert(p, 10)

		b.Begin(p)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		var res bool
		crashed := !pmem.RunOp(func() { res = b.FindFast(p, 10) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
			res = b.Recover(p, OpFindFast, 10)
		}
		if !res {
			t.Fatalf("offset %d: FindFast(10) false", offset)
		}
		// And a miss:
		b.Begin(p)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed = !pmem.RunOp(func() { res = b.FindFast(p, 11) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
			res = b.Recover(p, OpFindFast, 11)
		}
		if res {
			t.Fatalf("offset %d: FindFast(11) true", offset)
		}
	}
}
