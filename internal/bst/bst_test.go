package bst

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

func newBST(t *testing.T, procs int) (*BST, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true})
	return New(h), h
}

func TestEmptyTree(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	if b.Find(p, 5) {
		t.Fatal("Find on empty tree")
	}
	if b.Delete(p, 5) {
		t.Fatal("Delete on empty tree")
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestInsertFindDelete(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	if !b.Insert(p, 10) || b.Insert(p, 10) {
		t.Fatal("insert semantics broken")
	}
	if !b.Find(p, 10) || b.Find(p, 11) {
		t.Fatal("find semantics broken")
	}
	if !b.Delete(p, 10) || b.Delete(p, 10) {
		t.Fatal("delete semantics broken")
	}
	if b.Find(p, 10) {
		t.Fatal("key present after delete")
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestInOrderKeys(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	ins := []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35}
	for _, k := range ins {
		if !b.Insert(p, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	got := b.Keys()
	want := append([]uint64(nil), ins...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestDeleteShapes(t *testing.T) {
	// Delete leaves in various structural positions, including ones whose
	// sibling is an internal node (subtree lift) and ones adjacent to the
	// ∞₁ sentinel.
	b, h := newBST(t, 1)
	p := h.Proc(0)
	for _, k := range []uint64{40, 20, 60, 10, 30, 50, 70} {
		b.Insert(p, k)
	}
	for _, k := range []uint64{40, 10, 70, 30, 50, 20, 60} {
		if !b.Delete(p, k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if msg := b.CheckInvariants(); msg != "" {
			t.Fatalf("after Delete(%d): %s", k, msg)
		}
	}
	if n := len(b.Keys()); n != 0 {
		t.Fatalf("%d keys left", n)
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	for round := 0; round < 5; round++ {
		for k := uint64(1); k <= 10; k++ {
			if !b.Insert(p, k) {
				t.Fatalf("round %d: Insert(%d)", round, k)
			}
		}
		for k := uint64(1); k <= 10; k++ {
			if !b.Delete(p, k) {
				t.Fatalf("round %d: Delete(%d)", round, k)
			}
		}
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestBoundaryUserKeys(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	if !b.Insert(p, 1) || !b.Insert(p, MaxUserKey) {
		t.Fatal("boundary inserts failed")
	}
	if !b.Find(p, 1) || !b.Find(p, MaxUserKey) {
		t.Fatal("boundary finds failed")
	}
	if !b.Delete(p, MaxUserKey) || !b.Delete(p, 1) {
		t.Fatal("boundary deletes failed")
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestModelEquivalenceSequential(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(48) + 1)
		switch rng.Intn(3) {
		case 0:
			if b.Insert(p, k) != !model[k] {
				t.Fatalf("op %d: Insert(%d) mismatch", i, k)
			}
			model[k] = true
		case 1:
			if b.Delete(p, k) != model[k] {
				t.Fatalf("op %d: Delete(%d) mismatch", i, k)
			}
			delete(model, k)
		default:
			if b.Find(p, k) != model[k] {
				t.Fatalf("op %d: Find(%d) mismatch", i, k)
			}
		}
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if len(b.Keys()) != len(model) {
		t.Fatal("final size mismatch")
	}
}

func TestQuickSetSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
		b := New(h)
		p := h.Proc(0)
		model := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o%24) + 1
			switch (o / 24) % 3 {
			case 0:
				if b.Insert(p, k) != !model[k] {
					return false
				}
				model[k] = true
			case 1:
				if b.Delete(p, k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if b.Find(p, k) != model[k] {
					return false
				}
			}
		}
		return b.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointRanges(t *testing.T) {
	const procs = 8
	b, h := newBST(t, procs)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			base := uint64(id*1000 + 1)
			for i := uint64(0); i < 150; i++ {
				if !b.Insert(p, base+i) {
					t.Errorf("Insert(%d) failed", base+i)
					return
				}
			}
			for i := uint64(0); i < 150; i += 2 {
				if !b.Delete(p, base+i) {
					t.Errorf("Delete(%d) failed", base+i)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if got := len(b.Keys()); got != procs*75 {
		t.Fatalf("size %d, want %d", got, procs*75)
	}
}

func TestConcurrentContended(t *testing.T) {
	const procs, perProc, keys = 8, 300, 8
	b, h := newBST(t, procs)
	type ev struct {
		key    uint64
		insert bool
	}
	results := make([][]ev, procs)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			rng := rand.New(rand.NewSource(int64(id + 31)))
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(keys) + 1)
				if rng.Intn(2) == 0 {
					if b.Insert(p, k) {
						results[id] = append(results[id], ev{k, true})
					}
				} else if b.Delete(p, k) {
					results[id] = append(results[id], ev{k, false})
				}
			}
		}(id)
	}
	wg.Wait()
	if msg := b.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	net := map[uint64]int{}
	for _, rs := range results {
		for _, e := range rs {
			if e.insert {
				net[e.key]++
			} else {
				net[e.key]--
			}
		}
	}
	present := map[uint64]bool{}
	for _, k := range b.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if net[k] != want {
			t.Fatalf("key %d: net %d vs present %v", k, net[k], present[k])
		}
	}
}

func TestRecoverWithoutCrash(t *testing.T) {
	b, h := newBST(t, 1)
	p := h.Proc(0)
	if !b.Insert(p, 9) {
		t.Fatal("insert failed")
	}
	if !b.Recover(p, OpInsert, 9) {
		t.Fatal("recover after completed insert != true")
	}
	if n := len(b.Keys()); n != 1 {
		t.Fatalf("recover re-executed insert: %d keys", n)
	}
}

func TestCrashEveryOffsetDuringInsertDelete(t *testing.T) {
	// Exhaustive small-offset crash sweep: crash at each access offset
	// during an Insert then a Delete; recovery must produce exactly-once
	// effects every time.
	for offset := uint64(1); offset <= 60; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
		b := New(h)
		p := h.Proc(0)
		b.Insert(p, 10)
		b.Insert(p, 20)

		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed := !pmem.RunOp(func() { b.Insert(p, 15) })
		if crashed {
			h.ResetAfterCrash()
			if !b.Recover(p, OpInsert, 15) {
				t.Fatalf("insert offset %d: recovery returned false", offset)
			}
		}
		if got := len(b.Keys()); got != 3 {
			t.Fatalf("insert offset %d: %d keys, want 3", offset, got)
		}

		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed = !pmem.RunOp(func() { b.Delete(p, 10) })
		if crashed {
			h.ResetAfterCrash()
			if !b.Recover(p, OpDelete, 10) {
				t.Fatalf("delete offset %d: recovery returned false", offset)
			}
		}
		if got := len(b.Keys()); got != 2 {
			t.Fatalf("delete offset %d: %d keys, want 2", offset, got)
		}
		if msg := b.CheckInvariants(); msg != "" {
			t.Fatalf("offset %d: %s", offset, msg)
		}
	}
}
