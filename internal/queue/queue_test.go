package queue

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/isb"
	"repro/internal/pmem"
)

func newQueue(t *testing.T, procs int) (*Queue, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true})
	return New(h), h
}

func TestEmptyDequeue(t *testing.T) {
	q, h := newQueue(t, 1)
	p := h.Proc(0)
	if _, ok := q.Dequeue(p); ok {
		t.Fatal("dequeue on empty queue succeeded")
	}
	if q.Len() != 0 {
		t.Fatal("empty queue has nonzero length")
	}
}

func TestFIFOOrder(t *testing.T) {
	q, h := newQueue(t, 1)
	p := h.Proc(0)
	for v := uint64(1); v <= 100; v++ {
		q.Enqueue(p, v)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for v := uint64(1); v <= 100; v++ {
		got, ok := q.Dequeue(p)
		if !ok || got != v {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
	if _, ok := q.Dequeue(p); ok {
		t.Fatal("queue should be drained")
	}
}

func TestInterleavedEnqDeq(t *testing.T) {
	q, h := newQueue(t, 1)
	p := h.Proc(0)
	q.Enqueue(p, 1)
	q.Enqueue(p, 2)
	if v, _ := q.Dequeue(p); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	q.Enqueue(p, 3)
	if v, _ := q.Dequeue(p); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
	if v, _ := q.Dequeue(p); v != 3 {
		t.Fatalf("got %d, want 3", v)
	}
	if msg := q.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestValuesSnapshot(t *testing.T) {
	q, h := newQueue(t, 1)
	p := h.Proc(0)
	for _, v := range []uint64{5, 6, 7} {
		q.Enqueue(p, v)
	}
	got := q.Values()
	if len(got) != 3 || got[0] != 5 || got[1] != 6 || got[2] != 7 {
		t.Fatalf("Values = %v", got)
	}
}

// TestConcurrentEnqueueDequeue: every enqueued value is dequeued exactly
// once across procs, and per-producer order is preserved (FIFO implies each
// producer's values are consumed in production order).
func TestConcurrentEnqueueDequeue(t *testing.T) {
	const procs = 4
	const perProc = 500
	q, h := newQueue(t, procs*2)
	var wg sync.WaitGroup
	consumed := make([][]uint64, procs)
	// Producers: proc i enqueues i*1e6 + j for j = 0.. (globally unique).
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			for j := 0; j < perProc; j++ {
				q.Enqueue(p, uint64(id)*1_000_000+uint64(j))
			}
		}(id)
	}
	// Consumers.
	var drained sync.WaitGroup
	var total sync.Map
	for id := 0; id < procs; id++ {
		drained.Add(1)
		go func(id int) {
			defer drained.Done()
			p := h.Proc(procs + id)
			var got []uint64
			for len(got) < perProc {
				if v, ok := q.Dequeue(p); ok {
					got = append(got, v)
					if _, dup := total.LoadOrStore(v, id); dup {
						t.Errorf("value %d dequeued twice", v)
						return
					}
				}
			}
			consumed[id] = got
		}(id)
	}
	wg.Wait()
	drained.Wait()
	if t.Failed() {
		return
	}
	// Per-producer order within each consumer's stream must be increasing.
	for cid, got := range consumed {
		lastSeen := map[uint64]uint64{}
		for _, v := range got {
			prod := v / 1_000_000
			seq := v % 1_000_000
			if last, ok := lastSeen[prod]; ok && seq < last {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d", cid, prod, seq, last)
			}
			lastSeen[prod] = seq
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	if msg := q.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestRecoverAfterCompletedOps(t *testing.T) {
	q, h := newQueue(t, 1)
	p := h.Proc(0)
	q.Enqueue(p, 42)
	if r := q.RecoverOp(p, OpEnq, 42); r != isb.RespTrue {
		t.Fatalf("Recover(enq) = %d", r)
	}
	if q.Len() != 1 {
		t.Fatalf("recover duplicated enqueue: len %d", q.Len())
	}
	v, ok := q.Dequeue(p)
	if !ok || v != 42 {
		t.Fatalf("Dequeue = (%d,%v)", v, ok)
	}
	if r := q.RecoverOp(p, OpDeq, 0); r != isb.EncodeValue(42) {
		t.Fatalf("Recover(deq) = %d, want EncodeValue(42)", r)
	}
	if q.Len() != 0 {
		t.Fatal("recover re-executed dequeue")
	}
}

func TestRecoverAfterCrashMidEnqueue(t *testing.T) {
	// Arm a crash a few accesses into an enqueue, then recover and verify
	// the value is present exactly once.
	for offset := uint64(1); offset <= 40; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
		q := New(h)
		p := h.Proc(0)
		q.Enqueue(p, 1)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed := !pmem.RunOp(func() { q.Enqueue(p, 2) })
		if crashed {
			h.ResetAfterCrash()
			if r := q.RecoverOp(p, OpEnq, 2); r != isb.RespTrue {
				t.Fatalf("offset %d: recover = %d", offset, r)
			}
		}
		vals := q.Values()
		if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
			t.Fatalf("offset %d (crashed=%v): values %v", offset, crashed, vals)
		}
		if msg := q.CheckInvariants(); msg != "" {
			t.Fatalf("offset %d: %s", offset, msg)
		}
	}
}

func TestRecoverAfterCrashMidDequeue(t *testing.T) {
	for offset := uint64(1); offset <= 40; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
		q := New(h)
		p := h.Proc(0)
		q.Enqueue(p, 7)
		q.Enqueue(p, 8)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		var v uint64
		var ok bool
		crashed := !pmem.RunOp(func() { v, ok = q.Dequeue(p) })
		if crashed {
			h.ResetAfterCrash()
			r := q.RecoverOp(p, OpDeq, 0)
			if r == isb.RespEmpty {
				t.Fatalf("offset %d: dequeue on 2-element queue recovered empty", offset)
			}
			v, ok = isb.DecodeValue(r), true
		}
		if !ok || v != 7 {
			t.Fatalf("offset %d: dequeue got (%d,%v), want (7,true)", offset, v, ok)
		}
		vals := q.Values()
		if len(vals) != 1 || vals[0] != 8 {
			t.Fatalf("offset %d: remaining %v, want [8]", offset, vals)
		}
	}
}

func TestTailHintCatchesUp(t *testing.T) {
	q, h := newQueue(t, 2)
	p := h.Proc(0)
	for v := uint64(1); v <= 50; v++ {
		q.Enqueue(p, v)
	}
	if msg := q.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	q, h := newQueue(t, 1)
	p := h.Proc(0)
	var model []uint64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		if rng.Intn(2) == 0 {
			v := uint64(i) + 1
			q.Enqueue(p, v)
			model = append(model, v)
		} else {
			v, ok := q.Dequeue(p)
			if len(model) == 0 {
				if ok {
					t.Fatalf("op %d: dequeue non-empty on empty model", i)
				}
			} else {
				if !ok || v != model[0] {
					t.Fatalf("op %d: dequeue (%d,%v), want (%d,true)", i, v, ok, model[0])
				}
				model = model[1:]
			}
		}
	}
	if q.Len() != len(model) {
		t.Fatalf("length mismatch: %d vs %d", q.Len(), len(model))
	}
}
