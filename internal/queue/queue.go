// Package queue implements the paper's detectably recoverable ISB queue:
// ISB-tracking (Algorithm 2) applied to the Michael-Scott lock-free queue.
//
// Enqueue tags the current last node and CASes its next field from Null to
// the new node; the Tail word is only a volatile hint, swung lazily, so it
// needs no recovery treatment. Dequeue tags the current dummy (the node the
// Head word points at) and swings Head to its successor, which becomes the
// new dummy; the old dummy retires and stays tagged forever. Head values
// never repeat (each dummy is a fresh node), and a node's next field goes
// Null → successor exactly once, so the update CASes are ABA-free without
// copying.
package queue

import (
	"repro/internal/isb"
	"repro/internal/pmem"
)

// Node field offsets (words); 4-word allocations.
const (
	nVal  = 0
	nNext = 1
	nInfo = 2

	nodeWords = 4
)

// Operation kinds for recovery and the crash harness.
const (
	OpEnq uint64 = 10
	OpDeq uint64 = 11
)

// Queue is a detectably recoverable FIFO queue of uint64 values.
type Queue struct {
	h          *pmem.Heap
	e          *isb.Engine
	head, tail pmem.Addr // anchor words (separate cache lines)

	gEnq, gDeq isb.Gather
}

// New builds an empty queue (one dummy node) on the heap with the paper's
// Algorithm 1/2 persistence placement.
func New(h *pmem.Heap) *Queue {
	return NewWithEngine(h, isb.NewEngine(h))
}

// NewWithEngine builds the queue on a caller-supplied engine.
func NewWithEngine(h *pmem.Heap, e *isb.Engine) *Queue {
	q := &Queue{h: h, e: e}
	p := h.Proc(0)
	anchors := p.Alloc(2 * pmem.WordsPerLine)
	q.head = anchors
	q.tail = anchors + pmem.WordsPerLine
	dummy := newNode(e, p, 0, 0)
	p.Store(q.head, uint64(dummy))
	p.Store(q.tail, uint64(dummy))
	p.PBarrierRange(dummy, nodeWords)
	p.PBarrier(q.head)
	p.PBarrier(q.tail)
	p.PSync()
	q.gEnq = q.gatherEnq
	q.gDeq = q.gatherDeq
	return q
}

// newNode draws a node from the engine's allocator (arena by default, the
// epoch reclaimer when the runtime enables reclamation).
func newNode(e *isb.Engine, p *pmem.Proc, val, info uint64) pmem.Addr {
	nd := e.Alloc(p, nodeWords)
	p.Store(nd+nVal, val)
	p.Store(nd+nNext, uint64(pmem.Null))
	p.Store(nd+nInfo, info)
	return nd
}

// gather maps an operation kind to its gather function.
func (q *Queue) gather(kind uint64) isb.Gather {
	if kind == OpEnq {
		return q.gEnq
	}
	return q.gDeq
}

// ApplyOp runs the operation described by (kind, arg) and returns its
// encoded response (isb.RespTrue for enqueue; isb.RespEmpty or an encoded
// value for dequeue): the uniform invocation surface every structure shares.
func (q *Queue) ApplyOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind == OpPeek {
		return q.ReadOp(p, kind, arg)
	}
	return q.e.RunOp(p, kind, arg, q.gather(kind))
}

// RecoverOp completes an interrupted operation after a crash and returns
// its encoded response.
func (q *Queue) RecoverOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind == OpPeek {
		// Reads leave no durable trace; recovery re-executes them.
		return q.ReadOp(p, kind, arg)
	}
	return q.e.Recover(p, kind, arg, q.gather(kind))
}

// Enqueue appends v to the queue.
func (q *Queue) Enqueue(p *pmem.Proc, v uint64) {
	q.ApplyOp(p, OpEnq, v)
}

// Dequeue removes and returns the oldest value; ok is false on empty.
func (q *Queue) Dequeue(p *pmem.Proc) (v uint64, ok bool) {
	r := q.ApplyOp(p, OpDeq, 0)
	if r == isb.RespEmpty {
		return 0, false
	}
	return isb.DecodeValue(r), true
}

// Begin is the system-side invocation step (persist CP_q := 0).
func (q *Queue) Begin(p *pmem.Proc) { q.e.BeginOp(p) }

// findLast chases next pointers from the Tail hint to the actual last node
// and lazily swings Tail forward (volatile hint; needs no persistence).
func (q *Queue) findLast(p *pmem.Proc) pmem.Addr {
	t := pmem.Addr(p.Load(q.tail))
	last := t
	for {
		next := pmem.Addr(p.Load(last + nNext))
		if next == pmem.Null {
			break
		}
		last = next
	}
	if last != t {
		p.CAS(q.tail, uint64(t), uint64(last))
	}
	return last
}

// gatherEnq: AffectSet = {last}; WriteSet = {last.next: Null → new node}.
func (q *Queue) gatherEnq(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	last := q.findLast(p)
	lastInfo := p.Load(last + nInfo)
	newnd := newNode(q.e, p, spec.ArgKey, isb.Tagged(info))
	spec.AddAffect(last+nInfo, lastInfo)
	spec.AddWrite(last+nNext, uint64(pmem.Null), uint64(newnd))
	spec.AddCleanup(last + nInfo)
	spec.AddCleanup(newnd + nInfo)
	spec.AddPersist(newnd, nodeWords)
	spec.SuccessResponse = isb.RespTrue
	return isb.Proceed
}

// gatherDeq: AffectSet = {dummy}; WriteSet = {Head: dummy → first}. On an
// empty queue the operation is read-only (validated by reading next before
// the info field; the linearization point is the Null next read).
func (q *Queue) gatherDeq(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	dummy := pmem.Addr(p.Load(q.head))
	first := pmem.Addr(p.Load(dummy + nNext))
	dummyInfo := p.Load(dummy + nInfo)
	if first == pmem.Null {
		spec.AddAffect(dummy+nInfo, dummyInfo)
		spec.AddCleanup(dummy + nInfo)
		spec.ReadOnly = true
		spec.Response = isb.RespEmpty
		return isb.Proceed
	}
	// Re-validate that dummy is still the dummy: if Head moved, the next
	// pointer we read may already be stale.
	if pmem.Addr(p.Load(q.head)) != dummy {
		return isb.Restart
	}
	// Swing the Tail hint off the dummy before committing to retire it:
	// Tail only ever moves forward along the chain (every CAS on it
	// expects a specific older node), so once it has left the dummy it can
	// never return — the reclaimer may then recycle the dummy without a
	// stale Tail pointing into freed memory.
	if pmem.Addr(p.Load(q.tail)) == dummy {
		p.CAS(q.tail, uint64(dummy), uint64(first))
	}
	spec.AddAffect(dummy+nInfo, dummyInfo) // dummy retires: stays tagged
	spec.AddWrite(q.head, uint64(dummy), uint64(first))
	spec.SuccessResponse = isb.EncodeValue(p.Load(first + nVal))
	return isb.Proceed
}

// MarkReachable reports every node on the Head chain to the post-crash
// reclamation scan, and repairs the Tail hint: Tail is volatile-only, so
// after a crash it can revert to an arbitrarily old persisted value whose
// node may since have been recycled. Re-homing it to the last node from
// Head (and persisting it, riding the scan's final psync) restores the
// "Tail points into the chain" invariant before any operation runs.
func (q *Queue) MarkReachable(p *pmem.Proc, mark func(pmem.Addr)) {
	curr := pmem.Addr(p.Load(q.head))
	last := curr
	for curr != pmem.Null {
		mark(curr)
		last = curr
		curr = pmem.Addr(p.Load(curr + nNext))
	}
	p.Store(q.tail, uint64(last))
	p.PWB(q.tail)
}

// Len counts queued values on the volatile image (test helper; requires
// quiescence).
func (q *Queue) Len() int {
	h := q.h
	n := 0
	curr := pmem.Addr(h.ReadVolatile(q.head))
	for {
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
		if curr == pmem.Null {
			return n
		}
		n++
	}
}

// Values snapshots queued values front-to-back (test helper; quiescence).
func (q *Queue) Values() []uint64 {
	h := q.h
	var out []uint64
	curr := pmem.Addr(h.ReadVolatile(q.head))
	for {
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
		if curr == pmem.Null {
			return out
		}
		out = append(out, h.ReadVolatile(curr+nVal))
	}
}

// CheckInvariants verifies structural sanity at quiescence: the Head dummy
// chain is Null-terminated, Tail points into the chain, and no live node
// after the dummy is tagged.
func (q *Queue) CheckInvariants() string {
	h := q.h
	dummy := pmem.Addr(h.ReadVolatile(q.head))
	if dummy == pmem.Null {
		return "Head is Null"
	}
	curr := dummy
	steps := 0
	for {
		next := pmem.Addr(h.ReadVolatile(curr + nNext))
		if next == pmem.Null {
			break
		}
		curr = next
		if isb.IsTagged(h.ReadVolatile(curr + nInfo)) {
			return "live queued node tagged at quiescence"
		}
		if steps++; steps > 1<<24 {
			return "cycle suspected"
		}
	}
	lastFromHead := curr
	// The Tail hint may lag (even behind the dummy, onto retired nodes),
	// but chasing next from it must reach the same last node.
	curr = pmem.Addr(h.ReadVolatile(q.tail))
	steps = 0
	for {
		next := pmem.Addr(h.ReadVolatile(curr + nNext))
		if next == pmem.Null {
			break
		}
		curr = next
		if steps++; steps > 1<<24 {
			return "cycle suspected from tail"
		}
	}
	if curr != lastFromHead {
		return "Tail hint does not lead to the last node"
	}
	return ""
}
