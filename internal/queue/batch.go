package queue

import (
	"repro/internal/isb"
	"repro/internal/pmem"
)

// OpPeek is the read-only front-of-queue probe, served exclusively by the
// zero-persist read path (it never installs an Info record).
const OpPeek uint64 = 12

// PeekFast returns the front value without dequeuing it: a volatile read
// of the dummy's successor with no Info record, no announcement, and no
// persistence instruction. Linearizes at the load of head.next — the MS
// queue's front is exactly the dummy's successor at that instant. Nothing
// durable records the read; a crashed peek is simply re-submitted.
func (q *Queue) PeekFast(p *pmem.Proc) (v uint64, ok bool) {
	dummy := pmem.Addr(p.Load(q.head))
	first := pmem.Addr(p.Load(dummy + nNext))
	q.e.NoteReadFast(p)
	if first == pmem.Null {
		return 0, false
	}
	return p.Load(first + nVal), true
}

// Peek is the typed convenience wrapper over the OpPeek fast path.
func (q *Queue) Peek(p *pmem.Proc) (v uint64, ok bool) {
	return q.PeekFast(p)
}

// ReadOp serves a read-only operation kind on the zero-persist path.
// Panics on a mutating kind.
func (q *Queue) ReadOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind != OpPeek {
		panic("queue: ReadOp on a mutating kind")
	}
	v, ok := q.PeekFast(p)
	if !ok {
		return isb.RespEmpty
	}
	return isb.EncodeValue(v)
}

// ApplyBatchOp runs one operation at position seq inside an open batch
// window; OpPeek takes the zero-persist path.
func (q *Queue) ApplyBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpPeek {
		return q.ReadOp(p, kind, arg)
	}
	return q.e.RunBatchOp(p, seq, kind, arg, q.gather(kind))
}

// RecoverBatchOp completes the in-flight operation at batch position seq
// after a crash (re-executing OpPeek, which had no durable effect).
func (q *Queue) RecoverBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpPeek {
		return q.ReadOp(p, kind, arg)
	}
	return q.e.RecoverSeq(p, kind, arg, uint64(seq), q.gather(kind))
}

// Engine exposes the queue's tracking engine (counter access, batching).
func (q *Queue) Engine() *isb.Engine { return q.e }
