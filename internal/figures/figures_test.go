package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps")
	}
	p := Params{Threads: []int{1}, Ops: 300, Seed: 1}
	for _, f := range All() {
		var buf bytes.Buffer
		f.Run(&buf, p)
		out := buf.String()
		if !strings.Contains(out, "ops/s") {
			t.Fatalf("figure %s produced no data rows:\n%s", f.ID, out)
		}
		if !strings.Contains(out, "Isb") && !strings.Contains(out, "ISB") {
			t.Fatalf("figure %s missing the ISB curve:\n%s", f.ID, out)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"1a", "1b", "1c", "1d", "1e", "1f", "3", "4", "5", "6", "7"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("figure %s missing", id)
		}
	}
	if _, ok := ByID("99"); ok {
		t.Fatal("phantom figure")
	}
	if len(IDs()) != 11 {
		t.Fatalf("expected 11 figures, got %d", len(IDs()))
	}
}
