// Package figures regenerates every figure of the paper's evaluation
// (Section 5 and Appendix B): it maps each figure id to the workload sweep
// that produces the corresponding curves and prints the series as rows.
// Absolute numbers depend on the simulation host; the shapes — who wins, by
// what factor, and where curves cross — are the reproduction target (see
// EXPERIMENTS.md).
package figures

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/harness"
	"repro/internal/pmem"
)

// Params tunes a regeneration run.
type Params struct {
	Threads []int // thread counts to sweep
	Ops     int   // operations per thread per data point
	Seed    uint64
}

// DefaultParams returns a sweep suitable for the simulation host.
func DefaultParams() Params {
	return Params{Threads: []int{1, 2, 4, 8}, Ops: 20000, Seed: 42}
}

// QuickParams returns a fast sweep for tests and testing.B benches.
func QuickParams() Params {
	return Params{Threads: []int{1, 2}, Ops: 1500, Seed: 42}
}

// Figure describes one reproducible figure.
type Figure struct {
	ID    string
	Title string
	Run   func(w io.Writer, p Params)
}

// listPanel sweeps all detectable list algorithms for one workload panel.
func listPanel(w io.Writer, p Params, title string, keyRange uint64, findPct int,
	model pmem.Model, algos []string) {
	fmt.Fprintf(w, "# %s (keys [1,%d], %d%% finds, %s)\n", title, keyRange, findPct, model)
	for _, algo := range algos {
		for _, th := range p.Threads {
			cfg := harness.Config{
				Algo: algo, Threads: th, KeyRange: keyRange, FindPct: findPct,
				OpsPerThread: p.Ops, Model: model, Seed: p.Seed,
			}
			if model == pmem.SharedCache {
				cfg.PWBLatency = pmem.DefaultPWBLatency
				cfg.PSyncLatency = pmem.DefaultPSyncLatency
			}
			fmt.Fprintln(w, harness.RunList(cfg).Row())
		}
	}
}

// queuePanel sweeps queue algorithms for one Figure 7 panel.
func queuePanel(w io.Writer, p Params, title string, model pmem.Model, algos []string) {
	fmt.Fprintf(w, "# %s (%s, enq/deq pairs)\n", title, model)
	prefill := 20000
	if p.Ops < 5000 {
		prefill = 2000
	}
	for _, algo := range algos {
		for _, th := range p.Threads {
			cfg := harness.Config{
				Algo: algo, Threads: th, OpsPerThread: p.Ops,
				Model: model, Seed: p.Seed, QueuePrefill: prefill,
			}
			if model == pmem.SharedCache {
				cfg.PWBLatency = pmem.DefaultPWBLatency
				cfg.PSyncLatency = pmem.DefaultPSyncLatency
			}
			fmt.Fprintln(w, harness.RunQueue(cfg).Row())
		}
	}
}

// All returns every figure, keyed in paper order.
func All() []Figure {
	fig := func(id, title string, run func(io.Writer, Params)) Figure {
		return Figure{ID: id, Title: title, Run: run}
	}
	return []Figure{
		fig("1a", "List throughput, shared cache, keys [1,500], read-intensive", func(w io.Writer, p Params) {
			listPanel(w, p, "Figure 1a: throughput", 500, 70, pmem.SharedCache, harness.ListAlgos)
		}),
		fig("1b", "pbarriers per operation, keys [1,500], read-intensive", func(w io.Writer, p Params) {
			listPanel(w, p, "Figure 1b: pbarriers/op", 500, 70, pmem.SharedCache, harness.ListAlgos)
		}),
		fig("1c", "Stand-alone flushes per operation, keys [1,500], read-intensive", func(w io.Writer, p Params) {
			listPanel(w, p, "Figure 1c: flushes/op", 500, 70, pmem.SharedCache, harness.ListAlgos)
		}),
		fig("1d", "List throughput, shared cache, keys [1,500], update-intensive", func(w io.Writer, p Params) {
			listPanel(w, p, "Figure 1d: throughput", 500, 30, pmem.SharedCache, harness.ListAlgos)
		}),
		fig("1e", "List throughput, shared cache, keys [1,1500], read-intensive", func(w io.Writer, p Params) {
			listPanel(w, p, "Figure 1e: throughput", 1500, 70, pmem.SharedCache, harness.ListAlgos)
		}),
		fig("1f", "List throughput, shared cache, keys [1,1500], update-intensive", func(w io.Writer, p Params) {
			listPanel(w, p, "Figure 1f: throughput", 1500, 30, pmem.SharedCache, harness.ListAlgos)
		}),
		fig("3", "List throughput, keys [1,1000] and [1,2000], both mixes", func(w io.Writer, p Params) {
			for _, kr := range []uint64{1000, 2000} {
				for _, fp := range []int{70, 30} {
					listPanel(w, p, "Figure 3 panel", kr, fp, pmem.SharedCache, harness.ListAlgos)
				}
			}
		}),
		fig("4", "List throughput, private cache model (zero persistence cost)", func(w io.Writer, p Params) {
			algos := append(append([]string{}, harness.ListAlgos...), harness.AlgoHarris)
			for _, kr := range []uint64{500, 1500} {
				for _, fp := range []int{70, 30} {
					listPanel(w, p, "Figure 4 panel", kr, fp, pmem.PrivateCache, algos)
				}
			}
		}),
		fig("5", "pbarriers and flushes per op, read-intensive, keys 1000/1500/2000", func(w io.Writer, p Params) {
			for _, kr := range []uint64{1000, 1500, 2000} {
				listPanel(w, p, "Figure 5 panel", kr, 70, pmem.SharedCache, harness.ListAlgos)
			}
		}),
		fig("6", "pbarriers and flushes per op, update-intensive, keys 1000/1500/2000", func(w io.Writer, p Params) {
			for _, kr := range []uint64{1000, 1500, 2000} {
				listPanel(w, p, "Figure 6 panel", kr, 30, pmem.SharedCache, harness.ListAlgos)
			}
		}),
		fig("7", "Queue throughput: shared cache; private cache; private + MS-Queue", func(w io.Writer, p Params) {
			queuePanel(w, p, "Figure 7 left", pmem.SharedCache, harness.QueueAlgos)
			queuePanel(w, p, "Figure 7 middle", pmem.PrivateCache, harness.QueueAlgos)
			withMS := append(append([]string{}, harness.QueueAlgos...), harness.QueueMS)
			queuePanel(w, p, "Figure 7 right", pmem.PrivateCache, withMS)
		}),
	}
}

// ByID returns the figure with the given id.
func ByID(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// IDs returns all figure ids in order.
func IDs() []string {
	var ids []string
	for _, f := range All() {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return ids
}
