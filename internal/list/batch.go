package list

import (
	"repro/internal/isb"
	"repro/internal/pmem"
)

// FindFast reports whether key is in the set via the zero-persist read
// path: a volatile traversal over the persistent nodes with no Info
// record, no announcement, and no persistence instruction of any kind.
//
// Linearization is the standard Harris-list argument: the traversal
// follows next pointers loaded one at a time, and the membership verdict
// is correct at the moment the deciding next pointer was loaded. Nothing
// durable records the read, so a crash simply loses it — the caller
// re-submits, which is safe because the read had no effect.
func (l *List) FindFast(p *pmem.Proc, key uint64) bool {
	curr := l.head
	for p.Load(curr+nKey) < key {
		curr = pmem.Addr(p.Load(curr + nNext))
	}
	l.e.NoteReadFast(p)
	return p.Load(curr+nKey) == key
}

// ReadOp serves a read-only operation kind on the zero-persist path; it is
// the uniform fast-read surface (the Apply/ApplyBatch wrappers route
// ReadOnly kinds here). Panics on a mutating kind.
func (l *List) ReadOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind != OpFind {
		panic("list: ReadOp on a mutating kind")
	}
	return isb.BoolResp(l.FindFast(p, arg))
}

// ApplyBatchOp runs one operation at position seq inside an open batch
// window (isb.Engine.BeginBatch). Read-only kinds take the zero-persist
// path; mutating kinds run through the engine's batch driver.
func (l *List) ApplyBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind {
		return l.ReadOp(p, kind, arg)
	}
	return l.e.RunBatchOp(p, seq, kind, arg, l.gather(kind))
}

// RecoverBatchOp completes the in-flight operation at batch position seq
// after a crash. Read-only kinds are re-executed (they had no durable
// effect and nothing later in the batch ran, so re-execution is safe);
// mutating kinds go through the engine's sequence-guarded recovery.
func (l *List) RecoverBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind {
		return l.ReadOp(p, kind, arg)
	}
	return l.e.RecoverSeq(p, kind, arg, uint64(seq), l.gather(kind))
}
