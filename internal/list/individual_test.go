package list

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

// Individual process failures (the paper's footnote 1): in the private
// cache model, a single process may crash and recover while the others keep
// running. These tests sweep the failure point across every access offset
// of an operation and also run concurrent survivors.

func TestIndividualCrashSweepPrivateModel(t *testing.T) {
	for offset := uint64(1); offset <= 60; offset++ {
		h := pmem.NewHeap(pmem.Config{
			Words: 1 << 20, Procs: 1, Tracked: true, Model: pmem.PrivateCache,
		})
		l := New(h)
		p := h.Proc(0)
		l.Insert(p, 10)
		l.Insert(p, 30)

		l.Begin(p) // system-side invocation step
		p.ScheduleSelfCrash(offset)
		crashed := !pmem.RunOp(func() { l.Insert(p, 20) })
		p.CancelSelfCrash()
		if crashed {
			// No heap reset: only this process's volatile state is lost;
			// in the private cache model shared memory is persistent.
			if !l.Recover(p, OpInsert, 20) {
				t.Fatalf("offset %d: insert recovery false", offset)
			}
		}
		if ks := l.Keys(); len(ks) != 3 || ks[1] != 20 {
			t.Fatalf("offset %d: keys %v", offset, ks)
		}

		l.Begin(p)
		p.ScheduleSelfCrash(offset)
		crashed = !pmem.RunOp(func() { l.Delete(p, 30) })
		p.CancelSelfCrash()
		if crashed {
			if !l.Recover(p, OpDelete, 30) {
				t.Fatalf("offset %d: delete recovery false", offset)
			}
		}
		if ks := l.Keys(); len(ks) != 2 || ks[0] != 10 || ks[1] != 20 {
			t.Fatalf("offset %d: keys %v after delete", offset, ks)
		}
		if msg := l.CheckInvariants(); msg != "" {
			t.Fatalf("offset %d: %s", offset, msg)
		}
	}
}

// TestIndividualCrashWithSurvivors: one process keeps failing and
// recovering while others operate concurrently; the failed process's tags
// never wedge the survivors (they help and move on), and every response
// stays consistent.
func TestIndividualCrashWithSurvivors(t *testing.T) {
	const survivors = 3
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 23, Procs: survivors + 1, Tracked: true, Model: pmem.PrivateCache,
	})
	l := New(h)
	var wg sync.WaitGroup

	// Survivors on disjoint ranges: all their ops must succeed.
	for id := 0; id < survivors; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			base := uint64(id*1000 + 1)
			for i := uint64(0); i < 150; i++ {
				if !l.Insert(p, base+i) {
					t.Errorf("survivor %d: Insert(%d) failed", id, base+i)
					return
				}
			}
			for i := uint64(0); i < 150; i += 2 {
				if !l.Delete(p, base+i) {
					t.Errorf("survivor %d: Delete(%d) failed", id, base+i)
					return
				}
			}
		}(id)
	}

	// The failing process: crashes every few accesses, always recovers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := h.Proc(survivors)
		base := uint64(900_001)
		for i := uint64(0); i < 100; i++ {
			key := base + i
			l.Begin(p)
			p.ScheduleSelfCrash(uint64(7 + i%23))
			ok := pmem.RunOp(func() { l.Insert(p, key) })
			// Crash during recovery too, but with a growing window so the
			// operation eventually completes (a process that crashes faster
			// than it can recover makes no progress by definition).
			for attempt := uint64(1); !ok; attempt++ {
				p.ScheduleSelfCrash(11 + attempt*29)
				ok = pmem.RunOp(func() { l.Recover(p, OpInsert, key) })
			}
			p.CancelSelfCrash()
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// The failing process inserted 100 distinct keys exactly once each.
	count := 0
	for _, k := range l.Keys() {
		if k >= 900_001 {
			count++
		}
	}
	if count != 100 {
		t.Fatalf("failing process's keys present: %d, want 100", count)
	}
}
