package list

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

func newList(t *testing.T, procs int) (*List, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true})
	return New(h), h
}

func TestEmptyList(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	if l.Find(p, 10) {
		t.Fatal("Find on empty list returned true")
	}
	if l.Delete(p, 10) {
		t.Fatal("Delete on empty list returned true")
	}
	if got := l.Keys(); len(got) != 0 {
		t.Fatalf("Keys = %v, want empty", got)
	}
}

func TestInsertFindDelete(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	if !l.Insert(p, 5) {
		t.Fatal("first Insert(5) failed")
	}
	if l.Insert(p, 5) {
		t.Fatal("duplicate Insert(5) succeeded")
	}
	if !l.Find(p, 5) {
		t.Fatal("Find(5) after insert failed")
	}
	if l.Find(p, 6) {
		t.Fatal("Find(6) true on {5}")
	}
	if !l.Delete(p, 5) {
		t.Fatal("Delete(5) failed")
	}
	if l.Delete(p, 5) {
		t.Fatal("second Delete(5) succeeded")
	}
	if l.Find(p, 5) {
		t.Fatal("Find(5) after delete")
	}
}

func TestSortedOrderMaintained(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	for _, k := range []uint64{30, 10, 20, 50, 40, 25} {
		if !l.Insert(p, k) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	want := []uint64{10, 20, 25, 30, 40, 50}
	got := l.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestInsertBetween(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	l.Insert(p, 10)
	l.Insert(p, 30)
	if !l.Insert(p, 20) {
		t.Fatal("Insert(20) between 10 and 30 failed")
	}
	for _, k := range []uint64{10, 20, 30} {
		if !l.Find(p, k) {
			t.Fatalf("Find(%d) failed", k)
		}
	}
}

func TestBoundaryKeys(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	if !l.Insert(p, 1) {
		t.Fatal("Insert(1) (min user key) failed")
	}
	if !l.Insert(p, MaxKey-1) {
		t.Fatal("Insert(MaxKey-1) failed")
	}
	if !l.Find(p, 1) || !l.Find(p, MaxKey-1) {
		t.Fatal("boundary keys not found")
	}
	if !l.Delete(p, MaxKey-1) || !l.Delete(p, 1) {
		t.Fatal("boundary keys not deleted")
	}
}

func TestDeleteHeadAndTailOfRun(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	for k := uint64(1); k <= 5; k++ {
		l.Insert(p, k)
	}
	if !l.Delete(p, 1) || !l.Delete(p, 5) || !l.Delete(p, 3) {
		t.Fatal("deletes failed")
	}
	got := l.Keys()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Keys = %v, want [2 4]", got)
	}
}

// TestModelEquivalenceSequential drives random operations against both the
// list and a model map and requires identical responses throughout.
func TestModelEquivalenceSequential(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(64) + 1)
		switch rng.Intn(3) {
		case 0:
			want := !model[k]
			if got := l.Insert(p, k); got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, k, got, want)
			}
			model[k] = true
		case 1:
			want := model[k]
			if got := l.Delete(p, k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		default:
			want := model[k]
			if got := l.Find(p, k); got != want {
				t.Fatalf("op %d: Find(%d) = %v, want %v", i, k, got, want)
			}
		}
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if got, want := len(l.Keys()), len(model); got != want {
		t.Fatalf("final size %d, want %d", got, want)
	}
}

// TestQuickSetSemantics is a property-based version of the model test.
func TestQuickSetSemantics(t *testing.T) {
	f := func(ops []uint16) bool {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
		l := New(h)
		p := h.Proc(0)
		model := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o%32) + 1
			switch (o / 32) % 3 {
			case 0:
				if l.Insert(p, k) != !model[k] {
					return false
				}
				model[k] = true
			case 1:
				if l.Delete(p, k) != model[k] {
					return false
				}
				delete(model, k)
			default:
				if l.Find(p, k) != model[k] {
					return false
				}
			}
		}
		return l.CheckInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointKeys: procs operate on disjoint key ranges; every
// operation must succeed as in isolation.
func TestConcurrentDisjointKeys(t *testing.T) {
	const procs = 8
	l, h := newList(t, procs)
	var wg sync.WaitGroup
	errs := make(chan string, procs)
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			base := uint64(id*1000 + 1)
			for i := uint64(0); i < 200; i++ {
				if !l.Insert(p, base+i) {
					errs <- "insert failed"
					return
				}
			}
			for i := uint64(0); i < 200; i += 2 {
				if !l.Delete(p, base+i) {
					errs <- "delete failed"
					return
				}
			}
			for i := uint64(0); i < 200; i++ {
				want := i%2 == 1
				if l.Find(p, base+i) != want {
					errs <- "find mismatch"
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if got := len(l.Keys()); got != procs*100 {
		t.Fatalf("final size %d, want %d", got, procs*100)
	}
}

// TestConcurrentContendedKeys hammers a tiny key range from many procs and
// then validates per-key response consistency: for each key, successful
// Inserts and Deletes must alternate (starting with Insert), and the final
// membership must match the parity.
func TestConcurrentContendedKeys(t *testing.T) {
	const procs, perProc, keys = 8, 400, 8
	l, h := newList(t, procs)
	type ev struct {
		key    uint64
		insert bool
	}
	results := make([][]ev, procs)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(keys) + 1)
				if rng.Intn(2) == 0 {
					if l.Insert(p, k) {
						results[id] = append(results[id], ev{k, true})
					}
				} else {
					if l.Delete(p, k) {
						results[id] = append(results[id], ev{k, false})
					}
				}
			}
		}(id)
	}
	wg.Wait()
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	// Net successful inserts - deletes per key must equal final membership.
	net := map[uint64]int{}
	for _, rs := range results {
		for _, e := range rs {
			if e.insert {
				net[e.key]++
			} else {
				net[e.key]--
			}
		}
	}
	final := map[uint64]bool{}
	for _, k := range l.Keys() {
		final[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if final[k] {
			want = 1
		}
		if net[k] != want {
			t.Fatalf("key %d: net successful inserts-deletes = %d, final presence %v", k, net[k], final[k])
		}
	}
}

// TestRecoverWithoutCrash: calling Recover when the last operation ran to
// completion must return that operation's response (strict recoverability:
// the response was persisted before the operation returned).
func TestRecoverWithoutCrash(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	if !l.Insert(p, 7) {
		t.Fatal("insert failed")
	}
	if got := l.Recover(p, OpInsert, 7); got != true {
		t.Fatal("Recover after completed Insert(7) != true")
	}
	// And it must not have re-executed the insert.
	if n := len(l.Keys()); n != 1 {
		t.Fatalf("recover re-executed insert: %d keys", n)
	}
	if !l.Delete(p, 7) {
		t.Fatal("delete failed")
	}
	if got := l.Recover(p, OpDelete, 7); got != true {
		t.Fatal("Recover after completed Delete(7) != true")
	}
	if n := len(l.Keys()); n != 0 {
		t.Fatalf("list should be empty, has %d keys", n)
	}
}

// TestRecoverDifferentOpReinvokes: if RD_q describes a different operation
// (the crash hit before the new op initialized its recovery data), Recover
// must re-invoke rather than return the stale response.
func TestRecoverDifferentOpReinvokes(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	l.Insert(p, 7) // leaves RD_q pointing at the Insert's Info
	// "Crash" immediately at the start of a Find(9): recovery must run the
	// Find itself, not report the Insert's response.
	if l.Recover(p, OpFind, 9) {
		t.Fatal("Recover(Find,9) returned stale true")
	}
	if !l.Recover(p, OpFind, 7) {
		t.Fatal("Recover(Find,7) should find the key")
	}
}

// TestResponsePersistedBeforeReturn (strict recoverability): after any
// completed operation, the Info result reachable from persisted RD_q holds
// the response.
func TestResponsePersistedBeforeReturn(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	ops := []struct {
		run  func() bool
		kind string
	}{
		{func() bool { return l.Insert(p, 3) }, "insert-new"},
		{func() bool { return l.Insert(p, 3) }, "insert-dup"},
		{func() bool { return l.Find(p, 3) }, "find-hit"},
		{func() bool { return l.Find(p, 4) }, "find-miss"},
		{func() bool { return l.Delete(p, 3) }, "delete-hit"},
		{func() bool { return l.Delete(p, 3) }, "delete-miss"},
	}
	for _, op := range ops {
		got := op.run()
		// Simulate a full crash and ask the persisted image.
		h.Crash()
		pmem.RunOp(func() { p.Load(l.head) })
		h.ResetAfterCrash()
		// RD_q survives (it was persisted); its result must match.
		var kind, key uint64
		switch op.kind {
		case "insert-new", "insert-dup":
			kind, key = OpInsert, 3
		case "find-hit":
			kind, key = OpFind, 3
		case "find-miss":
			kind, key = OpFind, 4
		default:
			kind, key = OpDelete, 3
		}
		if rec := l.Recover(p, kind, key); rec != got {
			t.Fatalf("%s: response %v but recovery says %v", op.kind, got, rec)
		}
	}
}

func TestStressManyKeysManyProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const procs = 4
	l, h := newList(t, procs)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			rng := rand.New(rand.NewSource(int64(100 + id)))
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(128) + 1)
				switch rng.Intn(3) {
				case 0:
					l.Insert(p, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Find(p, k)
				}
			}
		}(id)
	}
	wg.Wait()
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}
