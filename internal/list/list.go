// Package list implements the paper's detectably recoverable sorted linked
// list (Section 4, Algorithms 3–5), obtained by applying ROpt-ISB tracking
// (Algorithm 2) to a Harris-style list.
//
// The list is sorted by increasing key with sentinel head (key 0, acting as
// −∞) and tail (key MaxUint64, acting as +∞); user keys must lie strictly
// between. Each node carries an info field tagged by in-progress operations.
//
// ABA freedom on next fields comes from the paper's copying rule: a
// successful Insert replaces its successor node with a fresh copy, so a
// next field never holds the same node address twice. Nodes removed or
// replaced ("retired") keep their tag forever, which forces any operation
// whose traversal ended on a retired node to help and retry.
package list

import (
	"repro/internal/isb"
	"repro/internal/pmem"
)

// Node field offsets (words). Nodes are 4-word allocations.
const (
	nKey  = 0
	nNext = 1
	nInfo = 2

	nodeWords = 4
)

// Operation kinds, used by recovery and the crash harness.
const (
	OpInsert uint64 = 1
	OpDelete uint64 = 2
	OpFind   uint64 = 3
)

// MinKey and MaxKey bound user keys (exclusive): sentinels use the bounds.
const (
	MinKey uint64 = 0
	MaxKey uint64 = 1<<64 - 1
)

// List is a detectably recoverable sorted set of uint64 keys.
type List struct {
	h          *pmem.Heap
	e          *isb.Engine
	head, tail pmem.Addr

	gIns, gDel, gFind isb.Gather
}

// New builds an empty list on the heap, persisting the sentinels.
func New(h *pmem.Heap) *List {
	return build(h, isb.NewEngine(h))
}

// NewWithEngine builds the list on a caller-supplied engine. Several lists
// can share one engine — and with it one set of per-process RD_q/CP_q
// recovery registers — which is how the sharded hash map keeps a single
// recovery obligation per process across all of its buckets.
func NewWithEngine(h *pmem.Heap, e *isb.Engine) *List {
	return build(h, e)
}

// NewNoROpt builds the list with the Algorithm 2 read-only fast path
// disabled (plain Algorithm 1): even Finds install their Info and run
// Help. Exists for the ablation benchmarks quantifying ROpt.
func NewNoROpt(h *pmem.Heap) *List {
	return build(h, isb.NewEngineNoROpt(h))
}

func build(h *pmem.Heap, e *isb.Engine) *List {
	l := &List{h: h, e: e}
	p := h.Proc(0)
	l.tail = newNode(e, p, MaxKey, pmem.Null, 0)
	l.head = newNode(e, p, MinKey, l.tail, 0)
	p.PBarrierRange(l.tail, nodeWords)
	p.PBarrierRange(l.head, nodeWords)
	p.PSync()
	l.gIns = l.gatherInsert
	l.gDel = l.gatherDelete
	l.gFind = l.gatherFind
	return l
}

// newNode draws a node from the engine's allocator: the arena by default
// (the paper's GC assumption — retired nodes leak), or the epoch reclaimer
// when the runtime enables reclamation (retired nodes are recycled after a
// grace period; the copying rule's ABA guarantee then rests on the
// engine's cookie scheme instead of address freshness).
func newNode(e *isb.Engine, p *pmem.Proc, key uint64, next pmem.Addr, info uint64) pmem.Addr {
	nd := e.Alloc(p, nodeWords)
	p.Store(nd+nKey, key)
	p.Store(nd+nNext, uint64(next))
	p.Store(nd+nInfo, info)
	return nd
}

// gather maps an operation kind to its gather function.
func (l *List) gather(kind uint64) isb.Gather {
	switch kind {
	case OpInsert:
		return l.gIns
	case OpDelete:
		return l.gDel
	default:
		return l.gFind
	}
}

// ApplyOp runs the operation described by (kind, arg) and returns its
// encoded response: the uniform invocation surface every structure shares
// (crash harnesses and the repro Apply/RecoverOp API are built on it).
func (l *List) ApplyOp(p *pmem.Proc, kind, arg uint64) uint64 {
	return l.e.RunOp(p, kind, arg, l.gather(kind))
}

// RecoverOp is the uniform recovery surface: called after a crash with the
// same (kind, arg) the interrupted invocation had, it returns the
// operation's encoded response, completing it if necessary.
func (l *List) RecoverOp(p *pmem.Proc, kind, arg uint64) uint64 {
	return l.e.Recover(p, kind, arg, l.gather(kind))
}

// Insert adds key to the set; it returns false if the key was present.
func (l *List) Insert(p *pmem.Proc, key uint64) bool {
	return isb.Bool(l.ApplyOp(p, OpInsert, key))
}

// Delete removes key from the set; it returns false if the key was absent.
func (l *List) Delete(p *pmem.Proc, key uint64) bool {
	return isb.Bool(l.ApplyOp(p, OpDelete, key))
}

// Find reports whether key is in the set (read-only, ROpt fast path).
func (l *List) Find(p *pmem.Proc, key uint64) bool {
	return isb.Bool(l.ApplyOp(p, OpFind, key))
}

// Recover is the boolean-typed wrapper over RecoverOp.
func (l *List) Recover(p *pmem.Proc, op, key uint64) bool {
	return isb.Bool(l.RecoverOp(p, op, key))
}

// search returns pred/curr straddling key: the first node with
// curr.key >= key and its predecessor, plus their gathered info fields
// (each info field read on first access, per the paper).
func (l *List) search(p *pmem.Proc, key uint64) (pred, curr pmem.Addr, predInfo, currInfo uint64) {
	curr = l.head
	currInfo = p.Load(curr + nInfo)
	for p.Load(curr+nKey) < key {
		pred, predInfo = curr, currInfo
		curr = pmem.Addr(p.Load(curr + nNext))
		currInfo = p.Load(curr + nInfo)
	}
	return pred, curr, predInfo, currInfo
}

// gatherInsert builds the Insert AffectSet/WriteSet/NewSet (Algorithm 3).
func (l *List) gatherInsert(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	key := spec.ArgKey
	pred, curr, predInfo, currInfo := l.search(p, key)
	if p.Load(curr+nKey) == key {
		// Key present: the operation is read-only and behaves like Find.
		spec.AddAffect(curr+nInfo, currInfo)
		spec.AddCleanup(curr + nInfo)
		spec.ReadOnly = true
		spec.Response = isb.RespFalse
		return isb.Proceed
	}
	// Copy curr so pred.next never sees the same address twice (ABA).
	newcurr := newNode(l.e, p, p.Load(curr+nKey), pmem.Addr(p.Load(curr+nNext)), isb.Tagged(info))
	newnd := newNode(l.e, p, key, newcurr, isb.Tagged(info))
	spec.AddAffect(pred+nInfo, predInfo)
	spec.AddAffect(curr+nInfo, currInfo) // curr retires on success: not in cleanup
	spec.AddWrite(pred+nNext, uint64(curr), uint64(newnd))
	spec.AddCleanup(pred + nInfo)
	spec.AddCleanup(newnd + nInfo)
	spec.AddCleanup(newcurr + nInfo)
	spec.AddPersist(newnd, nodeWords)
	spec.AddPersist(newcurr, nodeWords)
	spec.SuccessResponse = isb.RespTrue
	return isb.Proceed
}

// gatherDelete builds the Delete sets (Algorithm 5).
func (l *List) gatherDelete(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	key := spec.ArgKey
	pred, curr, predInfo, currInfo := l.search(p, key)
	if p.Load(curr+nKey) != key {
		spec.AddAffect(curr+nInfo, currInfo)
		spec.AddCleanup(curr + nInfo)
		spec.ReadOnly = true
		spec.Response = isb.RespFalse
		return isb.Proceed
	}
	succ := p.Load(curr + nNext)
	spec.AddAffect(pred+nInfo, predInfo)
	spec.AddAffect(curr+nInfo, currInfo) // curr retires: stays tagged forever
	spec.AddWrite(pred+nNext, uint64(curr), succ)
	spec.AddCleanup(pred + nInfo)
	spec.SuccessResponse = isb.RespTrue
	return isb.Proceed
}

// gatherFind builds the read-only Find spec (Algorithm 3, ROpt).
func (l *List) gatherFind(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	key := spec.ArgKey
	_, curr, _, currInfo := l.search(p, key)
	spec.AddAffect(curr+nInfo, currInfo)
	spec.AddCleanup(curr + nInfo)
	spec.ReadOnly = true
	spec.Response = isb.BoolResp(p.Load(curr+nKey) == key)
	return isb.Proceed
}

// Contains is a non-recoverable read used by tests and verifiers: it walks
// the volatile image directly (no helping, no persistence).
func (l *List) Contains(key uint64) bool {
	h := l.h
	curr := l.head
	for {
		k := h.ReadVolatile(curr + nKey)
		if k >= key {
			return k == key
		}
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
	}
}

// Keys snapshots the current (volatile) key set, for verification. Callers
// must ensure quiescence. The walk ends at the +∞ key, not at a node
// address: a successful Insert before the tail retires the old tail
// sentinel and replaces it with a fresh copy.
func (l *List) Keys() []uint64 {
	var out []uint64
	h := l.h
	curr := pmem.Addr(h.ReadVolatile(l.head + nNext))
	for h.ReadVolatile(curr+nKey) != MaxKey {
		out = append(out, h.ReadVolatile(curr+nKey))
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
	}
	return out
}

// CheckInvariants walks the list and verifies structural invariants:
// strictly increasing keys, tail reachability, and untagged live nodes at
// quiescence. It returns a description of the first violation, or "".
func (l *List) CheckInvariants() string {
	h := l.h
	prev := h.ReadVolatile(l.head + nKey)
	curr := pmem.Addr(h.ReadVolatile(l.head + nNext))
	steps := 0
	for {
		if curr == pmem.Null {
			return "fell off the list before tail"
		}
		k := h.ReadVolatile(curr + nKey)
		if k <= prev {
			return "keys not strictly increasing"
		}
		if isb.IsTagged(h.ReadVolatile(curr + nInfo)) {
			return "live node tagged at quiescence"
		}
		if k == MaxKey {
			return ""
		}
		prev = k
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
		if steps++; steps > 1<<24 {
			return "cycle suspected"
		}
	}
}

// MarkReachable reports every node reachable from the list head to the
// post-crash reclamation scan. The walk uses p.Load so a crash can be
// injected mid-scan; the scan's transitive closure follows info-field
// records and their copies from the marked nodes.
func (l *List) MarkReachable(p *pmem.Proc, mark func(pmem.Addr)) {
	curr := l.head
	for {
		mark(curr)
		if p.Load(curr+nKey) == MaxKey {
			return
		}
		curr = pmem.Addr(p.Load(curr + nNext))
	}
}

// Engine exposes the ISB engine (for tests asserting RD/CP behaviour).
func (l *List) Engine() *isb.Engine { return l.e }

// Begin is the system-side invocation step (persist CP_q := 0). The crash
// harness calls it before invoking an operation; standalone callers need
// not, since every operation performs it on entry as well.
func (l *List) Begin(p *pmem.Proc) { l.e.BeginOp(p) }
