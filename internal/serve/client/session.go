package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// ErrSessionClosed is returned by calls on a Closed session.
var ErrSessionClosed = errors.New("client: session closed")

// SessionConfig parameterises a reconnecting Session.
type SessionConfig struct {
	// ClientID is this session's prefix in the request-ID space (same
	// contract as New: unique per server, fits in 32-IDBits bits).
	ClientID uint64
	// Dial opens a connection to the server; the session calls it for the
	// initial connect and for every redial.
	Dial func() (net.Conn, error)
	// RequestTimeout is the per-attempt reply deadline: a request
	// unanswered past it declares the connection suspect, tears it down,
	// and rides the redial+resubmit path (default 10s).
	RequestTimeout time.Duration
	// RetryDelay pauses before resubmitting after a RETRY reply (default
	// 200µs); ShedDelay after an OVERLOAD shed, which signals server-wide
	// saturation, so it should be much larger (default 3ms). Both are
	// jittered.
	RetryDelay time.Duration
	ShedDelay  time.Duration
	// BackoffBase / BackoffCap bound the capped exponential redial
	// backoff (defaults 500µs / 50ms); each step sleeps a jittered
	// duration in [b/2, b) for b = min(cap, base<<attempt).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DialAttempts is how many consecutive dial failures fail the session
	// (default 30).
	DialAttempts int
	// Seed fixes the jitter stream (default 1): identical schedules give
	// reproducible backoff sequences.
	Seed int64
}

func (cfg SessionConfig) withDefaults() SessionConfig {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 200 * time.Microsecond
	}
	if cfg.ShedDelay <= 0 {
		cfg.ShedDelay = 3 * time.Millisecond
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 500 * time.Microsecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 50 * time.Millisecond
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 30
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// SessionStats counts the hostile-network events a session absorbed.
type SessionStats struct {
	// Dials counts established connections (the first connect included);
	// Reconnects counts re-established ones (Dials - 1 while healthy).
	Dials      uint64 `json:"dials"`
	Reconnects uint64 `json:"reconnects"`
	// Resubmits counts unsettled requests rewritten after a reconnect
	// (the automatic leg of the exactly-once protocol); Retries and Sheds
	// count RETRY / OVERLOAD replies ridden out; Timeouts counts
	// per-request deadlines that expired and forced a teardown.
	Resubmits uint64 `json:"resubmits"`
	Retries   uint64 `json:"retries"`
	Sheds     uint64 `json:"sheds"`
	Timeouts  uint64 `json:"timeouts"`
}

// sessionCall is one in-flight request: its frame (rewritten verbatim on
// every resubmission — same request ID, which is what makes the protocol
// exactly-once) and the channel its replies arrive on.
type sessionCall struct {
	req serve.Request
	ch  chan serve.Reply
}

// Session is a reconnecting client: it dials (and redials, with capped
// jittered exponential backoff) through the configured Dial, enforces a
// per-request deadline, and after every reconnect automatically
// resubmits all unsettled request IDs — so a dropped connection, a torn
// frame, or a server reboot mid-call never loses or duplicates an
// operation: the server answers resurrected IDs from its exactly-once
// response table. Safe for concurrent use.
type Session struct {
	cfg  SessionConfig
	base uint64
	done chan struct{}

	wmu sync.Mutex // serializes frame writes on whatever conn is current

	mu         sync.Mutex
	nc         net.Conn // current conn; nil while disconnected
	gen        uint64   // bumps per established conn
	connecting bool
	err        error
	pending    map[uint64]*sessionCall
	seq        uint64
	ackSeq     uint64
	settled    map[uint64]struct{}
	stats      SessionStats
	rng        *rand.Rand
	closeOnce  sync.Once
}

// DialSession opens a session: it performs the initial connect (with the
// same backoff/attempt budget as a redial) before returning.
func DialSession(cfg SessionConfig) (*Session, error) {
	if cfg.Dial == nil {
		return nil, fmt.Errorf("client: SessionConfig.Dial is required")
	}
	if cfg.ClientID >= 1<<(32-IDBits) {
		return nil, fmt.Errorf("client: clientID %d does not fit in %d bits", cfg.ClientID, 32-IDBits)
	}
	cfg = cfg.withDefaults()
	s := &Session{
		cfg:     cfg,
		base:    cfg.ClientID << IDBits,
		done:    make(chan struct{}),
		pending: map[uint64]*sessionCall{},
		settled: map[uint64]struct{}{},
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	if err := s.connect(); err != nil {
		return nil, err
	}
	return s, nil
}

// Close tears the session down; in-flight calls return ErrSessionClosed.
func (s *Session) Close() {
	s.fail(nil)
}

// SessionStats returns a copy of the session's hostile-network counters.
func (s *Session) SessionStats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// fail terminates the session (err == nil means a clean Close).
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
		if s.err == nil {
			s.err = ErrSessionClosed
		}
	}
	nc := s.nc
	s.nc = nil
	s.mu.Unlock()
	s.closeOnce.Do(func() { close(s.done) })
	if nc != nil {
		nc.Close()
	}
}

func (s *Session) terminalErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return ErrSessionClosed
}

// backoff sleeps the jittered capped-exponential delay for redial attempt
// d (0-based).
func (s *Session) backoff(d int) {
	b := s.cfg.BackoffBase << uint(d)
	if b <= 0 || b > s.cfg.BackoffCap {
		b = s.cfg.BackoffCap
	}
	s.mu.Lock()
	j := b/2 + time.Duration(s.rng.Int63n(int64(b/2)+1))
	s.mu.Unlock()
	select {
	case <-time.After(j):
	case <-s.done:
	}
}

// sleepJitter pauses for a jittered delay in [d/2, d] before a
// resubmission (RETRY / SHED); synchronized resubmit storms from many
// clients are exactly what an overloaded server does not need.
func (s *Session) sleepJitter(d time.Duration) {
	s.mu.Lock()
	j := d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	s.mu.Unlock()
	select {
	case <-time.After(j):
	case <-s.done:
	}
}

// connect establishes a connection (initial or redial) and resubmits
// every unsettled request on it. At most one connect runs at a time (the
// connecting flag); callers route through dropConn.
func (s *Session) connect() error {
	for d := 0; ; d++ {
		select {
		case <-s.done:
			return s.terminalErr()
		default:
		}
		nc, err := s.cfg.Dial()
		if err != nil {
			if d+1 >= s.cfg.DialAttempts {
				err = fmt.Errorf("client: session dial failed after %d attempts: %w", d+1, err)
				s.fail(err)
				return err
			}
			s.backoff(d)
			continue
		}
		s.mu.Lock()
		if s.err != nil {
			s.mu.Unlock()
			nc.Close()
			return s.terminalErr()
		}
		s.nc = nc
		s.gen++
		gen := s.gen
		s.connecting = false
		s.stats.Dials++
		if gen > 1 {
			s.stats.Reconnects++
		}
		// Snapshot the unsettled calls in sequence order for resubmission.
		// New calls registered after this point observe s.nc != nil and
		// write themselves.
		calls := make([]*sessionCall, 0, len(s.pending))
		for _, c := range s.pending {
			calls = append(calls, c)
		}
		sort.Slice(calls, func(i, j int) bool { return calls[i].req.ReqID < calls[j].req.ReqID })
		s.stats.Resubmits += uint64(len(calls))
		s.mu.Unlock()
		go s.readLoop(nc, gen)
		for _, c := range calls {
			if !s.writeCall(nc, gen, c) {
				break // conn died mid-resubmit; the next connect retries
			}
		}
		return nil
	}
}

// dropConn declares generation gen's connection dead and starts a redial
// (no-op if a newer conn is already up or a connect is in flight).
func (s *Session) dropConn(gen uint64) {
	s.mu.Lock()
	if s.err != nil || gen != s.gen || s.connecting {
		s.mu.Unlock()
		return
	}
	nc := s.nc
	s.nc = nil
	s.connecting = true
	s.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	go s.connect()
}

// readLoop dispatches reply frames for one connection generation; any
// read error tears that generation down and triggers the redial.
func (s *Session) readLoop(nc net.Conn, gen uint64) {
	for {
		payload, err := serve.ReadFrame(nc)
		if err != nil {
			s.dropConn(gen)
			return
		}
		rep, err := serve.DecodeReply(payload)
		if err != nil {
			s.dropConn(gen)
			return
		}
		s.mu.Lock()
		if c := s.pending[rep.ReqID]; c != nil {
			select {
			case c.ch <- rep:
				if rep.Status != serve.StRetry && rep.Status != serve.StShed {
					// Unregister ATOMICALLY with delivering a terminal
					// reply: once the answer is in the call's hands, its
					// sequence may settle and ride out as an ack watermark
					// — at which point the server evicts the
					// response-table entry, and a resubmission of this ID
					// (from a reconnect snapshot that still saw it
					// pending) would RE-EXECUTE, not replay. A call out of
					// the map can never be snapshot for resubmission. The
					// delete rides the successful send: a reply dropped on
					// a full channel (duplicate from a reconnect race)
					// must keep the call resubmittable.
					delete(s.pending, rep.ReqID)
				}
			default: // duplicate replies (reconnect races) are dropped
			}
		}
		s.mu.Unlock()
	}
}

// writeCall writes one request frame — piggybacking the CURRENT ack
// watermark — on nc; false means the conn died (and the redial has been
// kicked).
func (s *Session) writeCall(nc net.Conn, gen uint64, c *sessionCall) bool {
	req := c.req
	s.mu.Lock()
	if s.pending[req.ReqID] != c {
		// The call settled between the resubmit snapshot and this write
		// (its terminal reply was delivered by the dying generation's
		// readLoop after connect() snapshotted pending). Resubmitting now
		// could carry an ack watermark >= the call's own sequence — the
		// server applies acks BEFORE the dedup lookup, so the frame would
		// evict its own response-table entry and RE-EXECUTE. The pending
		// check and the ack read share one critical section: while the
		// call is still pending its reply has not been delivered, so
		// ackSeq is provably below its sequence and the frame we build
		// here can never self-evict, however late it lands.
		s.mu.Unlock()
		return true
	}
	if s.ackSeq > 0 {
		req.Ack = s.base | s.ackSeq
	}
	s.mu.Unlock()
	s.wmu.Lock()
	err := serve.WriteFrame(nc, serve.EncodeRequest(req))
	s.wmu.Unlock()
	if err != nil {
		s.dropConn(gen)
		return false
	}
	return true
}

// submit writes c on the current connection if one is up; while a redial
// is in flight the pending registration is enough — the connect pass
// resubmits everything.
func (s *Session) submit(c *sessionCall) {
	s.mu.Lock()
	nc, gen := s.nc, s.gen
	s.mu.Unlock()
	if nc != nil {
		s.writeCall(nc, gen, c)
	}
}

// NextID mints a fresh request ID (same contract and overflow guard as
// Client.NextID).
func (s *Session) NextID() uint64 {
	s.mu.Lock()
	s.seq++
	if s.seq >= 1<<IDBits {
		s.mu.Unlock()
		panic("client: request-ID sequence exhausted (1<<IDBits requests on one session)")
	}
	id := s.base | s.seq
	s.mu.Unlock()
	return id
}

// settle marks reqID's reply as delivered and advances the contiguous
// acknowledgement watermark (own-minted IDs only; see Client.settle).
func (s *Session) settle(reqID uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reqID>>IDBits != s.base>>IDBits {
		return
	}
	seq := reqID & serve.MaxSeq
	if seq <= s.ackSeq {
		return
	}
	s.settled[seq] = struct{}{}
	for {
		if _, ok := s.settled[s.ackSeq+1]; !ok {
			return
		}
		s.ackSeq++
		delete(s.settled, s.ackSeq)
	}
}

func (s *Session) bump(f func(*SessionStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// doReq runs one request to completion: register, write, then ride out
// RETRY backpressure, OVERLOAD sheds, connection drops (redial +
// automatic resubmission happen underneath) and per-request deadlines,
// always under the SAME request ID.
func (s *Session) doReq(req serve.Request) (serve.Reply, error) {
	c := &sessionCall{req: req, ch: make(chan serve.Reply, 1)}
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return serve.Reply{}, err
	}
	if _, dup := s.pending[req.ReqID]; dup {
		s.mu.Unlock()
		return serve.Reply{}, fmt.Errorf("client: request ID %d is already in flight on this session", req.ReqID)
	}
	s.pending[req.ReqID] = c
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, req.ReqID)
		s.mu.Unlock()
	}()

	s.submit(c)
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	for {
		select {
		case rep := <-c.ch:
			switch rep.Status {
			case serve.StRetry:
				s.bump(func(st *SessionStats) { st.Retries++ })
				s.sleepJitter(s.cfg.RetryDelay)
				s.submit(c)
			case serve.StShed:
				s.bump(func(st *SessionStats) { st.Sheds++ })
				s.sleepJitter(s.cfg.ShedDelay)
				s.submit(c)
			case serve.StOK:
				s.settle(req.ReqID)
				return rep, nil
			default:
				// Terminal rejection: settled too, so the ack watermark
				// cannot stall on the gap (the server recorded nothing).
				s.settle(req.ReqID)
				return rep, fmt.Errorf("client: server rejected request %d (status %d)", req.ReqID, rep.Status)
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(s.cfg.RequestTimeout)
		case <-timer.C:
			// Reply deadline expired: the connection is suspect (slow peer,
			// black hole, lost reply). Tear it down; the redial resubmits
			// every pending request, this one included.
			s.bump(func(st *SessionStats) { st.Timeouts++ })
			s.mu.Lock()
			gen := s.gen
			s.mu.Unlock()
			s.dropConn(gen)
			timer.Reset(s.cfg.RequestTimeout)
		case <-s.done:
			return serve.Reply{}, s.terminalErr()
		}
	}
}

// DoWithID runs one request to completion under a caller-chosen request
// ID (see Client.DoWithID; resubmitting an answered ID replays its
// recorded answer).
func (s *Session) DoWithID(op byte, reqID, key uint64) (serve.Reply, error) {
	return s.doReq(serve.Request{Op: op, ReqID: reqID, Key: key})
}

// Do runs one request under a fresh request ID.
func (s *Session) Do(op byte, key uint64) (serve.Reply, error) {
	return s.DoWithID(op, s.NextID(), key)
}

// Put inserts key; reports whether it was newly inserted.
func (s *Session) Put(key uint64) (bool, error) {
	rep, err := s.Do(serve.OpPut, key)
	return rep.Val != 0, err
}

// Del deletes key; reports whether it was present.
func (s *Session) Del(key uint64) (bool, error) {
	rep, err := s.Do(serve.OpDel, key)
	return rep.Val != 0, err
}

// Get reports membership of key.
func (s *Session) Get(key uint64) (bool, error) {
	rep, err := s.Do(serve.OpGet, key)
	return rep.Val != 0, err
}

// MoveWithID atomically moves membership from src to dst under a
// caller-chosen request ID (see Client.MoveWithID).
func (s *Session) MoveWithID(reqID, src, dst uint64) (deleted, inserted bool, err error) {
	rep, err := s.doReq(serve.Request{Op: serve.OpMove, ReqID: reqID, Key: src, Key2: dst})
	return rep.Val&1 != 0, rep.Val&2 != 0, err
}

// Move runs MoveWithID under a fresh request ID.
func (s *Session) Move(src, dst uint64) (deleted, inserted bool, err error) {
	return s.MoveWithID(s.NextID(), src, dst)
}

// Stats fetches the server's stats snapshot as raw JSON.
func (s *Session) Stats() ([]byte, error) {
	rep, err := s.DoWithID(serve.OpStats, s.NextID(), 0)
	if err != nil {
		return nil, err
	}
	return rep.Body, nil
}
