package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/chaos"
)

// startSessionServer builds an in-process server for session tests.
func startSessionServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.MemListener) {
	t.Helper()
	s := serve.New(cfg)
	ln := serve.NewMemListener()
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln
}

// TestSessionSurvivesConnectionKills drives a workload through a dialer
// whose every connection is killed mid-stream by a seeded chaos schedule:
// the session must redial, resubmit all unsettled IDs, and complete the
// whole workload exactly-once — every PUT of a distinct key reports
// "newly inserted", which a duplicated execution would falsify.
func TestSessionSurvivesConnectionKills(t *testing.T) {
	srv, ln := startSessionServer(t, serve.Config{Procs: 2, Batch: 4, HeapWords: 1 << 18})
	sched := chaos.NewSchedule(chaos.ScheduleConfig{Seed: 11, KillRate: 8}) // mean kill at 128 bytes (~3 frames)
	s, err := DialSession(SessionConfig{
		ClientID: 1,
		Dial: func() (net.Conn, error) {
			nc, err := ln.Dial()
			if err != nil {
				return nil, err
			}
			return sched.Wrap(nc), nil
		},
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial session: %v", err)
	}
	defer s.Close()

	const n = 64
	for k := uint64(1); k <= n; k++ {
		ins, err := s.Put(k)
		if err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
		if !ins {
			t.Fatalf("put %d reported already-present: duplicate execution", k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		ok, err := s.Get(k)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !ok {
			t.Fatalf("get %d = absent after put", k)
		}
	}

	st := s.SessionStats()
	if st.Reconnects == 0 || st.Resubmits == 0 {
		t.Fatalf("hostile dialer produced no reconnects/resubmits: %+v", st)
	}
	if st.Dials != st.Reconnects+1 {
		t.Fatalf("dials %d != reconnects %d + 1", st.Dials, st.Reconnects)
	}
	// The server executed each distinct ID exactly once: its store holds
	// exactly the n keys, and resubmitted IDs were deduped, not re-run.
	snap := srv.Snapshot()
	if snap.Disconnects == 0 {
		t.Fatalf("server saw no disconnects under a killing schedule: %+v", snap)
	}
}

// TestSessionDialExhaustionFailsSession pins the redial budget: a dialer
// that never succeeds must fail DialSession after DialAttempts tries, not
// spin forever.
func TestSessionDialExhaustionFailsSession(t *testing.T) {
	dials := 0
	_, err := DialSession(SessionConfig{
		ClientID:     1,
		Dial:         func() (net.Conn, error) { dials++; return nil, errors.New("refused") },
		DialAttempts: 5,
		BackoffBase:  time.Microsecond,
		BackoffCap:   10 * time.Microsecond,
	})
	if err == nil {
		t.Fatal("DialSession succeeded with a failing dialer")
	}
	if dials != 5 {
		t.Fatalf("dialer called %d times, want 5", dials)
	}
}

// TestSessionDeadlineForcesRedial pins the per-request deadline: the
// first connection is a black hole (reads frames, never replies), so the
// request must time out, tear the connection down, and complete after the
// redial lands on the real server.
func TestSessionDeadlineForcesRedial(t *testing.T) {
	_, ln := startSessionServer(t, serve.Config{Procs: 1, Batch: 4, HeapWords: 1 << 18})
	var dials atomic.Int64
	s, err := DialSession(SessionConfig{
		ClientID: 2,
		Dial: func() (net.Conn, error) {
			if dials.Add(1) == 1 {
				a, b := net.Pipe() // black hole: drain writes, never answer
				go func() {
					buf := make([]byte, 1024)
					for {
						if _, err := b.Read(buf); err != nil {
							return
						}
					}
				}()
				return a, nil
			}
			return ln.Dial()
		},
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial session: %v", err)
	}
	defer s.Close()

	ins, err := s.Put(42)
	if err != nil || !ins {
		t.Fatalf("put through black hole = %v, %v; want fresh insert", ins, err)
	}
	st := s.SessionStats()
	if st.Timeouts == 0 {
		t.Fatalf("black-hole conn produced no request timeout: %+v", st)
	}
	if st.Reconnects == 0 || st.Resubmits == 0 {
		t.Fatalf("deadline did not force a redial+resubmit: %+v", st)
	}
}

// TestSessionShedBackoff pins the OVERLOAD leg of the session protocol: a
// gated server (workers parked) with a low shed watermark bounces the
// overflow with StShed, and the session rides it out — same request ID —
// once the gate opens.
func TestSessionShedBackoff(t *testing.T) {
	srv, ln := startSessionServer(t, serve.Config{
		Procs: 1, Batch: 4, QueueDepth: 4, HeapWords: 1 << 18,
		Gated: true, ShedWatermark: 0.5,
	})
	s, err := DialSession(SessionConfig{
		ClientID:       3,
		Dial:           func() (net.Conn, error) { return ln.Dial() },
		RequestTimeout: 5 * time.Second,
		ShedDelay:      200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("dial session: %v", err)
	}
	defer s.Close()

	// Fill past the watermark: with one conn and QueueDepth 4, the third
	// enqueue attempt sheds (totalQueued 2 >= 0.5*4). Pipelined via
	// goroutines; all must eventually succeed after Release.
	const n = 6
	done := make(chan error, n)
	for k := uint64(1); k <= n; k++ {
		k := k
		go func() {
			ins, err := s.Put(100 + k)
			if err == nil && !ins {
				err = errors.New("duplicate execution")
			}
			done <- err
		}()
	}
	// Wait until the server has actually shed at least once, then open
	// the gate.
	deadline := time.After(5 * time.Second)
	for srv.Snapshot().Sheds == 0 {
		select {
		case <-deadline:
			t.Fatal("server never shed past the watermark")
		case <-time.After(time.Millisecond):
		}
	}
	srv.Release()
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if st := s.SessionStats(); st.Sheds == 0 {
		t.Fatalf("session recorded no sheds: %+v", st)
	}
}

// TestSessionWriteCallSkipsSettledCall pins the snapshot-before-delivery
// leg of the exactly-once protocol: connect() snapshots pending for
// resubmission, and if the dying generation's readLoop delivers a call's
// terminal reply after the snapshot but before the resubmit write, the
// call has settled — its sequence may already ride out as an ack
// watermark, which the server applies BEFORE dedup, so writing the frame
// would evict its own response-table entry and re-execute. writeCall must
// observe the call gone from pending and skip the write.
func TestSessionWriteCallSkipsSettledCall(t *testing.T) {
	cli, peer := net.Pipe()
	defer cli.Close()
	defer peer.Close()
	s := &Session{
		cfg:     SessionConfig{}.withDefaults(),
		done:    make(chan struct{}),
		pending: map[uint64]*sessionCall{},
		settled: map[uint64]struct{}{},
	}
	s.nc, s.gen = cli, 1
	c := &sessionCall{req: serve.Request{Op: serve.OpPut, ReqID: s.base | 1, Key: 7}, ch: make(chan serve.Reply, 1)}
	// The call is NOT registered in s.pending — exactly the state after
	// readLoop delivered its terminal reply (which deletes it atomically)
	// between the connect() snapshot and this resubmit write — and it has
	// settled, so the ack watermark now covers its own sequence.
	s.settle(c.req.ReqID)

	// net.Pipe is unbuffered and nothing reads peer: a (buggy) write
	// blocks forever, a (correct) skip returns immediately.
	res := make(chan bool, 1)
	go func() { res <- s.writeCall(cli, 1, c) }()
	select {
	case ok := <-res:
		if !ok {
			t.Fatal("writeCall reported a dead conn for a skipped call")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writeCall resubmitted a settled call: its frame carries ack >= its own seq and would re-execute on the server")
	}

	// Positive control: the same call registered in pending IS written.
	s.pending[c.req.ReqID] = c
	drained := make(chan serve.Request, 1)
	go func() {
		payload, err := serve.ReadFrame(peer)
		if err != nil {
			return
		}
		req, err := serve.DecodeRequest(payload)
		if err != nil {
			return
		}
		drained <- req
	}()
	go s.writeCall(cli, 1, c)
	select {
	case req := <-drained:
		if req.ReqID != c.req.ReqID {
			t.Fatalf("resubmitted frame carries ReqID %d, want %d", req.ReqID, c.req.ReqID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writeCall skipped a call that is still pending")
	}
}
