// Package client is the wire client for the serve layer: it frames
// requests, matches replies to request IDs (so calls can be pipelined on
// one connection), and drives the RETRY/resubmit protocol — always
// resubmitting with the SAME request ID, which is what makes a resubmit
// after backpressure or a server crash exactly-once.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/serve"
)

// IDBits is how many low bits of the request-ID space index a client's own
// sequence numbers; the bits above carry the client ID, keeping request
// IDs globally unique across connections (the exactly-once table keys on
// them). It aliases the wire-contract split (serve.SeqBits) because the
// acknowledgement watermark names per-client sequence ranges.
const IDBits = serve.SeqBits

// Client is one connection's client. Safe for concurrent use.
type Client struct {
	nc  net.Conn
	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan serve.Reply
	err     error
	seq     uint64
	base    uint64
	// ackSeq is the highest CONTIGUOUSLY settled sequence number: every
	// request up to it has a terminal reply in the caller's hands and will
	// never be resubmitted, so its table entry is evictable. settled holds
	// out-of-order completions above the watermark until the gap closes.
	ackSeq  uint64
	settled map[uint64]struct{}

	// RetryDelay is the pause before resubmitting after a RETRY reply
	// (default 200µs); ShedDelay is the pause after an OVERLOAD shed,
	// which signals server-wide saturation rather than a per-connection
	// bounce, so it defaults much larger (3ms).
	RetryDelay time.Duration
	ShedDelay  time.Duration
}

// New wraps an established connection. clientID must be unique among
// clients sharing a server and fit in 32-IDBits bits (the bits of the
// request-ID space above the per-client sequence); an oversized ID would
// bleed into other clients' ID ranges — and the server's exactly-once
// table would then serve one client another's cached answers — so New
// panics instead.
func New(nc net.Conn, clientID uint64) *Client {
	if clientID >= 1<<(32-IDBits) {
		panic(fmt.Sprintf("client: clientID %d does not fit in %d bits", clientID, 32-IDBits))
	}
	c := &Client{
		nc:         nc,
		pending:    map[uint64]chan serve.Reply{},
		settled:    map[uint64]struct{}{},
		base:       clientID << IDBits,
		RetryDelay: 200 * time.Microsecond,
		ShedDelay:  3 * time.Millisecond,
	}
	go c.readLoop()
	return c
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() { c.nc.Close() }

// readLoop dispatches reply frames to their waiting calls.
func (c *Client) readLoop() {
	for {
		payload, err := serve.ReadFrame(c.nc)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		rep, err := serve.DecodeReply(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[rep.ReqID]
		delete(c.pending, rep.ReqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- rep
		}
	}
}

func (c *Client) fail(err error) {
	c.nc.Close()
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// NextID mints a fresh request ID for this client. The sequence space is
// 1<<IDBits IDs per client; exhausting it panics rather than letting the
// sequence carry into the clientID bits, where a wrapped ID would collide
// with another client's and the server's exactly-once table would answer
// it with that request's cached result.
func (c *Client) NextID() uint64 {
	c.mu.Lock()
	c.seq++
	if c.seq >= 1<<IDBits {
		c.mu.Unlock()
		panic("client: request-ID sequence exhausted (1<<IDBits requests on one client)")
	}
	id := c.base | c.seq
	c.mu.Unlock()
	return id
}

// settle marks reqID's reply as delivered to the caller and advances the
// contiguous acknowledgement watermark. Only IDs minted from this
// client's own sequence space count — caller-chosen foreign IDs are not
// ours to acknowledge.
func (c *Client) settle(reqID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if reqID>>IDBits != c.base>>IDBits {
		return
	}
	seq := reqID & serve.MaxSeq
	if seq <= c.ackSeq {
		return
	}
	c.settled[seq] = struct{}{}
	for {
		if _, ok := c.settled[c.ackSeq+1]; !ok {
			return
		}
		c.ackSeq++
		delete(c.settled, c.ackSeq)
	}
}

// sendReq writes one request frame, piggybacking the current
// acknowledgement watermark, and returns the channel its reply will
// arrive on.
func (c *Client) sendReq(req serve.Request) (<-chan serve.Reply, error) {
	ch := make(chan serve.Reply, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	if c.ackSeq > 0 {
		req.Ack = c.base | c.ackSeq
	}
	c.pending[req.ReqID] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	err := serve.WriteFrame(c.nc, serve.EncodeRequest(req))
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ReqID)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Send writes one request frame and returns the channel its reply will
// arrive on. Callers pipelining must eventually receive from it; a closed
// channel means the connection died.
func (c *Client) Send(op byte, reqID, key uint64) (<-chan serve.Reply, error) {
	return c.sendReq(serve.Request{Op: op, ReqID: reqID, Key: key})
}

// doReq runs one request to completion, resubmitting (same ID) through
// RETRY backpressure, and settles the ID's acknowledgement on a terminal
// reply.
func (c *Client) doReq(req serve.Request) (serve.Reply, error) {
	for {
		ch, err := c.sendReq(req)
		if err != nil {
			return serve.Reply{}, err
		}
		rep, ok := <-ch
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return serve.Reply{}, err
		}
		switch rep.Status {
		case serve.StRetry:
			time.Sleep(c.RetryDelay)
		case serve.StShed:
			time.Sleep(c.ShedDelay)
		case serve.StOK:
			c.settle(req.ReqID)
			return rep, nil
		default:
			// Terminal rejection: settled too — the server recorded
			// nothing, and the watermark must not stall on the gap.
			c.settle(req.ReqID)
			return rep, fmt.Errorf("client: server rejected request %d (status %d)", req.ReqID, rep.Status)
		}
	}
}

// DoWithID runs one request to completion under a caller-chosen request
// ID, resubmitting (same ID) through RETRY backpressure. The reply's Val
// is the operation's boolean result; resubmitting an already-answered ID
// returns its recorded answer without re-executing.
func (c *Client) DoWithID(op byte, reqID, key uint64) (serve.Reply, error) {
	return c.doReq(serve.Request{Op: op, ReqID: reqID, Key: key})
}

// Do runs one request under a fresh request ID.
func (c *Client) Do(op byte, key uint64) (serve.Reply, error) {
	return c.DoWithID(op, c.NextID(), key)
}

// Put inserts key; reports whether it was newly inserted.
func (c *Client) Put(key uint64) (bool, error) {
	rep, err := c.Do(serve.OpPut, key)
	return rep.Val != 0, err
}

// Del deletes key; reports whether it was present.
func (c *Client) Del(key uint64) (bool, error) {
	rep, err := c.Do(serve.OpDel, key)
	return rep.Val != 0, err
}

// Get reports membership of key.
func (c *Client) Get(key uint64) (bool, error) {
	rep, err := c.Do(serve.OpGet, key)
	return rep.Val != 0, err
}

// MoveWithID atomically moves membership from src to dst under a
// caller-chosen request ID: one two-leg transaction with a single durable
// commit point on the server. It reports whether src was present
// (deleted) and whether dst was newly inserted; a resubmitted ID replays
// the recorded pair without re-executing.
func (c *Client) MoveWithID(reqID, src, dst uint64) (deleted, inserted bool, err error) {
	rep, err := c.doReq(serve.Request{Op: serve.OpMove, ReqID: reqID, Key: src, Key2: dst})
	return rep.Val&1 != 0, rep.Val&2 != 0, err
}

// Move runs MoveWithID under a fresh request ID.
func (c *Client) Move(src, dst uint64) (deleted, inserted bool, err error) {
	return c.MoveWithID(c.NextID(), src, dst)
}

// Stats fetches the server's stats snapshot as raw JSON.
func (c *Client) Stats() ([]byte, error) {
	rep, err := c.DoWithID(serve.OpStats, c.NextID(), 0)
	if err != nil {
		return nil, err
	}
	return rep.Body, nil
}
