package client

import (
	"net"
	"testing"

	"repro/internal/serve"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestNewRejectsOversizedClientID pins the clientID width check: an ID
// that does not fit above the sequence bits would alias another client's
// request-ID range, so New must refuse it outright.
func TestNewRejectsOversizedClientID(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := New(a, 1<<(32-IDBits)-1) // largest valid ID is fine
	c.Close()
	mustPanic(t, "New(oversized clientID)", func() { New(b, 1<<(32-IDBits)) })
}

// TestNextIDGuardsSequenceOverflow pins the sequence-exhaustion guard:
// minting more than 1<<IDBits IDs must panic rather than bleed the
// sequence into the clientID bits (where it would collide with another
// client's IDs and the server's exactly-once table would cross-serve
// cached answers).
func TestNextIDGuardsSequenceOverflow(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	c := New(a, 3)

	c.mu.Lock()
	c.seq = 1<<IDBits - 2
	c.mu.Unlock()

	// The last in-range ID still mints, stays inside this client's range,
	// and within the server's request-ID space.
	id := c.NextID()
	if id>>IDBits != 3 {
		t.Fatalf("NextID = %#x, carries clientID %d, want 3", id, id>>IDBits)
	}
	if id > serve.MaxReqID {
		t.Fatalf("NextID = %#x exceeds serve.MaxReqID %#x", id, serve.MaxReqID)
	}
	mustPanic(t, "NextID past sequence space", func() { c.NextID() })
}
