package serve

import "time"

// latHist is a power-of-two-bucket latency histogram: bucket i counts
// service latencies in [2^i, 2^(i+1)) microseconds (bucket 0 holds <2µs).
// Quantiles read back the containing bucket's upper bound — coarse, but
// allocation-free, mergeable, and monotone under load shifts, which is all
// the p50/p99 surface needs.
type latHist struct {
	buckets [40]uint64
	count   uint64
}

func (h *latHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := 0
	for us > 1 && i < len(h.buckets)-1 {
		us >>= 1
		i++
	}
	h.buckets[i]++
	h.count++
}

// quantile reports the q-quantile in microseconds (0 when empty).
func (h *latHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	want := uint64(q * float64(h.count))
	if want >= h.count {
		want = h.count - 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum > want {
			return float64(uint64(1) << uint(i+1))
		}
	}
	return float64(uint64(1) << uint(len(h.buckets)))
}

// ConnStats is one connection's counter snapshot.
type ConnStats struct {
	ID   uint64 `json:"id"`
	Proc int    `json:"proc"`
	// Queued counts requests admitted into the connection's queue; Admitted
	// counts those drained into an ApplyWindow; Retried counts RETRY
	// replies (queue full or duplicate-in-flight backpressure).
	Queued   uint64 `json:"queued"`
	Admitted uint64 `json:"admitted"`
	Retried  uint64 `json:"retried"`
	// Deduped counts requests answered from the response table without
	// executing (a resubmitted request ID); FromReport counts replies
	// resolved from a RecoverAll report after a crash.
	Deduped    uint64 `json:"deduped"`
	FromReport uint64 `json:"from_report"`
	// Shed counts OVERLOAD replies: requests bounced because the server's
	// aggregate queues crossed Config.ShedWatermark.
	Shed      uint64  `json:"shed"`
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
}

// ProcStats is one Proc's admission snapshot.
type ProcStats struct {
	Proc     int    `json:"proc"`
	Windows  uint64 `json:"windows"`
	Admitted uint64 `json:"admitted"`
	// Moves counts singleton MOVE windows (a transaction never shares a
	// window with batched requests).
	Moves uint64 `json:"moves"`
	// FromReport counts this Proc's replies resolved from a RecoverAll
	// report after a crash.
	FromReport uint64 `json:"from_report"`
	// BatchFill[k] counts admission windows that drained exactly k
	// requests (index 0 unused).
	BatchFill []uint64 `json:"batch_fill"`
}

// Stats is the server snapshot the stats endpoint serves as JSON.
type Stats struct {
	Conns []ConnStats `json:"conns"`
	Procs []ProcStats `json:"procs"`
	// Crashes counts store crashes recovered (Restart + one RecoverAll
	// each); TableEntries is the current response-table size, of which
	// RecoveredEntries were (re)filled from RecoverAll reports.
	Crashes          int    `json:"crashes"`
	TableEntries     int    `json:"table_entries"`
	RecoveredEntries uint64 `json:"recovered_entries"`
	// EvictedEntries counts response-table entries dropped because the
	// owning client acknowledged their replies (Request.Ack watermark).
	EvictedEntries uint64 `json:"evicted_entries"`
	// Totals across all connections, open and closed.
	Queued     uint64 `json:"queued"`
	Admitted   uint64 `json:"admitted"`
	Retried    uint64 `json:"retried"`
	Deduped    uint64 `json:"deduped"`
	FromReport uint64 `json:"from_report"`
	// Sheds counts OVERLOAD replies (aggregate queues past the shed
	// watermark); Disconnects counts connections torn down for any reason,
	// of which IdleClosed hit Config.IdleTimeout and WriteTimeouts hit
	// Config.WriteTimeout mid-reply.
	Sheds         uint64 `json:"sheds"`
	Disconnects   uint64 `json:"disconnects"`
	IdleClosed    uint64 `json:"idle_closed"`
	WriteTimeouts uint64 `json:"write_timeouts"`
}

// BatchFillMean reports the mean admission-window fill across all Procs
// (0 when no window has been drained).
func (s Stats) BatchFillMean() float64 {
	var wins, ops uint64
	for _, p := range s.Procs {
		wins += p.Windows
		ops += p.Admitted
	}
	if wins == 0 {
		return 0
	}
	return float64(ops) / float64(wins)
}

// connMetrics is the live (lock-guarded) counterpart of ConnStats.
type connMetrics struct {
	queued, admitted, retried uint64
	deduped, fromReport, shed uint64
	lat                       latHist
}

func (m *connMetrics) snapshot(id uint64, proc int) ConnStats {
	return ConnStats{
		ID: id, Proc: proc,
		Queued: m.queued, Admitted: m.admitted, Retried: m.retried,
		Deduped: m.deduped, FromReport: m.fromReport, Shed: m.shed,
		P50Micros: m.lat.quantile(0.50), P99Micros: m.lat.quantile(0.99),
	}
}
