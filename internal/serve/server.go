package serve

import (
	"encoding/json"
	"net"
	"sync"
	"time"

	"repro"
)

// Config parameterises a Server.
type Config struct {
	// Procs is the fixed admission pool: one worker goroutine per Runtime
	// Proc (default 2). Connections are pinned round-robin to Procs.
	Procs int
	// Shards is the store's shard count (default 16).
	Shards int
	// Batch caps how many queued requests one Proc drains into a single
	// ApplyWindow (default 16, max repro.MaxBatch).
	Batch int
	// QueueDepth bounds each connection's pending queue; a full queue
	// answers RETRY (default 32).
	QueueDepth int
	// CrashSim enables the tracked heap; CrashEvery (accesses between
	// injected crashes) arms the crash storm the harnesses run under.
	CrashSim   bool
	CrashEvery uint64
	// HeapWords / Engine / Reclaim / latencies configure the Runtime as in
	// repro.Config (HeapWords defaults to 1<<22).
	HeapWords                int
	Engine                   repro.EngineKind
	Reclaim                  bool
	PWBLatency, PSyncLatency time.Duration
	// Gated holds every worker before its first admission until Release is
	// called — deterministic-harness plumbing (the crash sweep uses it to
	// fix the queue contents, and so the heap access sequence, per run).
	Gated bool
	// ShedWatermark enables graceful overload shedding: when the aggregate
	// queued-request count across ALL connections reaches this fraction of
	// the aggregate queue capacity (open conns × QueueDepth), new requests
	// are answered OVERLOAD (StShed) instead of queued. Unlike the
	// per-connection RETRY bounce, a shed tells the client the whole server
	// is saturated and to back off for longer. 0 disables (the default);
	// sensible values are in (0, 1].
	ShedWatermark float64
	// IdleTimeout disconnects a connection that sends no frame for this
	// long (0 disables): a dead or wedged peer must not hold a pinned
	// Proc slot and its queue capacity forever. Exactly-once state is
	// untouched — the response table is keyed by request ID, not by
	// connection — so a client redialing after an idle-close still gets
	// its recorded answers.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply-frame write (0 disables): a peer that
	// stops draining its socket is disconnected rather than left pinning
	// an outbox.
	WriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 2
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Batch > repro.MaxBatch {
		c.Batch = repro.MaxBatch
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.HeapWords == 0 {
		c.HeapWords = 1 << 22
	}
	return c
}

// pendingReq is one queued request with its reply route and enqueue time.
type pendingReq struct {
	c   *conn
	req Request
	enq time.Time
}

// conn is one accepted connection: reply socket, assigned Proc, pending
// queue and counters (queue and metrics are guarded by Server.mu). Replies
// are queued on out and written by the connection's own writer goroutine,
// so a Proc worker never blocks on a slow client's socket.
type conn struct {
	s    *Server
	id   uint64
	nc   net.Conn
	proc int
	out  chan Reply    // bounded outbox drained by writeLoop
	done chan struct{} // closed by removeConn; retires an idle writeLoop
	q    []pendingReq
	m    connMetrics
	gone bool
}

// Server multiplexes client connections onto the store's Proc pool. See
// the package comment for the admission, backpressure and crash story.
type Server struct {
	cfg   Config
	rt    *repro.Runtime
	store *repro.HashMap
	group *repro.CrashGroup

	mu        sync.Mutex
	cond      *sync.Cond
	procConns [][]*conn // conns pinned to each proc
	rr        []int     // per-proc round-robin drain cursor
	procM     []ProcStats
	// done is the response table: request ID -> result of every answered
	// request (boolean for PUT/DEL/GET, both packed leg booleans for
	// MOVE), including entries (re)filled from RecoverAll reports — what
	// makes a resubmitted request ID exactly-once. It is bounded by the
	// acknowledgement protocol: each request piggybacks the client's
	// acked-sequence high-watermark (Request.Ack) and applyAckLocked
	// evicts everything at or below it, so under steady resubmit-free
	// traffic the table holds only the unacknowledged tail.
	done     map[uint64]uint64
	acked    map[uint64]uint64   // client prefix -> acked seq watermark
	evicted  uint64              // table entries dropped via acks
	inflight map[uint64]struct{} // queued or admitted, not yet answered
	// crashes mirrors group.Crashes() under s.mu (bumped in onRecover, which
	// already holds it). Snapshot reads the mirror: calling group.Crashes()
	// while holding s.mu would invert the lock order against
	// CrashGroup.recoverLocked -> onRecover (g.mu then s.mu) and deadlock a
	// stats request racing a crash recovery.
	crashes   int
	recovered uint64      // table entries filled by OnRecover
	closedAgg connMetrics // folded-in metrics of closed conns
	// totalQueued / nconns feed the shed watermark: aggregate queued
	// requests and open connections across all procs.
	totalQueued int
	nconns      int
	// disconnects counts connections torn down (any cause); idleClosed and
	// writeTimeouts the subsets closed by the idle and write deadlines.
	disconnects   uint64
	idleClosed    uint64
	writeTimeouts uint64
	connSeq       uint64
	released      bool
	closed        bool
	ln            net.Listener
	wg            sync.WaitGroup // workers
}

// New builds the server, its Runtime and store, and starts the Proc
// workers (parked if cfg.Gated).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		rt: repro.New(repro.Config{
			Procs: cfg.Procs, HeapWords: cfg.HeapWords, CrashSim: cfg.CrashSim,
			Engine: cfg.Engine, Reclaim: cfg.Reclaim,
			PWBLatency: cfg.PWBLatency, PSyncLatency: cfg.PSyncLatency,
		}),
		procConns: make([][]*conn, cfg.Procs),
		rr:        make([]int, cfg.Procs),
		procM:     make([]ProcStats, cfg.Procs),
		done:      map[uint64]uint64{},
		acked:     map[uint64]uint64{},
		inflight:  map[uint64]struct{}{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.store = s.rt.NewHashMap(cfg.Shards)
	// The store keys on the low KeyBits of the announced Arg; the high
	// bits are the request ID riding the announcement across crashes.
	s.store.SetArgMask(MaxKey)
	for i := range s.procM {
		s.procM[i] = ProcStats{Proc: i, BatchFill: make([]uint64, cfg.Batch+1)}
	}
	every := uint64(0)
	if cfg.CrashSim {
		every = cfg.CrashEvery
	}
	s.group = repro.NewCrashGroup(s.rt, cfg.Procs, every)
	s.group.OnRecover = s.onRecover
	for w := 0; w < cfg.Procs; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s
}

// Runtime exposes the server's runtime (bench and harness plumbing).
func (s *Server) Runtime() *repro.Runtime { return s.rt }

// Store exposes the underlying map (post-run audits at quiescence).
func (s *Server) Store() *repro.HashMap { return s.store }

// Crashes reports how many store crashes the server has recovered from.
func (s *Server) Crashes() int { return s.group.Crashes() }

// Release opens the admission gate of a Config.Gated server.
func (s *Server) Release() {
	s.mu.Lock()
	s.released = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Serve accepts connections on ln until the listener or server closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return net.ErrClosed
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed = s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.addConn(nc)
	}
}

// Close shuts the server down: stops accepting, closes every connection,
// and joins the workers (recovering first if a crash is in progress, so
// the store is auditable at quiescence).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	var conns []*conn
	for _, pc := range s.procConns {
		conns = append(conns, pc...)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		if c.nc != nil {
			c.nc.Close()
		}
	}
	s.cond.Broadcast()
	s.wg.Wait()
}

// addConn pins nc to a Proc and starts its reader and writer. The outbox
// is sized so every reply a well-behaved connection can have outstanding
// (its full queue, a drained window, plus backpressure bounces) fits
// without ever parking a worker.
func (s *Server) addConn(nc net.Conn) *conn {
	s.mu.Lock()
	s.connSeq++
	c := &conn{
		s: s, id: s.connSeq, nc: nc, proc: int(s.connSeq-1) % s.cfg.Procs,
		out:  make(chan Reply, 2*s.cfg.QueueDepth+s.cfg.Batch+8),
		done: make(chan struct{}),
	}
	s.procConns[c.proc] = append(s.procConns[c.proc], c)
	s.nconns++
	s.mu.Unlock()
	go c.readLoop()
	go c.writeLoop()
	return c
}

// removeConn drops c: its queued-but-unadmitted requests are discarded
// (their IDs leave the inflight set, so a resubmission on a fresh
// connection is admitted rather than bounced) and its counters fold into
// the closed-connection aggregate.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.gone {
		return
	}
	c.gone = true
	pc := s.procConns[c.proc]
	for i, cc := range pc {
		if cc == c {
			s.procConns[c.proc] = append(pc[:i], pc[i+1:]...)
			break
		}
	}
	for _, pr := range c.q {
		delete(s.inflight, pr.req.ReqID)
	}
	s.totalQueued -= len(c.q)
	s.nconns--
	s.disconnects++
	c.q = nil
	if c.done != nil {
		close(c.done)
	}
	s.closedAgg.queued += c.m.queued
	s.closedAgg.admitted += c.m.admitted
	s.closedAgg.retried += c.m.retried
	s.closedAgg.deduped += c.m.deduped
	s.closedAgg.fromReport += c.m.fromReport
	s.closedAgg.shed += c.m.shed
}

// readLoop decodes frames off one connection and routes them. With
// Config.IdleTimeout set, each frame must arrive within it or the
// connection is closed as idle.
func (c *conn) readLoop() {
	defer c.s.removeConn(c)
	defer c.nc.Close()
	idle := c.s.cfg.IdleTimeout
	for {
		if idle > 0 {
			c.nc.SetReadDeadline(time.Now().Add(idle))
		}
		payload, err := ReadFrame(c.nc)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.s.mu.Lock()
				c.s.idleClosed++
				c.s.mu.Unlock()
			}
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			c.sendReply(Reply{Status: StErr})
			continue
		}
		c.s.handle(c, req)
	}
}

// sendReply enqueues one reply on the connection's outbox — never blocks.
// A client that stops reading fills the outbox and is disconnected here
// instead of stalling the caller: crash recovery needs every active worker
// to park, so one blocking write on a Proc worker would halt the whole
// server behind one stalled socket.
func (c *conn) sendReply(r Reply) {
	select {
	case c.out <- r:
	default:
		if c.nc != nil {
			c.nc.Close() // slow consumer: tear down, reader runs removeConn
		}
	}
}

// writeLoop is the connection's single writer: it serializes reply frames
// off the outbox so neither the reader nor the Proc workers ever block on
// the socket. It retires when removeConn closes done; write errors close
// the socket and surface as the reader's teardown.
func (c *conn) writeLoop() {
	wt := c.s.cfg.WriteTimeout
	for {
		select {
		case r := <-c.out:
			if wt > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(wt))
			}
			if err := WriteFrame(c.nc, EncodeReply(r)); err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					c.s.mu.Lock()
					c.s.writeTimeouts++
					c.s.mu.Unlock()
				}
				c.nc.Close()
			}
		case <-c.done:
			return
		}
	}
}

// maxAckWalk caps how many sequence numbers one acknowledgement may evict
// in a single walk: a legitimate watermark advances by the handful of
// requests since the last one, while a hostile frame could otherwise name
// a MaxSeq-wide range and stall the admission lock for the whole walk.
// Capped eviction is sound — entries below the skipped range merely
// linger until the table is rebuilt.
const maxAckWalk = 1 << 16

// applyAckLocked evicts the response-table entries an acknowledgement
// watermark proves the client has received (its replies are in hand, so
// their IDs can never be resubmitted). Requires s.mu.
func (s *Server) applyAckLocked(ack uint64) {
	if ack == 0 {
		return
	}
	cl, seq := SplitID(ack)
	old := s.acked[cl]
	if seq <= old {
		return
	}
	if seq-old > maxAckWalk {
		old = seq - maxAckWalk
	}
	for sq := old + 1; sq <= seq; sq++ {
		if _, ok := s.done[cl<<SeqBits|sq]; ok {
			delete(s.done, cl<<SeqBits|sq)
			s.evicted++
		}
	}
	s.acked[cl] = seq
}

// validOp reports whether a data request is in range for its op.
func validOp(req Request) bool {
	switch req.Op {
	case OpPut, OpDel, OpGet:
		if req.Key2 != 0 {
			return false
		}
	case OpMove:
		if req.Key2 < 1 || req.Key2 > MaxKey {
			return false
		}
	default:
		return false
	}
	return req.Key >= 1 && req.Key <= MaxKey && req.ReqID <= MaxReqID
}

// handle admits one decoded request: stats snapshot, response-table hit,
// backpressure, or enqueue. Every accepted frame's Ack is applied first,
// so the response table shrinks even on requests that bounce.
func (s *Server) handle(c *conn, req Request) {
	if req.Op == OpStats {
		s.mu.Lock()
		s.applyAckLocked(req.Ack)
		s.mu.Unlock()
		body, err := json.Marshal(s.Snapshot())
		if err != nil {
			c.sendReply(Reply{Status: StErr, ReqID: req.ReqID})
			return
		}
		c.sendReply(Reply{Status: StOK, ReqID: req.ReqID, Body: body})
		return
	}
	if !validOp(req) {
		c.sendReply(Reply{Status: StErr, ReqID: req.ReqID})
		return
	}
	s.mu.Lock()
	s.applyAckLocked(req.Ack)
	if val, ok := s.done[req.ReqID]; ok {
		// A resubmitted request ID: answer from the response table (after
		// a crash, filled from the RecoverAll report) — never re-execute.
		c.m.deduped++
		s.mu.Unlock()
		c.sendReply(Reply{Status: StOK, ReqID: req.ReqID, Val: val})
		return
	}
	if wm := s.cfg.ShedWatermark; wm > 0 &&
		float64(s.totalQueued) >= wm*float64(s.nconns*s.cfg.QueueDepth) {
		// Aggregate saturation: shed. Placed after the dedup check so that
		// resubmits of already-answered IDs are still served from the table
		// even while the server is drowning.
		c.m.shed++
		s.mu.Unlock()
		c.sendReply(Reply{Status: StShed, ReqID: req.ReqID})
		return
	}
	if _, busy := s.inflight[req.ReqID]; busy {
		c.m.retried++
		s.mu.Unlock()
		c.sendReply(Reply{Status: StRetry, ReqID: req.ReqID})
		return
	}
	if len(c.q) >= s.cfg.QueueDepth {
		c.m.retried++
		s.mu.Unlock()
		c.sendReply(Reply{Status: StRetry, ReqID: req.ReqID})
		return
	}
	c.q = append(c.q, pendingReq{c: c, req: req, enq: time.Now()})
	s.inflight[req.ReqID] = struct{}{}
	s.totalQueued++
	c.m.queued++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// worker is one Proc's admission loop: drain a window, serve it, repeat.
func (s *Server) worker(w int) {
	defer s.wg.Done()
	defer s.group.Leave()
	p := s.rt.Proc(w)
	for {
		batch := s.drain(w)
		if batch == nil {
			return
		}
		s.serveWindow(p, w, batch)
	}
}

// drain blocks until worker w has admissible requests (or the server
// closes — nil), parking through any crash rendezvous it is notified of.
func (s *Server) drain(w int) []pendingReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if s.rt.Crashing() {
			s.mu.Unlock()
			s.group.Park()
			s.mu.Lock()
			continue
		}
		if !s.cfg.Gated || s.released {
			if batch := s.takeLocked(w); len(batch) > 0 {
				return batch
			}
		}
		s.cond.Wait()
	}
}

// takeLocked drains up to cfg.Batch requests for proc w, one request per
// connection per pass (round-robin fairness: a connection with a deep
// queue cannot starve its neighbours), starting each window at a rotating
// cursor.
//
// MOVE requests never share a window: a batch announcement and a
// transaction announcement are mutually exclusive shapes, so each
// connection contributes only the prefix of its queue ahead of its first
// MOVE, and when every admissible queue is blocked on a MOVE, exactly one
// MOVE is admitted as a singleton window.
func (s *Server) takeLocked(w int) []pendingReq {
	conns := s.procConns[w]
	n := len(conns)
	if n == 0 {
		return nil
	}
	limit := func(c *conn) int {
		for i, pr := range c.q {
			if pr.req.Op == OpMove {
				return i
			}
		}
		return len(c.q)
	}
	var out []pendingReq
	start := s.rr[w]
	depth := 0
	for len(out) < s.cfg.Batch {
		took := false
		for i := 0; i < n && len(out) < s.cfg.Batch; i++ {
			c := conns[(start+i)%n]
			if depth < limit(c) {
				out = append(out, c.q[depth])
				c.m.admitted++
				took = true
			}
		}
		if !took {
			break
		}
		depth++
	}
	if len(out) == 0 {
		// Every nonempty queue leads with a MOVE; admit one alone.
		for i := 0; i < n; i++ {
			c := conns[(start+i)%n]
			if len(c.q) == 0 {
				continue
			}
			out = append(out, c.q[0])
			c.q = append(c.q[:0:0], c.q[1:]...)
			c.m.admitted++
			s.totalQueued--
			s.rr[w] = (start + 1) % n
			pm := &s.procM[w]
			pm.Moves++
			pm.Admitted++
			return out
		}
		return nil
	}
	// Pop the admitted prefixes and advance the fairness cursor.
	taken := map[*conn]int{}
	for _, pr := range out {
		taken[pr.c]++
	}
	for c, k := range taken {
		c.q = append(c.q[:0:0], c.q[k:]...)
		s.totalQueued -= k
	}
	s.rr[w] = (start + 1) % n
	if len(out) > 0 {
		pm := &s.procM[w]
		pm.Windows++
		pm.Admitted += uint64(len(out))
		pm.BatchFill[len(out)]++
	}
	return out
}

// reqOp maps a request onto the store's operation protocol: the request ID
// rides the announcement Arg's high bits (see PackArg), the key its low
// bits.
func reqOp(r Request) repro.Op {
	kind := repro.OpFind
	switch r.Op {
	case OpPut:
		kind = repro.OpInsert
	case OpDel:
		kind = repro.OpDelete
	}
	return repro.Op{Kind: kind, Arg: PackArg(r.ReqID, r.Key)}
}

// serveWindow runs one admission window to completion across any number of
// crashes: admit via ApplyWindow; on a crash, park through the group
// rendezvous (reboot = Restart + one RecoverAll, run by the last parker),
// answer the prefix the report proves durable via repro.MatchReport, and
// re-admit the no-effect suffix.
func (s *Server) serveWindow(p *repro.Proc, w int, batch []pendingReq) {
	if batch[0].req.Op == OpMove {
		s.serveMove(p, w, batch[0])
		return
	}
	pending := batch
	for len(pending) > 0 {
		ops := make([]repro.Op, len(pending))
		for i, pr := range pending {
			ops[i] = reqOp(pr.req)
		}
		var out []repro.Resp
		if s.rt.Run(func() { out = s.rt.ApplyWindow(p, s.store, ops) }) {
			for i, pr := range pending {
				s.finish(w, pr, out[i], false)
			}
			return
		}
		// Wake idle workers so they join the rendezvous, then park.
		s.cond.Broadcast()
		s.group.Park()
		if rep, ok := s.group.Report(w); ok {
			n := repro.MatchReport(rep, ops, func(i int, _ repro.Op, resp repro.Resp) {
				s.finish(w, pending[i], resp, true)
			})
			pending = pending[n:]
		}
		// No report (or nothing matched): the window provably performed no
		// tracked writes and is re-admitted wholesale.
	}
}

// moveVal packs a MOVE's two leg results into one reply value: bit 0 is
// the delete's (source present), bit 1 the insert's (destination fresh).
func moveVal(del, ins repro.Resp) uint64 {
	v := uint64(0)
	if del.Bool() {
		v |= 1
	}
	if ins.Bool() {
		v |= 2
	}
	return v
}

// serveMove runs one MOVE to completion across any number of crashes: the
// delete and insert legs run as a single ApplyTxn (one durable commit
// point between them). On a crash, the transaction report either proves
// both legs durable — recovery rolls a committed transaction's second leg
// forward before reporting — and answers from it, or proves the whole
// transaction had no effect, in which case it is re-applied. The request
// ID riding both legs' announced Args makes a stale report unmatchable,
// exactly as in the batch path.
func (s *Server) serveMove(p *repro.Proc, w int, pr pendingReq) {
	leg1 := repro.TxnLeg{S: s.store, Op: repro.Op{Kind: repro.OpDelete, Arg: PackArg(pr.req.ReqID, pr.req.Key)}}
	leg2 := repro.TxnLeg{S: s.store, Op: repro.Op{Kind: repro.OpInsert, Arg: PackArg(pr.req.ReqID, pr.req.Key2)}}
	ops := []repro.Op{leg1.Op, leg2.Op}
	for {
		var del, ins repro.Resp
		if s.rt.Run(func() { del, ins = s.rt.ApplyTxn(p, leg1, leg2) }) {
			s.finishMove(w, pr, del, ins, false)
			return
		}
		s.cond.Broadcast()
		s.group.Park()
		if rep, ok := s.group.Report(w); ok {
			var legs [2]repro.Resp
			if n := repro.MatchReport(rep, ops, func(i int, _ repro.Op, resp repro.Resp) {
				legs[i] = resp
			}); n == 2 {
				s.finishMove(w, pr, legs[0], legs[1], true)
				return
			}
		}
		// No report or no effect: the transaction provably did not apply
		// and is re-submitted wholesale.
	}
}

// finishMove records one answered MOVE in the response table and replies.
func (s *Server) finishMove(w int, pr pendingReq, del, ins repro.Resp, fromReport bool) {
	val := moveVal(del, ins)
	s.mu.Lock()
	s.done[pr.req.ReqID] = val
	delete(s.inflight, pr.req.ReqID)
	m := &pr.c.m
	if pr.c.gone {
		m = &s.closedAgg
	}
	m.lat.observe(time.Since(pr.enq))
	if fromReport {
		m.fromReport++
		s.procM[w].FromReport++
	}
	s.mu.Unlock()
	pr.c.sendReply(Reply{Status: StOK, ReqID: pr.req.ReqID, Val: val})
}

// finish records one answered request in the response table and replies.
func (s *Server) finish(w int, pr pendingReq, resp repro.Resp, fromReport bool) {
	val := uint64(0)
	if resp.Bool() {
		val = 1
	}
	s.mu.Lock()
	s.done[pr.req.ReqID] = val
	delete(s.inflight, pr.req.ReqID)
	m := &pr.c.m
	if pr.c.gone {
		// removeConn already folded this connection's counters into the
		// closed aggregate; route the late completion there too, or the
		// update would vanish from Snapshot totals.
		m = &s.closedAgg
	}
	m.lat.observe(time.Since(pr.enq))
	if fromReport {
		m.fromReport++
		s.procM[w].FromReport++
	}
	s.mu.Unlock()
	pr.c.sendReply(Reply{Status: StOK, ReqID: pr.req.ReqID, Val: val})
}

// onRecover rebuilds the response table from the RecoverAll report: every
// completed or in-flight batch entry carries its request ID in the
// announced Arg and its durable (or recovery-resolved) response, so a
// client that resubmits after the reboot is answered without re-execution.
// Runs with the whole group parked.
func (s *Server) onRecover(reps []repro.ProcReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashes++ // mirror of group.Crashes(); see the field comment
	for _, rep := range reps {
		if rep.Txn != nil {
			// A MOVE transaction. Unless it provably had no effect (the
			// worker re-applies it), both legs are durable by the time the
			// report exists — recovery rolls leg 2 forward first — so the
			// packed answer is complete and resubmittable-from-table.
			if rep.Txn.Class != repro.TxnNoEffect {
				reqID, _ := SplitArg(rep.Txn.Legs[0].Op.Arg)
				s.done[reqID] = moveVal(rep.Txn.Legs[0].Resp, rep.Txn.Legs[1].Resp)
				s.recovered++
			}
			continue
		}
		if rep.Batch == nil {
			continue // serve admits batches and transactions only
		}
		for _, ent := range rep.Batch {
			if ent.Status == repro.OpNoEffect {
				break
			}
			reqID, _ := SplitArg(ent.Op.Arg)
			val := uint64(0)
			if ent.Resp.Bool() {
				val = 1
			}
			s.done[reqID] = val
			s.recovered++
		}
	}
}

// Snapshot assembles the stats the OpStats endpoint serves.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Crashes:          s.crashes,
		TableEntries:     len(s.done),
		RecoveredEntries: s.recovered,
		EvictedEntries:   s.evicted,
		Queued:           s.closedAgg.queued,
		Admitted:         s.closedAgg.admitted,
		Retried:          s.closedAgg.retried,
		Deduped:          s.closedAgg.deduped,
		FromReport:       s.closedAgg.fromReport,
		Sheds:            s.closedAgg.shed,
		Disconnects:      s.disconnects,
		IdleClosed:       s.idleClosed,
		WriteTimeouts:    s.writeTimeouts,
	}
	for _, pc := range s.procConns {
		for _, c := range pc {
			cs := c.m.snapshot(c.id, c.proc)
			st.Conns = append(st.Conns, cs)
			st.Queued += cs.Queued
			st.Admitted += cs.Admitted
			st.Retried += cs.Retried
			st.Deduped += cs.Deduped
			st.FromReport += cs.FromReport
			st.Sheds += cs.Shed
		}
	}
	for i := range s.procM {
		pm := s.procM[i]
		pm.BatchFill = append([]uint64(nil), pm.BatchFill...)
		st.Procs = append(st.Procs, pm)
	}
	return st
}
