// Package chaos is the hostile-network harness for the serve layer: a
// deterministic fault-injecting net.Conn / net.Listener wrapper, the
// wire-layer analogue of the pmem crash armer. A Plan names exactly where
// a connection fails — kill after the Nth written byte, kill after the
// Nth delivered byte, dribble writes in short chunks, delay delivery — so
// a failure observed once can be replayed byte-for-byte, and a sweep can
// kill the wire at EVERY byte offset of a fixed workload (see the wire
// sweep in this package's tests). A Schedule draws Plans from a seeded
// generator so whole storms are reproducible too.
//
// Kill semantics mirror a crashed peer or a mid-stream RST: the bytes
// before the offset are delivered (a torn frame, not a clean boundary),
// the underlying connection is closed — so the REMOTE side observes the
// drop as a read/write error as well — and every later operation on the
// wrapped side fails with ErrKilled.
package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrKilled is returned by a Conn whose fault plan has fired.
var ErrKilled = errors.New("chaos: connection killed by fault plan")

// Plan is one connection's deterministic fault schedule. The zero Plan is
// a transparent wrapper (useful for byte accounting via BytesWritten /
// BytesRead).
type Plan struct {
	// KillWriteAt kills the connection when the Nth byte is about to be
	// written through it: bytes 1..N-1 are forwarded, the Nth and
	// everything after are discarded, and the underlying conn is closed.
	// 0 disables.
	KillWriteAt uint64
	// KillReadAt kills the connection when the Nth byte has been delivered
	// to Read: bytes 1..N-1 are delivered, then reads fail and the
	// underlying conn closes. 0 disables.
	KillReadAt uint64
	// MaxChunk caps how many bytes one Write forwards per underlying write
	// (short writes: the peer's reader sees frame bytes dribble in across
	// io.ReadFull calls). 0 disables.
	MaxChunk int
	// ReadDelay / WriteDelay pause before each underlying read / write
	// chunk (slow-peer emulation). 0 disables.
	ReadDelay, WriteDelay time.Duration
}

// Conn is a net.Conn wrapped with a fault Plan. It also counts bytes in
// both directions, which is how the wire sweep fixes its offset space.
// Calls in the same direction are serialized (rio/wio below): the kill
// offsets promise EXACTLY k-1 bytes delivered, and two concurrent
// readers each granted the remaining budget would together overshoot it.
type Conn struct {
	nc   net.Conn
	plan Plan

	rio sync.Mutex // serializes Read calls (exact KillReadAt accounting)
	wio sync.Mutex // serializes Write calls (exact KillWriteAt accounting)

	mu     sync.Mutex
	rOff   uint64
	wOff   uint64
	killed bool
}

// NewConn wraps nc with plan.
func NewConn(nc net.Conn, plan Plan) *Conn {
	return &Conn{nc: nc, plan: plan}
}

// BytesWritten reports bytes forwarded to the underlying connection.
func (c *Conn) BytesWritten() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wOff
}

// BytesRead reports bytes delivered to Read.
func (c *Conn) BytesRead() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rOff
}

// Killed reports whether the fault plan has fired.
func (c *Conn) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// kill marks the connection dead and closes the underlying conn so the
// peer observes the drop too.
func (c *Conn) kill() {
	c.killed = true
	c.nc.Close()
}

// Write forwards b in MaxChunk-sized pieces, killing the connection at
// the planned write offset: the bytes before it are forwarded (the peer
// receives a torn frame), the rest are discarded. Returns the number of
// bytes actually forwarded, with ErrKilled once the plan fires.
func (c *Conn) Write(b []byte) (int, error) {
	c.wio.Lock()
	defer c.wio.Unlock()
	if len(b) == 0 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.killed {
			return 0, ErrKilled
		}
		return 0, nil
	}
	total := 0
	for total < len(b) {
		if c.plan.WriteDelay > 0 {
			time.Sleep(c.plan.WriteDelay)
		}
		chunk := len(b) - total
		if c.plan.MaxChunk > 0 && chunk > c.plan.MaxChunk {
			chunk = c.plan.MaxChunk
		}
		c.mu.Lock()
		if c.killed {
			c.mu.Unlock()
			return total, ErrKilled
		}
		killAfter := -1 // bytes of this chunk to forward before killing
		if k := c.plan.KillWriteAt; k > 0 && c.wOff+uint64(chunk) >= k {
			killAfter = int(k - 1 - c.wOff)
			chunk = killAfter
		}
		c.mu.Unlock()
		n := 0
		var err error
		if chunk > 0 {
			n, err = c.nc.Write(b[total : total+chunk])
		}
		c.mu.Lock()
		c.wOff += uint64(n)
		if killAfter >= 0 {
			c.kill()
			c.mu.Unlock()
			return total + n, ErrKilled
		}
		c.mu.Unlock()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Read delivers bytes from the underlying connection, killing at the
// planned read offset: bytes before it are delivered (possibly alongside
// ErrKilled, torn mid-frame), nothing after.
func (c *Conn) Read(b []byte) (int, error) {
	c.rio.Lock()
	defer c.rio.Unlock()
	if c.plan.ReadDelay > 0 {
		time.Sleep(c.plan.ReadDelay)
	}
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return 0, ErrKilled
	}
	limit := len(b)
	killing := false
	if k := c.plan.KillReadAt; k > 0 {
		left := int(k - 1 - c.rOff) // deliverable bytes before the kill
		if left <= 0 {
			c.kill()
			c.mu.Unlock()
			return 0, ErrKilled
		}
		if limit >= left {
			limit = left
			killing = true
		}
	}
	c.mu.Unlock()
	n, err := c.nc.Read(b[:limit])
	c.mu.Lock()
	c.rOff += uint64(n)
	if killing && n == limit {
		c.kill()
		err = ErrKilled
	}
	c.mu.Unlock()
	return n, err
}

// Close tears the connection down (independent of the plan).
func (c *Conn) Close() error {
	c.mu.Lock()
	c.killed = true
	c.mu.Unlock()
	return c.nc.Close()
}

// The remaining net.Conn surface delegates to the wrapped connection.

func (c *Conn) LocalAddr() net.Addr                { return c.nc.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.nc.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.nc.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// ScheduleConfig parameterises a seeded Plan generator.
type ScheduleConfig struct {
	// Seed fixes the fault draw sequence (default 1); two schedules with
	// the same seed hand identical Plans to the same accept/dial order.
	Seed int64
	// KillRate is the expected kills per KiB of traffic: each wrapped
	// connection draws a kill offset from an exponential with mean
	// 1024/KillRate bytes, in a direction chosen by the same stream.
	// 0 disables kills.
	KillRate float64
	// MaxChunk / MaxDelay bound the short-write chunking and the random
	// per-operation delivery delay handed to each Plan (0 disables each).
	MaxChunk int
	MaxDelay time.Duration
}

// Schedule deterministically assigns a fault Plan to every connection it
// wraps.
type Schedule struct {
	cfg ScheduleConfig

	mu    sync.Mutex
	rng   *rand.Rand
	conns uint64
	kills uint64
}

// NewSchedule builds a seeded schedule.
func NewSchedule(cfg ScheduleConfig) *Schedule {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Schedule{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Plan draws the next connection's fault plan from the seeded stream.
func (s *Schedule) Plan() Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns++
	var p Plan
	if s.cfg.KillRate > 0 {
		off := uint64(s.rng.ExpFloat64()*1024/s.cfg.KillRate) + 1
		if s.rng.Intn(2) == 0 {
			p.KillWriteAt = off
		} else {
			p.KillReadAt = off
		}
		s.kills++
	}
	p.MaxChunk = s.cfg.MaxChunk
	if s.cfg.MaxDelay > 0 {
		p.ReadDelay = time.Duration(s.rng.Int63n(int64(s.cfg.MaxDelay)))
		p.WriteDelay = time.Duration(s.rng.Int63n(int64(s.cfg.MaxDelay)))
	}
	return p
}

// Wrap assigns nc the next drawn plan.
func (s *Schedule) Wrap(nc net.Conn) *Conn { return NewConn(nc, s.Plan()) }

// Stats reports connections wrapped and kills planned so far.
func (s *Schedule) Stats() (conns, kills uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns, s.kills
}

// Listener wraps every accepted connection with a plan drawn from the
// schedule: the hostile path a server can be run through end to end
// (cmd/kvserver -selftest -chaos).
type Listener struct {
	net.Listener
	sched *Schedule
}

// NewListener wraps ln.
func NewListener(ln net.Listener, sched *Schedule) *Listener {
	return &Listener{Listener: ln, sched: sched}
}

// Accept wraps the next accepted connection.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.sched.Wrap(nc), nil
}
