package chaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pump reads everything the peer delivers until error, returning the bytes.
func pump(nc net.Conn, out chan<- []byte) {
	var buf bytes.Buffer
	tmp := make([]byte, 256)
	for {
		n, err := nc.Read(tmp)
		buf.Write(tmp[:n])
		if err != nil {
			out <- buf.Bytes()
			return
		}
	}
}

// TestKillAtWriteOffset pins the torn-write semantics: exactly the bytes
// before the kill offset reach the peer, the writer gets ErrKilled, and
// the peer observes the drop as a terminated stream.
func TestKillAtWriteOffset(t *testing.T) {
	msg := []byte("0123456789abcdef")
	for _, off := range []uint64{1, 2, 7, 16} {
		a, b := net.Pipe()
		c := NewConn(a, Plan{KillWriteAt: off})
		got := make(chan []byte, 1)
		go pump(b, got)
		n, err := c.Write(msg)
		if err != ErrKilled {
			t.Fatalf("off %d: write err = %v, want ErrKilled", off, err)
		}
		if uint64(n) != off-1 {
			t.Fatalf("off %d: forwarded %d bytes, want %d", off, n, off-1)
		}
		if peer := <-got; !bytes.Equal(peer, msg[:off-1]) {
			t.Fatalf("off %d: peer received %q, want %q", off, peer, msg[:off-1])
		}
		if _, err := c.Write([]byte("x")); err != ErrKilled {
			t.Fatalf("off %d: write after kill = %v, want ErrKilled", off, err)
		}
		b.Close()
	}
}

// TestKillAtReadOffset pins the torn-read semantics: exactly the bytes
// before the kill offset are delivered, then ErrKilled, and the remote
// peer's next write fails (the underlying conn is closed).
func TestKillAtReadOffset(t *testing.T) {
	msg := []byte("0123456789abcdef")
	for _, off := range []uint64{1, 2, 9, 16} {
		a, b := net.Pipe()
		c := NewConn(a, Plan{KillReadAt: off})
		go b.Write(msg)
		var buf bytes.Buffer
		tmp := make([]byte, 4)
		var rerr error
		for rerr == nil {
			var n int
			n, rerr = c.Read(tmp)
			buf.Write(tmp[:n])
		}
		if rerr != ErrKilled {
			t.Fatalf("off %d: read err = %v, want ErrKilled", off, rerr)
		}
		if !bytes.Equal(buf.Bytes(), msg[:off-1]) {
			t.Fatalf("off %d: delivered %q, want %q", off, buf.Bytes(), msg[:off-1])
		}
		// The peer sees the teardown too.
		b.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := b.Write([]byte("y")); err == nil {
			t.Fatalf("off %d: peer write succeeded after kill", off)
		}
		b.Close()
	}
}

// TestShortWritesDeliverEverything pins that MaxChunk dribbles bytes but
// loses none: the peer reassembles the full message.
func TestShortWritesDeliverEverything(t *testing.T) {
	msg := []byte("the quick brown fox jumps over the lazy dog")
	a, b := net.Pipe()
	c := NewConn(a, Plan{MaxChunk: 3})
	got := make(chan []byte, 1)
	go pump(b, got)
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("chunked write = %d, %v", n, err)
	}
	c.Close()
	if peer := <-got; !bytes.Equal(peer, msg) {
		t.Fatalf("peer received %q, want %q", peer, msg)
	}
}

// TestZeroPlanIsTransparent pins the byte accounting a zero Plan exists
// for: data flows untouched and both counters are exact.
func TestZeroPlanIsTransparent(t *testing.T) {
	a, b := net.Pipe()
	c := NewConn(a, Plan{})
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(b, buf)
		b.Write([]byte("pong!"))
	}()
	if _, err := c.Write([]byte("ping!")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if c.BytesWritten() != 5 || c.BytesRead() != 5 {
		t.Fatalf("counters = %d written / %d read, want 5/5", c.BytesWritten(), c.BytesRead())
	}
	if c.Killed() {
		t.Fatal("zero plan reported killed")
	}
	c.Close()
	b.Close()
}

// TestScheduleDeterminism pins the seeded draw: two schedules with the
// same seed hand out identical plans, a different seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	cfg := ScheduleConfig{Seed: 42, KillRate: 1, MaxChunk: 7, MaxDelay: time.Millisecond}
	s1, s2 := NewSchedule(cfg), NewSchedule(cfg)
	same := 0
	var first1, first2 []Plan
	for i := 0; i < 16; i++ {
		p1, p2 := s1.Plan(), s2.Plan()
		first1, first2 = append(first1, p1), append(first2, p2)
		if p1 == p2 {
			same++
		}
		if p1.KillWriteAt == 0 && p1.KillReadAt == 0 {
			t.Fatalf("draw %d: KillRate=1 drew no kill: %+v", i, p1)
		}
	}
	if same != 16 {
		t.Fatalf("same-seed schedules agreed on %d/16 plans", same)
	}
	s3 := NewSchedule(ScheduleConfig{Seed: 43, KillRate: 1, MaxChunk: 7, MaxDelay: time.Millisecond})
	diverged := false
	for i := 0; i < 16; i++ {
		if s3.Plan() != first1[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical plan streams")
	}
	if conns, kills := s1.Stats(); conns != 16 || kills != 16 {
		t.Fatalf("schedule stats = %d conns / %d kills, want 16/16", conns, kills)
	}
	_ = first2
}

// TestListenerWrapsAccepted pins that a chaos.Listener hands accepted
// connections their scheduled faults: with a certain kill, the conn dies.
func TestListenerWrapsAccepted(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	sched := NewSchedule(ScheduleConfig{Seed: 7, KillRate: 1024}) // mean 1 byte: kills almost immediately
	ln := NewListener(inner, sched)
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer nc.Close()
		buf := make([]byte, 64)
		for {
			if _, err := nc.Read(buf); err != nil {
				done <- nil // fault (or peer close) surfaced as an error — either is a wrapped conn
				return
			}
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	for i := 0; i < 64; i++ {
		if _, err := nc.Write(make([]byte, 16)); err != nil {
			break // server-side kill propagated
		}
	}
	nc.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("accept: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wrapped conn never surfaced its fault")
	}
	if conns, _ := sched.Stats(); conns != 1 {
		t.Fatalf("schedule wrapped %d conns, want 1", conns)
	}
}

// TestConnConcurrentReadsRespectKillOffset pins the read-budget
// accounting under concurrent readers: KillReadAt promises EXACTLY k-1
// bytes delivered, and two Reads racing for the remaining budget must not
// each be granted it (the wire sweep's offset determinism rests on this).
// Conn serializes same-direction calls, so total delivery is exact.
func TestConnConcurrentReadsRespectKillOffset(t *testing.T) {
	const kill = 64
	a, b := net.Pipe()
	defer a.Close()
	c := NewConn(b, Plan{KillReadAt: kill})
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := a.Write(buf); err != nil {
				return
			}
		}
	}()
	var (
		mu    sync.Mutex
		total int
	)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 48)
			for {
				n, err := c.Read(buf)
				mu.Lock()
				total += n
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	if total != kill-1 {
		t.Fatalf("concurrent readers delivered %d bytes, want exactly %d (KillReadAt-1)", total, kill-1)
	}
	if !c.Killed() {
		t.Fatal("kill plan did not fire")
	}
}
