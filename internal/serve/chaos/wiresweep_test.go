package chaos_test

import (
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/serve/chaos"
	"repro/internal/serve/client"
)

// The wire sweep is the serve layer's flagship conformance test: a fixed
// workload is driven through a session client whose FIRST connection is
// killed at EVERY byte offset of every frame in both directions —
// optionally composed with a mid-workload server crash — and each run
// must produce responses identical to the fault-free reference, leave the
// store in the identical final state, and admit every request exactly
// once (zero duplicate executions). It is the wire-layer analogue of the
// access-offset crash sweeps: detectability extended over torn frames and
// dropped connections.

// wireOp is one workload step; moves carry key2.
type wireOp struct {
	op        byte
	key, key2 uint64
}

// wireOps exercises every op kind, including a MOVE transaction and
// membership flips whose answers a duplicated execution would falsify.
var wireOps = []wireOp{
	{serve.OpPut, 5, 0},
	{serve.OpPut, 6, 0},
	{serve.OpGet, 5, 0},
	{serve.OpMove, 5, 7},
	{serve.OpDel, 6, 0},
	{serve.OpPut, 8, 0},
	{serve.OpGet, 6, 0},
	{serve.OpGet, 7, 0},
}

// wireResult is everything one run is judged by.
type wireResult struct {
	vals     []uint64 // normalized reply values, one per workload step
	admitted uint64   // server-side admissions: must equal len(wireOps)
	keys     []uint64 // sorted final store contents at quiescence
	wBytes   uint64   // bytes the first conn wrote (reference runs only)
	rBytes   uint64   // bytes the first conn read (reference runs only)
	span     uint64   // tracked heap accesses across the workload
}

func wireConfig(eng repro.EngineKind, crashSim bool) serve.Config {
	return serve.Config{
		Procs: 2, Batch: 4, HeapWords: 1 << 16,
		Engine: eng, CrashSim: crashSim,
	}
}

// runWire executes the fixed workload once: the first session connection
// gets the given fault plan (zero plan = reference), every redial is
// clean, and crashAt > 0 arms one mid-workload server crash.
func runWire(t *testing.T, eng repro.EngineKind, crashSim bool, crashAt uint64, plan chaos.Plan) wireResult {
	t.Helper()
	srv := serve.New(wireConfig(eng, crashSim))
	ln := serve.NewMemListener()
	go srv.Serve(ln)
	defer srv.Close()

	var first *chaos.Conn
	dials := 0
	s, err := client.DialSession(client.SessionConfig{
		ClientID: 1,
		Dial: func() (net.Conn, error) {
			nc, err := ln.Dial()
			if err != nil {
				return nil, err
			}
			dials++
			if dials == 1 {
				first = chaos.NewConn(nc, plan)
				return first, nil
			}
			return nc, nil
		},
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial session: %v", err)
	}
	defer s.Close()

	startAcc := srv.Runtime().Heap().AccessCount()
	if crashAt > 0 {
		srv.Runtime().ScheduleCrash(crashAt)
	}

	res := wireResult{vals: make([]uint64, len(wireOps))}
	for i, op := range wireOps {
		if op.op == serve.OpMove {
			del, ins, err := s.Move(op.key, op.key2)
			if err != nil {
				t.Fatalf("step %d move(%d,%d): %v", i, op.key, op.key2, err)
			}
			if del {
				res.vals[i] |= 1
			}
			if ins {
				res.vals[i] |= 2
			}
			continue
		}
		rep, err := s.Do(op.op, op.key)
		if err != nil {
			t.Fatalf("step %d op %d(%d): %v", i, op.op, op.key, err)
		}
		res.vals[i] = rep.Val
	}
	res.span = srv.Runtime().Heap().AccessCount() - startAcc

	res.admitted = srv.Snapshot().Admitted
	if first != nil {
		res.wBytes = first.BytesWritten()
		res.rBytes = first.BytesRead()
	}
	s.Close()
	srv.Close() // quiesce (joining any in-progress recovery) before the audit
	res.keys = append([]uint64(nil), srv.Store().Keys()...)
	sort.Slice(res.keys, func(i, j int) bool { return res.keys[i] < res.keys[j] })
	return res
}

// checkWire compares one swept run against the fault-free reference.
func checkWire(t *testing.T, label string, got, ref wireResult) {
	t.Helper()
	for i := range ref.vals {
		if got.vals[i] != ref.vals[i] {
			t.Fatalf("%s: step %d answered %d, want %d (responses must match the fault-free run)",
				label, i, got.vals[i], ref.vals[i])
		}
	}
	if got.admitted != uint64(len(wireOps)) {
		t.Fatalf("%s: %d admissions for %d requests — duplicate or lost execution",
			label, got.admitted, len(wireOps))
	}
	if len(got.keys) != len(ref.keys) {
		t.Fatalf("%s: store holds %v, want %v", label, got.keys, ref.keys)
	}
	for i := range ref.keys {
		if got.keys[i] != ref.keys[i] {
			t.Fatalf("%s: store holds %v, want %v", label, got.keys, ref.keys)
		}
	}
}

// TestWireSweep kills the first connection at every byte offset of the
// workload's write and read streams, for both engines, with and without a
// composed mid-workload server crash. Every instance must be
// indistinguishable — responses, final store, admission count — from the
// fault-free run.
func TestWireSweep(t *testing.T) {
	for _, eng := range []repro.EngineKind{repro.EngineIsb, repro.EngineIsbOpt} {
		for _, withCrash := range []bool{false, true} {
			eng, withCrash := eng, withCrash
			name := fmt.Sprintf("engine=%d/crash=%v", eng, withCrash)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				// Fault-free reference fixes the expected answers, the final
				// store, the offset space (bytes on the wire), and — for the
				// crash legs — the access span a mid-workload crash bisects.
				ref := runWire(t, eng, withCrash, 0, chaos.Plan{})
				if ref.admitted != uint64(len(wireOps)) {
					t.Fatalf("reference admitted %d of %d", ref.admitted, len(wireOps))
				}
				crashAt := uint64(0)
				if withCrash {
					crashAt = ref.span / 2
					if crashAt == 0 {
						t.Fatalf("reference run spanned no tracked accesses")
					}
				}
				stride := uint64(1)
				if testing.Short() {
					stride = 13
				}
				for off := uint64(1); off <= ref.wBytes; off += stride {
					got := runWire(t, eng, withCrash, crashAt, chaos.Plan{KillWriteAt: off})
					checkWire(t, fmt.Sprintf("%s kill-write@%d", name, off), got, ref)
				}
				for off := uint64(1); off <= ref.rBytes; off += stride {
					got := runWire(t, eng, withCrash, crashAt, chaos.Plan{KillReadAt: off})
					checkWire(t, fmt.Sprintf("%s kill-read@%d", name, off), got, ref)
				}
			})
		}
	}
}
