package serve

import (
	"fmt"
	"net"
	"sync"
)

// MemListener is an in-process net.Listener over net.Pipe: the transport
// the tests, the crash sweep and the bench serve cells run the real server
// on, so the full frame path is exercised without sockets.
type MemListener struct {
	ch     chan net.Conn
	once   sync.Once
	closed chan struct{}
}

// NewMemListener builds an in-process listener.
func NewMemListener() *MemListener {
	return &MemListener{ch: make(chan net.Conn), closed: make(chan struct{})}
}

// Dial opens a new connection to the listener (blocks until accepted or
// the listener closes).
func (l *MemListener) Dial() (net.Conn, error) {
	c, s := net.Pipe()
	select {
	case l.ch <- s:
		return c, nil
	case <-l.closed:
		return nil, fmt.Errorf("serve: listener closed")
	}
}

// Accept waits for the next Dial.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

// Close unblocks Accept and future Dials.
func (l *MemListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// Addr reports a placeholder address.
func (l *MemListener) Addr() net.Addr { return memAddr{} }
