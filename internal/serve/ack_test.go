package serve_test

import (
	"encoding/json"
	"testing"

	"repro/internal/serve"
)

// TestServeAckKeepsTableFlat is the response-table bound regression: under
// steady resubmit-free traffic, the piggybacked acknowledgement watermark
// must evict answered entries as fast as they are created, so the
// exactly-once table holds only the unacknowledged tail instead of growing
// with every request ever answered.
func TestServeAckKeepsTableFlat(t *testing.T) {
	_, ln := startServer(t, serve.Config{Procs: 2, Batch: 8, HeapWords: 1 << 20})
	c := dial(t, ln, 1)

	const rounds = 4
	const opsPerRound = 128
	// A sequential client settles request k before minting k+1, so the
	// watermark trails by one request and the table never holds more than
	// the in-flight tail (plus the stats request itself, unanswered).
	const flatBound = 4

	total := uint64(0)
	for r := 0; r < rounds; r++ {
		for i := 0; i < opsPerRound; i++ {
			k := uint64(i%64) + 1
			var err error
			switch i % 3 {
			case 0:
				_, err = c.Put(k)
			case 1:
				_, err = c.Get(k)
			default:
				_, err = c.Del(k)
			}
			if err != nil {
				t.Fatalf("round %d op %d: %v", r, i, err)
			}
			total++
		}
		body, err := c.Stats()
		if err != nil {
			t.Fatalf("round %d stats: %v", r, err)
		}
		var st serve.Stats
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("round %d stats body: %v", r, err)
		}
		if st.TableEntries > flatBound {
			t.Fatalf("round %d: table holds %d entries after %d requests, want <= %d (table must stay flat)",
				r, st.TableEntries, total, flatBound)
		}
		if st.Deduped != 0 || st.Retried != 0 {
			t.Fatalf("round %d: deduped=%d retried=%d — traffic was supposed to be resubmit-free",
				r, st.Deduped, st.Retried)
		}
		if st.EvictedEntries < total-flatBound {
			t.Fatalf("round %d: evicted only %d of %d answered entries", r, st.EvictedEntries, total)
		}
	}
}

// TestServeAckDoesNotEvictForeignIDs pins the eviction scoping: an
// acknowledgement watermark names ONE client's sequence range, so another
// client's recorded answers — and caller-chosen IDs outside the
// acknowledging client's range — survive and still dedup.
func TestServeAckDoesNotEvictForeignIDs(t *testing.T) {
	s, ln := startServer(t, serve.Config{Procs: 1, Batch: 4, HeapWords: 1 << 18})
	a := dial(t, ln, 1)
	b := dial(t, ln, 2)

	// Client b answers one put under a caller-chosen ID outside its own
	// sequence space: the client must not settle (and so never ack) an ID
	// it did not mint, so the entry sits in the table indefinitely.
	const bID = 999 // client prefix 0: neither a's (1) nor b's (2)
	if rep, err := b.DoWithID(serve.OpPut, bID, 7); err != nil || rep.Val != 1 {
		t.Fatalf("b's put = val %d, err %v; want 1", rep.Val, err)
	}
	// Client a churns enough traffic to advance its own watermark far past
	// b's sequence numbers.
	for i := 0; i < 32; i++ {
		if _, err := a.Put(uint64(i + 10)); err != nil {
			t.Fatalf("a's put %d: %v", i, err)
		}
	}
	// b's recorded answer must still be there: a resubmit dedups instead
	// of re-executing (re-execution would answer 0 — key 7 now exists).
	if rep, err := b.DoWithID(serve.OpPut, bID, 7); err != nil || rep.Val != 1 {
		t.Fatalf("b's resubmit = val %d, err %v; want recorded 1", rep.Val, err)
	}
	if st := s.Snapshot(); st.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", st.Deduped)
	}
}

// TestServeReconnectHitsResponseTable is the resurrected-client leg of the
// exactly-once protocol: a request answered on one connection, whose reply
// the client may have lost, must be answered from the response table on a
// BRAND NEW connection — and a different client reconnecting must neither
// read nor evict the first client's entries.
func TestServeReconnectHitsResponseTable(t *testing.T) {
	s, ln := startServer(t, serve.Config{Procs: 1, Batch: 4, HeapWords: 1 << 18})

	// Client 1 answers a put, then its connection dies (reply conceivably
	// lost in flight).
	a := dial(t, ln, 1)
	id := a.NextID()
	if rep, err := a.DoWithID(serve.OpPut, id, 7); err != nil || rep.Val != 1 {
		t.Fatalf("put = val %d, err %v; want fresh insert", rep.Val, err)
	}
	a.Close()

	// A foreign client reconnects and churns: its acks name its OWN
	// sequence range only, so client 1's entry survives.
	b := dial(t, ln, 2)
	for i := 0; i < 16; i++ {
		if _, err := b.Put(uint64(100 + i)); err != nil {
			t.Fatalf("b put %d: %v", i, err)
		}
	}
	// The foreign client must not be able to observe a stale answer under
	// ITS resubmission of an ID it never minted... it can read the entry
	// (IDs are the global dedup key) but crucially cannot EVICT it, and
	// never collides with it when sticking to its own minted range.
	if st := s.Snapshot(); st.TableEntries == 0 {
		t.Fatalf("client 1's unacknowledged entry was evicted by client 2's traffic")
	}

	// Client 1 resurrects on a new connection and resubmits the same ID:
	// the answer must come from the table (still val=1 — a re-execution
	// would answer 0, key 7 already present), via dedup, not execution.
	before := s.Snapshot().Deduped
	a2 := dial(t, ln, 1)
	if rep, err := a2.DoWithID(serve.OpPut, id, 7); err != nil || rep.Val != 1 {
		t.Fatalf("resubmit on new conn = val %d, err %v; want recorded 1", rep.Val, err)
	}
	if after := s.Snapshot().Deduped; after != before+1 {
		t.Fatalf("deduped went %d -> %d; resubmitted ID was re-executed", before, after)
	}
}
