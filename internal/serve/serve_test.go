package serve_test

import (
	"encoding/json"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// startServer builds a server over an in-process listener and returns it
// with a dialer for clients.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.MemListener) {
	t.Helper()
	s := serve.New(cfg)
	ln := serve.NewMemListener()
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln
}

func dial(t *testing.T, ln *serve.MemListener, id uint64) *client.Client {
	t.Helper()
	nc, err := ln.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := client.New(nc, id)
	t.Cleanup(c.Close)
	return c
}

// TestServeBasic drives the full frame path end to end: membership
// semantics over the wire plus the stats endpoint.
func TestServeBasic(t *testing.T) {
	_, ln := startServer(t, serve.Config{Procs: 2, Batch: 4, HeapWords: 1 << 18})
	c := dial(t, ln, 1)

	steps := []struct {
		op   string
		key  uint64
		want bool
	}{
		{"put", 7, true}, {"put", 7, false}, {"get", 7, true},
		{"del", 7, true}, {"del", 7, false}, {"get", 7, false},
		{"put", 9, true}, {"get", 9, true},
	}
	for i, st := range steps {
		var got bool
		var err error
		switch st.op {
		case "put":
			got, err = c.Put(st.key)
		case "del":
			got, err = c.Del(st.key)
		default:
			got, err = c.Get(st.key)
		}
		if err != nil {
			t.Fatalf("step %d %s(%d): %v", i, st.op, st.key, err)
		}
		if got != st.want {
			t.Fatalf("step %d %s(%d) = %v, want %v", i, st.op, st.key, got, st.want)
		}
	}

	// Out-of-range requests are rejected, not executed.
	if rep, err := c.DoWithID(serve.OpPut, c.NextID(), 0); err == nil || rep.Status != serve.StErr {
		t.Fatalf("put(0) = status %d, err %v; want StErr", rep.Status, err)
	}

	body, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if st.Queued != uint64(len(steps)) || st.Admitted != st.Queued {
		t.Fatalf("stats queued=%d admitted=%d, want %d/%d", st.Queued, st.Admitted, len(steps), len(steps))
	}
	// Sequential traffic acknowledges each reply on the next request, so
	// by the stats request (which carries the final watermark) every
	// entry has been evicted — the exactly-once table does not grow.
	if st.TableEntries != 0 {
		t.Fatalf("response table holds %d entries, want 0 (all acked)", st.TableEntries)
	}
	if st.EvictedEntries != uint64(len(steps)) {
		t.Fatalf("evicted %d entries, want %d", st.EvictedEntries, len(steps))
	}
	if st.Crashes != 0 || st.Deduped != 0 {
		t.Fatalf("crash-free run reports crashes=%d deduped=%d", st.Crashes, st.Deduped)
	}
	if fill := st.BatchFillMean(); fill <= 0 {
		t.Fatalf("batch fill mean = %v, want > 0", fill)
	}
	if len(st.Conns) != 1 || st.Conns[0].P99Micros <= 0 {
		t.Fatalf("conn stats = %+v, want one conn with latency quantiles", st.Conns)
	}
}

// TestServeBackpressure pins the RETRY protocol: a gated server with a
// tiny queue bounces the overflow, a resubmit with the same request ID
// completes after release, and a resubmit of an answered ID is served
// from the response table without re-executing.
func TestServeBackpressure(t *testing.T) {
	const depth = 2
	s, ln := startServer(t, serve.Config{Procs: 1, Batch: 4, QueueDepth: depth, Gated: true, HeapWords: 1 << 18})
	c := dial(t, ln, 1)

	// Pipeline depth+3 puts. The gate is closed, so the first `depth` sit
	// in the queue and the rest bounce with RETRY.
	ids := make([]uint64, depth+3)
	chs := make([]<-chan serve.Reply, len(ids))
	for i := range ids {
		ids[i] = uint64(100 + i)
		ch, err := c.Send(serve.OpPut, ids[i], uint64(i+1))
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		chs[i] = ch
	}
	for i := depth; i < len(ids); i++ {
		rep := <-chs[i]
		if rep.Status != serve.StRetry {
			t.Fatalf("overflow request %d = status %d, want StRetry", ids[i], rep.Status)
		}
	}

	s.Release()
	for i := 0; i < depth; i++ {
		if rep := <-chs[i]; rep.Status != serve.StOK || rep.Val != 1 {
			t.Fatalf("queued request %d = status %d val %d, want OK/1", ids[i], rep.Status, rep.Val)
		}
	}
	// Resubmit the bounced requests under their original IDs.
	for i := depth; i < len(ids); i++ {
		rep, err := c.DoWithID(serve.OpPut, ids[i], uint64(i+1))
		if err != nil || rep.Val != 1 {
			t.Fatalf("resubmit %d = val %d, err %v; want 1", ids[i], rep.Val, err)
		}
	}
	// Resubmitting an answered ID replays the recorded answer: the key is
	// now present, so re-execution would flip the result to 0.
	rep, err := c.DoWithID(serve.OpPut, ids[0], 1)
	if err != nil || rep.Val != 1 {
		t.Fatalf("dedup replay of %d = val %d, err %v; want recorded 1", ids[0], rep.Val, err)
	}

	st := s.Snapshot()
	if st.Retried < 3 {
		t.Fatalf("retried = %d, want >= 3", st.Retried)
	}
	if st.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", st.Deduped)
	}
}

// TestServeConcurrentStorm hammers a crash-riddled server from several
// connections and audits the recovered store against the responses every
// client observed — the example's invariant, now over the wire.
func TestServeConcurrentStorm(t *testing.T) {
	const (
		conns    = 4
		opsPerC  = 250
		keySpace = 32
	)
	s, ln := startServer(t, serve.Config{
		Procs: 2, Batch: 8, QueueDepth: 16,
		CrashSim: true, CrashEvery: 1500, HeapWords: 1 << 20,
		Engine: repro.EngineIsbOpt,
	})

	net := make([]map[uint64]int, conns)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		net[w] = map[uint64]int{}
		c := dial(t, ln, uint64(w+1))
		wg.Add(1)
		go func(w int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < opsPerC; i++ {
				k := uint64(rng.Intn(keySpace)) + 1
				switch rng.Intn(4) {
				case 0:
					ok, err := c.Put(k)
					if err != nil {
						errs <- err
						return
					}
					if ok {
						net[w][k]++
					}
				case 1:
					ok, err := c.Del(k)
					if err != nil {
						errs <- err
						return
					}
					if ok {
						net[w][k]--
					}
				default:
					if _, err := c.Get(k); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client: %v", err)
	}

	if s.Crashes() == 0 {
		t.Fatalf("storm survived 0 crashes; the harness is not crashing")
	}
	total := map[uint64]int{}
	for _, m := range net {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range s.Store().Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keySpace; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			t.Errorf("key %d: net updates %d, present %v", k, total[k], present[k])
		}
	}
	st := s.Snapshot()
	if st.Queued != conns*opsPerC {
		t.Fatalf("queued = %d, want %d", st.Queued, conns*opsPerC)
	}
	t.Logf("storm: %d crashes, %d from-report replies, batch fill %.2f",
		st.Crashes, st.FromReport, st.BatchFillMean())
}

// TestServeStatsDuringCrashStorm hammers the stats path (direct Snapshot
// and the in-band OpStats frame) concurrently with a crash storm: stats
// must never interfere with the recovery rendezvous. The deterministic
// lock-order pin is TestSnapshotDuringRecoveryLockOrder (whitebox); this
// is the end-to-end smoke over the wire.
func TestServeStatsDuringCrashStorm(t *testing.T) {
	s, ln := startServer(t, serve.Config{
		Procs: 2, Batch: 8, QueueDepth: 16,
		CrashSim: true, CrashEvery: 400, HeapWords: 1 << 20,
	})
	c := dial(t, ln, 1)
	sc := dial(t, ln, 2)

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Snapshot() // direct snapshot: the tightest possible race
			if _, err := sc.Stats(); err != nil {
				return // connection torn down at test end
			}
		}
	}()

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 400; i++ {
			if _, err := c.Put(uint64(i%32) + 1); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("traffic under stats polling: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("traffic stalled while stats were polled through crash recovery (lock-order deadlock)")
	}
	close(stop)
	pollers.Wait()
	if s.Crashes() == 0 {
		t.Fatal("storm fired no crashes; the race was never exercised")
	}
}

// TestServeSlowReaderDoesNotStallWorkers pins the reply/worker decoupling:
// a connection that pipelines requests but never reads replies overflows
// its bounded outbox and is disconnected, while a well-behaved client on
// the SAME Proc keeps completing operations. Pre-fix, the Proc worker
// blocked inside the stalled connection's reply write, halting every
// connection pinned to it (and, under crashes, the whole recovery
// rendezvous).
func TestServeSlowReaderDoesNotStallWorkers(t *testing.T) {
	_, ln := startServer(t, serve.Config{
		Procs: 1, Batch: 4, QueueDepth: 4, HeapWords: 1 << 18,
	})
	good := dial(t, ln, 1)
	if ok, err := good.Put(1); err != nil || !ok {
		t.Fatalf("warm-up put = %v, %v", ok, err)
	}

	// A raw connection that writes requests and never reads a reply.
	nc, err := ln.Dial()
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	defer nc.Close()
	var sendErr error
	for i := 0; i < 500 && sendErr == nil; i++ {
		req := serve.Request{Op: serve.OpPut, ReqID: uint64(1000 + i), Key: uint64(i%8) + 1}
		sendErr = serve.WriteFrame(nc, serve.EncodeRequest(req))
	}
	if sendErr == nil {
		t.Fatal("server never disconnected the non-reading connection")
	}

	// The worker is free: the well-behaved neighbour still completes.
	done := make(chan error, 1)
	go func() {
		for k := uint64(10); k < 20; k++ {
			if _, err := good.Put(k); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("well-behaved client after slow-reader teardown: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("worker stalled behind the non-reading connection's replies")
	}
}

// TestServeCloseDuringCrash pins shutdown while a crash is in flight: the
// workers must still run the recovery rendezvous so Close returns and the
// store is auditable.
func TestServeCloseDuringCrash(t *testing.T) {
	s, ln := startServer(t, serve.Config{
		Procs: 2, Batch: 4, CrashSim: true, HeapWords: 1 << 18,
	})
	c := dial(t, ln, 1)
	for k := uint64(1); k <= 4; k++ {
		if _, err := c.Put(k); err != nil {
			t.Fatalf("put(%d): %v", k, err)
		}
	}
	s.Runtime().Crash()
	for !s.Runtime().Crashing() {
		runtime.Gosched()
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return while a crash was in flight")
	}
	if got := len(s.Store().Keys()); got != 4 {
		t.Fatalf("store holds %d keys after close-through-crash, want 4", got)
	}
}
