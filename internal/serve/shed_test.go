package serve_test

import (
	"testing"
	"time"

	"repro/internal/serve"
)

// TestServeShedWatermark pins the OVERLOAD protocol: with the workers
// gated, enqueues past the aggregate watermark are answered StShed (not
// StRetry, not queued), nothing is recorded for a shed ID, and after the
// gate opens the same ID resubmits and executes normally.
func TestServeShedWatermark(t *testing.T) {
	srv, ln := startServer(t, serve.Config{
		Procs: 1, Batch: 4, QueueDepth: 4, HeapWords: 1 << 18,
		Gated: true, ShedWatermark: 0.5,
	})
	c := dial(t, ln, 1)

	// With one connection and QueueDepth 4, the shed threshold is
	// totalQueued >= 2. Pipeline two enqueues, then a third: it must shed.
	id1, id2, id3 := c.NextID(), c.NextID(), c.NextID()
	ch1, err1 := c.Send(serve.OpPut, id1, 11)
	ch2, err2 := c.Send(serve.OpPut, id2, 12)
	if err1 != nil || err2 != nil {
		t.Fatalf("sends: %v, %v", err1, err2)
	}
	// The first two are queued asynchronously; wait until the server
	// really holds both before probing the watermark.
	deadline := time.After(5 * time.Second)
	for srv.Snapshot().Queued < 2 {
		select {
		case <-deadline:
			t.Fatal("enqueues never landed")
		case <-time.After(time.Millisecond):
		}
	}
	ch3, err := c.Send(serve.OpPut, id3, 13)
	if err != nil {
		t.Fatalf("send 3: %v", err)
	}
	rep := <-ch3
	if rep.Status != serve.StShed {
		t.Fatalf("third enqueue = status %d, want StShed", rep.Status)
	}
	if got := srv.Snapshot().Sheds; got == 0 {
		t.Fatalf("Sheds = %d, want > 0", got)
	}

	srv.Release()
	if rep := <-ch1; rep.Status != serve.StOK || rep.Val != 1 {
		t.Fatalf("queued put 1 = %+v", rep)
	}
	if rep := <-ch2; rep.Status != serve.StOK || rep.Val != 1 {
		t.Fatalf("queued put 2 = %+v", rep)
	}
	// The shed ID stayed fresh: resubmitting it executes (fresh insert),
	// not a table replay of some bounced state.
	rep, err = c.DoWithID(serve.OpPut, id3, 13)
	if err != nil || rep.Val != 1 {
		t.Fatalf("resubmitted shed ID = %+v, %v; want fresh insert", rep, err)
	}
}

// TestServeShedDisabledByDefault pins that a zero watermark never sheds:
// the queue-full path still answers RETRY exactly as before.
func TestServeShedDisabledByDefault(t *testing.T) {
	srv, ln := startServer(t, serve.Config{
		Procs: 1, Batch: 4, QueueDepth: 2, HeapWords: 1 << 18, Gated: true,
	})
	c := dial(t, ln, 1)
	var chs []<-chan serve.Reply
	for i := 0; i < 2; i++ {
		ch, err := c.Send(serve.OpPut, c.NextID(), uint64(21+i))
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		chs = append(chs, ch)
	}
	deadline := time.After(5 * time.Second)
	for srv.Snapshot().Queued < 2 {
		select {
		case <-deadline:
			t.Fatal("enqueues never landed")
		case <-time.After(time.Millisecond):
		}
	}
	ch, err := c.Send(serve.OpPut, c.NextID(), 23)
	if err != nil {
		t.Fatalf("overflow send: %v", err)
	}
	if rep := <-ch; rep.Status != serve.StRetry {
		t.Fatalf("overflow with no watermark = status %d, want StRetry", rep.Status)
	}
	srv.Release()
	for _, ch := range chs {
		<-ch
	}
}

// TestServeIdleTimeout pins the idle reaper: a connection that goes quiet
// past Config.IdleTimeout is disconnected (and counted), while its
// exactly-once table entries survive for a reconnecting client.
func TestServeIdleTimeout(t *testing.T) {
	srv, ln := startServer(t, serve.Config{
		Procs: 1, Batch: 4, HeapWords: 1 << 18, IdleTimeout: 50 * time.Millisecond,
	})
	nc, err := ln.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	id := uint64(1)<<24 | 1 // client 1, seq 1
	if err := serve.WriteFrame(nc, serve.EncodeRequest(serve.Request{Op: serve.OpPut, ReqID: id, Key: 31})); err != nil {
		t.Fatalf("write: %v", err)
	}
	payload, err := serve.ReadFrame(nc)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	rep, err := serve.DecodeReply(payload)
	if err != nil || rep.Status != serve.StOK || rep.Val != 1 {
		t.Fatalf("put reply = %+v, %v", rep, err)
	}

	// Go quiet: the server must hang up on us.
	if _, err := serve.ReadFrame(nc); err == nil {
		t.Fatal("idle connection was never closed")
	}
	snap := srv.Snapshot()
	if snap.IdleClosed == 0 || snap.Disconnects == 0 {
		t.Fatalf("idle close not counted: %+v", snap)
	}

	// A reconnect replays the answered ID from the table — the idle close
	// evicted the connection, not the exactly-once state.
	c := dial(t, ln, 1)
	rep, err = c.DoWithID(serve.OpPut, id, 31)
	if err != nil || rep.Val != 1 {
		t.Fatalf("resubmit after idle close = %+v, %v; want table replay of fresh-insert", rep, err)
	}
	if srv.Snapshot().Deduped == 0 {
		t.Fatal("resubmitted ID was re-executed, not deduped")
	}
}
