package serve

import (
	"testing"
	"time"

	"repro"
)

// TestTakeLockedFairness pins the round-robin admission composition: one
// request per connection per pass, so a connection with a deep queue
// cannot crowd its neighbours out of a window.
func TestTakeLockedFairness(t *testing.T) {
	s := New(Config{Procs: 1, Batch: 4, QueueDepth: 64, Gated: true})
	defer s.Close()

	c1 := &conn{s: s, id: 1, proc: 0}
	c2 := &conn{s: s, id: 2, proc: 0}
	s.mu.Lock()
	s.procConns[0] = []*conn{c1, c2}
	for i := 0; i < 10; i++ {
		c1.q = append(c1.q, pendingReq{c: c1, req: Request{Op: OpGet, ReqID: uint64(100 + i), Key: 1}, enq: time.Now()})
	}
	for i := 0; i < 3; i++ {
		c2.q = append(c2.q, pendingReq{c: c2, req: Request{Op: OpGet, ReqID: uint64(200 + i), Key: 1}, enq: time.Now()})
	}

	batch := s.takeLocked(0)
	if len(batch) != 4 {
		s.mu.Unlock()
		t.Fatalf("window drained %d requests, want 4", len(batch))
	}
	// Depth-major round robin: c1[0], c2[0], c1[1], c2[1].
	want := []uint64{100, 200, 101, 201}
	for i, pr := range batch {
		if pr.req.ReqID != want[i] {
			s.mu.Unlock()
			t.Fatalf("slot %d admitted request %d, want %d", i, pr.req.ReqID, want[i])
		}
	}
	if len(c1.q) != 8 || len(c2.q) != 1 {
		s.mu.Unlock()
		t.Fatalf("residual queues %d/%d, want 8/1", len(c1.q), len(c2.q))
	}

	// The cursor rotates: the next window opens its first pass at c2.
	batch = s.takeLocked(0)
	if got := batch[0].req.ReqID; got != 202 {
		s.mu.Unlock()
		t.Fatalf("second window opened with request %d, want 202 (cursor rotation)", got)
	}
	// c2 is drained after its last request; the remainder comes from c1.
	if len(batch) != 4 || batch[1].req.ReqID != 102 || batch[3].req.ReqID != 104 {
		s.mu.Unlock()
		t.Fatalf("second window = %v, want [202 102 103 104]", reqIDs(batch))
	}
	if pm := s.procM[0]; pm.Windows != 2 || pm.Admitted != 8 || pm.BatchFill[4] != 2 {
		s.mu.Unlock()
		t.Fatalf("proc stats windows=%d admitted=%d fill[4]=%d, want 2/8/2", pm.Windows, pm.Admitted, pm.BatchFill[4])
	}
	// Detach the synthetic conns (no sockets) before Close tears down.
	s.procConns[0] = nil
	s.mu.Unlock()
}

// TestSnapshotDuringRecoveryLockOrder deterministically pins the lock
// order between Snapshot and crash recovery. Recovery runs OnRecover while
// holding the crash group's lock and then takes the server's; Snapshot
// must therefore never reach for the group's lock while holding the
// server's. The test wraps OnRecover to run a Snapshot to completion at
// exactly that point: pre-fix (Snapshot called group.Crashes() under
// s.mu), the Snapshot wedges against the held group lock and the timeout
// trips; post-fix it completes from the mirrored crash counter.
func TestSnapshotDuringRecoveryLockOrder(t *testing.T) {
	s := New(Config{
		Procs: 1, Shards: 4, Batch: 4, QueueDepth: 8,
		CrashSim: true, HeapWords: 1 << 16, Gated: true,
	})
	defer s.Close()

	// A synthetic connection: replies pile into the outbox, no sockets.
	c := &conn{s: s, id: 1, proc: 0, out: make(chan Reply, 64)}
	s.mu.Lock()
	s.procConns[0] = []*conn{c}
	s.mu.Unlock()
	for i := uint64(0); i < 3; i++ {
		s.handle(c, Request{Op: OpPut, ReqID: 100 + i, Key: i + 1})
	}

	inner := s.group.OnRecover // s.onRecover
	verdict := make(chan bool, 1)
	s.group.OnRecover = func(reps []repro.ProcReport) {
		// The group lock is held here. A Snapshot must still complete.
		snapped := make(chan struct{})
		go func() { s.Snapshot(); close(snapped) }()
		select {
		case <-snapped:
			verdict <- true
			inner(reps)
		case <-time.After(2 * time.Second):
			// Snapshot is wedged on the group lock while holding s.mu;
			// calling inner (which takes s.mu) would deadlock the worker
			// forever, so skip it and just release the group.
			verdict <- false
		}
	}

	// Crash a few accesses into the gated window; the lone worker parks
	// and runs the recovery — and our wrapped hook — itself.
	s.Runtime().ScheduleCrash(5)
	s.Release()

	select {
	case ok := <-verdict:
		if !ok {
			t.Fatal("Snapshot deadlocked against a crash recovery holding the group lock")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("crash recovery never ran")
	}
	// With the lock order intact, the window still completes: all three
	// requests are answered through recovery.
	for i := 0; i < 3; i++ {
		select {
		case rep := <-c.out:
			if rep.Status != StOK {
				t.Fatalf("reply %d: status %d, want StOK", i, rep.Status)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("reply %d never arrived after recovery", i)
		}
	}
	if got := s.Snapshot().Crashes; got != 1 {
		t.Fatalf("snapshot crashes = %d, want 1", got)
	}
}

func reqIDs(batch []pendingReq) []uint64 {
	ids := make([]uint64, len(batch))
	for i, pr := range batch {
		ids[i] = pr.req.ReqID
	}
	return ids
}
