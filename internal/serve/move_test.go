package serve_test

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
)

// rawPipe is a frame-level pipe: the MOVE sweep drives Request fields the
// high-level client API abstracts away (Key2, caller-chosen IDs) and
// matches pipelined replies itself.
type rawPipe struct {
	nc net.Conn
}

func dialRaw(t *testing.T, ln *serve.MemListener) *rawPipe {
	t.Helper()
	nc, err := ln.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawPipe{nc: nc}
}

func (c *rawPipe) send(req serve.Request) error {
	return serve.WriteFrame(c.nc, serve.EncodeRequest(req))
}

func (c *rawPipe) recv(t *testing.T) serve.Reply {
	t.Helper()
	type res struct {
		rep serve.Reply
		err error
	}
	ch := make(chan res, 1)
	go func() {
		payload, err := serve.ReadFrame(c.nc)
		if err != nil {
			ch <- res{err: err}
			return
		}
		rep, err := serve.DecodeReply(payload)
		ch <- res{rep: rep, err: err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("recv: %v", r.err)
		}
		return r.rep
	case <-time.After(20 * time.Second):
		t.Fatal("recv: no reply")
		return serve.Reply{}
	}
}

// The MOVE sweep's fixed pipeline on one connection: a setup put, two
// moves (source present; source absent), and membership probes. MOVE
// admits alone, so the admission sequence is deterministic under a gated
// server: [put] [move] [move] [get get get].
var moveReqs = []struct {
	op         byte
	reqID      uint64
	key, key2  uint64
	want       uint64
	flipIfRuns uint64 // what a re-EXECUTION would answer; != want guards dedup
}{
	{serve.OpPut, 201, 5, 0, 1, 0},
	{serve.OpMove, 202, 5, 9, 3, 2}, // 5 present -> deleted; 9 fresh -> inserted
	{serve.OpMove, 203, 7, 2, 2, 2}, // 7 absent; 2 fresh -> inserted
	{serve.OpGet, 204, 5, 0, 0, 0},
	{serve.OpGet, 205, 9, 0, 1, 1},
	{serve.OpGet, 206, 2, 0, 1, 1},
}

var moveKeys = map[uint64]bool{9: true, 2: true}

// moveInstance runs the fixed MOVE pipeline on a fresh gated server,
// crashing at access offset off past the gate (0 = crash-free).
func moveInstance(t *testing.T, eng repro.EngineKind, off uint64) (*serve.Server, *rawPipe, []uint64, uint64) {
	t.Helper()
	s, ln := startServer(t, sweepConfig(eng))
	c := dialRaw(t, ln)

	for i, r := range moveReqs {
		if err := c.send(serve.Request{Op: r.op, ReqID: r.reqID, Key: r.key, Key2: r.key2}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for s.Snapshot().Queued < uint64(len(moveReqs)) {
		runtime.Gosched()
	}
	start := s.Runtime().Heap().AccessCount()
	if off > 0 {
		s.Runtime().ScheduleCrash(off)
	}
	s.Release()

	vals := make([]uint64, len(moveReqs))
	for range moveReqs {
		rep := c.recv(t)
		if rep.Status != serve.StOK {
			t.Fatalf("request %d: status %d, want StOK", rep.ReqID, rep.Status)
		}
		i := int(rep.ReqID - moveReqs[0].reqID)
		vals[i] = rep.Val
	}
	return s, c, vals, s.Runtime().Heap().AccessCount() - start
}

func checkMoveState(t *testing.T, s *serve.Server, vals []uint64, label string) {
	t.Helper()
	for i, r := range moveReqs {
		if vals[i] != r.want {
			t.Fatalf("%s: request %d (id %d) answered %d, want %d", label, i, r.reqID, vals[i], r.want)
		}
	}
	keys := s.Store().Keys()
	if len(keys) != len(moveKeys) {
		t.Fatalf("%s: store holds %v, want keys of %v", label, keys, moveKeys)
	}
	for _, k := range keys {
		if !moveKeys[k] {
			t.Fatalf("%s: store holds stray key %d", label, k)
		}
	}
}

// TestServeMoveCrashSweep kills and reboots the store at EVERY access
// offset of the MOVE pipeline — the setup window, both two-leg
// transactions (including their announcement, first leg, commit point and
// second leg), and the read window — for both engine placements. At each
// offset the client must observe exactly the crash-free responses and the
// recovered store exactly the crash-free keys (a torn move would leave the
// source deleted without the destination, caught here), and resubmitting
// both MOVE IDs must replay the recorded packed answers without touching
// the store.
func TestServeMoveCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is exhaustive; skipped in -short")
	}
	for _, eng := range []struct {
		name string
		kind repro.EngineKind
	}{{"isb", repro.EngineIsb}, {"isb-opt", repro.EngineIsbOpt}} {
		t.Run(eng.name, func(t *testing.T) {
			s, _, vals, total := moveInstance(t, eng.kind, 0)
			checkMoveState(t, s, vals, "reference")
			if got := s.Crashes(); got != 0 {
				t.Fatalf("reference run crashed %d times", got)
			}
			if st := s.Snapshot(); st.Procs[0].Moves != 2 {
				t.Fatalf("reference run admitted %d MOVE windows, want 2", st.Procs[0].Moves)
			}
			s.Close()
			if total == 0 {
				t.Fatal("reference run performed no tracked accesses")
			}
			t.Logf("sweeping %d access offsets", total)

			for off := uint64(1); off <= total; off++ {
				s, c, vals, _ := moveInstance(t, eng.kind, off)
				label := "offset " + itoa(off)
				checkMoveState(t, s, vals, label)
				if got := s.Crashes(); got != 1 {
					t.Fatalf("%s: %d crashes, want exactly 1", label, got)
				}
				// Duplicate resubmits of both transactions: recorded packed
				// answers, no re-execution (202's re-execution would answer
				// 2, not 3: key 5 is gone).
				for _, i := range []int{1, 2} {
					r := moveReqs[i]
					if err := c.send(serve.Request{Op: r.op, ReqID: r.reqID, Key: r.key, Key2: r.key2}); err != nil {
						t.Fatalf("%s: resubmit send: %v", label, err)
					}
					rep := c.recv(t)
					if rep.Status != serve.StOK || rep.Val != r.want {
						t.Fatalf("%s: resubmit of id %d answered status %d val %d, want OK/%d",
							label, r.reqID, rep.Status, rep.Val, r.want)
					}
				}
				checkMoveState(t, s, vals, label+" after resubmit")
				if st := s.Snapshot(); st.Deduped != 2 {
					t.Fatalf("%s: deduped = %d, want 2", label, st.Deduped)
				}
				s.Close()
			}
		})
	}
}
