// Package serve is the network front-end over the detectably recoverable
// store: a KV server speaking length-prefixed binary frames that
// multiplexes many client connections onto the Runtime's fixed Proc pool.
//
// Each connection is pinned to one Proc; a Proc drains up to Config.Batch
// queued requests — round-robin across its connections for fairness — into
// one Runtime.ApplyWindow, so concurrent connections amortize psyncs
// exactly as the batch admission protocol measures. A full per-connection
// queue answers with an explicit RETRY frame (backpressure; the client
// resubmits), and every request carries a client-chosen 32-bit request ID
// that rides the durable batch announcement's Arg (see PackArg and
// repro.HashMap.SetArgMask): after a crash, reboot is Restart plus ONE
// RecoverAll, pending requests are answered from the report's batch
// entries, and a resubmitted request ID is answered from the server's
// response table instead of re-executed — client-visible exactly-once.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Request op codes.
const (
	// OpPut inserts Key; the reply's Val is 1 if the key was absent.
	OpPut byte = 1
	// OpDel deletes Key; the reply's Val is 1 if the key was present.
	OpDel byte = 2
	// OpGet reports membership of Key (zero-persist read path).
	OpGet byte = 3
	// OpStats requests a stats snapshot; the reply carries JSON in Body.
	OpStats byte = 4
	// OpMove atomically moves membership from Key to Key2 as one
	// two-leg transaction (delete Key, insert Key2) with a single durable
	// commit point: no crash can leave the delete applied without the
	// insert once recovery completes. The reply's Val packs both leg
	// results: bit 0 set if Key was present (deleted), bit 1 set if Key2
	// was newly inserted. MOVE admits alone, never inside a batch window.
	OpMove byte = 5
)

// Reply status codes.
const (
	// StOK: the operation executed (or was answered from the durable
	// report/response table); Val carries its boolean result.
	StOK byte = 0
	// StRetry: backpressure — the connection's admission queue is full, or
	// the same request ID is already queued. Resubmit with the SAME
	// request ID after a short delay; the ID makes the retry idempotent.
	StRetry byte = 1
	// StErr: malformed frame or out-of-range op/key/request ID.
	StErr byte = 2
	// StShed: graceful overload shedding — the server's aggregate admission
	// queues are saturated past Config.ShedWatermark. Unlike StRetry (a
	// transient per-connection bounce: resubmit soon), StShed means the
	// whole server is overloaded: back off for longer before resubmitting
	// with the SAME request ID. Nothing was recorded; the ID stays fresh.
	StShed byte = 3
)

// KeyBits is the width of the key space: the low half of the announced
// Arg. Keys are 1..MaxKey; the 32 bits above them carry the request ID.
const KeyBits = 32

// MaxKey is the largest storable key (and the arg mask the server installs
// with repro.HashMap.SetArgMask).
const MaxKey = uint64(1)<<KeyBits - 1

// MaxReqID bounds client request IDs to the Arg's high half.
const MaxReqID = uint64(1)<<(64-KeyBits) - 1

// SeqBits splits the 32-bit request-ID space: the low SeqBits are a
// client's own sequence numbers, the bits above carry its client ID. The
// split is part of the wire contract because the acknowledgement
// watermark (Request.Ack) names "every sequence number of this client up
// to and including this one" — the server evicts the acknowledged
// entries from its exactly-once response table by walking that range.
const SeqBits = 24

// MaxSeq is the largest per-client sequence number.
const MaxSeq = uint64(1)<<SeqBits - 1

// SplitID splits a request ID into its client prefix and sequence number.
func SplitID(reqID uint64) (client, seq uint64) { return reqID >> SeqBits, reqID & MaxSeq }

// PackArg packs a request ID and a key into one announcement Arg: the
// durable identity a recovered operation is matched and answered by.
func PackArg(reqID, key uint64) uint64 { return reqID<<KeyBits | key }

// SplitArg recovers the request ID and key from an announced Arg.
func SplitArg(arg uint64) (reqID, key uint64) { return arg >> KeyBits, arg & MaxKey }

// reqWire/replyWire are the fixed frame payload sizes (an op/status byte
// plus big-endian uint64s); a stats reply appends its JSON body.
const (
	reqWire   = 1 + 8 + 8 + 8 + 8
	replyWire = 1 + 8 + 8
)

// MaxFrame bounds a frame payload (a stats body is the only variable part).
const MaxFrame = 1 << 20

// Request is one client->server frame. Key2 is the move destination,
// zero for every other op. Ack piggybacks the client's acknowledged-reply
// high-watermark (a full request ID whose sequence part is the highest
// CONTIGUOUSLY settled sequence of that client; zero acknowledges
// nothing): the server drops response-table entries at or below it, which
// is what keeps the exactly-once table flat under steady traffic.
type Request struct {
	Op    byte
	ReqID uint64
	Key   uint64
	Key2  uint64
	Ack   uint64
}

// Reply is one server->client frame. Body is non-nil only for OpStats.
type Reply struct {
	Status byte
	ReqID  uint64
	Val    uint64
	Body   []byte
}

// EncodeRequest renders a request payload.
func EncodeRequest(r Request) []byte {
	b := make([]byte, reqWire)
	b[0] = r.Op
	binary.BigEndian.PutUint64(b[1:], r.ReqID)
	binary.BigEndian.PutUint64(b[9:], r.Key)
	binary.BigEndian.PutUint64(b[17:], r.Key2)
	binary.BigEndian.PutUint64(b[25:], r.Ack)
	return b
}

// DecodeRequest parses a request payload.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) != reqWire {
		return Request{}, fmt.Errorf("serve: request frame is %d bytes, want %d", len(b), reqWire)
	}
	return Request{
		Op:    b[0],
		ReqID: binary.BigEndian.Uint64(b[1:]),
		Key:   binary.BigEndian.Uint64(b[9:]),
		Key2:  binary.BigEndian.Uint64(b[17:]),
		Ack:   binary.BigEndian.Uint64(b[25:]),
	}, nil
}

// EncodeReply renders a reply payload.
func EncodeReply(r Reply) []byte {
	b := make([]byte, replyWire+len(r.Body))
	b[0] = r.Status
	binary.BigEndian.PutUint64(b[1:], r.ReqID)
	binary.BigEndian.PutUint64(b[9:], r.Val)
	copy(b[replyWire:], r.Body)
	return b
}

// DecodeReply parses a reply payload.
func DecodeReply(b []byte) (Reply, error) {
	if len(b) < replyWire {
		return Reply{}, fmt.Errorf("serve: reply frame is %d bytes, want >= %d", len(b), replyWire)
	}
	r := Reply{Status: b[0], ReqID: binary.BigEndian.Uint64(b[1:]), Val: binary.BigEndian.Uint64(b[9:])}
	if len(b) > replyWire {
		r.Body = append([]byte(nil), b[replyWire:]...)
	}
	return r, nil
}

// WriteFrame writes one length-prefixed frame (4-byte big-endian length,
// then the payload).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("serve: frame length %d exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		// A stream that ends after the length prefix is a torn frame, not a
		// clean end-of-stream: io.ReadFull reports EOF when zero payload
		// bytes arrive, which would be indistinguishable from the
		// between-frames EOF a closing peer produces.
		if err == io.EOF && n > 0 {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
