package serve_test

import (
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// The sweep's fixed window: six requests on one connection, small enough
// to admit as a single ApplyWindow (Batch=8) so the access sequence is
// deterministic, with responses that exercise both boolean outcomes.
var sweepReqs = []struct {
	op    byte
	reqID uint64
	key   uint64
	want  uint64
}{
	{serve.OpPut, 101, 1, 1},
	{serve.OpPut, 102, 2, 1},
	{serve.OpPut, 103, 1, 0},
	{serve.OpDel, 104, 1, 1},
	{serve.OpGet, 105, 1, 0},
	{serve.OpPut, 106, 3, 1},
}

var sweepKeys = map[uint64]bool{2: true, 3: true}

func sweepConfig(eng repro.EngineKind) serve.Config {
	return serve.Config{
		Procs: 2, Shards: 4, Batch: 8, QueueDepth: 16,
		CrashSim: true, HeapWords: 1 << 16, Engine: eng, Gated: true,
	}
}

func recvReply(t *testing.T, ch <-chan serve.Reply, what string) serve.Reply {
	t.Helper()
	select {
	case rep, ok := <-ch:
		if !ok {
			t.Fatalf("%s: connection died", what)
		}
		return rep
	case <-time.After(20 * time.Second):
		t.Fatalf("%s: no reply", what)
		return serve.Reply{}
	}
}

// sweepInstance runs the fixed window on a fresh gated server, crashing
// at access offset `off` past the gate (0 = crash-free), and returns the
// server (still open; caller closes), the client, the observed reply
// values, and the access span of the run.
func sweepInstance(t *testing.T, eng repro.EngineKind, off uint64) (*serve.Server, *client.Client, []uint64, uint64) {
	t.Helper()
	s, ln := startServer(t, sweepConfig(eng))
	c := dial(t, ln, 1)

	chs := make([]<-chan serve.Reply, len(sweepReqs))
	for i, r := range sweepReqs {
		ch, err := c.Send(r.op, r.reqID, r.key)
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		chs[i] = ch
	}
	for s.Snapshot().Queued < uint64(len(sweepReqs)) {
		runtime.Gosched()
	}
	start := s.Runtime().Heap().AccessCount()
	if off > 0 {
		s.Runtime().ScheduleCrash(off)
	}
	s.Release()

	vals := make([]uint64, len(sweepReqs))
	for i, ch := range chs {
		rep := recvReply(t, ch, "sweep reply")
		if rep.Status != serve.StOK || rep.ReqID != sweepReqs[i].reqID {
			t.Fatalf("request %d: status %d reqID %d, want OK/%d",
				i, rep.Status, rep.ReqID, sweepReqs[i].reqID)
		}
		vals[i] = rep.Val
	}
	return s, c, vals, s.Runtime().Heap().AccessCount() - start
}

func checkSweepState(t *testing.T, s *serve.Server, vals []uint64, label string) {
	t.Helper()
	for i, r := range sweepReqs {
		if vals[i] != r.want {
			t.Fatalf("%s: request %d (id %d) answered %d, want %d", label, i, r.reqID, vals[i], r.want)
		}
	}
	keys := s.Store().Keys()
	if len(keys) != len(sweepKeys) {
		t.Fatalf("%s: store holds %v, want keys of %v", label, keys, sweepKeys)
	}
	for _, k := range keys {
		if !sweepKeys[k] {
			t.Fatalf("%s: store holds stray key %d", label, k)
		}
	}
}

// TestServeCrashSweep kills and reboots the store at EVERY access offset
// of the serve path's admission window, for both engine placements. At
// each offset the client must observe exactly the crash-free responses,
// the recovered store must hold exactly the crash-free keys, and a
// duplicate resubmit must be answered from the response table without
// perturbing either.
func TestServeCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is exhaustive; skipped in -short")
	}
	for _, eng := range []struct {
		name string
		kind repro.EngineKind
	}{{"isb", repro.EngineIsb}, {"isb-opt", repro.EngineIsbOpt}} {
		t.Run(eng.name, func(t *testing.T) {
			// Crash-free reference run: fixes the expected responses and
			// the access span the sweep walks.
			s, _, vals, total := sweepInstance(t, eng.kind, 0)
			checkSweepState(t, s, vals, "reference")
			if got := s.Crashes(); got != 0 {
				t.Fatalf("reference run crashed %d times", got)
			}
			s.Close()
			if total == 0 {
				t.Fatal("reference run performed no tracked accesses")
			}
			t.Logf("sweeping %d access offsets", total)

			for off := uint64(1); off <= total; off++ {
				s, c, vals, _ := sweepInstance(t, eng.kind, off)
				label := "offset " + itoa(off)
				checkSweepState(t, s, vals, label)
				if got := s.Crashes(); got != 1 {
					t.Fatalf("%s: %d crashes, want exactly 1", label, got)
				}
				// Duplicate resubmits: one whose re-execution would flip
				// the answer (106: key 3 now present) and one whose
				// re-execution would corrupt the store (104: deleting the
				// re-inserted key 1... which must not exist to re-delete).
				for _, i := range []int{5, 3} {
					r := sweepReqs[i]
					rep, err := c.DoWithID(r.op, r.reqID, r.key)
					if err != nil || rep.Val != r.want {
						t.Fatalf("%s: resubmit of id %d answered %d (err %v), want recorded %d",
							label, r.reqID, rep.Val, err, r.want)
					}
				}
				checkSweepState(t, s, vals, label+" after resubmit")
				if st := s.Snapshot(); st.Deduped != 2 {
					t.Fatalf("%s: deduped = %d, want 2", label, st.Deduped)
				}
				s.Close()
			}
		})
	}
}

// TestServeExactlyOnceResubmit is the dedicated exactly-once pin: after a
// mid-window crash, every request ID is resubmitted twice and must be
// answered from the response table — identical responses, store
// untouched, no re-execution.
func TestServeExactlyOnceResubmit(t *testing.T) {
	for _, eng := range []struct {
		name string
		kind repro.EngineKind
	}{{"isb", repro.EngineIsb}, {"isb-opt", repro.EngineIsbOpt}} {
		t.Run(eng.name, func(t *testing.T) {
			s, _, vals, total := sweepInstance(t, eng.kind, 0)
			checkSweepState(t, s, vals, "reference")
			s.Close()

			// A handful of offsets spread across the span (the full sweep
			// lives in TestServeCrashSweep).
			offs := []uint64{1, total / 4, total / 2, 3 * total / 4, total}
			for _, off := range offs {
				if off == 0 {
					continue
				}
				s, c, vals, _ := sweepInstance(t, eng.kind, off)
				label := "offset " + itoa(off)
				checkSweepState(t, s, vals, label)
				for round := 0; round < 2; round++ {
					for _, r := range sweepReqs {
						rep, err := c.DoWithID(r.op, r.reqID, r.key)
						if err != nil || rep.Val != r.want {
							t.Fatalf("%s: resubmit round %d of id %d answered %d (err %v), want %d",
								label, round, r.reqID, rep.Val, err, r.want)
						}
					}
				}
				checkSweepState(t, s, vals, label+" after resubmits")
				st := s.Snapshot()
				if st.Deduped != uint64(2*len(sweepReqs)) {
					t.Fatalf("%s: deduped = %d, want %d", label, st.Deduped, 2*len(sweepReqs))
				}
				// Every reply past the crash-free prefix was either served
				// from the report or re-executed as provably-no-effect;
				// either way the admission counters stay exact.
				if st.Queued != uint64(len(sweepReqs)) {
					t.Fatalf("%s: queued = %d, want %d (resubmits must not re-enqueue)", label, st.Queued, len(sweepReqs))
				}
				s.Close()
			}
		})
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
