package serve_test

import (
	"bytes"
	"testing"

	"repro/internal/serve"
)

// FuzzProto fuzzes the frame codec: DecodeRequest/DecodeReply must never
// panic on arbitrary bytes and must round-trip exactly through their
// encoders whenever they accept, and ReadFrame must reject or read —
// never panic — whatever the bytes claim about their length prefix. The
// seed corpus doubles as a codec smoke test under plain `go test`.
func FuzzProto(f *testing.F) {
	f.Add([]byte{})
	f.Add(serve.EncodeRequest(serve.Request{Op: serve.OpPut, ReqID: 42, Key: 7}))
	f.Add(serve.EncodeRequest(serve.Request{Op: serve.OpMove, ReqID: 1<<32 - 1, Key: 5, Key2: 9, Ack: 41}))
	f.Add(serve.EncodeReply(serve.Reply{Status: serve.StOK, ReqID: 42, Val: 3}))
	f.Add(serve.EncodeReply(serve.Reply{Status: serve.StErr, ReqID: 1, Val: 0, Body: []byte(`{"x":1}`)}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := serve.DecodeRequest(data); err == nil {
			if enc := serve.EncodeRequest(req); !bytes.Equal(enc, data) {
				t.Fatalf("request round-trip: decode(%x) -> %+v -> encode %x", data, req, enc)
			}
		}
		if rep, err := serve.DecodeReply(data); err == nil {
			if enc := serve.EncodeReply(rep); !bytes.Equal(enc, data) {
				t.Fatalf("reply round-trip: decode(%x) -> %+v -> encode %x", data, rep, enc)
			}
		}
		// ReadFrame on arbitrary bytes: any outcome but a panic.
		if payload, err := serve.ReadFrame(bytes.NewReader(data)); err == nil {
			// A frame it accepts must re-frame to the same bytes consumed.
			var buf bytes.Buffer
			if werr := serve.WriteFrame(&buf, payload); werr != nil {
				t.Fatalf("WriteFrame rejected a payload ReadFrame produced: %v", werr)
			}
			if got := buf.Bytes(); !bytes.Equal(got, data[:len(got)]) {
				t.Fatalf("frame round-trip: read %x from %x, rewrote %x", payload, data, got)
			}
		}
	})
}
