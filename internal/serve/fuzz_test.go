package serve_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/serve"
)

// FuzzProto fuzzes the frame codec: DecodeRequest/DecodeReply must never
// panic on arbitrary bytes and must round-trip exactly through their
// encoders whenever they accept, and ReadFrame must reject or read —
// never panic — whatever the bytes claim about their length prefix. The
// seed corpus doubles as a codec smoke test under plain `go test`.
func FuzzProto(f *testing.F) {
	f.Add([]byte{})
	f.Add(serve.EncodeRequest(serve.Request{Op: serve.OpPut, ReqID: 42, Key: 7}))
	f.Add(serve.EncodeRequest(serve.Request{Op: serve.OpMove, ReqID: 1<<32 - 1, Key: 5, Key2: 9, Ack: 41}))
	f.Add(serve.EncodeReply(serve.Reply{Status: serve.StOK, ReqID: 42, Val: 3}))
	f.Add(serve.EncodeReply(serve.Reply{Status: serve.StErr, ReqID: 1, Val: 0, Body: []byte(`{"x":1}`)}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := serve.DecodeRequest(data); err == nil {
			if enc := serve.EncodeRequest(req); !bytes.Equal(enc, data) {
				t.Fatalf("request round-trip: decode(%x) -> %+v -> encode %x", data, req, enc)
			}
		}
		if rep, err := serve.DecodeReply(data); err == nil {
			if enc := serve.EncodeReply(rep); !bytes.Equal(enc, data) {
				t.Fatalf("reply round-trip: decode(%x) -> %+v -> encode %x", data, rep, enc)
			}
		}
		// ReadFrame on arbitrary bytes: any outcome but a panic.
		if payload, err := serve.ReadFrame(bytes.NewReader(data)); err == nil {
			// A frame it accepts must re-frame to the same bytes consumed.
			var buf bytes.Buffer
			if werr := serve.WriteFrame(&buf, payload); werr != nil {
				t.Fatalf("WriteFrame rejected a payload ReadFrame produced: %v", werr)
			}
			if got := buf.Bytes(); !bytes.Equal(got, data[:len(got)]) {
				t.Fatalf("frame round-trip: read %x from %x, rewrote %x", payload, data, got)
			}
		}
	})
}

// FuzzFrameStream fuzzes ReadFrame over torn and interleaved frame
// boundaries: a stream of valid frames truncated at an arbitrary byte
// offset (the wire sweep's fault model, byte for byte). ReadFrame must
// never panic, must deliver every complete frame intact, and must
// distinguish a torn frame (io.ErrUnexpectedEOF: the stream died
// mid-frame) from the clean between-frames io.EOF a closing peer
// produces — the distinction the session layer's resubmit logic keys on.
func FuzzFrameStream(f *testing.F) {
	f.Add(uint8(1), uint16(0), []byte{})
	f.Add(uint8(3), uint16(10), []byte("abcdef"))
	f.Add(uint8(2), uint16(41), serve.EncodeRequest(serve.Request{Op: serve.OpPut, ReqID: 9, Key: 5}))
	f.Add(uint8(5), uint16(1), []byte{0})

	f.Fuzz(func(t *testing.T, nframes uint8, cut uint16, payload []byte) {
		if len(payload) > 256 {
			payload = payload[:256]
		}
		n := int(nframes%8) + 1
		var stream bytes.Buffer
		for i := 0; i < n; i++ {
			// Interleave two frame shapes so boundaries vary.
			p := payload
			if i%2 == 1 {
				p = serve.EncodeReply(serve.Reply{Status: serve.StOK, ReqID: uint64(i), Val: 1})
			}
			if err := serve.WriteFrame(&stream, p); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
		}
		whole := stream.Bytes()
		off := int(cut) % (len(whole) + 1)
		torn := whole[:off]

		r := bytes.NewReader(torn)
		read := 0
		for {
			got, err := serve.ReadFrame(r)
			if err == nil {
				read++
				if read > n {
					t.Fatalf("read %d frames from a stream of %d", read, n)
				}
				_ = got
				continue
			}
			// The error must classify the cut exactly: a cut on a frame
			// boundary is a clean EOF; a cut inside a frame is
			// io.ErrUnexpectedEOF. (A cut inside the 4-byte header of a
			// zero-total-read is still "unexpected" only if bytes remain.)
			atBoundary := r.Len() == 0 && boundaryOffsets(whole, n)[off]
			if atBoundary {
				if err != io.EOF {
					t.Fatalf("cut at frame boundary %d: err = %v, want io.EOF", off, err)
				}
			} else if err != io.ErrUnexpectedEOF {
				t.Fatalf("cut mid-frame at %d: err = %v, want io.ErrUnexpectedEOF", off, err)
			}
			return
		}
	})
}

// boundaryOffsets marks the byte offsets of sequence of frames in a
// stream that fall exactly BETWEEN frames (including 0 and the end).
func boundaryOffsets(whole []byte, n int) map[int]bool {
	m := map[int]bool{0: true}
	r := bytes.NewReader(whole)
	for i := 0; i < n; i++ {
		p, err := serve.ReadFrame(r)
		if err != nil {
			break
		}
		m[len(whole)-r.Len()] = true
		_ = p
	}
	return m
}
