package harness

import (
	"testing"
	"time"

	"repro/internal/pmem"
)

func quickCfg(algo string, threads int) Config {
	return Config{
		Algo: algo, Threads: threads, KeyRange: 128, FindPct: 70,
		OpsPerThread: 800, Model: pmem.SharedCache, Seed: 9,
		PWBLatency: 50 * time.Nanosecond, PSyncLatency: 50 * time.Nanosecond,
	}
}

func TestRunListAllAlgos(t *testing.T) {
	for _, algo := range append(append([]string{}, ListAlgos...), AlgoHarris) {
		res := RunList(quickCfg(algo, 2))
		if res.Ops != 1600 || res.OpsPerSec <= 0 {
			t.Fatalf("%s: bad result %+v", algo, res)
		}
		if algo == AlgoHarris && (res.BarriersPerOp != 0 || res.FlushesPerOp != 0) {
			t.Fatalf("Harris-LL issued persistence instructions: %+v", res)
		}
		if algo != AlgoHarris && res.BarriersPerOp <= 0 {
			t.Fatalf("%s: no barriers recorded", algo)
		}
	}
}

func TestRunQueueAllAlgos(t *testing.T) {
	for _, algo := range append(append([]string{}, QueueAlgos...), QueueMS) {
		res := RunQueue(Config{
			Algo: algo, Threads: 2, OpsPerThread: 600,
			Model: pmem.SharedCache, Seed: 5, QueuePrefill: 500,
		})
		if res.Ops != 1200 || res.OpsPerSec <= 0 {
			t.Fatalf("%s: bad result %+v", algo, res)
		}
	}
}

// TestShapeCapsulesGeneralIsSlowest: the general durability transformation
// must issue an order of magnitude more barriers per op than every
// hand-tuned or ISB algorithm — the root cause of its collapsed throughput
// in Figure 1.
func TestShapeCapsulesGeneralIsSlowest(t *testing.T) {
	barriers := map[string]float64{}
	for _, algo := range ListAlgos {
		barriers[algo] = RunList(quickCfg(algo, 2)).BarriersPerOp
	}
	for _, algo := range []string{AlgoIsb, AlgoIsbOpt, AlgoCapsulesOpt, AlgoDTOpt} {
		if barriers[AlgoCapsules] < 5*barriers[algo] {
			t.Fatalf("Capsules barriers/op (%.1f) not ≫ %s (%.1f)",
				barriers[AlgoCapsules], algo, barriers[algo])
		}
	}
}

// TestShapeIsbConstantBarriers: ISB barriers per operation must stay flat
// as threads increase (the paper's core scalability claim, Figure 1b).
func TestShapeIsbConstantBarriers(t *testing.T) {
	for _, algo := range []string{AlgoIsb, AlgoIsbOpt} {
		b1 := RunList(quickCfg(algo, 1)).BarriersPerOp
		b4 := RunList(quickCfg(algo, 4)).BarriersPerOp
		if b4 > 2.0*b1+1 {
			t.Fatalf("%s: barriers/op grew from %.2f (1 thread) to %.2f (4 threads)", algo, b1, b4)
		}
	}
}

// TestShapeIsbOptFlushHeavy: Isb-Opt performs more stand-alone flushes per
// op than the other hand-tuned algorithms (CP_q, RD_q, ... — Figure 1c).
func TestShapeIsbOptFlushHeavy(t *testing.T) {
	fIsbOpt := RunList(quickCfg(AlgoIsbOpt, 2)).FlushesPerOp
	for _, algo := range []string{AlgoCapsulesOpt, AlgoDTOpt} {
		f := RunList(quickCfg(algo, 2)).FlushesPerOp
		if fIsbOpt <= f {
			t.Fatalf("Isb-Opt flushes/op (%.2f) not above %s (%.2f)", fIsbOpt, algo, f)
		}
	}
}

// TestShapePrivateCacheFree: in the private cache model no algorithm incurs
// persistence instructions.
func TestShapePrivateCacheFree(t *testing.T) {
	cfg := quickCfg(AlgoIsb, 2)
	cfg.Model = pmem.PrivateCache
	res := RunList(cfg)
	if res.BarriersPerOp != 0 || res.FlushesPerOp != 0 || res.SyncsPerOp != 0 {
		t.Fatalf("private cache model counted persistence instructions: %+v", res)
	}
}
