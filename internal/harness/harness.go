// Package harness drives the paper's benchmark workloads: multi-process
// list and queue experiments with configurable key ranges, operation mixes,
// persistency models and simulated persistence-instruction latencies. It
// produces the quantities every figure in the evaluation plots: throughput
// (operations per second) and the per-operation counts of pbarriers and
// stand-alone flushes.
package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/baseline/capsqueue"
	"repro/internal/baseline/capsules"
	"repro/internal/baseline/dtlist"
	"repro/internal/baseline/harris"
	"repro/internal/baseline/logqueue"
	"repro/internal/baseline/msqueue"
	"repro/internal/isb"
	"repro/internal/list"
	"repro/internal/pmem"
	"repro/internal/queue"
)

// Set is the common surface of every list algorithm under test.
type Set interface {
	Insert(p *pmem.Proc, key uint64) bool
	Delete(p *pmem.Proc, key uint64) bool
	Find(p *pmem.Proc, key uint64) bool
}

// FIFO is the common surface of every queue algorithm under test.
type FIFO interface {
	Enqueue(p *pmem.Proc, v uint64)
	Dequeue(p *pmem.Proc) (uint64, bool)
}

// List algorithm names (the paper's curve labels).
const (
	AlgoIsb         = "Isb"
	AlgoIsbOpt      = "Isb-Opt"
	AlgoCapsules    = "Capsules"
	AlgoCapsulesOpt = "Capsules-Opt"
	AlgoDTOpt       = "DT-Opt"
	AlgoHarris      = "Harris-LL"
)

// Queue algorithm names.
const (
	QueueIsb             = "ISB-Queue"
	QueueLog             = "Log-Queue"
	QueueCapsulesGeneral = "Capsules-General"
	QueueCapsulesNormal  = "Capsules-Normal"
	QueueMS              = "MS-Queue"
)

// ListAlgos lists the detectable list algorithms in the paper's figures.
var ListAlgos = []string{AlgoCapsules, AlgoIsb, AlgoIsbOpt, AlgoCapsulesOpt, AlgoDTOpt}

// QueueAlgos lists the queue algorithms of Figure 7 (shared cache panel).
var QueueAlgos = []string{QueueIsb, QueueLog, QueueCapsulesGeneral, QueueCapsulesNormal}

// Config parameterises one data point.
type Config struct {
	Algo         string
	Threads      int
	KeyRange     uint64 // list benchmarks
	FindPct      int    // percent of Finds; rest split Insert/Delete
	OpsPerThread int
	Model        pmem.Model
	PWBLatency   time.Duration
	PSyncLatency time.Duration
	Seed         uint64
	QueuePrefill int // queue benchmarks
}

// Result is one measured data point.
type Result struct {
	Algo          string
	Threads       int
	Ops           int
	Elapsed       time.Duration
	OpsPerSec     float64
	BarriersPerOp float64
	FlushesPerOp  float64
	SyncsPerOp    float64
}

// Row formats a result as a figure table row.
func (r Result) Row() string {
	return fmt.Sprintf("%-17s %3d  %12.0f ops/s  %7.2f barriers/op  %7.2f flushes/op",
		r.Algo, r.Threads, r.OpsPerSec, r.BarriersPerOp, r.FlushesPerOp)
}

// heapWords sizes the arena for a run (every op may allocate; ISB ops
// allocate an Info record per attempt).
func heapWords(threads, ops int, prefill int) int {
	w := (threads*ops + prefill + 1024) * 128
	if w < 1<<21 {
		w = 1 << 21
	}
	return w
}

// newListAlgo builds the named list algorithm on a fresh heap.
func newListAlgo(cfg Config) (Set, *pmem.Heap) {
	h := pmem.NewHeap(pmem.Config{
		Words:        heapWords(cfg.Threads, cfg.OpsPerThread, int(cfg.KeyRange)),
		Procs:        cfg.Threads + 1, // +1 for the prefill proc
		Model:        cfg.Model,
		PWBLatency:   cfg.PWBLatency,
		PSyncLatency: cfg.PSyncLatency,
		Seed:         cfg.Seed + 1,
	})
	var s Set
	switch cfg.Algo {
	case AlgoIsb:
		s = list.New(h)
	case AlgoIsbOpt:
		s = list.NewWithEngine(h, isb.NewEngineOpt(h))
	case AlgoCapsules:
		s = capsules.New(h, capsules.General)
	case AlgoCapsulesOpt:
		s = capsules.New(h, capsules.Normalized)
	case AlgoDTOpt:
		s = dtlist.New(h)
	case AlgoHarris:
		s = harris.New(h)
	default:
		panic("harness: unknown list algorithm " + cfg.Algo)
	}
	return s, h
}

// RunList measures one list data point: the heap is prefilled with
// KeyRange/2 random inserts (≈40% full, as in the paper), counters reset,
// then Threads procs each run OpsPerThread operations of the given mix.
func RunList(cfg Config) Result {
	s, h := newListAlgo(cfg)
	pre := h.Proc(cfg.Threads)
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + 7))
	for i := uint64(0); i < cfg.KeyRange/2; i++ {
		s.Insert(pre, uint64(rng.Int63n(int64(cfg.KeyRange)))+1)
	}
	h.ResetAllStats()

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < cfg.Threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			r := rand.New(rand.NewSource(int64(cfg.Seed)*131 + int64(id)))
			for i := 0; i < cfg.OpsPerThread; i++ {
				k := uint64(r.Int63n(int64(cfg.KeyRange))) + 1
				c := r.Intn(100)
				switch {
				case c < cfg.FindPct:
					s.Find(p, k)
				case c < cfg.FindPct+(100-cfg.FindPct)/2:
					s.Insert(p, k)
				default:
					s.Delete(p, k)
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return summarize(cfg, h, elapsed)
}

// newQueueAlgo builds the named queue algorithm on a fresh heap.
func newQueueAlgo(cfg Config) (FIFO, *pmem.Heap) {
	h := pmem.NewHeap(pmem.Config{
		Words:        heapWords(cfg.Threads, cfg.OpsPerThread, cfg.QueuePrefill),
		Procs:        cfg.Threads + 1,
		Model:        cfg.Model,
		PWBLatency:   cfg.PWBLatency,
		PSyncLatency: cfg.PSyncLatency,
		Seed:         cfg.Seed + 1,
	})
	var q FIFO
	switch cfg.Algo {
	case QueueIsb:
		q = isbQueueAdapter{queue.New(h)}
	case QueueLog:
		q = logqueue.New(h)
	case QueueCapsulesGeneral:
		q = capsQueueAdapter{capsqueue.New(h, capsqueue.General)}
	case QueueCapsulesNormal:
		q = capsQueueAdapter{capsqueue.New(h, capsqueue.Normal)}
	case QueueMS:
		q = msqueue.New(h)
	default:
		panic("harness: unknown queue algorithm " + cfg.Algo)
	}
	return q, h
}

type isbQueueAdapter struct{ q *queue.Queue }

func (a isbQueueAdapter) Enqueue(p *pmem.Proc, v uint64)      { a.q.Enqueue(p, v) }
func (a isbQueueAdapter) Dequeue(p *pmem.Proc) (uint64, bool) { return a.q.Dequeue(p) }

type capsQueueAdapter struct{ q *capsqueue.Queue }

func (a capsQueueAdapter) Enqueue(p *pmem.Proc, v uint64)      { a.q.Enqueue(p, v) }
func (a capsQueueAdapter) Dequeue(p *pmem.Proc) (uint64, bool) { return a.q.Dequeue(p) }

// RunQueue measures one queue data point: prefill, then each thread runs
// OpsPerThread/2 enqueue-dequeue pairs (as in the paper's queue benchmark).
func RunQueue(cfg Config) Result {
	q, h := newQueueAlgo(cfg)
	pre := h.Proc(cfg.Threads)
	for i := 0; i < cfg.QueuePrefill; i++ {
		q.Enqueue(pre, uint64(i)+1)
	}
	h.ResetAllStats()

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < cfg.Threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			base := uint64(id+1) * 10_000_000
			for i := 0; i < cfg.OpsPerThread/2; i++ {
				q.Enqueue(p, base+uint64(i))
				q.Dequeue(p)
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return summarize(cfg, h, elapsed)
}

func summarize(cfg Config, h *pmem.Heap, elapsed time.Duration) Result {
	var st pmem.Stats
	for id := 0; id < cfg.Threads; id++ {
		st.Add(h.Proc(id).Stats())
	}
	total := cfg.Threads * cfg.OpsPerThread
	res := Result{
		Algo:    cfg.Algo,
		Threads: cfg.Threads,
		Ops:     total,
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(total) / elapsed.Seconds()
	}
	if total > 0 {
		res.BarriersPerOp = float64(st.Barriers) / float64(total)
		res.FlushesPerOp = float64(st.Flushes) / float64(total)
		res.SyncsPerOp = float64(st.Syncs) / float64(total)
	}
	return res
}
