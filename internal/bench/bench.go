// Package bench runs the canonical performance-scenario matrix and emits a
// machine-comparable BENCH_*.json report: the persistence-cost metrics the
// paper's evaluation argues from (pbarriers, flushes, syncs and combined
// persist events per operation), throughput for each (engine, procs,
// shards, workload mix) cell, and the wall clock of the every-crash-point
// conformance sweep. CI archives one report per commit, so the simulator's
// hot-path speed — crash reset, barrier dedup — stays pinned across PRs.
//
// Regenerate locally with `go run ./cmd/bench`; compare two reports by
// diffing their scenario rows (names are stable).
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/crash"
	"repro/internal/isb"
	"repro/internal/pmem"
)

// SchemaVersion identifies the report layout; bump on incompatible change.
// v2 added the reclaim section (steady-state heap pins under the epoch
// reclaimer vs the leak-forever arena). v3 added the batch axis (each
// scenario cell now carries the admission batch size driven through
// Runtime.ApplyBatch) plus the batch_syncs/read_fast_ops counters. v4
// added the serve section: the network front-end measured end to end
// (conns × batch cells over the in-process transport), with its own
// batching gate in Validate. v5 added the fault_rate axis to the serve
// section — hostile-wire cells run reconnecting session clients through a
// seeded chaos listener and carry reconnects/sheds/timeouts counters, so
// every report pins a throughput-vs-fault-rate degradation curve.
const SchemaVersion = 5

// Mix is a named operation mix: percentages of finds, with the remainder
// split evenly between inserts and deletes.
type Mix struct {
	Name    string
	FindPct int
}

// Mixes is the canonical workload-mix axis.
func Mixes() []Mix {
	return []Mix{
		{Name: "read-heavy", FindPct: 90},
		{Name: "mixed", FindPct: 50},
		{Name: "write-heavy", FindPct: 10},
	}
}

// Params tunes one pipeline run.
type Params struct {
	Label      string
	Procs      []int // default 1,2,4,8
	Shards     []int // default 1,16
	Batches    []int // admission batch sizes, default 1,8,64
	OpsPerProc int   // default 2000
	KeyRange   int   // default 256
	Seed       int64 // default 1
	// ServeConns / ServeBatches span the serve section's matrix: client
	// connections (default 1,4,16) × admission batch sizes (default 1,16)
	// against the fixed serveProcs-worker server.
	ServeConns   []int
	ServeBatches []int
	// ServeFaultRates is the hostile-wire axis (expected connection kills
	// per KiB of traffic, default 0 and 0.5): each positive rate adds one
	// session-client cell per conns value at the largest ServeBatches
	// entry; rate 0 is the fault-free wire every legacy cell already runs.
	ServeFaultRates []float64
}

func (p Params) withDefaults() Params {
	if p.Label == "" {
		p.Label = "local"
	}
	if len(p.Procs) == 0 {
		p.Procs = []int{1, 2, 4, 8}
	}
	if len(p.Shards) == 0 {
		p.Shards = []int{1, 16}
	}
	if len(p.Batches) == 0 {
		p.Batches = []int{1, 8, 64}
	}
	if p.OpsPerProc <= 0 {
		p.OpsPerProc = 2000
	}
	if p.KeyRange <= 0 {
		p.KeyRange = 256
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if len(p.ServeConns) == 0 {
		p.ServeConns = []int{1, 4, 16}
	}
	if len(p.ServeBatches) == 0 {
		p.ServeBatches = []int{1, 16}
	}
	if len(p.ServeFaultRates) == 0 {
		p.ServeFaultRates = []float64{0, 0.5}
	}
	return p
}

// QuickParams shrinks the matrix for tests and CI smoke use.
func QuickParams() Params {
	return Params{
		Label: "quick", Procs: []int{1, 2}, Shards: []int{1, 4},
		Batches: []int{1, 8}, OpsPerProc: 320,
		ServeConns: []int{1, 4}, ServeBatches: []int{1, 8},
	}
}

// Point is one measured scenario cell.
type Point struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	Procs  int    `json:"procs"`
	Shards int    `json:"shards"`
	Mix    string `json:"mix"`
	// Batch is the admission batch size: 1 drives the plain single-op
	// Apply path, larger sizes go through Runtime.ApplyBatch.
	Batch          int     `json:"batch"`
	Ops            int     `json:"ops"`
	Seconds        float64 `json:"seconds"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	PBarriersPerOp float64 `json:"pbarriers_per_op"`
	FlushesPerOp   float64 `json:"flushes_per_op"`
	SyncsPerOp     float64 `json:"syncs_per_op"`
	// PersistsPerOp counts persistence-barrier events: pbarriers plus
	// stand-alone pwbs — the quantity the paper's throughput argument
	// rides on.
	PersistsPerOp float64 `json:"persists_per_op"`
	// BatchSyncs counts psyncs the batch protocol deferred and merged;
	// ReadFastOps counts operations served by the zero-persist read path.
	BatchSyncs  uint64 `json:"batch_syncs"`
	ReadFastOps uint64 `json:"read_fast_ops"`
}

// Stats reassembles the cell's counters into the canonical isb.Stats
// renderer, so cmd/bench prints the same metric line the root benchmarks
// report. The per-op floats were produced by exact integer division, so
// rounding recovers the counts.
func (pt Point) Stats() isb.Stats {
	n := float64(pt.Ops)
	return isb.Stats{
		Ops: uint64(pt.Ops),
		Mem: pmem.Stats{
			Barriers: uint64(math.Round(pt.PBarriersPerOp * n)),
			Flushes:  uint64(math.Round(pt.FlushesPerOp * n)),
			Syncs:    uint64(math.Round(pt.SyncsPerOp * n)),
		},
		BatchSyncs:   pt.BatchSyncs,
		ReadFastPath: pt.ReadFastOps,
	}
}

// ReclaimPoint is one steady-state heap cell: the same deterministic churn
// workload (insert/delete pairs over a small key range, so every pair
// allocates and retires nodes and tracking records) run in two equal
// windows. HeapWordsMid samples arena usage after the first window and
// HeapWords after the second: with the epoch reclaimer the second window
// must be served entirely from recycled blocks (no growth — the gate
// Validate enforces), while the leak-forever arena grows linearly (the
// unbounded baseline the reclaimer exists to fix).
type ReclaimPoint struct {
	Name         string `json:"name"`
	Engine       string `json:"engine"`
	Reclaim      bool   `json:"reclaim"`
	ChurnOps     int    `json:"churn_ops"`
	HeapWordsMid uint64 `json:"heap_words_mid"`
	HeapWords    uint64 `json:"heap_words"`
	LiveNodes    uint64 `json:"live_nodes"`
	FreedBlocks  uint64 `json:"freed_blocks"`
	ReusedBlocks uint64 `json:"reused_blocks"`
}

// SweepPoint is the timed every-crash-point conformance sweep of one
// (structure, engine-variant) scenario.
type SweepPoint struct {
	Name        string  `json:"name"`
	Cases       int     `json:"cases"`
	CrashPoints int     `json:"crash_points"`
	Seconds     float64 `json:"seconds"`
}

// Report is the BENCH_*.json payload.
type Report struct {
	Schema     int     `json:"schema_version"`
	Label      string  `json:"label"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scenarios  []Point `json:"scenarios"`
	// Sweeps times the identical conformance matrix the crash tests run
	// (crash.Scenarios over all engine variants, eviction included);
	// SweepSeconds is their sum — the number the CI timeout is sized from.
	Sweeps       []SweepPoint `json:"sweeps"`
	SweepSeconds float64      `json:"sweep_seconds"`
	// Reclaim pins steady-state heap usage under churn for both
	// allocators; Validate fails a report whose reclaimer-on cells grew
	// across the churn window.
	Reclaim []ReclaimPoint `json:"reclaim"`
	// Serve measures the network front-end end to end: conns × batch cells
	// over the in-process transport. Validate gates each conns group's
	// batched syncs/op against its batch=1 anchor; Compare folds the cells
	// into the throughput-ratio machinery as engine="serve" groups.
	Serve []ServePoint `json:"serve"`
}

// engineKinds maps the public engine axis.
func engineKinds() []struct {
	name string
	kind repro.EngineKind
} {
	return []struct {
		name string
		kind repro.EngineKind
	}{
		{"isb", repro.EngineIsb},
		{"isb-opt", repro.EngineIsbOpt},
	}
}

// heapWords sizes the untracked workload arena (every op may allocate an
// Info record per attempt; nothing is reclaimed).
func heapWords(procs, ops, keyRange int) int {
	w := (procs*ops + keyRange + 1024) * 128
	if w < 1<<21 {
		w = 1 << 21
	}
	return w
}

// runPoint measures one scenario cell: a prefilled Runtime hash map under
// the mixed workload, with simulated pwb/psync latencies so throughput
// reflects persistence cost. Announcements are active (the map is built
// through the Runtime), so the persistence counters include the full
// operation protocol, exactly as a recoverable deployment would pay it.
// batch=1 drives operations one at a time through the typed Apply surface;
// larger sizes admit them in ApplyBatch windows, which is where the
// deferred-psync and pwb-overlap savings show up.
func runPoint(p Params, engine string, kind repro.EngineKind, procs, shards, batch int, mix Mix) Point {
	rt := repro.New(repro.Config{
		Procs:      procs,
		HeapWords:  heapWords(procs, p.OpsPerProc, p.KeyRange),
		Engine:     kind,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	})
	m := rt.NewHashMap(shards)
	pre := rt.Proc(0)
	rng := rand.New(rand.NewSource(p.Seed + 7))
	for i := 0; i < p.KeyRange/2; i++ {
		m.Insert(pre, uint64(rng.Intn(p.KeyRange))+1)
	}
	rt.Heap().ResetAllStats()
	baseBS, baseRF, _ := rt.EngineCounters(m)

	var wg sync.WaitGroup
	start := time.Now()
	runWorkload := func() {
		for w := 0; w < procs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pr := rt.Proc(w)
				rng := rand.New(rand.NewSource(p.Seed*131 + int64(w)))
				ud := 0
				nextOp := func() repro.Op {
					k := uint64(rng.Intn(p.KeyRange)) + 1
					if rng.Intn(100) < mix.FindPct {
						return repro.Op{Kind: repro.OpFind, Arg: k}
					}
					if ud++; ud%2 == 0 {
						return repro.Op{Kind: repro.OpInsert, Arg: k}
					}
					return repro.Op{Kind: repro.OpDelete, Arg: k}
				}
				if batch <= 1 {
					for i := 0; i < p.OpsPerProc; i++ {
						op := nextOp()
						switch op.Kind {
						case repro.OpFind:
							m.Find(pr, op.Arg)
						case repro.OpInsert:
							m.Insert(pr, op.Arg)
						default:
							m.Delete(pr, op.Arg)
						}
					}
					return
				}
				win := make([]repro.Op, 0, batch)
				for i := 0; i < p.OpsPerProc; i++ {
					win = append(win, nextOp())
					if len(win) == batch {
						rt.ApplyBatch(pr, m, win)
						win = win[:0]
					}
				}
				if len(win) > 0 {
					rt.ApplyBatch(pr, m, win)
				}
			}(w)
		}
		wg.Wait()
	}
	runWorkload()
	elapsed := time.Since(start)
	// Timing is the noisy metric on shared machines (the persistence
	// counters are workload-determined): rerun the identical workload and
	// keep the fastest wall clock of three. The counters keep the first
	// run's window so persists/op stays a single-workload quantity.
	st0 := rt.Heap().TotalStats()
	bs1, rf1, _ := rt.EngineCounters(m)
	for rep := 0; rep < 2; rep++ {
		again := time.Now()
		runWorkload()
		if d := time.Since(again); d < elapsed {
			elapsed = d
		}
	}

	ops := procs * p.OpsPerProc
	st := isb.Stats{Ops: uint64(ops), Mem: st0}
	st.BatchSyncs, st.ReadFastPath = bs1-baseBS, rf1-baseRF
	pt := Point{
		Name: fmt.Sprintf("hashmap/engine=%s/procs=%d/shards=%d/mix=%s/batch=%d",
			engine, procs, shards, mix.Name, batch),
		Engine:      engine,
		Procs:       procs,
		Shards:      shards,
		Mix:         mix.Name,
		Batch:       batch,
		Ops:         ops,
		Seconds:     elapsed.Seconds(),
		BatchSyncs:  st.BatchSyncs,
		ReadFastOps: st.ReadFastPath,
	}
	if elapsed > 0 {
		pt.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	pt.PBarriersPerOp = st.PBarriersPerOp()
	pt.FlushesPerOp = st.FlushesPerOp()
	pt.SyncsPerOp = st.SyncsPerOp()
	pt.PersistsPerOp = st.PersistsPerOp()
	return pt
}

// runReclaim measures one steady-state heap cell: churnOps insert/delete
// pairs on a hash map (key range 32, so pairs recycle a small working set)
// per window, two windows, heap usage sampled between and after.
func runReclaim(engine string, kind repro.EngineKind, churnOps int, reclaim bool) ReclaimPoint {
	rt := repro.New(repro.Config{
		Procs:     1,
		HeapWords: heapWords(1, 4*churnOps, 32),
		Engine:    kind,
		Reclaim:   reclaim,
	})
	m := rt.NewHashMap(4)
	p := rt.Proc(0)
	window := func() {
		for i := 0; i < churnOps/2; i++ {
			k := uint64(i%32) + 1
			m.Insert(p, k)
			m.Delete(p, k)
		}
	}
	window()
	mid := rt.Heap().Used()
	window()
	pt := ReclaimPoint{
		Name:         fmt.Sprintf("reclaim-churn/engine=%s/reclaim=%v", engine, reclaim),
		Engine:       engine,
		Reclaim:      reclaim,
		ChurnOps:     2 * (churnOps / 2) * 2,
		HeapWordsMid: mid,
		HeapWords:    rt.Heap().Used(),
		LiveNodes:    rt.LiveNodes(),
	}
	if st, ok := rt.ReclaimStats(); ok {
		pt.FreedBlocks = st.Freed
		pt.ReusedBlocks = st.Reused
	}
	return pt
}

// runSweeps times the conformance matrix (identical to the one the crash
// tests enforce) and returns its per-scenario wall clock.
func runSweeps() ([]SweepPoint, float64, error) {
	var out []SweepPoint
	total := 0.0
	for _, sc := range crash.Scenarios(crash.SweepEngineVariants()) {
		start := time.Now()
		points := 0
		for _, c := range sc.Cases {
			n, err := crash.RunCase(sc.Build, c)
			if err != nil {
				return nil, 0, fmt.Errorf("sweep %s: %w", sc.Name(), err)
			}
			points += n
		}
		secs := time.Since(start).Seconds()
		total += secs
		out = append(out, SweepPoint{
			Name:        "conformance/" + sc.Name(),
			Cases:       len(sc.Cases),
			CrashPoints: points,
			Seconds:     secs,
		})
	}
	return out, total, nil
}

// Run executes the full pipeline: the throughput/persistence matrix
// (engines × procs × shards × mixes) followed by the timed crash-point
// conformance sweep.
func Run(p Params) (Report, error) {
	p = p.withDefaults()
	rep := Report{
		Schema:     SchemaVersion,
		Label:      p.Label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, eng := range engineKinds() {
		for _, procs := range p.Procs {
			for _, shards := range p.Shards {
				for _, mix := range Mixes() {
					for _, batch := range p.Batches {
						rep.Scenarios = append(rep.Scenarios,
							runPoint(p, eng.name, eng.kind, procs, shards, batch, mix))
					}
				}
			}
		}
	}
	sweeps, total, err := runSweeps()
	if err != nil {
		return rep, err
	}
	rep.Sweeps = sweeps
	rep.SweepSeconds = total
	for _, eng := range engineKinds() {
		for _, rec := range []bool{false, true} {
			rep.Reclaim = append(rep.Reclaim,
				runReclaim(eng.name, eng.kind, p.OpsPerProc, rec))
		}
	}
	rep.Serve = runServeMatrix(p)
	return rep, nil
}

// Marshal renders a report as indented, diff-friendly JSON.
func Marshal(rep Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// finite rejects NaN/Inf metric values (they would serialize as invalid
// JSON or break cross-PR comparison).
func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Validate checks that data is a well-formed, machine-comparable report:
// current schema, a non-empty scenario matrix covering every canonical mix,
// finite non-negative metrics, and a non-empty timed sweep section. CI runs
// it on the freshly written artifact and fails the job on malformed output.
func Validate(data []byte) error {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("bench: report is not valid JSON: %w", err)
	}
	if rep.Schema != SchemaVersion {
		return fmt.Errorf("bench: schema_version %d, want %d", rep.Schema, SchemaVersion)
	}
	if rep.Label == "" {
		return fmt.Errorf("bench: empty label")
	}
	if len(rep.Scenarios) == 0 {
		return fmt.Errorf("bench: no scenarios")
	}
	mixes, batches := map[string]bool{}, map[int]bool{}
	for i, pt := range rep.Scenarios {
		if pt.Name == "" || pt.Engine == "" || pt.Mix == "" {
			return fmt.Errorf("bench: scenario %d is missing name/engine/mix", i)
		}
		if pt.Procs <= 0 || pt.Shards <= 0 || pt.Ops <= 0 {
			return fmt.Errorf("bench: scenario %s has non-positive procs/shards/ops", pt.Name)
		}
		if pt.Batch < 1 {
			return fmt.Errorf("bench: scenario %s has batch %d, want >= 1", pt.Name, pt.Batch)
		}
		if !finite(pt.Seconds, pt.OpsPerSec, pt.PBarriersPerOp, pt.FlushesPerOp, pt.SyncsPerOp, pt.PersistsPerOp) {
			return fmt.Errorf("bench: scenario %s has non-finite metrics", pt.Name)
		}
		if pt.Seconds < 0 || pt.OpsPerSec < 0 || pt.PBarriersPerOp < 0 ||
			pt.FlushesPerOp < 0 || pt.SyncsPerOp < 0 || pt.PersistsPerOp < 0 {
			return fmt.Errorf("bench: scenario %s has negative metrics", pt.Name)
		}
		mixes[pt.Mix] = true
		batches[pt.Batch] = true
	}
	for _, m := range Mixes() {
		if !mixes[m.Name] {
			return fmt.Errorf("bench: scenario matrix is missing mix %q", m.Name)
		}
	}
	// batch=1 anchors every comparison (it is the unbatched baseline the
	// batched cells are judged against), so a report without it is not
	// machine-comparable.
	if !batches[1] {
		return fmt.Errorf("bench: scenario matrix is missing the batch=1 anchor cells")
	}
	if len(rep.Sweeps) == 0 {
		return fmt.Errorf("bench: no conformance sweeps")
	}
	for _, sw := range rep.Sweeps {
		if sw.Name == "" {
			return fmt.Errorf("bench: sweep with empty name")
		}
		if sw.Cases <= 0 || sw.CrashPoints <= 0 {
			return fmt.Errorf("bench: sweep %s covered no crash points", sw.Name)
		}
		if !finite(sw.Seconds) || sw.Seconds < 0 {
			return fmt.Errorf("bench: sweep %s has bad seconds", sw.Name)
		}
	}
	if !finite(rep.SweepSeconds) || rep.SweepSeconds < 0 {
		return fmt.Errorf("bench: bad sweep_seconds")
	}
	if len(rep.Reclaim) == 0 {
		return fmt.Errorf("bench: no reclaim cells")
	}
	for _, pt := range rep.Reclaim {
		if pt.Name == "" || pt.Engine == "" {
			return fmt.Errorf("bench: reclaim cell with empty name/engine")
		}
		if pt.ChurnOps <= 0 || pt.HeapWordsMid == 0 || pt.HeapWords == 0 {
			return fmt.Errorf("bench: reclaim cell %s ran no churn", pt.Name)
		}
		// The steady-state gate: with the reclaimer on, the second churn
		// window must be served entirely from recycled blocks. Any growth
		// means reclamation regressed to leaking.
		if pt.Reclaim && pt.HeapWords > pt.HeapWordsMid {
			return fmt.Errorf("bench: reclaim cell %s heap grew across the churn window (%d -> %d words)",
				pt.Name, pt.HeapWordsMid, pt.HeapWords)
		}
		// The baseline must document the leak the reclaimer fixes: the
		// arena allocates at least a tracking record per operation and
		// never frees, so its heap strictly grows.
		if !pt.Reclaim && pt.HeapWords <= pt.HeapWordsMid {
			return fmt.Errorf("bench: arena cell %s did not grow (%d -> %d words); churn workload is not allocating",
				pt.Name, pt.HeapWordsMid, pt.HeapWords)
		}
	}
	if len(rep.Serve) == 0 {
		return fmt.Errorf("bench: no serve cells")
	}
	type serveSyncs struct {
		anchor, atMax float64 // syncs/op at batch=1 and at the largest batch
		maxBatch      int
		hasAnchor     bool
	}
	byConns := map[int]*serveSyncs{}
	for _, pt := range rep.Serve {
		if pt.Name == "" || pt.Conns <= 0 || pt.Procs <= 0 || pt.Batch < 1 || pt.Ops <= 0 {
			return fmt.Errorf("bench: serve cell %q has non-positive axes", pt.Name)
		}
		if !finite(pt.Seconds, pt.OpsPerSec, pt.SyncsPerOp, pt.PersistsPerOp,
			pt.BatchFillMean, pt.P50Micros, pt.P99Micros, pt.FaultRate) {
			return fmt.Errorf("bench: serve cell %s has non-finite metrics", pt.Name)
		}
		if pt.Seconds <= 0 || pt.OpsPerSec <= 0 || pt.SyncsPerOp < 0 || pt.PersistsPerOp < 0 {
			return fmt.Errorf("bench: serve cell %s has non-positive throughput or negative persistence metrics", pt.Name)
		}
		if pt.BatchFillMean < 1 {
			return fmt.Errorf("bench: serve cell %s drained empty windows (fill %.2f)", pt.Name, pt.BatchFillMean)
		}
		if pt.FaultRate < 0 {
			return fmt.Errorf("bench: serve cell %s has negative fault_rate %g", pt.Name, pt.FaultRate)
		}
		if pt.FaultRate == 0 {
			// A fault-free wire must never tear: a reconnect or deadline
			// expiry here means the serve path itself dropped a connection.
			if pt.Reconnects != 0 || pt.Timeouts != 0 {
				return fmt.Errorf("bench: fault-free serve cell %s reconnected %d times / timed out %d times",
					pt.Name, pt.Reconnects, pt.Timeouts)
			}
		} else if pt.Reconnects == 0 {
			// A hostile-wire cell that never reconnected measured nothing:
			// either the chaos schedule never fired or the session never
			// noticed — both invalidate the degradation curve.
			return fmt.Errorf("bench: serve cell %s ran at fault_rate %g but never reconnected",
				pt.Name, pt.FaultRate)
		}
		if pt.FaultRate > 0 {
			// The batching gate below compares fault-free cells only: a
			// hostile wire perturbs window fill, so faulted cells carry
			// their own reconnect gate instead.
			continue
		}
		ss := byConns[pt.Conns]
		if ss == nil {
			ss = &serveSyncs{}
			byConns[pt.Conns] = ss
		}
		if pt.Batch == 1 {
			ss.anchor = pt.SyncsPerOp
			ss.hasAnchor = true
		}
		if pt.Batch > ss.maxBatch {
			ss.maxBatch = pt.Batch
			if pt.Batch > 1 {
				ss.atMax = pt.SyncsPerOp
			}
		}
	}
	// The serve-layer batching gate: within each conns group, the largest
	// admission batch must undercut the batch=1 anchor's syncs/op — the
	// whole point of multiplexing connections onto windowed admission.
	for conns, ss := range byConns {
		if !ss.hasAnchor {
			return fmt.Errorf("bench: serve conns=%d group is missing its batch=1 anchor cell", conns)
		}
		if ss.maxBatch > 1 && ss.atMax >= serveBatchGate*ss.anchor {
			return fmt.Errorf("bench: serve conns=%d: batch=%d syncs/op %.3f did not undercut %.0f%% of the batch=1 anchor %.3f",
				conns, ss.maxBatch, ss.atMax, 100*serveBatchGate, ss.anchor)
		}
	}
	return nil
}

// CheckBaseline verifies that a baseline report is usable for Compare
// BEFORE a multi-minute bench run is spent: parseable JSON, the current
// schema, and a non-empty scenario matrix. It deliberately does not run
// the full Validate gauntlet — an older baseline may predate newer
// sections' gates, and Compare only needs name-matched cells.
func CheckBaseline(data []byte) error {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("bench: baseline is not valid JSON: %w", err)
	}
	if rep.Schema != SchemaVersion {
		return fmt.Errorf("bench: baseline schema_version %d, want %d — regenerate the baseline", rep.Schema, SchemaVersion)
	}
	if len(rep.Scenarios) == 0 {
		return fmt.Errorf("bench: baseline has no scenarios")
	}
	return nil
}

// Comparison thresholds for Compare. Throughput carries scheduler and
// machine noise — and the simulated latency spins are calibrated once per
// process, so two reports' absolute ops/s can differ wholesale — which is
// why the throughput gate is doubly hardened: cells aggregate into
// (engine, mix, batch) groups across the procs/shards axes (individual
// cells are milliseconds long and can swing 2x on a loaded shared
// runner; a group sums ~8 of them), and each group's new/old throughput
// ratio is judged against the report pair's median group ratio,
// canceling machine and calibration skew while still catching an axis
// that regressed relative to its peers. persists/op stays per-cell — it
// is essentially a deterministic instruction count — with a small slack
// for multi-proc contention-retry jitter; a real elision regression
// moves the metric by whole syncs per op, orders of magnitude past it.
// (A *uniform* hot-path slowdown normalizes away here; it stems from
// extra persistence work — which the persists/op gate catches — or shows
// up in the archived bench-smoke wall clocks.)
const (
	compareOpsFloor     = 0.85 // each group's ratio must reach 85% of the median ratio
	comparePersistSlack = 0.02 // tolerated relative persists/op growth
	// Serve cells' persists/op is scheduling-dependent (admission-window
	// fill varies run to run, and fill is what amortizes the boundary
	// psyncs), so their slack is much wider than the deterministic
	// hash-map cells'. A real placement regression adds whole syncs per
	// op — several times this.
	compareServePersistSlack = 0.25
	// serveBatchGate is Validate's serve-layer batching requirement: the
	// largest batch's syncs/op must fall below this fraction of the
	// batch=1 anchor within the same conns group.
	serveBatchGate = 0.8
)

// Compare gates a fresh report against a committed baseline. Throughput:
// cells matched by name aggregate into (engine, mix, batch) groups, and
// every group must keep its new/old throughput ratio within
// compareOpsFloor of the pair's median group ratio. Persistence: every
// matched cell must not grow persists/op beyond the contention slack.
// Cells present in only one report are ignored (the matrix may grow),
// but at least one cell must match, and the schemas must agree —
// otherwise the baseline needs regenerating, which is an error, not a
// pass.
func Compare(oldData, newData []byte) error {
	var oldRep, newRep Report
	if err := json.Unmarshal(oldData, &oldRep); err != nil {
		return fmt.Errorf("bench: baseline report: %w", err)
	}
	if err := json.Unmarshal(newData, &newRep); err != nil {
		return fmt.Errorf("bench: new report: %w", err)
	}
	if oldRep.Schema != newRep.Schema {
		return fmt.Errorf("bench: schema mismatch (baseline %d, new %d) — regenerate the baseline",
			oldRep.Schema, newRep.Schema)
	}
	base := make(map[string]Point, len(oldRep.Scenarios))
	for _, pt := range oldRep.Scenarios {
		base[pt.Name] = pt
	}
	type groupKey struct {
		engine, mix string
		batch       int
	}
	type groupAgg struct {
		oldOps, oldSecs, newOps, newSecs float64
	}
	groups := map[groupKey]*groupAgg{}
	matched := 0
	var fails []string
	for _, pt := range newRep.Scenarios {
		old, ok := base[pt.Name]
		if !ok {
			continue
		}
		matched++
		g := groupKey{engine: pt.Engine, mix: pt.Mix, batch: pt.Batch}
		agg := groups[g]
		if agg == nil {
			agg = &groupAgg{}
			groups[g] = agg
		}
		agg.oldOps += float64(old.Ops)
		agg.oldSecs += old.Seconds
		agg.newOps += float64(pt.Ops)
		agg.newSecs += pt.Seconds
		if pt.PersistsPerOp > old.PersistsPerOp*(1+comparePersistSlack)+1e-9 {
			fails = append(fails, fmt.Sprintf(
				"%s: persists/op rose %.3f -> %.3f",
				pt.Name, old.PersistsPerOp, pt.PersistsPerOp))
		}
	}
	if matched == 0 {
		return fmt.Errorf("bench: no scenario names in common with the baseline — regenerate it")
	}
	// Serve cells ride the same median-relative throughput machinery as
	// pseudo-groups (engine "serve", mix "conns=N") with their own, wider
	// persist slack; a baseline predating the serve section simply
	// contributes no matches.
	baseServe := make(map[string]ServePoint, len(oldRep.Serve))
	for _, pt := range oldRep.Serve {
		baseServe[pt.Name] = pt
	}
	for _, pt := range newRep.Serve {
		old, ok := baseServe[pt.Name]
		if !ok {
			continue
		}
		// Fault cells form their own pseudo-groups: a hostile wire's
		// throughput must be judged against the same fault rate, never
		// against the fault-free cells at the same conns/batch.
		g := groupKey{engine: "serve", mix: fmt.Sprintf("conns=%d/fault=%g", pt.Conns, pt.FaultRate), batch: pt.Batch}
		agg := groups[g]
		if agg == nil {
			agg = &groupAgg{}
			groups[g] = agg
		}
		agg.oldOps += float64(old.Ops)
		agg.oldSecs += old.Seconds
		agg.newOps += float64(pt.Ops)
		agg.newSecs += pt.Seconds
		if pt.PersistsPerOp > old.PersistsPerOp*(1+compareServePersistSlack)+1e-9 {
			fails = append(fails, fmt.Sprintf(
				"%s: persists/op rose %.3f -> %.3f (serve slack %.0f%%)",
				pt.Name, old.PersistsPerOp, pt.PersistsPerOp, 100*compareServePersistSlack))
		}
	}
	type groupRatio struct {
		key      groupKey
		old, new float64 // aggregate ops/s
		ratio    float64
	}
	var ratios []groupRatio
	for key, agg := range groups {
		if agg.oldSecs <= 0 || agg.newSecs <= 0 {
			continue
		}
		gr := groupRatio{key: key, old: agg.oldOps / agg.oldSecs, new: agg.newOps / agg.newSecs}
		if gr.old > 0 {
			gr.ratio = gr.new / gr.old
			ratios = append(ratios, gr)
		}
	}
	med := 1.0
	if n := len(ratios); n > 0 {
		rs := make([]float64, n)
		for i, gr := range ratios {
			rs[i] = gr.ratio
		}
		sort.Float64s(rs)
		med = rs[n/2]
		if n%2 == 0 {
			med = (rs[n/2-1] + rs[n/2]) / 2
		}
	}
	for _, gr := range ratios {
		if gr.ratio < compareOpsFloor*med {
			fails = append(fails, fmt.Sprintf(
				"engine=%s/mix=%s/batch=%d: aggregate ops/s %.0f -> %.0f (ratio %.2f vs pair median %.2f, floor %.0f%% of median)",
				gr.key.engine, gr.key.mix, gr.key.batch,
				gr.old, gr.new, gr.ratio, med, 100*compareOpsFloor))
		}
	}
	if len(fails) > 0 {
		sort.Strings(fails)
		return fmt.Errorf("bench: regression vs baseline %q:\n  %s",
			oldRep.Label, strings.Join(fails, "\n  "))
	}
	return nil
}
