package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/isb"
	"repro/internal/pmem"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// ServePoint is one serve-layer cell: the full network front-end (framed
// in-process transport, admission queues, batched ApplyWindow) driven by
// `Conns` pipelining clients, with simulated persistence latencies. The
// batch axis is what the cell argues about: concurrent connections are
// what fills admission windows, so syncs/op at Batch=N must undercut the
// Batch=1 anchor — the serve-layer restatement of the paper's batched
// placement claim, which Validate gates.
type ServePoint struct {
	Name          string  `json:"name"`
	Conns         int     `json:"conns"`
	Procs         int     `json:"procs"`
	Batch         int     `json:"batch"`
	Ops           int     `json:"ops"`
	Seconds       float64 `json:"seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	SyncsPerOp    float64 `json:"syncs_per_op"`
	PersistsPerOp float64 `json:"persists_per_op"`
	// Retried counts RETRY (backpressure) replies; BatchFillMean is the
	// mean admitted window size (the batching the connection mix earned).
	Retried       uint64  `json:"retried"`
	BatchFillMean float64 `json:"batch_fill_mean"`
	// Client-observed service latency, aggregated across connections
	// (median of per-conn p50s; worst per-conn p99).
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
}

// serveProcs is the fixed admission pool every serve cell runs on: the
// conns axis scales offered load against a constant-size server.
const serveProcs = 2

// runServe measures one serve cell: conns clients, each keeping up to
// `batch` requests in flight over its own connection, for opsPerConn
// requests per client against a crash-free server (the crash path has its
// own conformance sweep; this cell prices the steady-state serve path).
func runServe(p Params, conns, batch int) ServePoint {
	s := serve.New(serve.Config{
		Procs: serveProcs, Shards: 16, Batch: batch, QueueDepth: 4 * batch,
		Engine: repro.EngineIsbOpt, Reclaim: true, HeapWords: 1 << 20,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	})
	defer s.Close()
	ln := serve.NewMemListener()
	go s.Serve(ln)

	rt := s.Runtime()
	rt.Heap().ResetAllStats()
	ops := conns * p.OpsPerProc
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		nc, err := ln.Dial()
		if err != nil {
			panic(err)
		}
		c := client.New(nc, uint64(w+1))
		// Pipelining window = the admission batch: `slots` concurrent
		// request streams per connection, so the server's windows can fill.
		slots := batch
		if slots > 16 {
			slots = 16
		}
		perSlot := p.OpsPerProc / slots
		rest := p.OpsPerProc - perSlot*slots
		for sl := 0; sl < slots; sl++ {
			n := perSlot
			if sl < rest {
				n++
			}
			wg.Add(1)
			go func(w, sl, n int, c *client.Client) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(p.Seed*1009 + int64(w)*31 + int64(sl)))
				for i := 0; i < n; i++ {
					k := uint64(rng.Intn(p.KeyRange)) + 1
					var err error
					switch rng.Intn(4) {
					case 0:
						_, err = c.Put(k)
					case 1:
						_, err = c.Del(k)
					default:
						_, err = c.Get(k)
					}
					if err != nil {
						panic(err)
					}
				}
			}(w, sl, n, c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := s.Snapshot()
	mem := rt.Heap().TotalStats()
	st := isb.Stats{Ops: uint64(ops), Mem: mem}
	pt := ServePoint{
		Name:          fmt.Sprintf("serve/conns=%d/procs=%d/batch=%d", conns, serveProcs, batch),
		Conns:         conns,
		Procs:         serveProcs,
		Batch:         batch,
		Ops:           ops,
		Seconds:       elapsed.Seconds(),
		SyncsPerOp:    st.SyncsPerOp(),
		PersistsPerOp: st.PersistsPerOp(),
		Retried:       snap.Retried,
		BatchFillMean: snap.BatchFillMean(),
	}
	if elapsed > 0 {
		pt.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	var p50s []float64
	for _, cs := range snap.Conns {
		p50s = append(p50s, cs.P50Micros)
		if cs.P99Micros > pt.P99Micros {
			pt.P99Micros = cs.P99Micros
		}
	}
	if len(p50s) > 0 {
		sort.Float64s(p50s)
		pt.P50Micros = p50s[len(p50s)/2]
	}
	return pt
}

// runServeMatrix produces the serve section: conns × batch cells.
func runServeMatrix(p Params) []ServePoint {
	var out []ServePoint
	for _, conns := range p.ServeConns {
		for _, batch := range p.ServeBatches {
			out = append(out, runServe(p, conns, batch))
		}
	}
	return out
}
