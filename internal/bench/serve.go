package bench

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/isb"
	"repro/internal/pmem"
	"repro/internal/serve"
	"repro/internal/serve/chaos"
	"repro/internal/serve/client"
)

// ServePoint is one serve-layer cell: the full network front-end (framed
// in-process transport, admission queues, batched ApplyWindow) driven by
// `Conns` pipelining clients, with simulated persistence latencies. The
// batch axis is what the cell argues about: concurrent connections are
// what fills admission windows, so syncs/op at Batch=N must undercut the
// Batch=1 anchor — the serve-layer restatement of the paper's batched
// placement claim, which Validate gates.
type ServePoint struct {
	Name          string  `json:"name"`
	Conns         int     `json:"conns"`
	Procs         int     `json:"procs"`
	Batch         int     `json:"batch"`
	Ops           int     `json:"ops"`
	Seconds       float64 `json:"seconds"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	SyncsPerOp    float64 `json:"syncs_per_op"`
	PersistsPerOp float64 `json:"persists_per_op"`
	// Retried counts RETRY (backpressure) replies; BatchFillMean is the
	// mean admitted window size (the batching the connection mix earned).
	Retried       uint64  `json:"retried"`
	BatchFillMean float64 `json:"batch_fill_mean"`
	// Client-observed service latency, aggregated across connections
	// (median of per-conn p50s; worst per-conn p99).
	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`
	// FaultRate is the chaos schedule's expected connection kills per KiB
	// of traffic (0 = fault-free wire, the legacy cells). Fault cells run
	// session clients, so the workload completes exactly once regardless;
	// the counters below price what the survival cost:
	// connection re-establishments, OVERLOAD replies and request-deadline
	// expiries observed across all sessions. Validate requires the
	// fault-free cells to show zero reconnects/timeouts and the faulted
	// cells to show reconnects > 0 (otherwise the axis measured nothing).
	FaultRate  float64 `json:"fault_rate"`
	Reconnects uint64  `json:"reconnects"`
	Sheds      uint64  `json:"sheds"`
	Timeouts   uint64  `json:"timeouts"`
}

// kvClient is the request surface runServe drives: the raw pipelining
// Client on a fault-free wire, the reconnecting Session through chaos.
type kvClient interface {
	Put(key uint64) (bool, error)
	Del(key uint64) (bool, error)
	Get(key uint64) (bool, error)
}

// serveProcs is the fixed admission pool every serve cell runs on: the
// conns axis scales offered load against a constant-size server.
const serveProcs = 2

// runServe measures one serve cell: conns clients, each keeping up to
// `batch` requests in flight over its own connection, for opsPerConn
// requests per client against a crash-free server (the crash path has its
// own conformance sweep; this cell prices the steady-state serve path).
// faultRate > 0 additionally runs the wire through a seeded
// chaos.Listener killing connections mid-frame, and swaps the raw Client
// for the reconnecting Session — the cell then prices the hostile-network
// path: same exactly-once workload, plus redials and resubmits.
func runServe(p Params, conns, batch int, faultRate float64) ServePoint {
	s := serve.New(serve.Config{
		Procs: serveProcs, Shards: 16, Batch: batch, QueueDepth: 4 * batch,
		Engine: repro.EngineIsbOpt, Reclaim: true, HeapWords: 1 << 20,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	})
	defer s.Close()
	ln := serve.NewMemListener()
	var sched *chaos.Schedule
	if faultRate > 0 {
		sched = chaos.NewSchedule(chaos.ScheduleConfig{Seed: p.Seed, KillRate: faultRate})
		go s.Serve(chaos.NewListener(ln, sched))
	} else {
		go s.Serve(ln)
	}

	rt := s.Runtime()
	rt.Heap().ResetAllStats()
	ops := conns * p.OpsPerProc
	var sessions []*client.Session
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		var c kvClient
		if sched != nil {
			sess, err := client.DialSession(client.SessionConfig{
				ClientID:       uint64(w + 1),
				Dial:           func() (net.Conn, error) { return ln.Dial() },
				RequestTimeout: 10 * time.Second,
				Seed:           p.Seed + int64(w),
			})
			if err != nil {
				panic(err)
			}
			sessions = append(sessions, sess)
			c = sess
		} else {
			nc, err := ln.Dial()
			if err != nil {
				panic(err)
			}
			c = client.New(nc, uint64(w+1))
		}
		// Pipelining window = the admission batch: `slots` concurrent
		// request streams per connection, so the server's windows can fill.
		slots := batch
		if slots > 16 {
			slots = 16
		}
		perSlot := p.OpsPerProc / slots
		rest := p.OpsPerProc - perSlot*slots
		for sl := 0; sl < slots; sl++ {
			n := perSlot
			if sl < rest {
				n++
			}
			wg.Add(1)
			go func(w, sl, n int, c kvClient) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(p.Seed*1009 + int64(w)*31 + int64(sl)))
				for i := 0; i < n; i++ {
					k := uint64(rng.Intn(p.KeyRange)) + 1
					var err error
					switch rng.Intn(4) {
					case 0:
						_, err = c.Put(k)
					case 1:
						_, err = c.Del(k)
					default:
						_, err = c.Get(k)
					}
					if err != nil {
						panic(err)
					}
				}
			}(w, sl, n, c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	var agg client.SessionStats
	for _, sess := range sessions {
		cs := sess.SessionStats()
		agg.Reconnects += cs.Reconnects
		agg.Sheds += cs.Sheds
		agg.Timeouts += cs.Timeouts
		sess.Close()
	}

	snap := s.Snapshot()
	mem := rt.Heap().TotalStats()
	st := isb.Stats{Ops: uint64(ops), Mem: mem}
	name := fmt.Sprintf("serve/conns=%d/procs=%d/batch=%d", conns, serveProcs, batch)
	if faultRate > 0 {
		// Fault cells get their own names so cross-report comparison never
		// matches a hostile-wire cell against a fault-free baseline cell.
		name = fmt.Sprintf("%s/fault=%g", name, faultRate)
	}
	pt := ServePoint{
		Name:          name,
		Conns:         conns,
		Procs:         serveProcs,
		Batch:         batch,
		Ops:           ops,
		Seconds:       elapsed.Seconds(),
		SyncsPerOp:    st.SyncsPerOp(),
		PersistsPerOp: st.PersistsPerOp(),
		Retried:       snap.Retried,
		BatchFillMean: snap.BatchFillMean(),
		FaultRate:     faultRate,
		Reconnects:    agg.Reconnects,
		Sheds:         agg.Sheds,
		Timeouts:      agg.Timeouts,
	}
	if elapsed > 0 {
		pt.OpsPerSec = float64(ops) / elapsed.Seconds()
	}
	var p50s []float64
	for _, cs := range snap.Conns {
		p50s = append(p50s, cs.P50Micros)
		if cs.P99Micros > pt.P99Micros {
			pt.P99Micros = cs.P99Micros
		}
	}
	if len(p50s) > 0 {
		sort.Float64s(p50s)
		pt.P50Micros = p50s[len(p50s)/2]
	}
	return pt
}

// runServeMatrix produces the serve section: conns × batch fault-free
// cells, plus one hostile-wire cell per (conns, positive fault rate) at
// the largest batch size — the configuration the degradation curve
// argues about (rate 0 is already every legacy cell, so it adds nothing).
func runServeMatrix(p Params) []ServePoint {
	maxBatch := 1
	for _, b := range p.ServeBatches {
		if b > maxBatch {
			maxBatch = b
		}
	}
	var out []ServePoint
	for _, conns := range p.ServeConns {
		for _, batch := range p.ServeBatches {
			out = append(out, runServe(p, conns, batch, 0))
		}
		for _, rate := range p.ServeFaultRates {
			if rate > 0 {
				out = append(out, runServe(p, conns, maxBatch, rate))
			}
		}
	}
	return out
}
