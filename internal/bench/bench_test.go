package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro"
)

// TestReportSchema runs the quick matrix end to end and pins the JSON
// contract: Validate accepts the fresh report, and the serialized form
// carries the exact field names other tooling (CI artifact diffing) keys
// on. A rename or dropped field fails here, not in a downstream consumer.
func TestReportSchema(t *testing.T) {
	rep, err := Run(QuickParams())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := Marshal(rep)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("fresh report failed validation: %v", err)
	}

	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for _, key := range []string{"schema_version", "label", "go_version", "scenarios", "sweeps", "sweep_seconds", "reclaim", "serve"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("report JSON is missing top-level key %q", key)
		}
	}
	scen := raw["scenarios"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "engine", "procs", "shards", "mix", "batch", "ops",
		"seconds", "ops_per_sec", "pbarriers_per_op", "flushes_per_op", "syncs_per_op",
		"persists_per_op", "batch_syncs", "read_fast_ops"} {
		if _, ok := scen[key]; !ok {
			t.Fatalf("scenario JSON is missing key %q", key)
		}
	}
	sweep := raw["sweeps"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "cases", "crash_points", "seconds"} {
		if _, ok := sweep[key]; !ok {
			t.Fatalf("sweep JSON is missing key %q", key)
		}
	}
	rec := raw["reclaim"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "engine", "reclaim", "churn_ops",
		"heap_words_mid", "heap_words", "live_nodes", "freed_blocks", "reused_blocks"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("reclaim JSON is missing key %q", key)
		}
	}
	sv := raw["serve"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "conns", "procs", "batch", "ops", "seconds",
		"ops_per_sec", "syncs_per_op", "persists_per_op", "retried", "batch_fill_mean",
		"p50_micros", "p99_micros", "fault_rate", "reconnects", "sheds", "timeouts"} {
		if _, ok := sv[key]; !ok {
			t.Fatalf("serve JSON is missing key %q", key)
		}
	}

	// The matrix must cover both engines, every canonical mix, the batch
	// axis (with its batch=1 anchor), and the eviction-widened conformance
	// scenarios.
	engines, mixes, batches := map[string]bool{}, map[string]bool{}, map[int]bool{}
	for _, pt := range rep.Scenarios {
		engines[pt.Engine] = true
		mixes[pt.Mix] = true
		batches[pt.Batch] = true
	}
	if !engines["isb"] || !engines["isb-opt"] {
		t.Fatalf("scenario engines = %v, want isb and isb-opt", engines)
	}
	if len(mixes) != len(Mixes()) {
		t.Fatalf("scenario mixes = %v, want all of %v", mixes, Mixes())
	}
	if !batches[1] || len(batches) < 2 {
		t.Fatalf("scenario batches = %v, want batch=1 plus at least one batched size", batches)
	}
	evict := false
	for _, sw := range rep.Sweeps {
		if strings.Contains(sw.Name, "-evict") {
			evict = true
		}
	}
	if !evict {
		t.Fatal("sweep section has no eviction-enabled scenario")
	}
	if rep.SweepSeconds <= 0 {
		t.Fatalf("sweep_seconds = %v, want > 0", rep.SweepSeconds)
	}

	// The reclaim section must cover both allocators on both engines, and
	// the cells must show the contrast the section exists to pin: bounded
	// steady-state heap with the reclaimer, unbounded growth without.
	modes := map[string]bool{}
	for _, pt := range rep.Reclaim {
		modes[fmt.Sprintf("%s/%v", pt.Engine, pt.Reclaim)] = true
		if pt.Reclaim && pt.ReusedBlocks == 0 {
			t.Fatalf("reclaim cell %s never reused a block; churn is not exercising reclamation", pt.Name)
		}
	}
	for _, want := range []string{"isb/true", "isb/false", "isb-opt/true", "isb-opt/false"} {
		if !modes[want] {
			t.Fatalf("reclaim cells %v missing %s", modes, want)
		}
	}

	// The serve section must span the conns axis with a batch=1 anchor and
	// a batched cell per group (the undercut itself is Validate's gate,
	// already enforced above).
	serveGroups := map[int]map[int]bool{}
	for _, pt := range rep.Serve {
		if serveGroups[pt.Conns] == nil {
			serveGroups[pt.Conns] = map[int]bool{}
		}
		serveGroups[pt.Conns][pt.Batch] = true
	}
	if len(serveGroups) < 2 {
		t.Fatalf("serve section spans %d conns values, want >= 2", len(serveGroups))
	}
	for conns, batches := range serveGroups {
		if !batches[1] || len(batches) < 2 {
			t.Fatalf("serve conns=%d batches = %v, want batch=1 plus a batched size", conns, batches)
		}
	}
	// The fault axis must actually run: at least one hostile-wire cell per
	// conns value, each named distinctly from its fault-free twin (the
	// Reconnects > 0 requirement on those cells is Validate's gate).
	faultConns := map[int]bool{}
	for _, pt := range rep.Serve {
		if pt.FaultRate > 0 {
			faultConns[pt.Conns] = true
			if !strings.Contains(pt.Name, "fault=") {
				t.Fatalf("fault cell %s is not name-distinguished from the fault-free cells", pt.Name)
			}
		}
	}
	if len(faultConns) != len(serveGroups) {
		t.Fatalf("fault cells cover conns %v, want every conns group %v", faultConns, serveGroups)
	}
}

// TestValidateRejectsMalformed pins the failure modes the CI gate relies
// on: truncated output, wrong schema, and an empty matrix must all error.
func TestValidateRejectsMalformed(t *testing.T) {
	// validPrefix carries well-formed scenarios/sweeps/reclaim sections so
	// each case below trips exactly the serve-or-later check it names.
	const validPrefix = `{"schema_version": 5, "label": "x", "scenarios": [
		{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"read-heavy","batch":1,"ops":1,"seconds":1},
		{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"mixed","batch":1,"ops":1,"seconds":1},
		{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"write-heavy","batch":1,"ops":1,"seconds":1}],
		"sweeps": [{"name":"c","cases":1,"crash_points":1,"seconds":1}],
		"reclaim": [{"name":"r","engine":"isb","reclaim":false,"churn_ops":10,
		 "heap_words_mid":100,"heap_words":200}]`
	for name, data := range map[string]string{
		"truncated":    `{"schema_version": 5, "label": "x"`,
		"wrong-schema": `{"schema_version": 99, "label": "x", "scenarios": [], "sweeps": []}`,
		"no-scenarios": `{"schema_version": 5, "label": "x", "scenarios": [], "sweeps": []}`,
		"nan-metric": `{"schema_version": 5, "label": "x", "scenarios": [
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"mixed","batch":1,"ops":1,
			 "seconds":1,"ops_per_sec":"NaN"}], "sweeps": []}`,
		"no-batch-anchor": `{"schema_version": 5, "label": "x", "scenarios": [
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"read-heavy","batch":8,"ops":1,"seconds":1},
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"mixed","batch":8,"ops":1,"seconds":1},
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"write-heavy","batch":8,"ops":1,"seconds":1}],
			"sweeps": [{"name":"c","cases":1,"crash_points":1,"seconds":1}],
			"reclaim": [{"name":"r","engine":"isb","reclaim":false,"churn_ops":10,
			 "heap_words_mid":100,"heap_words":200}]}`,
		"reclaim-heap-grew": `{"schema_version": 5, "label": "x", "scenarios": [
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"read-heavy","batch":1,"ops":1,"seconds":1},
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"mixed","batch":1,"ops":1,"seconds":1},
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"write-heavy","batch":1,"ops":1,"seconds":1}],
			"sweeps": [{"name":"c","cases":1,"crash_points":1,"seconds":1}],
			"reclaim": [{"name":"r","engine":"isb","reclaim":true,"churn_ops":10,
			 "heap_words_mid":100,"heap_words":200}]}`,
		"no-serve": validPrefix + `}`,
		"serve-missing-anchor": validPrefix + `, "serve": [
			{"name":"sv","conns":1,"procs":2,"batch":8,"ops":10,"seconds":1,"ops_per_sec":10,
			 "syncs_per_op":2,"persists_per_op":4,"batch_fill_mean":2,"p50_micros":1,"p99_micros":2}]}`,
		"serve-batch-gate": validPrefix + `, "serve": [
			{"name":"sv1","conns":1,"procs":2,"batch":1,"ops":10,"seconds":1,"ops_per_sec":10,
			 "syncs_per_op":3,"persists_per_op":5,"batch_fill_mean":1,"p50_micros":1,"p99_micros":2},
			{"name":"sv8","conns":1,"procs":2,"batch":8,"ops":10,"seconds":1,"ops_per_sec":20,
			 "syncs_per_op":2.9,"persists_per_op":5,"batch_fill_mean":4,"p50_micros":1,"p99_micros":2}]}`,
		// A hostile-wire cell that never reconnected measured nothing.
		"fault-cell-no-reconnects": validPrefix + `, "serve": [
			{"name":"sv1","conns":1,"procs":2,"batch":1,"ops":10,"seconds":1,"ops_per_sec":10,
			 "syncs_per_op":3,"persists_per_op":5,"batch_fill_mean":1,"p50_micros":1,"p99_micros":2},
			{"name":"sv8","conns":1,"procs":2,"batch":8,"ops":10,"seconds":1,"ops_per_sec":20,
			 "syncs_per_op":2,"persists_per_op":5,"batch_fill_mean":4,"p50_micros":1,"p99_micros":2},
			{"name":"sv8f","conns":1,"procs":2,"batch":8,"ops":10,"seconds":1,"ops_per_sec":15,
			 "syncs_per_op":2,"persists_per_op":5,"batch_fill_mean":4,"p50_micros":1,"p99_micros":2,
			 "fault_rate":0.5,"reconnects":0}]}`,
		// A fault-free cell must never reconnect: the serve path itself
		// dropped a connection.
		"fault-free-cell-reconnected": validPrefix + `, "serve": [
			{"name":"sv1","conns":1,"procs":2,"batch":1,"ops":10,"seconds":1,"ops_per_sec":10,
			 "syncs_per_op":3,"persists_per_op":5,"batch_fill_mean":1,"p50_micros":1,"p99_micros":2,
			 "reconnects":2},
			{"name":"sv8","conns":1,"procs":2,"batch":8,"ops":10,"seconds":1,"ops_per_sec":20,
			 "syncs_per_op":2,"persists_per_op":5,"batch_fill_mean":4,"p50_micros":1,"p99_micros":2}]}`,
	} {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: Validate accepted malformed report", name)
		}
	}
}

// TestReclaimBoundedHeap is the headline reclamation pin: a churn workload
// whose cumulative allocation demand exceeds 100x the heap's capacity must
// complete with the epoch reclaimer on — every allocation past the first
// few windows is served from recycled blocks — and leave heap usage far
// below capacity. The same demand under the leak-forever arena is
// unsatisfiable by construction (the arena never frees, so it would
// exhaust the heap after ~1% of the workload and panic); the arithmetic
// below documents that baseline instead of running it to the panic.
func TestReclaimBoundedHeap(t *testing.T) {
	const heapCap = 1 << 15
	for _, eng := range engineKinds() {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			rt := repro.New(repro.Config{
				Procs: 1, HeapWords: heapCap, Engine: eng.kind, Reclaim: true,
			})
			q := rt.NewQueue()
			p := rt.Proc(0)
			// Demand per enqueue/dequeue pair: two 32-word tracking records
			// plus one 4-word node = 68 words minimum (copies and failed
			// attempts only add to it).
			const wordsPerPair = 68
			pairs := 100*heapCap/wordsPerPair + 1
			if demand := pairs * wordsPerPair; demand < 100*heapCap {
				t.Fatalf("demand %d words < 100x capacity %d", demand, 100*heapCap)
			}
			for i := 0; i < pairs; i++ {
				q.Enqueue(p, uint64(i))
				if v, ok := q.Dequeue(p); !ok || v != uint64(i) {
					t.Fatalf("pair %d: dequeue got (%d, %v)", i, v, ok)
				}
			}
			used := rt.Heap().Used()
			if used > heapCap/2 {
				t.Fatalf("heap usage %d words after %d pairs; want bounded well below capacity %d",
					used, pairs, heapCap)
			}
			st, _ := rt.ReclaimStats()
			if st.Reused == 0 || st.Freed == 0 {
				t.Fatalf("no recycling happened: stats %+v", st)
			}
			t.Logf("%d pairs (demand %dx capacity): used %d/%d words, live %d blocks, stats %+v",
				pairs, pairs*wordsPerPair/heapCap, used, heapCap, rt.LiveNodes(), st)
		})
	}
}

// TestCompare pins the regression gate cmd/bench -compare runs in CI:
// identical reports pass, a throughput collapse (relative to the report
// pair's median ratio, which cancels machine-wide skew) or a persists/op
// rise fails with the offending cell named, and disjoint matrices and
// schema mismatches are errors rather than silent passes.
func TestCompare(t *testing.T) {
	mk := func(edit func(*Report)) []byte {
		rep := Report{Schema: SchemaVersion, Label: "base", Scenarios: []Point{
			{Name: "a/batch=1", Engine: "isb", Mix: "mixed", Batch: 1,
				Ops: 1000, Seconds: 1.0, OpsPerSec: 1000, PersistsPerOp: 4.0},
			{Name: "a/batch=64", Engine: "isb", Mix: "mixed", Batch: 64,
				Ops: 3000, Seconds: 1.0, OpsPerSec: 3000, PersistsPerOp: 1.2},
		}, Serve: []ServePoint{
			{Name: "serve/conns=4/procs=2/batch=16", Conns: 4, Procs: 2, Batch: 16,
				Ops: 4000, Seconds: 1.0, OpsPerSec: 4000, PersistsPerOp: 2.0},
			{Name: "serve/conns=4/procs=2/batch=16/fault=0.5", Conns: 4, Procs: 2, Batch: 16,
				Ops: 4000, Seconds: 2.0, OpsPerSec: 2000, PersistsPerOp: 2.0,
				FaultRate: 0.5, Reconnects: 7},
		}}
		if edit != nil {
			edit(&rep)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := mk(nil)

	if err := Compare(base, mk(nil)); err != nil {
		t.Fatalf("identical reports flagged: %v", err)
	}
	// Throughput noise inside the floor passes; a collapse fails, named by
	// its (engine, mix, batch) group.
	if err := Compare(base, mk(func(r *Report) { r.Scenarios[0].Seconds = 1.1 })); err != nil {
		t.Fatalf("10%% throughput dip flagged: %v", err)
	}
	err := Compare(base, mk(func(r *Report) { r.Scenarios[1].Seconds = 2.0 }))
	if err == nil || !strings.Contains(err.Error(), "batch=64") {
		t.Fatalf("50%% throughput collapse not flagged by group: %v", err)
	}
	// A machine-wide slowdown (every group equally slower) normalizes away.
	if err := Compare(base, mk(func(r *Report) {
		for i := range r.Scenarios {
			r.Scenarios[i].Seconds *= 2.0
		}
		for i := range r.Serve {
			r.Serve[i].Seconds *= 2.0
		}
	})); err != nil {
		t.Fatalf("uniform 2x slowdown flagged despite median normalization: %v", err)
	}
	// A whole extra persist per op fails; slack-sized jitter passes.
	err = Compare(base, mk(func(r *Report) { r.Scenarios[1].PersistsPerOp = 2.2 }))
	if err == nil || !strings.Contains(err.Error(), "persists/op") {
		t.Fatalf("persists/op regression not flagged: %v", err)
	}
	if err := Compare(base, mk(func(r *Report) { r.Scenarios[1].PersistsPerOp = 1.21 })); err != nil {
		t.Fatalf("sub-slack persists/op jitter flagged: %v", err)
	}
	// Serve cells ride the same gates with a wider persist slack: +20%
	// (window-fill scheduling jitter) passes, +30% fails by name, and a
	// serve throughput collapse is flagged as its own pseudo-group.
	if err := Compare(base, mk(func(r *Report) { r.Serve[0].PersistsPerOp = 2.4 })); err != nil {
		t.Fatalf("serve persists/op jitter inside the wide slack flagged: %v", err)
	}
	err = Compare(base, mk(func(r *Report) { r.Serve[0].PersistsPerOp = 2.6 }))
	if err == nil || !strings.Contains(err.Error(), "serve/conns=4") {
		t.Fatalf("serve persists/op regression not flagged: %v", err)
	}
	err = Compare(base, mk(func(r *Report) { r.Serve[0].Seconds = 2.5 }))
	if err == nil || !strings.Contains(err.Error(), "engine=serve") {
		t.Fatalf("serve throughput collapse not flagged as a serve group: %v", err)
	}
	// Fault cells are their own pseudo-group: a hostile-wire collapse is
	// named by its fault rate, never blended into the fault-free group.
	err = Compare(base, mk(func(r *Report) { r.Serve[1].Seconds = 5.0 }))
	if err == nil || !strings.Contains(err.Error(), "fault=0.5") {
		t.Fatalf("fault-cell throughput collapse not flagged by its fault group: %v", err)
	}
	// Structural mismatches must error.
	if err := Compare(base, mk(func(r *Report) { r.Schema = SchemaVersion + 1 })); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	if err := Compare(base, mk(func(r *Report) {
		for i := range r.Scenarios {
			r.Scenarios[i].Name += "/renamed"
		}
	})); err == nil {
		t.Fatal("disjoint scenario names accepted")
	}
}
