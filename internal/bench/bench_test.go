package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestReportSchema runs the quick matrix end to end and pins the JSON
// contract: Validate accepts the fresh report, and the serialized form
// carries the exact field names other tooling (CI artifact diffing) keys
// on. A rename or dropped field fails here, not in a downstream consumer.
func TestReportSchema(t *testing.T) {
	rep, err := Run(QuickParams())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := Marshal(rep)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("fresh report failed validation: %v", err)
	}

	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for _, key := range []string{"schema_version", "label", "go_version", "scenarios", "sweeps", "sweep_seconds"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("report JSON is missing top-level key %q", key)
		}
	}
	scen := raw["scenarios"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "engine", "procs", "shards", "mix", "ops",
		"seconds", "ops_per_sec", "pbarriers_per_op", "flushes_per_op", "syncs_per_op", "persists_per_op"} {
		if _, ok := scen[key]; !ok {
			t.Fatalf("scenario JSON is missing key %q", key)
		}
	}
	sweep := raw["sweeps"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "cases", "crash_points", "seconds"} {
		if _, ok := sweep[key]; !ok {
			t.Fatalf("sweep JSON is missing key %q", key)
		}
	}

	// The matrix must cover both engines, every canonical mix, and the
	// eviction-widened conformance scenarios.
	engines, mixes := map[string]bool{}, map[string]bool{}
	for _, pt := range rep.Scenarios {
		engines[pt.Engine] = true
		mixes[pt.Mix] = true
	}
	if !engines["isb"] || !engines["isb-opt"] {
		t.Fatalf("scenario engines = %v, want isb and isb-opt", engines)
	}
	if len(mixes) != len(Mixes()) {
		t.Fatalf("scenario mixes = %v, want all of %v", mixes, Mixes())
	}
	evict := false
	for _, sw := range rep.Sweeps {
		if strings.Contains(sw.Name, "-evict") {
			evict = true
		}
	}
	if !evict {
		t.Fatal("sweep section has no eviction-enabled scenario")
	}
	if rep.SweepSeconds <= 0 {
		t.Fatalf("sweep_seconds = %v, want > 0", rep.SweepSeconds)
	}
}

// TestValidateRejectsMalformed pins the failure modes the CI gate relies
// on: truncated output, wrong schema, and an empty matrix must all error.
func TestValidateRejectsMalformed(t *testing.T) {
	for name, data := range map[string]string{
		"truncated":    `{"schema_version": 1, "label": "x"`,
		"wrong-schema": `{"schema_version": 99, "label": "x", "scenarios": [], "sweeps": []}`,
		"no-scenarios": `{"schema_version": 1, "label": "x", "scenarios": [], "sweeps": []}`,
		"nan-metric": `{"schema_version": 1, "label": "x", "scenarios": [
			{"name":"s","engine":"isb","procs":1,"shards":1,"mix":"mixed","ops":1,
			 "seconds":1,"ops_per_sec":"NaN"}], "sweeps": []}`,
	} {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: Validate accepted malformed report", name)
		}
	}
}
