// Package rcas implements a detectably recoverable Compare&Swap in the
// style of Attiya, Ben-Baruch and Hendler (PODC 2018) — the primitive
// underneath the capsules transformation of Ben-David, Blelloch, Friedman
// and Wei (SPAA 2019), which the paper evaluates against.
//
// A recoverable location holds a pointer to an immutable descriptor
// ⟨value, owner⟩, where owner identifies the process and per-process
// sequence number of the CAS that installed it. Recoverability comes from
// the notification rule: a process that successfully replaces a descriptor
// persistently announces the overwritten descriptor's ⟨proc, seq⟩ in the
// owner's announcement slot *before* persisting its own installation.
// After a crash, process p's CAS #s provably succeeded iff the location
// still holds p's descriptor for seq s, or Ann[p] ≥ s.
package rcas

import (
	"repro/internal/pmem"
)

// Descriptor field offsets (words); 2-word descriptors.
const (
	dVal   = 0
	dOwner = 1

	descWords = 2
)

// Owner encoding: (proc+1) << 40 | seq. Zero means "initial value, no
// owner" (no announcement needed when overwriting it).
func encodeOwner(proc int, seq uint64) uint64 {
	return uint64(proc+1)<<40 | (seq & ((1 << 40) - 1))
}

func ownerProc(o uint64) int   { return int(o>>40) - 1 }
func ownerSeq(o uint64) uint64 { return o & ((1 << 40) - 1) }

// Space manages recoverable locations for one data structure: it holds the
// per-process announcement slots.
type Space struct {
	h   *pmem.Heap
	ann pmem.Addr // per-proc announcement line
}

// NewSpace allocates announcement slots for every process of the heap.
func NewSpace(h *pmem.Heap) *Space {
	p := h.Proc(0)
	n := uint64(h.NumProcs())
	raw := p.Alloc((n + 1) * pmem.WordsPerLine)
	s := &Space{h: h, ann: (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)}
	return s
}

func (s *Space) annSlot(proc int) pmem.Addr {
	return s.ann + pmem.Addr(proc*pmem.WordsPerLine)
}

// InitLoc initializes a recoverable location to an un-owned initial value.
// The caller persists the enclosing structure.
func (s *Space) InitLoc(p *pmem.Proc, loc pmem.Addr, val uint64) {
	d := p.Alloc(descWords)
	p.Store(d+dVal, val)
	p.Store(d+dOwner, 0)
	p.PBarrierRange(d, descWords)
	p.Store(loc, uint64(d))
	p.PWB(loc)
	p.PSync()
}

// Read returns the current value of a recoverable location.
func (s *Space) Read(p *pmem.Proc, loc pmem.Addr) uint64 {
	d := pmem.Addr(p.Load(loc))
	return p.Load(d + dVal)
}

// CAS attempts to change loc from old to new as p's CAS number seq. It
// returns the value it read (success iff the return value equals old).
// Callers must persist seq in their own recovery data before invoking, and
// use strictly increasing seq values per process. seq 0 installs an
// ownerless descriptor: the CAS is auxiliary (e.g. a helping unlink) and
// its outcome will never be queried — crucially, it then cannot advance
// the announcement watermark and masquerade as an earlier queried CAS.
func (s *Space) CAS(p *pmem.Proc, loc pmem.Addr, old, new, seq uint64) uint64 {
	for {
		d := pmem.Addr(p.Load(loc))
		cur := p.Load(d + dVal)
		if cur != old {
			return cur
		}
		owner := uint64(0)
		if seq != 0 {
			owner = encodeOwner(p.ID(), seq)
		}
		nd := p.Alloc(descWords)
		p.Store(nd+dVal, new)
		p.Store(nd+dOwner, owner)
		p.PBarrierRange(nd, descWords)
		if !p.CASBool(loc, uint64(d), uint64(nd)) {
			continue // location changed under us; re-read
		}
		// Notify the overwritten owner before persisting our install, so
		// its recovery can never miss a CAS whose effect became durable.
		if o := p.Load(d + dOwner); o != 0 {
			s.notify(p, ownerProc(o), ownerSeq(o))
		}
		p.PWB(loc)
		p.PSync()
		return old
	}
}

// notify records "proc's CAS #seq was overwritten ⇒ it took effect" with a
// monotone max-store.
func (s *Space) notify(p *pmem.Proc, proc int, seq uint64) {
	slot := s.annSlot(proc)
	for {
		cur := p.Load(slot)
		if cur >= seq {
			return
		}
		if p.CASBool(slot, cur, seq) {
			p.PWB(slot)
			p.PSync()
			return
		}
	}
}

// Outcome of a recovery query.
type Outcome int

const (
	// Succeeded: the CAS provably installed its value.
	Succeeded Outcome = iota
	// Unknown: the CAS left no durable trace — it either never executed,
	// failed, or its install was lost at the crash. The enclosing capsule
	// re-executes from its checkpoint.
	Unknown
)

// Recover determines whether p's CAS #seq on loc took effect.
func (s *Space) Recover(p *pmem.Proc, loc pmem.Addr, seq uint64) Outcome {
	d := pmem.Addr(p.Load(loc))
	if o := p.Load(d + dOwner); o != 0 && ownerProc(o) == p.ID() && ownerSeq(o) == seq {
		return Succeeded
	}
	if p.Load(s.annSlot(p.ID())) >= seq {
		return Succeeded
	}
	return Unknown
}

// Announced returns p's announcement watermark (test helper).
func (s *Space) Announced(proc int) uint64 {
	return s.h.ReadVolatile(s.annSlot(proc))
}
