package rcas

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newSpace(t *testing.T, procs int) (*Space, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: procs, Tracked: true})
	return NewSpace(h), h
}

func TestReadAfterInit(t *testing.T) {
	s, h := newSpace(t, 1)
	p := h.Proc(0)
	loc := p.Alloc(1)
	s.InitLoc(p, loc, 42)
	if got := s.Read(p, loc); got != 42 {
		t.Fatalf("Read = %d", got)
	}
}

func TestCASSuccessAndFailure(t *testing.T) {
	s, h := newSpace(t, 1)
	p := h.Proc(0)
	loc := p.Alloc(1)
	s.InitLoc(p, loc, 1)
	if got := s.CAS(p, loc, 1, 2, 1); got != 1 {
		t.Fatalf("successful CAS returned %d", got)
	}
	if got := s.Read(p, loc); got != 2 {
		t.Fatalf("value = %d", got)
	}
	if got := s.CAS(p, loc, 1, 3, 2); got != 2 {
		t.Fatalf("failed CAS returned %d, want current 2", got)
	}
}

func TestRecoverCurrentDescriptor(t *testing.T) {
	s, h := newSpace(t, 1)
	p := h.Proc(0)
	loc := p.Alloc(1)
	s.InitLoc(p, loc, 1)
	s.CAS(p, loc, 1, 2, 7)
	if s.Recover(p, loc, 7) != Succeeded {
		t.Fatal("CAS whose descriptor is installed not recovered as success")
	}
	if s.Recover(p, loc, 8) != Unknown {
		t.Fatal("unexecuted CAS recovered as success")
	}
}

func TestRecoverViaAnnouncement(t *testing.T) {
	s, h := newSpace(t, 2)
	p0, p1 := h.Proc(0), h.Proc(1)
	loc := p0.Alloc(1)
	s.InitLoc(p0, loc, 1)
	s.CAS(p0, loc, 1, 2, 5) // p0 installs
	s.CAS(p1, loc, 2, 3, 9) // p1 overwrites: must announce p0's seq 5
	if s.Recover(p0, loc, 5) != Succeeded {
		t.Fatal("overwritten CAS not recovered via announcement")
	}
	if s.Announced(0) != 5 {
		t.Fatalf("announcement = %d, want 5", s.Announced(0))
	}
}

func TestAnnouncementSurvivesCrash(t *testing.T) {
	s, h := newSpace(t, 2)
	p0, p1 := h.Proc(0), h.Proc(1)
	loc := p0.Alloc(1)
	s.InitLoc(p0, loc, 1)
	s.CAS(p0, loc, 1, 2, 5)
	s.CAS(p1, loc, 2, 3, 9)
	h.Crash()
	pmem.RunOp(func() { p0.Load(loc) })
	h.ResetAfterCrash()
	if s.Recover(p0, loc, 5) != Succeeded {
		t.Fatal("announcement lost across crash")
	}
	if s.Recover(p1, loc, 9) != Succeeded {
		t.Fatal("installed descriptor lost across crash")
	}
}

func TestOwnerlessCASDoesNotAnnounce(t *testing.T) {
	s, h := newSpace(t, 2)
	p0, p1 := h.Proc(0), h.Proc(1)
	loc := p0.Alloc(1)
	s.InitLoc(p0, loc, 1)
	s.CAS(p0, loc, 1, 2, 0) // auxiliary: ownerless
	s.CAS(p1, loc, 2, 3, 1) // overwrites an ownerless descriptor
	if s.Announced(0) != 0 {
		t.Fatal("ownerless CAS polluted the announcement watermark")
	}
	if s.Recover(p0, loc, 1) != Unknown {
		t.Fatal("phantom success for p0")
	}
}

func TestCrashSweepCASRecovery(t *testing.T) {
	// Crash at every offset inside a CAS; recovery must be consistent with
	// the durable state of the location.
	for offset := uint64(1); offset <= 15; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
		s := NewSpace(h)
		p := h.Proc(0)
		loc := p.Alloc(1)
		s.InitLoc(p, loc, 1)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed := !pmem.RunOp(func() { s.CAS(p, loc, 1, 2, 3) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
		}
		out := s.Recover(p, loc, 3)
		val := s.Read(p, loc)
		if out == Succeeded && val != 2 {
			t.Fatalf("offset %d: recovery says success but value %d", offset, val)
		}
		if out == Unknown && val == 2 {
			t.Fatalf("offset %d: value installed but recovery says unknown", offset)
		}
	}
}

func TestConcurrentCASOneWinnerPerTransition(t *testing.T) {
	s, h := newSpace(t, 4)
	loc := h.Proc(0).Alloc(1)
	s.InitLoc(h.Proc(0), loc, 0)
	var wg sync.WaitGroup
	wins := make([]int, 4)
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			for i := uint64(0); i < 1000; i++ {
				if s.CAS(p, loc, i, i+1, i+1) == i {
					wins[id]++
				}
			}
		}(id)
	}
	wg.Wait()
	// Each transition i -> i+1 has exactly one winner... but procs attempt
	// the same sequence, so total wins must equal the final value.
	total := 0
	for _, w := range wins {
		total += w
	}
	if got := s.Read(h.Proc(0), loc); got != uint64(total) {
		t.Fatalf("final value %d but %d CAS wins", got, total)
	}
}
