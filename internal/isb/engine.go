package isb

import "repro/internal/pmem"

// Help tries to complete the operation described by the Info record at
// info. It is the paper's Algorithm 1 Help procedure, including the red
// persistency instructions of the shared cache model, with their placement
// delegated to the engine's Persister: every CAS on an info field or
// WriteSet field is reported as a dirty word, and every phase ends with
// EndPhase (the eager placement writes back per CAS; the batched placement
// issues one barrier per phase).
//
// Help is idempotent and may be executed concurrently by any number of
// processes. The invoker tags starting from the first AffectSet element;
// helpers start from the second (they discovered the operation through a
// tag the invoker installed, so the first element needs no help).
func (e *Engine) Help(p *pmem.Proc, info pmem.Addr, invoker bool) {
	per := e.per(p)
	per.Reset()
	tagged := Tagged(info)
	n := int(p.Load(info + offAffectLen))
	start := 0
	if !invoker {
		start = 1
	}

	// A set result proves the tagging and update phases already completed
	// (every result store is persisted before the cleanup phase starts), so
	// skip straight to re-running the idempotent update and cleanup phases.
	// Without this, recovering a crash that landed mid-cleanup would abort
	// in the tagging phase — the completed operation's tags have been
	// recycled to non-tagged info values that can never match the expected
	// ones — and surviving nodes would stay tagged until some later
	// operation happened to help them.
	if p.Load(info+offResult) != RespNone {
		// A durably done record is fully finished AND its retired-class
		// operands may since have been recycled as unrelated live nodes,
		// so its update CASes' expected values could recur — re-running
		// finish here (post-crash recovery is the only path that can still
		// reach such a record) would risk firing a stale CAS into live
		// data. The done flag is written back before any operand is
		// retired, so done = 0 guarantees the operands never left the
		// structure's history and the re-run is the usual idempotent redo.
		if p.Load(info+offDone) != 0 {
			return
		}
		e.finish(p, info, tagged)
		return
	}

	// Tagging phase.
	for i := start; i < n; i++ {
		nd := pmem.Addr(p.Load(info + offAffect + pmem.Addr(2*i)))
		exp := p.Load(info + offAffect + pmem.Addr(2*i) + 1)
		res := p.CAS(nd, exp, tagged)
		per.WroteWord(nd)
		if res != exp && res != tagged {
			// Backtrack phase: untag earlier elements in reverse order,
			// each to a fresh cookie (see Engine.cookie). Safe even past
			// the invoker's first element: a tag failure at a retired-class
			// element (index ≥ 1) proves the operation can never complete,
			// because expected info values never recur.
			for j := i - 1; j >= 0; j-- {
				ndj := pmem.Addr(p.Load(info + offAffect + pmem.Addr(2*j)))
				p.CAS(ndj, tagged, e.cookie(p))
				per.WroteWord(ndj)
			}
			e.endPhase(p, per)
			return
		}
	}
	e.endPhase(p, per)

	e.finish(p, info, tagged)
}

// finish runs the update and cleanup phases of Help. Both are idempotent
// and may be re-executed by recovery or by any number of helpers.
func (e *Engine) finish(p *pmem.Proc, info pmem.Addr, tagged uint64) {
	per := e.per(p)

	// Update phase: apply the WriteSet CASes. Each change happens exactly
	// once across all helpers because old values never recur (the ABA
	// assumption the structures discharge by copying replaced nodes).
	wn := int(p.Load(info + offWriteLen))
	for i := 0; i < wn; i++ {
		a := pmem.Addr(p.Load(info + offWrites + pmem.Addr(3*i)))
		old := p.Load(info + offWrites + pmem.Addr(3*i) + 1)
		new := p.Load(info + offWrites + pmem.Addr(3*i) + 2)
		p.CAS(a, old, new)
		per.WroteWord(a)
	}
	p.Store(info+offResult, p.Load(info+offSuccess))
	per.WroteWord(info + offResult)
	e.endPhase(p, per)

	// Cleanup phase: untag the surviving nodes, each to a fresh cookie
	// (never the same non-tagged value twice — see Engine.cookie). Retired
	// nodes are absent from the CleanupSet and stay tagged until the
	// allocator recycles them.
	cn := int(p.Load(info + offCleanupLen))
	for i := 0; i < cn; i++ {
		nd := pmem.Addr(p.Load(info + offCleanup + pmem.Addr(i)))
		p.CAS(nd, tagged, e.cookie(p))
		per.WroteWord(nd)
	}
	e.endPhase(p, per)
}

// RunOp executes one recoverable operation via the Algorithm 2 (ROpt)
// driver and returns its encoded response. gather is called once per
// attempt with a fresh Info record.
//
// The sequence is exactly the paper's: announce the operation and persist
// CP_q := 0 (BeginOpFor), RD_q := Null + pbarrier, CP_q := 1 + pwb +
// psync, then attempts of gather → helping phase → install Info → pbarrier
// over the record and the NewSet → RD_q := info + pwb + psync → read-only
// fast return or Help → return result if set.
func (e *Engine) RunOp(p *pmem.Proc, opType, argKey uint64, gather Gather) uint64 {
	e.BeginOpFor(p, opType, argKey)
	return e.runAttempts(p, opType, argKey, gather)
}

// runAttempts is RunOp after the system-side CP_q := 0 step; Recover's
// re-invoke path enters here directly (CP_q is already meaningful).
func (e *Engine) runAttempts(p *pmem.Proc, opType, argKey uint64, gather Gather) uint64 {
	rd, cp := e.rd(p), e.cp(p)
	p.Store(rd, uint64(pmem.Null))
	p.PBarrier(rd)
	p.Store(cp, 1)
	p.PWB(cp)
	e.opSync(p)
	return e.attemptLoop(p, opType, argKey, gather)
}

// attemptLoop is the gather → install → Help attempt cycle, entered with
// RD_q/CP_q already initialized. Batch operations after the first enter here
// directly: CP_q is already 1 and RD_q still names the previous op's record,
// which recovery tells apart from this op's by the stamped sequence number.
func (e *Engine) attemptLoop(p *pmem.Proc, opType, argKey uint64, gather Gather) uint64 {
	rd := e.rd(p)
	per := e.per(p)
	spec := &e.specs[p.ID()] // reused per-process scratch, see Engine.specs
	for {
		// (Re-)pin the process in the current reclamation epoch: every
		// address this attempt gathers stays allocated until the pin moves.
		// No reference survives an attempt, so refreshing per attempt is
		// safe and keeps the epoch advancing. The pin is released on every
		// return below; a crash leaves it stuck, and the post-crash scan
		// clears stuck pins. (No deferred release: a crashed process's
		// stores are silently dropped, which would corrupt nothing here,
		// but an explicit protocol keeps the crash surface inspectable.)
		e.alloc.Enter(p)

		info := e.allocInfo(p)
		spec.Reset()
		spec.OpType, spec.ArgKey = opType, argKey

		// Gather phase.
		if gather(p, info, spec) == Restart {
			e.discardAttempt(p, info, spec)
			continue
		}

		// Helping phase: if some gathered info field is tagged, complete
		// that operation first, then start a new attempt.
		helped := false
		for i := 0; i < spec.NAffect; i++ {
			if IsTagged(spec.Affect[i].Expected) {
				e.Help(p, InfoOf(spec.Affect[i].Expected), false)
				helped = true
				break
			}
		}
		if helped {
			e.discardAttempt(p, info, spec)
			continue
		}

		// Install the Info record and persist it with the new nodes. The
		// batched persister covers the record and the whole NewSet in one
		// barrier; the eager one issues a pbarrier per range.
		per.Reset()
		e.install(p, info, spec)
		per.WroteRange(info, InfoWords)
		for i := 0; i < spec.NPersist; i++ {
			per.WroteRange(spec.Persist[i].Addr, spec.Persist[i].Words)
		}
		per.Flush()
		p.Store(rd, uint64(info))
		p.PWB(rd)
		e.opSync(p)
		// RD_q durably points at this attempt's record, so the previous
		// attempt's (if any) can no longer be consulted: retire it.
		e.retireLast(p)
		e.lastInfo[p.ID()] = info

		// ROpt fast path (Algorithm 2 lines 78–79): the response was
		// stored into the record by install and persisted above.
		if spec.ReadOnly && !e.noROpt {
			e.alloc.Exit(p)
			return spec.Response
		}
		if spec.ReadOnly && spec.NAffect == 0 {
			// Help has nothing to tag or write for an empty AffectSet;
			// the fast return is the only sensible execution even with
			// the fast path disabled.
			e.alloc.Exit(p)
			return spec.Response
		}

		e.Help(p, info, true)
		if r := p.Load(info + offResult); r != RespNone {
			e.markDone(p, info)
			e.retireAffected(p, spec)
			e.alloc.Exit(p)
			return r
		}

		// The attempt failed its tagging phase after install: its fresh
		// nodes were published in the record but can never be linked (the
		// invoker's own tag failure proves the operation cannot complete,
		// and only the never-run update/cleanup phases dereference them).
		// Retire — not Free — them: lagging helpers may still read the
		// record, and the epoch grace outlives every such reader.
		for i := 0; i < spec.NPersist; i++ {
			e.alloc.Retire(p, spec.Persist[i].Addr)
		}
	}
}

// discardAttempt returns an attempt's never-published allocations — the
// Info record and the fresh nodes the gather recorded in its Persist
// ranges — straight to the free list. Before install, no shared location
// mentions any of them, so immediate reuse is safe. (Gathers allocate
// nodes and call AddPersist together, and their Restart paths run before
// any allocation, so the Persist ranges are exactly the fresh nodes.)
func (e *Engine) discardAttempt(p *pmem.Proc, info pmem.Addr, spec *Spec) {
	for i := 0; i < spec.NPersist; i++ {
		e.alloc.Free(p, spec.Persist[i].Addr)
	}
	e.alloc.Free(p, info)
}

// markDone durably flags a completed record (one pwb, no psync): Help's
// result-set path refuses to re-run finish on a done record, because done
// is written back strictly before any of the record's operands is retired
// — the precondition for their addresses to ever recur. A torn (lost)
// flag is safe: it implies the operands were never retired either.
func (e *Engine) markDone(p *pmem.Proc, info pmem.Addr) {
	p.Store(info+offDone, 1)
	p.PWB(info + offDone)
}

// retireAffected retires the retired-class nodes of a completed operation:
// the AffectSet entries absent from the CleanupSet, which the update phase
// just unlinked (they stay tagged; traversals can no longer reach them).
// Only the invoker calls this, exactly once per operation — result ≠ ⊥ on
// the invoker's own current record proves this very attempt took effect.
func (e *Engine) retireAffected(p *pmem.Proc, spec *Spec) {
	if spec.ReadOnly {
		return // nothing was unlinked
	}
	for i := 0; i < spec.NAffect; i++ {
		nd := spec.Affect[i].Info
		inCleanup := false
		for j := 0; j < spec.NCleanup; j++ {
			if spec.Cleanup[j] == nd {
				inCleanup = true
				break
			}
		}
		if !inCleanup {
			e.alloc.Retire(p, nd)
		}
	}
}

// Recover is the generic Op-Recover: called after a crash with the same
// opType/argKey the interrupted operation was invoked with, plus the same
// gather function, and it returns the operation's response. Per the paper,
// if CP_q = 0 or RD_q = Null the operation made no changes and is simply
// re-invoked; otherwise Help(RD_q) completes it (or cleans up a failed
// attempt) and the result field decides. Recover may itself crash and be
// re-invoked any number of times.
func (e *Engine) Recover(p *pmem.Proc, opType, argKey uint64, gather Gather) uint64 {
	return e.RecoverSeq(p, opType, argKey, 0, gather)
}

// RecoverSeq is Recover for an operation at batch sequence number seq (0 for
// single operations): the installed record is only attributed to this
// operation if its stamped sequence matches, so a crashed batch whose cursor
// says "op seq is in flight" can never resolve op seq from a neighbouring
// op's record, even when consecutive batch ops share (kind, arg). Recovery
// always runs outside any batch window: the calling process's sync deferral
// is torn down first, and a re-invoked attempt stamps seq so that a further
// crash re-attributes it correctly.
func (e *Engine) RecoverSeq(p *pmem.Proc, opType, argKey, seq uint64, gather Gather) uint64 {
	id := p.ID()
	e.batchMode[id] = syncEager
	e.curSeq[id] = seq
	rd, cp := e.rd(p), e.cp(p)
	info := pmem.Addr(p.Load(rd))
	if p.Load(cp) == 0 || info == pmem.Null {
		return e.runAttempts(p, opType, argKey, gather)
	}
	// Defense for the pre-CP_q=0 crash window (see DESIGN.md): if RD_q
	// still describes a different operation, this one made no changes.
	if p.Load(info+offOpType) != opType || p.Load(info+offArgKey) != argKey ||
		p.Load(info+offSeq) != seq {
		return e.runAttempts(p, opType, argKey, gather)
	}
	// Pin before dereferencing the record: the post-crash scan kept it and
	// everything it names alive, and the pin keeps that true while Help
	// re-runs. The completed operation's retired-class nodes are NOT
	// retired here — pre-crash they may already have been retired, freed
	// and reused as live nodes, which the scan then (correctly) marked; a
	// recovery-path retire could therefore hit a live block. They leak
	// instead, inside the scan's announced-operand budget.
	e.alloc.Enter(p)
	e.Help(p, info, true)
	if r := p.Load(info + offResult); r != RespNone {
		e.alloc.Exit(p)
		return r
	}
	// The last attempt did not take effect: re-invoke.
	return e.runAttempts(p, opType, argKey, gather)
}

// BeginTxnLeg is the engine-side begin step of one leg of a two-structure
// transaction: persist CP_q := 0 (so a previous operation's recovery data
// cannot be attributed to this leg) and retire the previous record, WITHOUT
// the psync — a transaction resets every involved engine and then publishes
// one announcement, all under the caller's single begin psync (the pwbs are
// synchronous, so the ordering constraints hold without it). The caller
// must have durably cleared the old announcement first, exactly as in
// BeginOpFor, and calls it once per distinct engine (legs on the same
// structure share the reset; their records are told apart by sequence
// stamps). Announcing is the caller's job too: the transaction announcement
// (pmem.Proc.AnnounceTxn) replaces the per-op announcement.
func (e *Engine) BeginTxnLeg(p *pmem.Proc) {
	id := p.ID()
	e.batchMode[id] = syncEager
	e.curSeq[id] = 0
	cp := e.cp(p)
	p.Store(cp, 0)
	p.PWB(cp)
	e.retireLast(p)
}

// ResolveSeq probes whether the operation (opType, argKey) at batch
// sequence number seq took effect, WITHOUT re-invoking it: the
// roll-forward-or-resubmit decision point of transaction recovery. Like
// RecoverSeq it helps an installed matching record to completion (the
// effect may land now, during recovery — that still counts as applied);
// unlike RecoverSeq a missing or mismatching record returns (0, false)
// — the operation provably made no changes and never can (a failed
// tagging attempt's expected info values cannot recur) — instead of
// running attempts. Idempotent and re-invocable across further crashes.
func (e *Engine) ResolveSeq(p *pmem.Proc, opType, argKey, seq uint64) (uint64, bool) {
	id := p.ID()
	e.batchMode[id] = syncEager
	e.curSeq[id] = seq
	rd, cp := e.rd(p), e.cp(p)
	info := pmem.Addr(p.Load(rd))
	if p.Load(cp) == 0 || info == pmem.Null {
		return 0, false
	}
	if p.Load(info+offOpType) != opType || p.Load(info+offArgKey) != argKey ||
		p.Load(info+offSeq) != seq {
		return 0, false
	}
	// Pin before dereferencing the record (see RecoverSeq: the post-crash
	// scan kept it alive, and completed operands are NOT retired here).
	e.alloc.Enter(p)
	e.Help(p, info, true)
	r := p.Load(info + offResult)
	e.alloc.Exit(p)
	if r == RespNone {
		return 0, false
	}
	return r, true
}

// MarkReachable reports, via mark, every address the engine's recovery
// data can still lead to: for each process with CP_q = 1 and a non-Null
// RD_q, the installed Info record and (conservatively) every word of it
// with the tag bit cleared — AffectSet field addresses, WriteSet
// addresses and values, CleanupSet addresses. The post-crash scan's
// transitive closure follows on from whatever those words name. Part of
// the conservative-scan contract: an announced operation's operands
// survive reclamation even if their retirement was recorded.
func (e *Engine) MarkReachable(p *pmem.Proc, mark func(pmem.Addr)) {
	for q := 0; q < e.h.NumProcs(); q++ {
		line := e.base + pmem.Addr(q*pmem.WordsPerLine)
		if p.Load(line+1) == 0 { // CP_q
			continue
		}
		info := pmem.Addr(p.Load(line)) // RD_q
		if info == pmem.Null {
			continue
		}
		mark(info)
		for w := pmem.Addr(0); w < InfoWords; w++ {
			mark(pmem.Addr(p.Load(info+w) &^ 1))
		}
	}
}

// BeginBatch opens a batched-admission window for n operations (reported by
// opAt) on the calling process: the cross-operation generalization of
// BeginOpFor. One durable batch announcement — header, op slots, checksum —
// replaces n per-op announcements, and the whole begin sequence rides ONE
// psync. Inside the window the engine's sync points defer (to each op
// boundary under the eager Isb placement, to the batch-end psync under
// Isb-Opt) and write-backs overlap clwb-style (pmem.Proc.SetPWBOverlap);
// both are pure cost/accounting changes — every pwb still applies its line
// write-back synchronously, so the reachable crash states are exactly those
// of the unbatched execution.
//
// The write order generalizes BeginOpFor's and is equally load-bearing:
// clear the old announcement, persist CP_q := 0, then publish the batch
// record — durable before any op of the batch can take effect. A crash
// anywhere inside BeginBatch leaves either the old announcement, nothing,
// or a checksum-invalid torn record: in every case the batch provably
// performed no tracked writes and is simply re-submitted.
func (e *Engine) BeginBatch(p *pmem.Proc, n int, opAt func(i int) (kind, arg uint64)) {
	if e.annID == 0 {
		panic("isb: BeginBatch on a non-announcing engine")
	}
	id := p.ID()
	p.SetPWBOverlap(true)
	cp := e.cp(p)
	p.ClearAnnounce()
	p.Store(cp, 0)
	p.PWB(cp)
	p.AnnounceBatch(e.annID, n, opAt)
	e.retireLast(p) // see BeginOp: before the psync, after CP_q's pwb
	p.PSync()
	if e.Batched() {
		e.batchMode[id] = syncPerBatch
	} else {
		e.batchMode[id] = syncPerOp
	}
	e.curSeq[id] = 0
}

// BatchBoundary closes batch operation seq-1 and opens operation seq: the
// previous op's response becomes durable in its result slot, then the
// completed-prefix cursor advances to cover it. Both write-backs are
// synchronous and ordered — once the cursor names seq, result seq-1 is
// already durable — so recovery's completed-prefix reads never see ⊥ below
// the cursor. Only after the cursor advance can the previous op's tracking
// record no longer be consulted; its retirement happens here, not before.
// Under the Isb placement the boundary issues the per-op psync the deferred
// intra-op sync points merged into; under Isb-Opt it defers too.
func (e *Engine) BatchBoundary(p *pmem.Proc, seq int, prevResp uint64) {
	id := p.ID()
	p.SetBatchResult(seq-1, prevResp)
	p.AdvanceBatchCursor(seq)
	if e.batchMode[id] == syncPerOp {
		p.PSync()
	} else {
		e.batchSyncs[id]++
	}
	e.retireLast(p)
	e.curSeq[id] = uint64(seq)
}

// RunBatchOp runs one operation inside an open batch window. The batch's
// first engine-visible op initializes RD_q/CP_q exactly like a single
// operation (minus the deferred psync); later ops skip the
// re-initialization — CP_q is already 1, and the stale RD_q record is
// fenced off by the sequence stamp, not by an RD_q := Null round-trip —
// which is where the per-op begin cost goes. CP_q itself is the dispatch:
// BeginBatch persisted CP_q := 0, and only runAttempts raises it, so
// CP_q = 0 means no mutating op of this batch has initialized the
// registers yet (read-only ops never enter the engine). Recovery relies on
// the same invariant: a crash with CP_q = 0 proves the in-flight op
// installed nothing, so re-invoking it is safe.
func (e *Engine) RunBatchOp(p *pmem.Proc, seq int, opType, argKey uint64, gather Gather) uint64 {
	e.curSeq[p.ID()] = uint64(seq)
	if p.Load(e.cp(p)) == 0 {
		return e.runAttempts(p, opType, argKey, gather)
	}
	return e.attemptLoop(p, opType, argKey, gather)
}

// EndBatch closes the batch window: one psync drains every deferred sync
// point and overlapped write-back, and the engine reverts to single-op
// admission. The batch announcement stays in place — like a single op's, it
// is only cleared by the process's next Begin — so a crash after EndBatch
// still resolves every op of the batch from the record.
func (e *Engine) EndBatch(p *pmem.Proc) {
	id := p.ID()
	p.SetPWBOverlap(false)
	e.batchMode[id] = syncEager
	e.curSeq[id] = 0
	p.PSync()
}
