// Package isb implements Info-Structure-Based tracking — the paper's
// primary contribution (Algorithms 1 and 2 of "Tracking in Order to
// Recover", SPAA 2020) — as a generic, reusable engine.
//
// A data structure built on the engine provides only a gather function that
// traverses the structure and fills a Spec: the nodes the operation affects
// (AffectSet, in the structure's fixed total order), the CAS updates to
// perform (WriteSet), the info fields to untag afterwards (CleanupSet: the
// AffectSet entries that survive the operation, plus new nodes), the memory
// ranges of newly allocated nodes to persist, and the operation's response.
// Everything else — helping, tagging, backtracking, the update and cleanup
// phases, persistence-instruction placement, per-process recovery data
// (RD_q, CP_q) and the recovery function — is generic and shared by the
// linked list, queue, BST and stack packages.
//
// Tagging convention: a node's info field holds the word address of an Info
// record with bit 0 as the tag ("lock") bit. Info records are allocated
// fresh for every attempt, so an info field never holds the same tagged
// value twice, which rules out ABA on info fields.
//
// Engine requirement (checked at install time): only the first AffectSet
// element may appear in the CleanupSet. Later elements must be retired by a
// successful operation (they stay tagged forever). This is what makes the
// full backtrack — untagging every earlier element after a tag failure —
// safe even for helpers: a tag failure at a retired-class element proves the
// operation can never complete, because expected info values never recur.
package isb

import (
	"fmt"

	"repro/internal/pmem"
)

// Response encoding inside Info records. 0 is the paper's ⊥ ("no result
// yet"); other responses are strictly positive.
const (
	RespNone  uint64 = 0 // ⊥
	RespFalse uint64 = 1
	RespTrue  uint64 = 2
	RespEmpty uint64 = 3 // e.g. dequeue on an empty queue
	// RespSkipped: a transaction leg that was deterministically elided —
	// leg 2's argument derives from leg 1's response, and leg 1 carried no
	// value (e.g. dequeue on empty). Never produced by a structure op.
	RespSkipped uint64 = 4
	respVBase   uint64 = 16
)

// EncodeValue encodes an application payload (e.g. a dequeued value) as a
// response word.
func EncodeValue(v uint64) uint64 { return v + respVBase }

// DecodeValue inverts EncodeValue.
func DecodeValue(r uint64) uint64 { return r - respVBase }

// IsValue reports whether a response word carries an application payload.
func IsValue(r uint64) bool { return r >= respVBase }

// Bool decodes RespTrue/RespFalse.
func Bool(r uint64) bool { return r == RespTrue }

// BoolResp encodes a boolean response.
func BoolResp(b bool) uint64 {
	if b {
		return RespTrue
	}
	return RespFalse
}

// Tagging helpers (bit 0 of an info-field word).
func Tagged(info pmem.Addr) uint64   { return uint64(info) | 1 }
func Untagged(info pmem.Addr) uint64 { return uint64(info) &^ 1 }
func IsTagged(v uint64) bool         { return v&1 == 1 }
func InfoOf(v uint64) pmem.Addr      { return pmem.Addr(v &^ 1) }

// Info record layout (word offsets). Records are fixed-size so that arena
// allocation stays a bump; the limits cover every structure in the paper
// (the BST's Delete has the largest AffectSet: gp, p, l, sibling).
const (
	offOpType     = 0
	offArgKey     = 1
	offResult     = 2
	offSuccess    = 3
	offAffectLen  = 4
	offWriteLen   = 5
	offCleanupLen = 6
	offDone       = 7  // set + written back after the invoker observed the result
	offAffect     = 8  // MaxAffect pairs ⟨infoFieldAddr, expectedValue⟩
	offWrites     = 16 // MaxWrites triples ⟨addr, old, new⟩
	offCleanup    = 25 // MaxCleanup info-field addresses
	offSeq        = 31 // batch sequence number of the op this record belongs to

	// MaxAffect etc. bound the per-operation sets.
	MaxAffect  = 4
	MaxWrites  = 3
	MaxCleanup = 6

	// InfoWords is the allocation size of one Info record.
	InfoWords = 32
)

// AffectEntry is one element of an operation's AffectSet: the address of a
// node's info field and the (untagged) value gathered from it.
type AffectEntry struct {
	Info     pmem.Addr
	Expected uint64
}

// Write is one element of a WriteSet: a CAS to perform in the update phase.
type Write struct {
	Addr     pmem.Addr
	Old, New uint64
}

// Range is a span of newly allocated persistent memory to flush together
// with the Info record (the paper's pbarrier(*opInfo, NewSet)).
type Range struct {
	Addr  pmem.Addr
	Words uint64
}

// Spec describes one attempt of one operation. Gather functions fill it;
// the engine installs it into an Info record and executes it.
type Spec struct {
	OpType uint64
	ArgKey uint64

	NAffect int
	Affect  [MaxAffect]AffectEntry

	NWrites int
	Writes  [MaxWrites]Write

	NCleanup int
	Cleanup  [MaxCleanup]pmem.Addr

	NPersist int
	Persist  [MaxAffect]Range

	// ReadOnly marks an operation eligible for the Algorithm 2 (ROpt)
	// fast path: single AffectSet element, empty WriteSet, response
	// computed from immutable fields.
	ReadOnly bool
	// Response is the encoded response for the ReadOnly fast path.
	Response uint64
	// SuccessResponse is the encoded response Help stores into the result
	// field once the update phase runs. For ReadOnly specs the engine
	// forces it equal to Response so a recovery-time Help is idempotent.
	SuccessResponse uint64
}

// Reset clears a Spec for reuse across attempts.
func (s *Spec) Reset() { *s = Spec{} }

// AddAffect appends an AffectSet entry (in the structure's total order).
func (s *Spec) AddAffect(infoField pmem.Addr, expected uint64) {
	s.Affect[s.NAffect] = AffectEntry{Info: infoField, Expected: expected}
	s.NAffect++
}

// AddWrite appends a WriteSet CAS.
func (s *Spec) AddWrite(a pmem.Addr, old, new uint64) {
	s.Writes[s.NWrites] = Write{Addr: a, Old: old, New: new}
	s.NWrites++
}

// AddCleanup appends an info field for the cleanup phase to untag.
func (s *Spec) AddCleanup(infoField pmem.Addr) {
	s.Cleanup[s.NCleanup] = infoField
	s.NCleanup++
}

// AddPersist appends a new-node memory range for the install barrier.
func (s *Spec) AddPersist(a pmem.Addr, words uint64) {
	s.Persist[s.NPersist] = Range{Addr: a, Words: words}
	s.NPersist++
}

// GatherResult tells the engine what to do with a gather attempt.
type GatherResult int

const (
	// Proceed: the Spec is complete; run the helping phase and Help.
	Proceed GatherResult = iota
	// Restart: the traversal observed an inconsistency; retry gather.
	Restart
)

// Gather is the single structure-specific callback: fill spec (already
// Reset) for one attempt. info is the Info record the attempt will use;
// gather code tags newly allocated nodes with Tagged(info).
type Gather func(p *pmem.Proc, info pmem.Addr, spec *Spec) GatherResult

// Engine holds the per-process recovery variables for one data structure
// instance. RD_q and CP_q live in persistent memory, one cache line per
// process to avoid false sharing. Persistence-instruction placement is
// delegated to a Persister per process (see persist.go); everything else —
// helping, tagging, backtracking, the update and cleanup phases, recovery —
// is identical across placements.
type Engine struct {
	h    *pmem.Heap
	base pmem.Addr // proc q's line: base + q*WordsPerLine; word0 = RD, word1 = CP
	pers []Persister
	// specs are per-process attempt-spec scratch records. A Spec passed to
	// a Gather callback by address escapes analysis, so a stack-local one
	// would cost one heap allocation per operation; each process instead
	// reuses its slot (a Proc is single-goroutine, and runAttempts never
	// nests on one process).
	specs []Spec
	// noROpt disables the Algorithm 2 read-only fast path, forcing every
	// operation through Help — i.e. plain Algorithm 1. Used by the ROpt
	// ablation benchmarks.
	noROpt bool
	// annID, when nonzero, is the runtime-registry structure ID this engine
	// announces: BeginOpFor durably records (annID, opType, argKey) in the
	// calling process's announcement line before the operation's tag phase,
	// and BeginOp durably clears it. Both writes ride the begin barrier's
	// existing psync, so announcing adds no stand-alone sync in either
	// placement. Engines built outside a Runtime leave annID 0 and behave
	// exactly as before.
	annID uint64
	// alloc serves Info records and (through Alloc) structure nodes. The
	// default pmem.Arena reproduces the seed's leak-forever behaviour; a
	// pmem.Reclaimer recycles retired blocks after an epoch grace period.
	// Epoch pins and retirements are threaded through the operation entry
	// points so reclamation adds no stand-alone psync (see BeginOp).
	alloc pmem.Allocator
	// lastInfo tracks, per process, the Info record currently installed in
	// that process's RD_q: it is retired at the next operation's begin (once
	// CP_q := 0 is durable the record can never be consulted again) or
	// superseded by the next attempt's record. Go-side on purpose — after a
	// crash it either matches the durable RD_q (which the post-crash scan
	// keeps live) or was already retired and cleared.
	lastInfo []pmem.Addr
	// cookieCtr feeds cookie (see there), one counter per process.
	cookieCtr []uint64
	// batchMode selects, per process, where engine sync points go: syncEager
	// outside a batch window, syncPerOp (Isb: one psync per op boundary) or
	// syncPerBatch (Isb-Opt: one psync per batch) inside one. Go-side on
	// purpose: a crash tears the window down (RecoverAll resets the modes and
	// every recovery entry point forces syncEager for the calling process).
	batchMode []uint8
	// curSeq is the batch sequence number install stamps into Info records
	// (offSeq); 0 outside a batch window.
	curSeq []uint64
	// batchSyncs/readFast back Counters (see isb.Stats).
	batchSyncs []uint64
	readFast   []uint64
}

// batchMode values.
const (
	syncEager    uint8 = iota // no batch window: every sync point issues a psync
	syncPerOp                 // Isb batch window: sync points defer to the op boundary
	syncPerBatch              // Isb-Opt batch window: sync points defer to batch end
)

// NewEngine allocates RD/CP lines for every process of the heap, with the
// paper's Algorithm 1/2 persistence placement (the "Isb" curve).
func NewEngine(h *pmem.Heap) *Engine {
	return NewEngineWith(h, func(p *pmem.Proc) Persister { return &eagerPersister{p: p} })
}

// NewEngineOpt is NewEngine with hand-tuned persistence (the "Isb-Opt"
// curve): per-phase write-backs are batched into a single barrier whose
// pwbs dedupe cache lines, and the Info record and NewSet persist in one
// barrier. The paper licenses this explicitly: "all pwb instructions can be
// issued at the end of the phase, before the psync".
func NewEngineOpt(h *pmem.Heap) *Engine {
	return NewEngineWith(h, func(p *pmem.Proc) Persister { return &batchPersister{p: p} })
}

// NewEngineWith builds an engine whose persistence placement is supplied by
// the caller: mk is invoked once per process and must return a Persister
// bound to that process.
func NewEngineWith(h *pmem.Heap, mk func(p *pmem.Proc) Persister) *Engine {
	p0 := h.Proc(0)
	n := uint64(h.NumProcs())
	raw := p0.Alloc(n*pmem.WordsPerLine + pmem.WordsPerLine)
	base := (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	e := &Engine{
		h:          h,
		base:       base,
		pers:       make([]Persister, h.NumProcs()),
		specs:      make([]Spec, h.NumProcs()),
		alloc:      pmem.Arena{},
		lastInfo:   make([]pmem.Addr, h.NumProcs()),
		cookieCtr:  make([]uint64, h.NumProcs()),
		batchMode:  make([]uint8, h.NumProcs()),
		curSeq:     make([]uint64, h.NumProcs()),
		batchSyncs: make([]uint64, h.NumProcs()),
		readFast:   make([]uint64, h.NumProcs()),
	}
	for i := range e.pers {
		e.pers[i] = mk(h.Proc(i))
	}
	return e
}

// SetAllocator replaces the engine's allocator (default: the leak-forever
// pmem.Arena). Call before any operation runs; the structures built on the
// engine draw their nodes from the same allocator via Alloc.
func (e *Engine) SetAllocator(a pmem.Allocator) { e.alloc = a }

// Allocator returns the engine's allocator.
func (e *Engine) Allocator() pmem.Allocator { return e.alloc }

// Alloc allocates a structure node block from the engine's allocator.
func (e *Engine) Alloc(p *pmem.Proc, words uint64) pmem.Addr {
	return e.alloc.Alloc(p, words)
}

// cookie returns a fresh even value unique across the whole run (counters
// are Go-side and survive simulated crashes). Cookies are what the engine
// writes when it untags an info field — instead of Untagged(info) — so
// that an info field never holds the same non-tagged value twice even when
// Info records are recycled: the tag-phase invariant "expected info values
// never recur" survives memory reuse. Untagged info-field values are never
// dereferenced (only compared), so the switch is invisible to gathers;
// cookies are even, so IsTagged and the invariant checkers are unaffected.
func (e *Engine) cookie(p *pmem.Proc) uint64 {
	id := p.ID()
	e.cookieCtr[id]++
	return (e.cookieCtr[id]*uint64(len(e.cookieCtr)) + uint64(id)) << 1
}

// retireLast retires the calling process's previously installed Info
// record. Callers must ensure the record can no longer be consulted by
// recovery: either CP_q := 0 has been written back (begin path) or RD_q
// already points at a newer record (attempt loop). In-flight helpers may
// still hold the record; the allocator's epoch grace covers them.
func (e *Engine) retireLast(p *pmem.Proc) {
	id := p.ID()
	if li := e.lastInfo[id]; li != 0 {
		e.lastInfo[id] = 0
		e.alloc.Retire(p, li)
	}
}

// ForgetRetired drops every process's pending last-record retirement.
// Runtime.RecoverAll calls it after a crash: a crash can land exactly
// between CP_q := 0 becoming durable and the retirement being recorded, in
// which case the tracked record may already have been swept (and reused)
// by the post-crash scan — retiring it later would hit a live block. The
// records the scan kept alive leak instead (at most one per process per
// crash), which is the same conservative budget the scan itself accepts.
func (e *Engine) ForgetRetired() {
	for i := range e.lastInfo {
		e.lastInfo[i] = 0
	}
}

// NewEngineNoROpt disables the read-only fast path (plain Algorithm 1):
// read-only operations also install their Info and run Help. The ablation
// benchmarks quantify what ROpt buys.
func NewEngineNoROpt(h *pmem.Heap) *Engine {
	e := NewEngine(h)
	e.noROpt = true
	return e
}

// Batched reports whether the engine defers write-backs to phase
// boundaries (the Isb-Opt placement). Structures use it to fold their own
// auxiliary persistence (e.g. the hash map's shard register) into the
// engine's barriers.
func (e *Engine) Batched() bool { return e.pers[0].Batched() }

// Variant names the persistence placement: "isb" or "isb-opt".
func (e *Engine) Variant() string {
	if e.Batched() {
		return "isb-opt"
	}
	return "isb"
}

// per returns the calling process's Persister.
func (e *Engine) per(p *pmem.Proc) Persister { return e.pers[p.ID()] }

func (e *Engine) rd(p *pmem.Proc) pmem.Addr {
	return e.base + pmem.Addr(p.ID()*pmem.WordsPerLine)
}
func (e *Engine) cp(p *pmem.Proc) pmem.Addr { return e.rd(p) + 1 }

// opSync is the engine-side psync point: outside a batch window it issues a
// psync; inside one it is deferred — counted, and paid at the op boundary
// (Isb) or the batch-end psync (Isb-Opt). Deferral never changes
// crash-visible state: every pwb writes its line back synchronously, so a
// psync's only simulated effects are ordering cost and accounting.
func (e *Engine) opSync(p *pmem.Proc) {
	id := p.ID()
	if e.batchMode[id] == syncEager {
		p.PSync()
		return
	}
	e.batchSyncs[id]++
}

// endPhase closes a persistence phase: flush the persister's accumulated
// write-backs (a no-op for the eager placement, which wrote back per store)
// and hit the engine's sync point.
func (e *Engine) endPhase(p *pmem.Proc, per Persister) {
	if e.batchMode[p.ID()] == syncEager {
		per.EndPhase()
		return
	}
	// Inside a batch window the phase's psync defers to the op boundary
	// (Isb) or batch end (Isb-Opt); only the write-backs happen now.
	per.Flush()
	e.batchSyncs[p.ID()]++
}

// NoteReadFast counts one operation served by the zero-persist read-only
// fast path (structures call it from their volatile-traversal reads).
func (e *Engine) NoteReadFast(p *pmem.Proc) { e.readFast[p.ID()]++ }

// InBatch reports whether p is inside an open batch window (structures use
// it to defer their own auxiliary psyncs to the window's boundaries).
func (e *Engine) InBatch(p *pmem.Proc) bool { return e.batchMode[p.ID()] != syncEager }

// Counters sums the engine's batching/fast-path counters across processes
// (see isb.Stats for the per-op view).
func (e *Engine) Counters() (batchSyncs, readFast uint64) {
	for i := range e.batchSyncs {
		batchSyncs += e.batchSyncs[i]
		readFast += e.readFast[i]
	}
	return
}

// ResetBatchState tears down any batch window a crash interrupted: sync
// deferral modes and sequence counters revert to the single-op defaults.
// Runtime.RecoverAll calls it before the per-process recovery sweep.
func (e *Engine) ResetBatchState() {
	for i := range e.batchMode {
		e.batchMode[i] = syncEager
		e.curSeq[i] = 0
	}
}

// SetAnnounceID registers the runtime structure ID this engine announces
// operations under (see the annID field). Call once, at structure
// registration, before any operation runs.
func (e *Engine) SetAnnounceID(id uint64) { e.annID = id }

// AnnounceID reports the registered announcement ID (0 = announcing off).
func (e *Engine) AnnounceID() uint64 { return e.annID }

// BeginOp is the system-side action of the paper's model: persistently set
// CP_q := 0 just before a fresh operation starts, so that recovery can tell
// a brand-new operation (whose RD_q still points at a previous operation's
// Info) from one that already initialized its recovery data. On an
// announcing engine it first durably clears the announcement record — the
// clear's pwb must retire before CP_q resets, or registry-routed recovery
// could re-invoke (duplicate) the previous, completed operation — with the
// single existing psync covering both lines.
func (e *Engine) BeginOp(p *pmem.Proc) {
	e.batchMode[p.ID()] = syncEager
	e.curSeq[p.ID()] = 0
	if e.annID != 0 {
		p.ClearAnnounce()
	}
	cp := e.cp(p)
	p.Store(cp, 0)
	p.PWB(cp)
	// Retire the previous operation's Info record before the psync: its
	// ring entry's write-back rides this sync, and ordering it before the
	// durable CP_q := 0 means a crash between the two leaves the record
	// RD_q-reachable (the scan keeps it live) rather than retired-but-
	// still-needed.
	e.retireLast(p)
	p.PSync()
}

// AnnounceFor durably publishes the announcement (annID, opType, argKey)
// for the calling process without touching CP_q: the composition hook for
// structures whose operations can take effect outside the engine (the
// elimination stack). The caller must already have durably cleared the old
// announcement and reset every recovery register the announced operation
// could be routed to (BeginOp, then e.g. the exchanger's Begin) — a
// register still describing a previous operation would be read as this
// one's outcome. No-op on a non-announcing engine.
func (e *Engine) AnnounceFor(p *pmem.Proc, opType, argKey uint64) {
	if e.annID != 0 {
		p.Announce(e.annID, opType, argKey)
	}
}

// BeginOpFor is the operation-entry variant of BeginOp: on an announcing
// engine it durably records (annID, opType, argKey) in the calling process's
// announcement line — before the operation's tag phase, and before any
// pre-engine effect such as the stack's elimination attempt — around
// persisting CP_q := 0. Everything rides the single begin psync, so neither
// placement pays an extra sync per operation. RunOp calls it; structures
// with effects outside the engine (the elimination stack) call it directly.
//
// The write order is load-bearing (each pwb is synchronous):
//  1. clear the old announcement — once CP_q resets, a stale announcement
//     would read as "in flight, made no changes" and registry-routed
//     recovery would re-invoke (duplicate) the previous, completed op;
//  2. persist CP_q := 0 — the new announcement must only become valid once
//     the engine can no longer attribute the previous operation's RD_q
//     record to it; otherwise recovering an announced operation whose
//     (kind, arg) equal the previous one's would return the previous
//     response instead of running this operation;
//  3. announce — durable before the operation can take any effect.
func (e *Engine) BeginOpFor(p *pmem.Proc, opType, argKey uint64) {
	e.batchMode[p.ID()] = syncEager
	e.curSeq[p.ID()] = 0
	cp := e.cp(p)
	if e.annID != 0 {
		p.ClearAnnounce()
	}
	p.Store(cp, 0)
	p.PWB(cp)
	if e.annID != 0 {
		p.Announce(e.annID, opType, argKey)
	}
	e.retireLast(p) // see BeginOp: before the psync, after CP_q's pwb
	p.PSync()
}

// allocInfo allocates a zeroed Info record for one attempt.
func (e *Engine) allocInfo(p *pmem.Proc) pmem.Addr {
	a := e.alloc.Alloc(p, InfoWords)
	// Both allocators hand out zeroed memory within a run, but after a
	// crash a fresh carve may straddle memory whose volatile image was
	// reset to stale persisted bytes. Clear the header words we depend on.
	p.Store(a+offResult, RespNone)
	p.Store(a+offDone, 0)
	return a
}

// install writes spec into the Info record (volatile stores; the caller's
// barrier persists the record).
func (e *Engine) install(p *pmem.Proc, info pmem.Addr, s *Spec) {
	if s.NAffect > MaxAffect || s.NWrites > MaxWrites || s.NCleanup > MaxCleanup {
		panic(fmt.Sprintf("isb: spec out of bounds: %+v", s))
	}
	if s.NAffect == 0 && !s.ReadOnly {
		// Only the paper's "AffectSet = ∅" optimization for read-only
		// operations (Section 6, BST Finds) may omit the AffectSet.
		panic("isb: empty AffectSet on a non-read-only spec")
	}
	for i := 1; i < s.NAffect; i++ {
		for j := 0; j < s.NCleanup; j++ {
			if s.Cleanup[j] == s.Affect[i].Info {
				panic("isb: only the first AffectSet element may be in the CleanupSet (see package doc)")
			}
		}
	}
	p.Store(info+offOpType, s.OpType)
	p.Store(info+offArgKey, s.ArgKey)
	// The record's batch sequence number (0 outside a batch window): recovery
	// only attributes a record to the announced batch's in-flight op when the
	// stamped sequence matches the durable cursor, so a crash between the
	// cursor advance and the next op's first install cannot misattribute the
	// previous op's record to an identical (kind, arg) successor.
	p.Store(info+offSeq, e.curSeq[p.ID()])
	succ := s.SuccessResponse
	if s.ReadOnly {
		succ = s.Response
		if !e.noROpt || s.NAffect == 0 {
			p.Store(info+offResult, s.Response) // ROpt line 74
		} else {
			// Ablation mode: the read-only op runs through Help like any
			// Algorithm 1 operation, so a failed tagging attempt must
			// leave result = ⊥ and retry with a fresh gather.
			p.Store(info+offResult, RespNone)
		}
	} else {
		p.Store(info+offResult, RespNone)
	}
	p.Store(info+offSuccess, succ)
	p.Store(info+offAffectLen, uint64(s.NAffect))
	p.Store(info+offWriteLen, uint64(s.NWrites))
	p.Store(info+offCleanupLen, uint64(s.NCleanup))
	for i := 0; i < s.NAffect; i++ {
		p.Store(info+offAffect+pmem.Addr(2*i), uint64(s.Affect[i].Info))
		p.Store(info+offAffect+pmem.Addr(2*i)+1, s.Affect[i].Expected)
	}
	for i := 0; i < s.NWrites; i++ {
		p.Store(info+offWrites+pmem.Addr(3*i), uint64(s.Writes[i].Addr))
		p.Store(info+offWrites+pmem.Addr(3*i)+1, s.Writes[i].Old)
		p.Store(info+offWrites+pmem.Addr(3*i)+2, s.Writes[i].New)
	}
	for i := 0; i < s.NCleanup; i++ {
		p.Store(info+offCleanup+pmem.Addr(i), uint64(s.Cleanup[i]))
	}
}

// Result reads an Info record's result field.
func (e *Engine) Result(p *pmem.Proc, info pmem.Addr) uint64 {
	return p.Load(info + offResult)
}
