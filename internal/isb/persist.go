package isb

import "repro/internal/pmem"

// Persister decides where an engine's persistence instructions go. The
// engine reports every persistent word (or freshly allocated range) it
// writes and marks phase boundaries; the implementation chooses whether to
// write back eagerly — one pwb per store, exactly as Algorithms 1 and 2 are
// written (the "Isb" curve) — or to accumulate the phase's dirty words and
// issue a single barrier whose pwbs dedupe cache lines (the "Isb-Opt"
// curve, licensed by the paper: "all pwb instructions can be issued at the
// end of the phase, before the psync").
//
// Crash contract: after EndPhase returns, everything reported since the
// previous EndPhase is durable. Under the batched placement nothing in the
// phase is guaranteed durable before that point, so a crash mid-phase may
// leave the phase fully absent from persistent memory; Help and Recover
// tolerate both outcomes because every phase is idempotent and re-runnable
// from its Info record.
//
// A Persister is bound to one Proc and therefore used by one goroutine at a
// time; the Engine keeps one per process.
type Persister interface {
	// Reset discards any state left over from a phase a crash interrupted.
	Reset()
	// WroteWord records one persistent word written in the current phase.
	WroteWord(a pmem.Addr)
	// WroteRange records a span of newly allocated persistent memory that
	// must persist with the current phase (the paper's NewSet).
	WroteRange(a pmem.Addr, words uint64)
	// Flush makes every write recorded since the last Flush/EndPhase
	// persistent, without an ordering point.
	Flush()
	// EndPhase is Flush followed by a psync: the phase's writes are durable
	// before any instruction after it.
	EndPhase()
	// Batched reports whether write-backs are deferred to phase boundaries.
	Batched() bool
}

// eagerPersister is the paper's written placement (Isb): a pwb immediately
// after every store/CAS on persistent state, a pbarrier per freshly
// allocated range, a psync per phase. Every write is durable as soon as the
// instruction after its pwb executes.
type eagerPersister struct{ p *pmem.Proc }

func (e *eagerPersister) Reset()                               {}
func (e *eagerPersister) WroteWord(a pmem.Addr)                { e.p.PWB(a) }
func (e *eagerPersister) WroteRange(a pmem.Addr, words uint64) { e.p.PBarrierRange(a, words) }
func (e *eagerPersister) Flush()                               {}
func (e *eagerPersister) EndPhase()                            { e.p.PSync() }
func (e *eagerPersister) Batched() bool                        { return false }

// batchPersister is the hand-tuned placement (Isb-Opt): dirty lines
// accumulate across a phase and one barrier per phase writes them all back,
// flushing each distinct cache line exactly once (PBarrierAddrs dedupes
// exactly, for any phase size). Accumulation is line-granular with an
// adjacent-duplicate check, so a run of stores to one line — the common
// phase shape — costs one slot, keeping large phases' scratch small. The
// capacity of the dirty slice is retained across phases, so steady-state
// operation does not allocate.
type batchPersister struct {
	p     *pmem.Proc
	dirty []pmem.Addr
}

func (b *batchPersister) Reset() { b.dirty = b.dirty[:0] }

// note records line l as dirty unless it was the line recorded last.
func (b *batchPersister) note(l pmem.Addr) {
	if n := len(b.dirty); n > 0 && b.dirty[n-1] == l {
		return
	}
	b.dirty = append(b.dirty, l)
}

func (b *batchPersister) WroteWord(a pmem.Addr) {
	b.note(a &^ (pmem.WordsPerLine - 1))
}

func (b *batchPersister) WroteRange(a pmem.Addr, words uint64) {
	// Stride from the containing line boundary, not from a: the arena only
	// guarantees 2-word alignment, so an unaligned range can span one more
	// line than words/WordsPerLine and the tail line must not be dropped.
	end := a + pmem.Addr(words)
	for l := a &^ (pmem.WordsPerLine - 1); l < end; l += pmem.WordsPerLine {
		b.note(l)
	}
}

func (b *batchPersister) Flush() {
	if len(b.dirty) == 0 {
		return
	}
	b.p.PBarrierAddrs(b.dirty)
	b.dirty = b.dirty[:0]
}

func (b *batchPersister) EndPhase() {
	b.Flush()
	b.p.PSync()
}

func (b *batchPersister) Batched() bool { return true }
