package isb

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

// The tests exercise the engine directly through a minimal synthetic
// structure shaped like every real one: an anchor cell holding a pointer to
// a versioned box. An increment operation tags (anchor, box), swings
// anchor.box to a fresh box holding value+1, retires the old box (it stays
// tagged forever) and cleans up the anchor and the new box. This satisfies
// the engine requirement that only the first AffectSet element re-untags.
//
// Layout: anchor{box, info}, box{val, info}.
const (
	aBox  = 0
	aInfo = 1
	bVal  = 0
	bInfo = 1
)

type counter struct {
	e      *Engine
	anchor pmem.Addr
	g      Gather
}

func newCounter(h *pmem.Heap, opt bool) *counter {
	e := NewEngine(h)
	if opt {
		e = NewEngineOpt(h)
	}
	return newCounterWith(h, e)
}

func newCounterWith(h *pmem.Heap, e *Engine) *counter {
	c := &counter{e: e}
	p := h.Proc(0)
	box := p.Alloc(2)
	p.Store(box+bVal, 0)
	c.anchor = p.Alloc(2)
	p.Store(c.anchor+aBox, uint64(box))
	p.PBarrierRange(box, 2)
	p.PBarrierRange(c.anchor, 2)
	p.PSync()
	c.g = c.gatherInc
	return c
}

const opInc uint64 = 7

func (c *counter) gatherInc(p *pmem.Proc, info pmem.Addr, spec *Spec) GatherResult {
	anchorInfo := p.Load(c.anchor + aInfo)
	box := pmem.Addr(p.Load(c.anchor + aBox))
	boxInfo := p.Load(box + bInfo)
	newBox := p.Alloc(2)
	p.Store(newBox+bVal, p.Load(box+bVal)+1)
	p.Store(newBox+bInfo, Tagged(info))
	spec.AddAffect(c.anchor+aInfo, anchorInfo)
	spec.AddAffect(box+bInfo, boxInfo) // retires on success
	spec.AddWrite(c.anchor+aBox, uint64(box), uint64(newBox))
	spec.AddCleanup(c.anchor + aInfo)
	spec.AddCleanup(newBox + bInfo)
	spec.AddPersist(newBox, 2)
	spec.SuccessResponse = EncodeValue(p.Load(newBox + bVal))
	return Proceed
}

func (c *counter) inc(p *pmem.Proc) uint64 {
	return DecodeValue(c.e.RunOp(p, opInc, 0, c.g))
}

func (c *counter) value(h *pmem.Heap) uint64 {
	return h.ReadVolatile(pmem.Addr(h.ReadVolatile(c.anchor+aBox)) + bVal)
}

func TestEngineSequentialIncrements(t *testing.T) {
	for _, opt := range []bool{false, true} {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
		c := newCounter(h, opt)
		p := h.Proc(0)
		for i := uint64(1); i <= 100; i++ {
			if got := c.inc(p); got != i {
				t.Fatalf("opt=%v: inc #%d returned %d", opt, i, got)
			}
		}
		if c.value(h) != 100 {
			t.Fatalf("opt=%v: final value %d", opt, c.value(h))
		}
	}
}

func TestEngineConcurrentIncrementsExactlyOnce(t *testing.T) {
	for _, opt := range []bool{false, true} {
		const procs, perProc = 4, 300
		h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true})
		c := newCounter(h, opt)
		var wg sync.WaitGroup
		seen := make([][]uint64, procs)
		for id := 0; id < procs; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				p := h.Proc(id)
				for i := 0; i < perProc; i++ {
					seen[id] = append(seen[id], c.inc(p))
				}
			}(id)
		}
		wg.Wait()
		if got := c.value(h); got != procs*perProc {
			t.Fatalf("opt=%v: value %d, want %d (lost or doubled increments)", opt, got, procs*perProc)
		}
		// Responses are exactly the set {1..procs*perProc}: each increment
		// observed its own unique post-value.
		all := map[uint64]bool{}
		for _, s := range seen {
			for _, v := range s {
				if all[v] {
					t.Fatalf("opt=%v: response %d returned twice", opt, v)
				}
				all[v] = true
			}
		}
		if len(all) != procs*perProc {
			t.Fatalf("opt=%v: %d distinct responses", opt, len(all))
		}
	}
}

func TestEngineRecoverAfterEveryCrashOffset(t *testing.T) {
	for _, opt := range []bool{false, true} {
		for offset := uint64(1); offset <= 55; offset++ {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
			c := newCounter(h, opt)
			p := h.Proc(0)
			c.inc(p)       // value 1
			c.e.BeginOp(p) // system-side invocation step (see crash.Target)
			h.ScheduleCrashAt(h.AccessCount() + offset)
			var resp uint64
			crashed := !pmem.RunOp(func() { resp = c.inc(p) })
			h.DisarmCrash()
			if crashed {
				h.ResetAfterCrash()
				resp = DecodeValue(c.e.Recover(p, opInc, 0, c.g))
			}
			if resp != 2 {
				t.Fatalf("opt=%v offset %d: response %d, want 2", opt, offset, resp)
			}
			if got := c.value(h); got != 2 {
				t.Fatalf("opt=%v offset %d: value %d, want 2 (exactly-once violated)", opt, offset, got)
			}
		}
	}
}

func TestEngineRecoverStaleRDReinvokes(t *testing.T) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
	c := newCounter(h, false)
	p := h.Proc(0)
	c.inc(p)
	// Recover for a *different* op type: the Info in RD_q must be ignored.
	const opOther uint64 = 99
	resp := c.e.Recover(p, opOther, 0, c.g)
	if DecodeValue(resp) != 2 {
		t.Fatalf("stale-RD recovery re-invoked wrongly: %d", resp)
	}
}

func TestEngineBeginOpClearsCheckpoint(t *testing.T) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
	c := newCounter(h, false)
	p := h.Proc(0)
	c.inc(p)
	// After BeginOp (system-side CP_q := 0), Recover must re-invoke even
	// though RD_q still points at the completed op's Info.
	c.e.BeginOp(p)
	if got := DecodeValue(c.e.Recover(p, opInc, 0, c.g)); got != 2 {
		t.Fatalf("post-Begin recovery returned %d, want fresh execution (2)", got)
	}
}

// countingPersister proves custom placements plug into NewEngineWith: it
// delegates to the eager placement and counts the phases it ends.
type countingPersister struct {
	p      *pmem.Proc
	phases int
}

func (c *countingPersister) Reset()                               {}
func (c *countingPersister) WroteWord(a pmem.Addr)                { c.p.PWB(a) }
func (c *countingPersister) WroteRange(a pmem.Addr, words uint64) { c.p.PBarrierRange(a, words) }
func (c *countingPersister) Flush()                               {}
func (c *countingPersister) EndPhase()                            { c.phases++; c.p.PSync() }
func (c *countingPersister) Batched() bool                        { return false }

func TestEngineVariantsAndPersisterHook(t *testing.T) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 18, Procs: 1, Tracked: true})
	if e := NewEngine(h); e.Batched() || e.Variant() != "isb" {
		t.Fatalf("plain engine: Batched=%v Variant=%q", e.Batched(), e.Variant())
	}
	if e := NewEngineOpt(h); !e.Batched() || e.Variant() != "isb-opt" {
		t.Fatalf("opt engine: Batched=%v Variant=%q", e.Batched(), e.Variant())
	}

	var cp *countingPersister
	e := NewEngineWith(h, func(p *pmem.Proc) Persister {
		cp = &countingPersister{p: p}
		return cp
	})
	c := newCounterWith(h, e)
	p := h.Proc(0)
	if got := c.inc(p); got != 1 {
		t.Fatalf("inc through custom persister returned %d", got)
	}
	if cp.phases == 0 {
		t.Fatal("custom persister saw no phase boundaries")
	}
}

// TestBatchPersisterCoversUnalignedRangeTail: the arena only guarantees
// 2-word alignment, so a range may span one more cache line than
// words/WordsPerLine; the batched placement must record the tail line.
func TestBatchPersisterCoversUnalignedRangeTail(t *testing.T) {
	b := &batchPersister{}
	start := pmem.Addr(10*pmem.WordsPerLine + 4) // 4 words into a line
	b.WroteRange(start, InfoWords)               // spans 5 lines, not 4
	lines := map[pmem.Addr]bool{}
	for _, a := range b.dirty {
		lines[a&^(pmem.WordsPerLine-1)] = true
	}
	last := (start + InfoWords - 1) &^ (pmem.WordsPerLine - 1)
	if !lines[last] {
		t.Fatalf("tail line %d not recorded (lines %v)", last, b.dirty)
	}
	if want := int(InfoWords/pmem.WordsPerLine) + 1; len(lines) != want {
		t.Fatalf("recorded %d distinct lines, want %d", len(lines), want)
	}
}

func TestSpecBoundsChecked(t *testing.T) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 16, Procs: 1})
	e := NewEngine(h)
	p := h.Proc(0)
	defer func() {
		if recover() == nil {
			t.Fatal("cleanup entry aliasing affect[1] not rejected")
		}
	}()
	var spec Spec
	a := p.Alloc(2)
	b := p.Alloc(2)
	spec.AddAffect(a, 0)
	spec.AddAffect(b, 0)
	spec.AddCleanup(b) // violates the retire-class rule
	e.install(p, e.allocInfo(p), &spec)
}

func TestTaggingHelpers(t *testing.T) {
	f := func(raw uint64) bool {
		a := pmem.Addr(raw &^ 1)
		return IsTagged(Tagged(a)) &&
			!IsTagged(Untagged(a)) &&
			InfoOf(Tagged(a)) == a &&
			InfoOf(Untagged(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseEncoding(t *testing.T) {
	f := func(v uint64) bool {
		if v > 1<<62 {
			v >>= 2
		}
		e := EncodeValue(v)
		return IsValue(e) && DecodeValue(e) == v &&
			e != RespNone && e != RespTrue && e != RespFalse && e != RespEmpty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Bool(RespTrue) != true || Bool(RespFalse) != false {
		t.Fatal("Bool broken")
	}
	if BoolResp(true) != RespTrue || BoolResp(false) != RespFalse {
		t.Fatal("BoolResp broken")
	}
}

// TestHelpIdempotentManyHelpers: many procs all Help the same Info record
// concurrently with the invoker; the update applies exactly once.
func TestHelpIdempotentManyHelpers(t *testing.T) {
	const helpers = 6
	h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: helpers + 1, Tracked: true})
	c := newCounter(h, false)
	inv := h.Proc(0)

	// Build the op by hand so every proc can Help the same record.
	info := c.e.allocInfo(inv)
	var spec Spec
	spec.OpType, spec.ArgKey = opInc, 0
	if c.gatherInc(inv, info, &spec) != Proceed {
		t.Fatal("gather failed")
	}
	c.e.install(inv, info, &spec)
	inv.PBarrierRange(info, InfoWords)
	inv.PSync()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); c.e.Help(inv, info, true) }()
	for id := 1; id <= helpers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Helpers normally discover the op via a tag; here they jump
			// straight in, which is legal once the invoker has tagged the
			// first element — busy-wait for that.
			p := h.Proc(id)
			for p.Load(c.anchor+aInfo) != Tagged(info) {
				if c.e.Result(p, info) != RespNone {
					return // op already done
				}
			}
			c.e.Help(p, info, false)
		}(id)
	}
	wg.Wait()
	if got := c.value(h); got != 1 {
		t.Fatalf("value %d after %d concurrent helpers, want 1", got, helpers)
	}
	if c.e.Result(inv, info) != EncodeValue(1) {
		t.Fatalf("result %d", c.e.Result(inv, info))
	}
}
