package isb

import (
	"fmt"

	"repro/internal/pmem"
)

// Stats couples a window's raw persistence-instruction counters with its
// operation count and the engine's batching/fast-path counters, and owns the
// one canonical per-op formatting — cmd/bench and the root benchmarks both
// render through it instead of formatting the same metrics twice.
type Stats struct {
	// Ops is the number of operations the window covered.
	Ops uint64
	// Mem is the heap's persistence-instruction counters for the window
	// (typically Heap.TotalStats() deltas).
	Mem pmem.Stats
	// BatchSyncs counts psyncs elided by cross-operation batch deferral:
	// engine sync points that, inside a batch window, were merged into an
	// op-boundary (Isb) or batch-end (Isb-Opt) psync instead of issuing.
	BatchSyncs uint64
	// ReadFastPath counts operations served by the zero-persist read-only
	// fast path (no Info record, no pwb, no psync).
	ReadFastPath uint64
}

// perOp guards the zero-ops window.
func (s Stats) perOp(v uint64) float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(v) / float64(s.Ops)
}

// PBarriersPerOp is pbarriers per operation.
func (s Stats) PBarriersPerOp() float64 { return s.perOp(s.Mem.Barriers) }

// FlushesPerOp is stand-alone pwbs per operation.
func (s Stats) FlushesPerOp() float64 { return s.perOp(s.Mem.Flushes) }

// SyncsPerOp is psyncs per operation.
func (s Stats) SyncsPerOp() float64 { return s.perOp(s.Mem.Syncs) }

// PersistsPerOp counts persistence-barrier events per operation — pbarriers
// plus stand-alone pwbs, the quantity the paper's throughput argument rides
// on.
func (s Stats) PersistsPerOp() float64 { return s.perOp(s.Mem.Barriers + s.Mem.Flushes) }

// String renders the canonical per-op metric line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"ops=%d pbarriers/op=%.2f flushes/op=%.2f syncs/op=%.2f persists/op=%.2f batch-syncs=%d read-fast=%d",
		s.Ops, s.PBarriersPerOp(), s.FlushesPerOp(), s.SyncsPerOp(), s.PersistsPerOp(),
		s.BatchSyncs, s.ReadFastPath)
}
