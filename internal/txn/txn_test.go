package txn

import (
	"testing"

	"repro/internal/isb"
)

func TestDeriveLeg2Arg(t *testing.T) {
	// Without the flag, the announced argument passes through untouched —
	// whatever leg 1 answered.
	for _, resp1 := range []uint64{isb.RespTrue, isb.RespEmpty, isb.EncodeValue(9)} {
		arg, skip := DeriveLeg2Arg(77, 0, resp1)
		if arg != 77 || skip {
			t.Fatalf("DeriveLeg2Arg(77, 0, %d) = (%d, %v), want (77, false)", resp1, arg, skip)
		}
	}
	// With the flag, a value-carrying leg-1 response becomes the argument.
	arg, skip := DeriveLeg2Arg(77, FlagArgFromLeg1, isb.EncodeValue(42))
	if arg != 42 || skip {
		t.Fatalf("derived arg = (%d, %v), want (42, false)", arg, skip)
	}
	// A carried value of 0 must derive to 0, not read as "no value".
	arg, skip = DeriveLeg2Arg(77, FlagArgFromLeg1, isb.EncodeValue(0))
	if arg != 0 || skip {
		t.Fatalf("derived zero value = (%d, %v), want (0, false)", arg, skip)
	}
	// A valueless response (dequeue on empty) elides leg 2.
	if _, skip := DeriveLeg2Arg(77, FlagArgFromLeg1, isb.RespEmpty); !skip {
		t.Fatal("empty leg-1 response did not skip leg 2")
	}
}

func TestSeqStampsDisjointFromBatch(t *testing.T) {
	// Single ops stamp 0; batch windows stamp their index starting at 0.
	// The leg stamps must be distinct from 0 (single-op records) and from
	// each other, so same-engine legs cannot resolve from each other's
	// records. (Batch indexes 1 and 2 collide by design: a batch and a
	// transaction can never be announced at once — the announcement shapes
	// are mutually exclusive.)
	if Leg1Seq == 0 || Leg2Seq == 0 || Leg1Seq == Leg2Seq {
		t.Fatalf("leg stamps %d/%d must be nonzero and distinct", Leg1Seq, Leg2Seq)
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		ClassNoEffect:      "no-effect",
		ClassLeg2Recovered: "leg2-recovered",
		ClassCompleted:     "completed",
		Class(9):           "Class(9)",
	} {
		if got := c.String(); got != want {
			t.Fatalf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}
