// Package txn holds the shared vocabulary of detectably recoverable
// two-structure transactions: the recovery classes RecoverAll resolves a
// crashed transaction into, the leg sequence stamps that fence the two
// legs' tracking records apart, the announcement flags, and the
// deterministic leg-2 argument derivation both the apply and the recovery
// path compute from the same durable inputs.
//
// The protocol itself lives in the repro root (Runtime.ApplyTxn and the
// transaction branch of RecoverAll) and in pmem's announcement record
// (Proc.AnnounceTxn and friends); this package exists so the crash
// harnesses and the serve layer can name classes and flags without
// importing the whole runtime surface.
package txn

import (
	"fmt"

	"repro/internal/isb"
)

// Leg sequence stamps: the values install writes into each leg's Info
// record (offSeq). Single operations stamp 0 and batch operations stamp
// their window index starting at 0, so 1 and 2 keep a transaction leg's
// record from ever being attributed to a single op — and keep leg 1's
// record from resolving leg 2 when both legs hit the same engine with
// identical (kind, arg).
const (
	Leg1Seq = 1
	Leg2Seq = 2
)

// FlagArgFromLeg1 marks a transaction whose leg-2 argument is leg 1's
// response value rather than the announced one: the dequeue-then-insert
// handoff shape. When leg 1's response carries no value (dequeue on
// empty), leg 2 is deterministically elided with isb.RespSkipped.
const FlagArgFromLeg1 uint64 = 1

// Class is the recovery classification of a crashed transaction: exactly
// one of three, decided by the durable commit point and leg 1's tracking
// record.
type Class int

const (
	// ClassNoEffect: the commit point was unset and leg 1 provably did not
	// apply — neither structure changed, and the whole transaction is
	// safely re-submitted.
	ClassNoEffect Class = iota
	// ClassLeg2Recovered: leg 1's effect was durable (committed, or rolled
	// forward from its completed tracking record) and leg 2 was re-driven
	// idempotently through per-operation recovery.
	ClassLeg2Recovered
	// ClassCompleted: both result slots were durable; the transaction
	// finished before the crash and both responses were read back.
	ClassCompleted
)

func (c Class) String() string {
	switch c {
	case ClassNoEffect:
		return "no-effect"
	case ClassLeg2Recovered:
		return "leg2-recovered"
	case ClassCompleted:
		return "completed"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// DeriveLeg2Arg computes leg 2's effective argument from the announced
// one, the transaction flags, and leg 1's encoded response. skip reports
// that leg 2 is elided (its response becomes isb.RespSkipped). Both the
// apply path and recovery call this with the same durable inputs — the
// announced argument and the result-slot response — so a re-driven leg 2
// always targets the argument the original execution did.
func DeriveLeg2Arg(announced, flags, resp1 uint64) (arg uint64, skip bool) {
	if flags&FlagArgFromLeg1 == 0 {
		return announced, false
	}
	if !isb.IsValue(resp1) {
		return 0, true
	}
	return isb.DecodeValue(resp1), false
}
