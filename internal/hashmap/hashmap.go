// Package hashmap implements a detectably recoverable, sharded lock-free
// hash map built from ISB-tracked Harris lists (one sorted list per bucket,
// exactly the paper's Section 4 structure). Where every other structure in
// this repository is a single contention point, the hash map spreads keys
// over a power-of-two number of independent shards, so throughput scales
// with cores while detectable recovery is preserved.
//
// Recovery design. All shards share one ISB engine and therefore one set of
// per-process RD_q/CP_q recovery registers: a process has at most one
// operation in flight, so it needs exactly one recovery slot regardless of
// how many buckets the map has. In addition the map keeps a per-process
// *shard register* in persistent memory (one cache line per process): just
// before an Insert/Delete/Find touches its bucket, the register persistently
// records which shard the operation targets. With a fixed power-of-two
// shard count the route is also recomputable by re-hashing the key, so
// today the register is a cross-check on that route (and the persistent
// hook online resharding will need, when hashing can change across a
// crash) rather than the only way to find the shard. Recover(p, op, key)
// routes to the operation's shard and resolves it through the engine's
// Info structures, exactly as for a stand-alone list.
package hashmap

import (
	"fmt"
	"sort"

	"repro/internal/isb"
	"repro/internal/list"
	"repro/internal/pmem"
)

// Operation kinds: the map reuses the list's codes, so harnesses and
// linearizability kinds coincide.
const (
	OpInsert = list.OpInsert
	OpDelete = list.OpDelete
	OpFind   = list.OpFind
)

// Map is a detectably recoverable sharded hash set of uint64 keys
// (1 ≤ key ≤ MaxUint64-1, the Harris-list sentinel bounds).
type Map struct {
	h      *pmem.Heap
	e      *isb.Engine
	shards []*list.List
	mask   uint64
	regs   pmem.Addr // per-proc shard register lines; word0 = shard+1, 0 = none
}

// New builds a map with the requested shard count, rounded up to a power of
// two (minimum 1), with the paper's Algorithm 1/2 persistence placement.
// Shard bucket sentinels are persisted by list construction.
func New(h *pmem.Heap, shards int) *Map {
	return NewWithEngine(h, isb.NewEngine(h), shards)
}

// NewWithEngine builds the map on a caller-supplied engine shared by all
// bucket lists (one set of RD_q/CP_q recovery registers for the whole map).
func NewWithEngine(h *pmem.Heap, e *isb.Engine, shards int) *Map {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Map{h: h, e: e, mask: uint64(n - 1)}
	m.shards = make([]*list.List, n)
	for i := range m.shards {
		m.shards[i] = list.NewWithEngine(h, e)
	}
	p0 := h.Proc(0)
	procs := uint64(h.NumProcs())
	raw := p0.Alloc(procs*pmem.WordsPerLine + pmem.WordsPerLine)
	m.regs = (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	return m
}

// NumShards reports the (power-of-two) shard count.
func (m *Map) NumShards() int { return len(m.shards) }

// mix is the splitmix64 finalizer: a bijective scramble so that dense key
// ranges still spread across shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf returns the shard index key routes to.
func (m *Map) ShardOf(key uint64) int { return int(mix(key) & m.mask) }

func (m *Map) reg(p *pmem.Proc) pmem.Addr {
	return m.regs + pmem.Addr(p.ID()*pmem.WordsPerLine)
}

// recordShard persistently notes the shard the next operation targets, so
// that recovery can route without trusting volatile state.
//
// On a batched (Isb-Opt) engine the psync is elided: the operation enters
// the engine immediately after, and BeginOp's psync — issued before the
// operation touches its bucket, let alone persists any effect — covers the
// register's pwb. A crash inside that window leaves the register possibly
// unpersisted, but then the operation made no changes and Recover's
// empty/stale-register path re-hashes the key. Inside a batch window the
// psync defers likewise, to the op boundary or batch-end sync.
func (m *Map) recordShard(p *pmem.Proc, s int) {
	r := m.reg(p)
	p.Store(r, uint64(s)+1)
	p.PWB(r)
	if m.e.Batched() || m.e.InBatch(p) {
		return
	}
	p.PSync()
}

// RecordedShard returns the shard register's content for p: the shard of
// the operation in flight (or last recorded), or -1 if cleared.
func (m *Map) RecordedShard(p *pmem.Proc) int {
	v := p.Load(m.reg(p))
	if v == 0 {
		return -1
	}
	return int(v - 1)
}

// ApplyOp runs the operation described by (kind, arg) and returns its
// encoded response: the uniform invocation surface every structure shares.
// It records the target shard, then drives the shard's bucket list.
func (m *Map) ApplyOp(p *pmem.Proc, kind, arg uint64) uint64 {
	s := m.ShardOf(arg)
	m.recordShard(p, s)
	return m.shards[s].ApplyOp(p, kind, arg)
}

// Insert adds key to the map; it returns false if the key was present.
func (m *Map) Insert(p *pmem.Proc, key uint64) bool {
	return isb.Bool(m.ApplyOp(p, OpInsert, key))
}

// Delete removes key from the map; it returns false if the key was absent.
func (m *Map) Delete(p *pmem.Proc, key uint64) bool {
	return isb.Bool(m.ApplyOp(p, OpDelete, key))
}

// Find reports whether key is in the map (read-only, ROpt fast path).
func (m *Map) Find(p *pmem.Proc, key uint64) bool {
	return isb.Bool(m.ApplyOp(p, OpFind, key))
}

// Recover completes p's interrupted operation (same kind and key) after a
// crash and returns its response. It consults p's persistent shard
// register; if the register is empty or stale — the crash landed before
// this operation recorded its target, which proves the operation never
// reached a bucket — the key is re-hashed instead (with a fixed shard
// count the two routes agree whenever the register is set for this
// operation), and the engine's recovery path re-runs or completes the
// operation. Recover may itself crash and be re-invoked any number of
// times.
func (m *Map) Recover(p *pmem.Proc, op, key uint64) bool {
	return isb.Bool(m.RecoverOp(p, op, key))
}

// RecoverOp is the uniform recovery surface behind Recover: it routes to
// the operation's shard and returns the encoded response.
func (m *Map) RecoverOp(p *pmem.Proc, kind, arg uint64) uint64 {
	s := m.RecordedShard(p)
	if s < 0 || s != m.ShardOf(arg) {
		// Register empty or recording an earlier operation's target: the
		// crash landed before this operation wrote the register, so the
		// operation never reached a bucket. Re-hash the key — with a fixed
		// power-of-two shard count this is the shard the register would have
		// recorded — and let the engine re-run the operation from scratch
		// (its CP/RD checks detect that nothing took effect).
		s = m.ShardOf(arg)
	}
	return m.shards[s].RecoverOp(p, kind, arg)
}

// Begin is the system-side invocation step used by crash harnesses: it
// persistently clears CP_q and the shard register just before a fresh
// operation, so recovery can tell a brand-new operation from one that
// already recorded its target. A crash inside Begin leaves no recovery
// obligation — the harness simply retries it.
func (m *Map) Begin(p *pmem.Proc) {
	r := m.reg(p)
	p.Store(r, 0)
	p.PWB(r)
	m.e.BeginOp(p) // issues the psync covering both lines
}

// Keys snapshots the current key set in ascending order (requires
// quiescence).
func (m *Map) Keys() []uint64 {
	var out []uint64
	for _, s := range m.shards {
		out = append(out, s.Keys()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains is a non-recoverable volatile read used by tests and verifiers.
func (m *Map) Contains(key uint64) bool {
	return m.shards[m.ShardOf(key)].Contains(key)
}

// MarkReachable reports every node of every shard to the post-crash
// reclamation scan.
func (m *Map) MarkReachable(p *pmem.Proc, mark func(pmem.Addr)) {
	for _, s := range m.shards {
		s.MarkReachable(p, mark)
	}
}

// Engine exposes the shared ISB engine (for tests asserting RD/CP
// behaviour).
func (m *Map) Engine() *isb.Engine { return m.e }

// CheckInvariants verifies every shard's structural invariants plus the
// sharding invariant (every key lives in the shard it hashes to). It
// returns a description of the first violation, or "".
func (m *Map) CheckInvariants() string {
	for i, s := range m.shards {
		if msg := s.CheckInvariants(); msg != "" {
			return fmt.Sprintf("shard %d: %s", i, msg)
		}
		for _, k := range s.Keys() {
			if m.ShardOf(k) != i {
				return fmt.Sprintf("key %d found in shard %d but hashes to shard %d", k, i, m.ShardOf(k))
			}
		}
	}
	return ""
}
