package hashmap

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newHeap(procs int, tracked bool) *pmem.Heap {
	return pmem.NewHeap(pmem.Config{Words: 1 << 22, Procs: procs, Tracked: tracked})
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	h := newHeap(1, false)
	for _, c := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		if got := New(h, c.ask).NumShards(); got != c.want {
			t.Fatalf("New(%d shards).NumShards() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		h := newHeap(1, false)
		m := New(h, shards)
		p := h.Proc(0)
		model := map[uint64]bool{}
		rng := rand.New(rand.NewSource(int64(shards)))
		for i := 0; i < 3000; i++ {
			k := uint64(rng.Intn(64)) + 1
			switch rng.Intn(3) {
			case 0:
				if got, want := m.Insert(p, k), !model[k]; got != want {
					t.Fatalf("shards=%d: Insert(%d) = %v, want %v", shards, k, got, want)
				}
				model[k] = true
			case 1:
				if got, want := m.Delete(p, k), model[k]; got != want {
					t.Fatalf("shards=%d: Delete(%d) = %v, want %v", shards, k, got, want)
				}
				delete(model, k)
			default:
				if got, want := m.Find(p, k), model[k]; got != want {
					t.Fatalf("shards=%d: Find(%d) = %v, want %v", shards, k, got, want)
				}
			}
		}
		keys := m.Keys()
		if len(keys) != len(model) {
			t.Fatalf("shards=%d: %d keys, model has %d", shards, len(keys), len(model))
		}
		for i, k := range keys {
			if !model[k] {
				t.Fatalf("shards=%d: key %d present but not in model", shards, k)
			}
			if i > 0 && keys[i-1] >= k {
				t.Fatalf("shards=%d: Keys not ascending: %v", shards, keys)
			}
		}
		if msg := m.CheckInvariants(); msg != "" {
			t.Fatalf("shards=%d: %s", shards, msg)
		}
	}
}

func TestShardRegisterRecordsTarget(t *testing.T) {
	h := newHeap(2, false)
	m := New(h, 8)
	p := h.Proc(1)
	if m.RecordedShard(p) != -1 {
		t.Fatal("fresh shard register not empty")
	}
	for k := uint64(1); k <= 50; k++ {
		m.Insert(p, k)
		if got, want := m.RecordedShard(p), m.ShardOf(k); got != want {
			t.Fatalf("after Insert(%d): register %d, want shard %d", k, got, want)
		}
	}
	m.Begin(p)
	if m.RecordedShard(p) != -1 {
		t.Fatal("Begin did not clear the shard register")
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	h := newHeap(1, false)
	m := New(h, 8)
	p := h.Proc(0)
	for k := uint64(1); k <= 400; k++ {
		m.Insert(p, k)
	}
	per := map[int]int{}
	for k := uint64(1); k <= 400; k++ {
		per[m.ShardOf(k)]++
	}
	if len(per) != 8 {
		t.Fatalf("dense keys hit only %d of 8 shards", len(per))
	}
	for s, n := range per {
		if n < 10 {
			t.Fatalf("shard %d got only %d of 400 dense keys (hash not spreading)", s, n)
		}
	}
	if msg := m.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestConcurrentDisjointKeys exercises the sharing of the engine across
// shards under the race detector: each proc owns a disjoint key range, so
// the final membership is exactly determined per proc.
func TestConcurrentDisjointKeys(t *testing.T) {
	const procs, keysPer = 4, 32
	h := newHeap(procs, false)
	m := New(h, 8)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := h.Proc(w)
			base := uint64(w*keysPer) + 1
			for k := base; k < base+keysPer; k++ {
				m.Insert(p, k)
			}
			for k := base; k < base+keysPer; k += 2 {
				m.Delete(p, k)
			}
		}(w)
	}
	wg.Wait()
	if msg := m.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for k := uint64(1); k <= procs*keysPer; k++ {
		want := (k-1)%2 == 1 // odd offsets survive (even offsets deleted)
		if got := m.Contains(k); got != want {
			t.Fatalf("key %d: present %v, want %v", k, got, want)
		}
	}
}

// TestConcurrentContendedSmoke hammers a small key range from several procs
// (all shards contended) and checks structural invariants; it exists mainly
// as -race coverage of helping across shard lists sharing one engine.
func TestConcurrentContendedSmoke(t *testing.T) {
	const procs = 4
	h := newHeap(procs, false)
	m := New(h, 4)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := h.Proc(w)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < 500; i++ {
				k := uint64(rng.Intn(16)) + 1
				switch rng.Intn(3) {
				case 0:
					m.Insert(p, k)
				case 1:
					m.Delete(p, k)
				default:
					m.Find(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	if msg := m.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestCrashRecoverMidInsert injects crashes at increasing access offsets
// inside an Insert, restarts, and recovers; the shard register must name
// the right shard and recovery must land the key exactly once.
func TestCrashRecoverMidInsert(t *testing.T) {
	for off := uint64(1); off <= 40; off++ {
		h := newHeap(1, true)
		m := New(h, 4)
		p := h.Proc(0)
		m.Insert(p, 100) // pre-existing neighbour traffic
		const key = 7
		h.ScheduleCrashAt(h.AccessCount() + off)
		if pmem.RunOp(func() { m.Insert(p, key) }) {
			h.DisarmCrash()
			continue // crash would have landed after the op finished
		}
		h.ResetAfterCrash()
		if rec := m.RecordedShard(p); rec != -1 && rec != m.ShardOf(key) {
			t.Fatalf("off=%d: register %d, want %d or empty", off, rec, m.ShardOf(key))
		}
		if !m.Recover(p, OpInsert, key) {
			t.Fatalf("off=%d: recovery of fresh insert returned false", off)
		}
		if !m.Contains(key) || !m.Contains(100) {
			t.Fatalf("off=%d: post-recovery membership wrong", off)
		}
		if msg := m.CheckInvariants(); msg != "" {
			t.Fatalf("off=%d: %s", off, msg)
		}
	}
}
