package hashmap

import (
	"repro/internal/isb"
	"repro/internal/pmem"
)

// FindFast reports membership via the zero-persist read path: route to the
// key's shard and run the bucket list's volatile traversal. The shard
// register is NOT written — the read leaves no durable trace at all; a
// crashed FindFast is simply re-submitted (routing on recovery would
// re-hash the key anyway).
func (m *Map) FindFast(p *pmem.Proc, key uint64) bool {
	return m.shards[m.ShardOf(key)].FindFast(p, key)
}

// ReadOp serves a read-only operation kind on the zero-persist path.
// Panics on a mutating kind.
func (m *Map) ReadOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind != OpFind {
		panic("hashmap: ReadOp on a mutating kind")
	}
	return isb.BoolResp(m.FindFast(p, arg))
}

// ApplyBatchOp runs one operation at position seq inside an open batch
// window: record the shard (the register's psync elides inside the window
// — the boundary or batch-end psync covers it, and the simulator's pwb is
// synchronous, so crash-visible state is unchanged), then drive the
// shard's bucket list. Read-only kinds skip both the register write and
// the engine.
func (m *Map) ApplyBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind {
		return m.ReadOp(p, kind, arg)
	}
	s := m.ShardOf(arg)
	m.recordShard(p, s)
	return m.shards[s].ApplyBatchOp(p, seq, kind, arg)
}

// RecoverBatchOp completes the in-flight operation at batch position seq
// after a crash, routing like RecoverOp: trust the shard register when it
// matches the re-hash, re-hash otherwise (a mismatch proves the register
// still holds an earlier operation's target, so this operation never
// reached a bucket).
func (m *Map) RecoverBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpFind {
		return m.ReadOp(p, kind, arg)
	}
	s := m.RecordedShard(p)
	if s < 0 || s != m.ShardOf(arg) {
		s = m.ShardOf(arg)
	}
	return m.shards[s].RecoverBatchOp(p, seq, kind, arg)
}
