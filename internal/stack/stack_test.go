package stack

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/isb"
	"repro/internal/pmem"
)

func newStack(t *testing.T, procs, spins int) (*Stack, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true})
	return New(h, spins), h
}

func TestEmptyPop(t *testing.T) {
	s, h := newStack(t, 1, 0)
	p := h.Proc(0)
	if _, ok := s.Pop(p); ok {
		t.Fatal("pop on empty stack succeeded")
	}
}

func TestLIFOOrder(t *testing.T) {
	s, h := newStack(t, 1, 0)
	p := h.Proc(0)
	for v := uint64(1); v <= 50; v++ {
		s.Push(p, v)
	}
	for v := uint64(50); v >= 1; v-- {
		got, ok := s.Pop(p)
		if !ok || got != v {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
	if _, ok := s.Pop(p); ok {
		t.Fatal("stack should be empty")
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestValuesSnapshot(t *testing.T) {
	s, h := newStack(t, 1, 0)
	p := h.Proc(0)
	s.Push(p, 1)
	s.Push(p, 2)
	s.Push(p, 3)
	got := s.Values()
	if len(got) != 3 || got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("Values = %v, want [3 2 1]", got)
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	s, h := newStack(t, 1, 0)
	p := h.Proc(0)
	var model []uint64
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 4000; i++ {
		if rng.Intn(2) == 0 {
			v := uint64(i) + 1
			s.Push(p, v)
			model = append(model, v)
		} else {
			v, ok := s.Pop(p)
			if len(model) == 0 {
				if ok {
					t.Fatalf("op %d: pop on empty model returned %d", i, v)
				}
			} else {
				want := model[len(model)-1]
				if !ok || v != want {
					t.Fatalf("op %d: Pop = (%d,%v), want (%d,true)", i, v, ok, want)
				}
				model = model[:len(model)-1]
			}
		}
	}
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestConcurrentPushPop checks conservation under concurrency (with
// elimination enabled): every pushed value is popped at most once, and
// pushed-but-not-popped values remain on the stack.
func TestConcurrentPushPop(t *testing.T) {
	const procs = 4
	const perProc = 300
	s, h := newStack(t, 2*procs, DefaultElimSpins)
	var wg sync.WaitGroup
	popped := make([][]uint64, procs)
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			for j := 0; j < perProc; j++ {
				s.Push(p, uint64(id)*1_000_000+uint64(j)+1)
			}
		}(id)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(procs + id)
			for j := 0; j < perProc; j++ {
				if v, ok := s.Pop(p); ok {
					popped[id] = append(popped[id], v)
				}
			}
		}(id)
	}
	wg.Wait()
	if msg := s.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	seen := map[uint64]bool{}
	for _, ps := range popped {
		for _, v := range ps {
			if seen[v] {
				t.Fatalf("value %d popped twice", v)
			}
			seen[v] = true
		}
	}
	rest := s.Values()
	for _, v := range rest {
		if seen[v] {
			t.Fatalf("value %d popped and still on stack", v)
		}
		seen[v] = true
	}
	if len(seen) != procs*perProc {
		t.Fatalf("conservation: %d values accounted, want %d", len(seen), procs*perProc)
	}
}

func TestEliminationPairs(t *testing.T) {
	// With a large elimination window and one pusher + one popper, at least
	// some operations should eliminate; regardless, outcomes must be
	// consistent.
	s, h := newStack(t, 2, 1<<16)
	var wg sync.WaitGroup
	var got []uint64
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := h.Proc(0)
		for v := uint64(1); v <= 50; v++ {
			s.Push(p, v)
		}
	}()
	go func() {
		defer wg.Done()
		p := h.Proc(1)
		for i := 0; i < 50; i++ {
			if v, ok := s.Pop(p); ok {
				got = append(got, v)
			}
		}
	}()
	wg.Wait()
	seen := map[uint64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	for _, v := range s.Values() {
		if seen[v] {
			t.Fatalf("value %d popped and still present", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("%d values accounted, want 50", len(seen))
	}
}

func TestRecoverAfterCompletedOps(t *testing.T) {
	s, h := newStack(t, 1, 0)
	p := h.Proc(0)
	s.Push(p, 9)
	if r := s.RecoverOp(p, OpPush, 9); r != isb.RespTrue {
		t.Fatalf("Recover(push) = %d", r)
	}
	if n := len(s.Values()); n != 1 {
		t.Fatalf("recover duplicated push: %d values", n)
	}
	v, ok := s.Pop(p)
	if !ok || v != 9 {
		t.Fatalf("Pop = (%d,%v)", v, ok)
	}
	if r := s.RecoverOp(p, OpPop, 0); r != isb.EncodeValue(9) {
		t.Fatalf("Recover(pop) = %d", r)
	}
	if len(s.Values()) != 0 {
		t.Fatal("recover re-executed pop")
	}
}

func TestCrashSweepPushPop(t *testing.T) {
	for _, spins := range []int{0, 8} {
		for offset := uint64(1); offset <= 60; offset++ {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
			s := New(h, spins)
			p := h.Proc(0)
			s.Push(p, 1)

			h.ScheduleCrashAt(h.AccessCount() + offset)
			crashed := !pmem.RunOp(func() { s.Push(p, 2) })
			if crashed {
				h.ResetAfterCrash()
				if r := s.RecoverOp(p, OpPush, 2); r != isb.RespTrue {
					t.Fatalf("spins %d offset %d: push recovery = %d", spins, offset, r)
				}
			}
			vals := s.Values()
			if len(vals) != 2 || vals[0] != 2 || vals[1] != 1 {
				t.Fatalf("spins %d offset %d: values %v, want [2 1]", spins, offset, vals)
			}

			h.ScheduleCrashAt(h.AccessCount() + offset)
			var v uint64
			var ok bool
			crashed = !pmem.RunOp(func() { v, ok = s.Pop(p) })
			if crashed {
				h.ResetAfterCrash()
				r := s.RecoverOp(p, OpPop, 0)
				if r == isb.RespEmpty {
					t.Fatalf("spins %d offset %d: pop recovered empty on 2-element stack", spins, offset)
				}
				v, ok = isb.DecodeValue(r), true
			}
			if !ok || v != 2 {
				t.Fatalf("spins %d offset %d: pop (%d,%v), want (2,true)", spins, offset, v, ok)
			}
			if msg := s.CheckInvariants(); msg != "" {
				t.Fatalf("spins %d offset %d: %s", spins, offset, msg)
			}
		}
	}
}
