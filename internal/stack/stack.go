// Package stack implements a detectably recoverable elimination stack: the
// paper's ISB-tracking applied to a Treiber-style central stack, combined
// (per Section 1) with elimination through the detectably recoverable
// exchanger of Section 6.
//
// Central stack. The stack is a linked chain hanging off a sentinel node,
// terminated by a bottom sentinel — exactly the recoverable linked list
// specialized to position zero. Push replaces the current top with a fresh
// node whose successor is a fresh *copy* of the old top (the old top
// retires, staying tagged forever), so the sentinel's next field never
// holds the same address twice; Pop unlinks the top, whose successor is
// always such a fresh copy. That discharges the ABA assumption without
// version counters.
//
// Elimination. Before touching the central stack, a Push offers its value
// on the exchanger as a waiter and a Pop tries to collide as a collider
// (asymmetric roles prevent push/push pairing). A successful exchange
// eliminates the pair: the pop returns the push's value and neither touches
// the central stack. Each side's outcome is detectable through the
// exchanger's own recovery data; if the elimination provably had no effect,
// recovery falls through to the central stack's ISB recovery.
package stack

import (
	"repro/internal/exchanger"
	"repro/internal/isb"
	"repro/internal/pmem"
)

// Node field offsets (words); 4-word allocations.
const (
	nVal  = 0
	nNext = 1
	nInfo = 2

	nodeWords = 4
)

// Operation kinds for recovery and the crash harness.
const (
	OpPush uint64 = 20
	OpPop  uint64 = 21
)

// bottomMark identifies the bottom sentinel; user values must be smaller.
const bottomMark uint64 = 1<<64 - 1

// MaxValue bounds user values.
const MaxValue uint64 = 1<<64 - 2

// DefaultElimSpins is the default elimination window (retry iterations on
// the exchanger before falling back to the central stack).
const DefaultElimSpins = 24

// Stack is a detectably recoverable LIFO stack of uint64 values.
type Stack struct {
	h        *pmem.Heap
	e        *isb.Engine
	ex       *exchanger.Exchanger
	sentinel pmem.Addr
	spins    int

	gPush, gPop isb.Gather
}

// New builds an empty stack with the paper's Algorithm 1/2 persistence
// placement. elimSpins ≤ 0 disables elimination.
func New(h *pmem.Heap, elimSpins int) *Stack {
	return NewWithEngine(h, isb.NewEngine(h), elimSpins)
}

// NewWithEngine builds the stack on a caller-supplied engine.
func NewWithEngine(h *pmem.Heap, e *isb.Engine, elimSpins int) *Stack {
	s := &Stack{h: h, e: e, ex: exchanger.New(h), spins: elimSpins}
	p := h.Proc(0)
	bottom := newNode(e, p, bottomMark, pmem.Null, 0)
	s.sentinel = newNode(e, p, 0, bottom, 0)
	p.PBarrierRange(bottom, nodeWords)
	p.PBarrierRange(s.sentinel, nodeWords)
	p.PSync()
	s.gPush = s.gatherPush
	s.gPop = s.gatherPop
	return s
}

// newNode draws a node from the engine's allocator (arena by default, the
// epoch reclaimer when the runtime enables reclamation).
func newNode(e *isb.Engine, p *pmem.Proc, val uint64, next pmem.Addr, info uint64) pmem.Addr {
	nd := e.Alloc(p, nodeWords)
	p.Store(nd+nVal, val)
	p.Store(nd+nNext, uint64(next))
	p.Store(nd+nInfo, info)
	return nd
}

// Begin is the system-side invocation step for both recovery registers. The
// engine's BeginOp also durably clears the announcement record (on an
// announcing engine) before either CP_q resets, so it runs first: once a CP
// says "nothing in flight", a stale announcement must already be gone or
// registry-routed recovery would duplicate the previous operation.
func (s *Stack) Begin(p *pmem.Proc) {
	s.e.BeginOp(p)
	s.ex.Begin(p)
}

// ApplyOp runs the operation described by (kind, arg) and returns its
// encoded response (RespTrue for push; RespEmpty or a value for pop).
//
// With elimination enabled the operation can take effect outside the
// engine (a collision never reaches the central stack), so its
// announcement must exist before Exchange runs — and every recovery
// register the announcement could be routed to must reset before the
// announcement exists, or a previous operation's outcome would be read as
// this one's. Hence the order: BeginOp (retire the old announcement, CP_q
// := 0), exchanger Begin (CP_ex := 0; Exchange's own internal Begin runs
// too late to provide this), then AnnounceFor. Without elimination the
// engine's RunOp entry (BeginOpFor) provides the whole sequence itself.
func (s *Stack) ApplyOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind == OpTop {
		return s.ReadOp(p, kind, arg)
	}
	if s.spins > 0 {
		s.e.BeginOp(p)
		s.ex.Begin(p)
		s.e.AnnounceFor(p, kind, arg)
		if kind == OpPush {
			if _, ok := s.ex.Exchange(p, arg, exchanger.WaiterOnly, s.spins); ok {
				return isb.RespTrue // eliminated by a pop
			}
		} else {
			if v, ok := s.ex.Exchange(p, 0, exchanger.ColliderOnly, s.spins); ok {
				return isb.EncodeValue(v) // eliminated a concurrent push
			}
		}
	}
	if kind == OpPush {
		return s.e.RunOp(p, OpPush, arg, s.gPush)
	}
	return s.e.RunOp(p, OpPop, arg, s.gPop)
}

// Push adds v to the stack (eliminating with a concurrent Pop if possible).
func (s *Stack) Push(p *pmem.Proc, v uint64) {
	s.ApplyOp(p, OpPush, v)
}

// Pop removes and returns the top value; ok=false on empty.
func (s *Stack) Pop(p *pmem.Proc) (uint64, bool) {
	r := s.ApplyOp(p, OpPop, 0)
	if r == isb.RespEmpty {
		return 0, false
	}
	return isb.DecodeValue(r), true
}

// RecoverOp resumes an interrupted Push or Pop after a crash, returning the
// encoded response (RespTrue for push; RespEmpty or a value for pop). It
// first consults the exchanger's recovery data: if the elimination took
// effect, that outcome stands; otherwise the central stack's ISB recovery
// decides.
func (s *Stack) RecoverOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind == OpTop {
		// Reads leave no durable trace; recovery re-executes them.
		return s.ReadOp(p, kind, arg)
	}
	if s.spins > 0 {
		role := exchanger.WaiterOnly
		if kind == OpPop {
			role = exchanger.ColliderOnly
		}
		if v, ok := s.ex.Recover(p, arg, role, 1, false); ok {
			if kind == OpPush {
				return isb.RespTrue
			}
			return isb.EncodeValue(v)
		}
	}
	if kind == OpPush {
		return s.e.Recover(p, OpPush, arg, s.gPush)
	}
	return s.e.Recover(p, OpPop, arg, s.gPop)
}

// gatherPush: AffectSet = (sentinel, top); WriteSet = {sentinel.next:
// top → new node}; NewSet = {new node, copy of top}. The old top retires.
func (s *Stack) gatherPush(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	sentInfo := p.Load(s.sentinel + nInfo)
	top := pmem.Addr(p.Load(s.sentinel + nNext))
	topInfo := p.Load(top + nInfo)
	tagged := isb.Tagged(info)
	topCopy := newNode(s.e, p, p.Load(top+nVal), pmem.Addr(p.Load(top+nNext)), tagged)
	newnd := newNode(s.e, p, spec.ArgKey, topCopy, tagged)
	spec.AddAffect(s.sentinel+nInfo, sentInfo)
	spec.AddAffect(top+nInfo, topInfo) // retires on success
	spec.AddWrite(s.sentinel+nNext, uint64(top), uint64(newnd))
	spec.AddCleanup(s.sentinel + nInfo)
	spec.AddCleanup(newnd + nInfo)
	spec.AddCleanup(topCopy + nInfo)
	spec.AddPersist(newnd, nodeWords)
	spec.AddPersist(topCopy, nodeWords)
	spec.SuccessResponse = isb.RespTrue
	return isb.Proceed
}

// gatherPop: AffectSet = (sentinel, top); WriteSet = {sentinel.next:
// top → top.next}. Empty (top is the bottom sentinel) is read-only.
func (s *Stack) gatherPop(p *pmem.Proc, info pmem.Addr, spec *isb.Spec) isb.GatherResult {
	sentInfo := p.Load(s.sentinel + nInfo)
	top := pmem.Addr(p.Load(s.sentinel + nNext))
	topInfo := p.Load(top + nInfo)
	if p.Load(top+nVal) == bottomMark {
		spec.AddAffect(top+nInfo, topInfo)
		spec.AddCleanup(top + nInfo)
		spec.ReadOnly = true
		spec.Response = isb.RespEmpty
		return isb.Proceed
	}
	spec.AddAffect(s.sentinel+nInfo, sentInfo)
	spec.AddAffect(top+nInfo, topInfo) // retires on success
	spec.AddWrite(s.sentinel+nNext, uint64(top), p.Load(top+nNext))
	spec.AddCleanup(s.sentinel + nInfo)
	spec.SuccessResponse = isb.EncodeValue(p.Load(top + nVal))
	return isb.Proceed
}

// MarkReachable reports every node on the chain from the sentinel to the
// post-crash reclamation scan (the scan's transitive closure follows
// tagged info fields and record-referenced copies from there).
func (s *Stack) MarkReachable(p *pmem.Proc, mark func(pmem.Addr)) {
	mark(s.sentinel)
	curr := pmem.Addr(p.Load(s.sentinel + nNext))
	for {
		mark(curr)
		if p.Load(curr+nVal) == bottomMark {
			return
		}
		curr = pmem.Addr(p.Load(curr + nNext))
	}
}

// Values snapshots the stack top-to-bottom (test helper; quiescence).
func (s *Stack) Values() []uint64 {
	var out []uint64
	h := s.h
	curr := pmem.Addr(h.ReadVolatile(s.sentinel + nNext))
	for {
		v := h.ReadVolatile(curr + nVal)
		if v == bottomMark {
			return out
		}
		out = append(out, v)
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
	}
}

// CheckInvariants validates the chain at quiescence.
func (s *Stack) CheckInvariants() string {
	h := s.h
	if isb.IsTagged(h.ReadVolatile(s.sentinel + nInfo)) {
		return "sentinel tagged at quiescence"
	}
	curr := pmem.Addr(h.ReadVolatile(s.sentinel + nNext))
	steps := 0
	for {
		if curr == pmem.Null {
			return "fell off the stack before the bottom sentinel"
		}
		if isb.IsTagged(h.ReadVolatile(curr + nInfo)) {
			return "live stack node tagged at quiescence"
		}
		if h.ReadVolatile(curr+nVal) == bottomMark {
			return ""
		}
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
		if steps++; steps > 1<<24 {
			return "cycle suspected"
		}
	}
}
