package stack

import (
	"repro/internal/isb"
	"repro/internal/pmem"
)

// OpTop is the read-only top-of-stack probe, served exclusively by the
// zero-persist read path (it never installs an Info record and never
// visits the elimination layer).
const OpTop uint64 = 22

// TopFast returns the top value without popping it: a volatile read of
// sentinel.next with no Info record, no announcement, and no persistence
// instruction. Linearizes at the load of sentinel.next. Nothing durable
// records the read; a crashed top is simply re-submitted.
func (s *Stack) TopFast(p *pmem.Proc) (v uint64, ok bool) {
	top := pmem.Addr(p.Load(s.sentinel + nNext))
	s.e.NoteReadFast(p)
	val := p.Load(top + nVal)
	if val == bottomMark {
		return 0, false
	}
	return val, true
}

// Top is the typed convenience wrapper over the OpTop fast path.
func (s *Stack) Top(p *pmem.Proc) (v uint64, ok bool) {
	return s.TopFast(p)
}

// ReadOp serves a read-only operation kind on the zero-persist path.
// Panics on a mutating kind.
func (s *Stack) ReadOp(p *pmem.Proc, kind, arg uint64) uint64 {
	if kind != OpTop {
		panic("stack: ReadOp on a mutating kind")
	}
	v, ok := s.TopFast(p)
	if !ok {
		return isb.RespEmpty
	}
	return isb.EncodeValue(v)
}

// ApplyBatchOp runs one operation at position seq inside an open batch
// window. Batched pushes and pops bypass the elimination layer entirely:
// the batch announcement replaces the per-op announcement the exchanger's
// recovery routing depends on, and collisions would complete outside the
// batch record's cursor protocol. OpTop takes the zero-persist path.
func (s *Stack) ApplyBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpTop {
		return s.ReadOp(p, kind, arg)
	}
	if kind == OpPush {
		return s.e.RunBatchOp(p, seq, OpPush, arg, s.gPush)
	}
	return s.e.RunBatchOp(p, seq, OpPop, arg, s.gPop)
}

// RecoverBatchOp completes the in-flight operation at batch position seq
// after a crash. Batched operations never visit the exchanger, so unlike
// RecoverOp this consults only the central stack's ISB recovery (checking
// the exchanger here could surface a previous single operation's stale
// elimination outcome).
func (s *Stack) RecoverBatchOp(p *pmem.Proc, seq int, kind, arg uint64) uint64 {
	if kind == OpTop {
		return s.ReadOp(p, kind, arg)
	}
	if kind == OpPush {
		return s.e.RecoverSeq(p, OpPush, arg, uint64(seq), s.gPush)
	}
	return s.e.RecoverSeq(p, OpPop, arg, uint64(seq), s.gPop)
}

// Engine exposes the stack's tracking engine (counter access, batching).
func (s *Stack) Engine() *isb.Engine { return s.e }
