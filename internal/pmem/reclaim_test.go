package pmem

import "testing"

func reclaimHeap(t *testing.T, procs int) *Heap {
	t.Helper()
	return NewHeap(Config{Procs: procs, Words: 1 << 16, Tracked: true})
}

// TestReclaimerAllocFreeReuse pins the insta-reuse path: a never-published
// block freed by its owner is handed out again by the very next Alloc of
// the same class, zeroed.
func TestReclaimerAllocFreeReuse(t *testing.T) {
	h := reclaimHeap(t, 2)
	r := NewReclaimer(h)
	p := h.Proc(0)

	a := r.Alloc(p, 4)
	p.Store(a, 77)
	p.Store(a+3, 99)
	r.Free(p, a+2) // interior pointer must resolve to the block
	b := r.Alloc(p, 4)
	if b != a {
		t.Fatalf("freed block not reused: got %#x want %#x", b, a)
	}
	for w := Addr(0); w < 4; w++ {
		if v := p.Load(b + w); v != 0 {
			t.Fatalf("reused block word %d not zeroed: %d", w, v)
		}
	}
	st := r.Stats()
	if st.Reused != 1 {
		t.Fatalf("Reused = %d, want 1", st.Reused)
	}
}

// TestReclaimerRetireGrace pins the epoch grace period: a retired block is
// not reused while any process stays pinned in the retire epoch, and is
// reused after every pin moves on.
func TestReclaimerRetireGrace(t *testing.T) {
	h := reclaimHeap(t, 2)
	r := NewReclaimer(h)
	p, q := h.Proc(0), h.Proc(1)

	r.Enter(p)
	r.Enter(q) // q's pin will go stale, blocking the epoch
	a := r.Alloc(p, 4)
	r.Retire(p, a)

	// Force many advance attempts: q is pinned at the current epoch, so the
	// epoch advances at most once and a's grace period never elapses.
	for i := 0; i < 4*ringFreeThreshold; i++ {
		n := r.Alloc(p, 4)
		r.Retire(p, n)
	}
	if got := r.Stats().Freed; got != 0 {
		t.Fatalf("freed %d blocks while a process was pinned in the retire epoch", got)
	}

	// Release q; two refreshed pins later the grace period has elapsed.
	r.Exit(q)
	for i := 0; i < 4*ringFreeThreshold; i++ {
		r.Enter(p)
		n := r.Alloc(p, 4)
		r.Retire(p, n)
	}
	if got := r.Stats().Freed; got == 0 {
		t.Fatal("no blocks freed after all pins released")
	}
	r.Exit(p)
}

// TestReclaimerBoundedHeap pins the tentpole property at the allocator
// level: churn far beyond the heap capacity completes because blocks are
// recycled, with bump-pointer usage bounded.
func TestReclaimerBoundedHeap(t *testing.T) {
	h := reclaimHeap(t, 1)
	r := NewReclaimer(h)
	p := h.Proc(0)

	churn := 4 * h.Capacity() / 4 // 4× capacity worth of 4-word blocks
	for i := uint64(0); i < churn; i++ {
		r.Enter(p)
		a := r.Alloc(p, 4)
		p.Store(a, i)
		r.Retire(p, a)
	}
	r.Exit(p)
	if used := h.Used(); used > h.Capacity()/2 {
		t.Fatalf("heap not bounded under churn: used %d of %d", used, h.Capacity())
	}
	st := r.Stats()
	if st.Reused == 0 {
		t.Fatal("no blocks reused under churn")
	}
}

// TestReclaimerTwoClasses pins the class separation (4-word nodes and
// 32-word Info records must not alias) and the class-table limit.
func TestReclaimerTwoClasses(t *testing.T) {
	h := reclaimHeap(t, 1)
	r := NewReclaimer(h)
	p := h.Proc(0)

	a := r.Alloc(p, 4)
	b := r.Alloc(p, 32)
	if sa, wa, ok := r.BlockOf(a + 1); !ok || sa != a || wa != 4 {
		t.Fatalf("BlockOf(node) = %#x,%d,%v", sa, wa, ok)
	}
	if sb, wb, ok := r.BlockOf(b + 31); !ok || sb != b || wb != 32 {
		t.Fatalf("BlockOf(info) = %#x,%d,%v", sb, wb, ok)
	}
	if _, _, ok := r.BlockOf(1 << 40); ok {
		t.Fatal("BlockOf accepted an address outside every slab")
	}
	r.Free(p, a)
	if c := r.Alloc(p, 32); c == a {
		t.Fatal("cross-class reuse: 32-word alloc returned a freed 4-word block")
	}
}

// TestReclaimerDegradedAfterCrash pins the desync guard: after a crash and
// before any scan, Alloc bypasses the free lists and Retire drops.
func TestReclaimerDegradedAfterCrash(t *testing.T) {
	h := reclaimHeap(t, 1)
	r := NewReclaimer(h)
	p := h.Proc(0)

	a := r.Alloc(p, 4)
	r.Free(p, a)

	h.Crash()
	h.ResetAfterCrash()

	b := r.Alloc(p, 4)
	if b == a {
		t.Fatal("degraded Alloc reused a pre-crash free-list block")
	}
	pre := r.Stats().Dropped
	r.Retire(p, b)
	if r.Stats().Dropped != pre+1 {
		t.Fatal("degraded Retire did not drop the retirement")
	}

	// A scan with an empty mark set resynchronizes and re-homes everything.
	rep := r.Scan(p, func(mark func(Addr)) {})
	if rep.Swept == 0 {
		t.Fatalf("scan swept nothing: %+v", rep)
	}
	if !r.synced() {
		t.Fatal("reclaimer still degraded after scan")
	}
}

// TestReclaimerScanMarksSurvive pins the conservative sweep: marked blocks
// stay live (content intact), unmarked blocks return zeroed to free lists,
// and torn ring entries are detected by checksum.
func TestReclaimerScanMarksSurvive(t *testing.T) {
	h := reclaimHeap(t, 2)
	r := NewReclaimer(h)
	p := h.Proc(0)

	keep := r.Alloc(p, 4)
	p.Store(keep, 42)
	p.PWB(keep)
	lose := r.Alloc(p, 4)
	p.Store(lose, 43)
	r.Enter(p)
	gone := r.Alloc(p, 4)
	r.Retire(p, gone)
	dropped := r.Alloc(p, 4)
	r.Retire(p, dropped)
	r.Exit(p)

	// Tear the second retirement's ring entry: corrupt its checksum word
	// and persist the damage, as a crash mid-entry-write would leave it.
	slot := r.ringSlot(0, 1)
	p.Store(slot+3, p.Load(slot+3)^1)
	p.PWB(slot)
	p.PSync()

	h.Crash()
	h.ResetAfterCrash()

	rep := r.Scan(p, func(mark func(Addr)) {
		mark(keep + 2) // interior pointer marks the block
		mark(1 << 40)  // garbage addresses are ignored
		mark(r.epochA) // non-slab pmem addresses are ignored
	})
	if rep.Marked != 1 {
		t.Fatalf("Marked = %d, want 1 (%+v)", rep.Marked, rep)
	}
	if rep.Swept != 3 {
		t.Fatalf("Swept = %d, want 3 (%+v)", rep.Swept, rep)
	}
	if rep.TornRetires != 1 {
		t.Fatalf("TornRetires = %d, want 1 (%+v)", rep.TornRetires, rep)
	}
	if v := p.Load(keep); v != 42 {
		t.Fatalf("marked block content lost: %d", v)
	}
	if got := r.LiveBlocks(); got != 1 {
		t.Fatalf("LiveBlocks = %d, want 1", got)
	}

	// Swept blocks are reusable and zeroed.
	x := r.Alloc(p, 4)
	if x != lose && x != gone && x != dropped {
		t.Fatalf("post-scan Alloc did not reuse a swept block: %#x", x)
	}
	if v := p.Load(x); v != 0 {
		t.Fatalf("swept block not zeroed: %d", v)
	}
}

// TestReclaimerScanIdempotent pins restartability: running the scan twice
// (as a crash mid-scan would) yields the same live set.
func TestReclaimerScanIdempotent(t *testing.T) {
	h := reclaimHeap(t, 1)
	r := NewReclaimer(h)
	p := h.Proc(0)

	keep := r.Alloc(p, 4)
	r.Alloc(p, 4) // swept
	h.Crash()
	h.ResetAfterCrash()

	markAll := func(mark func(Addr)) { mark(keep) }
	rep1 := r.Scan(p, markAll)
	rep2 := r.Scan(p, markAll)
	if rep1.Marked != 1 || rep2.Marked != 1 {
		t.Fatalf("Marked = %d then %d, want 1 both times", rep1.Marked, rep2.Marked)
	}
	// Free blocks are re-swept (the heads were reset, so every free block
	// must be re-pushed), but the partition must not change.
	if rep2.Swept != rep1.Swept {
		t.Fatalf("scan not idempotent: swept %d then %d", rep1.Swept, rep2.Swept)
	}
	if got := r.LiveBlocks(); got != 1 {
		t.Fatalf("LiveBlocks = %d, want 1", got)
	}
}
