package pmem

// Allocator abstracts node allocation for the recoverable structures and
// the ISB engine. Two implementations exist:
//
//   - Arena: the original leak-forever bump allocator (Proc.Alloc). Retire,
//     Free, Enter and Exit are no-ops; memory is never reused within a run.
//     It remains the conformance oracle: every structure behaves identically
//     on it, and the differential tests pin the reclaiming allocator against
//     it.
//   - Reclaimer (reclaim.go): an epoch-based reclaimer whose retired-node
//     rings, epoch counters and free-list heads live in the pmem heap
//     layout, making reclamation itself detectably recoverable.
//
// The split of Free vs Retire mirrors visibility: Free returns a block that
// was never published (no other process can hold a reference — e.g. the
// fresh nodes of a gather attempt that restarted before its Info record was
// installed) and may reuse it immediately; Retire unlinks a block that other
// processes may still reach through in-flight helping or stale traversals,
// so reuse must wait for an epoch grace period.
type Allocator interface {
	// Alloc returns a zeroed-or-overwritable block of at least words words,
	// even-aligned (bit 0 free for tags). Callers must initialize every
	// word they later read.
	Alloc(p *Proc, words uint64) Addr

	// Free returns a never-published block for immediate reuse. a may be
	// any address inside the block. Unknown blocks are ignored.
	Free(p *Proc, a Addr)

	// Retire marks the block containing a as unlinked; it becomes reusable
	// after an epoch grace period guarantees no process still holds a
	// reference. Unknown or already-retired blocks are ignored.
	Retire(p *Proc, a Addr)

	// Enter pins the calling process in the current epoch: blocks retired
	// from now on cannot be reused until the process exits (or re-enters
	// a later epoch). Re-entering refreshes the pin.
	Enter(p *Proc)

	// Exit releases the pin. A process that crashes while pinned is
	// un-pinned by the post-crash scan.
	Exit(p *Proc)

	// BlockOf resolves an interior pointer to its containing block's start
	// and size; ok is false if a is not inside any block this allocator
	// manages.
	BlockOf(a Addr) (start Addr, words uint64, ok bool)
}

// Arena is the leak-forever allocator: a thin wrapper over the heap's bump
// pointer, preserving the seed behaviour (the paper assumes GC; retired
// nodes stay tagged forever and addresses never recur). It is stateless and
// shareable.
type Arena struct{}

// Alloc carves fresh words from the arena (never reused within a run).
func (Arena) Alloc(p *Proc, words uint64) Addr { return p.Alloc(words) }

// Free is a no-op: the arena never reuses memory.
func (Arena) Free(p *Proc, a Addr) {}

// Retire is a no-op: retired nodes leak (and stay tagged) forever.
func (Arena) Retire(p *Proc, a Addr) {}

// Enter is a no-op: with no reuse there is nothing to protect.
func (Arena) Enter(p *Proc) {}

// Exit is a no-op.
func (Arena) Exit(p *Proc) {}

// BlockOf reports no containment: the arena keeps no block metadata.
func (Arena) BlockOf(a Addr) (Addr, uint64, bool) { return 0, 0, false }
