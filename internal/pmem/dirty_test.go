package pmem

import (
	"math/rand"
	"testing"
)

// drive applies one pseudo-random store/pwb/barrier/psync step to a heap.
// Two heaps built with identical Configs and driven with the same rng
// sequence perform bit-identical access sequences (per-proc eviction PRNGs
// are seeded from the heap seed, so even simulated evictions agree).
func drive(rng *rand.Rand, h *Heap, base Addr, span uint64, steps int) {
	p := h.Proc(0)
	for i := 0; i < steps; i++ {
		a := base + Addr(rng.Int63n(int64(span)))
		switch rng.Intn(10) {
		case 0:
			p.PWB(a)
		case 1:
			addrs := make([]Addr, 1+rng.Intn(40))
			for j := range addrs {
				addrs[j] = base + Addr(rng.Int63n(int64(span)))
			}
			p.PBarrierAddrs(addrs)
		case 2:
			p.PSync()
		case 3:
			p.CAS(a, p.Load(a), rng.Uint64())
		default:
			p.Store(a, rng.Uint64())
		}
	}
}

// TestResetAfterCrashDifferential pins the tentpole equivalence: after
// randomized store/pwb/evict/crash sequences, the dirty-line restore and the
// brute-force full-arena restore must yield bit-identical volatile images.
// Quick-check style over both persistency models, eviction on and off,
// with several crash rounds per sequence so post-crash state is exercised.
func TestResetAfterCrashDifferential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		model Model
		evict uint64
	}{
		{"shared-cache", SharedCache, 0},
		{"shared-cache-evict", SharedCache, 4},
		{"private-cache", PrivateCache, 0},
		{"private-cache-evict", PrivateCache, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seq := int64(0); seq < 20; seq++ {
				cfg := Config{
					Words: 1 << 14, Procs: 1, Model: tc.model,
					Tracked: true, EvictEvery: tc.evict, Seed: uint64(seq) + 1,
				}
				hd := NewHeap(cfg) // dirty-line restore under test
				hf := NewHeap(cfg) // full-restore oracle
				const span = 4096
				bd := hd.Proc(0).Alloc(span)
				bf := hf.Proc(0).Alloc(span)
				if bd != bf {
					t.Fatalf("heaps diverged at allocation: %d vs %d", bd, bf)
				}
				for round := 0; round < 3; round++ {
					rd := rand.New(rand.NewSource(seq*31 + int64(round)))
					rf := rand.New(rand.NewSource(seq*31 + int64(round)))
					drive(rd, hd, bd, span, 400)
					drive(rf, hf, bf, span, 400)
					hd.Crash()
					hf.Crash()
					hd.ResetAfterCrash()
					hf.resetAfterCrashFull()
					for w := uint64(0); w < hd.Used(); w++ {
						if g, want := hd.ReadVolatile(Addr(w)), hf.ReadVolatile(Addr(w)); g != want {
							t.Fatalf("seq %d round %d: volatile[%d] = %#x after dirty restore, %#x after full restore",
								seq, round, w, g, want)
						}
					}
				}
			}
		})
	}
}

// TestDirtyLineCount checks the bitmap's lifecycle: a store dirties its
// line, a pwb cleans it, and a crash reset leaves everything clean.
func TestDirtyLineCount(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 13, Procs: 1, Tracked: true})
	p := h.Proc(0)
	a := p.Alloc(16)
	if n := h.DirtyLineCount(); n != 0 {
		t.Fatalf("fresh heap has %d dirty lines", n)
	}
	p.Store(a, 7)
	if n := h.DirtyLineCount(); n != 1 {
		t.Fatalf("after one store: %d dirty lines, want 1", n)
	}
	p.PWB(a)
	if n := h.DirtyLineCount(); n != 0 {
		t.Fatalf("after pwb: %d dirty lines, want 0", n)
	}
	p.Store(a, 8)
	p.Store(a+8, 9)
	h.Crash()
	h.ResetAfterCrash()
	if n := h.DirtyLineCount(); n != 0 {
		t.Fatalf("after crash reset: %d dirty lines, want 0", n)
	}
	if g := h.ReadVolatile(a); g != 7 {
		t.Fatalf("after crash reset: volatile = %d, want persisted 7", g)
	}
}

// TestPersistLineSkipsClean pins the skip: re-flushing an already-clean
// line must not issue another line write-back copy (observable through the
// persisted image staying at the volatile value — and, more directly, the
// dirty bit staying clear lets the barrier hot path skip the copy loop).
func TestPersistLineSkipsClean(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 13, Procs: 1, Tracked: true})
	p := h.Proc(0)
	a := p.Alloc(8)
	p.Store(a, 1)
	p.PWB(a)
	if g := h.ReadPersisted(a); g != 1 {
		t.Fatalf("persisted = %d, want 1", g)
	}
	// Clean re-flush: no divergence, nothing to copy, image unchanged.
	p.PWB(a)
	if g := h.ReadPersisted(a); g != 1 {
		t.Fatalf("persisted after clean re-flush = %d, want 1", g)
	}
}

// TestAccessCountUnconditional is the regression for the AccessCount doc
// bug: tracked-mode accesses must count whether or not a crash is armed
// (the counter used to advance only while armed).
func TestAccessCountUnconditional(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 13, Procs: 1, Tracked: true})
	p := h.Proc(0)
	a := p.Alloc(8) // Alloc is itself one tracked access
	before := h.AccessCount()
	if before == 0 {
		t.Fatal("Alloc access did not count")
	}
	for i := 0; i < 5; i++ {
		p.Store(a, uint64(i))
	}
	for i := 0; i < 3; i++ {
		p.Load(a)
	}
	if got := h.AccessCount() - before; got != 8 {
		t.Fatalf("AccessCount advanced by %d with no crash armed, want 8", got)
	}

	// Untracked heaps do not pay for the shared counter.
	hu := NewHeap(Config{Words: 1 << 13, Procs: 1})
	pu := hu.Proc(0)
	pu.Store(pu.Alloc(8), 1)
	if got := hu.AccessCount(); got != 0 {
		t.Fatalf("untracked AccessCount = %d, want 0", got)
	}
}

// barrierLineFixture allocates n distinct cache lines, dirties them all,
// and returns an address list naming each line three times, interleaved.
func barrierLineFixture(p *Proc, n int) []Addr {
	base := p.Alloc(uint64(n * WordsPerLine))
	addrs := make([]Addr, 0, 3*n)
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < n; i++ {
			a := base + Addr(i*WordsPerLine+rep) // different word, same line
			addrs = append(addrs, a)
		}
	}
	for _, a := range addrs {
		p.Store(a, uint64(a))
	}
	return addrs
}

// TestPBarrierAddrsExactDedup pins the exact-dedup acceptance criterion:
// a phase touching far more distinct lines than the old 16-entry window
// must still flush each distinct line exactly once.
func TestPBarrierAddrsExactDedup(t *testing.T) {
	const lines = 40 // > the old window sizes (8 for PBarrier, 16 for Addrs)
	h := NewHeap(Config{Words: 1 << 14, Procs: 1, Tracked: true})
	p := h.Proc(0)
	addrs := barrierLineFixture(p, lines)

	before := p.Stats()
	p.PBarrierAddrs(addrs)
	d := p.Stats().Sub(before)
	if d.Barriers != 1 || d.Fences != 1 {
		t.Fatalf("barrier accounting: %d barriers, %d fences, want 1 and 1", d.Barriers, d.Fences)
	}
	if d.LineFlushes != lines {
		t.Fatalf("PBarrierAddrs flushed %d lines for %d distinct lines (%d addresses)",
			d.LineFlushes, lines, len(addrs))
	}
	if d.Flushes != 0 {
		t.Fatalf("barrier pwbs counted as %d stand-alone flushes", d.Flushes)
	}
	for _, a := range addrs {
		if g, want := h.ReadPersisted(a), uint64(a); g != want {
			t.Fatalf("persisted[%d] = %#x, want %#x", a, g, want)
		}
	}

	// The variadic form shares the same exact dedup.
	addrs2 := barrierLineFixture(p, lines)
	before = p.Stats()
	p.PBarrier(addrs2...)
	if d := p.Stats().Sub(before); d.LineFlushes != lines {
		t.Fatalf("PBarrier flushed %d lines for %d distinct lines", d.LineFlushes, lines)
	}
}

// TestBarrierZeroAllocs pins zero steady-state Go allocations on the
// barrier hot path, including phases larger than any fixed window.
func TestBarrierZeroAllocs(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16, Procs: 1, Tracked: true})
	p := h.Proc(0)
	addrs := barrierLineFixture(p, 64)
	if n := testing.AllocsPerRun(100, func() {
		for _, a := range addrs {
			p.Store(a, uint64(a))
		}
		p.PBarrierAddrs(addrs)
		p.PBarrier(addrs[:24]...)
		p.PSync()
	}); n != 0 {
		t.Fatalf("barrier hot path allocates %.1f times per run, want 0", n)
	}
}
