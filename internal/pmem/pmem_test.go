package pmem

import (
	"sync"
	"testing"
	"testing/quick"
)

func newTracked(t *testing.T, procs int) *Heap {
	t.Helper()
	return NewHeap(Config{Words: 1 << 16, Procs: procs, Tracked: true})
}

func TestAllocEvenAlignedAndDistinct(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := p.Alloc(3)
		if a == Null {
			t.Fatal("Alloc returned Null")
		}
		if a%2 != 0 {
			t.Fatalf("Alloc returned odd address %d", a)
		}
		if seen[a] {
			t.Fatalf("Alloc returned duplicate address %d", a)
		}
		seen[a] = true
	}
}

func TestAllocConcurrentDisjoint(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 20, Procs: 8, Tracked: false})
	var mu sync.Mutex
	all := map[Addr]int{}
	var wg sync.WaitGroup
	for id := 0; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			local := make([]Addr, 0, 2000)
			for i := 0; i < 2000; i++ {
				local = append(local, p.Alloc(5))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, a := range local {
				if prev, dup := all[a]; dup {
					t.Errorf("address %d allocated by both proc %d and %d", a, prev, id)
					return
				}
				all[a] = id
			}
		}(id)
	}
	wg.Wait()
}

func TestStoreLoadCAS(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	a := p.Alloc(1)
	p.Store(a, 7)
	if got := p.Load(a); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	if got := p.CAS(a, 7, 9); got != 7 {
		t.Fatalf("successful CAS returned %d, want read value 7", got)
	}
	if got := p.Load(a); got != 9 {
		t.Fatalf("after CAS Load = %d, want 9", got)
	}
	if got := p.CAS(a, 7, 11); got != 9 {
		t.Fatalf("failed CAS returned %d, want current value 9", got)
	}
	if got := p.Load(a); got != 9 {
		t.Fatalf("failed CAS mutated value: %d", got)
	}
}

func TestUnpersistedWriteLostAtCrash(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	a := p.Alloc(1)
	p.Store(a, 1)
	p.PWB(a)
	p.PSync()
	p.Store(a, 2) // never flushed

	h.Crash()
	crashed := !RunOp(func() { p.Load(a) })
	if !crashed {
		t.Fatal("proc did not observe the crash")
	}
	h.ResetAfterCrash()
	if got := p.Load(a); got != 1 {
		t.Fatalf("after crash value = %d, want persisted 1", got)
	}
}

func TestPWBSynchronouslyDurable(t *testing.T) {
	// PWB models the paper's clflush: the line is written back before the
	// process continues, so a PWB'd store survives a crash even without a
	// following PSync.
	h := newTracked(t, 1)
	p := h.Proc(0)
	a := p.Alloc(1)
	p.Store(a, 5)
	p.PWB(a)

	h.Crash()
	RunOp(func() { p.Load(a) })
	h.ResetAfterCrash()
	if got := p.Load(a); got != 5 {
		t.Fatalf("PWB'd value lost at crash: %d", got)
	}
}

func TestPSyncPersistsWholeLine(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	base := p.Alloc(WordsPerLine)
	base = lineOf(base + WordsPerLine - 1) // a fully owned line
	for i := Addr(0); i < WordsPerLine; i++ {
		p.Store(base+i, uint64(100+i))
	}
	p.PWB(base) // one pwb covers the whole cache line
	p.PSync()
	for i := Addr(0); i < WordsPerLine; i++ {
		if got := h.ReadPersisted(base + i); got != uint64(100+i) {
			t.Fatalf("word %d persisted %d, want %d", i, got, 100+i)
		}
	}
}

func TestPWBCapturesValueAtFlushTime(t *testing.T) {
	// A store after the PWB is not covered by it (clflush semantics): the
	// persisted image holds the value at flush time.
	h := newTracked(t, 1)
	p := h.Proc(0)
	a := p.Alloc(1)
	p.Store(a, 1)
	p.PWB(a)
	p.Store(a, 2)
	p.PSync()
	if got := h.ReadPersisted(a); got != 1 {
		t.Fatalf("persisted %d, want 1 (flush-time value)", got)
	}
}

func TestPrivateCacheImmediatelyDurable(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16, Procs: 1, Tracked: true, Model: PrivateCache})
	p := h.Proc(0)
	a := p.Alloc(1)
	p.Store(a, 42)
	if got := h.ReadPersisted(a); got != 42 {
		t.Fatalf("private-cache store not durable: persisted %d", got)
	}
	s0 := p.Stats()
	p.PWB(a)
	p.PSync()
	p.PBarrier(a)
	d := p.Stats().Sub(s0)
	if d.Flushes != 0 || d.Syncs != 0 || d.Barriers != 0 {
		t.Fatalf("private-cache persistence instructions counted: %+v", d)
	}
}

func TestCrashLosesOnlyUnflushedState(t *testing.T) {
	h := newTracked(t, 2)
	p0, p1 := h.Proc(0), h.Proc(1)
	a := p0.Alloc(WordsPerLine) // own line
	b := p0.Alloc(WordsPerLine) // own line
	p0.Store(a, 1)
	p0.PWB(a)      // durable
	p1.Store(b, 2) // never flushed: lost

	h.Crash()
	RunOp(func() { p0.Load(a) })
	RunOp(func() { p1.Load(b) })
	h.ResetAfterCrash()

	if got := h.ReadVolatile(a); got != 1 {
		t.Fatalf("flushed word lost: %d", got)
	}
	if got := h.ReadVolatile(b); got != 0 {
		t.Fatalf("unflushed word survived: %d", got)
	}
	// After reset, procs run again and can persist normally.
	p0.Store(a, 3)
	p0.PWB(a)
	p0.PSync()
	if got := h.ReadPersisted(a); got != 3 {
		t.Fatalf("post-crash persist failed: %d", got)
	}
}

func TestCrashPanicsOncePerProc(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	a := p.Alloc(1)
	h.Crash()
	if RunOp(func() { p.Store(a, 1) }) {
		t.Fatal("op completed during crash")
	}
	// The same proc does not re-panic before reset (it already unwound);
	// this lets recovery code of *other* heaps proceed and simplifies the
	// controller. After reset it runs normally.
	if !RunOp(func() { _ = p.crashed }) {
		t.Fatal("unexpected second panic")
	}
	h.ResetAfterCrash()
	if !RunOp(func() { p.Store(a, 2) }) {
		t.Fatal("op failed after reset")
	}
}

func TestStatsCounting(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16, Procs: 1})
	p := h.Proc(0)
	a := p.Alloc(2)
	p.Store(a, 1)
	p.Load(a)
	p.CAS(a, 1, 2)
	p.PWB(a)
	p.PSync()
	p.PBarrier(a, a+1) // same cache line: 1 barrier, 1 fence
	p.PFence()
	s := p.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.CASes != 1 {
		t.Fatalf("primitive counts wrong: %+v", s)
	}
	if s.Flushes != 1 {
		t.Fatalf("stand-alone flushes = %d, want 1 (barrier pwbs excluded)", s.Flushes)
	}
	if s.Barriers != 1 {
		t.Fatalf("barriers = %d, want 1", s.Barriers)
	}
	if s.Syncs != 1 {
		t.Fatalf("syncs = %d, want 1", s.Syncs)
	}
	if s.Fences != 2 { // one inside the barrier, one explicit
		t.Fatalf("fences = %d, want 2", s.Fences)
	}
}

func TestEvictionPersistsWithoutFlush(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16, Procs: 1, Tracked: true, EvictEvery: 1, Seed: 1})
	p := h.Proc(0)
	a := p.Alloc(1)
	p.Store(a, 9) // EvictEvery=1 persists every store
	if got := h.ReadPersisted(a); got != 9 {
		t.Fatalf("eviction did not persist: %d", got)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestPersistedNeverAheadWithoutWriteback(t *testing.T) {
	// Property: with no PWB/PSync and no eviction, the persisted image of a
	// word stays at its last explicitly persisted value no matter the
	// volatile history.
	h := newTracked(t, 1)
	p := h.Proc(0)
	f := func(vals []uint64) bool {
		a := p.Alloc(1)
		for _, v := range vals {
			p.Store(a, v)
		}
		return h.ReadPersisted(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushSyncIdempotent(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	f := func(v uint64, repeats uint8) bool {
		a := p.Alloc(1)
		p.Store(a, v)
		for i := 0; i <= int(repeats%5); i++ {
			p.PWB(a)
			p.PSync()
		}
		return h.ReadPersisted(a) == v && h.ReadVolatile(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCASLinearizes(t *testing.T) {
	h := NewHeap(Config{Words: 1 << 16, Procs: 4})
	a := h.Proc(0).Alloc(1)
	const perProc = 10000
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			for i := 0; i < perProc; i++ {
				for {
					old := p.Load(a)
					if p.CASBool(a, old, old+1) {
						break
					}
				}
			}
		}(id)
	}
	wg.Wait()
	if got := h.ReadVolatile(a); got != 4*perProc {
		t.Fatalf("counter = %d, want %d", got, 4*perProc)
	}
}

func TestModelString(t *testing.T) {
	if SharedCache.String() != "shared-cache" || PrivateCache.String() != "private-cache" {
		t.Fatal("Model.String broken")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown model should still format")
	}
}

func TestLineOf(t *testing.T) {
	cases := []struct{ in, want Addr }{{0, 0}, {7, 0}, {8, 8}, {15, 8}, {16, 16}}
	for _, c := range cases {
		if got := lineOf(c.in); got != c.want {
			t.Fatalf("lineOf(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSpinItersPositive(t *testing.T) {
	if spinIters(0) != 0 {
		t.Fatal("zero duration should not spin")
	}
	if spinIters(DefaultPWBLatency) < 1 {
		t.Fatal("calibration produced non-positive spin count")
	}
}

func TestScheduleSelfCrashIndividualFailure(t *testing.T) {
	h := newTracked(t, 2)
	p0, p1 := h.Proc(0), h.Proc(1)
	a := p0.Alloc(1)
	b := p0.Alloc(1)
	p0.ScheduleSelfCrash(3)
	crashed := !RunOp(func() {
		p0.Store(a, 1) // access 1
		p0.Store(a, 2) // access 2
		p0.Store(a, 3) // access 3: crash fires here
		p0.Store(a, 4) // never reached
	})
	if !crashed {
		t.Fatal("individual crash did not fire")
	}
	// Other processes are unaffected — no system-wide crash in progress.
	if h.Crashing() {
		t.Fatal("individual failure escalated to a system crash")
	}
	if !RunOp(func() { p1.Store(b, 9) }) {
		t.Fatal("survivor was crashed too")
	}
	// The failed process resumes immediately (no Restart needed).
	if !RunOp(func() { p0.Store(a, 5) }) {
		t.Fatal("failed process could not resume")
	}
	if got := h.ReadVolatile(a); got != 5 {
		t.Fatalf("a = %d", got)
	}
}

func TestCancelSelfCrash(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	a := p.Alloc(1)
	p.ScheduleSelfCrash(2)
	p.CancelSelfCrash()
	if !RunOp(func() { p.Store(a, 1); p.Store(a, 2); p.Store(a, 3) }) {
		t.Fatal("cancelled self-crash still fired")
	}
}

func TestDisarmCrash(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	a := p.Alloc(1)
	h.ScheduleCrashAt(h.AccessCount() + 2)
	h.DisarmCrash()
	if !RunOp(func() { p.Store(a, 1); p.Store(a, 2); p.Store(a, 3) }) {
		t.Fatal("disarmed crash still fired")
	}
}

func TestAnnouncementRecordLifecycle(t *testing.T) {
	h := newTracked(t, 2)
	p := h.Proc(1)
	if _, _, _, ok := p.Announcement(); ok {
		t.Fatal("fresh heap reports an announcement")
	}
	p.Announce(3, 7, 9)
	if sid, kind, arg, ok := p.Announcement(); !ok || sid != 3 || kind != 7 || arg != 9 {
		t.Fatalf("Announcement = (%d,%d,%d,%v), want (3,7,9,true)", sid, kind, arg, ok)
	}
	// The single pwb makes the record crash-durable.
	h.Crash()
	h.ResetAfterCrash()
	if sid, kind, arg, ok := p.Announcement(); !ok || sid != 3 || kind != 7 || arg != 9 {
		t.Fatalf("announcement lost across crash: (%d,%d,%d,%v)", sid, kind, arg, ok)
	}
	// Per-proc isolation: proc 0 still has none.
	if _, _, _, ok := h.Proc(0).Announcement(); ok {
		t.Fatal("announcement leaked across procs")
	}
	p.ClearAnnounce()
	h.Crash()
	h.ResetAfterCrash()
	if _, _, _, ok := p.Announcement(); ok {
		t.Fatal("cleared announcement survived the crash")
	}
}

func TestAnnouncementPartialPersistInvalid(t *testing.T) {
	h := newTracked(t, 1)
	p := h.Proc(0)
	p.Announce(1, 2, 3)
	// Overwrite with a new announcement whose pwb never happens, with one
	// payload word leaking to persistence via eviction: the checksum must
	// reject the mixed record after the crash.
	a := h.annAddr(0)
	p.Store(a+annStruct, 2)
	p.Store(a+annKind, 5)
	h.persistLine(a) // evict: new structID/kind durable, but old checksum...
	p.Store(a+annArg, 6)
	p.Store(a+annSum, annCheck(2, 5, 6)) // never written back
	h.Crash()
	h.ResetAfterCrash()
	if sid, kind, arg, ok := p.Announcement(); ok {
		t.Fatalf("mixed announcement validated: (%d,%d,%d)", sid, kind, arg)
	}
}
