// Package pmem simulates byte-addressable non-volatile main memory (NVRAM)
// with explicit epoch persistency, as assumed by the paper "Tracking in
// Order to Recover" (SPAA 2020).
//
// Real persistence control (clflush/mfence on designated NVM) is not
// available from Go: the garbage-collected runtime owns the heap layout and
// offers no cache-line write-back primitives. Instead, the package keeps a
// word-addressed arena with two images:
//
//   - a volatile image, on which all Load/Store/CAS primitives act
//     (simulating CPU caches + store buffers under TSO), and
//   - a persisted image, to which cache lines move only via explicit
//     PWB/PSync instructions (or simulated random eviction).
//
// A system-wide crash discards the volatile image: every word reverts to its
// persisted value. This reproduces the abstract semantics of the paper's
// shared cache model. The private cache model is also supported: there every
// Store/CAS is immediately persistent and persistency instructions are free.
//
// Addresses (Addr) are word indices into the arena; address 0 is Null and is
// never returned by Alloc. Allocations are even-aligned so that bit 0 of an
// address is always available as a tag bit (ISB tagging) or mark bit
// (Harris-style deletion marks).
//
// Persistence-instruction accounting is cache-line granular (8 words per
// line), matching the paper's counting of clflush/mfence instructions, and
// simulated latencies are attached to PWB/PSync in the shared cache model so
// that throughput comparisons are driven by the same quantity the paper
// measures: the number of persistence instructions per operation.
//
// # Performance model
//
// The simulator keeps its own costs off the measured hot paths. A tracked
// heap maintains a per-cache-line dirty bitmap recording which lines'
// volatile image may diverge from the persisted image: line write-backs
// skip clean lines, and ResetAfterCrash restores only dirty lines —
// O(dirty), not O(used arena) — which is what makes every-crash-point
// conformance sweeps cheap enough to run densely. Barrier dedup
// (PBarrier/PBarrierAddrs) is exact for any phase size via a per-proc
// reusable line set, so each distinct line is flushed once and the hot
// path performs zero steady-state Go allocations. Tracked-mode accesses
// are counted unconditionally (AccessCount); untracked heaps skip the
// shared counter entirely.
package pmem

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Addr is a word index into a Heap's arena. 0 is Null.
type Addr uint64

// Null is the zero address. Loads of Null return 0; stores to Null panic.
const Null Addr = 0

// WordsPerLine is the simulated cache line size in 64-bit words (64 bytes).
const WordsPerLine = 8

// Model selects the persistency model from the paper's Section 2.
type Model int

const (
	// SharedCache: main memory is non-volatile, caches are volatile.
	// Writes reach persistence only through PWB/PSync (or eviction).
	SharedCache Model = iota
	// PrivateCache: shared variables are always persistent; persistency
	// instructions are no-ops with zero cost.
	PrivateCache
)

func (m Model) String() string {
	switch m {
	case SharedCache:
		return "shared-cache"
	case PrivateCache:
		return "private-cache"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config parameterises a Heap.
type Config struct {
	// Words is the arena capacity in 64-bit words. Zero selects a default
	// suitable for tests (1<<20 words = 8 MiB volatile image).
	Words int
	// Procs is the number of process descriptors. Zero defaults to 1.
	Procs int
	// Model selects shared-cache (default) or private-cache persistency.
	Model Model
	// Tracked enables the persisted image and crash support. Benchmarks
	// leave it off: persistence instructions then only count and delay.
	Tracked bool
	// PWBLatency and PSyncLatency simulate the cost of clflush and mfence
	// in the shared cache model. Zero means no simulated delay.
	PWBLatency   time.Duration
	PSyncLatency time.Duration
	// EvictEvery, when Tracked and >0, makes roughly one in EvictEvery
	// stores also persist its cache line immediately, simulating an
	// arbitrary cache eviction. This widens the crash-state space tests
	// explore (persisted state may be *newer* than the last explicit sync).
	EvictEvery uint64
	// Seed feeds the per-proc PRNGs used for eviction decisions.
	Seed uint64
}

// Heap is a simulated persistent memory region shared by a set of Procs.
type Heap struct {
	vol []atomic.Uint64 // volatile image: what primitives act on
	per []atomic.Uint64 // persisted image (tracked mode only)

	// dirty is a per-cache-line bitmap (tracked mode only): bit l%64 of
	// word l/64 is set iff line l's volatile image may diverge from its
	// persisted image. Writers set a line's bit immediately after the
	// volatile store; persistLine clears it immediately before copying the
	// line back. That ordering keeps the invariant "volatile != persisted
	// implies dirty" under concurrency (a racing store re-dirties the line
	// after the clear, and the copy then already sees its value), at worst
	// leaving a spuriously dirty line — never a silently clean one. The
	// bitmap is what makes ResetAfterCrash O(dirty lines) instead of
	// O(used arena) and lets persistLine skip write-backs of clean lines.
	dirty []atomic.Uint64

	annBase Addr // per-proc announcement lines (see proc.go: Announce)

	next    atomic.Uint64 // bump pointer (word index)
	cap     uint64
	procs   []*Proc
	model   Model
	tracked bool

	pwbSpin   int64 // calibrated spin iterations per PWB
	psyncSpin int64 // calibrated spin iterations per PSync

	evictEvery uint64

	crashing  atomic.Bool // when set, every Proc panics at its next access
	epoch     atomic.Uint64
	accessCtr atomic.Uint64 // total pmem accesses (tracked mode, unconditional)
	crashAt   atomic.Uint64 // armed access-count threshold; 0 = disarmed
}

// reserved words at the bottom of the arena (so Null==0 is never allocated,
// and the first line is never flushed by accident).
const reservedWords = WordsPerLine

// Announcement record layout: one region per process, reserved in the heap
// layout right after the Null line. The first line holds the single-operation
// announcement (structure ID, operation kind, argument, checksum) that the
// runtime's registry-routed recovery reads after a crash (see Proc.Announce),
// plus the batch-announcement header (count, completed-prefix cursor,
// checksum). The following lines hold the batch's op slots (kind/arg pairs)
// and per-op result slots. See Proc.AnnounceBatch.
const (
	annStruct = 0 // structure ID (0 = no announcement)
	annKind   = 1 // operation kind
	annArg    = 2 // operation argument
	annSum    = 3 // checksum binding the three words (see annCheck)

	abCount  = 4 // batch op count (0 = no batch announcement)
	abCursor = 5 // completed-prefix cursor: ops [0, cursor) have durable results
	abSum    = 6 // checksum binding structID, count and every op slot

	// annTxn is the transaction-announcement checksum (0 = no transaction
	// announced): it binds the two leg descriptors and the flags word in the
	// txLegs line (see txnCheck), so a header that persisted without its leg
	// line — or vice versa — is detectably invalid. The three announcement
	// shapes are mutually exclusive: announcing a transaction zeroes
	// annStruct and abCount; Announce/AnnounceBatch zero annTxn.
	annTxn = 7

	// abSlots is the first op slot word: MaxBatch (kind, arg) pairs.
	abSlots = WordsPerLine
	// abResults is the first result slot word: MaxBatch response words.
	// A result slot of 0 (the engine's ⊥) means "no durable result".
	abResults = abSlots + 2*MaxBatch

	// Transaction announcement: one line of leg descriptors — two
	// (structID, kind, arg) triples, the durable commit-point word and a
	// flags word — plus a line of per-leg result slots (0 = no durable
	// result, like batch result slots). The commit point is 0 until leg 1
	// completed and its result slot persisted; CommitTxn then sets it to
	// txnCommitMark(annTxn's checksum), a nonzero value bound to this very
	// transaction's legs, so a stale mark can never validate a new record.
	txLegs    = abResults + MaxBatch // leg line: 6 leg words, commit, flags
	txCommit  = txLegs + 6           // durable commit point (0 = uncommitted)
	txFlags   = txLegs + 7           // transaction flags (see internal/txn)
	txResults = txLegs + WordsPerLine

	// annStride is the per-process announcement region size in words
	// (header line + op slots + result slots + txn lines; whole lines).
	annStride = txResults + WordsPerLine
)

// MaxBatch bounds the number of operations one batch announcement can hold.
const MaxBatch = 64

// NewHeap allocates a simulated persistent heap and its process descriptors.
func NewHeap(cfg Config) *Heap {
	if cfg.Words <= 0 {
		cfg.Words = 1 << 20
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	// Room for the Null line, the per-proc announcement regions, and an arena.
	if min := 2*reservedWords + annStride*cfg.Procs; cfg.Words < min {
		cfg.Words = min
	}
	h := &Heap{
		vol:        make([]atomic.Uint64, cfg.Words),
		cap:        uint64(cfg.Words),
		model:      cfg.Model,
		tracked:    cfg.Tracked,
		evictEvery: cfg.EvictEvery,
	}
	if cfg.Tracked {
		h.per = make([]atomic.Uint64, cfg.Words)
		lines := (cfg.Words + WordsPerLine - 1) / WordsPerLine
		h.dirty = make([]atomic.Uint64, (lines+63)/64)
	}
	h.annBase = reservedWords
	h.next.Store(reservedWords + uint64(cfg.Procs)*annStride)
	h.pwbSpin = spinIters(cfg.PWBLatency)
	h.psyncSpin = spinIters(cfg.PSyncLatency)
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	h.procs = make([]*Proc, cfg.Procs)
	for i := range h.procs {
		h.procs[i] = &Proc{
			h:   h,
			id:  i,
			rng: seed ^ (uint64(i)+1)*0xbf58476d1ce4e5b9,
		}
	}
	return h
}

// Proc returns process descriptor id (0-based).
func (h *Heap) Proc(id int) *Proc {
	return h.procs[id]
}

// annAddr returns the first word of proc id's announcement region.
func (h *Heap) annAddr(id int) Addr { return h.annBase + Addr(id)*annStride }

// annCheck is the checksum word binding an announcement's three payload
// words. An announcement is only valid if the persisted checksum matches the
// persisted payload, which makes a partially persisted announcement (a crash
// between its stores and its pwb, with some words reaching persistence via
// simulated eviction) detectably invalid instead of a garbled route. The
// result is never zero, so a cleared line can never validate.
func annCheck(structID, kind, arg uint64) uint64 {
	x := structID*0x9e3779b97f4a7c15 ^ kind*0xbf58476d1ce4e5b9 ^ arg*0x94d049bb133111eb
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	x ^= x >> 32
	if x == 0 {
		x = 1
	}
	return x
}

// batchCheck chains annCheck over a batch announcement's immutable part:
// the structure ID, the op count and every (kind, arg) slot, in order. The
// cursor and result slots are deliberately excluded — they mutate as the
// batch progresses and have their own torn-write defenses (a result slot is
// durable strictly before the cursor that covers it). Like annCheck the
// result is never zero, so a cleared header can never validate.
func batchCheck(structID, count uint64, op func(i int) (kind, arg uint64)) uint64 {
	sum := annCheck(structID, count, 0)
	for i := 0; i < int(count); i++ {
		k, a := op(i)
		sum = annCheck(sum, k, a)
	}
	return sum
}

// txnCheck chains annCheck over a transaction announcement's immutable
// part: both leg descriptors and the flags word, in order. The commit point
// and result slots are deliberately excluded — they mutate as the
// transaction progresses and have their own torn-write defenses (a result
// slot is durable strictly before the commit point that covers it). Never
// zero, so a cleared header can never validate.
func txnCheck(l1, l2 TxnLeg, flags uint64) uint64 {
	sum := annCheck(l1.StructID, l1.Kind, l1.Arg)
	sum = annCheck(sum, l2.StructID, l2.Kind)
	return annCheck(sum, l2.Arg, flags)
}

// txnCommitMark derives the nonzero commit-point value for a transaction
// with announcement checksum sum: bound to the legs it commits, so a commit
// word that survived from an earlier transaction (a crash between the leg
// line's stores and its write-back, with the old line partially evicted)
// reads as uncommitted for the new record.
func txnCommitMark(sum uint64) uint64 { return annCheck(sum, 0, 1) }

// NumProcs reports how many process descriptors the heap was built with.
func (h *Heap) NumProcs() int { return len(h.procs) }

// Model reports the heap's persistency model.
func (h *Heap) Model() Model { return h.model }

// Tracked reports whether the heap maintains a persisted image.
func (h *Heap) Tracked() bool { return h.tracked }

// Used reports how many words have been allocated.
func (h *Heap) Used() uint64 { return h.next.Load() }

// Capacity reports the arena capacity in words.
func (h *Heap) Capacity() uint64 { return h.cap }

// allocChunk is the per-proc bump-allocation chunk size in words. Procs
// grab chunks from the shared bump pointer and carve objects locally, so
// allocation does not contend in the common case.
const allocChunk = 4096

// grabChunk advances the shared bump pointer.
func (h *Heap) grabChunk(words uint64) Addr {
	a := h.next.Add(words) - words
	if a+words > h.cap {
		panic(fmt.Sprintf("pmem: arena exhausted (cap %d words); configure a larger Config.Words", h.cap))
	}
	return Addr(a)
}

// ReadVolatile reads the volatile image directly (test/inspection helper;
// does not participate in crash injection).
func (h *Heap) ReadVolatile(a Addr) uint64 { return h.vol[a].Load() }

// ReadPersisted reads the persisted image (tracked mode only).
func (h *Heap) ReadPersisted(a Addr) uint64 {
	if !h.tracked {
		panic("pmem: ReadPersisted on untracked heap")
	}
	return h.per[a].Load()
}

// lineOf returns the first word of the cache line containing a.
func lineOf(a Addr) Addr { return a &^ (WordsPerLine - 1) }

// dirtyBit locates line l's bit in the dirty bitmap.
func dirtyBit(line Addr) (word int, mask uint64) {
	l := uint64(line) / WordsPerLine
	return int(l / 64), 1 << (l % 64)
}

// markDirty records that the line containing a may diverge from its
// persisted image. Must be called after the volatile store it covers (see
// the dirty field's invariant). The load-before-or keeps the common case —
// re-writing an already-dirty line — free of contended atomic RMWs.
func (h *Heap) markDirty(a Addr) {
	w, m := dirtyBit(lineOf(a))
	if d := &h.dirty[w]; d.Load()&m == 0 {
		d.Or(m)
	}
}

// persistLine copies one cache line from the volatile to the persisted
// image. Clean lines (volatile and persisted images already agree) are
// skipped outright. The per-word copy is not atomic across the line,
// mirroring real hardware where a line write-back races with subsequent
// cache updates; each persisted word is always *some* value the volatile
// word held at or after the write-back was issued. The dirty bit is cleared
// before the copy so a concurrent store either lands in the copy or
// re-dirties the line.
func (h *Heap) persistLine(line Addr) {
	w, m := dirtyBit(line)
	d := &h.dirty[w]
	if d.Load()&m == 0 {
		return
	}
	d.And(^m)
	h.copyLine(h.per, h.vol, line)
}

// copyLine copies one cache line from src to dst, clamped to the arena.
func (h *Heap) copyLine(dst, src []atomic.Uint64, line Addr) {
	end := line + WordsPerLine
	if end > Addr(h.cap) {
		end = Addr(h.cap)
	}
	for w := line; w < end; w++ {
		dst[w].Store(src[w].Load())
	}
}

// Crash initiates a system-wide crash: every Proc panics with a Crash value
// at its next pmem access. The harness must wait for all procs to unwind
// (e.g. via RunOp) and then call ResetAfterCrash before restarting them.
// Tracked mode only.
func (h *Heap) Crash() {
	if !h.tracked {
		panic("pmem: Crash on untracked heap")
	}
	h.crashing.Store(true)
}

// Crashing reports whether a crash is in progress.
func (h *Heap) Crashing() bool { return h.crashing.Load() }

// AccessCount returns the total number of pmem accesses performed so far in
// tracked mode, whether or not a crash is armed (used to schedule crashes at
// access granularity and to measure an operation's access span). Untracked
// heaps do not count: the counter is a shared atomic, and untracked heaps
// exist precisely so benchmarks skip that hot-path cost.
func (h *Heap) AccessCount() uint64 { return h.accessCtr.Load() }

// ScheduleCrashAt arms a crash that fires when the global access counter
// reaches n: the Proc whose access crosses the threshold initiates the
// system-wide crash and panics, guaranteeing the crash lands mid-operation.
// Tracked mode only.
func (h *Heap) ScheduleCrashAt(n uint64) {
	if !h.tracked {
		panic("pmem: ScheduleCrashAt on untracked heap")
	}
	if n == 0 {
		n = 1
	}
	h.crashAt.Store(n)
}

// DisarmCrash cancels a scheduled crash that has not fired yet.
func (h *Heap) DisarmCrash() { h.crashAt.Store(0) }

// ResetAfterCrash discards the volatile image: every allocated word reverts
// to its persisted value and the crash flag is cleared. Callers must
// guarantee no Proc is running.
//
// Only dirty lines — those whose volatile image diverged from the persisted
// image since their last write-back — are restored, so the cost is
// O(dirty lines), not O(used arena). TestResetAfterCrashDifferential pins
// the equivalence against a brute-force full-arena restore.
func (h *Heap) ResetAfterCrash() {
	if !h.tracked {
		panic("pmem: ResetAfterCrash on untracked heap")
	}
	for wi := range h.dirty {
		bitsw := h.dirty[wi].Load()
		if bitsw == 0 {
			continue
		}
		h.dirty[wi].Store(0)
		base := Addr(wi) * 64 * WordsPerLine
		for bitsw != 0 {
			line := base + Addr(bits.TrailingZeros64(bitsw))*WordsPerLine
			h.copyLine(h.vol, h.per, line)
			bitsw &= bitsw - 1
		}
	}
	h.finishReset()
}

// resetAfterCrashFull is the brute-force restore ResetAfterCrash replaced:
// every used word reverts to its persisted value regardless of dirty state.
// Kept as the differential-testing oracle.
func (h *Heap) resetAfterCrashFull() {
	if !h.tracked {
		panic("pmem: ResetAfterCrash on untracked heap")
	}
	n := h.next.Load()
	for w := uint64(0); w < n; w++ {
		h.vol[w].Store(h.per[w].Load())
	}
	for wi := range h.dirty {
		h.dirty[wi].Store(0)
	}
	h.finishReset()
}

// finishReset clears crash state once the volatile image is restored.
func (h *Heap) finishReset() {
	for _, p := range h.procs {
		p.crashed = false
		p.overlapPWB = false // batch windows do not survive a crash
	}
	h.epoch.Add(1)
	h.crashing.Store(false)
}

// DirtyLineCount reports how many cache lines currently diverge (or may
// diverge — spurious dirty bits are possible under races) from the persisted
// image. Tracked mode only; useful for tests and simulator metrics.
func (h *Heap) DirtyLineCount() int {
	n := 0
	for wi := range h.dirty {
		n += bits.OnesCount64(h.dirty[wi].Load())
	}
	return n
}

// Epoch counts completed crashes; useful for tests that must observe that a
// crash actually happened.
func (h *Heap) Epoch() uint64 { return h.epoch.Load() }
