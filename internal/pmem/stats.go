package pmem

// Stats counts the primitive and persistence instructions a Proc issued.
// The paper's Figures 1b/1c/5/6 plot Barriers (pbarrier = pwb+pfence,
// simulated by the authors as clflush+mfence) and Flushes (stand-alone pwb,
// i.e. clflush not part of a barrier) per operation.
type Stats struct {
	Loads  uint64
	Stores uint64
	CASes  uint64

	Flushes     uint64 // stand-alone PWB instructions
	Barriers    uint64 // PBarrier invocations (pwb+pfence pairs)
	LineFlushes uint64 // pwbs issued inside barriers (one per distinct line)
	Fences      uint64 // PFence instructions (incl. those inside barriers)
	Syncs       uint64 // PSync instructions

	Evictions  uint64 // simulated arbitrary cache-line evictions
	AllocWords uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.CASes += o.CASes
	s.Flushes += o.Flushes
	s.Barriers += o.Barriers
	s.LineFlushes += o.LineFlushes
	s.Fences += o.Fences
	s.Syncs += o.Syncs
	s.Evictions += o.Evictions
	s.AllocWords += o.AllocWords
}

// Sub returns s - o field-wise (for interval measurements).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Loads:       s.Loads - o.Loads,
		Stores:      s.Stores - o.Stores,
		CASes:       s.CASes - o.CASes,
		Flushes:     s.Flushes - o.Flushes,
		Barriers:    s.Barriers - o.Barriers,
		LineFlushes: s.LineFlushes - o.LineFlushes,
		Fences:      s.Fences - o.Fences,
		Syncs:       s.Syncs - o.Syncs,
		Evictions:   s.Evictions - o.Evictions,
		AllocWords:  s.AllocWords - o.AllocWords,
	}
}

// TotalStats sums the counters of every Proc in the heap.
func (h *Heap) TotalStats() Stats {
	var t Stats
	for _, p := range h.procs {
		t.Add(p.stats)
	}
	return t
}

// ResetAllStats zeroes every Proc's counters. Callers must guarantee no
// Proc is concurrently running.
func (h *Heap) ResetAllStats() {
	for _, p := range h.procs {
		p.stats = Stats{}
	}
}
