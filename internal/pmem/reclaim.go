package pmem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Reclaimer is an epoch-based memory reclaimer whose recovery-relevant
// state lives in the pmem heap layout, next to the announcement record of
// the runtime registry: a global epoch counter, one reclaimer line per
// process (pin word, retired-ring count, per-size-class free-list heads),
// one retired-node ring per process whose entries are checksum-guarded the
// same way announcements are, and a persistent slab directory from which
// the post-crash scan can enumerate every block the reclaimer ever carved.
//
// # Normal operation
//
// Blocks are carved from per-process slabs (large even-aligned regions
// grabbed from the shared bump pointer and recorded durably in the slab
// directory before any block from them is handed out), one slab per
// (process, size class). Alloc pops the process's free list for the block's
// class, falling back to the slab cursor. Retire appends a checksummed
// entry ⟨block, class, epoch, sum⟩ to the process's ring — one store batch
// plus a single pwb, no psync — and occasionally tries to advance the
// global epoch. An entry is freed (block zeroed and pushed on a free list)
// once the global epoch is two ahead of the entry's epoch: every process
// pinned when the block was unlinked has exited or re-entered since, so no
// reference survives. Epoch pins ride the ISB engine's operation entry
// (see isb.Engine), so epoch transitions add no stand-alone psync.
//
// # Crash recovery
//
// Free-list heads, ring counts, pins and the epoch are maintained with
// volatile stores only: after a crash they are untrustworthy (a head may
// revert to a persisted value pointing at a block that was since
// reallocated and is live). The post-crash scan — driven by
// Runtime.RecoverAll before any operation recovery runs — therefore
// rebuilds everything from scratch:
//
//  1. mark every block reachable from the structures' roots or referenced
//     by an announced in-flight operation's Info record (conservative:
//     anything recovery might still touch survives);
//  2. validate the retired rings' checksums, counting torn entries
//     (partially persisted retirements are rejected, exactly like torn
//     announcements), then clear the rings;
//  3. sweep: every unmarked block returns to a free list (zeroed), every
//     marked block becomes live again; stuck pins are released and the
//     epoch restarts.
//
// A retirement whose ring entry was lost therefore never loses the block
// (the block is unmarked and swept to a free list) and a retirement whose
// unlink did not persist never frees a reachable block (the block is
// reachable again, hence marked). The conservative cost: a block that was
// validly retired but is still referenced by an announced operation's Info
// record stays live forever — a bounded, per-crash leak.
//
// Until the scan has run after a crash, the reclaimer runs in a safe
// degraded mode: Alloc bypasses the (untrustworthy) free lists and carves
// fresh memory, and Retire drops retirements (counted in Stats.Dropped).
type Reclaimer struct {
	h *Heap

	epochA   Addr // global epoch word (line-aligned)
	procBase Addr // per-proc reclaimer lines
	ringBase Addr // per-proc retired rings, ringCap entries each
	dirBase  Addr // slab directory: word 0 = count, then one word per slab
	maxSlabs uint64

	// classes maps size-class index to block size in words (write-once
	// entries; lock-free readers, mu-serialized writers).
	classes  [maxClasses]atomic.Uint64
	nclasses atomic.Uint64
	mu       sync.Mutex // slab directory + class registration

	// slabs is the sorted (by base) Go-side slab index used for containment
	// lookups; copy-on-append so hot-path readers are lock-free and
	// allocation-free.
	slabs atomic.Pointer[[]*slab]

	procs []reclaimProc

	// scanEpoch is the heap crash-epoch the reclaimer state is valid for;
	// when it trails h.Epoch() a crash happened and the scan has not run
	// yet (degraded mode).
	scanEpoch atomic.Uint64

	// frozen suspends epoch advance and freeing (Retire still records).
	// Runtime.RecoverAll freezes around operation recovery: recovery runs
	// the processes sequentially, and an early process's re-invoked
	// operations must not free blocks a later process's still-unrecovered
	// Info record names.
	frozen atomic.Bool

	stats ReclaimStats
}

// reclaimProc is the Go-side per-process allocator state. Like the heap's
// bump pointer, it survives simulated crashes (it describes where fresh
// memory is, not what the structures contain).
type reclaimProc struct {
	ringStart uint64 // oldest live ring entry index
	cur       [maxClasses]Addr
	curLeft   [maxClasses]uint64
}

// slab is one carved region serving blocks of a single size class. state
// holds one byte per block: 0 = never allocated (still under the slab
// cursor), else a blockState (possibly with the scan's mark bit).
type slab struct {
	base  Addr
	class int
	state []byte
}

// Block lifecycle states (Go-side; rebuilt from reachability by the scan).
const (
	bsVirgin  byte = 0
	bsLive    byte = 1
	bsRetired byte = 2
	bsFree    byte = 3

	bsMark byte = 0x80 // scan mark bit, OR-ed onto the state
)

// Layout constants.
const (
	maxClasses = 4
	slabWords  = 2048
	ringCap    = 128 // retired-ring entries per process
	entryWords = 4   // ⟨block, class, epoch, sum⟩; never straddles a line

	// Per-proc reclaimer line layout.
	rpPin       = 0 // 0 = unpinned, else the observed epoch
	rpRingCount = 1
	rpFreeBase  = 2 // free-list heads, one word per class

	// firstEpoch is the starting (and post-scan) global epoch; nonzero so
	// a pin word of 0 unambiguously means "unpinned".
	firstEpoch = 2

	// ringFreeThreshold triggers an advance/free pass from Retire.
	ringFreeThreshold = 64
)

// ReclaimStats counts reclaimer events (monotone within a run).
type ReclaimStats struct {
	Carved   uint64 // blocks carved fresh from a slab
	Reused   uint64 // blocks served from a free list
	Retired  uint64 // retirements recorded in a ring
	Freed    uint64 // blocks moved ring → free list after grace
	Dropped  uint64 // retirements dropped (ring overflow or degraded mode)
	Advances uint64 // successful global epoch advances
}

// ScanReport summarises one post-crash scan.
type ScanReport struct {
	Marked       uint64 // blocks kept live (reachable or announced-operand)
	Swept        uint64 // blocks returned to free lists
	ValidRetires uint64 // ring entries whose checksum validated
	TornRetires  uint64 // ring entries rejected by their checksum
	StuckPins    int    // processes found pinned at crash time
}

// NewReclaimer reserves the reclaimer's pmem layout on h: the global epoch
// line, one line + one retired ring per process, and the slab directory.
func NewReclaimer(h *Heap) *Reclaimer {
	p0 := h.Proc(0)
	procs := uint64(h.NumProcs())
	r := &Reclaimer{h: h, procs: make([]reclaimProc, procs)}
	r.maxSlabs = h.Capacity()/slabWords + 1

	alignedLines := func(lines uint64) Addr {
		raw := p0.Alloc(lines*WordsPerLine + WordsPerLine)
		return (raw + WordsPerLine - 1) &^ (WordsPerLine - 1)
	}
	r.epochA = alignedLines(1)
	r.procBase = alignedLines(procs)
	r.ringBase = alignedLines(procs * ringCap * entryWords / WordsPerLine)
	r.dirBase = p0.Alloc(1 + r.maxSlabs)

	p0.Store(r.epochA, firstEpoch)
	p0.PWB(r.epochA)
	p0.PSync()

	empty := make([]*slab, 0)
	r.slabs.Store(&empty)
	r.scanEpoch.Store(h.Epoch())
	return r
}

func (r *Reclaimer) procLine(id int) Addr { return r.procBase + Addr(id)*WordsPerLine }
func (r *Reclaimer) ringSlot(id int, i uint64) Addr {
	return r.ringBase + Addr(uint64(id)*ringCap+i)*entryWords
}

// synced reports whether the reclaimer's volatile state is trustworthy: no
// crash has happened since construction or the last completed scan.
func (r *Reclaimer) synced() bool { return r.scanEpoch.Load() == r.h.Epoch() }

// classFor returns the size-class index for a block of words words,
// registering a new class on first sight (at most maxClasses distinct
// sizes; the repository needs two — 4-word nodes and 32-word Info records).
func (r *Reclaimer) classFor(words uint64) int {
	words = (words + 1) &^ 1
	n := int(r.nclasses.Load())
	for c := 0; c < n; c++ {
		if r.classes[c].Load() == words {
			return c
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n = int(r.nclasses.Load())
	for c := 0; c < n; c++ {
		if r.classes[c].Load() == words {
			return c
		}
	}
	if n == maxClasses {
		panic(fmt.Sprintf("pmem: reclaimer size-class table full (size %d)", words))
	}
	if slabWords%words != 0 {
		panic(fmt.Sprintf("pmem: reclaimer block size %d does not divide slab size %d", words, slabWords))
	}
	r.classes[n].Store(words)
	r.nclasses.Store(uint64(n + 1))
	return n
}

// newSlab carves a fresh slab for class and durably appends it to the slab
// directory before any block from it can be handed out, so the post-crash
// scan can always enumerate it. Directory entry encoding: base<<3 | class.
func (r *Reclaimer) newSlab(p *Proc, class int) *slab {
	r.mu.Lock()
	defer r.mu.Unlock()
	base := r.h.grabChunk(slabWords)
	idx := *r.slabs.Load()
	if uint64(len(idx)) >= r.maxSlabs {
		panic("pmem: reclaimer slab directory full")
	}
	// Durable before use: entry first, then the count that publishes it.
	// A crash between the two pwbs loses at most this one (still unused)
	// slab to the arena.
	p.Store(r.dirBase+1+Addr(len(idx)), uint64(base)<<3|uint64(class))
	p.PWB(r.dirBase + 1 + Addr(len(idx)))
	p.Store(r.dirBase, uint64(len(idx))+1)
	p.PWB(r.dirBase)
	s := &slab{base: base, class: class, state: make([]byte, slabWords/r.classes[class].Load())}
	next := make([]*slab, len(idx)+1)
	copy(next, idx) // bump bases are monotone, so append keeps the index sorted
	next[len(idx)] = s
	r.slabs.Store(&next)
	return s
}

// lookup resolves a to its slab, block start and block index; ok is false
// for addresses outside every slab.
func (r *Reclaimer) lookup(a Addr) (s *slab, start Addr, bi uint64, ok bool) {
	idx := *r.slabs.Load()
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx[mid].base+slabWords <= a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(idx) || a < idx[lo].base {
		return nil, 0, 0, false
	}
	s = idx[lo]
	size := r.classes[s.class].Load()
	bi = uint64(a-s.base) / size
	return s, s.base + Addr(bi*size), bi, true
}

// BlockOf resolves an interior pointer to its containing block.
func (r *Reclaimer) BlockOf(a Addr) (Addr, uint64, bool) {
	s, start, _, ok := r.lookup(a)
	if !ok {
		return 0, 0, false
	}
	return start, r.classes[s.class].Load(), true
}

// Alloc serves a block of at least words words: from the calling process's
// free list when the reclaimer is synced, else (or when the list is empty)
// from the process's slab cursor.
func (r *Reclaimer) Alloc(p *Proc, words uint64) Addr {
	class := r.classFor(words)
	size := r.classes[class].Load()
	if r.synced() {
		head := r.procLine(p.ID()) + rpFreeBase + Addr(class)
		if a := Addr(p.Load(head)); a != Null {
			p.Store(head, p.Load(a)) // pop; block word 0 is the free link
			p.Store(a, 0)            // restore the zeroed-block contract
			s, _, bi, _ := r.lookup(a)
			s.state[bi] = bsLive
			atomic.AddUint64(&r.stats.Reused, 1)
			return a
		}
	}
	ps := &r.procs[p.ID()]
	if ps.curLeft[class] < size || ps.cur[class] == 0 {
		s := r.newSlab(p, class)
		ps.cur[class] = s.base
		ps.curLeft[class] = slabWords
	}
	a := ps.cur[class]
	ps.cur[class] += Addr(size)
	ps.curLeft[class] -= size
	s, _, bi, _ := r.lookup(a)
	s.state[bi] = bsLive
	atomic.AddUint64(&r.stats.Carved, 1)
	return a
}

// Free returns a never-published block straight to the calling process's
// free list (no grace period: no other process can hold a reference).
func (r *Reclaimer) Free(p *Proc, a Addr) {
	if !r.synced() {
		return
	}
	s, start, bi, ok := r.lookup(a)
	if !ok || s.state[bi] != bsLive {
		return
	}
	r.pushFree(p, p.ID(), s, start, bi)
}

// pushFree zeroes the block and links it onto proc id's free list for its
// class. The link lives in block word 0; heads and links are volatile-only
// (the post-crash scan rebuilds them).
func (r *Reclaimer) pushFree(p *Proc, id int, s *slab, start Addr, bi uint64) {
	size := r.classes[s.class].Load()
	for w := Addr(1); w < Addr(size); w++ {
		p.Store(start+w, 0)
	}
	head := r.procLine(id) + rpFreeBase + Addr(s.class)
	p.Store(start, p.Load(head))
	p.Store(head, uint64(start))
	s.state[bi] = bsFree
}

// Retire records that the block containing a has been unlinked: a
// checksummed ⟨block, class, epoch, sum⟩ entry is appended to the calling
// process's ring and persisted with a single pwb (no psync — a torn entry
// is detected by its checksum, exactly like a torn announcement). Already
// retired, freed or unknown blocks are ignored, which makes the
// recovery-path retire calls idempotent.
func (r *Reclaimer) Retire(p *Proc, a Addr) {
	if !r.synced() {
		atomic.AddUint64(&r.stats.Dropped, 1)
		return
	}
	s, start, bi, ok := r.lookup(a)
	if !ok || s.state[bi] != bsLive {
		return
	}
	id := p.ID()
	line := r.procLine(id)
	count := p.Load(line + rpRingCount)
	if count >= ringCap {
		r.advanceAndFree(p)
		count = p.Load(line + rpRingCount)
		if count >= ringCap {
			// Ring overflow (e.g. a process crashed while pinned, blocking
			// the epoch): drop the retirement. The block stays unreachable
			// and is re-homed by the next post-crash scan.
			s.state[bi] = bsRetired
			atomic.AddUint64(&r.stats.Dropped, 1)
			return
		}
	}
	s.state[bi] = bsRetired
	epoch := p.Load(r.epochA)
	slot := r.ringSlot(id, (r.procs[id].ringStart+count)%ringCap)
	p.Store(slot+0, uint64(start))
	p.Store(slot+1, uint64(s.class))
	p.Store(slot+2, epoch)
	p.Store(slot+3, annCheck(uint64(start), uint64(s.class), epoch))
	p.PWB(slot)
	p.Store(line+rpRingCount, count+1)
	atomic.AddUint64(&r.stats.Retired, 1)
	if count+1 >= ringFreeThreshold {
		r.advanceAndFree(p)
	}
}

// Enter pins the calling process in the current epoch (refreshing any
// existing pin). The store is volatile: the pin only gates the epoch
// within a run, and the post-crash scan releases stuck pins.
func (r *Reclaimer) Enter(p *Proc) {
	p.Store(r.procLine(p.ID())+rpPin, p.Load(r.epochA))
}

// Exit releases the calling process's pin.
func (r *Reclaimer) Exit(p *Proc) {
	p.Store(r.procLine(p.ID())+rpPin, 0)
}

// advanceAndFree tries to advance the global epoch (allowed once every
// pinned process has observed the current one) and then frees the prefix
// of the calling process's ring whose entries are two epochs old: every
// pin taken before those blocks were unlinked has been refreshed or
// released since, so no live reference remains.
func (r *Reclaimer) advanceAndFree(p *Proc) {
	if r.frozen.Load() {
		return
	}
	epoch := p.Load(r.epochA)
	canAdvance := true
	for q := 0; q < len(r.procs); q++ {
		if pin := p.Load(r.procLine(q) + rpPin); pin != 0 && pin != epoch {
			canAdvance = false
			break
		}
	}
	if canAdvance && p.CASBool(r.epochA, epoch, epoch+1) {
		atomic.AddUint64(&r.stats.Advances, 1)
	}
	epoch = p.Load(r.epochA)

	id := p.ID()
	line := r.procLine(id)
	ps := &r.procs[id]
	for {
		count := p.Load(line + rpRingCount)
		if count == 0 {
			return
		}
		slot := r.ringSlot(id, ps.ringStart)
		start := Addr(p.Load(slot + 0))
		class := p.Load(slot + 1)
		retEpoch := p.Load(slot + 2)
		if p.Load(slot+3) != annCheck(uint64(start), class, retEpoch) {
			return // defensive: never free through an invalid entry
		}
		if retEpoch+2 > epoch {
			return // grace period not over for this (and later) entries
		}
		s, blkStart, bi, ok := r.lookup(start)
		if ok && s.state[bi] == bsRetired && blkStart == start {
			r.pushFree(p, id, s, start, bi)
			atomic.AddUint64(&r.stats.Freed, 1)
		}
		p.Store(slot+3, 0) // invalidate the consumed entry
		ps.ringStart = (ps.ringStart + 1) % ringCap
		p.Store(line+rpRingCount, count-1)
	}
}

// Freeze suspends epoch advance and freeing until Thaw; Retire keeps
// recording (a full ring drops retirements, which is safe). Used around
// sequential post-crash operation recovery.
func (r *Reclaimer) Freeze() { r.frozen.Store(true) }

// Thaw resumes epoch advance and freeing.
func (r *Reclaimer) Thaw() { r.frozen.Store(false) }

// Stats returns a snapshot of the reclaimer's event counters.
func (r *Reclaimer) Stats() ReclaimStats {
	return ReclaimStats{
		Carved:   atomic.LoadUint64(&r.stats.Carved),
		Reused:   atomic.LoadUint64(&r.stats.Reused),
		Retired:  atomic.LoadUint64(&r.stats.Retired),
		Freed:    atomic.LoadUint64(&r.stats.Freed),
		Dropped:  atomic.LoadUint64(&r.stats.Dropped),
		Advances: atomic.LoadUint64(&r.stats.Advances),
	}
}

// LiveBlocks counts blocks currently live or awaiting grace (excluding
// free-listed and virgin blocks): the "live_nodes" quantity the bench
// report tracks.
func (r *Reclaimer) LiveBlocks() uint64 {
	var n uint64
	for _, s := range *r.slabs.Load() {
		for _, st := range s.state {
			if st&^bsMark == bsLive || st&^bsMark == bsRetired {
				n++
			}
		}
	}
	return n
}

// Scan is the post-crash conservative scan. mark must invoke its callback
// for (at least) every address reachable from a structure root and every
// address an announced in-flight operation's Info record mentions; the
// callback tolerates arbitrary values (non-block addresses are ignored).
// Scan rebuilds all reclaimer state from the marks — rings, free lists,
// pins and the epoch — and persists the rebuilt lines, so it may itself
// crash at any point and simply be re-run. Call with no process running.
func (r *Reclaimer) Scan(p *Proc, mark func(mark func(Addr))) ScanReport {
	var rep ScanReport
	idx := *r.slabs.Load()

	// Phase 0: clear stale mark bits (a previous scan may have crashed).
	for _, s := range idx {
		for i := range s.state {
			s.state[i] &^= bsMark
		}
	}

	// Phase 1: conservative mark.
	mark(func(a Addr) {
		s, _, bi, ok := r.lookup(a)
		if ok && s.state[bi] != bsVirgin {
			s.state[bi] |= bsMark
		}
	})

	// Phase 2: audit and clear the retired rings. The entries themselves
	// are not trusted for freeing decisions — reachability decides — but
	// their checksums distinguish recorded retirements from torn ones.
	for id := range r.procs {
		for i := uint64(0); i < ringCap; i++ {
			slot := r.ringSlot(id, i)
			sum := p.Load(slot + 3)
			if sum == 0 {
				continue
			}
			if sum == annCheck(p.Load(slot+0), p.Load(slot+1), p.Load(slot+2)) {
				rep.ValidRetires++
			} else {
				rep.TornRetires++
			}
			p.Store(slot+3, 0)
		}
		line := r.procLine(id)
		if p.Load(line+rpPin) != 0 {
			rep.StuckPins++
		}
		p.Store(line+rpPin, 0)
		p.Store(line+rpRingCount, 0)
		r.procs[id].ringStart = 0
		for c := 0; c < maxClasses; c++ {
			p.Store(line+rpFreeBase+Addr(c), 0)
		}
	}

	// Phase 3: sweep. Marked blocks are live again; everything else the
	// reclaimer ever handed out returns to a free list, zeroed. Freed
	// blocks are spread round-robin over the processes' lists.
	home := 0
	for _, s := range idx {
		for bi := range s.state {
			st := s.state[bi]
			if st == bsVirgin {
				continue
			}
			if st&bsMark != 0 {
				s.state[bi] = bsLive
				rep.Marked++
				continue
			}
			size := r.classes[s.class].Load()
			s.state[bi] = bsLive // pushFree requires a consistent pre-state
			r.pushFree(p, home, s, s.base+Addr(uint64(bi)*size), uint64(bi))
			home = (home + 1) % len(r.procs)
			rep.Swept++
		}
	}

	// Phase 4: restart the epoch and persist the rebuilt control lines.
	p.Store(r.epochA, firstEpoch)
	p.PWB(r.epochA)
	for id := range r.procs {
		p.PWB(r.procLine(id))
	}
	p.PSync()
	r.scanEpoch.Store(r.h.Epoch())
	return rep
}
