package pmem

import (
	"sync"
	"time"
)

// Latency simulation. The paper simulates pwb with clflush and psync with
// mfence on x86; here we burn a calibrated number of CPU iterations instead,
// so that (a) relative algorithm throughput is governed by how many
// persistence instructions each algorithm issues — the quantity the paper's
// analysis attributes performance differences to — and (b) the simulated
// costs do not depend on timer resolution (time.Now is far too coarse for
// ~100ns events to be measured one at a time).

var (
	calibrateOnce  sync.Once
	itersPerMicro  float64 // spin iterations per microsecond, measured
	defaultPerMico = 300.0 // fallback if calibration is degenerate
)

// spinIters converts a duration into calibrated spin iterations.
func spinIters(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	calibrateOnce.Do(calibrate)
	it := int64(float64(d.Nanoseconds()) * itersPerMicro / 1000.0)
	if it < 1 {
		it = 1
	}
	return it
}

// calibrate measures how many spin iterations fit in a microsecond.
func calibrate() {
	const probe = 2_000_000
	var sink uint64
	start := time.Now()
	for i := 0; i < probe; i++ {
		sink += uint64(i) ^ (sink << 1)
	}
	elapsed := time.Since(start)
	spinGuard = sink
	if elapsed <= 0 {
		itersPerMicro = defaultPerMico
		return
	}
	itersPerMicro = probe / (float64(elapsed.Nanoseconds()) / 1000.0)
	if itersPerMicro < 1 {
		itersPerMicro = defaultPerMico
	}
}

// spinGuard keeps the calibration loop (and per-proc spins via spinSink)
// observable so the compiler cannot delete them.
var spinGuard uint64

// spin burns approximately iters calibrated iterations.
func (p *Proc) spin(iters int64) {
	s := p.spinSink
	for i := int64(0); i < iters; i++ {
		s += uint64(i) ^ (s << 1)
	}
	p.spinSink = s
}

// DefaultPWBLatency and DefaultPSyncLatency approximate the cost class of
// clflush and mfence on the paper's hardware. Benchmarks use these unless
// overridden; tests use zero.
const (
	DefaultPWBLatency   = 90 * time.Nanosecond
	DefaultPSyncLatency = 100 * time.Nanosecond
)
