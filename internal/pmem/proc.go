package pmem

import (
	"fmt"
	"slices"
)

// Proc is a process descriptor: the unit of crash-recovery in the paper's
// model. All primitive operations on the heap go through a Proc, which lets
// the simulator (a) inject crashes at any shared-memory access, (b) track
// the per-process pending write-back set required by epoch persistency, and
// (c) attribute persistence-instruction counts to the process that issued
// them. A Proc must be used by one goroutine at a time.
type Proc struct {
	h  *Heap
	id int

	stats   Stats
	rng     uint64
	crashed bool // this proc already observed the current crash

	// Individual-failure support (the paper's footnote 1: in the private
	// cache model processes may also fail individually). Proc-local, so no
	// atomics: arm from the same goroutine before running the operation.
	accesses    uint64
	selfCrashAt uint64 // 0 = disarmed

	// local bump-allocation chunk
	chunk     Addr
	chunkLeft uint64

	// lineScratch is the reusable line-set backing barrier dedup (see
	// flushLines); its capacity is retained across barriers.
	lineScratch []Addr

	// overlapPWB, when set, models clwb-style overlapped write-backs inside
	// a batched-admission window: PWB still applies its line write-back
	// synchronously (crash semantics and counters are unchanged) but skips
	// the simulated clflush latency — the wait is paid once, at the window's
	// closing psync. Cleared on crash reset (see Heap.finishReset).
	overlapPWB bool

	spinSink uint64 // defeats dead-code elimination of latency spins
}

// ID returns the process id (0-based).
func (p *Proc) ID() int { return p.id }

// Heap returns the heap this Proc belongs to.
func (p *Proc) Heap() *Heap { return p.h }

// Crash is the panic value used to simulate the loss of a process's volatile
// state. Harness code recovers it with RunOp.
type Crash struct{ ProcID int }

func (c Crash) Error() string { return "pmem: simulated crash" }

// checkCrash counts this access (tracked mode counts unconditionally; see
// Heap.AccessCount), panics with Crash if a system-wide crash is in
// progress, and fires a scheduled (system-wide or individual) crash when
// this access crosses the armed threshold.
func (p *Proc) checkCrash() {
	if !p.h.tracked {
		return
	}
	if p.selfCrashAt != 0 {
		p.accesses++
		if p.accesses >= p.selfCrashAt {
			p.selfCrashAt = 0
			panic(Crash{ProcID: p.id})
		}
	}
	if p.h.crashing.Load() {
		if !p.crashed {
			p.crashed = true
			panic(Crash{ProcID: p.id})
		}
		return
	}
	n := p.h.accessCtr.Add(1)
	if at := p.h.crashAt.Load(); at != 0 && n >= at && p.h.crashAt.CompareAndSwap(at, 0) {
		p.h.crashing.Store(true)
		p.crashed = true
		panic(Crash{ProcID: p.id})
	}
}

// Load atomically reads the volatile image.
func (p *Proc) Load(a Addr) uint64 {
	p.checkCrash()
	p.stats.Loads++
	return p.h.vol[a].Load()
}

// Store atomically writes the volatile image. In the private cache model
// (or under simulated eviction) the write also reaches the persisted image.
func (p *Proc) Store(a Addr, v uint64) {
	p.checkCrash()
	if a == Null {
		panic("pmem: store to Null")
	}
	p.stats.Stores++
	p.h.vol[a].Store(v)
	if p.h.tracked {
		p.h.markDirty(a)
	}
	p.afterWrite(a)
}

// CAS performs Compare&Swap on the volatile image and, following the paper's
// convention, returns the value it read: the CAS succeeded iff the returned
// value equals old.
func (p *Proc) CAS(a Addr, old, new uint64) uint64 {
	p.checkCrash()
	if a == Null {
		panic("pmem: CAS on Null")
	}
	p.stats.CASes++
	for {
		cur := p.h.vol[a].Load()
		if cur != old {
			return cur
		}
		if p.h.vol[a].CompareAndSwap(old, new) {
			if p.h.tracked {
				p.h.markDirty(a)
			}
			p.afterWrite(a)
			return old
		}
	}
}

// CASBool is CAS with a boolean success result, for call sites that do not
// need the read value.
func (p *Proc) CASBool(a Addr, old, new uint64) bool {
	return p.CAS(a, old, new) == old
}

// afterWrite applies private-cache persistence and simulated eviction.
func (p *Proc) afterWrite(a Addr) {
	if !p.h.tracked {
		return
	}
	if p.h.model == PrivateCache {
		p.h.persistLine(lineOf(a))
		return
	}
	if e := p.h.evictEvery; e > 0 {
		if p.nextRand()%e == 0 {
			p.h.persistLine(lineOf(a))
			p.stats.Evictions++
		}
	}
}

// PWB issues a persistent write-back for the cache line containing a.
// Counted as a stand-alone flush unless issued via PBarrier.
//
// The write-back is applied synchronously: the paper's evaluation simulates
// pwb with x86 clflush, which writes the line back before retiring, and the
// ISB protocol's cross-crash ABA argument (info-field values never recur,
// even through a crash) relies on tag CASes being durable right after their
// pwb. PSync retains its ordering/accounting role (the authors' mfence).
func (p *Proc) PWB(a Addr) {
	p.checkCrash()
	if p.h.model == PrivateCache {
		return // shared variables are always persistent
	}
	p.stats.Flushes++
	p.pwb(a)
}

// pwb is the uncounted core of PWB, shared with PBarrier.
func (p *Proc) pwb(a Addr) {
	if p.h.pwbSpin > 0 && !p.overlapPWB {
		p.spin(p.h.pwbSpin)
	}
	if p.h.tracked {
		p.h.persistLine(lineOf(a))
	}
}

// PFence orders preceding PWBs before subsequent PWBs. Under TSO (which the
// paper assumes, and which Go's seq-cst atomics exceed) it has no simulated
// semantic effect beyond its accounting.
func (p *Proc) PFence() {
	p.checkCrash()
	if p.h.model == PrivateCache {
		return
	}
	p.stats.Fences++
}

// PSync waits until all previous PWBs by this process complete their write
// back. Since PWB applies synchronously (see its doc), PSync contributes
// ordering cost and accounting only.
func (p *Proc) PSync() {
	p.checkCrash()
	if p.h.model == PrivateCache {
		return
	}
	p.stats.Syncs++
	if p.h.psyncSpin > 0 {
		p.spin(p.h.psyncSpin)
	}
}

// flushLines write-backs each distinct cache line covering addrs exactly
// once, in ascending line order. Dedup is exact for any phase size — no
// fixed window beyond which duplicates would be re-flushed — and reuses the
// per-proc scratch buffer, so steady-state barriers perform zero Go
// allocations (pinned by TestBarrierZeroAllocs).
func (p *Proc) flushLines(addrs []Addr) {
	ls := p.lineScratch[:0]
	for _, a := range addrs {
		ls = append(ls, lineOf(a))
	}
	slices.Sort(ls)
	ls = slices.Compact(ls)
	p.lineScratch = ls
	for _, line := range ls {
		p.stats.LineFlushes++
		p.pwb(line)
	}
}

// PBarrier issues PWBs for the cache lines covering the given addresses
// followed by a PFence (the paper's pbarrier). It is counted once as a
// barrier, not as stand-alone flushes; each distinct line is flushed
// exactly once.
func (p *Proc) PBarrier(addrs ...Addr) {
	p.PBarrierAddrs(addrs)
}

// PBarrierAddrs issues one barrier (single pfence, counted once) covering
// the cache lines of all given addresses, flushing each distinct line
// exactly once however many there are. This is the hand-tuned batching the
// paper describes: "all pwb instructions can be issued at the end of the
// phase, before the psync; a single pwb flushes all fields fitting in a
// cache line."
func (p *Proc) PBarrierAddrs(addrs []Addr) {
	p.checkCrash()
	if p.h.model == PrivateCache {
		return
	}
	p.stats.Barriers++
	p.flushLines(addrs)
	p.stats.Fences++
}

// PBarrierRange issues a barrier covering [a, a+words).
func (p *Proc) PBarrierRange(a Addr, words uint64) {
	p.checkCrash()
	if p.h.model == PrivateCache {
		return
	}
	p.stats.Barriers++
	end := a + Addr(words)
	for line := lineOf(a); line < end; line += WordsPerLine {
		p.stats.LineFlushes++
		p.pwb(line)
	}
	p.stats.Fences++
}

// Alloc carves words fresh zeroed words out of the arena, even-aligned so
// bit 0 of the address is free for tags/marks. Memory is never reused
// within a run (the paper's algorithms assume GC; see DESIGN.md).
func (p *Proc) Alloc(words uint64) Addr {
	p.checkCrash()
	words = (words + 1) &^ 1 // keep the local bump pointer even
	if words > p.chunkLeft {
		req := uint64(allocChunk)
		if words > req {
			req = words
		}
		p.chunk = p.h.grabChunk(req)
		p.chunkLeft = req
	}
	a := p.chunk
	p.chunk += Addr(words)
	p.chunkLeft -= words
	p.stats.AllocWords += words
	return a
}

// Announce durably records that this process is about to execute operation
// (kind, arg) on the structure with registry ID structID (nonzero): the
// paper's announcement discipline, generalized across structures. It writes
// the process's announcement line — reserved in the heap layout — and issues
// a single pwb; the caller's next psync (in practice the engine's begin
// barrier) orders it, so announcing costs no stand-alone sync. The record
// stays in place for the whole operation and is only cleared by
// ClearAnnounce at the next operation's system-side Begin step, which is
// what lets registry-routed recovery find in-flight work after a crash.
func (p *Proc) Announce(structID, kind, arg uint64) {
	if structID == 0 {
		panic("pmem: Announce with structID 0")
	}
	a := p.h.annAddr(p.id)
	p.Store(a+annStruct, structID)
	p.Store(a+annKind, kind)
	p.Store(a+annArg, arg)
	p.Store(a+annSum, annCheck(structID, kind, arg))
	p.Store(a+annTxn, 0) // shape exclusion: never a single op AND a txn
	p.PWB(a)
}

// ClearAnnounce durably empties this process's announcement record. It must
// become durable before any recovery register of the previous operation is
// reset (CP_q := 0): once CP says "nothing in flight", a stale announcement
// would make registry-routed recovery re-invoke — and therefore duplicate —
// the previous, completed operation. The simulator's pwb writes back
// synchronously, so issuing the clear's pwb before touching CP_q suffices.
func (p *Proc) ClearAnnounce() {
	a := p.h.annAddr(p.id)
	p.Store(a+annStruct, 0)
	p.Store(a+abCount, 0)
	p.Store(a+annTxn, 0)
	p.PWB(a)
}

// SetPWBOverlap switches clwb-style overlapped write-backs on or off for
// this process (see the overlapPWB field). The engines enable it for the
// duration of a batched-admission window and disable it at the window's
// closing psync; it never changes crash-visible state or instruction counts,
// only the simulated latency attribution.
func (p *Proc) SetPWBOverlap(on bool) { p.overlapPWB = on }

// AnnounceBatch durably records that this process is about to execute a
// batch of n operations (1 ≤ n ≤ MaxBatch) on the structure with registry ID
// structID (nonzero), all under the caller's next single psync. op reports
// the i-th operation's kind and argument.
//
// The record comprises the header (structID, count, cursor := 0, checksum
// over the immutable part) and n (kind, arg) op slots; result slots are NOT
// cleared here — a result slot only means something for indexes below the
// cursor, and the cursor writes that move it are ordered after the covered
// result slot's write-back (see SetBatchResult/AdvanceBatchCursor). The
// single-op announcement words are cleared so the record cannot be read as
// both shapes at once; the caller must have issued ClearAnnounce earlier in
// the same begin sequence (before resetting any recovery register), exactly
// as with Announce.
func (p *Proc) AnnounceBatch(structID uint64, n int, op func(i int) (kind, arg uint64)) {
	if structID == 0 {
		panic("pmem: AnnounceBatch with structID 0")
	}
	if n < 1 || n > MaxBatch {
		panic(fmt.Sprintf("pmem: AnnounceBatch with %d ops (want 1..%d)", n, MaxBatch))
	}
	a := p.h.annAddr(p.id)
	for i := 0; i < n; i++ {
		k, v := op(i)
		p.Store(a+abSlots+Addr(2*i), k)
		p.Store(a+abSlots+Addr(2*i)+1, v)
	}
	p.Store(a+annStruct, structID)
	p.Store(a+annKind, 0)
	p.Store(a+annArg, 0)
	p.Store(a+annSum, 0)
	p.Store(a+annTxn, 0) // shape exclusion: never a batch AND a txn
	p.Store(a+abCursor, 0)
	p.Store(a+abCount, uint64(n))
	p.Store(a+abSum, batchCheck(structID, uint64(n), op))
	// One pwb per touched line: the header and the op-slot lines. A crash
	// with only some of these lines persisted leaves the checksum invalid,
	// so a torn batch announcement reads as "no batch" (provably no effect).
	end := a + abSlots + Addr(2*n)
	for line := a; line < end; line += WordsPerLine {
		p.PWB(line)
	}
}

// SetBatchResult durably records operation i's response in the batch
// announcement's result slot. resp must be nonzero (0 is the engine's ⊥,
// the "no durable result" sentinel). The write-back is synchronous, so once
// AdvanceBatchCursor(i+1) persists, the covering result is already durable —
// the invariant batch recovery's completed-prefix reads rely on.
func (p *Proc) SetBatchResult(i int, resp uint64) {
	if resp == 0 {
		panic("pmem: SetBatchResult with zero response")
	}
	a := p.h.annAddr(p.id) + abResults + Addr(i)
	p.Store(a, resp)
	p.PWB(a)
}

// AdvanceBatchCursor durably moves the completed-prefix cursor to i: the
// batch's operations [0, i) now have durable results. Call only after
// SetBatchResult(i-1, …) returned.
func (p *Proc) AdvanceBatchCursor(i int) {
	a := p.h.annAddr(p.id)
	p.Store(a+abCursor, uint64(i))
	p.PWB(a)
}

// BatchAnnouncement reads this process's batch announcement record,
// validating the checksum over its immutable part. ok is false if no batch
// is announced (or the record was only partially persisted when the crash
// hit — the whole batch then provably performed no tracked writes). cursor
// is the durable completed prefix: ops [0, cursor) have durable results
// readable via BatchResult, op cursor is the (at most one) in-flight
// operation, and ops (cursor, n) provably never started.
func (p *Proc) BatchAnnouncement() (structID uint64, n, cursor int, ok bool) {
	a := p.h.annAddr(p.id)
	structID = p.Load(a + annStruct)
	cnt := p.Load(a + abCount)
	if structID == 0 || cnt == 0 || cnt > MaxBatch {
		return 0, 0, 0, false
	}
	if p.Load(a+abSum) != batchCheck(structID, cnt, func(i int) (uint64, uint64) {
		return p.Load(a + abSlots + Addr(2*i)), p.Load(a + abSlots + Addr(2*i) + 1)
	}) {
		return 0, 0, 0, false
	}
	cur := p.Load(a + abCursor)
	if cur >= cnt {
		// The cursor never reaches the count (the final operation's result
		// lives in the engine's recovery record, not a result slot); clamp a
		// torn value so callers can trust cursor < n.
		cur = cnt - 1
	}
	return structID, int(cnt), int(cur), true
}

// BatchOp reads the i-th op slot of the batch announcement.
func (p *Proc) BatchOp(i int) (kind, arg uint64) {
	a := p.h.annAddr(p.id)
	return p.Load(a + abSlots + Addr(2*i)), p.Load(a + abSlots + Addr(2*i) + 1)
}

// BatchResult reads the i-th result slot (0 = no durable result).
func (p *Proc) BatchResult(i int) uint64 {
	return p.Load(p.h.annAddr(p.id) + abResults + Addr(i))
}

// TxnLeg is one leg of a two-structure transaction announcement: which
// structure (registry ID), which operation kind, and its argument.
type TxnLeg struct {
	StructID uint64
	Kind     uint64
	Arg      uint64
}

// AnnounceTxn durably records that this process is about to execute a
// two-leg transaction — leg 1 on one structure, then a durable commit
// point, then leg 2 — all admitted under the caller's next single psync.
// flags carries transaction options (see internal/txn; e.g. "leg 2's
// argument derives from leg 1's response").
//
// The write order is load-bearing (each pwb is synchronous): first the leg
// line (both legs, commit point := 0, flags) and the zeroed result slots
// persist, THEN the header's annTxn checksum — the word that makes the
// record valid. A crash anywhere inside AnnounceTxn leaves either the old
// announcement, nothing, or a checksum-invalid torn record: in every case
// the transaction provably performed no tracked writes and is simply
// re-submitted. The caller must have issued ClearAnnounce earlier in the
// same begin sequence (before resetting any recovery register), exactly as
// with Announce; zeroing the commit point and result slots before validity
// is what lets recovery trust "commit = 0 means leg 2 never started" and
// "result slot ≠ 0 means this transaction wrote it".
func (p *Proc) AnnounceTxn(leg1, leg2 TxnLeg, flags uint64) {
	if leg1.StructID == 0 || leg2.StructID == 0 {
		panic("pmem: AnnounceTxn with structID 0")
	}
	a := p.h.annAddr(p.id)
	p.Store(a+txLegs+0, leg1.StructID)
	p.Store(a+txLegs+1, leg1.Kind)
	p.Store(a+txLegs+2, leg1.Arg)
	p.Store(a+txLegs+3, leg2.StructID)
	p.Store(a+txLegs+4, leg2.Kind)
	p.Store(a+txLegs+5, leg2.Arg)
	p.Store(a+txCommit, 0)
	p.Store(a+txFlags, flags)
	p.PWB(a + txLegs)
	p.Store(a+txResults, 0)
	p.Store(a+txResults+1, 0)
	p.PWB(a + txResults)
	p.Store(a+annStruct, 0)
	p.Store(a+abCount, 0)
	p.Store(a+annTxn, txnCheck(leg1, leg2, flags))
	p.PWB(a)
}

// CommitTxn durably flips the transaction's commit point: leg 1 completed
// and its result slot persisted (call only after SetTxnResult(0, …)
// returned — its write-back is synchronous, so the result is durable
// strictly before the commit mark that covers it). After CommitTxn,
// recovery re-drives leg 2 instead of re-submitting the transaction.
func (p *Proc) CommitTxn() {
	a := p.h.annAddr(p.id)
	p.Store(a+txCommit, txnCommitMark(p.Load(a+annTxn)))
	p.PWB(a + txCommit)
}

// SetTxnResult durably records leg i's (0 or 1) response in the
// transaction announcement's result slot. resp must be nonzero (0 is the
// engine's ⊥, the "no durable result" sentinel).
func (p *Proc) SetTxnResult(i int, resp uint64) {
	if resp == 0 {
		panic("pmem: SetTxnResult with zero response")
	}
	a := p.h.annAddr(p.id) + txResults + Addr(i)
	p.Store(a, resp)
	p.PWB(a)
}

// TxnResult reads leg i's result slot (0 = no durable result). AnnounceTxn
// durably zeroed both slots before the record became valid, so a nonzero
// slot was written by THIS transaction — which is what lets recovery trust
// slot 0 as proof that leg 1 completed even when the commit point's
// write was lost.
func (p *Proc) TxnResult(i int) uint64 {
	return p.Load(p.h.annAddr(p.id) + txResults + Addr(i))
}

// TxnAnnouncement reads this process's transaction announcement record,
// validating the checksum that binds the header to the leg line. ok is
// false if no transaction is announced (or the record was only partially
// persisted when the crash hit — the transaction then provably performed
// no tracked writes). committed reports the durable commit point: false
// means leg 2 provably never started.
func (p *Proc) TxnAnnouncement() (leg1, leg2 TxnLeg, flags uint64, committed, ok bool) {
	a := p.h.annAddr(p.id)
	sum := p.Load(a + annTxn)
	if sum == 0 {
		return TxnLeg{}, TxnLeg{}, 0, false, false
	}
	leg1 = TxnLeg{StructID: p.Load(a + txLegs + 0), Kind: p.Load(a + txLegs + 1), Arg: p.Load(a + txLegs + 2)}
	leg2 = TxnLeg{StructID: p.Load(a + txLegs + 3), Kind: p.Load(a + txLegs + 4), Arg: p.Load(a + txLegs + 5)}
	flags = p.Load(a + txFlags)
	if sum != txnCheck(leg1, leg2, flags) {
		return TxnLeg{}, TxnLeg{}, 0, false, false
	}
	committed = p.Load(a+txCommit) == txnCommitMark(sum)
	return leg1, leg2, flags, committed, true
}

// Announcement reads this process's announcement record, validating the
// checksum. ok is false if the record is cleared or was only partially
// persisted when the crash hit — in both cases the announced operation
// provably performed no tracked writes, so there is nothing to recover.
func (p *Proc) Announcement() (structID, kind, arg uint64, ok bool) {
	a := p.h.annAddr(p.id)
	structID = p.Load(a + annStruct)
	kind = p.Load(a + annKind)
	arg = p.Load(a + annArg)
	sum := p.Load(a + annSum)
	if structID == 0 || sum != annCheck(structID, kind, arg) {
		return 0, 0, 0, false
	}
	return structID, kind, arg, true
}

// nextRand steps the per-proc xorshift PRNG.
func (p *Proc) nextRand() uint64 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return x
}

// Rand exposes the PRNG for workload generators that want per-proc seeded
// randomness without extra state.
func (p *Proc) Rand() uint64 { return p.nextRand() }

// Stats returns a copy of the per-proc instruction counters.
func (p *Proc) Stats() Stats { return p.stats }

// ResetStats zeroes the per-proc instruction counters.
func (p *Proc) ResetStats() { p.stats = Stats{} }

// ScheduleSelfCrash arms an individual failure of this process after
// roughly n more of its own accesses: the process panics with Crash, losing
// its volatile state (locals), while shared memory and other processes
// continue unaffected. This models the paper's footnote-1 failure model,
// meaningful in the private cache model where shared variables are always
// persistent. Arm from the process's own goroutine.
func (p *Proc) ScheduleSelfCrash(n uint64) {
	p.accesses = 0
	if n == 0 {
		n = 1
	}
	p.selfCrashAt = n
}

// CancelSelfCrash disarms a pending individual failure.
func (p *Proc) CancelSelfCrash() { p.selfCrashAt = 0 }

// RunOp executes f, converting a simulated crash panic into a false return.
// Any other panic propagates. It is the harness-side bracket for one
// recoverable operation (or recovery function) execution.
func RunOp(f func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(Crash); ok {
				completed = false
				return
			}
			panic(r)
		}
	}()
	f()
	return true
}
