// Package msqueue implements the Michael-Scott lock-free FIFO queue
// (PODC 1996) on the simulated heap — volatile and non-recoverable. It is
// the base of the queue baselines and the upper-bound curve in the
// private-cache-model panel of Figure 7.
package msqueue

import "repro/internal/pmem"

// Node field offsets (words); 4-word allocations.
const (
	nVal  = 0
	nNext = 1

	nodeWords = 2
)

// Queue is a Michael-Scott FIFO queue of uint64 values.
type Queue struct {
	h          *pmem.Heap
	head, tail pmem.Addr // anchor words on separate lines
}

// New builds an empty queue (one dummy node).
func New(h *pmem.Heap) *Queue {
	q := &Queue{h: h}
	p := h.Proc(0)
	anchors := p.Alloc(2 * pmem.WordsPerLine)
	q.head = anchors
	q.tail = anchors + pmem.WordsPerLine
	dummy := newNode(p, 0)
	p.Store(q.head, uint64(dummy))
	p.Store(q.tail, uint64(dummy))
	return q
}

func newNode(p *pmem.Proc, val uint64) pmem.Addr {
	nd := p.Alloc(nodeWords)
	p.Store(nd+nVal, val)
	p.Store(nd+nNext, 0)
	return nd
}

// Enqueue appends v.
func (q *Queue) Enqueue(p *pmem.Proc, v uint64) {
	nd := newNode(p, v)
	for {
		last := pmem.Addr(p.Load(q.tail))
		next := pmem.Addr(p.Load(last + nNext))
		if last != pmem.Addr(p.Load(q.tail)) {
			continue
		}
		if next != pmem.Null {
			p.CASBool(q.tail, uint64(last), uint64(next)) // help swing
			continue
		}
		if p.CASBool(last+nNext, 0, uint64(nd)) {
			p.CASBool(q.tail, uint64(last), uint64(nd))
			return
		}
	}
}

// Dequeue removes the oldest value; ok=false on empty.
func (q *Queue) Dequeue(p *pmem.Proc) (uint64, bool) {
	for {
		head := pmem.Addr(p.Load(q.head))
		last := pmem.Addr(p.Load(q.tail))
		next := pmem.Addr(p.Load(head + nNext))
		if head != pmem.Addr(p.Load(q.head)) {
			continue
		}
		if head == last {
			if next == pmem.Null {
				return 0, false
			}
			p.CASBool(q.tail, uint64(last), uint64(next)) // help swing
			continue
		}
		v := p.Load(next + nVal)
		if p.CASBool(q.head, uint64(head), uint64(next)) {
			return v, true
		}
	}
}

// Len counts queued values (test helper; quiescence).
func (q *Queue) Len() int {
	h := q.h
	n := 0
	curr := pmem.Addr(h.ReadVolatile(q.head))
	for {
		curr = pmem.Addr(h.ReadVolatile(curr + nNext))
		if curr == pmem.Null {
			return n
		}
		n++
	}
}
