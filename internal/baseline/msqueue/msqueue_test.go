package msqueue

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

func TestFIFO(t *testing.T) {
	h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1})
	q := New(h)
	p := h.Proc(0)
	if _, ok := q.Dequeue(p); ok {
		t.Fatal("dequeue on empty")
	}
	for v := uint64(1); v <= 100; v++ {
		q.Enqueue(p, v)
	}
	for v := uint64(1); v <= 100; v++ {
		got, ok := q.Dequeue(p)
		if !ok || got != v {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
	if q.Len() != 0 {
		t.Fatal("not drained")
	}
}

func TestConcurrentConservation(t *testing.T) {
	const procs, perProc = 4, 500
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 2 * procs})
	q := New(h)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]bool{}
	for id := 0; id < procs; id++ {
		wg.Add(2)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			for j := 0; j < perProc; j++ {
				q.Enqueue(p, uint64(id)*1_000_000+uint64(j)+1)
			}
		}(id)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(procs + id)
			got := 0
			for got < perProc {
				if v, ok := q.Dequeue(p); ok {
					mu.Lock()
					if seen[v] {
						mu.Unlock()
						t.Errorf("value %d dequeued twice", v)
						return
					}
					seen[v] = true
					mu.Unlock()
					got++
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(seen) != procs*perProc || q.Len() != 0 {
		t.Fatalf("conservation: %d seen, %d left", len(seen), q.Len())
	}
}
