// Package dtlist implements the paper's direct-tracking (DT) baseline: a
// detectably recoverable linked list built directly on Harris' algorithm,
// using the algorithmic idea of Friedman et al.'s log queue (PPoPP 2018) as
// described in the paper's Section 5 — every update takes effect in a
// single CAS, and an arbitration mechanism decides, upon recovery, which of
// the competing processes the successful CAS is attributed to.
//
//   - Insert's effect is the link CAS. Recovery checks whether the
//     process's recorded node entered the list: either it is still
//     reachable under its key, or its mark bit is set (nodes are only ever
//     marked after being linked, and marks are persisted before physical
//     removal, so a marked node proves the insert took effect).
//   - Delete arbitrates through a per-node owner word: deleters first CAS
//     their identity into the victim's owner field (persisted before the
//     mark), so after a crash the owner field alone attributes the
//     deletion. Losers help complete the mark and report an unsuccessful
//     delete, linearized after the winner.
//
// Persistence placement follows the hand-tuned DT-Opt rules: a constant
// number of barriers per operation (recovery record, link/mark CAS,
// result), plus one barrier per *marked* node the traversal walks through —
// the thread-count-dependent term the paper measures in Figure 1b.
//
// Like the published direct-tracking designs, the detectability argument is
// per-process: a response that depends on a link another process wrote but
// had not yet persisted at the crash can be lost with that link. The
// paper's ISB scheme closes this window by construction; DT inherits it
// from the original log-queue-style guidelines.
package dtlist

import "repro/internal/pmem"

// Node field offsets (words); 4-word allocations.
const (
	nKey   = 0
	nNext  = 1 // bit 0 = Harris mark
	nOwner = 2 // delete arbitration: 0 or (proc+1)<<40|seq

	nodeWords = 4
)

// Recovery record offsets (one line per process).
const (
	rPhase   = 0 // 0 none, 2 insert-CAS, 3 delete-claim, 4 done
	rOp      = 1
	rKey     = 2
	rNode    = 3 // insert: new node; delete: victim
	rSeq     = 4
	rResult  = 5 // 1 false, 2 true (valid when phase == 4)
	rCounter = 6 // persisted seq-block watermark
)

// Operation kinds.
const (
	OpInsert uint64 = 1
	OpDelete uint64 = 2
	OpFind   uint64 = 3
)

// Sentinel keys.
const (
	MinKey uint64 = 0
	MaxKey uint64 = 1<<64 - 1
)

const seqBlock = 64

func marked(v uint64) bool   { return v&1 == 1 }
func mark(v uint64) uint64   { return v | 1 }
func unmark(v uint64) uint64 { return v &^ 1 }
func ref(v uint64) pmem.Addr { return pmem.Addr(v &^ 1) }

func encodeOwner(proc int, seq uint64) uint64 {
	return uint64(proc+1)<<40 | (seq & ((1 << 40) - 1))
}

// List is the direct-tracking detectably recoverable sorted set.
type List struct {
	h          *pmem.Heap
	head, tail pmem.Addr
	recs       pmem.Addr

	seqNext, seqLimit []uint64
}

// New builds an empty list.
func New(h *pmem.Heap) *List {
	l := &List{h: h}
	p := h.Proc(0)
	n := uint64(h.NumProcs())
	raw := p.Alloc((n + 1) * pmem.WordsPerLine)
	l.recs = (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	l.tail = newNode(p, MaxKey, 0)
	l.head = newNode(p, MinKey, uint64(l.tail))
	p.PBarrierRange(l.tail, nodeWords)
	p.PBarrierRange(l.head, nodeWords)
	p.PSync()
	l.seqNext = make([]uint64, h.NumProcs())
	l.seqLimit = make([]uint64, h.NumProcs())
	return l
}

func newNode(p *pmem.Proc, key, next uint64) pmem.Addr {
	nd := p.Alloc(nodeWords)
	p.Store(nd+nKey, key)
	p.Store(nd+nNext, next)
	p.Store(nd+nOwner, 0)
	return nd
}

func (l *List) rec(p *pmem.Proc) pmem.Addr {
	return l.recs + pmem.Addr(p.ID()*pmem.WordsPerLine)
}

// Begin is the system-side invocation step.
func (l *List) Begin(p *pmem.Proc) {
	r := l.rec(p)
	p.Store(r+rPhase, 0)
	p.PWB(r + rPhase)
	p.PSync()
}

func (l *List) nextSeq(p *pmem.Proc) uint64 {
	id := p.ID()
	if l.seqNext[id] >= l.seqLimit[id] {
		r := l.rec(p)
		base := p.Load(r + rCounter)
		p.Store(r+rCounter, base+seqBlock)
		p.PWB(r + rCounter)
		p.PSync()
		l.seqNext[id] = base + 1
		l.seqLimit[id] = base + seqBlock
	}
	s := l.seqNext[id]
	l.seqNext[id]++
	return s
}

// find is Harris' search with the DT-Opt persistence rule: barrier every
// marked link the traversal depends on before unlinking past it.
func (l *List) find(p *pmem.Proc, key uint64) (pred, curr pmem.Addr) {
retry:
	for {
		pred = l.head
		curr = ref(p.Load(pred + nNext))
		for {
			succ := p.Load(curr + nNext)
			for marked(succ) {
				p.PBarrier(curr + nNext) // persist the mark being relied on
				if !p.CASBool(pred+nNext, uint64(curr), unmark(succ)) {
					continue retry
				}
				p.PWB(pred + nNext)
				curr = ref(succ)
				succ = p.Load(curr + nNext)
			}
			if p.Load(curr+nKey) >= key {
				return pred, curr
			}
			pred = curr
			curr = ref(succ)
		}
	}
}

// finish persists the response (phase 4) with a single barrier.
func (l *List) finish(p *pmem.Proc, res bool) bool {
	r := l.rec(p)
	v := uint64(1)
	if res {
		v = 2
	}
	p.Store(r+rResult, v)
	p.Store(r+rPhase, 4)
	p.PBarrierRange(r, pmem.WordsPerLine)
	p.PSync()
	return res
}

// Insert adds key; false if present.
func (l *List) Insert(p *pmem.Proc, key uint64) bool {
	l.setRec(p, OpInsert, key)
	return l.insertFrom(p, key)
}

func (l *List) setRec(p *pmem.Proc, op, key uint64) {
	r := l.rec(p)
	p.Store(r+rOp, op)
	p.Store(r+rKey, key)
	p.Store(r+rPhase, 1)
	p.PBarrierRange(r, pmem.WordsPerLine)
	p.PSync()
}

func (l *List) insertFrom(p *pmem.Proc, key uint64) bool {
	for {
		pred, curr := l.find(p, key)
		if p.Load(curr+nKey) == key {
			return l.finish(p, false)
		}
		nd := newNode(p, key, uint64(curr))
		p.PBarrierRange(nd, nodeWords)
		r := l.rec(p)
		p.Store(r+rNode, uint64(nd))
		p.Store(r+rPhase, 2)
		p.PBarrierRange(r, pmem.WordsPerLine)
		p.PSync()
		if p.CASBool(pred+nNext, uint64(curr), uint64(nd)) {
			p.PWB(pred + nNext)
			p.PSync()
			return l.finish(p, true)
		}
	}
}

// Delete removes key; false if absent (or if another process won the
// arbitration for the same node).
func (l *List) Delete(p *pmem.Proc, key uint64) bool {
	l.setRec(p, OpDelete, key)
	return l.deleteFrom(p, key)
}

func (l *List) deleteFrom(p *pmem.Proc, key uint64) bool {
	for {
		pred, curr := l.find(p, key)
		if p.Load(curr+nKey) != key {
			return l.finish(p, false)
		}
		seq := l.nextSeq(p)
		r := l.rec(p)
		p.Store(r+rNode, uint64(curr))
		p.Store(r+rSeq, seq)
		p.Store(r+rPhase, 3)
		p.PBarrierRange(r, pmem.WordsPerLine)
		p.PSync()
		me := encodeOwner(p.ID(), seq)
		if p.CASBool(curr+nOwner, 0, me) {
			p.PWB(curr + nOwner)
			p.PSync()
			l.completeMark(p, curr)
			p.CASBool(pred+nNext, uint64(curr), unmark(p.Load(curr+nNext))) // best-effort unlink
			p.PWB(pred + nNext)
			return l.finish(p, true)
		}
		// Arbitration lost: help the winner's mark, then report absent.
		l.completeMark(p, curr)
		p.CASBool(pred+nNext, uint64(curr), unmark(p.Load(curr+nNext)))
		p.PWB(pred + nNext)
		return l.finish(p, false)
	}
}

// completeMark marks curr (idempotent; retried against concurrent inserts
// after curr).
func (l *List) completeMark(p *pmem.Proc, curr pmem.Addr) {
	for {
		succ := p.Load(curr + nNext)
		if marked(succ) {
			break
		}
		if p.CASBool(curr+nNext, succ, mark(succ)) {
			break
		}
	}
	p.PWB(curr + nNext)
	p.PSync()
}

// Find reports membership; the response is persisted before returning.
func (l *List) Find(p *pmem.Proc, key uint64) bool {
	l.setRec(p, OpFind, key)
	curr := l.head
	for p.Load(curr+nKey) < key {
		next := p.Load(curr + nNext)
		if marked(next) {
			p.PBarrier(curr + nNext)
		}
		curr = ref(next)
	}
	next := p.Load(curr + nNext)
	res := p.Load(curr+nKey) == key && !marked(next)
	// Persist the link the response depends on before exposing it.
	p.PBarrier(curr + nNext)
	return l.finish(p, res)
}

// Recover resumes an interrupted operation with the same kind and key.
func (l *List) Recover(p *pmem.Proc, op, key uint64) bool {
	id := p.ID()
	l.seqNext[id], l.seqLimit[id] = 0, 0 // reseed after crash
	r := l.rec(p)
	if p.Load(r+rPhase) == 0 || p.Load(r+rOp) != op || p.Load(r+rKey) != key {
		return l.reinvoke(p, op, key)
	}
	switch p.Load(r + rPhase) {
	case 4:
		return p.Load(r+rResult) == 2
	case 2: // insert: did the recorded node enter the list?
		nd := pmem.Addr(p.Load(r + rNode))
		if marked(p.Load(nd + nNext)) {
			return l.finish(p, true) // linked, then logically deleted
		}
		if _, curr := l.find(p, key); curr == nd {
			return l.finish(p, true)
		}
		return l.insertFrom(p, key)
	case 3: // delete: the owner word arbitrates
		nd := pmem.Addr(p.Load(r + rNode))
		seq := p.Load(r + rSeq)
		if p.Load(nd+nOwner) == encodeOwner(p.ID(), seq) {
			l.completeMark(p, nd)
			return l.finish(p, true)
		}
		return l.deleteFrom(p, key)
	default:
		return l.resume(p, op, key)
	}
}

func (l *List) reinvoke(p *pmem.Proc, op, key uint64) bool {
	switch op {
	case OpInsert:
		return l.Insert(p, key)
	case OpDelete:
		return l.Delete(p, key)
	default:
		return l.Find(p, key)
	}
}

func (l *List) resume(p *pmem.Proc, op, key uint64) bool {
	switch op {
	case OpInsert:
		return l.insertFrom(p, key)
	case OpDelete:
		return l.deleteFrom(p, key)
	default:
		return l.Find(p, key)
	}
}

// Keys snapshots unmarked keys (test helper; quiescence).
func (l *List) Keys() []uint64 {
	var out []uint64
	h := l.h
	curr := ref(h.ReadVolatile(l.head + nNext))
	for curr != l.tail {
		next := h.ReadVolatile(curr + nNext)
		if !marked(next) {
			out = append(out, h.ReadVolatile(curr+nKey))
		}
		curr = ref(next)
	}
	return out
}

// CheckInvariants verifies sortedness of unmarked nodes at quiescence.
func (l *List) CheckInvariants() string {
	h := l.h
	prev := uint64(0)
	curr := ref(h.ReadVolatile(l.head + nNext))
	steps := 0
	for {
		if curr == pmem.Null {
			return "fell off the list"
		}
		if curr == l.tail {
			return ""
		}
		next := h.ReadVolatile(curr + nNext)
		k := h.ReadVolatile(curr + nKey)
		if !marked(next) {
			if k <= prev {
				return "unmarked keys not strictly increasing"
			}
			prev = k
		}
		curr = ref(next)
		if steps++; steps > 1<<24 {
			return "cycle suspected"
		}
	}
}
