package dtlist

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newList(t *testing.T, procs int) (*List, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true})
	return New(h), h
}

func TestBasicSemantics(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	if !l.Insert(p, 5) || l.Insert(p, 5) {
		t.Fatal("insert semantics")
	}
	if !l.Find(p, 5) || l.Find(p, 6) {
		t.Fatal("find semantics")
	}
	if !l.Delete(p, 5) || l.Delete(p, 5) {
		t.Fatal("delete semantics")
	}
}

func TestModelEquivalence(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(48) + 1)
		switch rng.Intn(3) {
		case 0:
			if l.Insert(p, k) != !model[k] {
				t.Fatalf("op %d insert(%d)", i, k)
			}
			model[k] = true
		case 1:
			if l.Delete(p, k) != model[k] {
				t.Fatalf("op %d delete(%d)", i, k)
			}
			delete(model, k)
		default:
			if l.Find(p, k) != model[k] {
				t.Fatalf("op %d find(%d)", i, k)
			}
		}
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

// TestConcurrentConservation: under contention, for each key the net count
// of successful inserts minus successful deletes matches final presence.
func TestConcurrentConservation(t *testing.T) {
	const procs, perProc, keys = 6, 400, 8
	l, h := newList(t, procs)
	nets := make([]map[uint64]int, procs)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		nets[id] = map[uint64]int{}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			rng := rand.New(rand.NewSource(int64(id + 7)))
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(keys) + 1)
				if rng.Intn(2) == 0 {
					if l.Insert(p, k) {
						nets[id][k]++
					}
				} else if l.Delete(p, k) {
					nets[id][k]--
				}
			}
		}(id)
	}
	wg.Wait()
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	total := map[uint64]int{}
	for _, m := range nets {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range l.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			t.Fatalf("key %d: net %d vs present %v", k, total[k], present[k])
		}
	}
}

// TestCrashSweepSingleProc drives every operation type through crashes at
// each access offset (single process, so direct tracking's per-process
// detectability guarantees apply in full).
func TestCrashSweepSingleProc(t *testing.T) {
	for offset := uint64(1); offset <= 70; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
		l := New(h)
		p := h.Proc(0)
		l.Insert(p, 10)
		l.Insert(p, 30)

		// Insert under crash.
		l.Begin(p)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed := !pmem.RunOp(func() { l.Insert(p, 20) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
			if !l.Recover(p, OpInsert, 20) {
				t.Fatalf("offset %d: insert recovery returned false", offset)
			}
		}
		ks := l.Keys()
		if len(ks) != 3 {
			t.Fatalf("offset %d: keys %v after insert", offset, ks)
		}

		// Delete under crash.
		l.Begin(p)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed = !pmem.RunOp(func() { l.Delete(p, 10) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
			if !l.Recover(p, OpDelete, 10) {
				t.Fatalf("offset %d: delete recovery returned false", offset)
			}
		}
		ks = l.Keys()
		if len(ks) != 2 || ks[0] != 20 || ks[1] != 30 {
			t.Fatalf("offset %d: keys %v after delete", offset, ks)
		}

		// Find under crash.
		l.Begin(p)
		h.ScheduleCrashAt(h.AccessCount() + offset)
		var res bool
		crashed = !pmem.RunOp(func() { res = l.Find(p, 20) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
			res = l.Recover(p, OpFind, 20)
		}
		if !res {
			t.Fatalf("offset %d: Find(20) false", offset)
		}
		if msg := l.CheckInvariants(); msg != "" {
			t.Fatalf("offset %d: %s", offset, msg)
		}
	}
}

func TestDeleteArbitrationLoser(t *testing.T) {
	// Two procs delete the same key: exactly one wins.
	for seed := 0; seed < 10; seed++ {
		l, h := newList(t, 2)
		p0 := h.Proc(0)
		l.Insert(p0, 5)
		var r0, r1 bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); r0 = l.Delete(h.Proc(0), 5) }()
		go func() { defer wg.Done(); r1 = l.Delete(h.Proc(1), 5) }()
		wg.Wait()
		if r0 == r1 {
			t.Fatalf("seed %d: both deletes returned %v", seed, r0)
		}
		if len(l.Keys()) != 0 {
			t.Fatalf("seed %d: key survived deletion", seed)
		}
	}
}

func TestRecoverAfterCompletion(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	l.Insert(p, 5)
	if !l.Recover(p, OpInsert, 5) {
		t.Fatal("recover after completed insert")
	}
	if n := len(l.Keys()); n != 1 {
		t.Fatalf("recover re-executed insert: %d keys", n)
	}
}
