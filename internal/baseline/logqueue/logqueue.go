// Package logqueue implements the detectable lock-free queue of Friedman,
// Herlihy, Marathe and Petrank (PPoPP 2018) — the paper's "log queue"
// baseline. Queue nodes are augmented with tracking words:
//
//   - an enqueued node permanently records its enqueuer, so enqueue
//     recovery scans the (never-reclaimed) node chain for its recorded
//     node: present means the link CAS took effect;
//   - dequeue takes effect with a single CAS on the victim node's deqID
//     word (the arbitration mechanism): the Head swing is auxiliary.
//     Dequeue recovery just re-reads the recorded victim's deqID.
//
// Persistency instructions follow the paper's hand-tuned placement: the
// recovery record and new node are persisted with one barrier each before
// the critical CAS, the CAS target is flushed right after, and — as with
// the other Harris/MS-based baselines — a traversal that passes nodes whose
// dequeued state it depends on flushes them first.
package logqueue

import "repro/internal/pmem"

// Node field offsets (words); 4-word allocations.
const (
	nVal   = 0
	nNext  = 1
	nDeqID = 2 // 0 = live; else (proc+1)<<40|seq of the dequeuer

	nodeWords = 4
)

// Recovery record offsets (one line per process).
const (
	rPhase   = 0 // 0 none, 2 enq-CAS, 3 deq-claim, 4 done
	rOp      = 1
	rNode    = 2
	rSeq     = 3
	rResult  = 4 // valid when phase == 4 (isb-style encoding)
	rCounter = 5
)

// Operation kinds.
const (
	OpEnq uint64 = 10
	OpDeq uint64 = 11
)

// Responses (mirrors internal/isb encoding).
const (
	RespTrue  uint64 = 2
	RespEmpty uint64 = 3
	respVBase uint64 = 16
)

// EncodeValue / DecodeValue mirror isb's payload encoding.
func EncodeValue(v uint64) uint64 { return v + respVBase }
func DecodeValue(r uint64) uint64 { return r - respVBase }

const seqBlock = 64

func encodeID(proc int, seq uint64) uint64 {
	return uint64(proc+1)<<40 | (seq & ((1 << 40) - 1))
}

// Queue is the detectable log queue.
type Queue struct {
	h          *pmem.Heap
	head, tail pmem.Addr
	first      pmem.Addr // the original dummy: recovery scans from here
	recs       pmem.Addr

	seqNext, seqLimit []uint64
}

// New builds an empty queue.
func New(h *pmem.Heap) *Queue {
	q := &Queue{h: h}
	p := h.Proc(0)
	n := uint64(h.NumProcs())
	raw := p.Alloc((n + 1) * pmem.WordsPerLine)
	q.recs = (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	anchors := p.Alloc(2 * pmem.WordsPerLine)
	q.head = anchors
	q.tail = anchors + pmem.WordsPerLine
	dummy := newNode(p, 0)
	q.first = dummy
	p.Store(q.head, uint64(dummy))
	p.Store(q.tail, uint64(dummy))
	p.PBarrierRange(dummy, nodeWords)
	p.PBarrier(q.head)
	p.PBarrier(q.tail)
	p.PSync()
	q.seqNext = make([]uint64, h.NumProcs())
	q.seqLimit = make([]uint64, h.NumProcs())
	return q
}

func newNode(p *pmem.Proc, val uint64) pmem.Addr {
	nd := p.Alloc(nodeWords)
	p.Store(nd+nVal, val)
	p.Store(nd+nNext, 0)
	p.Store(nd+nDeqID, 0)
	return nd
}

func (q *Queue) rec(p *pmem.Proc) pmem.Addr {
	return q.recs + pmem.Addr(p.ID()*pmem.WordsPerLine)
}

// Begin is the system-side invocation step.
func (q *Queue) Begin(p *pmem.Proc) {
	r := q.rec(p)
	p.Store(r+rPhase, 0)
	p.PWB(r + rPhase)
	p.PSync()
}

func (q *Queue) nextSeq(p *pmem.Proc) uint64 {
	id := p.ID()
	if q.seqNext[id] >= q.seqLimit[id] {
		r := q.rec(p)
		base := p.Load(r + rCounter)
		p.Store(r+rCounter, base+seqBlock)
		p.PWB(r + rCounter)
		p.PSync()
		q.seqNext[id] = base + 1
		q.seqLimit[id] = base + seqBlock
	}
	s := q.seqNext[id]
	q.seqNext[id]++
	return s
}

// Enqueue appends v; the response (trivially true) is persisted.
func (q *Queue) Enqueue(p *pmem.Proc, v uint64) {
	nd := newNode(p, v)
	p.PBarrierRange(nd, nodeWords)
	r := q.rec(p)
	p.Store(r+rOp, OpEnq)
	p.Store(r+rNode, uint64(nd))
	p.Store(r+rPhase, 2)
	p.PBarrierRange(r, pmem.WordsPerLine)
	p.PSync()
	q.enqueueNode(p, nd)
	q.finish(p, RespTrue)
}

func (q *Queue) enqueueNode(p *pmem.Proc, nd pmem.Addr) {
	for {
		last := pmem.Addr(p.Load(q.tail))
		next := pmem.Addr(p.Load(last + nNext))
		if next != pmem.Null {
			p.CASBool(q.tail, uint64(last), uint64(next))
			continue
		}
		if p.CASBool(last+nNext, 0, uint64(nd)) {
			p.PWB(last + nNext)
			p.PSync()
			p.CASBool(q.tail, uint64(last), uint64(nd))
			return
		}
		p.PBarrier(last + nNext) // lost to a link we may depend on: persist it
	}
}

// Dequeue removes the oldest value; ok=false on empty.
func (q *Queue) Dequeue(p *pmem.Proc) (uint64, bool) {
	r := q.rec(p)
	for {
		head := pmem.Addr(p.Load(q.head))
		next := pmem.Addr(p.Load(head + nNext))
		if next == pmem.Null {
			if pmem.Addr(p.Load(q.head)) != head {
				continue
			}
			q.finish(p, RespEmpty)
			return 0, false
		}
		if p.Load(next+nDeqID) != 0 {
			// Claimed by another dequeuer: persist its claim (we are about
			// to depend on it) and help move Head past it.
			p.PBarrier(next + nDeqID)
			p.CASBool(q.head, uint64(head), uint64(next))
			continue
		}
		seq := q.nextSeq(p)
		p.Store(r+rOp, OpDeq)
		p.Store(r+rNode, uint64(next))
		p.Store(r+rSeq, seq)
		p.Store(r+rPhase, 3)
		p.PBarrierRange(r, pmem.WordsPerLine)
		p.PSync()
		if p.CASBool(next+nDeqID, 0, encodeID(p.ID(), seq)) {
			p.PWB(next + nDeqID)
			p.PSync()
			p.CASBool(q.head, uint64(head), uint64(next)) // auxiliary swing
			v := p.Load(next + nVal)
			q.finish(p, EncodeValue(v))
			return v, true
		}
	}
}

// finish persists the response.
func (q *Queue) finish(p *pmem.Proc, resp uint64) {
	r := q.rec(p)
	p.Store(r+rResult, resp)
	p.Store(r+rPhase, 4)
	p.PBarrierRange(r, pmem.WordsPerLine)
	p.PSync()
}

// Recover resumes an interrupted operation and returns its encoded
// response (RespTrue, RespEmpty, or an encoded value).
func (q *Queue) Recover(p *pmem.Proc, op uint64) uint64 {
	id := p.ID()
	q.seqNext[id], q.seqLimit[id] = 0, 0
	r := q.rec(p)
	if p.Load(r+rPhase) == 0 || p.Load(r+rOp) != op {
		return q.reinvoke(p, op)
	}
	switch p.Load(r + rPhase) {
	case 4:
		return p.Load(r + rResult)
	case 2: // enqueue: scan the chain from the original dummy
		nd := pmem.Addr(p.Load(r + rNode))
		curr := q.first
		for curr != pmem.Null {
			if curr == nd {
				q.enqueueTailFix(p)
				q.finish(p, RespTrue)
				return RespTrue
			}
			curr = pmem.Addr(p.Load(curr + nNext))
		}
		q.enqueueNode(p, nd)
		q.finish(p, RespTrue)
		return RespTrue
	case 3: // dequeue: the victim's deqID arbitrates
		nd := pmem.Addr(p.Load(r + rNode))
		seq := p.Load(r + rSeq)
		if p.Load(nd+nDeqID) == encodeID(p.ID(), seq) {
			v := p.Load(nd + nVal)
			q.finish(p, EncodeValue(v))
			return EncodeValue(v)
		}
		return q.reinvokeDeq(p)
	default:
		return q.reinvoke(p, op)
	}
}

func (q *Queue) reinvoke(p *pmem.Proc, op uint64) uint64 {
	if op == OpEnq {
		// The caller re-supplies the value through RecoverEnqueue; plain
		// reinvoke is only reachable for dequeues here.
		panic("logqueue: enqueue re-invocation requires the value; use RecoverEnqueue")
	}
	return q.reinvokeDeq(p)
}

func (q *Queue) reinvokeDeq(p *pmem.Proc) uint64 {
	if v, ok := q.Dequeue(p); ok {
		return EncodeValue(v)
	}
	return RespEmpty
}

// RecoverEnqueue is Recover for enqueues, with the value for re-invocation.
func (q *Queue) RecoverEnqueue(p *pmem.Proc, v uint64) uint64 {
	r := q.rec(p)
	if p.Load(r+rPhase) == 0 || p.Load(r+rOp) != OpEnq {
		q.Enqueue(p, v)
		return RespTrue
	}
	return q.Recover(p, OpEnq)
}

// enqueueTailFix repairs a lagging tail hint after recovery.
func (q *Queue) enqueueTailFix(p *pmem.Proc) {
	for {
		last := pmem.Addr(p.Load(q.tail))
		next := pmem.Addr(p.Load(last + nNext))
		if next == pmem.Null {
			return
		}
		p.CASBool(q.tail, uint64(last), uint64(next))
	}
}

// Values snapshots live (unclaimed) queued values (test helper).
func (q *Queue) Values() []uint64 {
	h := q.h
	var out []uint64
	curr := pmem.Addr(h.ReadVolatile(q.head))
	// Skip past claimed nodes that Head has not passed yet.
	for {
		next := pmem.Addr(h.ReadVolatile(curr + nNext))
		if next == pmem.Null {
			return out
		}
		if h.ReadVolatile(next+nDeqID) == 0 {
			out = append(out, h.ReadVolatile(next+nVal))
		}
		curr = next
	}
}
