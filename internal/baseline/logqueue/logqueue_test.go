package logqueue

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newQ(t *testing.T, procs int) (*Queue, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs, Tracked: true})
	return New(h), h
}

func TestFIFO(t *testing.T) {
	q, h := newQ(t, 1)
	p := h.Proc(0)
	if _, ok := q.Dequeue(p); ok {
		t.Fatal("dequeue on empty")
	}
	for v := uint64(1); v <= 80; v++ {
		q.Enqueue(p, v)
	}
	for v := uint64(1); v <= 80; v++ {
		got, ok := q.Dequeue(p)
		if !ok || got != v {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
	if _, ok := q.Dequeue(p); ok {
		t.Fatal("not drained")
	}
}

func TestConcurrentNoDuplicates(t *testing.T) {
	const procs, perProc = 3, 300
	q, h := newQ(t, 2*procs)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]bool{}
	for id := 0; id < procs; id++ {
		wg.Add(2)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			for j := 0; j < perProc; j++ {
				q.Enqueue(p, uint64(id)*1_000_000+uint64(j)+1)
			}
		}(id)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(procs + id)
			got := 0
			for got < perProc {
				if v, ok := q.Dequeue(p); ok {
					mu.Lock()
					dup := seen[v]
					seen[v] = true
					mu.Unlock()
					if dup {
						t.Errorf("value %d dequeued twice", v)
						return
					}
					got++
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(seen) != procs*perProc {
		t.Fatalf("%d values dequeued, want %d", len(seen), procs*perProc)
	}
}

func TestCrashSweepEnqueue(t *testing.T) {
	for offset := uint64(1); offset <= 50; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
		q := New(h)
		p := h.Proc(0)
		q.Enqueue(p, 1)
		q.Begin(p) // system-side invocation step
		h.ScheduleCrashAt(h.AccessCount() + offset)
		crashed := !pmem.RunOp(func() { q.Enqueue(p, 2) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
			if r := q.RecoverEnqueue(p, 2); r != RespTrue {
				t.Fatalf("offset %d: enqueue recovery = %d", offset, r)
			}
		}
		v1, ok1 := q.Dequeue(p)
		v2, ok2 := q.Dequeue(p)
		if !ok1 || !ok2 || v1 != 1 || v2 != 2 {
			t.Fatalf("offset %d: dequeued (%d,%v) (%d,%v)", offset, v1, ok1, v2, ok2)
		}
		if _, ok := q.Dequeue(p); ok {
			t.Fatalf("offset %d: extra element (duplicated enqueue)", offset)
		}
	}
}

func TestCrashSweepDequeue(t *testing.T) {
	for offset := uint64(1); offset <= 50; offset++ {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 20, Procs: 1, Tracked: true})
		q := New(h)
		p := h.Proc(0)
		q.Enqueue(p, 7)
		q.Enqueue(p, 8)
		q.Begin(p) // system-side invocation step
		h.ScheduleCrashAt(h.AccessCount() + offset)
		var v uint64
		var ok bool
		crashed := !pmem.RunOp(func() { v, ok = q.Dequeue(p) })
		h.DisarmCrash()
		if crashed {
			h.ResetAfterCrash()
			r := q.Recover(p, OpDeq)
			if r == RespEmpty {
				t.Fatalf("offset %d: dequeue recovered empty", offset)
			}
			v, ok = DecodeValue(r), true
		}
		if !ok || v != 7 {
			t.Fatalf("offset %d: dequeue (%d,%v), want (7,true)", offset, v, ok)
		}
		v2, ok2 := q.Dequeue(p)
		if !ok2 || v2 != 8 {
			t.Fatalf("offset %d: second dequeue (%d,%v)", offset, v2, ok2)
		}
	}
}

func TestRecoverAfterCompletion(t *testing.T) {
	q, h := newQ(t, 1)
	p := h.Proc(0)
	q.Enqueue(p, 3)
	if r := q.RecoverEnqueue(p, 3); r != RespTrue {
		t.Fatalf("recover enqueue = %d", r)
	}
	v, ok := q.Dequeue(p)
	if !ok || v != 3 {
		t.Fatalf("dequeue (%d,%v)", v, ok)
	}
	if r := q.Recover(p, OpDeq); r != EncodeValue(3) {
		t.Fatalf("recover dequeue = %d", r)
	}
	if _, ok := q.Dequeue(p); ok {
		t.Fatal("recovery duplicated an operation")
	}
}
