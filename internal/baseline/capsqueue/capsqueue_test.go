package capsqueue

import (
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newQ(t *testing.T, procs int, v Variant) (*Queue, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 22, Procs: procs, Tracked: true})
	return New(h, v), h
}

func TestFIFOBothVariants(t *testing.T) {
	for _, variant := range []Variant{General, Normal} {
		q, h := newQ(t, 1, variant)
		p := h.Proc(0)
		if _, ok := q.Dequeue(p); ok {
			t.Fatalf("variant %d: dequeue on empty", variant)
		}
		for v := uint64(1); v <= 60; v++ {
			q.Enqueue(p, v)
		}
		for v := uint64(1); v <= 60; v++ {
			got, ok := q.Dequeue(p)
			if !ok || got != v {
				t.Fatalf("variant %d: Dequeue = (%d,%v), want (%d,true)", variant, got, ok, v)
			}
		}
	}
}

func TestConcurrentNoDuplicates(t *testing.T) {
	const procs, perProc = 3, 200
	q, h := newQ(t, 2*procs, Normal)
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[uint64]bool{}
	for id := 0; id < procs; id++ {
		wg.Add(2)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			for j := 0; j < perProc; j++ {
				q.Enqueue(p, uint64(id)*1_000_000+uint64(j)+1)
			}
		}(id)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(procs + id)
			got := 0
			for got < perProc {
				if v, ok := q.Dequeue(p); ok {
					mu.Lock()
					dup := seen[v]
					seen[v] = true
					mu.Unlock()
					if dup {
						t.Errorf("value %d dequeued twice", v)
						return
					}
					got++
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(seen) != procs*perProc {
		t.Fatalf("%d dequeued, want %d", len(seen), procs*perProc)
	}
}

func TestCrashSweepBothOps(t *testing.T) {
	for _, variant := range []Variant{General, Normal} {
		for offset := uint64(1); offset <= 50; offset++ {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true})
			q := New(h, variant)
			p := h.Proc(0)
			q.Enqueue(p, 1)

			q.Begin(p) // system-side invocation step
			h.ScheduleCrashAt(h.AccessCount() + offset)
			crashed := !pmem.RunOp(func() { q.Enqueue(p, 2) })
			h.DisarmCrash()
			if crashed {
				h.ResetAfterCrash()
				if r := q.Recover(p, OpEnq, 2); r != RespTrue {
					t.Fatalf("variant %d offset %d: enqueue recovery = %d", variant, offset, r)
				}
			}

			q.Begin(p)
			h.ScheduleCrashAt(h.AccessCount() + offset)
			var v uint64
			var ok bool
			crashed = !pmem.RunOp(func() { v, ok = q.Dequeue(p) })
			h.DisarmCrash()
			if crashed {
				h.ResetAfterCrash()
				r := q.Recover(p, OpDeq, 0)
				if r == RespEmpty {
					t.Fatalf("variant %d offset %d: dequeue recovered empty", variant, offset)
				}
				v, ok = DecodeValue(r), true
			}
			if !ok || v != 1 {
				t.Fatalf("variant %d offset %d: dequeue (%d,%v), want (1,true)", variant, offset, v, ok)
			}
			v2, ok2 := q.Dequeue(p)
			if !ok2 || v2 != 2 {
				t.Fatalf("variant %d offset %d: second dequeue (%d,%v)", variant, offset, v2, ok2)
			}
			if _, ok := q.Dequeue(p); ok {
				t.Fatalf("variant %d offset %d: phantom element", variant, offset)
			}
		}
	}
}
