// Package capsqueue implements the capsules-based detectably recoverable
// MS-queue the paper compares against in Figure 7: the capsules
// transformation (Ben-David et al., SPAA 2019) applied to the Michael-Scott
// queue over recoverable CAS locations.
//
// Two variants mirror the paper's: General applies the barrier-after-every-
// shared-access durability transformation; Normal is the normalized
// two-capsule form with hand-tuned persistence. Enqueue's critical CAS is
// the link CAS on the last node's next location; dequeue's is the Head
// swing (its exactly-once outcome determines the dequeued node). The Tail
// word is an auxiliary hint swung with plain CASes.
package capsqueue

import (
	"repro/internal/pmem"
	"repro/internal/rcas"
)

// Node field offsets (words); next is an rcas location.
const (
	nVal  = 0
	nNext = 1

	nodeWords = 2
)

// Capsule record offsets (one line per process).
const (
	cPhase   = 0 // 0 none, 1 search, 2 critical CAS, 4 done
	cOp      = 1
	cLoc     = 2
	cOld     = 3
	cNew     = 4
	cSeq     = 5
	cResult  = 6
	cCounter = 7
)

// Operation kinds.
const (
	OpEnq uint64 = 10
	OpDeq uint64 = 11
)

// Responses (isb encoding).
const (
	RespTrue  uint64 = 2
	RespEmpty uint64 = 3
	respVBase uint64 = 16
)

func EncodeValue(v uint64) uint64 { return v + respVBase }
func DecodeValue(r uint64) uint64 { return r - respVBase }

// Variant selects the persistence placement.
type Variant int

const (
	General Variant = iota
	Normal
)

const seqBlock = 64

// Queue is the capsules-transformed MS-queue.
type Queue struct {
	h       *pmem.Heap
	sp      *rcas.Space
	variant Variant
	headLoc pmem.Addr // rcas location holding the dummy pointer
	tail    pmem.Addr // plain hint word
	recs    pmem.Addr

	seqNext, seqLimit []uint64
}

// New builds an empty queue.
func New(h *pmem.Heap, variant Variant) *Queue {
	q := &Queue{h: h, sp: rcas.NewSpace(h), variant: variant}
	p := h.Proc(0)
	n := uint64(h.NumProcs())
	raw := p.Alloc((n + 1) * pmem.WordsPerLine)
	q.recs = (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	anchors := p.Alloc(2 * pmem.WordsPerLine)
	q.headLoc = anchors
	q.tail = anchors + pmem.WordsPerLine
	dummy := newNode(p, 0)
	q.sp.InitLoc(p, dummy+nNext, 0)
	q.sp.InitLoc(p, q.headLoc, uint64(dummy))
	p.Store(q.tail, uint64(dummy))
	p.PBarrierRange(dummy, nodeWords)
	p.PBarrier(q.tail)
	p.PSync()
	q.seqNext = make([]uint64, h.NumProcs())
	q.seqLimit = make([]uint64, h.NumProcs())
	return q
}

func newNode(p *pmem.Proc, val uint64) pmem.Addr {
	nd := p.Alloc(nodeWords)
	p.Store(nd+nVal, val)
	return nd
}

func (q *Queue) rec(p *pmem.Proc) pmem.Addr {
	return q.recs + pmem.Addr(p.ID()*pmem.WordsPerLine)
}

// Begin is the system-side invocation step.
func (q *Queue) Begin(p *pmem.Proc) {
	r := q.rec(p)
	p.Store(r+cPhase, 0)
	p.PWB(r + cPhase)
	p.PSync()
}

func (q *Queue) gbar(p *pmem.Proc, a pmem.Addr) {
	if q.variant == General {
		p.PBarrier(a)
	}
}

func (q *Queue) read(p *pmem.Proc, loc pmem.Addr) uint64 {
	v := q.sp.Read(p, loc)
	q.gbar(p, loc)
	return v
}

func (q *Queue) nextSeq(p *pmem.Proc) uint64 {
	id := p.ID()
	if q.seqNext[id] >= q.seqLimit[id] {
		r := q.rec(p)
		base := p.Load(r + cCounter)
		p.Store(r+cCounter, base+seqBlock)
		p.PWB(r + cCounter)
		p.PSync()
		q.seqNext[id] = base + 1
		q.seqLimit[id] = base + seqBlock
	}
	s := q.seqNext[id]
	q.seqNext[id]++
	return s
}

func (q *Queue) checkpoint(p *pmem.Proc, phase, op, loc, old, new, seq uint64) {
	r := q.rec(p)
	p.Store(r+cPhase, phase)
	p.Store(r+cOp, op)
	p.Store(r+cLoc, loc)
	p.Store(r+cOld, old)
	p.Store(r+cNew, new)
	p.Store(r+cSeq, seq)
	p.PBarrierRange(r, pmem.WordsPerLine)
	p.PSync()
}

func (q *Queue) finish(p *pmem.Proc, resp uint64) {
	r := q.rec(p)
	p.Store(r+cResult, resp)
	p.Store(r+cPhase, 4)
	p.PBarrierRange(r, pmem.WordsPerLine)
	p.PSync()
}

// findLast chases next locations from the Tail hint.
func (q *Queue) findLast(p *pmem.Proc) pmem.Addr {
	last := pmem.Addr(p.Load(q.tail))
	q.gbar(p, q.tail)
	for {
		next := pmem.Addr(q.read(p, last+nNext))
		if next == pmem.Null {
			return last
		}
		p.CASBool(q.tail, uint64(last), uint64(next))
		q.gbar(p, q.tail)
		last = next
	}
}

// Enqueue appends v.
func (q *Queue) Enqueue(p *pmem.Proc, v uint64) {
	q.checkpoint(p, 1, OpEnq, 0, 0, v, 0)
	q.enqueueFrom(p, v)
}

func (q *Queue) enqueueFrom(p *pmem.Proc, v uint64) {
	nd := newNode(p, v)
	q.sp.InitLoc(p, nd+nNext, 0)
	p.PBarrierRange(nd, nodeWords)
	for {
		last := q.findLast(p)
		seq := q.nextSeq(p)
		q.checkpoint(p, 2, OpEnq, uint64(last+nNext), 0, uint64(nd), seq)
		if q.sp.CAS(p, last+nNext, 0, uint64(nd), seq) == 0 {
			q.gbar(p, last+nNext)
			p.CASBool(q.tail, uint64(last), uint64(nd))
			q.gbar(p, q.tail)
			q.finish(p, RespTrue)
			return
		}
	}
}

// Dequeue removes the oldest value; ok=false on empty.
func (q *Queue) Dequeue(p *pmem.Proc) (uint64, bool) {
	q.checkpoint(p, 1, OpDeq, 0, 0, 0, 0)
	return q.dequeueFrom(p)
}

func (q *Queue) dequeueFrom(p *pmem.Proc) (uint64, bool) {
	for {
		dummy := pmem.Addr(q.read(p, q.headLoc))
		next := pmem.Addr(q.read(p, dummy+nNext))
		if next == pmem.Null {
			if pmem.Addr(q.read(p, q.headLoc)) != dummy {
				continue
			}
			q.finish(p, RespEmpty)
			return 0, false
		}
		seq := q.nextSeq(p)
		q.checkpoint(p, 2, OpDeq, uint64(q.headLoc), uint64(dummy), uint64(next), seq)
		if q.sp.CAS(p, q.headLoc, uint64(dummy), uint64(next), seq) == uint64(dummy) {
			q.gbar(p, q.headLoc)
			v := p.Load(next + nVal)
			q.gbar(p, next+nVal)
			q.finish(p, EncodeValue(v))
			return v, true
		}
	}
}

// Recover resumes an interrupted operation; arg is the enqueue value (for
// re-invocation) and ignored for dequeues. Returns the encoded response.
func (q *Queue) Recover(p *pmem.Proc, op, arg uint64) uint64 {
	id := p.ID()
	q.seqNext[id], q.seqLimit[id] = 0, 0
	r := q.rec(p)
	if p.Load(r+cPhase) == 0 || p.Load(r+cOp) != op {
		return q.reinvoke(p, op, arg)
	}
	switch p.Load(r + cPhase) {
	case 4:
		return p.Load(r + cResult)
	case 2:
		loc := pmem.Addr(p.Load(r + cLoc))
		seq := p.Load(r + cSeq)
		if q.sp.Recover(p, loc, seq) == rcas.Succeeded {
			if op == OpEnq {
				q.finish(p, RespTrue)
				return RespTrue
			}
			next := pmem.Addr(p.Load(r + cNew))
			v := p.Load(next + nVal)
			q.finish(p, EncodeValue(v))
			return EncodeValue(v)
		}
		return q.resume(p, op, arg)
	default:
		return q.resume(p, op, arg)
	}
}

func (q *Queue) reinvoke(p *pmem.Proc, op, arg uint64) uint64 {
	if op == OpEnq {
		q.Enqueue(p, arg)
		return RespTrue
	}
	if v, ok := q.Dequeue(p); ok {
		return EncodeValue(v)
	}
	return RespEmpty
}

func (q *Queue) resume(p *pmem.Proc, op, arg uint64) uint64 {
	if op == OpEnq {
		q.enqueueFrom(p, arg)
		return RespTrue
	}
	if v, ok := q.dequeueFrom(p); ok {
		return EncodeValue(v)
	}
	return RespEmpty
}

// Values snapshots queued values (test helper; quiescence).
func (q *Queue) Values() []uint64 {
	h := q.h
	var out []uint64
	readVol := func(loc pmem.Addr) uint64 {
		d := pmem.Addr(h.ReadVolatile(loc))
		return h.ReadVolatile(d)
	}
	curr := pmem.Addr(readVol(q.headLoc))
	for {
		next := pmem.Addr(readVol(curr + nNext))
		if next == pmem.Null {
			return out
		}
		out = append(out, h.ReadVolatile(next+nVal))
		curr = next
	}
}
