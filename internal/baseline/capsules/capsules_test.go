package capsules

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newList(t *testing.T, procs int, v Variant) (*List, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 22, Procs: procs, Tracked: true})
	return New(h, v), h
}

func TestBasicSemanticsBothVariants(t *testing.T) {
	for _, v := range []Variant{General, Normalized} {
		l, h := newList(t, 1, v)
		p := h.Proc(0)
		if !l.Insert(p, 5) || l.Insert(p, 5) {
			t.Fatalf("variant %d: insert semantics", v)
		}
		if !l.Find(p, 5) || l.Find(p, 6) {
			t.Fatalf("variant %d: find semantics", v)
		}
		if !l.Delete(p, 5) || l.Delete(p, 5) {
			t.Fatalf("variant %d: delete semantics", v)
		}
	}
}

func TestModelEquivalence(t *testing.T) {
	l, h := newList(t, 1, Normalized)
	p := h.Proc(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(40) + 1)
		switch rng.Intn(3) {
		case 0:
			if l.Insert(p, k) != !model[k] {
				t.Fatalf("op %d insert(%d)", i, k)
			}
			model[k] = true
		case 1:
			if l.Delete(p, k) != model[k] {
				t.Fatalf("op %d delete(%d)", i, k)
			}
			delete(model, k)
		default:
			if l.Find(p, k) != model[k] {
				t.Fatalf("op %d find(%d)", i, k)
			}
		}
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestConcurrentConservation(t *testing.T) {
	const procs, perProc, keys = 6, 300, 8
	l, h := newList(t, procs, Normalized)
	nets := make([]map[uint64]int, procs)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		nets[id] = map[uint64]int{}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			rng := rand.New(rand.NewSource(int64(id + 3)))
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(keys) + 1)
				if rng.Intn(2) == 0 {
					if l.Insert(p, k) {
						nets[id][k]++
					}
				} else if l.Delete(p, k) {
					nets[id][k]--
				}
			}
		}(id)
	}
	wg.Wait()
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	total := map[uint64]int{}
	for _, m := range nets {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range l.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			t.Fatalf("key %d: net %d vs present %v", k, total[k], present[k])
		}
	}
}

func TestCrashSweepSingleProc(t *testing.T) {
	for _, variant := range []Variant{General, Normalized} {
		for offset := uint64(1); offset <= 70; offset++ {
			h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1, Tracked: true})
			l := New(h, variant)
			p := h.Proc(0)
			l.Insert(p, 10)
			l.Insert(p, 30)

			l.Begin(p)
			h.ScheduleCrashAt(h.AccessCount() + offset)
			crashed := !pmem.RunOp(func() { l.Insert(p, 20) })
			h.DisarmCrash()
			if crashed {
				h.ResetAfterCrash()
				if !l.Recover(p, OpInsert, 20) {
					t.Fatalf("variant %d offset %d: insert recovery false", variant, offset)
				}
			}
			if ks := l.Keys(); len(ks) != 3 {
				t.Fatalf("variant %d offset %d: keys %v", variant, offset, ks)
			}

			l.Begin(p)
			h.ScheduleCrashAt(h.AccessCount() + offset)
			crashed = !pmem.RunOp(func() { l.Delete(p, 10) })
			h.DisarmCrash()
			if crashed {
				h.ResetAfterCrash()
				if !l.Recover(p, OpDelete, 10) {
					t.Fatalf("variant %d offset %d: delete recovery false", variant, offset)
				}
			}
			ks := l.Keys()
			if len(ks) != 2 || ks[0] != 20 {
				t.Fatalf("variant %d offset %d: keys %v after delete", variant, offset, ks)
			}
			if msg := l.CheckInvariants(); msg != "" {
				t.Fatalf("variant %d offset %d: %s", variant, offset, msg)
			}
		}
	}
}

func TestGeneralVariantBarrierHeavy(t *testing.T) {
	// The General transform must issue far more barriers than Normalized —
	// that gap is the whole point of Figure 1's Capsules curve.
	count := func(v Variant) uint64 {
		h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: 1})
		l := New(h, v)
		p := h.Proc(0)
		for k := uint64(1); k <= 50; k++ {
			l.Insert(p, k)
		}
		p.ResetStats()
		for k := uint64(1); k <= 50; k++ {
			l.Find(p, k)
		}
		return p.Stats().Barriers
	}
	g, n := count(General), count(Normalized)
	if g < 10*n+10 {
		t.Fatalf("General barriers (%d) not ≫ Normalized (%d)", g, n)
	}
}
