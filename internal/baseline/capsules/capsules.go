// Package capsules implements the paper's Capsules baselines: Harris' list
// made detectably recoverable with the capsules transformation of
// Ben-David, Blelloch, Friedman and Wei (SPAA 2019), on top of the
// recoverable CAS of internal/rcas.
//
// Two variants are provided, matching the paper's evaluation:
//
//   - General — the code is wrapped with the durability transformation of
//     Izraelevitz et al. (DISC 2016): a persistence barrier after every
//     access to shared memory. This is the paper's "Capsules" curve, whose
//     throughput collapses under the barrier count.
//   - Normalized — the hand-tuned normalized form ("Capsules-Opt"): each
//     operation splits into two capsules (search; critical CAS), each
//     checkpointing its continuation state with a single barrier, plus the
//     marked-node traversal rule: a barrier for every logically deleted
//     node the search walks through (this is the thread-count-dependent
//     persistence cost the paper measures in Figure 1b).
//
// Every next field is an rcas location: it holds a pointer to an immutable
// ⟨value, owner⟩ descriptor; the value carries the Harris mark in bit 0.
// Exactly-once semantics for the critical CAS come from rcas recovery;
// capsule checkpoints make re-execution after a crash start from the last
// capsule boundary.
package capsules

import (
	"repro/internal/pmem"
	"repro/internal/rcas"
)

// Node field offsets (words); 2-word nodes (next is an rcas location).
const (
	nKey  = 0
	nNext = 1

	nodeWords = 2
)

// Capsule record field offsets (one cache line per process).
const (
	cPhase   = 0 // 0 = no op in flight, 1 = search capsule, 2 = CAS capsule
	cOp      = 1
	cKey     = 2
	cLoc     = 3 // location of the critical CAS
	cOld     = 4 // expected value of the critical CAS
	cNew     = 5 // new value of the critical CAS
	cSeq     = 6 // seq of the critical CAS
	cCounter = 7 // persisted seq-block watermark
)

// Operation kinds.
const (
	OpInsert uint64 = 1
	OpDelete uint64 = 2
	OpFind   uint64 = 3
)

// Variant selects the persistence placement.
type Variant int

const (
	// General: barrier after every shared-memory access.
	General Variant = iota
	// Normalized: two capsules per operation, hand-tuned persistence.
	Normalized
)

// Sentinel keys.
const (
	MinKey uint64 = 0
	MaxKey uint64 = 1<<64 - 1
)

const seqBlock = 64

func markedv(v uint64) bool   { return v&1 == 1 }
func markv(v uint64) uint64   { return v | 1 }
func unmarkv(v uint64) uint64 { return v &^ 1 }

// List is the capsules-transformed detectably recoverable sorted set.
type List struct {
	h          *pmem.Heap
	sp         *rcas.Space
	variant    Variant
	head, tail pmem.Addr
	caps       pmem.Addr // per-proc capsule record lines

	seqNext  []uint64 // next local seq per proc
	seqLimit []uint64 // end of the reserved block per proc
}

// New builds an empty capsules list.
func New(h *pmem.Heap, variant Variant) *List {
	l := &List{h: h, sp: rcas.NewSpace(h), variant: variant}
	p := h.Proc(0)
	n := uint64(h.NumProcs())
	raw := p.Alloc((n + 1) * pmem.WordsPerLine)
	l.caps = (raw + pmem.WordsPerLine - 1) &^ (pmem.WordsPerLine - 1)
	l.tail = newNode(p, MaxKey)
	l.head = newNode(p, MinKey)
	l.sp.InitLoc(p, l.tail+nNext, 0)
	l.sp.InitLoc(p, l.head+nNext, uint64(l.tail))
	p.PBarrierRange(l.head, nodeWords)
	p.PBarrierRange(l.tail, nodeWords)
	p.PSync()
	l.seqNext = make([]uint64, h.NumProcs())
	l.seqLimit = make([]uint64, h.NumProcs())
	return l
}

func newNode(p *pmem.Proc, key uint64) pmem.Addr {
	nd := p.Alloc(nodeWords)
	p.Store(nd+nKey, key)
	return nd
}

func (l *List) cap0(p *pmem.Proc) pmem.Addr {
	return l.caps + pmem.Addr(p.ID()*pmem.WordsPerLine)
}

// Begin is the system-side invocation step: persistently mark "no capsule
// in flight" so stale records cannot answer for a new operation.
func (l *List) Begin(p *pmem.Proc) {
	c := l.cap0(p)
	p.Store(c+cPhase, 0)
	p.PWB(c + cPhase)
	p.PSync()
}

// gbar is the General-variant barrier after a shared access.
func (l *List) gbar(p *pmem.Proc, a pmem.Addr) {
	if l.variant == General {
		p.PBarrier(a)
	}
}

// read loads a next-field value through its descriptor, applying the
// variant's persistence rules (and the marked-node barrier for Normalized).
func (l *List) read(p *pmem.Proc, loc pmem.Addr) uint64 {
	v := l.sp.Read(p, loc)
	l.gbar(p, loc)
	if l.variant == Normalized && markedv(v) {
		// Hand-tuned rule: persist the marked link before depending on it.
		p.PBarrier(loc)
	}
	return v
}

// nextSeq hands out a fresh per-proc CAS sequence number, reserving blocks
// so the persisted watermark is written once per seqBlock numbers.
func (l *List) nextSeq(p *pmem.Proc) uint64 {
	id := p.ID()
	if l.seqNext[id] >= l.seqLimit[id] {
		c := l.cap0(p)
		base := p.Load(c + cCounter)
		p.Store(c+cCounter, base+seqBlock)
		p.PWB(c + cCounter)
		p.PSync()
		l.seqNext[id] = base + 1
		l.seqLimit[id] = base + seqBlock
	}
	s := l.seqNext[id]
	l.seqNext[id]++
	return s
}

// reseedSeq skips to a fresh block after a crash (local counters are lost).
func (l *List) reseedSeq(p *pmem.Proc) {
	id := p.ID()
	l.seqNext[id] = 0
	l.seqLimit[id] = 0
}

// checkpoint persists a capsule boundary in one barrier.
func (l *List) checkpoint(p *pmem.Proc, phase, op, key, loc, old, new, seq uint64) {
	c := l.cap0(p)
	p.Store(c+cPhase, phase)
	p.Store(c+cOp, op)
	p.Store(c+cKey, key)
	p.Store(c+cLoc, loc)
	p.Store(c+cOld, old)
	p.Store(c+cNew, new)
	p.Store(c+cSeq, seq)
	p.PBarrierRange(c, pmem.WordsPerLine)
	p.PSync()
}

// find is Harris' search over rcas locations. Unlink CASes use fresh seqs
// (their outcome is never queried, but overwritten owners must still be
// notified).
func (l *List) find(p *pmem.Proc, key uint64) (pred, curr pmem.Addr) {
retry:
	for {
		pred = l.head
		curr = pmem.Addr(unmarkv(l.read(p, pred+nNext)))
		for {
			succ := l.read(p, curr+nNext)
			for markedv(succ) {
				if l.sp.CAS(p, pred+nNext, uint64(curr), unmarkv(succ), 0) != uint64(curr) {
					continue retry
				}
				l.gbar(p, pred+nNext)
				curr = pmem.Addr(unmarkv(succ))
				succ = l.read(p, curr+nNext)
			}
			k := p.Load(curr + nKey)
			l.gbar(p, curr+nKey)
			if k >= key {
				return pred, curr
			}
			pred = curr
			curr = pmem.Addr(unmarkv(succ))
		}
	}
}

// Insert adds key; false if present.
func (l *List) Insert(p *pmem.Proc, key uint64) bool {
	l.checkpoint(p, 1, OpInsert, key, 0, 0, 0, 0)
	return l.insertFrom(p, key)
}

func (l *List) insertFrom(p *pmem.Proc, key uint64) bool {
	for {
		pred, curr := l.find(p, key)
		if p.Load(curr+nKey) == key {
			l.finishBool(p, false)
			return false
		}
		nd := newNode(p, key)
		l.sp.InitLoc(p, nd+nNext, uint64(curr))
		p.PBarrierRange(nd, nodeWords)
		seq := l.nextSeq(p)
		l.checkpoint(p, 2, OpInsert, key, uint64(pred+nNext), uint64(curr), uint64(nd), seq)
		if l.sp.CAS(p, pred+nNext, uint64(curr), uint64(nd), seq) == uint64(curr) {
			l.gbar(p, pred+nNext)
			l.finishBool(p, true)
			return true
		}
	}
}

// Delete removes key; false if absent.
func (l *List) Delete(p *pmem.Proc, key uint64) bool {
	l.checkpoint(p, 1, OpDelete, key, 0, 0, 0, 0)
	return l.deleteFrom(p, key)
}

func (l *List) deleteFrom(p *pmem.Proc, key uint64) bool {
	for {
		pred, curr := l.find(p, key)
		if p.Load(curr+nKey) != key {
			l.finishBool(p, false)
			return false
		}
		succ := l.read(p, curr+nNext)
		if markedv(succ) {
			continue
		}
		seq := l.nextSeq(p)
		l.checkpoint(p, 2, OpDelete, key, uint64(curr+nNext), succ, markv(succ), seq)
		if l.sp.CAS(p, curr+nNext, succ, markv(succ), seq) == succ {
			l.gbar(p, curr+nNext)
			// Best-effort unlink.
			l.sp.CAS(p, pred+nNext, uint64(curr), unmarkv(succ), 0)
			l.finishBool(p, true)
			return true
		}
	}
}

// Find reports membership.
func (l *List) Find(p *pmem.Proc, key uint64) bool {
	l.checkpoint(p, 1, OpFind, key, 0, 0, 0, 0)
	curr := l.head
	for {
		k := p.Load(curr + nKey)
		l.gbar(p, curr+nKey)
		if k >= key {
			res := k == key && !markedv(l.read(p, curr+nNext))
			l.finishBool(p, res)
			return res
		}
		curr = pmem.Addr(unmarkv(l.read(p, curr+nNext)))
	}
}

// finishBool persists the response into the capsule record (strict
// recoverability), reusing cOld as the result slot with phase = 3.
func (l *List) finishBool(p *pmem.Proc, res bool) {
	c := l.cap0(p)
	v := uint64(1)
	if res {
		v = 2
	}
	p.Store(c+cOld, v)
	p.Store(c+cPhase, 3)
	p.PBarrierRange(c, pmem.WordsPerLine)
	p.PSync()
}

// Recover resumes an interrupted operation with the same kind and key.
func (l *List) Recover(p *pmem.Proc, op, key uint64) bool {
	l.reseedSeq(p)
	c := l.cap0(p)
	phase := p.Load(c + cPhase)
	if phase == 0 || p.Load(c+cOp) != op || p.Load(c+cKey) != key {
		return l.reinvoke(p, op, key)
	}
	switch phase {
	case 3: // completed: the persisted result stands
		return p.Load(c+cOld) == 2
	case 2: // critical CAS capsule: ask the recoverable CAS
		loc := pmem.Addr(p.Load(c + cLoc))
		seq := p.Load(c + cSeq)
		if l.sp.Recover(p, loc, seq) == rcas.Succeeded {
			if op == OpDelete {
				// Help the physical unlink along on a future traversal.
				l.finishBool(p, true)
				return true
			}
			l.finishBool(p, true)
			return true
		}
		return l.resume(p, op, key)
	default: // search capsule: re-execute it
		return l.resume(p, op, key)
	}
}

func (l *List) reinvoke(p *pmem.Proc, op, key uint64) bool {
	switch op {
	case OpInsert:
		return l.Insert(p, key)
	case OpDelete:
		return l.Delete(p, key)
	default:
		return l.Find(p, key)
	}
}

func (l *List) resume(p *pmem.Proc, op, key uint64) bool {
	switch op {
	case OpInsert:
		return l.insertFrom(p, key)
	case OpDelete:
		return l.deleteFrom(p, key)
	default:
		return l.Find(p, key)
	}
}

// Keys snapshots unmarked keys (test helper; quiescence).
func (l *List) Keys() []uint64 {
	var out []uint64
	h := l.h
	curr := l.readVol(l.head + nNext)
	for pmem.Addr(unmarkv(curr)) != l.tail {
		nd := pmem.Addr(unmarkv(curr))
		next := l.readVol(nd + nNext)
		if !markedv(next) {
			out = append(out, h.ReadVolatile(nd+nKey))
		}
		curr = next
	}
	return out
}

func (l *List) readVol(loc pmem.Addr) uint64 {
	d := pmem.Addr(l.h.ReadVolatile(loc))
	return l.h.ReadVolatile(d) // dVal = 0
}

// CheckInvariants verifies sortedness of unmarked nodes at quiescence.
func (l *List) CheckInvariants() string {
	prev := uint64(0)
	curr := pmem.Addr(unmarkv(l.readVol(l.head + nNext)))
	steps := 0
	for {
		if curr == pmem.Null {
			return "fell off the list"
		}
		if curr == l.tail {
			return ""
		}
		next := l.readVol(curr + nNext)
		k := l.h.ReadVolatile(curr + nKey)
		if !markedv(next) {
			if k <= prev {
				return "unmarked keys not strictly increasing"
			}
			prev = k
		}
		curr = pmem.Addr(unmarkv(next))
		if steps++; steps > 1<<24 {
			return "cycle suspected"
		}
	}
}
