// Package harris implements Harris' lock-free sorted linked list (DISC
// 2001) on the simulated persistent heap — the paper's Harris-LL baseline.
// It is volatile (no persistence instructions, no recovery): in the
// private-cache-model experiments of Figure 4 it marks the upper bound the
// detectable algorithms are measured against, and it is the structural
// basis of the direct-tracking and capsules baselines.
//
// Deletion marks live in bit 0 of a node's next field (node addresses are
// even). Marked nodes are unlinked by traversals.
package harris

import "repro/internal/pmem"

// Node field offsets (words); 2-word nodes.
const (
	nKey  = 0
	nNext = 1

	nodeWords = 2
)

// Sentinel keys; user keys lie strictly between.
const (
	MinKey uint64 = 0
	MaxKey uint64 = 1<<64 - 1
)

func marked(v uint64) bool   { return v&1 == 1 }
func mark(v uint64) uint64   { return v | 1 }
func unmark(v uint64) uint64 { return v &^ 1 }
func ref(v uint64) pmem.Addr { return pmem.Addr(v &^ 1) }

// List is Harris' lock-free sorted set of uint64 keys.
type List struct {
	h          *pmem.Heap
	head, tail pmem.Addr
}

// New builds an empty list.
func New(h *pmem.Heap) *List {
	l := &List{h: h}
	p := h.Proc(0)
	l.tail = newNode(p, MaxKey, 0)
	l.head = newNode(p, MinKey, uint64(l.tail))
	return l
}

func newNode(p *pmem.Proc, key, next uint64) pmem.Addr {
	nd := p.Alloc(nodeWords)
	p.Store(nd+nKey, key)
	p.Store(nd+nNext, next)
	return nd
}

// find returns (pred, curr) with curr the first unmarked node of key ≥ key,
// physically unlinking marked chains it passes (Harris' helping).
func (l *List) find(p *pmem.Proc, key uint64) (pred, curr pmem.Addr) {
retry:
	for {
		pred = l.head
		curr = ref(p.Load(pred + nNext))
		for {
			succ := p.Load(curr + nNext)
			for marked(succ) {
				// curr is logically deleted: unlink it.
				if !p.CASBool(pred+nNext, uint64(curr), unmark(succ)) {
					continue retry
				}
				curr = ref(succ)
				succ = p.Load(curr + nNext)
			}
			if p.Load(curr+nKey) >= key {
				return pred, curr
			}
			pred = curr
			curr = ref(succ)
		}
	}
}

// Insert adds key; false if present.
func (l *List) Insert(p *pmem.Proc, key uint64) bool {
	for {
		pred, curr := l.find(p, key)
		if p.Load(curr+nKey) == key {
			return false
		}
		nd := newNode(p, key, uint64(curr))
		if p.CASBool(pred+nNext, uint64(curr), uint64(nd)) {
			return true
		}
	}
}

// Delete removes key; false if absent.
func (l *List) Delete(p *pmem.Proc, key uint64) bool {
	for {
		pred, curr := l.find(p, key)
		if p.Load(curr+nKey) != key {
			return false
		}
		succ := p.Load(curr + nNext)
		if marked(succ) {
			continue
		}
		if !p.CASBool(curr+nNext, succ, mark(succ)) {
			continue
		}
		// Best-effort physical unlink; traversals finish it otherwise.
		p.CASBool(pred+nNext, uint64(curr), succ)
		return true
	}
}

// Find reports membership (wait-free traversal, no unlinking).
func (l *List) Find(p *pmem.Proc, key uint64) bool {
	curr := l.head
	for p.Load(curr+nKey) < key {
		curr = ref(p.Load(curr + nNext))
	}
	return p.Load(curr+nKey) == key && !marked(p.Load(curr+nNext))
}

// Keys snapshots the unmarked keys (test helper; quiescence).
func (l *List) Keys() []uint64 {
	var out []uint64
	h := l.h
	curr := ref(h.ReadVolatile(l.head + nNext))
	for curr != l.tail {
		next := h.ReadVolatile(curr + nNext)
		if !marked(next) {
			out = append(out, h.ReadVolatile(curr+nKey))
		}
		curr = ref(next)
	}
	return out
}

// CheckInvariants verifies sortedness of unmarked nodes at quiescence.
func (l *List) CheckInvariants() string {
	h := l.h
	prev := uint64(0)
	curr := ref(h.ReadVolatile(l.head + nNext))
	steps := 0
	for {
		if curr == pmem.Null {
			return "fell off the list"
		}
		next := h.ReadVolatile(curr + nNext)
		k := h.ReadVolatile(curr + nKey)
		if !marked(next) {
			if k <= prev {
				return "unmarked keys not strictly increasing"
			}
			prev = k
		}
		if curr == l.tail {
			return ""
		}
		curr = ref(next)
		if steps++; steps > 1<<24 {
			return "cycle suspected"
		}
	}
}
