package harris

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newList(t *testing.T, procs int) (*List, *pmem.Heap) {
	t.Helper()
	h := pmem.NewHeap(pmem.Config{Words: 1 << 21, Procs: procs})
	return New(h), h
}

func TestBasicSemantics(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	if !l.Insert(p, 5) || l.Insert(p, 5) {
		t.Fatal("insert semantics")
	}
	if !l.Find(p, 5) || l.Find(p, 6) {
		t.Fatal("find semantics")
	}
	if !l.Delete(p, 5) || l.Delete(p, 5) {
		t.Fatal("delete semantics")
	}
	if l.Find(p, 5) {
		t.Fatal("found deleted key")
	}
}

func TestModelEquivalence(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	model := map[uint64]bool{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(64) + 1)
		switch rng.Intn(3) {
		case 0:
			if l.Insert(p, k) != !model[k] {
				t.Fatalf("op %d insert(%d)", i, k)
			}
			model[k] = true
		case 1:
			if l.Delete(p, k) != model[k] {
				t.Fatalf("op %d delete(%d)", i, k)
			}
			delete(model, k)
		default:
			if l.Find(p, k) != model[k] {
				t.Fatalf("op %d find(%d)", i, k)
			}
		}
	}
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestConcurrentContended(t *testing.T) {
	const procs, perProc, keys = 8, 500, 8
	l, h := newList(t, procs)
	net := make([]map[uint64]int, procs)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		net[id] = map[uint64]int{}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := h.Proc(id)
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < perProc; i++ {
				k := uint64(rng.Intn(keys) + 1)
				if rng.Intn(2) == 0 {
					if l.Insert(p, k) {
						net[id][k]++
					}
				} else if l.Delete(p, k) {
					net[id][k]--
				}
			}
		}(id)
	}
	wg.Wait()
	if msg := l.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	total := map[uint64]int{}
	for _, m := range net {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range l.Keys() {
		present[k] = true
	}
	for k := uint64(1); k <= keys; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			t.Fatalf("key %d: net %d vs present %v", k, total[k], present[k])
		}
	}
}

func TestNoPersistenceInstructions(t *testing.T) {
	l, h := newList(t, 1)
	p := h.Proc(0)
	p.ResetStats()
	l.Insert(p, 1)
	l.Find(p, 1)
	l.Delete(p, 1)
	s := p.Stats()
	if s.Flushes != 0 || s.Barriers != 0 || s.Syncs != 0 {
		t.Fatalf("volatile baseline issued persistence instructions: %+v", s)
	}
}
