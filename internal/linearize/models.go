package linearize

import (
	"fmt"
	"sort"
	"strings"
)

// Operation kinds shared by the sequential models. Structures map their own
// op codes onto these before checking.
const (
	KindInsert uint64 = 1
	KindDelete uint64 = 2
	KindFind   uint64 = 3

	KindEnq uint64 = 10
	KindDeq uint64 = 11

	KindPush uint64 = 20
	KindPop  uint64 = 21
)

// Responses in model terms (mirrors internal/isb's encoding).
const (
	RespFalse uint64 = 1
	RespTrue  uint64 = 2
	RespEmpty uint64 = 3
	respVBase uint64 = 16
)

// EncodeValue mirrors isb.EncodeValue for payload-carrying responses.
func EncodeValue(v uint64) uint64 { return v + respVBase }

// SetModel is the sequential specification of a set of uint64 keys, with
// Insert/Delete/Find returning RespTrue/RespFalse.
func SetModel() Model {
	type set = map[uint64]bool
	return Model{
		Init: func() interface{} { return set{} },
		Step: func(st interface{}, kind, arg uint64) (interface{}, uint64) {
			s := st.(set)
			switch kind {
			case KindInsert:
				if s[arg] {
					return s, RespFalse
				}
				n := make(set, len(s)+1)
				for k := range s {
					n[k] = true
				}
				n[arg] = true
				return n, RespTrue
			case KindDelete:
				if !s[arg] {
					return s, RespFalse
				}
				n := make(set, len(s))
				for k := range s {
					if k != arg {
						n[k] = true
					}
				}
				return n, RespTrue
			case KindFind:
				if s[arg] {
					return s, RespTrue
				}
				return s, RespFalse
			default:
				return s, 0
			}
		},
		Hash: func(st interface{}) string {
			s := st.(set)
			keys := make([]uint64, 0, len(s))
			for k := range s {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			var b strings.Builder
			for _, k := range keys {
				fmt.Fprintf(&b, "%d,", k)
			}
			return b.String()
		},
	}
}

// OneKeySetModel is the boolean sub-spec used after per-key decomposition.
func OneKeySetModel() Model {
	return Model{
		Init: func() interface{} { return false },
		Step: func(st interface{}, kind, arg uint64) (interface{}, uint64) {
			present := st.(bool)
			switch kind {
			case KindInsert:
				if present {
					return true, RespFalse
				}
				return true, RespTrue
			case KindDelete:
				if !present {
					return false, RespFalse
				}
				return false, RespTrue
			case KindFind:
				if present {
					return present, RespTrue
				}
				return present, RespFalse
			default:
				return present, 0
			}
		},
		Hash: func(st interface{}) string {
			if st.(bool) {
				return "1"
			}
			return "0"
		},
	}
}

// CheckSetHistory decomposes a set history per key and WGL-checks each
// sub-history. It returns the first offending key, or (0, true).
//
// Batched histories (operations sharing one window, ordered by Seq — see
// Operation) decompose soundly: same-key members keep their batch identity
// and Seq, so each sub-history still enforces their program order, while
// cross-key program order dissolves with the decomposition — which is the
// usual commutation argument, since set operations on distinct keys
// commute, a per-key-linearizable history can always be merged into one
// total order that also respects cross-key program order.
func CheckSetHistory(hist []Operation) (uint64, bool) {
	byKey := map[uint64][]Operation{}
	for _, op := range hist {
		byKey[op.Arg] = append(byKey[op.Arg], op)
	}
	model := OneKeySetModel()
	for k, sub := range byKey {
		if !Check(model, sub) {
			return k, false
		}
	}
	return 0, true
}

// CheckShardedSetHistory checks a history over a sharded set (e.g. the
// hash map): operations are first routed per shard with shardOf — distinct
// shards never interact, so the history is linearizable iff every per-shard
// sub-history is — and each shard's sub-history is then checked as a set
// history (which decomposes further per key). Batched histories route each
// batch member to its own shard; same-shard (and same-key) members retain
// their intra-batch program order through Operation.Seq. It returns the first
// offending shard and key, or (0, 0, true).
func CheckShardedSetHistory(hist []Operation, shardOf func(key uint64) int) (int, uint64, bool) {
	byShard := map[int][]Operation{}
	for _, op := range hist {
		s := shardOf(op.Arg)
		byShard[s] = append(byShard[s], op)
	}
	order := make([]int, 0, len(byShard))
	for s := range byShard {
		order = append(order, s)
	}
	sort.Ints(order) // deterministic violation reports
	for _, s := range order {
		if k, ok := CheckSetHistory(byShard[s]); !ok {
			return s, k, false
		}
	}
	return 0, 0, true
}

// QueueModel is the sequential FIFO queue spec. Enq(arg) returns RespTrue;
// Deq returns EncodeValue(v) for the head value or RespEmpty.
func QueueModel() Model {
	type q = []uint64
	return Model{
		Init: func() interface{} { return q(nil) },
		Step: func(st interface{}, kind, arg uint64) (interface{}, uint64) {
			s := st.(q)
			switch kind {
			case KindEnq:
				n := make(q, len(s)+1)
				copy(n, s)
				n[len(s)] = arg
				return n, RespTrue
			case KindDeq:
				if len(s) == 0 {
					return s, RespEmpty
				}
				n := make(q, len(s)-1)
				copy(n, s[1:])
				return n, EncodeValue(s[0])
			default:
				return s, 0
			}
		},
		Hash: func(st interface{}) string {
			s := st.(q)
			var b strings.Builder
			for _, v := range s {
				fmt.Fprintf(&b, "%d,", v)
			}
			return b.String()
		},
	}
}

// StackModel is the sequential LIFO stack spec. Push(arg) returns RespTrue;
// Pop returns EncodeValue(v) or RespEmpty.
func StackModel() Model {
	type stk = []uint64
	return Model{
		Init: func() interface{} { return stk(nil) },
		Step: func(st interface{}, kind, arg uint64) (interface{}, uint64) {
			s := st.(stk)
			switch kind {
			case KindPush:
				n := make(stk, len(s)+1)
				copy(n, s)
				n[len(s)] = arg
				return n, RespTrue
			case KindPop:
				if len(s) == 0 {
					return s, RespEmpty
				}
				n := make(stk, len(s)-1)
				copy(n, s[:len(s)-1])
				return n, EncodeValue(s[len(s)-1])
			default:
				return s, 0
			}
		},
		Hash: func(st interface{}) string {
			s := st.(stk)
			var b strings.Builder
			for _, v := range s {
				fmt.Fprintf(&b, "%d,", v)
			}
			return b.String()
		},
	}
}
