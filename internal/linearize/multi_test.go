package linearize

import "testing"

// multiModels builds the two-set world used throughout: structure 1 and
// structure 2 are independent sets.
func multiModels() map[uint64]Model {
	return map[uint64]Model{1: SetModel(), 2: SetModel()}
}

func single(proc int, st, kind, arg, resp, start, end uint64) MultiOp {
	return MultiOp{Proc: proc, Legs: []Leg{{Struct: st, Kind: kind, Arg: arg, Resp: resp}}, Start: start, End: end}
}

// TestCheckMultiAtomicMove pins the oracle's core judgment: a move
// transaction (delete from set 1, insert into set 2) is a single
// linearization point. A pair of real-time-ordered observers that witness
// "gone from the source" strictly before "not yet in the destination" is
// only explainable by a split transaction, and must be rejected.
func TestCheckMultiAtomicMove(t *testing.T) {
	move := MultiOp{Proc: 0, Legs: []Leg{
		{Struct: 1, Kind: KindDelete, Arg: 5, Resp: RespTrue},
		{Struct: 2, Kind: KindInsert, Arg: 5, Resp: RespTrue},
	}, Start: 10, End: 20}
	seed := single(0, 1, KindInsert, 5, RespTrue, 0, 1)

	// Consistent interleaving: one observer inside the move's window sees
	// the pre-state on both structures (the move linearizes after it).
	ok := []MultiOp{
		seed,
		move,
		single(1, 1, KindFind, 5, RespTrue, 12, 13),  // still in source
		single(1, 2, KindFind, 5, RespFalse, 14, 15), // not yet in dest
		single(1, 2, KindFind, 5, RespTrue, 25, 26),  // after: moved
	}
	if !CheckMulti(multiModels(), ok) {
		t.Fatal("consistent move history rejected")
	}

	// Atomicity violation: observer A sees the source already empty, then
	// — strictly later in real time — observer B sees the destination
	// still empty. A single-point move admits no such pair: A forces the
	// move before it, B forces it after, and A precedes B.
	bad := []MultiOp{
		seed,
		move,
		single(1, 1, KindFind, 5, RespFalse, 12, 13), // source: already gone
		single(1, 2, KindFind, 5, RespFalse, 15, 16), // dest: still missing
	}
	if CheckMulti(multiModels(), bad) {
		t.Fatal("split-transaction history accepted: leg 1's effect was observed without leg 2's")
	}
}

// TestCheckMultiResponseMismatch pins that leg responses constrain the
// search exactly as single-op responses do.
func TestCheckMultiResponseMismatch(t *testing.T) {
	hist := []MultiOp{
		{Proc: 0, Legs: []Leg{
			{Struct: 1, Kind: KindDelete, Arg: 5, Resp: RespTrue}, // but 5 was never inserted
			{Struct: 2, Kind: KindInsert, Arg: 5, Resp: RespTrue},
		}, Start: 0, End: 1},
	}
	if CheckMulti(multiModels(), hist) {
		t.Fatal("accepted a delete-true on an empty set")
	}
}

// TestCheckMultiLegOrderWithinOp pins that legs of one MultiOp apply in
// leg order at the shared point: a same-structure delete-then-insert of
// different keys must evaluate against the intermediate state.
func TestCheckMultiLegOrderWithinOp(t *testing.T) {
	models := map[uint64]Model{1: SetModel()}
	hist := []MultiOp{
		single(0, 1, KindInsert, 5, RespTrue, 0, 1),
		{Proc: 0, Legs: []Leg{
			{Struct: 1, Kind: KindDelete, Arg: 5, Resp: RespTrue},
			{Struct: 1, Kind: KindInsert, Arg: 5, Resp: RespTrue}, // re-insert succeeds only AFTER the delete
		}, Start: 2, End: 3},
		single(0, 1, KindFind, 5, RespTrue, 4, 5),
	}
	if !CheckMulti(models, hist) {
		t.Fatal("in-order legs rejected")
	}
	swapped := []MultiOp{
		hist[0],
		{Proc: 0, Legs: []Leg{
			{Struct: 1, Kind: KindInsert, Arg: 5, Resp: RespTrue}, // would be false before the delete
			{Struct: 1, Kind: KindDelete, Arg: 5, Resp: RespTrue},
		}, Start: 2, End: 3},
	}
	if CheckMulti(models, swapped) {
		t.Fatal("out-of-order legs accepted")
	}
}

// TestCheckMultiEmptyAndPlain pins the degenerate shapes: the empty
// history, and a plain single-leg interleaving equivalent to Check's.
func TestCheckMultiEmptyAndPlain(t *testing.T) {
	if !CheckMulti(multiModels(), nil) {
		t.Fatal("empty history rejected")
	}
	hist := []MultiOp{
		single(0, 1, KindInsert, 7, RespTrue, 0, 10),
		single(1, 1, KindInsert, 7, RespFalse, 2, 3), // must linearize after proc 0's insert
	}
	if !CheckMulti(multiModels(), hist) {
		t.Fatal("overlapping single-leg history rejected")
	}
	bad := []MultiOp{
		single(0, 1, KindInsert, 7, RespFalse, 0, 1), // nothing inserted it first
	}
	if CheckMulti(multiModels(), bad) {
		t.Fatal("impossible single-leg response accepted")
	}
}
