package linearize

import (
	"fmt"
	"sort"
	"strings"
)

// This file extends the WGL checker to multi-structure histories: each
// history entry is a MultiOp whose legs all take effect at ONE
// linearization point, applied to their structures' sub-states in leg
// order. It is the cross-structure atomicity oracle behind the transaction
// tests — a history in which some observer saw leg 1's effect without
// leg 2's (or the reverse order across structures) admits no such single
// point and fails the check. Plain operations participate as one-leg
// MultiOps, so transactional and ordinary traffic check under one oracle.

// Leg is one structure-local effect of a MultiOp: which structure it
// applied to (the model key in CheckMulti's models map), the operation,
// and the response it must have produced. Elided legs (a transaction's
// skipped leg 2) perform no effect and carry no checkable response — the
// caller simply omits them.
type Leg struct {
	Struct uint64
	Kind   uint64
	Arg    uint64
	Resp   uint64
}

// MultiOp is one atomic history entry: all Legs linearize at a single
// point between Start and End (timestamps from the same shared counter as
// Operation's). Entries sharing Proc, Start and End are program-ordered by
// Seq, exactly as batched Operations are; independent entries leave Seq
// zero.
type MultiOp struct {
	Proc  int
	Legs  []Leg
	Start uint64
	End   uint64
	Seq   uint64
}

// multiState is the composite sequential state: one sub-state per
// structure, hashed in sorted structure order.
type multiState struct {
	ids  []uint64
	subs map[uint64]interface{}
}

func (s multiState) hash(models map[uint64]Model) string {
	var b strings.Builder
	for _, id := range s.ids {
		fmt.Fprintf(&b, "%d:%s;", id, models[id].Hash(s.subs[id]))
	}
	return b.String()
}

// step applies every leg of op at one point, in leg order. It returns the
// successor composite state, or ok=false if any leg's response disagrees
// with the model.
func (s multiState) step(models map[uint64]Model, op MultiOp) (multiState, bool) {
	next := multiState{ids: s.ids, subs: make(map[uint64]interface{}, len(s.subs))}
	for id, sub := range s.subs {
		next.subs[id] = sub
	}
	for _, leg := range op.Legs {
		m, ok := models[leg.Struct]
		if !ok {
			panic(fmt.Sprintf("linearize: MultiOp leg on structure %d with no model", leg.Struct))
		}
		sub, resp := m.Step(next.subs[leg.Struct], leg.Kind, leg.Arg)
		if resp != leg.Resp {
			return multiState{}, false
		}
		next.subs[leg.Struct] = sub
	}
	return next, true
}

// CheckMulti reports whether hist is linearizable with every MultiOp's
// legs applied atomically. models maps each structure identity appearing
// in the history to its sequential specification.
func CheckMulti(models map[uint64]Model, hist []MultiOp) bool {
	n := len(hist)
	if n == 0 {
		return true
	}
	if n > MaxOps {
		panic(fmt.Sprintf("linearize: history of %d multi-ops exceeds MaxOps=%d; decompose it first", n, MaxOps))
	}
	ops := make([]MultiOp, n)
	copy(ops, hist)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		return ops[i].Seq < ops[j].Seq
	})

	// Same batch-program-order rule as Check: an entry whose same-window
	// predecessor is untaken is not a candidate.
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
		for j := 0; j < n; j++ {
			if i != j && ops[j].Proc == ops[i].Proc &&
				ops[j].Start == ops[i].Start && ops[j].End == ops[i].End &&
				ops[j].Seq+1 == ops[i].Seq {
				prev[i] = j
				break
			}
		}
	}

	init := multiState{subs: make(map[uint64]interface{}, len(models))}
	for id, m := range models {
		init.ids = append(init.ids, id)
		init.subs[id] = m.Init()
	}
	sort.Slice(init.ids, func(i, j int) bool { return init.ids[i] < init.ids[j] })

	memo := map[string]bool{}
	var search func(mask uint64, state multiState) bool
	search = func(mask uint64, state multiState) bool {
		if mask == (uint64(1)<<uint(n))-1 {
			return true
		}
		key := fmt.Sprintf("%x|%s", mask, state.hash(models))
		if v, ok := memo[key]; ok {
			return v
		}
		minEnd := ^uint64(0)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		ok := false
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			if ops[i].Start > minEnd {
				continue
			}
			if j := prev[i]; j >= 0 && mask&(1<<uint(j)) == 0 {
				continue
			}
			next, match := state.step(models, ops[i])
			if !match {
				continue
			}
			if search(mask|(1<<uint(i)), next) {
				ok = true
				break
			}
		}
		memo[key] = ok
		return ok
	}
	return search(0, init)
}
