// Package linearize checks histories of concurrent operations for
// linearizability with the Wing-Gong / WGL algorithm (memoized search over
// linearization prefixes). It is the oracle behind the crash-recovery tests:
// after every simulated crash storm, the recorded history — completed
// operations plus operations whose responses were obtained through recovery
// — must be linearizable with respect to the sequential specification.
//
// Histories are limited to 64 operations per Check call (a bitmask bounds
// the search state). Set histories are first decomposed per key — set
// operations on distinct keys commute, so a history over a set object is
// linearizable iff each per-key sub-history is — which keeps sub-histories
// small in long runs.
package linearize

import (
	"fmt"
	"sort"
)

// Operation is one completed operation in a history. Start and End are
// logical timestamps from a shared monotone counter: Op a precedes Op b in
// real time iff a.End < b.Start.
//
// Operations admitted through one batch window (Runtime.ApplyBatch) share
// the window's Start/End — the harness cannot observe where inside the
// window each member executed — and carry their batch position in Seq.
// Check treats members of the same batch (same Proc, Start and End) as
// program-ordered by Seq: member i must linearize before member i+1, even
// though their intervals coincide. Single operations leave Seq zero; their
// per-proc program order is already implied by their disjoint timestamps.
type Operation struct {
	Proc  int
	Kind  uint64
	Arg   uint64
	Resp  uint64
	Start uint64
	End   uint64
	Seq   uint64
}

// Model is a sequential specification. Step applies an operation to a
// state, returning the successor state and the response the operation must
// have produced. Hash must uniquely identify a state (used for memoization).
type Model struct {
	Init func() interface{}
	Step func(state interface{}, kind, arg uint64) (interface{}, uint64)
	Hash func(state interface{}) string
}

// MaxOps is the largest history Check accepts.
const MaxOps = 64

// Check reports whether hist is linearizable with respect to m.
func Check(m Model, hist []Operation) bool {
	n := len(hist)
	if n == 0 {
		return true
	}
	if n > MaxOps {
		panic(fmt.Sprintf("linearize: history of %d ops exceeds MaxOps=%d; decompose it first", n, MaxOps))
	}
	ops := make([]Operation, n)
	copy(ops, hist)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		return ops[i].Seq < ops[j].Seq
	})

	// prev[i] is the index of op i's program-order predecessor inside its
	// batch (same proc and window, Seq one less), or -1: the WGL candidate
	// rule below refuses to take an op whose predecessor is untaken.
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
		for j := 0; j < n; j++ {
			if i != j && ops[j].Proc == ops[i].Proc &&
				ops[j].Start == ops[i].Start && ops[j].End == ops[i].End &&
				ops[j].Seq+1 == ops[i].Seq {
				prev[i] = j
				break
			}
		}
	}

	memo := map[string]bool{}
	var search func(mask uint64, state interface{}) bool
	search = func(mask uint64, state interface{}) bool {
		if mask == (uint64(1)<<uint(n))-1 {
			return true
		}
		key := fmt.Sprintf("%x|%s", mask, m.Hash(state))
		if v, ok := memo[key]; ok {
			return v
		}
		// An untaken op is a candidate iff it starts before every other
		// untaken op ends (otherwise some op strictly precedes it).
		minEnd := ^uint64(0)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 && ops[i].End < minEnd {
				minEnd = ops[i].End
			}
		}
		ok := false
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			if ops[i].Start > minEnd {
				continue
			}
			if j := prev[i]; j >= 0 && mask&(1<<uint(j)) == 0 {
				continue // earlier member of the same batch still untaken
			}
			next, resp := m.Step(state, ops[i].Kind, ops[i].Arg)
			if resp != ops[i].Resp {
				continue
			}
			if search(mask|(1<<uint(i)), next) {
				ok = true
				break
			}
		}
		memo[key] = ok
		return ok
	}
	return search(0, m.Init())
}

// Explain returns "" if hist is linearizable, else a short description.
func Explain(m Model, hist []Operation) string {
	if Check(m, hist) {
		return ""
	}
	return fmt.Sprintf("history of %d ops is not linearizable", len(hist))
}
