package linearize

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// seqHistory builds a history that IS a sequential execution of the model
// (so it must always check out).
func seqHistory(m Model, kinds []uint64, args []uint64) []Operation {
	st := m.Init()
	var hist []Operation
	var clock uint64
	for i := range kinds {
		var resp uint64
		st, resp = m.Step(st, kinds[i], args[i])
		start := clock
		clock++
		end := clock
		clock++
		hist = append(hist, Operation{Proc: i % 3, Kind: kinds[i], Arg: args[i], Resp: resp, Start: start, End: end})
	}
	return hist
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	if !Check(SetModel(), nil) {
		t.Fatal("empty history rejected")
	}
}

func TestSequentialSetHistoryAccepted(t *testing.T) {
	kinds := []uint64{KindInsert, KindFind, KindInsert, KindDelete, KindFind}
	args := []uint64{5, 5, 5, 5, 5}
	if !Check(SetModel(), seqHistory(SetModel(), kinds, args)) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestWrongResponseRejected(t *testing.T) {
	h := seqHistory(SetModel(), []uint64{KindInsert, KindFind}, []uint64{1, 1})
	h[1].Resp = RespFalse // Find(1) after Insert(1) cannot be false sequentially
	if Check(SetModel(), h) {
		t.Fatal("invalid history accepted")
	}
}

func TestOverlapAllowsReorder(t *testing.T) {
	// Insert(1) and Find(1)=false overlap: Find may linearize first.
	h := []Operation{
		{Kind: KindInsert, Arg: 1, Resp: RespTrue, Start: 0, End: 10},
		{Kind: KindFind, Arg: 1, Resp: RespFalse, Start: 1, End: 9},
	}
	if !Check(SetModel(), h) {
		t.Fatal("overlapping reorder rejected")
	}
	// But if the Find strictly follows the Insert, false is impossible.
	h[1].Start, h[1].End = 11, 12
	if Check(SetModel(), h) {
		t.Fatal("real-time order violated yet accepted")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Two sequential Inserts of the same key: second must return false.
	h := []Operation{
		{Kind: KindInsert, Arg: 7, Resp: RespTrue, Start: 0, End: 1},
		{Kind: KindInsert, Arg: 7, Resp: RespTrue, Start: 2, End: 3},
	}
	if Check(SetModel(), h) {
		t.Fatal("double successful insert accepted")
	}
	h[1].Resp = RespFalse
	if !Check(SetModel(), h) {
		t.Fatal("insert/insert-false rejected")
	}
}

func TestQueueModelFIFO(t *testing.T) {
	m := QueueModel()
	h := []Operation{
		{Kind: KindEnq, Arg: 1, Resp: RespTrue, Start: 0, End: 1},
		{Kind: KindEnq, Arg: 2, Resp: RespTrue, Start: 2, End: 3},
		{Kind: KindDeq, Resp: EncodeValue(1), Start: 4, End: 5},
		{Kind: KindDeq, Resp: EncodeValue(2), Start: 6, End: 7},
		{Kind: KindDeq, Resp: RespEmpty, Start: 8, End: 9},
	}
	if !Check(m, h) {
		t.Fatal("valid FIFO history rejected")
	}
	// LIFO order must be rejected.
	h[2].Resp, h[3].Resp = EncodeValue(2), EncodeValue(1)
	if Check(m, h) {
		t.Fatal("LIFO over a queue accepted")
	}
}

func TestQueueOverlappingEnqueues(t *testing.T) {
	m := QueueModel()
	// Two overlapping enqueues: either dequeue order is linearizable.
	h := []Operation{
		{Kind: KindEnq, Arg: 1, Resp: RespTrue, Start: 0, End: 10},
		{Kind: KindEnq, Arg: 2, Resp: RespTrue, Start: 0, End: 10},
		{Kind: KindDeq, Resp: EncodeValue(2), Start: 11, End: 12},
		{Kind: KindDeq, Resp: EncodeValue(1), Start: 13, End: 14},
	}
	if !Check(m, h) {
		t.Fatal("overlapping enqueue reorder rejected")
	}
}

func TestStackModelLIFO(t *testing.T) {
	m := StackModel()
	h := []Operation{
		{Kind: KindPush, Arg: 1, Resp: RespTrue, Start: 0, End: 1},
		{Kind: KindPush, Arg: 2, Resp: RespTrue, Start: 2, End: 3},
		{Kind: KindPop, Resp: EncodeValue(2), Start: 4, End: 5},
		{Kind: KindPop, Resp: EncodeValue(1), Start: 6, End: 7},
		{Kind: KindPop, Resp: RespEmpty, Start: 8, End: 9},
	}
	if !Check(m, h) {
		t.Fatal("valid LIFO history rejected")
	}
	h[2].Resp, h[3].Resp = EncodeValue(1), EncodeValue(2)
	if Check(m, h) {
		t.Fatal("FIFO over a stack accepted")
	}
}

func TestCheckSetHistoryDecomposition(t *testing.T) {
	var hist []Operation
	var clock uint64
	for k := uint64(1); k <= 30; k++ { // 30 keys × 3 ops = 90 ops > MaxOps
		for _, kind := range []uint64{KindInsert, KindFind, KindDelete} {
			hist = append(hist, Operation{Kind: kind, Arg: k, Resp: RespTrue, Start: clock, End: clock + 1})
			clock += 2
		}
	}
	if k, ok := CheckSetHistory(hist); !ok {
		t.Fatalf("valid decomposed history rejected at key %d", k)
	}
	hist[1].Resp = RespFalse // Find(1) right after Insert(1)
	if _, ok := CheckSetHistory(hist); ok {
		t.Fatal("invalid decomposed history accepted")
	}
}

func TestCheckShardedSetHistoryDecomposition(t *testing.T) {
	shardOf := func(k uint64) int { return int(k % 4) }
	var hist []Operation
	var clock uint64
	for k := uint64(1); k <= 40; k++ { // 40 keys × 2 ops = 80 ops > MaxOps
		for _, kind := range []uint64{KindInsert, KindDelete} {
			hist = append(hist, Operation{Kind: kind, Arg: k, Resp: RespTrue, Start: clock, End: clock + 1})
			clock += 2
		}
	}
	if s, k, ok := CheckShardedSetHistory(hist, shardOf); !ok {
		t.Fatalf("valid sharded history rejected at shard %d key %d", s, k)
	}
	hist[1].Resp = RespFalse // Delete(1) right after a successful Insert(1)
	s, k, ok := CheckShardedSetHistory(hist, shardOf)
	if ok {
		t.Fatal("invalid sharded history accepted")
	}
	if s != shardOf(1) || k != 1 {
		t.Fatalf("violation located at shard %d key %d, want shard %d key 1", s, k, shardOf(1))
	}
}

// TestQuickSequentialAlwaysLinearizable: any history generated by actually
// running the model sequentially must be accepted, for all three models.
func TestQuickSequentialAlwaysLinearizable(t *testing.T) {
	models := map[string]Model{"set": SetModel(), "queue": QueueModel(), "stack": StackModel()}
	kindsFor := map[string][]uint64{
		"set":   {KindInsert, KindDelete, KindFind},
		"queue": {KindEnq, KindDeq},
		"stack": {KindPush, KindPop},
	}
	for name, m := range models {
		m := m
		ks := kindsFor[name]
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			n := rng.Intn(20) + 1
			kinds := make([]uint64, n)
			args := make([]uint64, n)
			for i := range kinds {
				kinds[i] = ks[rng.Intn(len(ks))]
				args[i] = uint64(rng.Intn(5) + 1)
			}
			return Check(m, seqHistory(m, kinds, args))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestQuickMutatedResponseUsuallyRejected: flipping a boolean response in a
// same-key sequential set history must always break linearizability when
// the op is a Find (its response is uniquely determined).
func TestQuickMutatedFindRejected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		kinds := make([]uint64, n)
		args := make([]uint64, n)
		for i := range kinds {
			kinds[i] = []uint64{KindInsert, KindDelete, KindFind}[rng.Intn(3)]
			args[i] = 1 // single key: every response is determined
		}
		h := seqHistory(SetModel(), kinds, args)
		i := rng.Intn(n)
		if h[i].Resp == RespTrue {
			h[i].Resp = RespFalse
		} else {
			h[i].Resp = RespTrue
		}
		return !Check(SetModel(), h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPanicsBeyondMaxOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized history not rejected")
		}
	}()
	big := make([]Operation, MaxOps+1)
	for i := range big {
		big[i] = Operation{Kind: KindFind, Arg: 1, Resp: RespFalse,
			Start: uint64(2 * i), End: uint64(2*i + 1)}
	}
	Check(SetModel(), big)
}

func TestExplain(t *testing.T) {
	if Explain(SetModel(), nil) != "" {
		t.Fatal("empty history should explain as linearizable")
	}
	bad := []Operation{{Kind: KindFind, Arg: 1, Resp: RespTrue, Start: 0, End: 1}}
	if Explain(SetModel(), bad) == "" {
		t.Fatal("Find(1)=true on an empty set should not be linearizable")
	}
}

// TestBatchProgramOrder: members of one batch share the window's
// timestamps but must linearize in Seq order. An insert followed by a find
// of the same key inside one batch can only answer true; without the Seq
// constraint the find could linearize first and false would pass.
func TestBatchProgramOrder(t *testing.T) {
	batch := func(proc int, start, end uint64, ops ...Operation) []Operation {
		for i := range ops {
			ops[i].Proc = proc
			ops[i].Start, ops[i].End = start, end
			ops[i].Seq = uint64(i)
		}
		return ops
	}

	bad := batch(0, 1, 10,
		Operation{Kind: KindInsert, Arg: 5, Resp: RespTrue},
		Operation{Kind: KindFind, Arg: 5, Resp: RespFalse},
	)
	if _, ok := CheckSetHistory(bad); ok {
		t.Fatal("find=false after same-batch insert accepted: intra-batch program order not enforced")
	}

	good := batch(0, 1, 10,
		Operation{Kind: KindInsert, Arg: 5, Resp: RespTrue},
		Operation{Kind: KindFind, Arg: 5, Resp: RespTrue},
	)
	if _, ok := CheckSetHistory(good); !ok {
		t.Fatal("consistent single-proc batch rejected")
	}
}

// TestBatchInterleavedAcrossProcs: two procs' batches over one key with
// overlapping windows. The responses only admit a linearization that
// interleaves the two batches (p1's delete=true needs p0's insert first,
// p0's later find=false needs p1's delete in between), which per-batch
// program order permits; flipping p0's find to true AND p1's find to false
// admits none.
func TestBatchInterleavedAcrossProcs(t *testing.T) {
	mk := func(p0find, p1find uint64) []Operation {
		return []Operation{
			{Proc: 0, Kind: KindInsert, Arg: 5, Resp: RespTrue, Start: 1, End: 10, Seq: 0},
			{Proc: 0, Kind: KindFind, Arg: 5, Resp: p0find, Start: 1, End: 10, Seq: 1},
			{Proc: 1, Kind: KindDelete, Arg: 5, Resp: RespTrue, Start: 2, End: 11, Seq: 0},
			{Proc: 1, Kind: KindFind, Arg: 5, Resp: p1find, Start: 2, End: 11, Seq: 1},
		}
	}
	if _, ok := CheckSetHistory(mk(RespFalse, RespFalse)); !ok {
		t.Fatal("interleavable cross-proc batches rejected")
	}
	if _, ok := CheckSetHistory(mk(RespTrue, RespTrue)); !ok {
		// insert, find=true, delete, find... p1's find would need the key
		// present after its own delete — only satisfiable by ordering p0's
		// whole batch after p1's delete and before p1's find: delete=true
		// needs a prior insert though. Sanity-check the checker agrees.
		t.Log("note: mk(true,true) accepted")
	}
	if _, ok := CheckSetHistory(mk(RespFalse, RespTrue)); ok {
		t.Fatal("contradictory batch interleaving accepted: p0 find=false needs delete between p0's ops, p1 find=true needs insert after delete — but p0's insert precedes its find")
	}
}
