package repro

// MatchReport consumes one RecoverAll report entry on behalf of a caller
// that crashed mid-submission and still holds the window's unanswered
// operations in order. It aligns the report against pending and delivers
// every operation the report proves durable, returning how many leading
// operations of pending were resolved — the caller re-submits the rest.
//
// Four shapes arise, all handled here (and pinned by TestMatchReport):
//
//   - Transaction report (rep.Txn != nil): a two-leg transaction occupies
//     pending[0] (leg 1) and pending[1] (leg 2). TxnNoEffect resolves
//     nothing — neither structure changed, the caller re-submits the whole
//     transaction. Any other class proves BOTH legs durable (recovery
//     rolls leg 2 forward before reporting), so both legs deliver at once
//     — iff both announced leg operations match their pending positions;
//     a mismatch is a stale report from an earlier, answered transaction.
//     Matching is on the ANNOUNCED operations, so an ArgFromLeg1 leg 2
//     compares by the argument the caller submitted, not the derived one.
//   - Single-op report (rep.Batch == nil): a one-operation remainder
//     announces like a plain operation. It resolves pending[0] iff the
//     reported operation is exactly pending[0]; otherwise the entry is a
//     previous operation's idempotent re-confirmation and nothing resolves.
//   - Batch prefix: batch entries resolve pending in lockstep until the
//     first no-effect entry (the unstarted suffix performed no tracked
//     writes) — the completed prefix and the recovered in-flight operation
//     both deliver their durable responses.
//   - Stale report: an entry that does not match its pending position
//     belongs to an earlier, fully answered window (the crash landed after
//     completion but before the next announcement retired it). Matching
//     stops immediately and resolves nothing; the durable effects it
//     describes were already delivered the first time.
//
// deliver is called once per resolved operation, in order, with the
// operation's index in pending and its durable response. Callers that key
// operations by an identity riding Op.Arg (see HashMap.SetArgMask) get
// exact stale-window rejection for free: a stale entry's Arg carries the
// old window's identity and cannot equal the pending one's.
func MatchReport(rep ProcReport, pending []Op, deliver func(i int, op Op, resp Resp)) int {
	// The transaction branch must run before the single-op one: a txn
	// report mirrors one leg into rep.Op/rep.Resp for display, and that
	// mirror must never resolve pending[0] as if it were a lone operation.
	if rep.Txn != nil {
		t := rep.Txn
		if t.Class == TxnNoEffect {
			return 0
		}
		if len(pending) >= 2 && t.Legs[0].Op == pending[0] && t.Legs[1].Op == pending[1] {
			deliver(0, pending[0], t.Legs[0].Resp)
			deliver(1, pending[1], t.Legs[1].Resp)
			return 2
		}
		return 0
	}
	if rep.Batch == nil {
		if len(pending) > 0 && rep.Op == pending[0] {
			deliver(0, pending[0], rep.Resp)
			return 1
		}
		return 0
	}
	resolved := 0
	for i, ent := range rep.Batch {
		if ent.Status == OpNoEffect || i >= len(pending) || ent.Op != pending[i] {
			break
		}
		deliver(i, ent.Op, ent.Resp)
		resolved = i + 1
	}
	return resolved
}
