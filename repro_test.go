package repro

import "testing"

func TestPublicListLifecycle(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 2, CrashSim: true, Engine: e.kind})
			l := rt.NewList()
			p := rt.Proc(0)
			if !l.Insert(p, 42) || !l.Find(p, 42) {
				t.Fatal("insert/find through public API failed")
			}
			rt.ScheduleCrash(8)
			if rt.Run(func() { l.Insert(p, 7) }) {
				// The crash may land after the op completed; then nothing to do.
				rt.CancelCrash()
			} else {
				rt.Restart()
				if !l.Recover(p, OpInsert, 7) {
					t.Fatal("recovery returned false for a fresh key")
				}
			}
			ks := l.Keys()
			if len(ks) != 2 || ks[0] != 7 || ks[1] != 42 {
				t.Fatalf("Keys = %v", ks)
			}
		})
	}
}

func TestPublicQueueRecovery(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 1, CrashSim: true, Engine: e.kind})
			q := rt.NewQueue()
			p := rt.Proc(0)
			q.Enqueue(p, 1)
			rt.ScheduleCrash(5)
			if !rt.Run(func() { q.Enqueue(p, 2) }) {
				rt.Restart()
				q.RecoverEnqueue(p, 2)
			} else {
				rt.CancelCrash()
			}
			v1, ok1 := q.Dequeue(p)
			v2, ok2 := q.Dequeue(p)
			if !ok1 || !ok2 || v1 != 1 || v2 != 2 {
				t.Fatalf("dequeued (%d,%v) (%d,%v)", v1, ok1, v2, ok2)
			}
			if _, ok := q.Dequeue(p); ok {
				t.Fatal("phantom element")
			}
		})
	}
}

func TestPublicBSTAndStack(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 1, CrashSim: true, Engine: e.kind})
			b := rt.NewBST()
			p := rt.Proc(0)
			for _, k := range []uint64{5, 3, 9} {
				if !b.Insert(p, k) {
					t.Fatalf("BST insert %d", k)
				}
			}
			if got := b.Keys(); len(got) != 3 || got[0] != 3 {
				t.Fatalf("BST keys %v", got)
			}
			s := rt.NewStack(0)
			s.Push(p, 10)
			s.Push(p, 20)
			if v, ok := s.Pop(p); !ok || v != 20 {
				t.Fatalf("stack pop (%d,%v)", v, ok)
			}
		})
	}
}

func TestPublicHashMapLifecycle(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 2, CrashSim: true, Engine: e.kind})
			m := rt.NewHashMap(8)
			if m.NumShards() != 8 {
				t.Fatalf("NumShards = %d", m.NumShards())
			}
			p := rt.Proc(0)
			if !m.Insert(p, 42) || !m.Find(p, 42) || m.Insert(p, 42) {
				t.Fatal("insert/find through public API failed")
			}
			rt.ScheduleCrash(12)
			if rt.Run(func() { m.Insert(p, 7) }) {
				// The crash may land after the op completed; then nothing to do.
				rt.CancelCrash()
			} else {
				rt.Restart()
				if !m.Recover(p, OpInsert, 7) {
					t.Fatal("recovery returned false for a fresh key")
				}
			}
			ks := m.Keys()
			if len(ks) != 2 || ks[0] != 7 || ks[1] != 42 {
				t.Fatalf("Keys = %v", ks)
			}
			if !m.Delete(p, 42) || m.Find(p, 42) {
				t.Fatal("delete through public API failed")
			}
		})
	}
}

func TestPublicExchangerTimeout(t *testing.T) {
	rt := New(Config{Procs: 1, CrashSim: true})
	e := rt.NewExchanger()
	if _, ok := e.Exchange(rt.Proc(0), 5, 2); ok {
		t.Fatal("lonely exchange succeeded")
	}
}

func TestPrivateCacheModelThroughAPI(t *testing.T) {
	rt := New(Config{Procs: 1, Model: PrivateCache})
	l := rt.NewList()
	p := rt.Proc(0)
	if !l.Insert(p, 1) || !l.Delete(p, 1) {
		t.Fatal("private-cache list ops failed")
	}
}
