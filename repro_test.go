package repro

import "testing"

func TestPublicListLifecycle(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 2, CrashSim: true, Engine: e.kind})
			l := rt.NewList()
			p := rt.Proc(0)
			if !l.Insert(p, 42) || !l.Find(p, 42) {
				t.Fatal("insert/find through public API failed")
			}
			rt.ScheduleCrash(8)
			if rt.Run(func() { l.Insert(p, 7) }) {
				// The crash may land after the op completed; then nothing to do.
				rt.CancelCrash()
			} else {
				rt.Restart()
				if !l.Recover(p, OpInsert, 7) {
					t.Fatal("recovery returned false for a fresh key")
				}
			}
			ks := l.Keys()
			if len(ks) != 2 || ks[0] != 7 || ks[1] != 42 {
				t.Fatalf("Keys = %v", ks)
			}
		})
	}
}

func TestPublicQueueRecovery(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 1, CrashSim: true, Engine: e.kind})
			q := rt.NewQueue()
			p := rt.Proc(0)
			q.Enqueue(p, 1)
			rt.ScheduleCrash(5)
			if !rt.Run(func() { q.Enqueue(p, 2) }) {
				rt.Restart()
				q.RecoverEnqueue(p, 2)
			} else {
				rt.CancelCrash()
			}
			v1, ok1 := q.Dequeue(p)
			v2, ok2 := q.Dequeue(p)
			if !ok1 || !ok2 || v1 != 1 || v2 != 2 {
				t.Fatalf("dequeued (%d,%v) (%d,%v)", v1, ok1, v2, ok2)
			}
			if _, ok := q.Dequeue(p); ok {
				t.Fatal("phantom element")
			}
		})
	}
}

func TestPublicBSTAndStack(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 1, CrashSim: true, Engine: e.kind})
			b := rt.NewBST()
			p := rt.Proc(0)
			for _, k := range []uint64{5, 3, 9} {
				if !b.Insert(p, k) {
					t.Fatalf("BST insert %d", k)
				}
			}
			if got := b.Keys(); len(got) != 3 || got[0] != 3 {
				t.Fatalf("BST keys %v", got)
			}
			s := rt.NewStack(0)
			s.Push(p, 10)
			s.Push(p, 20)
			if v, ok := s.Pop(p); !ok || v != 20 {
				t.Fatalf("stack pop (%d,%v)", v, ok)
			}
		})
	}
}

func TestPublicHashMapLifecycle(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			rt := New(Config{Procs: 2, CrashSim: true, Engine: e.kind})
			m := rt.NewHashMap(8)
			if m.NumShards() != 8 {
				t.Fatalf("NumShards = %d", m.NumShards())
			}
			p := rt.Proc(0)
			if !m.Insert(p, 42) || !m.Find(p, 42) || m.Insert(p, 42) {
				t.Fatal("insert/find through public API failed")
			}
			rt.ScheduleCrash(12)
			if rt.Run(func() { m.Insert(p, 7) }) {
				// The crash may land after the op completed; then nothing to do.
				rt.CancelCrash()
			} else {
				rt.Restart()
				if !m.Recover(p, OpInsert, 7) {
					t.Fatal("recovery returned false for a fresh key")
				}
			}
			ks := m.Keys()
			if len(ks) != 2 || ks[0] != 7 || ks[1] != 42 {
				t.Fatalf("Keys = %v", ks)
			}
			if !m.Delete(p, 42) || m.Find(p, 42) {
				t.Fatal("delete through public API failed")
			}
		})
	}
}

func TestPublicExchangerTimeout(t *testing.T) {
	rt := New(Config{Procs: 1, CrashSim: true})
	e := rt.NewExchanger()
	if _, ok := e.Exchange(rt.Proc(0), 5, 2); ok {
		t.Fatal("lonely exchange succeeded")
	}
}

// TestRecoverAllRoutesAnnouncedOps drives crashes at a range of offsets
// into a list insert while a second proc has a completed queue enqueue
// outstanding, and checks the registry-routed report: the interrupted
// operation is found, routed to the right structure, and resolved; the
// completed operation is at most idempotently re-confirmed; a crash that
// precedes the durable announcement yields no report entry and the
// operation can simply be re-submitted. Also checks RecoverAll is
// re-runnable (announcements persist until the next Begin).
func TestRecoverAllRoutesAnnouncedOps(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			routed, absent := 0, 0
			for off := uint64(1); off <= 40; off++ {
				rt := New(Config{Procs: 2, CrashSim: true, HeapWords: 1 << 20, Engine: e.kind})
				l := rt.NewList()
				q := rt.NewQueue()
				p0, p1 := rt.Proc(0), rt.Proc(1)
				l.Insert(p0, 5)
				q.Enqueue(p1, 9)
				l.Begin(p0)
				rt.ScheduleCrash(off)
				if rt.Run(func() { l.Apply(p0, Op{Kind: OpInsert, Arg: 7}) }) {
					rt.CancelCrash()
					continue
				}
				rt.Restart()
				reps := rt.RecoverAll()
				var mine *ProcReport
				for i := range reps {
					rep := reps[i]
					switch rep.Proc {
					case 0:
						mine = &reps[i]
					case 1:
						// p1's enqueue completed before the crash; its
						// announcement may still be set, in which case
						// recovery idempotently re-confirms it.
						if rep.StructID != q.ID() || rep.Op != (Op{Kind: OpEnq, Arg: 9}) || !rep.Resp.Bool() {
							t.Fatalf("off=%d: stale enqueue re-confirmed wrong: %+v", off, rep)
						}
					}
				}
				if mine == nil {
					// Crash preceded the durable announcement: provably no
					// effect; re-submit.
					absent++
					if !rt.Run(func() { l.Apply(p0, Op{Kind: OpInsert, Arg: 7}) }) {
						t.Fatalf("off=%d: re-submission crashed with no crash armed", off)
					}
				} else {
					routed++
					if mine.StructID != l.ID() || mine.Op != (Op{Kind: OpInsert, Arg: 7}) || !mine.Resp.Bool() {
						t.Fatalf("off=%d: bad report %+v (list ID %d)", off, *mine, l.ID())
					}
					// Re-running RecoverAll must re-confirm the same outcome.
					for _, rep := range rt.RecoverAll() {
						if rep.Proc == 0 && (rep.Op != mine.Op || rep.Resp != mine.Resp) {
							t.Fatalf("off=%d: RecoverAll not idempotent: %+v vs %+v", off, rep, *mine)
						}
					}
				}
				ks := l.Keys()
				if len(ks) != 2 || ks[0] != 5 || ks[1] != 7 {
					t.Fatalf("off=%d: keys %v", off, ks)
				}
				if vs := q.Values(); len(vs) != 1 || vs[0] != 9 {
					t.Fatalf("off=%d: queue %v", off, vs)
				}
			}
			if routed == 0 || absent == 0 {
				t.Fatalf("coverage hole: routed=%d absent=%d (want both nonzero)", routed, absent)
			}
		})
	}
}

// TestRecoverAllEmptyWhenIdle: procs with no announced operation produce no
// report entries.
func TestRecoverAllEmptyWhenIdle(t *testing.T) {
	rt := New(Config{Procs: 3, CrashSim: true, HeapWords: 1 << 20})
	l := rt.NewList()
	p := rt.Proc(0)
	l.Insert(p, 1)
	l.Begin(p) // clears proc 0's announcement
	rt.Crash()
	rt.Run(func() { l.Find(p, 1) }) // unwind the pending crash on proc 0
	rt.Restart()
	if reps := rt.RecoverAll(); len(reps) != 0 {
		t.Fatalf("idle runtime reported %+v", reps)
	}
}

// TestRecoverDequeueZeroValue pins the public boundary: recovering a
// dequeue (and pop) of value 0 must return (0, true), never be mistaken
// for "empty" — at every crash offset that interrupts the operation.
func TestRecoverDequeueZeroValue(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			crashes := 0
			for off := uint64(1); off <= 120; off++ {
				rt := New(Config{Procs: 1, CrashSim: true, HeapWords: 1 << 20, Engine: e.kind})
				q := rt.NewQueue()
				s := rt.NewStack(0)
				p := rt.Proc(0)
				q.Enqueue(p, 0)
				s.Push(p, 0)

				q.Begin(p)
				rt.ScheduleCrash(off)
				if !rt.Run(func() { q.Dequeue(p) }) {
					crashes++
					rt.Restart()
					if v, ok := q.RecoverDequeue(p); !ok || v != 0 {
						t.Fatalf("off=%d: RecoverDequeue = (%d,%v), want (0,true)", off, v, ok)
					}
				} else {
					rt.CancelCrash()
				}
				if _, ok := q.Dequeue(p); ok {
					t.Fatalf("off=%d: queue not empty after dequeue of 0", off)
				}

				s.Begin(p)
				rt.ScheduleCrash(off)
				if !rt.Run(func() { s.Pop(p) }) {
					crashes++
					rt.Restart()
					if v, ok := s.RecoverPop(p); !ok || v != 0 {
						t.Fatalf("off=%d: RecoverPop = (%d,%v), want (0,true)", off, v, ok)
					}
				} else {
					rt.CancelCrash()
				}
				if _, ok := s.Pop(p); ok {
					t.Fatalf("off=%d: stack not empty after pop of 0", off)
				}
			}
			if crashes == 0 {
				t.Fatal("no crash offset interrupted the operations")
			}
		})
	}
}

// TestRecoverAllExchanger: at every crash offset that interrupts a lonely
// exchange, RecoverAll either finds no announcement (the crash preceded
// it; nothing to recover) or routes the announced OpExchange to the
// exchanger and resolves it to an abort — never a phantom success. Both
// branches must be exercised.
func TestRecoverAllExchanger(t *testing.T) {
	routed, absent, completed := 0, 0, 0
	for off := uint64(1); off <= 60; off++ {
		rt := New(Config{Procs: 1, CrashSim: true, HeapWords: 1 << 20})
		ex := rt.NewExchanger()
		p := rt.Proc(0)
		ex.Begin(p)
		rt.ScheduleCrash(off)
		if rt.Run(func() { ex.Apply(p, Op{Kind: OpExchange, Arg: 5}) }) {
			rt.CancelCrash()
			completed++
			continue
		}
		rt.Restart()
		reps := rt.RecoverAll()
		if len(reps) == 0 {
			absent++ // crash preceded the announcement
			continue
		}
		routed++
		if len(reps) != 1 || reps[0].StructID != ex.ID() ||
			reps[0].Op != (Op{Kind: OpExchange, Arg: 5}) {
			t.Fatalf("off=%d: report %+v", off, reps)
		}
		if _, ok := reps[0].Resp.Value(); ok {
			t.Fatalf("off=%d: lonely exchange reported success: %v", off, reps[0].Resp)
		}
	}
	if routed == 0 || absent == 0 {
		t.Fatalf("coverage hole: routed=%d absent=%d completed=%d (want routed and absent nonzero)",
			routed, absent, completed)
	}
}

// TestRecoverAllNoDuplicateOnRepeatedOp pins the exactly-once contract for
// consecutive identical operations under the documented Begin discipline:
// dequeue 11, then crash a second (identical) dequeue at every early
// offset. The resolution — report entry or, absent one, re-submission —
// must always yield 22, never re-deliver 11.
func TestRecoverAllNoDuplicateOnRepeatedOp(t *testing.T) {
	for _, e := range engines() {
		t.Run(e.name, func(t *testing.T) {
			crashed := 0
			for off := uint64(1); off <= 30; off++ {
				rt := New(Config{Procs: 1, CrashSim: true, HeapWords: 1 << 20, Engine: e.kind})
				q := rt.NewQueue()
				p := rt.Proc(0)
				q.Enqueue(p, 11)
				q.Enqueue(p, 22)
				q.Begin(p)
				if v, ok := q.Apply(p, Op{Kind: OpDeq}).Value(); !ok || v != 11 {
					t.Fatalf("first dequeue = (%d,%v)", v, ok)
				}
				q.Begin(p) // retires the first dequeue's announcement
				rt.ScheduleCrash(off)
				var resp Resp
				if rt.Run(func() { resp = q.Apply(p, Op{Kind: OpDeq}) }) {
					rt.CancelCrash()
				} else {
					crashed++
					rt.Restart()
					reps := rt.RecoverAll()
					switch len(reps) {
					case 0:
						// No announcement ⇒ the second dequeue had no
						// effect; re-submit.
						resp = q.Apply(p, Op{Kind: OpDeq})
					case 1:
						if reps[0].Op != (Op{Kind: OpDeq}) {
							t.Fatalf("off=%d: routed %+v", off, reps[0])
						}
						resp = reps[0].Resp
					default:
						t.Fatalf("off=%d: %d reports", off, len(reps))
					}
				}
				if v, ok := resp.Value(); !ok || v != 22 {
					t.Fatalf("off=%d: second dequeue resolved to (%d,%v), want (22,true) — value 11 would be a duplicate delivery", off, v, ok)
				}
				if vs := q.Values(); len(vs) != 0 {
					t.Fatalf("off=%d: queue left %v", off, vs)
				}
			}
			if crashed == 0 {
				t.Fatal("no crash offset interrupted the second dequeue")
			}
		})
	}
}

// TestRegistryAssignsDurableIDs: structure IDs are 1-based, stable, and the
// registry lists them in creation order with their kinds.
func TestRegistryAssignsDurableIDs(t *testing.T) {
	rt := New(Config{Procs: 1, CrashSim: true, HeapWords: 1 << 20})
	l := rt.NewList()
	q := rt.NewQueue()
	m := rt.NewHashMap(4)
	if l.ID() != 1 || q.ID() != 2 || m.ID() != 3 {
		t.Fatalf("IDs %d %d %d, want 1 2 3", l.ID(), q.ID(), m.ID())
	}
	ss := rt.Structures()
	if len(ss) != 3 || ss[0].Kind() != KindList || ss[1].Kind() != KindQueue || ss[2].Kind() != KindHashMap {
		t.Fatalf("registry %v", ss)
	}
	if rt.Structure(2) != ss[1] || rt.Structure(0) != nil || rt.Structure(4) != nil {
		t.Fatal("Structure lookup broken")
	}
}

func TestPrivateCacheModelThroughAPI(t *testing.T) {
	rt := New(Config{Procs: 1, Model: PrivateCache})
	l := rt.NewList()
	p := rt.Proc(0)
	if !l.Insert(p, 1) || !l.Delete(p, 1) {
		t.Fatal("private-cache list ops failed")
	}
}
