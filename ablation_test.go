package repro

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - ROpt (Algorithm 2's read-only fast path) vs plain Algorithm 1: what
//     skipping Help buys read-only operations;
//   - the empty-AffectSet Find extension for the BST (Section 6);
//   - elimination vs a bare central stack;
//   - the hand-tuned batched persistence (Isb-Opt) vs Algorithm 1/2
//     placement (Isb) on identical workloads.
//
// Run with: go test -bench=Ablation -benchmem .

import (
	"sync"
	"testing"

	"repro/internal/bst"
	"repro/internal/list"
	"repro/internal/pmem"
	"repro/internal/stack"
)

// ablListFinds measures a find-only workload and reports persistence
// instructions per op along with the time.
func ablListFinds(b *testing.B, build func(*pmem.Heap) *list.List) {
	mk := func() (*pmem.Heap, *list.List, *pmem.Proc) {
		h := pmem.NewHeap(pmem.Config{
			Words: 1 << 24, Procs: 1,
			PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
		})
		l := build(h)
		p := h.Proc(0)
		for k := uint64(1); k <= 200; k++ {
			l.Insert(p, k)
		}
		p.ResetStats()
		return h, l, p
	}
	_, l, p := mk()
	var agg pmem.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%200000 == 199999 {
			b.StopTimer()
			agg.Add(p.Stats()) // keep per-op metrics exact across recycles
			_, l, p = mk()
			b.StartTimer()
		}
		l.Find(p, uint64(i%400)+1)
	}
	agg.Add(p.Stats())
	ops := float64(b.N)
	b.ReportMetric(float64(agg.Barriers)/ops, "barriers/op")
	b.ReportMetric(float64(agg.Flushes)/ops, "flushes/op")
	b.ReportMetric(float64(agg.CASes)/ops, "cas/op")
}

// BenchmarkAblationROptOn: Algorithm 2 — Finds skip Help entirely.
func BenchmarkAblationROptOn(b *testing.B) { ablListFinds(b, list.New) }

// BenchmarkAblationROptOff: plain Algorithm 1 — Finds install, tag, and
// clean up like updates. The gap is what the ROpt optimization buys.
func BenchmarkAblationROptOff(b *testing.B) { ablListFinds(b, list.NewNoROpt) }

// BenchmarkAblationBSTFind / FindFast: the Section 6 empty-AffectSet
// extension against the regular single-element ROpt Find.
func ablBSTFinds(b *testing.B, fast bool) {
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 24, Procs: 1,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	})
	t := bst.New(h)
	p := h.Proc(0)
	for k := uint64(1); k <= 200; k++ {
		t.Insert(p, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%200000 == 199999 {
			b.StopTimer()
			h = pmem.NewHeap(pmem.Config{Words: 1 << 24, Procs: 1,
				PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency})
			t = bst.New(h)
			p = h.Proc(0)
			for k := uint64(1); k <= 200; k++ {
				t.Insert(p, k)
			}
			b.StartTimer()
		}
		k := uint64(i%400) + 1
		if fast {
			t.FindFast(p, k)
		} else {
			t.Find(p, k)
		}
	}
}

func BenchmarkAblationBSTFind(b *testing.B)     { ablBSTFinds(b, false) }
func BenchmarkAblationBSTFindFast(b *testing.B) { ablBSTFinds(b, true) }

// BenchmarkAblationElimination: a pusher/popper pair on the stack with and
// without the elimination layer.
func ablStack(b *testing.B, spins int) {
	// Arena-bounded rounds: a fresh heap every 50k push/pop pairs.
	const round = 50000
	b.ResetTimer()
	for done := 0; done < b.N; done += round {
		n := b.N - done
		if n > round {
			n = round
		}
		b.StopTimer()
		h := pmem.NewHeap(pmem.Config{Words: 1 << 24, Procs: 2})
		s := stack.New(h, spins)
		b.StartTimer()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			p := h.Proc(0)
			for i := 0; i < n; i++ {
				s.Push(p, uint64(i%1000)+1)
			}
		}()
		go func() {
			defer wg.Done()
			p := h.Proc(1)
			for i := 0; i < n; i++ {
				s.Pop(p)
			}
		}()
		wg.Wait()
	}
}

func BenchmarkAblationEliminationOff(b *testing.B) { ablStack(b, 0) }

func BenchmarkAblationEliminationOn(b *testing.B) { ablStack(b, stack.DefaultElimSpins) }

// BenchmarkAblationPersistBatching: identical mixed workload on the Isb
// (per-CAS pwb) vs Isb-Opt (phase-batched barrier) engines.
func ablMixed(b *testing.B, build func(*pmem.Heap) *list.List) {
	h := pmem.NewHeap(pmem.Config{
		Words: 1 << 24, Procs: 1,
		PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency,
	})
	l := build(h)
	p := h.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50000 == 49999 {
			b.StopTimer()
			h = pmem.NewHeap(pmem.Config{Words: 1 << 24, Procs: 1,
				PWBLatency: pmem.DefaultPWBLatency, PSyncLatency: pmem.DefaultPSyncLatency})
			l = build(h)
			p = h.Proc(0)
			b.StartTimer()
		}
		k := uint64(i%256) + 1
		switch i % 3 {
		case 0:
			l.Insert(p, k)
		case 1:
			l.Find(p, k)
		default:
			l.Delete(p, k)
		}
	}
}

func BenchmarkAblationPersistBatching(b *testing.B) {
	for _, e := range engines() {
		b.Run(e.name, func(b *testing.B) { ablMixed(b, e.list) })
	}
}
