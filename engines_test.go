package repro

import (
	"repro/internal/isb"
	"repro/internal/list"
	"repro/internal/pmem"
)

// engineCase is one persistence placement for table-driven tests and
// benchmarks: the public Config.Engine kind plus internal constructors for
// benchmarks that bypass the Runtime.
type engineCase struct {
	name   string
	kind   EngineKind
	engine func(*pmem.Heap) *isb.Engine
	list   func(*pmem.Heap) *list.List
}

// engines enumerates both engine variants (the paper's Isb and Isb-Opt
// curves) so tests and benchmarks iterate instead of hardcoding one.
func engines() []engineCase {
	return []engineCase{
		{"isb", EngineIsb, isb.NewEngine, list.New},
		{"isb-opt", EngineIsbOpt, isb.NewEngineOpt,
			func(h *pmem.Heap) *list.List { return list.NewWithEngine(h, isb.NewEngineOpt(h)) }},
	}
}
