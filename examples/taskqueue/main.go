// taskqueue: a crash-tolerant work pipeline. Producers enqueue tasks and
// consumers HAND each task OFF — dequeue from the work queue and insert
// into a durable results map — as ONE two-structure transaction
// (Runtime.ApplyTxn) while the machine repeatedly crashes. The single
// durable commit point between the legs is what makes the handoff
// exactly-once: no crash can lose a dequeued task (dequeued but never
// recorded) or double-deliver one (recorded but re-dequeued), which the
// final audit verifies across the whole storm.
//
// Recovery is the transaction report: after each crash the group runs one
// RecoverAll; a consumer whose handoff was interrupted reads its
// TxnReport — no-effect (re-submit the same attempt), leg-2-recovered
// (the insert was re-driven from the durable dequeue response), or
// completed — through repro.MatchReport, exactly as a batch caller would.
// Unique identities riding the announced Args (task IDs on enqueues,
// attempt counters on dequeues) reject stale reports, so no Begin psync
// is spent per operation.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

const (
	producers = 2
	consumers = 2
	tasksEach = 250
	crashGap  = 1800
)

func main() {
	procs := producers + consumers
	rt := repro.New(repro.Config{Procs: procs, CrashSim: true, HeapWords: 1 << 23})
	q := rt.NewQueue()     // the work queue
	m := rt.NewHashMap(16) // the durable results map: handed-off tasks
	totalTasks := producers * tasksEach

	group := repro.NewCrashGroup(rt, procs, crashGap)

	// applyOne runs one single-structure operation to a definite response,
	// riding the recovery report across any number of crashes. The task ID
	// in op.Arg is the identity that makes a stale report unmatchable.
	applyOne := func(w int, p *repro.Proc, s repro.Structure, op repro.Op) repro.Resp {
		var resp repro.Resp
		ok := rt.Run(func() { resp = s.Apply(p, op) })
		for !ok {
			group.Park()
			if rep, hit := group.Report(w); hit {
				if n := repro.MatchReport(rep, []repro.Op{op}, func(_ int, _ repro.Op, r repro.Resp) {
					resp = r
				}); n == 1 {
					ok = true
					continue
				}
			}
			ok = rt.Run(func() { resp = s.Apply(p, op) })
		}
		return resp
	}

	// handoff runs one dequeue→insert transaction to definite responses.
	// The attempt counter on the dequeue leg is this transaction's durable
	// identity; the insert leg's argument is derived from the dequeue's
	// response (ArgFromLeg1), so the inserted key IS the dequeued task —
	// and when the queue is empty the insert is elided (r2.Skipped()).
	handoff := func(w int, p *repro.Proc, attempt uint64) (repro.Resp, repro.Resp) {
		leg1 := repro.TxnLeg{S: q, Op: repro.Op{Kind: repro.OpDeq, Arg: attempt}}
		leg2 := repro.TxnLeg{S: m, Op: repro.Op{Kind: repro.OpInsert}, ArgFromLeg1: true}
		var r1, r2 repro.Resp
		ok := rt.Run(func() { r1, r2 = rt.ApplyTxn(p, leg1, leg2) })
		for !ok {
			group.Park()
			if rep, hit := group.Report(w); hit {
				if n := repro.MatchReport(rep, []repro.Op{leg1.Op, leg2.Op}, func(i int, _ repro.Op, r repro.Resp) {
					if i == 0 {
						r1 = r
					} else {
						r2 = r
					}
				}); n == 2 {
					ok = true
					continue
				}
			}
			// No report, a stale report, or a no-effect transaction:
			// provably neither structure changed — re-submit the SAME
			// attempt.
			ok = rt.Run(func() { r1, r2 = rt.ApplyTxn(p, leg1, leg2) })
		}
		return r1, r2
	}

	var wg sync.WaitGroup
	// Producers enqueue globally unique task ids.
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer group.Leave()
			p := rt.Proc(w)
			for i := 0; i < tasksEach; i++ {
				task := uint64(w)*1_000_000 + uint64(i) + 1
				applyOne(w, p, q, repro.Op{Kind: repro.OpEnq, Arg: task})
			}
		}(w)
	}
	// Consumers hand tasks off until the results map holds all of them.
	var seenMu sync.Mutex
	delivered, duplicates := 0, 0
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer group.Leave()
			id := producers + w
			p := rt.Proc(id)
			for n := uint64(1); ; n++ {
				seenMu.Lock()
				done := delivered >= totalTasks
				seenMu.Unlock()
				if done {
					return
				}
				attempt := uint64(id)<<32 | n
				r1, r2 := handoff(id, p, attempt)
				if _, got := r1.Value(); !got {
					// Empty queue: the insert leg was elided. Yield before
					// polling again — every poll allocates an Info record
					// in the never-reused arena (the paper assumes GC), so
					// an unthrottled busy-wait would burn heap proportional
					// to wall-clock time.
					if !r2.Skipped() {
						panic("empty dequeue must elide the insert leg")
					}
					time.Sleep(50 * time.Microsecond)
					continue
				}
				seenMu.Lock()
				if r2.Bool() {
					delivered++
				} else {
					// The task was already in the results map: the queue
					// handed it out twice. The audit fails on this.
					duplicates++
				}
				seenMu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Audit at quiescence: the durable results map must hold exactly the
	// produced task set — nothing lost, nothing doubled.
	missing := 0
	inMap := map[uint64]bool{}
	for _, k := range m.Keys() {
		inMap[k] = true
	}
	for w := 0; w < producers; w++ {
		for i := 0; i < tasksEach; i++ {
			if !inMap[uint64(w)*1_000_000+uint64(i)+1] {
				missing++
			}
		}
	}
	fmt.Printf("%d tasks produced, %d handed off, %d crashes survived (one RecoverAll each), %d duplicates, %d missing\n",
		totalTasks, delivered, group.Crashes(), duplicates, missing)
	if delivered != totalTasks || duplicates != 0 || missing != 0 || len(inMap) != totalTasks {
		panic("exactly-once handoff violated")
	}
	fmt.Println("audit passed: every task dequeued and recorded exactly once across crashes")
}
