// taskqueue: a crash-tolerant work queue. Producers enqueue tasks and
// consumers dequeue them while the machine repeatedly crashes; detectable
// recovery guarantees every task is handed out exactly once — no lost and
// no duplicated work — which the final audit verifies.
//
// Recovery uses the registry-routed workflow: after each crash the
// coordinator calls Runtime.RecoverAll once; every in-flight enqueue and
// dequeue is found through the per-process announcement records and
// resolved, and each worker just reads its outcome from the report (or
// re-submits if the crash preceded its announcement).
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
)

const (
	producers = 2
	consumers = 2
	tasksEach = 250
	crashGap  = 1800
)

func main() {
	procs := producers + consumers
	rt := repro.New(repro.Config{Procs: procs, CrashSim: true, HeapWords: 1 << 23})
	q := rt.NewQueue()

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	parked, generation, crashes := 0, 0, 0
	active := procs
	reports := map[int]repro.ProcReport{}

	// One RecoverAll call resolves every worker's in-flight operation.
	restartAndRecover := func() {
		rt.Restart()
		reports = map[int]repro.ProcReport{}
		for _, rep := range rt.RecoverAll() {
			reports[rep.Proc] = rep
		}
		crashes++
		generation++
		parked = 0
	}
	park := func() {
		mu.Lock()
		defer mu.Unlock()
		parked++
		g := generation
		if parked == active && rt.Crashing() {
			restartAndRecover()
			rt.ScheduleCrash(crashGap)
			cond.Broadcast()
		}
		for generation == g {
			cond.Wait()
		}
	}
	leave := func() {
		mu.Lock()
		defer mu.Unlock()
		active--
		if parked == active && active > 0 && rt.Crashing() {
			restartAndRecover()
			cond.Broadcast()
		}
	}
	report := func(w int) (repro.ProcReport, bool) {
		mu.Lock()
		defer mu.Unlock()
		rep, ok := reports[w]
		delete(reports, w)
		return rep, ok
	}

	// apply runs one operation to a definite response, riding RecoverAll's
	// report across any number of crashes.
	apply := func(w int, p *repro.Proc, op repro.Op) repro.Resp {
		for !rt.Run(func() { q.Begin(p) }) {
			park()
		}
		var resp repro.Resp
		ok := rt.Run(func() { resp = q.Apply(p, op) })
		for !ok {
			park()
			if rep, hit := report(w); hit && rep.Op == op {
				resp, ok = rep.Resp, true
				continue
			}
			ok = rt.Run(func() { resp = q.Apply(p, op) })
		}
		return resp
	}

	rt.ScheduleCrash(crashGap)

	var wg sync.WaitGroup
	// Producers enqueue globally unique task ids.
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer leave()
			p := rt.Proc(w)
			for i := 0; i < tasksEach; i++ {
				task := uint64(w)*1_000_000 + uint64(i) + 1
				apply(w, p, repro.Op{Kind: repro.OpEnq, Arg: task})
			}
		}(w)
	}
	// Consumers drain until they have collectively seen all tasks.
	totalTasks := producers * tasksEach
	var seenMu sync.Mutex
	seen := map[uint64]int{}
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer leave()
			id := producers + w
			p := rt.Proc(id)
			for {
				seenMu.Lock()
				done := len(seen) >= totalTasks
				seenMu.Unlock()
				if done {
					return
				}
				resp := apply(id, p, repro.Op{Kind: repro.OpDeq})
				if task, got := resp.Value(); got {
					seenMu.Lock()
					seen[task]++
					seenMu.Unlock()
				} else {
					// Empty queue: yield before polling again. Every poll
					// allocates an Info record in the never-reused arena
					// (the paper assumes GC), so an unthrottled busy-wait
					// drain would burn heap proportional to wall-clock
					// time — noticeable now that crash resets are O(dirty
					// lines) and the whole run is much faster.
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(w)
	}
	wg.Wait()

	dups := 0
	for _, n := range seen {
		if n != 1 {
			dups++
		}
	}
	fmt.Printf("%d tasks produced, %d consumed, %d crashes survived (one RecoverAll each), %d duplicates\n",
		totalTasks, len(seen), crashes, dups)
	if len(seen) != totalTasks || dups != 0 {
		panic("exactly-once delivery violated")
	}
	fmt.Println("audit passed: every task delivered exactly once across crashes")
}
