// taskqueue: a crash-tolerant work queue. Producers enqueue tasks and
// consumers dequeue them while the machine repeatedly crashes; detectable
// recovery guarantees every task is handed out exactly once — no lost and
// no duplicated work — which the final audit verifies.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"sync"

	"repro"
)

const (
	producers = 2
	consumers = 2
	tasksEach = 250
	crashGap  = 1800
)

func main() {
	procs := producers + consumers
	rt := repro.New(repro.Config{Procs: procs, CrashSim: true, HeapWords: 1 << 23})
	q := rt.NewQueue()

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	parked, generation, crashes := 0, 0, 0
	active := procs
	park := func() {
		mu.Lock()
		defer mu.Unlock()
		parked++
		g := generation
		if parked == active && rt.Crashing() {
			rt.Restart()
			crashes++
			generation++
			parked = 0
			rt.ScheduleCrash(crashGap)
			cond.Broadcast()
		}
		for generation == g {
			cond.Wait()
		}
	}
	leave := func() {
		mu.Lock()
		defer mu.Unlock()
		active--
		if parked == active && active > 0 && rt.Crashing() {
			rt.Restart()
			crashes++
			generation++
			parked = 0
			cond.Broadcast()
		}
	}

	rt.ScheduleCrash(crashGap)

	var wg sync.WaitGroup
	// Producers enqueue globally unique task ids.
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer leave()
			p := rt.Proc(w)
			for i := 0; i < tasksEach; i++ {
				task := uint64(w)*1_000_000 + uint64(i) + 1
				for !rt.Run(func() { q.Begin(p) }) {
					park()
				}
				ok := rt.Run(func() { q.Enqueue(p, task) })
				for !ok {
					park()
					ok = rt.Run(func() { q.RecoverEnqueue(p, task) })
				}
			}
		}(w)
	}
	// Consumers drain until they have collectively seen all tasks.
	totalTasks := producers * tasksEach
	var seenMu sync.Mutex
	seen := map[uint64]int{}
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer leave()
			p := rt.Proc(producers + w)
			for {
				seenMu.Lock()
				done := len(seen) >= totalTasks
				seenMu.Unlock()
				if done {
					return
				}
				for !rt.Run(func() { q.Begin(p) }) {
					park()
				}
				var task uint64
				var got bool
				ok := rt.Run(func() { task, got = q.Dequeue(p) })
				for !ok {
					park()
					ok = rt.Run(func() { task, got = q.RecoverDequeue(p) })
				}
				if got {
					seenMu.Lock()
					seen[task]++
					seenMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	dups := 0
	for _, n := range seen {
		if n != 1 {
			dups++
		}
	}
	fmt.Printf("%d tasks produced, %d consumed, %d crashes survived, %d duplicates\n",
		totalTasks, len(seen), crashes, dups)
	if len(seen) != totalTasks || dups != 0 {
		panic("exactly-once delivery violated")
	}
	fmt.Println("audit passed: every task delivered exactly once across crashes")
}
