// Quickstart: a detectably recoverable sorted set surviving a simulated
// power failure in the middle of an insert — recovered with a single
// Runtime.RecoverAll call, no caller bookkeeping.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	rt := repro.New(repro.Config{Procs: 1, CrashSim: true})
	l := rt.NewList()
	p := rt.Proc(0)

	for _, k := range []uint64{10, 20, 30} {
		l.Insert(p, k)
	}
	fmt.Println("initial keys:", l.Keys())

	// Begin is the system-side invocation step: it retires the previous
	// operation's announcement so the recovery report below can only
	// describe the operation in flight.
	l.Begin(p)

	// Arm a crash a few memory accesses into the next operation: the
	// machine "loses power" while Insert(25) is half-done.
	rt.ScheduleCrash(12)
	if rt.Run(func() { l.Apply(p, repro.Op{Kind: repro.OpInsert, Arg: 25}) }) {
		fmt.Println("the crash missed the operation window")
		rt.CancelCrash()
	} else {
		fmt.Println("crash! volatile state lost mid-insert")
		rt.Restart() // unflushed cache lines are gone; NVRAM remains

		// Registry-routed recovery: each process's persistent announcement
		// record says which structure it was operating on and with what
		// operation; RecoverAll routes every one through the structure
		// registry and resolves it. (A process absent from the report
		// crashed before announcing — its operation had no effect and can
		// simply be re-submitted.)
		reps := rt.RecoverAll()
		if len(reps) == 0 {
			l.Apply(p, repro.Op{Kind: repro.OpInsert, Arg: 25})
			fmt.Println("crash preceded the announcement; re-submitted")
		}
		for _, rep := range reps {
			fmt.Printf("recovered: proc %d, %s #%d, op (kind=%d, arg=%d) → %s\n",
				rep.Proc, rt.Structure(rep.StructID).Kind(), rep.StructID,
				rep.Op.Kind, rep.Op.Arg, rep.Resp)
		}
	}

	fmt.Println("keys after recovery:", l.Keys())
	if !l.Find(p, 25) {
		panic("key 25 missing after detectable recovery")
	}
	fmt.Println("Find(25):", l.Find(p, 25))
}
