// Quickstart: a detectably recoverable sorted set surviving a simulated
// power failure in the middle of an insert.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	rt := repro.New(repro.Config{Procs: 1, CrashSim: true})
	l := rt.NewList()
	p := rt.Proc(0)

	for _, k := range []uint64{10, 20, 30} {
		l.Insert(p, k)
	}
	fmt.Println("initial keys:", l.Keys())

	// Arm a crash a few memory accesses into the next operation: the
	// machine "loses power" while Insert(25) is half-done.
	rt.ScheduleCrash(12)
	if rt.Run(func() { l.Insert(p, 25) }) {
		fmt.Println("the crash missed the operation window")
		rt.CancelCrash()
	} else {
		fmt.Println("crash! volatile state lost mid-insert")
		rt.Restart() // unflushed cache lines are gone; NVRAM remains

		// Detectable recovery: the per-process recovery data (RD_q, CP_q)
		// and the persisted Info structure let the process determine
		// whether its insert took effect — and finish it if it had not.
		resp := l.Recover(p, repro.OpInsert, 25)
		fmt.Println("recovered insert response:", resp)
	}

	fmt.Println("keys after recovery:", l.Keys())
	if !l.Find(p, 25) {
		panic("key 25 missing after detectable recovery")
	}
	fmt.Println("Find(25):", l.Find(p, 25))
}
