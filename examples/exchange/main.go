// exchange: pairs of goroutines swap values through the detectably
// recoverable exchanger, then the elimination stack shows pushes and pops
// cancelling in flight without touching the central stack.
//
//	go run ./examples/exchange
package main

import (
	"fmt"
	"sync"

	"repro"
)

func main() {
	rt := repro.New(repro.Config{Procs: 8, CrashSim: true, HeapWords: 1 << 22})

	// Part 1: direct exchanges. Four pairs of processes swap values.
	ex := rt.NewExchanger()
	var wg sync.WaitGroup
	results := make([]uint64, 8)
	oks := make([]bool, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], oks[i] = ex.Exchange(rt.Proc(i), uint64(100+i), 1<<22)
		}(i)
	}
	wg.Wait()
	exchanged := 0
	for i, ok := range oks {
		if ok {
			exchanged++
			fmt.Printf("proc %d offered %d and received %d\n", i, 100+i, results[i])
		}
	}
	fmt.Printf("%d of 8 processes exchanged (pairs: %d)\n\n", exchanged, exchanged/2)
	if exchanged%2 != 0 {
		panic("odd number of exchange successes")
	}

	// Part 2: the elimination stack. A pusher and a popper run
	// concurrently; with a wide elimination window most operations pair up
	// through the exchanger instead of contending on the stack top.
	s := rt.NewStack(1 << 14)
	var pushed, popped sync.Map
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := rt.Proc(0)
		for v := uint64(1); v <= 100; v++ {
			s.Push(p, v)
			pushed.Store(v, true)
		}
	}()
	go func() {
		defer wg.Done()
		p := rt.Proc(1)
		for i := 0; i < 100; i++ {
			if v, ok := s.Pop(p); ok {
				popped.Store(v, true)
			}
		}
	}()
	wg.Wait()

	nPopped, onStack := 0, len(s.Values())
	popped.Range(func(k, v any) bool { nPopped++; return true })
	fmt.Printf("elimination stack: 100 pushed, %d popped, %d remain on the stack\n",
		nPopped, onStack)
	if nPopped+onStack != 100 {
		panic("values lost or duplicated")
	}
	fmt.Println("conservation holds: pops + stack contents = pushes")
}
