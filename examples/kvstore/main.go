// kvstore: a small recoverable key-value membership store built on the
// detectably recoverable sharded hash map, hammered by concurrent workers
// while the "machine" keeps crashing. Keys spread over the map's shards, so
// the workers mostly run contention-free.
//
// Workers admit their operations in ApplyBatch windows of 16: one durable
// batch announcement per window instead of one per operation, deferred
// psyncs, and finds served by the zero-persist read path. Recovery stays
// zero-bookkeeping: after each crash the coordinator (playing "the
// system") makes exactly one call — Runtime.RecoverAll — which resolves
// every process's in-flight work. A worker whose report entry carries a
// batch consumes the completed prefix's durable responses plus the
// recovered in-flight operation, then re-submits the no-effect suffix; a
// worker absent from the report re-submits its whole remainder (it
// provably had no effect). The store's final contents are audited against
// the responses the workers observed, and the run closes with a
// side-by-side measurement of the psync/op drop batching buys.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro"
)

const (
	workers   = 4
	shards    = 16
	opsPerW   = 304 // divisible by batchSize: every window is full
	batchSize = 16
	crashEach = 2500 // memory accesses between scheduled crashes
	keySpace  = 64
)

// randomOp draws the next workload operation: half finds (zero-persist
// fast path), the rest split insert/delete.
func randomOp(rng *rand.Rand) repro.Op {
	k := uint64(rng.Intn(keySpace)) + 1
	switch rng.Intn(4) {
	case 0:
		return repro.Op{Kind: repro.OpInsert, Arg: k}
	case 1:
		return repro.Op{Kind: repro.OpDelete, Arg: k}
	default:
		return repro.Op{Kind: repro.OpFind, Arg: k}
	}
}

// measureSyncDrop replays the same seeded crash-free workload through
// one-at-a-time admission and through batch=16 windows on fresh stores
// (batched Isb-Opt engine) and returns the measured psyncs per operation
// for each.
func measureSyncDrop() (single, batched float64) {
	run := func(batch int) float64 {
		const ops = 2048
		rt := repro.New(repro.Config{Procs: 1, HeapWords: 1 << 22, Engine: repro.EngineIsbOpt})
		m := rt.NewHashMap(shards)
		p := rt.Proc(0)
		rng := rand.New(rand.NewSource(99))
		rt.Heap().ResetAllStats()
		win := make([]repro.Op, 0, batch)
		for i := 0; i < ops; i++ {
			win = append(win, randomOp(rng))
			if len(win) == batch {
				rt.ApplyBatch(p, m, win)
				win = win[:0]
			}
		}
		return float64(rt.Heap().TotalStats().Syncs) / ops
	}
	return run(1), run(batchSize)
}

func main() {
	// Heap sizing. With the leak-forever arena (Reclaim: false, the
	// default) the heap must hold every allocation the run will ever make:
	// each operation attempt burns a 32-word tracking record plus any
	// fresh nodes, so workers×opsPerW ops need on the order of
	// workers*opsPerW*128 words — 1<<23 was the safe arena size for this
	// workload, and doubling the ops means doubling the heap. With the
	// epoch reclaimer the heap only needs the *working set*: live keys +
	// two epochs of not-yet-recycled blocks + the per-process retired
	// rings — a few hundred blocks here — so 1<<18 words (2 MiB) runs the
	// same crash-riddled workload at any op count.
	rt := repro.New(repro.Config{
		Procs: workers, CrashSim: true, HeapWords: 1 << 18, Reclaim: true,
	})
	store := rt.NewHashMap(shards)

	// The crash coordinator — the role "the system" plays in the paper's
	// model — is repro.CrashGroup: the last worker stranded by a crash runs
	// Restart plus exactly one RecoverAll, hands each worker its report
	// entry, and re-arms the next crash while anyone is still working (so a
	// worker retiring early cannot leave the survivors' tail crash-free).
	group := repro.NewCrashGroup(rt, workers, crashEach)

	net := make([]map[uint64]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		net[w] = map[uint64]int{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer group.Leave()
			p := rt.Proc(w)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			tally := func(op repro.Op, resp repro.Resp) {
				if op.Kind == repro.OpFind || !resp.Bool() {
					return
				}
				if op.Kind == repro.OpInsert {
					net[w][op.Arg]++
				} else {
					net[w][op.Arg]--
				}
			}
			for base := 0; base < opsPerW; base += batchSize {
				pending := make([]repro.Op, 0, batchSize)
				for j := 0; j < batchSize && base+j < opsPerW; j++ {
					pending = append(pending, randomOp(rng))
				}
				for len(pending) > 0 {
					batch := pending
					var out []repro.Resp
					if rt.Run(func() { out = rt.ApplyBatch(p, store, batch) }) {
						for i, op := range batch {
							tally(op, out[i])
						}
						pending = nil
						break
					}
					// Crashed mid-window. After recovery, MatchReport hands
					// back the completed prefix's durable responses and the
					// recovered in-flight operation (rejecting a stale
					// report from an earlier, fully answered window); the
					// no-effect suffix loops around for re-submission.
					group.Park()
					rep, hit := group.Report(w)
					if !hit {
						continue // nothing durable: re-submit the remainder
					}
					pending = pending[repro.MatchReport(rep, pending, func(_ int, op repro.Op, resp repro.Resp) {
						tally(op, resp)
					}):]
				}
			}
		}(w)
	}
	wg.Wait()

	// Audit: final membership must equal the net successful updates.
	total := map[uint64]int{}
	for _, m := range net {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range store.Keys() {
		present[k] = true
	}
	bad := 0
	for k := uint64(1); k <= keySpace; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			bad++
			fmt.Printf("MISMATCH key %d: net=%d present=%v\n", k, total[k], present[k])
		}
	}
	fmt.Printf("%d workers × %d ops (batch=%d) over %d shards, %d crashes survived (one RecoverAll each), %d keys stored, %d mismatches\n",
		workers, opsPerW, batchSize, store.NumShards(), group.Crashes(), len(store.Keys()), bad)
	if bs, rf, ok := rt.EngineCounters(store); ok {
		fmt.Printf("batching: %d psyncs deferred into window boundaries, %d reads on the zero-persist fast path\n", bs, rf)
	}
	if bad > 0 {
		panic("audit failed")
	}
	fmt.Println("audit passed: every response is consistent with the recovered store")
	s1, s16 := measureSyncDrop()
	fmt.Printf("measured admission cost: %.2f psyncs/op one-at-a-time vs %.2f psyncs/op at batch=%d (%.0fx drop)\n",
		s1, s16, batchSize, s1/s16)
}
