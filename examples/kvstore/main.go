// kvstore: a small recoverable key-value membership store built on the
// detectably recoverable sharded hash map, hammered by concurrent workers
// while the "machine" keeps crashing. Keys spread over the map's shards, so
// the workers mostly run contention-free.
//
// Recovery is the new zero-bookkeeping workflow: after each crash the
// coordinator (playing "the system") makes exactly one call —
// Runtime.RecoverAll — which reads every process's persistent announcement
// record, routes each in-flight operation to its structure through the
// registry, and resolves it. Workers just look up their entry in the
// report; a worker absent from the report re-submits (its operation
// provably had no effect). The store's final contents are audited against
// the responses the workers observed.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro"
)

const (
	workers   = 4
	shards    = 16
	opsPerW   = 300
	crashEach = 2500 // memory accesses between scheduled crashes
	keySpace  = 64
)

func main() {
	// Heap sizing. With the leak-forever arena (Reclaim: false, the
	// default) the heap must hold every allocation the run will ever make:
	// each operation attempt burns a 32-word tracking record plus any
	// fresh nodes, so workers×opsPerW ops need on the order of
	// workers*opsPerW*128 words — 1<<23 was the safe arena size for this
	// workload, and doubling the ops means doubling the heap. With the
	// epoch reclaimer the heap only needs the *working set*: live keys +
	// two epochs of not-yet-recycled blocks + the per-process retired
	// rings — a few hundred blocks here — so 1<<18 words (2 MiB) runs the
	// same crash-riddled workload at any op count.
	rt := repro.New(repro.Config{
		Procs: workers, CrashSim: true, HeapWords: 1 << 18, Reclaim: true,
	})
	store := rt.NewHashMap(shards)

	var mu sync.Mutex
	var cond = sync.NewCond(&mu)
	parked, generation, crashes := 0, 0, 0
	active := workers
	reports := map[int]repro.ProcReport{} // refreshed by each RecoverAll

	// restartAndRecover is the system's whole crash-handling duty: discard
	// volatile state, then one RecoverAll call resolves every in-flight
	// operation across all structures. Runs with mu held, all workers parked.
	restartAndRecover := func() {
		rt.Restart()
		reports = map[int]repro.ProcReport{}
		for _, rep := range rt.RecoverAll() {
			reports[rep.Proc] = rep
		}
		crashes++
		generation++
		parked = 0
	}

	// park blocks a crashed worker until everyone crashed and the system
	// recovered — the role the "system" plays in the paper's model.
	park := func() {
		mu.Lock()
		defer mu.Unlock()
		parked++
		g := generation
		if parked == active && rt.Crashing() {
			restartAndRecover()
			rt.ScheduleCrash(crashEach)
			cond.Broadcast()
		}
		for generation == g {
			cond.Wait()
		}
	}
	leave := func() {
		mu.Lock()
		defer mu.Unlock()
		active--
		if parked == active && active > 0 && rt.Crashing() {
			restartAndRecover()
			cond.Broadcast()
		}
	}
	// report fetches (and consumes) this worker's RecoverAll entry, if the
	// last sweep resolved an operation for it.
	report := func(w int) (repro.ProcReport, bool) {
		mu.Lock()
		defer mu.Unlock()
		rep, ok := reports[w]
		delete(reports, w)
		return rep, ok
	}

	rt.ScheduleCrash(crashEach)

	net := make([]map[uint64]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		net[w] = map[uint64]int{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer leave()
			p := rt.Proc(w)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < opsPerW; i++ {
				op := repro.Op{
					Kind: uint64(rng.Intn(2)) + 1, // OpInsert or OpDelete
					Arg:  uint64(rng.Intn(keySpace)) + 1,
				}
				for !rt.Run(func() { store.Begin(p) }) {
					park()
				}
				var resp repro.Resp
				ok := rt.Run(func() { resp = store.Apply(p, op) })
				for !ok {
					park()
					if rep, hit := report(w); hit && rep.Op == op {
						// RecoverAll already resolved our operation.
						resp, ok = rep.Resp, true
						continue
					}
					// Absent from the report: the crash preceded the durable
					// announcement, so the operation had no effect — re-submit.
					ok = rt.Run(func() { resp = store.Apply(p, op) })
				}
				if resp.Bool() {
					if op.Kind == repro.OpInsert {
						net[w][op.Arg]++
					} else {
						net[w][op.Arg]--
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Audit: final membership must equal the net successful updates.
	total := map[uint64]int{}
	for _, m := range net {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range store.Keys() {
		present[k] = true
	}
	bad := 0
	for k := uint64(1); k <= keySpace; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			bad++
			fmt.Printf("MISMATCH key %d: net=%d present=%v\n", k, total[k], present[k])
		}
	}
	fmt.Printf("%d workers × %d ops over %d shards, %d crashes survived (one RecoverAll each), %d keys stored, %d mismatches\n",
		workers, opsPerW, store.NumShards(), crashes, len(store.Keys()), bad)
	if bad > 0 {
		panic("audit failed")
	}
	fmt.Println("audit passed: every response is consistent with the recovered store")
}
