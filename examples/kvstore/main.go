// kvstore: a small recoverable key-value membership store built on the
// detectably recoverable sharded hash map, hammered by concurrent workers
// while the "machine" keeps crashing. Keys spread over the map's shards, so
// the workers mostly run contention-free; after every crash each worker
// recovers its in-flight operation, and the store's contents are audited
// against the responses the workers observed.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"repro"
)

const (
	workers   = 4
	shards    = 16
	opsPerW   = 300
	crashEach = 2500 // memory accesses between scheduled crashes
	keySpace  = 64
)

type op struct {
	kind uint64
	key  uint64
}

func main() {
	rt := repro.New(repro.Config{Procs: workers, CrashSim: true, HeapWords: 1 << 23})
	store := rt.NewHashMap(shards)

	var mu sync.Mutex
	var cond = sync.NewCond(&mu)
	parked, generation, crashes := 0, 0, 0
	active := workers

	// park blocks a crashed worker until everyone crashed and the heap
	// restarted — the role the "system" plays in the paper's model.
	park := func() {
		mu.Lock()
		defer mu.Unlock()
		parked++
		g := generation
		if parked == active && rt.Crashing() {
			rt.Restart()
			crashes++
			generation++
			parked = 0
			rt.ScheduleCrash(crashEach)
			cond.Broadcast()
		}
		for generation == g {
			cond.Wait()
		}
	}
	leave := func() {
		mu.Lock()
		defer mu.Unlock()
		active--
		if parked == active && active > 0 && rt.Crashing() {
			rt.Restart()
			crashes++
			generation++
			parked = 0
			cond.Broadcast()
		}
	}

	rt.ScheduleCrash(crashEach)

	net := make([]map[uint64]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		net[w] = map[uint64]int{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer leave()
			p := rt.Proc(w)
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < opsPerW; i++ {
				o := op{kind: uint64(rng.Intn(2)) + 1, key: uint64(rng.Intn(keySpace)) + 1}
				for !rt.Run(func() { store.Begin(p) }) {
					park()
				}
				var resp bool
				invoke := func() {
					if o.kind == repro.OpInsert {
						resp = store.Insert(p, o.key)
					} else {
						resp = store.Delete(p, o.key)
					}
				}
				ok := rt.Run(invoke)
				for !ok {
					park()
					ok = rt.Run(func() { resp = store.Recover(p, o.kind, o.key) })
				}
				if resp {
					if o.kind == repro.OpInsert {
						net[w][o.key]++
					} else {
						net[w][o.key]--
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Audit: final membership must equal the net successful updates.
	total := map[uint64]int{}
	for _, m := range net {
		for k, v := range m {
			total[k] += v
		}
	}
	present := map[uint64]bool{}
	for _, k := range store.Keys() {
		present[k] = true
	}
	bad := 0
	for k := uint64(1); k <= keySpace; k++ {
		want := 0
		if present[k] {
			want = 1
		}
		if total[k] != want {
			bad++
			fmt.Printf("MISMATCH key %d: net=%d present=%v\n", k, total[k], present[k])
		}
	}
	fmt.Printf("%d workers × %d ops over %d shards, %d crashes survived, %d keys stored, %d mismatches\n",
		workers, opsPerW, store.NumShards(), crashes, len(store.Keys()), bad)
	if bad > 0 {
		panic("audit failed")
	}
	fmt.Println("audit passed: every response is consistent with the recovered store")
}
